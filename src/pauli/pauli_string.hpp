// Packed Pauli strings: an element of {I, X, Y, Z}^{⊗n} stored as X/Z bit
// masks. These label the measurement circuits of Eq. (2); the phase produced
// by multiplication is returned separately so QubitOperator can fold it into
// coefficients.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace q2::pauli {

enum class P : std::uint8_t { I = 0, X = 1, Z = 2, Y = 3 };

class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t n_qubits);
  /// Parse e.g. "X0 Y2 Z5" (identity on unnamed qubits).
  static PauliString parse(std::size_t n_qubits, const std::string& text);

  std::size_t n_qubits() const { return n_; }

  P get(std::size_t q) const;
  void set(std::size_t q, P p);

  bool is_identity() const;
  /// Number of non-identity sites.
  std::size_t weight() const;
  /// Indices of non-identity sites, ascending.
  std::vector<std::size_t> support() const;
  /// [first, last] non-identity site; identity returns {0, 0}.
  std::pair<std::size_t, std::size_t> support_range() const;

  bool commutes_with(const PauliString& other) const;

  /// The same operator relabelled through a logical→site map: the Pauli on
  /// logical qubit q moves to site site_of[q]. `site_of` must be a
  /// permutation of [0, n).
  PauliString permuted(const std::vector<int>& site_of) const;

  bool operator==(const PauliString& other) const {
    return n_ == other.n_ && x_ == other.x_ && z_ == other.z_;
  }

  std::string str() const;

  struct Hash {
    std::size_t operator()(const PauliString& s) const;
  };

  /// 2x2 matrix of the Pauli at site q (row-major, basis |0>, |1>).
  static void single_qubit_matrix(P p, cplx out[4]);

  const std::vector<std::uint64_t>& x_mask() const { return x_; }
  const std::vector<std::uint64_t>& z_mask() const { return z_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> x_, z_;
};

/// a * b = i^phase_exponent * result; exponent is modulo 4.
std::pair<PauliString, int> multiply(const PauliString& a, const PauliString& b);

}  // namespace q2::pauli
