// Linear combinations of Pauli strings with complex coefficients — the qubit
// form of the electronic Hamiltonian (Eq. 2) and of the UCC generator. The
// algebra (+, *, scalar) is exact; compress() drops numerically zero terms.
#pragma once

#include <unordered_map>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace q2::pauli {

class QubitOperator {
 public:
  using TermMap = std::unordered_map<PauliString, cplx, PauliString::Hash>;

  QubitOperator() = default;
  explicit QubitOperator(std::size_t n_qubits) : n_(n_qubits) {}
  static QubitOperator identity(std::size_t n_qubits, cplx coeff = 1.0);
  /// Single Pauli term, e.g. QubitOperator::term(4, "X0 Z1", 0.5).
  static QubitOperator term(std::size_t n_qubits, const std::string& pauli,
                            cplx coeff = 1.0);

  std::size_t n_qubits() const { return n_; }
  std::size_t size() const { return terms_.size(); }
  const TermMap& terms() const { return terms_; }

  void add(const PauliString& p, cplx coeff);

  QubitOperator& operator+=(const QubitOperator& o);
  QubitOperator& operator-=(const QubitOperator& o);
  QubitOperator& operator*=(cplx s);
  QubitOperator operator*(const QubitOperator& o) const;
  friend QubitOperator operator+(QubitOperator a, const QubitOperator& b) {
    return a += b;
  }
  friend QubitOperator operator-(QubitOperator a, const QubitOperator& b) {
    return a -= b;
  }
  friend QubitOperator operator*(QubitOperator a, cplx s) { return a *= s; }
  friend QubitOperator operator*(cplx s, QubitOperator a) { return a *= s; }

  /// A - A^dagger would be zero for Hermitian A; this returns the adjoint.
  QubitOperator adjoint() const;
  bool is_hermitian(double tol = 1e-10) const;

  /// Drop terms with |coeff| <= tol.
  void compress(double tol = 1e-12);

  /// Coefficient of the identity string (energy shift).
  cplx constant() const;

  /// Terms as a stable, deterministic list (sorted by string label) — the
  /// circuit-per-Pauli-term distribution of Fig. 4 iterates this.
  std::vector<std::pair<PauliString, cplx>> sorted_terms() const;

  std::string str(std::size_t max_terms = 12) const;

 private:
  std::size_t n_ = 0;
  TermMap terms_;
};

}  // namespace q2::pauli
