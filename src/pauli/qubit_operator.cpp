#include "pauli/qubit_operator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace q2::pauli {
namespace {

cplx i_power(int k) {
  switch (((k % 4) + 4) % 4) {
    case 0: return {1, 0};
    case 1: return {0, 1};
    case 2: return {-1, 0};
    default: return {0, -1};
  }
}

}  // namespace

QubitOperator QubitOperator::identity(std::size_t n_qubits, cplx coeff) {
  QubitOperator op(n_qubits);
  op.add(PauliString(n_qubits), coeff);
  return op;
}

QubitOperator QubitOperator::term(std::size_t n_qubits, const std::string& pauli,
                                  cplx coeff) {
  QubitOperator op(n_qubits);
  op.add(PauliString::parse(n_qubits, pauli), coeff);
  return op;
}

void QubitOperator::add(const PauliString& p, cplx coeff) {
  require(p.n_qubits() == n_, "QubitOperator::add: qubit count mismatch");
  terms_[p] += coeff;
}

QubitOperator& QubitOperator::operator+=(const QubitOperator& o) {
  require(n_ == o.n_, "QubitOperator+=: qubit count mismatch");
  for (const auto& [p, c] : o.terms_) terms_[p] += c;
  return *this;
}

QubitOperator& QubitOperator::operator-=(const QubitOperator& o) {
  require(n_ == o.n_, "QubitOperator-=: qubit count mismatch");
  for (const auto& [p, c] : o.terms_) terms_[p] -= c;
  return *this;
}

QubitOperator& QubitOperator::operator*=(cplx s) {
  for (auto& [p, c] : terms_) c *= s;
  return *this;
}

QubitOperator QubitOperator::operator*(const QubitOperator& o) const {
  require(n_ == o.n_, "QubitOperator*: qubit count mismatch");
  QubitOperator r(n_);
  for (const auto& [pa, ca] : terms_) {
    for (const auto& [pb, cb] : o.terms_) {
      auto [p, k] = multiply(pa, pb);
      r.terms_[p] += ca * cb * i_power(k);
    }
  }
  return r;
}

QubitOperator QubitOperator::adjoint() const {
  QubitOperator r(n_);
  for (const auto& [p, c] : terms_) r.terms_[p] = std::conj(c);
  return r;
}

bool QubitOperator::is_hermitian(double tol) const {
  for (const auto& [p, c] : terms_)
    if (std::abs(c.imag()) > tol) return false;
  return true;
}

void QubitOperator::compress(double tol) {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol)
      it = terms_.erase(it);
    else
      ++it;
  }
}

cplx QubitOperator::constant() const {
  const auto it = terms_.find(PauliString(n_));
  return it == terms_.end() ? cplx{} : it->second;
}

std::vector<std::pair<PauliString, cplx>> QubitOperator::sorted_terms() const {
  std::vector<std::pair<PauliString, cplx>> v(terms_.begin(), terms_.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.first.weight() != b.first.weight())
      return a.first.weight() < b.first.weight();
    return a.first.str() < b.first.str();
  });
  return v;
}

std::string QubitOperator::str(std::size_t max_terms) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const auto& [p, c] : sorted_terms()) {
    if (shown++ >= max_terms) {
      out << "  ... (" << terms_.size() << " terms total)\n";
      break;
    }
    out << "  (" << c.real() << (c.imag() >= 0 ? "+" : "") << c.imag()
        << "i) * " << p.str() << "\n";
  }
  return out.str();
}

}  // namespace q2::pauli
