#include "pauli/jordan_wigner.hpp"

namespace q2::pauli {

void FermionOperator::add_term(std::vector<Ladder> ops, cplx coeff) {
  for (const auto& l : ops)
    require(l.orbital < n_, "FermionOperator: orbital out of range");
  terms_.emplace_back(std::move(ops), coeff);
}

FermionOperator& FermionOperator::operator+=(const FermionOperator& o) {
  require(n_ == o.n_, "FermionOperator+=: mode count mismatch");
  terms_.insert(terms_.end(), o.terms_.begin(), o.terms_.end());
  return *this;
}

FermionOperator& FermionOperator::operator*=(cplx s) {
  for (auto& [ops, c] : terms_) c *= s;
  return *this;
}

FermionOperator FermionOperator::adjoint() const {
  FermionOperator r(n_);
  for (const auto& [ops, c] : terms_) {
    std::vector<Ladder> rev(ops.rbegin(), ops.rend());
    for (auto& l : rev) l.dagger = !l.dagger;
    r.terms_.emplace_back(std::move(rev), std::conj(c));
  }
  return r;
}

namespace {

// a_p = Z_0 ... Z_{p-1} (X_p + i Y_p) / 2;  a_p^dagger uses (X_p - i Y_p) / 2.
QubitOperator jw_ladder(std::size_t n, std::size_t p, bool dagger) {
  PauliString with_x(n), with_y(n);
  for (std::size_t q = 0; q < p; ++q) {
    with_x.set(q, P::Z);
    with_y.set(q, P::Z);
  }
  with_x.set(p, P::X);
  with_y.set(p, P::Y);
  QubitOperator op(n);
  op.add(with_x, 0.5);
  op.add(with_y, dagger ? cplx(0, -0.5) : cplx(0, 0.5));
  return op;
}

}  // namespace

QubitOperator jw_annihilation(std::size_t n_qubits, std::size_t p) {
  require(p < n_qubits, "jw_annihilation: orbital out of range");
  return jw_ladder(n_qubits, p, false);
}

QubitOperator jw_creation(std::size_t n_qubits, std::size_t p) {
  require(p < n_qubits, "jw_creation: orbital out of range");
  return jw_ladder(n_qubits, p, true);
}

QubitOperator jw_number(std::size_t n_qubits, std::size_t p) {
  require(p < n_qubits, "jw_number: orbital out of range");
  QubitOperator op = QubitOperator::identity(n_qubits, 0.5);
  PauliString z(n_qubits);
  z.set(p, P::Z);
  op.add(z, -0.5);
  return op;
}

QubitOperator jordan_wigner(const FermionOperator& op) {
  const std::size_t n = op.n_modes();
  QubitOperator out(n);
  for (const auto& [ops, coeff] : op.terms()) {
    QubitOperator prod = QubitOperator::identity(n, coeff);
    for (const auto& l : ops) {
      prod = prod * (l.dagger ? jw_creation(n, l.orbital)
                              : jw_annihilation(n, l.orbital));
      // Products of ladder images stay small only if zero terms are pruned
      // eagerly (many cancel exactly).
      prod.compress(1e-14);
    }
    out += prod;
  }
  out.compress(1e-12);
  return out;
}

}  // namespace q2::pauli
