// Fermionic ladder operators and the Jordan-Wigner transformation mapping
// them to qubit operators (the OpenFermion role in the paper's pipeline).
// Spin-orbital p maps to qubit p; a_p carries a Z string on qubits < p.
#pragma once

#include <vector>

#include "pauli/qubit_operator.hpp"

namespace q2::pauli {

/// One ladder operator: orbital index + creation flag.
struct Ladder {
  std::size_t orbital;
  bool dagger;
};

/// A normal-ordered-agnostic fermionic operator: sum of coeff * products of
/// ladder operators (applied left to right as written).
class FermionOperator {
 public:
  explicit FermionOperator(std::size_t n_modes) : n_(n_modes) {}

  std::size_t n_modes() const { return n_; }

  void add_term(std::vector<Ladder> ops, cplx coeff);
  const std::vector<std::pair<std::vector<Ladder>, cplx>>& terms() const {
    return terms_;
  }

  FermionOperator& operator+=(const FermionOperator& o);
  FermionOperator& operator*=(cplx s);

  /// The Hermitian conjugate (reverses products, flips daggers, conjugates).
  FermionOperator adjoint() const;

 private:
  std::size_t n_;
  std::vector<std::pair<std::vector<Ladder>, cplx>> terms_;
};

/// Jordan-Wigner images of single ladder operators.
QubitOperator jw_annihilation(std::size_t n_qubits, std::size_t p);
QubitOperator jw_creation(std::size_t n_qubits, std::size_t p);
/// Number operator a_p^dagger a_p = (I - Z_p) / 2.
QubitOperator jw_number(std::size_t n_qubits, std::size_t p);

/// Full transform of a fermionic operator.
QubitOperator jordan_wigner(const FermionOperator& op);

}  // namespace q2::pauli
