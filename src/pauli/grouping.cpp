#include "pauli/grouping.hpp"

namespace q2::pauli {

bool qubitwise_compatible(const PauliString& a, const PauliString& b) {
  require(a.n_qubits() == b.n_qubits(),
          "qubitwise_compatible: qubit count mismatch");
  const auto &xa = a.x_mask(), &za = a.z_mask();
  const auto &xb = b.x_mask(), &zb = b.z_mask();
  for (std::size_t w = 0; w < xa.size(); ++w) {
    // Conflict on a qubit: both non-identity and the (x, z) labels differ.
    const std::uint64_t na = xa[w] | za[w], nb = xb[w] | zb[w];
    if (na & nb & ((xa[w] ^ xb[w]) | (za[w] ^ zb[w]))) return false;
  }
  return true;
}

std::vector<MeasurementGroup> group_qubitwise_commuting(
    const std::vector<PauliString>& terms) {
  std::vector<MeasurementGroup> groups;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const PauliString& p = terms[i];
    if (p.is_identity()) continue;
    const auto [plo, phi] = p.support_range();
    MeasurementGroup* home = nullptr;
    for (auto& g : groups) {
      if (qubitwise_compatible(p, g.basis)) {
        home = &g;
        break;
      }
    }
    if (!home) {
      groups.push_back({});
      home = &groups.back();
      home->basis = PauliString(p.n_qubits());
      home->lo = plo;
      home->hi = phi;
    } else {
      home->lo = std::min(home->lo, plo);
      home->hi = std::max(home->hi, phi);
    }
    // Fold p into the union basis: compatible strings only ever widen it.
    for (std::size_t q = plo; q <= phi; ++q) {
      const P pq = p.get(q);
      if (pq != P::I) home->basis.set(q, pq);
    }
    home->members.push_back(i);
  }
  return groups;
}

double support_cost(const PauliString& p) {
  if (p.is_identity()) return 0.0;
  const auto [lo, hi] = p.support_range();
  return support_cost(lo, hi);
}

}  // namespace q2::pauli
