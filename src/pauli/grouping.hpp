// Commuting-group measurement planning: partitions the Pauli terms of a
// Hamiltonian into qubit-wise commuting (QWC) groups so an expectation sweep
// can share one transfer pass per group instead of one per term (the Eq. (2)
// sum is dominated by terms with overlapping support). Grouping is a plan
// only — per-term expectation values are still computed individually and
// reduced in the original term order, so grouped energies are bit-identical
// to the ungrouped serial sweep.
#pragma once

#include <vector>

#include "pauli/pauli_string.hpp"

namespace q2::pauli {

/// True iff on every qubit the two strings agree or at least one is the
/// identity — the QWC condition. O(n/64) on the packed masks.
bool qubitwise_compatible(const PauliString& a, const PauliString& b);

/// One measurement basis setting: the union basis of all members, the member
/// indices into the caller's term list (ascending), and the union support
/// range the sweep must cover.
struct MeasurementGroup {
  PauliString basis;                 ///< per-qubit union of member Paulis
  std::vector<std::size_t> members;  ///< indices into the input term list
  std::size_t lo = 0;                ///< first site of the union support
  std::size_t hi = 0;                ///< last site of the union support
};

/// Greedy first-fit QWC partition. Deterministic: depends only on the input
/// list and its order. Identity terms are skipped entirely (they carry no
/// measurement). A term is placed in the first group whose union basis it is
/// compatible with — compatibility with the union basis is equivalent to
/// pairwise compatibility with every member.
std::vector<MeasurementGroup> group_qubitwise_commuting(
    const std::vector<PauliString>& terms);

/// The shared support-range cost model: estimated transfer work for a sweep
/// over sites [lo, hi]. Both the LPT term balancer
/// (EnergyEvaluator::term_costs) and the measurement sweeps price work with
/// this one function so the schedule and the sweep cannot drift apart.
inline double support_cost(std::size_t lo, std::size_t hi) {
  return 1.0 + double(hi - lo + 1);
}
double support_cost(const PauliString& p);

}  // namespace q2::pauli
