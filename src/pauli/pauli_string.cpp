#include "pauli/pauli_string.hpp"

#include <sstream>

namespace q2::pauli {
namespace {

std::size_t words_for(std::size_t n) { return (n + 63) / 64; }

int popcount_and(const std::vector<std::uint64_t>& a,
                 const std::vector<std::uint64_t>& b) {
  int c = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    c += __builtin_popcountll(a[i] & b[i]);
  return c;
}

}  // namespace

PauliString::PauliString(std::size_t n_qubits)
    : n_(n_qubits), x_(words_for(n_qubits), 0), z_(words_for(n_qubits), 0) {}

PauliString PauliString::parse(std::size_t n_qubits, const std::string& text) {
  PauliString s(n_qubits);
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    require(tok.size() >= 2, "PauliString::parse: bad token");
    const char c = tok[0];
    const std::size_t q = std::stoul(tok.substr(1));
    require(q < n_qubits, "PauliString::parse: qubit out of range");
    switch (c) {
      case 'X': s.set(q, P::X); break;
      case 'Y': s.set(q, P::Y); break;
      case 'Z': s.set(q, P::Z); break;
      case 'I': s.set(q, P::I); break;
      default: throw Error("PauliString::parse: unknown Pauli letter");
    }
  }
  return s;
}

P PauliString::get(std::size_t q) const {
  const std::size_t w = q / 64, b = q % 64;
  const int x = int((x_[w] >> b) & 1), z = int((z_[w] >> b) & 1);
  return P(x | (z << 1));
}

void PauliString::set(std::size_t q, P p) {
  require(q < n_, "PauliString::set: qubit out of range");
  const std::size_t w = q / 64, b = q % 64;
  const std::uint64_t mask = std::uint64_t(1) << b;
  const int v = int(p);
  x_[w] = (x_[w] & ~mask) | ((v & 1) ? mask : 0);
  z_[w] = (z_[w] & ~mask) | ((v & 2) ? mask : 0);
}

bool PauliString::is_identity() const {
  for (std::size_t i = 0; i < x_.size(); ++i)
    if (x_[i] | z_[i]) return false;
  return true;
}

std::size_t PauliString::weight() const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < x_.size(); ++i)
    c += std::size_t(__builtin_popcountll(x_[i] | z_[i]));
  return c;
}

std::vector<std::size_t> PauliString::support() const {
  std::vector<std::size_t> s;
  for (std::size_t q = 0; q < n_; ++q)
    if (get(q) != P::I) s.push_back(q);
  return s;
}

std::pair<std::size_t, std::size_t> PauliString::support_range() const {
  std::size_t lo = 0, hi = 0;
  bool found = false;
  for (std::size_t q = 0; q < n_; ++q) {
    if (get(q) != P::I) {
      if (!found) lo = q;
      hi = q;
      found = true;
    }
  }
  return {lo, hi};
}

bool PauliString::commutes_with(const PauliString& other) const {
  require(n_ == other.n_, "commutes_with: qubit count mismatch");
  // Symplectic form: strings anticommute iff sum over qubits of
  // (x1 z2 + z1 x2) is odd.
  const int k = popcount_and(x_, other.z_) + popcount_and(z_, other.x_);
  return (k % 2) == 0;
}

PauliString PauliString::permuted(const std::vector<int>& site_of) const {
  require(site_of.size() == n_, "permuted: map size mismatch");
  PauliString r(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    const P p = get(q);
    if (p == P::I) continue;
    const int s = site_of[q];
    require(s >= 0 && std::size_t(s) < n_, "permuted: site out of range");
    r.set(std::size_t(s), p);
  }
  return r;
}

std::string PauliString::str() const {
  if (is_identity()) return "I";
  std::ostringstream out;
  bool first = true;
  for (std::size_t q = 0; q < n_; ++q) {
    const P p = get(q);
    if (p == P::I) continue;
    if (!first) out << ' ';
    first = false;
    out << "IXZY"[int(p)] << q;
  }
  return out.str();
}

std::size_t PauliString::Hash::operator()(const PauliString& s) const {
  std::size_t h = s.n_qubits() * 0x9e3779b97f4a7c15ull;
  for (auto w : s.x_mask()) h = (h ^ w) * 0x100000001b3ull;
  for (auto w : s.z_mask()) h = (h ^ w) * 0x100000001b3ull;
  return h;
}

void PauliString::single_qubit_matrix(P p, cplx out[4]) {
  switch (p) {
    case P::I: out[0] = 1; out[1] = 0; out[2] = 0; out[3] = 1; break;
    case P::X: out[0] = 0; out[1] = 1; out[2] = 1; out[3] = 0; break;
    case P::Y: out[0] = 0; out[1] = {0, -1}; out[2] = {0, 1}; out[3] = 0; break;
    case P::Z: out[0] = 1; out[1] = 0; out[2] = 0; out[3] = -1; break;
  }
}

std::pair<PauliString, int> multiply(const PauliString& a, const PauliString& b) {
  require(a.n_qubits() == b.n_qubits(), "multiply: qubit count mismatch");
  PauliString r(a.n_qubits());
  int phase = 0;  // exponent of i, mod 4
  // Phase table: row = left Pauli, col = right Pauli, value = i-exponent of
  // the product (e.g. X*Y = iZ -> 1, Y*X = -iZ -> 3). Index order I,X,Z,Y.
  static constexpr int kPhase[4][4] = {
      //            I  X  Z  Y
      /* I */      {0, 0, 0, 0},
      /* X */      {0, 0, 3, 1},
      /* Z */      {0, 1, 0, 3},
      /* Y */      {0, 3, 1, 0},
  };
  for (std::size_t q = 0; q < a.n_qubits(); ++q) {
    const P pa = a.get(q), pb = b.get(q);
    phase = (phase + kPhase[int(pa)][int(pb)]) % 4;
    r.set(q, P(int(pa) ^ int(pb)));
  }
  return {r, phase};
}

}  // namespace q2::pauli
