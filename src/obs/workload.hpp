// Work accounting: kernels charge deterministic flop/byte costs at the call
// site so profile nodes can report achieved GFLOP/s and arithmetic intensity
// (roofline attribution). Placement rules (see DESIGN.md "Performance
// attribution"):
//
//   * Charge on the thread that owns the enclosing span, with an analytic
//     cost model evaluated *before* any parallel dispatch — never per-tile
//     inside workers. Totals are then bit-identical at every thread count.
//   * Charge where the arithmetic is decided, once: gemm_blocked charges for
//     every packed multiply that funnels through it, so callers higher up
//     (CPE tiles, MPS contractions, Pauli sweeps) must not re-charge flops
//     that reach a nested GEMM — they charge only the work the model below
//     does not see (e.g. DMA staging bytes, fused per-fiber updates).
//   * Byte models are minimal-traffic (each operand streamed once); measured
//     bandwidth above the model means cache misses, below means reuse.
#pragma once

#include <cstddef>
#include <cstdint>

namespace q2::obs {

/// Charges work to the always-on `work.flops` / `work.bytes` counters and,
/// when profiling is enabled, to the calling thread's open profile node.
struct WorkCounter {
  static void charge(std::uint64_t flops, std::uint64_t bytes);
};

/// C += A·B with A m×k, B k×n: one complex multiply-add is 8 flops (4 mul +
/// 4 add), one real multiply-add is 2.
inline std::uint64_t gemm_flops(std::size_t m, std::size_t k, std::size_t n,
                                bool complex_elements) {
  return std::uint64_t(complex_elements ? 8 : 2) * m * k * n;
}

/// Minimal GEMM traffic: stream A and B once, read + write C.
inline std::uint64_t gemm_bytes(std::size_t m, std::size_t k, std::size_t n,
                                std::size_t elem_bytes) {
  return std::uint64_t(m * k + k * n + 2 * m * n) * elem_bytes;
}

/// Per-sweep column-norm refresh over `cols` complex columns of length `len`:
/// |z|^2 accumulate = 4 flops/element (2 mul + 2 add).
inline std::uint64_t jacobi_norm_flops(std::size_t cols, std::size_t len) {
  return std::uint64_t(4) * cols * len;
}
inline std::uint64_t jacobi_norm_bytes(std::size_t cols, std::size_t len) {
  return std::uint64_t(16) * cols * len;
}

/// One tournament round: every measured pair pays a conjugated dot product
/// (8 flops/element); each pair that actually rotated (rel >= kRotateTol)
/// additionally applies a 2x2 complex rotation to its two W columns (length
/// `len`) and two V^H rows (length `vcols`) at 20 flops per element pair.
inline std::uint64_t jacobi_round_flops(std::size_t pairs, std::size_t rotated,
                                        std::size_t len, std::size_t vcols) {
  return std::uint64_t(8) * pairs * len +
         std::uint64_t(20) * rotated * (len + vcols);
}

/// Round traffic: dots read both columns; rotations read and write both
/// columns/rows on each side.
inline std::uint64_t jacobi_round_bytes(std::size_t pairs, std::size_t rotated,
                                        std::size_t len, std::size_t vcols) {
  return std::uint64_t(16) *
         (2 * pairs * len + 4 * rotated * (len + vcols));
}

}  // namespace q2::obs
