#include "obs/workload.hpp"

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace q2::obs {

void WorkCounter::charge(std::uint64_t flops, std::uint64_t bytes) {
  static Counter& flop_counter = Registry::global().counter("work.flops");
  static Counter& byte_counter = Registry::global().counter("work.bytes");
  if (flops > 0) flop_counter.add(flops);
  if (bytes > 0) byte_counter.add(bytes);
  if (profiling_enabled()) detail::profile_charge(flops, bytes);
}

}  // namespace q2::obs
