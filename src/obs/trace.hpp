// Scoped-span tracing with Chrome trace_event export. Usage:
//
//   void apply_gate() {
//     OBS_SPAN("mps/two_qubit_gate");
//     { OBS_SPAN("mps/svd"); svd(...); }   // nested span
//   }
//
// Spans are recorded into per-thread buffers (one uncontended mutex hop per
// span) and exported as Chrome "complete" events (ph:"X"), so a dump opens
// directly in chrome://tracing or https://ui.perfetto.dev. Nesting is implied
// by ts/dur containment per thread lane, exactly how Chrome renders it.
//
// Cost model: tracing is off by default and OBS_SPAN then costs one relaxed
// atomic load + branch. Defining Q2_OBS_DISABLE_TRACING compiles the macro
// out entirely. Span names must have static storage duration (string
// literals) — only the pointer is stored.
#pragma once

#include <atomic>
#include <string>

namespace q2::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
/// Microseconds since the process trace epoch (first telemetry use).
double trace_now_us();
void record_span(const char* name, double start_us, double end_us);
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing(bool enabled);

/// Discards every recorded span.
void clear_trace();
/// Number of spans recorded so far (across all threads).
std::size_t trace_event_count();

/// The Chrome trace_event JSON object format:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":...,"tid":...},...]}
std::string trace_json();
/// Writes trace_json() to `path`; returns false on I/O failure.
bool write_trace_file(const std::string& path);

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_us_ = detail::trace_now_us();
    }
  }
  ~ScopedSpan() {
    if (name_) detail::record_span(name_, start_us_, detail::trace_now_us());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace q2::obs

#ifdef Q2_OBS_DISABLE_TRACING
#define OBS_SPAN(name)
#else
#define Q2_OBS_CONCAT2(a, b) a##b
#define Q2_OBS_CONCAT(a, b) Q2_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::q2::obs::ScopedSpan Q2_OBS_CONCAT(q2_obs_span_, __LINE__)(name)
#endif
