// Scoped-span tracing with Chrome trace_event export. Usage:
//
//   void apply_gate() {
//     OBS_SPAN("mps/two_qubit_gate");
//     { OBS_SPAN("mps/svd"); svd(...); }   // nested span
//   }
//
// Spans are recorded into per-thread buffers (one uncontended mutex hop per
// span) and exported as Chrome "complete" events (ph:"X"), so a dump opens
// directly in chrome://tracing or https://ui.perfetto.dev. Nesting is implied
// by ts/dur containment per thread lane, exactly how Chrome renders it.
//
// The same OBS_SPAN hook also feeds the hierarchical call-tree profile (see
// profile.hpp): a span-mask bitfield selects tracing, profiling, both, or
// neither. Per-thread trace buffers are bounded (default ~1M spans, override
// with Q2_TRACE_LIMIT or set_trace_limit); overflow increments the
// trace.dropped_spans counter instead of growing without bound.
//
// Cost model: with both bits off OBS_SPAN costs one relaxed atomic load +
// branch. Defining Q2_OBS_DISABLE_TRACING compiles the macro out entirely
// (which also starves the profile of spans). Span names must have static
// storage duration (string literals) — only the pointer is stored.
#pragma once

#include <atomic>
#include <string>

namespace q2::obs {

namespace detail {
inline constexpr unsigned kSpanTracing = 1u;
inline constexpr unsigned kSpanProfiling = 2u;
extern std::atomic<unsigned> g_span_mask;
/// Microseconds since the process trace epoch (first telemetry use).
double trace_now_us();
void record_span(const char* name, double start_us, double end_us);
// Profile hooks, defined in profile.cpp.
void profile_enter(const char* name);
void profile_exit(double elapsed_us);
}  // namespace detail

inline bool tracing_enabled() {
  return (detail::g_span_mask.load(std::memory_order_relaxed) &
          detail::kSpanTracing) != 0;
}
inline bool profiling_enabled() {
  return (detail::g_span_mask.load(std::memory_order_relaxed) &
          detail::kSpanProfiling) != 0;
}
void set_tracing(bool enabled);
void set_profiling(bool enabled);

/// Discards every recorded span and resets the dropped-span count.
void clear_trace();
/// Number of spans recorded so far (across all threads).
std::size_t trace_event_count();
/// Spans dropped because a thread buffer hit the trace limit.
std::size_t trace_dropped_count();
/// Caps each thread's trace buffer at `max_spans` events; 0 restores the
/// default (Q2_TRACE_LIMIT env if set, else ~1M spans per thread).
void set_trace_limit(std::size_t max_spans);

/// The Chrome trace_event JSON object format:
/// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":...,"tid":...},...]}
std::string trace_json();
/// Writes trace_json() to `path`; returns false on I/O failure.
bool write_trace_file(const std::string& path);

class ScopedSpan {
 public:
  /// `allowed` restricts which sinks may see this span: OBS_SPAN passes both
  /// bits; OBS_SPAN_TRACE_ONLY masks profiling out so scheduler-dependent
  /// helper spans (pool chunks/tasks) cannot perturb profile node paths.
  explicit ScopedSpan(const char* name,
                      unsigned allowed = detail::kSpanTracing |
                                         detail::kSpanProfiling) {
    const unsigned mask =
        detail::g_span_mask.load(std::memory_order_relaxed) & allowed;
    if (mask != 0) {
      mask_ = mask;
      name_ = name;
      start_us_ = detail::trace_now_us();
      if (mask & detail::kSpanProfiling) detail::profile_enter(name);
    }
  }
  ~ScopedSpan() {
    if (mask_ != 0) {
      const double end_us = detail::trace_now_us();
      if (mask_ & detail::kSpanTracing)
        detail::record_span(name_, start_us_, end_us);
      if (mask_ & detail::kSpanProfiling)
        detail::profile_exit(end_us - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  unsigned mask_ = 0;  // bits captured at construction; 0 = span disabled
};

}  // namespace q2::obs

#ifdef Q2_OBS_DISABLE_TRACING
#define OBS_SPAN(name)
#define OBS_SPAN_TRACE_ONLY(name)
#else
#define Q2_OBS_CONCAT2(a, b) a##b
#define Q2_OBS_CONCAT(a, b) Q2_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::q2::obs::ScopedSpan Q2_OBS_CONCAT(q2_obs_span_, __LINE__)(name)
// Trace-lane only: never becomes a profile node. For spans whose placement
// depends on the scheduler (which thread ran which chunk), where a profile
// node would make the call-tree shape vary with the thread count.
#define OBS_SPAN_TRACE_ONLY(name)                                \
  ::q2::obs::ScopedSpan Q2_OBS_CONCAT(q2_obs_span_, __LINE__)(   \
      name, ::q2::obs::detail::kSpanTracing)
#endif
