#include "obs/report.hpp"

namespace q2::obs {

RunReport& RunReport::global() {
  static RunReport* r = new RunReport;  // leaked: see Registry::global()
  return *r;
}

bool RunReport::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "w");
  open_.store(file_ != nullptr, std::memory_order_relaxed);
  return file_ != nullptr;
}

void RunReport::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.store(false, std::memory_order_relaxed);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void RunReport::record(const char* kind, const std::vector<JsonField>& fields) {
  if (!is_open()) return;
  std::vector<JsonField> all;
  all.reserve(fields.size() + 1);
  all.emplace_back("kind", kind);
  all.insert(all.end(), fields.begin(), fields.end());
  const std::string line = json_object(all) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (!file_) return;  // closed while we were formatting
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace q2::obs
