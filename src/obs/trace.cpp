#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace q2::obs {
namespace detail {

std::atomic<bool> g_tracing_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

struct TraceEvent {
  const char* name;
  double ts_us;
  double dur_us;
};

// Buffers are owned by a global list (not the thread) so events survive
// thread exit; the per-buffer mutex is uncontended except during export.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid;
};

struct BufferList {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferList& buffer_list() {
  static BufferList* list = new BufferList;  // leaked: see Registry::global()
  return *list;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    b->tid = list.next_tid++;
    list.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

void record_span(const char* name, double start_us, double end_us) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({name, start_us, end_us - start_us});
}

}  // namespace detail

void set_tracing(bool enabled) {
  detail::trace_epoch();  // pin the epoch before the first span
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    b->events.clear();
  }
}

std::size_t trace_event_count() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  std::size_t n = 0;
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

std::string trace_json() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    for (const detail::TraceEvent& e : b->events) {
      if (!first) out += ',';
      first = false;
      out += json_object({{"name", e.name},
                          {"cat", "q2"},
                          {"ph", "X"},
                          {"ts", e.ts_us},
                          {"dur", e.dur_us},
                          {"pid", 1},
                          {"tid", b->tid}});
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace q2::obs
