#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace q2::obs {
namespace detail {

std::atomic<unsigned> g_span_mask{0};

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

struct TraceEvent {
  const char* name;
  double ts_us;
  double dur_us;
};

// Buffers are owned by a global list (not the thread) so events survive
// thread exit; the per-buffer mutex is uncontended except during export.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid;
};

struct BufferList {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferList& buffer_list() {
  static BufferList* list = new BufferList;  // leaked: see Registry::global()
  return *list;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    b->tid = list.next_tid++;
    list.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

constexpr std::size_t kDefaultTraceLimit = std::size_t(1) << 20;  // ~1M spans

std::size_t env_trace_limit() {
  static const std::size_t limit = [] {
    if (const char* env = std::getenv("Q2_TRACE_LIMIT")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v > 0) return std::size_t(v);
    }
    return kDefaultTraceLimit;
  }();
  return limit;
}

// 0 = use the env/default limit; set_trace_limit overrides.
std::atomic<std::size_t> g_trace_limit{0};
std::atomic<std::size_t> g_dropped_spans{0};

std::size_t trace_limit() {
  const std::size_t v = g_trace_limit.load(std::memory_order_relaxed);
  return v != 0 ? v : env_trace_limit();
}

Counter& dropped_counter() {
  static Counter& c = Registry::global().counter("trace.dropped_spans");
  return c;
}

}  // namespace

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

void record_span(const char* name, double start_us, double end_us) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= trace_limit()) {
    g_dropped_spans.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().add();
    return;
  }
  buf.events.push_back({name, start_us, end_us - start_us});
}

}  // namespace detail

namespace {

void set_span_bit(unsigned bit, bool enabled) {
  detail::trace_epoch();  // pin the epoch before the first span
  if (enabled)
    detail::g_span_mask.fetch_or(bit, std::memory_order_relaxed);
  else
    detail::g_span_mask.fetch_and(~bit, std::memory_order_relaxed);
}

}  // namespace

void set_tracing(bool enabled) { set_span_bit(detail::kSpanTracing, enabled); }

void set_profiling(bool enabled) {
  set_span_bit(detail::kSpanProfiling, enabled);
}

void clear_trace() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    b->events.clear();
  }
  detail::g_dropped_spans.store(0, std::memory_order_relaxed);
  detail::dropped_counter().reset();
}

std::size_t trace_event_count() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  std::size_t n = 0;
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

std::size_t trace_dropped_count() {
  return detail::g_dropped_spans.load(std::memory_order_relaxed);
}

void set_trace_limit(std::size_t max_spans) {
  detail::g_trace_limit.store(max_spans, std::memory_order_relaxed);
}

std::string trace_json() {
  detail::BufferList& list = detail::buffer_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> buf_lock(b->mutex);
    for (const detail::TraceEvent& e : b->events) {
      if (!first) out += ',';
      first = false;
      out += json_object({{"name", e.name},
                          {"cat", "q2"},
                          {"ph", "X"},
                          {"ts", e.ts_us},
                          {"dur", e.dur_us},
                          {"pid", 1},
                          {"tid", b->tid}});
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace q2::obs
