// Hierarchical span profile: rolls the per-thread OBS_SPAN stream into a
// call-tree aggregate (per-node count, total/self wall time, min/max, per-
// thread breakdown) with FLOP/byte work accounting for roofline-style
// attribution. Usage:
//
//   obs::set_profiling(true);
//   ... run instrumented code (OBS_SPAN + WorkCounter::charge) ...
//   std::puts(obs::profile_text().c_str());        // aligned table
//   obs::write_profile_file("profile.json");       // machine-readable tree
//
// The profile shares the OBS_SPAN hook with tracing (see trace.hpp): when
// both are off a span costs one relaxed atomic load. Each thread owns a
// private call tree (one uncontended mutex hop per span enter/exit, same
// cost model as the trace buffers); trees are merged by node *path* at
// export, so spans recorded by pool workers under a ScopedPathAdoption
// (below) land on the same node as the caller's — node identity, and hence
// every flop/byte count charged at a call site, is independent of the
// thread count.
//
// Self time is total minus the children's total. With cross-thread children
// (a parallel_for fan-out records child chunks on many threads while the
// parent span runs once) the children's summed wall time can exceed the
// parent's, making self negative — that surplus *is* the parallelism, and
// the export keeps it raw rather than hiding it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace q2::obs {

namespace detail {
// Span hooks, called by ScopedSpan (trace.hpp) when the profiling bit of the
// span mask is set.
void profile_enter(const char* name);
void profile_exit(double elapsed_us);
// Adds work to the calling thread's currently open profile node.
void profile_charge(std::uint64_t flops, std::uint64_t bytes);
}  // namespace detail

/// Names the calling thread in the profile's per-thread breakdown (e.g.
/// "rank3", "worker0"). Unnamed threads appear as "t<id>".
void set_thread_tag(const std::string& tag);

/// Discards all recorded profile data. Threads with an open span keep their
/// tree structure (zeroed); idle threads drop it entirely.
void clear_profile();

/// One merged call-tree node, as exported by profile_snapshot(). flops/bytes
/// are cumulative over the subtree (what a roofline wants per phase);
/// self_flops/self_bytes are the charges recorded at this node itself.
struct ProfileNode {
  std::string name;  ///< span name (last path component)
  std::string path;  ///< full path from the root, components joined by ';'
  int depth = 0;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;  ///< total - children; negative = concurrency surplus
  double min_us = 0.0;
  double max_us = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t self_flops = 0;
  std::uint64_t self_bytes = 0;
  /// (thread tag, wall time at this node) for every contributing thread.
  std::vector<std::pair<std::string, double>> by_thread;
};

/// Merged call tree in pre-order (parents before children, siblings in name
/// order). Nodes with no recorded data anywhere in their subtree are elided.
std::vector<ProfileNode> profile_snapshot();

/// {"profile":[{node}...],"parallel":{...},"dropped_spans":N}. The
/// "parallel" object carries the pool./comm./scheduler./work. metrics so the
/// rank/thread attribution travels with the tree.
std::string profile_json();
/// Aligned text table of the call tree (what shutdown prints to stderr when
/// --profile= is set).
std::string profile_text();
/// Writes profile_json() to `path`; returns false on I/O failure.
bool write_profile_file(const std::string& path);

/// Captured open-span path of a thread, used to re-root worker spans under
/// the node that dispatched them. Capture is cheap and returns a disengaged
/// path when profiling is off.
class ProfilePath {
 public:
  bool engaged() const { return engaged_; }

 private:
  friend ProfilePath current_profile_path();
  friend class ScopedPathAdoption;
  bool engaged_ = false;
  std::vector<const char*> names_;  // root-first span names (static storage)
};

/// The calling thread's open span path (disengaged if profiling is off).
ProfilePath current_profile_path();

/// RAII adoption of a captured path: spans opened by this thread while the
/// adoption is live nest under the captured path instead of the thread's own
/// stack. The path's intermediate nodes are created virtually (no count/time
/// of their own). No-op for a disengaged path.
class ScopedPathAdoption {
 public:
  explicit ScopedPathAdoption(const ProfilePath& path);
  ~ScopedPathAdoption();
  ScopedPathAdoption(const ScopedPathAdoption&) = delete;
  ScopedPathAdoption& operator=(const ScopedPathAdoption&) = delete;

 private:
  bool active_ = false;
  std::size_t saved_ = 0;
};

}  // namespace q2::obs
