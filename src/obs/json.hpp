// Minimal JSON emission helpers shared by the telemetry sinks (metrics dump,
// Chrome trace export, JSONL run reports). Emission only — parsing lives with
// the consumers (tests parse trace output back to validate it).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace q2::obs {

/// Returns `s` with JSON string escapes applied (no surrounding quotes).
std::string json_escape(const std::string& s);

/// Shortest round-trippable decimal for a double; NaN/Inf become null
/// (JSON has no encoding for them).
std::string json_number(double v);

/// One already-serialized JSON value. Implicit constructors cover the types
/// telemetry actually records; anything else can be passed pre-serialized via
/// JsonValue::raw().
class JsonValue {
 public:
  JsonValue(std::nullptr_t) : repr_("null") {}
  JsonValue(bool b) : repr_(b ? "true" : "false") {}
  JsonValue(const char* s) : repr_('"' + json_escape(s) + '"') {}
  JsonValue(const std::string& s) : repr_('"' + json_escape(s) + '"') {}
  JsonValue(const std::vector<double>& a);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T v) : repr_(std::to_string(v)) {}
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  JsonValue(T v) : repr_(json_number(double(v))) {}

  static JsonValue raw(std::string json);

  const std::string& str() const { return repr_; }

 private:
  JsonValue() = default;
  std::string repr_;
};

using JsonField = std::pair<std::string, JsonValue>;

/// `{"k1":v1,"k2":v2,...}` in the given order.
std::string json_object(const std::vector<JsonField>& fields);

}  // namespace q2::obs
