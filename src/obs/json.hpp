// Minimal JSON helpers shared by the telemetry sinks (metrics dump, Chrome
// trace export, JSONL run reports, span profiles): emission primitives plus a
// small recursive-descent parser (obs::Json) used by the consumers — tests
// parse telemetry output back to validate it, tools/bench_diff parses
// BENCH_*.json snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace q2::obs {

/// Returns `s` with JSON string escapes applied (no surrounding quotes).
std::string json_escape(const std::string& s);

/// Shortest round-trippable decimal for a double; NaN/Inf become null
/// (JSON has no encoding for them).
std::string json_number(double v);

/// One already-serialized JSON value. Implicit constructors cover the types
/// telemetry actually records; anything else can be passed pre-serialized via
/// JsonValue::raw().
class JsonValue {
 public:
  JsonValue(std::nullptr_t) : repr_("null") {}
  JsonValue(bool b) : repr_(b ? "true" : "false") {}
  JsonValue(const char* s) : repr_('"' + json_escape(s) + '"') {}
  JsonValue(const std::string& s) : repr_('"' + json_escape(s) + '"') {}
  JsonValue(const std::vector<double>& a);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T v) : repr_(std::to_string(v)) {}
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  JsonValue(T v) : repr_(json_number(double(v))) {}

  static JsonValue raw(std::string json);

  const std::string& str() const { return repr_; }

 private:
  JsonValue() = default;
  std::string repr_;
};

using JsonField = std::pair<std::string, JsonValue>;

/// `{"k1":v1,"k2":v2,...}` in the given order.
std::string json_object(const std::vector<JsonField>& fields);

/// Parsed JSON value: a tagged union just rich enough for telemetry output
/// (numbers are doubles, \u escapes are limited to latin-1). Json::parse
/// throws std::runtime_error on malformed input.
struct Json {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  static Json parse(const std::string& text);

  /// Object member access; throws std::runtime_error when the key is absent.
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

}  // namespace q2::obs
