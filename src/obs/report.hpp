// JSONL run reports: one machine-readable line per event, e.g.
//
//   {"kind":"vqe_iteration","iteration":3,"energy":-1.137,...}
//
// Drivers call RunReport::global().record(...) unconditionally; when no sink
// is open a record costs one relaxed atomic load. Lines are written atomically
// (one mutex-guarded fwrite + flush), so concurrent ranks interleave cleanly.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace q2::obs {

class RunReport {
 public:
  /// The process-wide report sink drivers write into.
  static RunReport& global();

  /// Opens (truncates) `path`; returns false on I/O failure.
  bool open(const std::string& path);
  void close();
  bool is_open() const { return open_.load(std::memory_order_relaxed); }

  /// Writes `{"kind":<kind>,...fields}` as one line; no-op when closed.
  void record(const char* kind, const std::vector<JsonField>& fields);

  ~RunReport() { close(); }

 private:
  std::mutex mutex_;
  std::atomic<bool> open_{false};
  std::FILE* file_ = nullptr;
};

}  // namespace q2::obs
