#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace q2::obs {
namespace {

// Per-thread call-tree node. `name` points at the OBS_SPAN string literal
// (static storage), so identity compares are a pointer check first.
struct PNode {
  const char* name = nullptr;
  std::size_t parent = 0;
  std::vector<std::size_t> children;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
};

struct ThreadProfile {
  std::mutex mutex;
  std::vector<PNode> nodes;  // nodes[0] is the synthetic root
  std::size_t current = 0;   // index of the innermost open node
  std::uint32_t tid = 0;
  std::string tag;
  ThreadProfile() { nodes.emplace_back(); }
};

struct ProfileList {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadProfile>> threads;
  std::uint32_t next_tid = 1;
};

// Leaked: worker threads may record spans during static destruction.
ProfileList& profile_list() {
  static ProfileList* list = new ProfileList;
  return *list;
}

ThreadProfile& local_profile() {
  thread_local std::shared_ptr<ThreadProfile> prof = [] {
    auto p = std::make_shared<ThreadProfile>();
    ProfileList& list = profile_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    p->tid = list.next_tid++;
    p->tag = "t" + std::to_string(p->tid);
    list.threads.push_back(p);
    return p;
  }();
  return *prof;
}

// Caller holds tp.mutex.
std::size_t find_or_create_child(ThreadProfile& tp, std::size_t parent,
                                 const char* name) {
  for (std::size_t c : tp.nodes[parent].children) {
    const char* cn = tp.nodes[c].name;
    if (cn == name || std::strcmp(cn, name) == 0) return c;
  }
  const std::size_t idx = tp.nodes.size();
  PNode node;
  node.name = name;
  node.parent = parent;
  tp.nodes.push_back(std::move(node));
  tp.nodes[parent].children.push_back(idx);
  return idx;
}

}  // namespace

namespace detail {

void profile_enter(const char* name) {
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  tp.current = find_or_create_child(tp, tp.current, name);
}

void profile_exit(double elapsed_us) {
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  if (tp.current == 0) return;  // enter was recorded before profiling flipped on
  PNode& node = tp.nodes[tp.current];
  if (node.count == 0 || elapsed_us < node.min_us) node.min_us = elapsed_us;
  if (node.count == 0 || elapsed_us > node.max_us) node.max_us = elapsed_us;
  node.total_us += elapsed_us;
  ++node.count;
  tp.current = node.parent;
}

void profile_charge(std::uint64_t flops, std::uint64_t bytes) {
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  // Charges with no open span land on the root, which the snapshot elides —
  // they still show up in the work.flops / work.bytes counters.
  PNode& node = tp.nodes[tp.current];
  node.flops += flops;
  node.bytes += bytes;
}

}  // namespace detail

void set_thread_tag(const std::string& tag) {
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  tp.tag = tag;
}

void clear_profile() {
  ProfileList& list = profile_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& tp : list.threads) {
    std::lock_guard<std::mutex> lock(tp->mutex);
    if (tp->current == 0) {
      tp->nodes.clear();
      tp->nodes.emplace_back();
    } else {
      // A span (or adoption) is open on this thread: indices must stay
      // valid, so zero the stats but keep the tree shape.
      for (PNode& n : tp->nodes) {
        n.count = 0;
        n.total_us = n.min_us = n.max_us = 0.0;
        n.flops = n.bytes = 0;
      }
    }
  }
}

ProfilePath current_profile_path() {
  ProfilePath path;
  if (!profiling_enabled()) return path;
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  path.engaged_ = true;
  for (std::size_t i = tp.current; i != 0; i = tp.nodes[i].parent)
    path.names_.push_back(tp.nodes[i].name);
  std::reverse(path.names_.begin(), path.names_.end());
  return path;
}

ScopedPathAdoption::ScopedPathAdoption(const ProfilePath& path) {
  if (!path.engaged()) return;
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  saved_ = tp.current;
  std::size_t cur = 0;
  for (const char* name : path.names_)
    cur = find_or_create_child(tp, cur, name);
  tp.current = cur;
  active_ = true;
}

ScopedPathAdoption::~ScopedPathAdoption() {
  if (!active_) return;
  ThreadProfile& tp = local_profile();
  std::lock_guard<std::mutex> lock(tp.mutex);
  tp.current = saved_;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Thread trees merged by path. Parents are always created before children,
// so a reverse index walk visits children first.
struct MNode {
  std::string name;
  std::size_t parent = 0;
  int depth = 0;
  std::map<std::string, std::size_t> children;  // name-ordered
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = kInf;
  double max_us = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t cum_flops = 0;
  std::uint64_t cum_bytes = 0;
  double child_total_us = 0.0;
  std::map<std::string, double> by_thread;  // tag -> wall us
  bool has_data = false;
};

std::vector<MNode> merged_tree() {
  std::vector<MNode> out(1);
  std::vector<std::shared_ptr<ThreadProfile>> threads;
  {
    ProfileList& list = profile_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    threads = list.threads;
  }
  for (const auto& tp : threads) {
    std::lock_guard<std::mutex> lock(tp->mutex);
    std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
      const auto [src, dst] = stack.back();
      stack.pop_back();
      const PNode& sn = tp->nodes[src];
      if (src != 0) {
        MNode& dn = out[dst];
        dn.count += sn.count;
        dn.total_us += sn.total_us;
        if (sn.count > 0) {
          dn.min_us = std::min(dn.min_us, sn.min_us);
          dn.max_us = std::max(dn.max_us, sn.max_us);
        }
        dn.flops += sn.flops;
        dn.bytes += sn.bytes;
        if (sn.count > 0 || sn.flops > 0 || sn.bytes > 0) {
          dn.has_data = true;
          dn.by_thread[tp->tag] += sn.total_us;
        }
      }
      for (std::size_t c : sn.children) {
        const std::string name = tp->nodes[c].name;
        auto it = out[dst].children.find(name);
        std::size_t cdst;
        if (it == out[dst].children.end()) {
          cdst = out.size();
          out.emplace_back();
          out[cdst].name = name;
          out[cdst].parent = dst;
          out[cdst].depth = out[dst].depth + 1;
          out[dst].children.emplace(name, cdst);
        } else {
          cdst = it->second;
        }
        stack.push_back({c, cdst});
      }
    }
  }
  for (std::size_t i = out.size(); i-- > 1;) {
    MNode& n = out[i];
    n.cum_flops += n.flops;
    n.cum_bytes += n.bytes;
    MNode& p = out[n.parent];
    p.cum_flops += n.cum_flops;
    p.cum_bytes += n.cum_bytes;
    p.child_total_us += n.total_us;
    if (n.has_data) p.has_data = true;
  }
  return out;
}

void emit_preorder(const std::vector<MNode>& tree, std::size_t idx,
                   const std::string& prefix, std::vector<ProfileNode>& out) {
  const MNode& n = tree[idx];
  std::string path = prefix;
  if (idx != 0) {
    path = prefix.empty() ? n.name : prefix + ";" + n.name;
    ProfileNode pn;
    pn.name = n.name;
    pn.path = path;
    pn.depth = n.depth - 1;  // the synthetic root is elided: top level = 0
    pn.count = n.count;
    pn.total_us = n.total_us;
    pn.self_us = n.total_us - n.child_total_us;
    pn.min_us = n.count > 0 ? n.min_us : 0.0;
    pn.max_us = n.max_us;
    pn.flops = n.cum_flops;
    pn.bytes = n.cum_bytes;
    pn.self_flops = n.flops;
    pn.self_bytes = n.bytes;
    pn.by_thread.assign(n.by_thread.begin(), n.by_thread.end());
    out.push_back(std::move(pn));
  }
  for (const auto& [name, child] : n.children) {
    (void)name;
    if (tree[child].has_data) emit_preorder(tree, child, path, out);
  }
}

double node_gflops(const ProfileNode& n) {
  return n.total_us > 0.0 ? double(n.flops) * 1e-3 / n.total_us : 0.0;
}
double node_intensity(const ProfileNode& n) {
  return n.bytes > 0 ? double(n.flops) / double(n.bytes) : 0.0;
}

}  // namespace

std::vector<ProfileNode> profile_snapshot() {
  const std::vector<MNode> tree = merged_tree();
  std::vector<ProfileNode> out;
  emit_preorder(tree, 0, "", out);
  return out;
}

std::string profile_json() {
  const std::vector<ProfileNode> nodes = profile_snapshot();
  std::string nodes_json = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ProfileNode& n = nodes[i];
    if (i > 0) nodes_json += ',';
    std::string by_thread = "{";
    for (std::size_t t = 0; t < n.by_thread.size(); ++t) {
      if (t > 0) by_thread += ',';
      by_thread += '"' + json_escape(n.by_thread[t].first) +
                   "\":" + json_number(n.by_thread[t].second);
    }
    by_thread += '}';
    nodes_json += json_object({
        {"name", n.name},
        {"path", n.path},
        {"depth", n.depth},
        {"count", n.count},
        {"total_us", n.total_us},
        {"self_us", n.self_us},
        {"min_us", n.min_us},
        {"max_us", n.max_us},
        {"flops", n.flops},
        {"bytes", n.bytes},
        {"self_flops", n.self_flops},
        {"self_bytes", n.self_bytes},
        {"gflops", node_gflops(n)},
        {"intensity", node_intensity(n)},
        {"by_thread", JsonValue::raw(std::move(by_thread))},
    });
  }
  nodes_json += ']';

  // Rank/thread attribution travels with the tree: every parallel-runtime and
  // work-accounting instrument from the registry, by prefix.
  const MetricsSnapshot ms = Registry::global().snapshot();
  const auto is_parallel = [](const std::string& name) {
    for (const char* p : {"pool.", "comm.", "scheduler.", "work.", "swsim."})
      if (name.rfind(p, 0) == 0) return true;
    return false;
  };
  std::string par = "{";
  bool first = true;
  for (const auto& [k, v] : ms.counters) {
    if (!is_parallel(k)) continue;
    if (!first) par += ',';
    first = false;
    par += '"' + json_escape(k) + "\":" + std::to_string(v);
  }
  for (const auto& [k, v] : ms.gauges) {
    if (!is_parallel(k)) continue;
    if (!first) par += ',';
    first = false;
    par += '"' + json_escape(k) + "\":" + json_number(v);
  }
  par += '}';

  return json_object({
      {"profile", JsonValue::raw(std::move(nodes_json))},
      {"parallel", JsonValue::raw(std::move(par))},
      {"dropped_spans", trace_dropped_count()},
  });
}

std::string profile_text() {
  const std::vector<ProfileNode> nodes = profile_snapshot();
  std::string out;
  char line[320];
  std::snprintf(line, sizeof line, "%-44s %9s %12s %12s %10s %9s %8s\n", "span",
                "count", "total_ms", "self_ms", "max_ms", "GFLOP/s", "flop/B");
  out += line;
  for (const ProfileNode& n : nodes) {
    std::string name(std::size_t(2 * n.depth), ' ');
    name += n.name;
    std::snprintf(line, sizeof line,
                  "%-44s %9llu %12.3f %12.3f %10.3f %9.2f %8.2f\n",
                  name.c_str(), static_cast<unsigned long long>(n.count),
                  n.total_us / 1000.0, n.self_us / 1000.0, n.max_us / 1000.0,
                  node_gflops(n), node_intensity(n));
    out += line;
  }
  return out;
}

bool write_profile_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = profile_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace q2::obs
