#include "obs/metrics.hpp"

#include <algorithm>

#include "common/types.hpp"
#include "obs/json.hpp"

namespace q2::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double x) {
  // Edges are inclusive upper bounds: x lands in the first bucket whose edge
  // is >= x (lower_bound), matching the Prometheus `le` convention.
  const std::size_t i =
      std::size_t(std::lower_bound(bounds_.begin(), bounds_.end(), x) -
                  bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + x, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_time_bounds() {
  // 1 µs .. ~30 s, two buckets per decade (1, 3.16, 10, ...); larger values
  // land in the overflow bucket.
  std::vector<double> b;
  double edge = 1e-6;
  for (int i = 0; i < 16; ++i) {
    b.push_back(edge);
    edge *= 3.1622776601683795;  // sqrt(10)
  }
  return b;
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

std::string Registry::text() const {
  const MetricsSnapshot s = snapshot();
  std::string out;
  for (const auto& [name, v] : s.counters)
    out += "counter   " + name + " = " + std::to_string(v) + "\n";
  for (const auto& [name, v] : s.gauges)
    out += "gauge     " + name + " = " + json_number(v) + "\n";
  for (const auto& [name, h] : s.histograms) {
    out += "histogram " + name + " count=" + std::to_string(h.count) +
           " sum=" + json_number(h.sum);
    if (h.count > 0) out += " mean=" + json_number(h.sum / double(h.count));
    out += "\n";
  }
  return out;
}

std::string Registry::json() const {
  const MetricsSnapshot s = snapshot();
  std::vector<JsonField> counters, gauges, histograms;
  for (const auto& [name, v] : s.counters) counters.emplace_back(name, v);
  for (const auto& [name, v] : s.gauges) gauges.emplace_back(name, v);
  for (const auto& [name, h] : s.histograms) {
    std::vector<double> counts(h.counts.begin(), h.counts.end());
    histograms.emplace_back(
        name, JsonValue::raw(json_object({{"count", h.count},
                                          {"sum", h.sum},
                                          {"bounds", h.bounds},
                                          {"counts", counts}})));
  }
  return json_object(
      {{"counters", JsonValue::raw(json_object(counters))},
       {"gauges", JsonValue::raw(json_object(gauges))},
       {"histograms", JsonValue::raw(json_object(histograms))}});
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace q2::obs
