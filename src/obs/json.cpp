#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace q2::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; try the shorter %.15g first.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonValue::JsonValue(const std::vector<double>& a) {
  repr_ = "[";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i) repr_ += ',';
    repr_ += json_number(a[i]);
  }
  repr_ += ']';
}

JsonValue JsonValue::raw(std::string json) {
  JsonValue v;
  v.repr_ = std::move(json);
  return v;
}

std::string json_object(const std::vector<JsonField>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(fields[i].first) + "\":" + fields[i].second.str();
  }
  out += '}';
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (consume_literal("null")) return Json{};
    if (consume_literal("true")) {
      Json v;
      v.type = Json::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Json v;
      v.type = Json::kBool;
      return v;
    }
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Json key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.type = Json::kString;
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
            const unsigned code =
                unsigned(std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            if (code > 0xFF) throw std::runtime_error("non-latin \\u escape");
            v.string += char(code);
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else {
        v.string += c;
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("expected a number");
    Json v;
    v.type = Json::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return JsonParser(text).parse(); }

const Json& Json::at(const std::string& key) const {
  auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("missing key: " + key);
  return it->second;
}

}  // namespace q2::obs
