#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace q2::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; try the shorter %.15g first.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

JsonValue::JsonValue(const std::vector<double>& a) {
  repr_ = "[";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i) repr_ += ',';
    repr_ += json_number(a[i]);
  }
  repr_ += ']';
}

JsonValue JsonValue::raw(std::string json) {
  JsonValue v;
  v.repr_ = std::move(json);
  return v;
}

std::string json_object(const std::vector<JsonField>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += '"' + json_escape(fields[i].first) + "\":" + fields[i].second.str();
  }
  out += '}';
  return out;
}

}  // namespace q2::obs
