// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. Designed for hot paths — instruments are lock-free atomics, and
// callers cache the reference from the (mutex-guarded) name lookup once:
//
//   static obs::Counter& gates = obs::Registry::global().counter("mps.gates");
//   gates.add();
//
// Instrument objects live for the lifetime of the process; reset() zeroes
// values but never invalidates references. Snapshots are pull-style and can be
// dumped as aligned text or JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace q2::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (loads, sizes, efficiencies). Also supports atomic
/// increments for occupancy-style gauges (pool.active_chunks) where several
/// threads enter/leave concurrently.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges; one
/// extra overflow bucket catches everything above the last edge. Also tracks
/// the exact sum and count, so mean = sum()/count().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-spaced edges suited to seconds-valued timings: 1 µs .. 100 s.
std::vector<double> default_time_bounds();

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// The process-wide registry every instrumented module reports into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only; later lookups reuse the
  /// existing instrument.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_time_bounds());

  MetricsSnapshot snapshot() const;
  /// Human-readable dump, one instrument per line.
  std::string text() const;
  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
  std::string json() const;

  /// Zeroes every instrument. References handed out earlier stay valid —
  /// instruments are never deallocated.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace q2::obs
