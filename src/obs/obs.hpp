// Umbrella header and process-level wiring for the telemetry layer
// (metrics + tracing + span profiles + run reports). Examples and benches
// call configure_from_args() first thing in main():
//
//   ./quickstart --trace=run.trace.json --report=run.jsonl \
//                --metrics=m.json --profile=p.json
//
// Recognized flags are stripped from argv so positional arguments keep
// working. The same switches are honoured as environment variables
// (Q2_TRACE / Q2_REPORT / Q2_METRICS / Q2_PROFILE, each naming an output
// file) so instrumented binaries need no flag plumbing at all. Outputs are
// written by shutdown(), which configure_from_args() registers via atexit.
#pragma once

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"

namespace q2::obs {

/// Consumes --trace=FILE / --report=FILE / --metrics=FILE / --profile=FILE
/// (and the matching Q2_* environment variables), enables the requested
/// sinks, and registers shutdown() to run at exit.
void configure_from_args(int& argc, char** argv);

/// Environment-only variant for binaries that do their own flag parsing.
void configure_from_env();

/// Flushes configured sinks: writes the Chrome trace, the profile (JSON file
/// plus an aligned text table on stderr), and the metrics dump, then closes
/// the run report and disables span recording. Sinks are independent — one
/// failing to write logs a warning and the rest are still flushed.
/// Idempotent.
void shutdown();

}  // namespace q2::obs
