#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.hpp"

namespace q2::obs {
namespace {

struct Config {
  std::mutex mutex;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  bool atexit_registered = false;
};

Config& config() {
  static Config* c = new Config;  // leaked so atexit(shutdown) is always safe
  return *c;
}

// Returns the value if `arg` is --<name>=<value>, else nullptr.
const char* flag_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, "--", 2) != 0) return nullptr;
  if (std::strncmp(arg + 2, name, n) != 0) return nullptr;
  if (arg[2 + n] != '=') return nullptr;
  return arg + 2 + n + 1;
}

void apply(const char* trace, const char* report, const char* metrics,
           const char* profile) {
  Config& c = config();
  bool need_atexit = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    if (trace && *trace) {
      c.trace_path = trace;
      set_tracing(true);
    }
    if (metrics && *metrics) c.metrics_path = metrics;
    if (profile && *profile) {
      c.profile_path = profile;
      set_profiling(true);
    }
    if (report && *report) {
      if (!RunReport::global().open(report))
        log::warn(std::string("obs: cannot open report file ") + report);
    }
    if (!c.atexit_registered &&
        (!c.trace_path.empty() || !c.metrics_path.empty() ||
         !c.profile_path.empty() || RunReport::global().is_open())) {
      c.atexit_registered = true;
      need_atexit = true;
    }
  }
  if (need_atexit) std::atexit(shutdown);
}

}  // namespace

void configure_from_env() {
  apply(std::getenv("Q2_TRACE"), std::getenv("Q2_REPORT"),
        std::getenv("Q2_METRICS"), std::getenv("Q2_PROFILE"));
}

void configure_from_args(int& argc, char** argv) {
  const char* trace = nullptr;
  const char* report = nullptr;
  const char* metrics = nullptr;
  const char* profile = nullptr;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "trace")) {
      trace = v;
    } else if (const char* v = flag_value(argv[i], "report")) {
      report = v;
    } else if (const char* v = flag_value(argv[i], "metrics")) {
      metrics = v;
    } else if (const char* v = flag_value(argv[i], "profile")) {
      profile = v;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  configure_from_env();  // env first, flags override
  apply(trace, report, metrics, profile);
}

// Each sink flushes independently: a failure is a warning, never a reason to
// skip the remaining sinks (a full disk for the trace must not lose the
// metrics, and vice versa).
void shutdown() {
  Config& c = config();
  std::string trace_path, metrics_path, profile_path;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    trace_path.swap(c.trace_path);
    metrics_path.swap(c.metrics_path);
    profile_path.swap(c.profile_path);
  }
  if (!trace_path.empty()) {
    set_tracing(false);
    if (write_trace_file(trace_path)) {
      std::string msg = "obs: wrote " + std::to_string(trace_event_count()) +
                        " trace events to " + trace_path;
      if (const std::size_t dropped = trace_dropped_count())
        msg += " (" + std::to_string(dropped) + " spans dropped at the limit)";
      log::info(msg);
    } else {
      log::warn("obs: cannot write trace file " + trace_path);
    }
  }
  if (!profile_path.empty()) {
    set_profiling(false);
    if (write_profile_file(profile_path)) {
      log::info("obs: wrote profile to " + profile_path);
      const std::string table = profile_text();
      std::fwrite(table.data(), 1, table.size(), stderr);
    } else {
      log::warn("obs: cannot write profile file " + profile_path);
    }
  }
  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f) {
      const std::string json = Registry::global().json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      log::info("obs: wrote metrics to " + metrics_path);
    } else {
      log::warn("obs: cannot write metrics file " + metrics_path);
    }
  }
  RunReport::global().close();
}

}  // namespace q2::obs
