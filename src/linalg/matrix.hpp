// Dense row-major matrix. This is the workhorse container underneath the MPS
// tensors, the SCF matrices and the embedding Hamiltonians; it deliberately
// stays a plain value type (deep copy, move-enabled) per the Core Guidelines.
#pragma once

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <vector>

#include "common/types.hpp"

namespace q2::la {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major nested initializer, e.g. Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      require(row.size() == cols_, "Matrix: ragged initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix& operator+=(const Matrix& o) {
    require(same_shape(o), "Matrix+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    require(same_shape(o), "Matrix-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  /// Conjugate transpose; for real T this equals transposed().
  Matrix adjoint() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) {
        if constexpr (std::is_same_v<T, cplx>)
          t(c, r) = std::conj((*this)(r, c));
        else
          t(c, r) = (*this)(r, c);
      }
    return t;
  }

  double frobenius_norm() const {
    double s = 0;
    for (const auto& x : data_) s += std::norm(x);
    return std::sqrt(s);
  }

  double max_abs() const {
    double m = 0;
    for (const auto& x : data_) m = std::max(m, std::abs(x));
    return m;
  }

  const std::vector<T>& storage() const { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

using CMatrix = Matrix<cplx>;
using RMatrix = Matrix<double>;

/// Promote a real matrix to complex (needed at the chemistry/qubit boundary).
CMatrix to_complex(const RMatrix& a);
/// Real part of a complex matrix (valid when the imaginary part is noise).
RMatrix real_part(const CMatrix& a);

}  // namespace q2::la
