// Davidson eigensolver for large sparse symmetric/Hermitian operators that
// are only available as matrix-vector products. This is the FCI engine and
// the qubit-Hamiltonian cross-validation engine.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace q2::la {

struct DavidsonOptions {
  std::size_t max_subspace = 30;   ///< restart threshold
  std::size_t max_iterations = 200;
  double tolerance = 1e-9;         ///< residual 2-norm convergence target
};

struct DavidsonResult {
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Lowest eigenpair of a real symmetric operator. `apply` computes y = H x;
/// `diagonal` is H's diagonal, used as the Davidson preconditioner; `guess`
/// seeds the subspace (normalized internally).
DavidsonResult davidson_lowest(
    const std::function<std::vector<double>(const std::vector<double>&)>& apply,
    const std::vector<double>& diagonal, const std::vector<double>& guess,
    const DavidsonOptions& opts = {});

struct DavidsonResultC {
  double eigenvalue = 0.0;
  std::vector<cplx> eigenvector;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Lowest eigenpair of a Hermitian operator (complex vectors). Used to
/// diagonalize Jordan-Wigner qubit Hamiltonians on the state-vector simulator.
DavidsonResultC davidson_lowest_hermitian(
    const std::function<std::vector<cplx>(const std::vector<cplx>&)>& apply,
    const std::vector<double>& diagonal, const std::vector<cplx>& guess,
    const DavidsonOptions& opts = {});

}  // namespace q2::la
