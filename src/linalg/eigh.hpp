// Hermitian / symmetric eigensolvers (cyclic Jacobi). Used by the SCF Fock
// diagonalization, the DMET bath construction and small exact
// diagonalizations; eigenvalues are returned in ascending order.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace q2::la {

struct EighResult {
  std::vector<double> values;  ///< ascending
  CMatrix vectors;             ///< columns are eigenvectors
};

struct EighResultReal {
  std::vector<double> values;  ///< ascending
  RMatrix vectors;             ///< columns are eigenvectors
};

/// Full eigendecomposition of a Hermitian matrix.
EighResult eigh(const CMatrix& a);
/// Full eigendecomposition of a real symmetric matrix.
EighResultReal eigh(const RMatrix& a);

}  // namespace q2::la
