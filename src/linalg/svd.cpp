#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "linalg/gemm.hpp"
#include "linalg/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::la {

std::vector<std::vector<std::pair<std::size_t, std::size_t>>> tournament_rounds(
    std::size_t n) {
  // Modulus schedule: round k holds the pairs {i, j} with i + j == k (mod n),
  // i < j. Each index appears at most once per round (j is determined by i),
  // so rounds are disjoint, and every unordered pair lands in exactly one
  // round (its index sum mod n). Measured against the circle method this
  // round sequence converges in roughly half the sweeps on dense spectra —
  // close to the scalar cyclic ordering — because consecutive rounds pair
  // each column with adjacent partners instead of distance-grouped ones.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> rounds;
  if (n < 2) return rounds;
  rounds.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<std::pair<std::size_t, std::size_t>> round;
    round.reserve(n / 2);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (k + n - i) % n;
      if (i < j) round.emplace_back(i, j);
    }
    if (!round.empty()) rounds.push_back(std::move(round));
  }
  return rounds;
}

namespace {

// ---------------------------------------------------------------------------
// Tournament-Jacobi engine (the truncated-SVD substrate)
// ---------------------------------------------------------------------------

// Same convergence contract as the scalar reference: a sweep converges when
// the largest relative Gram off-diagonal drops below kSweepTol; individual
// rotations are skipped below kRotateTol.
constexpr double kSweepTol = 1e-14;
constexpr double kRotateTol = 1e-15;
constexpr int kMaxSweeps = 60;
// Square operands at least this large go through the QR preconditioner even
// though it does not shrink them: Jacobi on the triangular factor converges
// in noticeably fewer sweeps (Drmac/Veselic), which more than pays for the
// O(2/3 n^3) factorization.
constexpr std::size_t kPrecondMinSquare = 48;
// Rounds with less pair work than this (complex elements touched) run on the
// calling thread; pool dispatch would cost more than the rotations. The
// serial path computes the identical result — pairs in a round are disjoint
// and the off-diagonal reduction is a max — so this is a pure perf knob.
constexpr std::size_t kParallelMinWork = std::size_t(1) << 15;

obs::Counter& truncated_calls_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("la.svd.truncated_calls");
  return c;
}
obs::Counter& precond_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("la.svd.precond_hits");
  return c;
}
obs::Counter& sweeps_counter() {
  static obs::Counter& c = obs::Registry::global().counter("la.svd.sweeps");
  return c;
}

// Gram dot and column-norm inner loops live in linalg/simd.* now (AVX2 when
// the host has it, the old four-chain scalar code otherwise); both ISAs use a
// fixed combine order that never depends on the thread count, so the blocked
// dot stays deterministic.
cplx dot_conj_blocked(const cplx* x, const cplx* y, std::size_t len) {
  return simd::dot_conj(x, y, len);
}

double norm2_blocked(const cplx* x, std::size_t len) {
  return simd::norm2_sum(x, len);
}

// One Jacobi run over the row-packed operand W (nw rows of length len; row j
// holds column j of the matrix being decomposed, so every access below is
// contiguous) and the rotation accumulator VT (nw x nw, V^T row layout).
struct JacobiRun {
  cplx* w;
  cplx* vt;
  double* colnorm;
  std::size_t nw, len;
};

// Process one pair (p, q): measure the Gram off-diagonal, rotate if needed,
// and maintain the cached norms through the exact 2x2 update (the rotation
// phases the cross term real, so the new norms are cs^2 app + sn^2 aqq
// +/- 2 cs sn |apq|). Pairs within a tournament round are disjoint, so
// concurrent calls touch disjoint rows/slots. Returns |G_pq|/sqrt(Gpp Gqq).
double process_pair(const JacobiRun& run, std::size_t p, std::size_t q) {
  const double app = run.colnorm[p], aqq = run.colnorm[q];
  const double denom = std::sqrt(app * aqq);
  // !(> 0) rather than (<= 0): a rank-deficient operand can leave a cached
  // norm at a rounding-level negative, making denom NaN — which must take
  // this early-out too or the 0/0 phase below poisons the whole run.
  if (!(denom > 0.0)) return 0.0;
  cplx* wp = run.w + p * run.len;
  cplx* wq = run.w + q * run.len;
  const cplx apq = dot_conj_blocked(wp, wq, run.len);
  const double absc = std::abs(apq);
  const double rel = absc / denom;
  if (rel < kRotateTol) return rel;

  // Same 2x2 diagonalization as the scalar reference: phase the off-diagonal
  // real with D = diag(1, e^{-i phi}), then a real rotation; J = D R.
  const cplx phase_conj = std::conj(apq) / absc;
  const double theta = 0.5 * std::atan2(2.0 * absc, app - aqq);
  const double cs = std::cos(theta), sn = std::sin(theta);
  const cplx esn = phase_conj * sn;
  const cplx ecs = phase_conj * cs;
  simd::rotate_pair(wp, wq, run.len, cs, sn, esn, ecs);
  simd::rotate_pair(run.vt + p * run.nw, run.vt + q * run.nw, run.nw, cs, sn,
                    esn, ecs);
  const double cross = 2.0 * cs * sn * absc;
  // Clamp at zero: when the rotation annihilates column q the subtraction
  // can round below zero, and a negative cached norm would NaN the next
  // denom above.
  run.colnorm[p] = std::max(0.0, cs * cs * app + sn * sn * aqq + cross);
  run.colnorm[q] = std::max(0.0, sn * sn * app + cs * cs * aqq - cross);
  return rel;
}

int tournament_jacobi(SvdWorkspace& ws, std::size_t nw, std::size_t len,
                      const par::ParallelOptions& parallel) {
  if (ws.schedule_n != nw) {
    ws.schedule = tournament_rounds(nw);
    ws.schedule_n = nw;
  }
  ws.colnorm.resize(nw);
  ws.perm.resize(nw);
  const JacobiRun run{ws.w.data(), ws.vt.data(), ws.colnorm.data(), nw, len};
  int sweeps = 0;
  while (sweeps < kMaxSweeps) {
    ++sweeps;
    // Refresh the cached squared norms each sweep: the incremental 2x2
    // updates are exact in exact arithmetic but would drift over sweeps.
    for (std::size_t j = 0; j < nw; ++j)
      ws.colnorm[j] = norm2_blocked(ws.w.data() + j * len, len);
    obs::WorkCounter::charge(obs::jacobi_norm_flops(nw, len),
                             obs::jacobi_norm_bytes(nw, len));
    // De Rijk relabeling: map schedule slots onto columns sorted by
    // descending norm for this sweep. Pairing heavy columns with their
    // norm-neighbours first measurably cuts the sweep count, and the
    // permutation is a pure relabeling — rounds stay disjoint, so the
    // parallel dispatch and the determinism argument are untouched.
    std::iota(ws.perm.begin(), ws.perm.end(), std::size_t{0});
    std::stable_sort(ws.perm.begin(), ws.perm.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ws.colnorm[a] > ws.colnorm[b];
                     });
    double off_max = 0.0;
    for (const auto& round : ws.schedule) {
      ws.rel.assign(round.size(), 0.0);
      const std::size_t pair_work = round.size() * (len + nw);
      if (pair_work < kParallelMinWork) {
        for (std::size_t t = 0; t < round.size(); ++t)
          ws.rel[t] =
              process_pair(run, ws.perm[round[t].first], ws.perm[round[t].second]);
      } else {
        par::parallel_for(parallel, 0, round.size(), [&](std::size_t t) {
          ws.rel[t] =
              process_pair(run, ws.perm[round[t].first], ws.perm[round[t].second]);
        });
      }
      // max() is order-independent, so reducing the per-pair slots in index
      // order gives the same answer for every schedule of the round.
      // The rotated count is also read off the slots: a pair rotated iff its
      // rel cleared kRotateTol, which is schedule-determined — so the work
      // charge is deterministic regardless of how the round was dispatched.
      std::size_t rotated = 0;
      for (const double r : ws.rel) {
        off_max = std::max(off_max, r);
        if (r >= kRotateTol) ++rotated;
      }
      obs::WorkCounter::charge(
          obs::jacobi_round_flops(round.size(), rotated, len, nw),
          obs::jacobi_round_bytes(round.size(), rotated, len, nw));
    }
    if (off_max < kSweepTol) break;
  }
  return sweeps;
}

// In-place Householder QR of the M x N (M >= N) panel in ws.qa: on return
// the upper triangle holds R and the columns below the diagonal hold the
// reflector tails (zgeqrf layout), with the scalars in ws.tau.
void panel_qr(SvdWorkspace& ws, std::size_t M, std::size_t N) {
  ws.tau.resize(N);
  ws.colbuf.resize(M);
  cplx* qa = ws.qa.data();
  for (std::size_t k = 0; k < N; ++k) {
    const std::size_t tail = M - k - 1;
    for (std::size_t i = 0; i < tail; ++i)
      ws.colbuf[i] = qa[(k + 1 + i) * N + k];
    ws.tau[k] = hh::make_reflector(qa[k * N + k], ws.colbuf.data(), tail);
    for (std::size_t i = 0; i < tail; ++i)
      qa[(k + 1 + i) * N + k] = ws.colbuf[i];
    hh::reflect_left(qa, N, N, k, k + 1, ws.colbuf.data(), tail,
                     std::conj(ws.tau[k].tau), ws.hwork);
    qa[k * N + k] = ws.tau[k].beta;
  }
}

// Explicit thin Q (M x N) from the factored panel, backward accumulation
// against the first N identity columns.
void panel_form_q(SvdWorkspace& ws, std::size_t M, std::size_t N) {
  ws.q.assign(M * N, cplx{});
  for (std::size_t i = 0; i < N; ++i) ws.q[i * N + i] = 1.0;
  const cplx* qa = ws.qa.data();
  for (std::size_t k = N; k-- > 0;) {
    const std::size_t tail = M - k - 1;
    for (std::size_t i = 0; i < tail; ++i)
      ws.colbuf[i] = qa[(k + 1 + i) * N + k];
    hh::reflect_left(ws.q.data(), N, N, k, k, ws.colbuf.data(), tail,
                     ws.tau[k].tau, ws.hwork);
  }
}

// Fill flagged rows of a row-major (count x len) block of vectors with unit
// vectors orthogonal to every other row, so the factor keeps orthonormal
// vectors even for rank-deficient input. This is the rebuilt
// complete_null_columns: the candidate buffer is hoisted out of the probe
// loop, and the probe is picked once per null row as the canonical vector
// with the least weight already present in the block (argmin over column
// weights — its residual after projection cannot vanish), so the common case
// runs one two-round MGS instead of one per probed canonical vector.
void complete_null_rows(cplx* rows, std::size_t count, std::size_t len,
                        std::vector<char>& is_null, std::vector<cplx>& cand,
                        std::vector<double>& weight) {
  bool any = false;
  for (std::size_t r = 0; r < count; ++r) any = any || (is_null[r] != 0);
  if (!any) return;
  weight.assign(len, 0.0);
  for (std::size_t r = 0; r < count; ++r) {
    if (is_null[r]) continue;
    const cplx* row = rows + r * len;
    for (std::size_t i = 0; i < len; ++i) weight[i] += norm2(row[i]);
  }
  auto orthogonalize = [&](std::size_t skip) {
    for (int round = 0; round < 2; ++round) {
      for (std::size_t c = 0; c < count; ++c) {
        if (c == skip || is_null[c]) continue;
        const cplx* row = rows + c * len;
        const cplx proj = dot_conj_blocked(row, cand.data(), len);
        for (std::size_t i = 0; i < len; ++i) cand[i] -= proj * row[i];
      }
    }
    return std::sqrt(norm2_blocked(cand.data(), len));
  };
  for (std::size_t r = 0; r < count; ++r) {
    if (!is_null[r]) continue;
    std::size_t probe = 0;
    for (std::size_t i = 1; i < len; ++i)
      if (weight[i] < weight[probe]) probe = i;
    cand.assign(len, cplx{});
    cand[probe] = 1.0;
    double nrm = orthogonalize(r);
    if (nrm <= 1e-8) {
      // Pathological probe (cancellation ate the residual): fall back to
      // scanning the canonical basis with the same hoisted buffer.
      for (std::size_t p2 = 0; p2 < len && nrm <= 1e-8; ++p2) {
        if (p2 == probe) continue;
        cand.assign(len, cplx{});
        cand[p2] = 1.0;
        nrm = orthogonalize(r);
      }
    }
    cplx* row = rows + r * len;
    for (std::size_t i = 0; i < len; ++i) row[i] = cand[i] / nrm;
    is_null[r] = 0;
    for (std::size_t i = 0; i < len; ++i) weight[i] += norm2(row[i]);
  }
}

struct EngineInfo {
  std::size_t m = 0, n = 0;  // original operand shape
  std::size_t M = 0, N = 0;  // tall-orientation shape (M >= N)
  std::size_t len = 0;       // W row length (N preconditioned, M otherwise)
  bool wide = false;
  bool precond = false;
  int sweeps = 0;
};

// Pack, optionally QR-precondition, and run tournament Jacobi. On return
// ws.w rows hold the rotated operand columns, ws.vt the accumulated V^T, and
// ws.s_all / ws.order the spectrum with its stable descending permutation.
//
// Orientation: the tall operand is B = A (m >= n) or B = A^H (wide). Under
// the preconditioner B = QR and Jacobi runs on X = R^H — column j of X is
// conj(row j of R), so W packs contiguously straight out of the factored
// panel, and the R^H orientation (columns closer to orthogonal) shaves
// sweeps. Converged, X = U_X S V_X^H with U_X read off W's rows and V_X off
// VT, giving B = (Q V_X) S U_X^H: the factor the MPS update wants (V^H of
// the tall operand) is U_X^H, free from W, while the GEMM recovery Q V_X is
// only needed when a caller asks for the tall U (or the wide V^H).
EngineInfo run_jacobi_engine(SvdWorkspace& ws, const cplx* a, std::size_t m,
                             std::size_t n, std::size_t lda,
                             const double* row_scale,
                             const par::ParallelOptions& parallel) {
  EngineInfo info;
  info.m = m;
  info.n = n;
  info.wide = m < n;
  info.M = info.wide ? n : m;
  info.N = info.wide ? m : n;
  info.precond = info.M > info.N || info.N >= kPrecondMinSquare;
  const std::size_t M = info.M, N = info.N;

  if (info.precond) {
    precond_counter().add();
    // Stage B into qa, folding the caller's row weighting into the pack —
    // Eq. (8)'s Schmidt reweighting costs nothing extra here.
    ws.qa.resize(M * N);
    if (!info.wide) {
      for (std::size_t i = 0; i < M; ++i) {
        const cplx* src = a + i * lda;
        cplx* dst = ws.qa.data() + i * N;
        if (row_scale) {
          const double sc = row_scale[i];
          for (std::size_t j = 0; j < N; ++j) dst[j] = sc * src[j];
        } else {
          std::copy(src, src + N, dst);
        }
      }
    } else {
      // Column j of B = conj(row j of A); the row weight rides along.
      for (std::size_t j = 0; j < N; ++j) {
        const cplx* src = a + j * lda;
        const double sc = row_scale ? row_scale[j] : 1.0;
        for (std::size_t i = 0; i < M; ++i)
          ws.qa[i * N + j] = std::conj(sc * src[i]);
      }
    }
    panel_qr(ws, M, N);
    info.len = N;
    ws.w.resize(N * N);
    for (std::size_t j = 0; j < N; ++j) {
      cplx* dst = ws.w.data() + j * N;
      const cplx* src = ws.qa.data() + j * N;
      for (std::size_t i = 0; i < j; ++i) dst[i] = cplx{};
      for (std::size_t i = j; i < N; ++i) dst[i] = std::conj(src[i]);
    }
  } else {
    // Small square operand: Jacobi directly on the columns of A (transposed
    // into W so the rotations still stream contiguous rows).
    info.len = M;
    ws.w.resize(N * M);
    for (std::size_t i = 0; i < M; ++i) {
      const cplx* src = a + i * lda;
      const double sc = row_scale ? row_scale[i] : 1.0;
      for (std::size_t j = 0; j < N; ++j) ws.w[j * M + i] = sc * src[j];
    }
  }

  ws.vt.assign(N * N, cplx{});
  for (std::size_t j = 0; j < N; ++j) ws.vt[j * N + j] = 1.0;
  info.sweeps = tournament_jacobi(ws, N, info.len, parallel);
  sweeps_counter().add(std::uint64_t(info.sweeps));

  ws.s_all.resize(N);
  for (std::size_t j = 0; j < N; ++j)
    ws.s_all[j] =
        std::sqrt(norm2_blocked(ws.w.data() + j * info.len, info.len));
  ws.order.resize(N);
  std::iota(ws.order.begin(), ws.order.end(), 0);
  // stable_sort: degenerate values keep their pre-sort column order, which
  // the truncation keep-set relies on for determinism (see test_linalg).
  std::stable_sort(ws.order.begin(), ws.order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return ws.s_all[x] > ws.s_all[y];
                   });
  return info;
}

// Materialize the kept columns of V_X (N x keep, column r = VT row
// order[r]) for the Q V_X recovery GEMM.
void materialize_vx(SvdWorkspace& ws, std::size_t N, std::size_t keep) {
  ws.ur.resize(N * keep);
  for (std::size_t r = 0; r < keep; ++r) {
    const cplx* vrow = ws.vt.data() + ws.order[r] * N;
    for (std::size_t i = 0; i < N; ++i) ws.ur[i * keep + r] = vrow[i];
  }
}

// Extract the leading `keep` triplets into ws.out_*. zero_small additionally
// zeroes singular values below the null tolerance — the full-SVD contract;
// the truncated path reports raw values (matching the Golub-Kahan route it
// replaced).
void extract_factors(SvdWorkspace& ws, const EngineInfo& info,
                     std::size_t keep, bool want_u, bool zero_small,
                     const par::ParallelOptions& parallel) {
  const std::size_t M = info.M, N = info.N, len = info.len;
  const std::size_t m_out = info.m, n_out = info.n;
  const double smax = ws.s_all[ws.order[0]];
  const double null_tol =
      std::max(smax, 1.0) * 1e-14 * double(std::max(M, N));

  ws.out_s.resize(keep);
  for (std::size_t r = 0; r < keep; ++r) {
    const double v = ws.s_all[ws.order[r]];
    ws.out_s[r] = (zero_small && v <= null_tol) ? 0.0 : v;
  }

  const bool need_q = info.precond && (info.wide || want_u);
  if (need_q) {
    materialize_vx(ws, N, keep);
    panel_form_q(ws, M, N);
  }

  // --- V^H (keep x n_out) ---
  ws.out_vh.resize(keep * n_out);
  if (!info.precond) {
    // VT rows are exactly V columns of a unitary: no null handling needed.
    for (std::size_t r = 0; r < keep; ++r) {
      const cplx* vrow = ws.vt.data() + ws.order[r] * N;
      cplx* dst = ws.out_vh.data() + r * n_out;
      for (std::size_t i = 0; i < N; ++i) dst[i] = std::conj(vrow[i]);
    }
  } else if (!info.wide) {
    // Tall: V^H rows are the normalized W rows (B's V is X's U).
    ws.vec_null.assign(keep, 0);
    for (std::size_t r = 0; r < keep; ++r) {
      const double s = ws.s_all[ws.order[r]];
      cplx* dst = ws.out_vh.data() + r * n_out;
      if (s > null_tol) {
        const cplx* wrow = ws.w.data() + ws.order[r] * len;
        const double inv = 1.0 / s;
        for (std::size_t i = 0; i < N; ++i) dst[i] = std::conj(wrow[i]) * inv;
      } else {
        std::fill(dst, dst + n_out, cplx{});
        ws.vec_null[r] = 1;
      }
    }
    complete_null_rows(ws.out_vh.data(), keep, n_out, ws.vec_null, ws.cand,
                       ws.row_weight);
  } else {
    // Wide: V^H rows are conj of the columns of Q V_X — the GEMM recovery.
    // Both factors are exactly unitary, so null values need no handling.
    ws.ub.resize(M * keep);
    gemm_raw(M, N, keep, ws.q.data(), N, Op::kNone, ws.ur.data(), keep,
             Op::kNone, ws.ub.data(), keep, parallel);
    for (std::size_t r = 0; r < keep; ++r) {
      cplx* dst = ws.out_vh.data() + r * n_out;
      for (std::size_t j = 0; j < M; ++j)
        dst[j] = std::conj(ws.ub[j * keep + r]);
    }
  }

  // --- U (m_out x keep) ---
  if (!want_u) {
    ws.out_u.clear();
    return;
  }
  ws.out_u.resize(m_out * keep);
  if (info.precond && !info.wide) {
    // Tall: U = Q V_X — a product of exact unitaries, orthonormal columns
    // even for null singular values, written straight into the output.
    gemm_raw(M, N, keep, ws.q.data(), N, Op::kNone, ws.ur.data(), keep,
             Op::kNone, ws.out_u.data(), keep, parallel);
  } else {
    // U columns are the normalized W rows; build them in row form (every
    // access contiguous), complete any null vectors, then transpose out.
    ws.ub.resize(keep * m_out);
    ws.vec_null.assign(keep, 0);
    for (std::size_t r = 0; r < keep; ++r) {
      const double s = ws.s_all[ws.order[r]];
      cplx* dst = ws.ub.data() + r * m_out;
      if (s > null_tol) {
        const cplx* wrow = ws.w.data() + ws.order[r] * len;
        const double inv = 1.0 / s;
        for (std::size_t i = 0; i < m_out; ++i) dst[i] = wrow[i] * inv;
      } else {
        std::fill(dst, dst + m_out, cplx{});
        ws.vec_null[r] = 1;
      }
    }
    complete_null_rows(ws.ub.data(), keep, m_out, ws.vec_null, ws.cand,
                       ws.row_weight);
    for (std::size_t r = 0; r < keep; ++r)
      for (std::size_t i = 0; i < m_out; ++i)
        ws.out_u[i * keep + r] = ws.ub[r * m_out + i];
  }
}

}  // namespace

TruncatedSpectrum svd_truncated_ws(SvdWorkspace& ws, const cplx* a,
                                   std::size_t m, std::size_t n,
                                   std::size_t lda, const double* row_scale,
                                   std::size_t max_rank, double cutoff,
                                   bool want_u,
                                   const par::ParallelOptions& parallel) {
  OBS_SPAN("la/svd");
  require(a != nullptr && m > 0 && n > 0, "svd_truncated_ws: empty operand");
  require(lda >= n, "svd_truncated_ws: lda < n");
  require(max_rank >= 1, "svd_truncated_ws: max_rank must be positive");
  truncated_calls_counter().add();

  const EngineInfo info =
      run_jacobi_engine(ws, a, m, n, lda, row_scale, parallel);
  const std::size_t N = info.N;

  double total = 0.0;
  for (std::size_t j = 0; j < N; ++j) total += ws.s_all[j] * ws.s_all[j];
  const double smax = ws.s_all[ws.order[0]];
  std::size_t keep = std::min(max_rank, N);
  while (keep > 1 && ws.s_all[ws.order[keep - 1]] <= cutoff * smax) --keep;
  // Never keep exact zeros (they carry no state weight).
  while (keep > 1 && ws.s_all[ws.order[keep - 1]] == 0.0) --keep;
  double kept = 0.0;
  for (std::size_t r = 0; r < keep; ++r)
    kept += ws.s_all[ws.order[r]] * ws.s_all[ws.order[r]];

  extract_factors(ws, info, keep, want_u, /*zero_small=*/false, parallel);

  TruncatedSpectrum out;
  out.keep = keep;
  out.sweeps = info.sweeps;
  out.preconditioned = info.precond;
  out.truncation_error = total > 0 ? std::max(0.0, 1.0 - kept / total) : 0.0;
  out.s = ws.out_s.data();
  out.vh = ws.out_vh.data();
  out.u = want_u ? ws.out_u.data() : nullptr;
  return out;
}

SvdResult svd_jacobi(const CMatrix& a, const par::ParallelOptions& parallel) {
  OBS_SPAN("la/svd");
  require(!a.empty(), "svd_jacobi: empty matrix");
  // A fresh workspace per call: the convenience wrappers must stay safe
  // against re-entry through the pool's caller-runs work stealing.
  SvdWorkspace ws;
  const std::size_t m = a.rows(), n = a.cols();
  const EngineInfo info =
      run_jacobi_engine(ws, a.data(), m, n, n, nullptr, parallel);
  extract_factors(ws, info, info.N, /*want_u=*/true, /*zero_small=*/true,
                  parallel);
  SvdResult r;
  r.s = ws.out_s;
  r.u = CMatrix(m, info.N);
  std::copy(ws.out_u.begin(), ws.out_u.end(), r.u.data());
  r.vh = CMatrix(info.N, n);
  std::copy(ws.out_vh.begin(), ws.out_vh.end(), r.vh.data());
  return r;
}

TruncatedSvd svd_truncated(const CMatrix& a, std::size_t max_rank,
                           double cutoff,
                           const par::ParallelOptions& parallel) {
  require(!a.empty(), "svd_truncated: empty matrix");
  SvdWorkspace ws;
  const TruncatedSpectrum f =
      svd_truncated_ws(ws, a.data(), a.rows(), a.cols(), a.cols(), nullptr,
                       max_rank, cutoff, /*want_u=*/true, parallel);
  TruncatedSvd r;
  r.truncation_error = f.truncation_error;
  r.sweeps = f.sweeps;
  r.preconditioned = f.preconditioned;
  r.s.assign(f.s, f.s + f.keep);
  r.u = CMatrix(a.rows(), f.keep);
  std::copy(f.u, f.u + a.rows() * f.keep, r.u.data());
  r.vh = CMatrix(f.keep, a.cols());
  std::copy(f.vh, f.vh + f.keep * a.cols(), r.vh.data());
  return r;
}

namespace {

// ---------------------------------------------------------------------------
// Golub-Kahan engine (full SVD)
// ---------------------------------------------------------------------------

inline double pythag(double a, double b) { return std::hypot(a, b); }

// Implicit-shift QR diagonalization of a real bidiagonal matrix
// (diag d[0..n), superdiag e[i] = B(i-1, i), e[0] = 0), accumulating the
// rotations into U and V supplied in TRANSPOSED layout (row j = j-th
// singular vector) so each rotation streams two contiguous rows.
// Classic Golub-Kahan; returns false if an eigenvalue fails to converge.
bool bidiagonal_qr(std::vector<double>& d, std::vector<double>& e, CMatrix& ut,
                   CMatrix& vt) {
  const int n = int(d.size());
  double anorm = 0;
  for (int i = 0; i < n; ++i)
    anorm = std::max(anorm, std::abs(d[i]) + std::abs(e[i]));
  const double eps = 1e-15 * anorm;

  auto rotate_cols = [](CMatrix& m, int p, int q, double c, double s) {
    cplx* rp = m.row(std::size_t(p));
    cplx* rq = m.row(std::size_t(q));
    const std::size_t cols = m.cols();
    for (std::size_t i = 0; i < cols; ++i) {
      const cplx y = rp[i], z = rq[i];
      rp[i] = y * c + z * s;
      rq[i] = z * c - y * s;
    }
  };

  for (int k = n - 1; k >= 0; --k) {
    for (int its = 0; its < 75; ++its) {
      bool flag = true;
      int l = k, nm = k - 1;
      for (; l >= 0; --l) {
        nm = l - 1;
        if (l == 0 || std::abs(e[l]) <= eps) {
          flag = false;
          break;
        }
        if (std::abs(d[nm]) <= eps) break;
      }
      if (flag) {
        // d[l-1] negligible: cancel e[l] with rotations touching U.
        double c = 0.0, s = 1.0;
        for (int i = l; i <= k; ++i) {
          const double f = s * e[i];
          e[i] = c * e[i];
          if (std::abs(f) <= eps) break;
          const double g = d[i];
          const double h = pythag(f, g);
          d[i] = h;
          const double hinv = 1.0 / h;
          c = g * hinv;
          s = -f * hinv;
          rotate_cols(ut, nm, i, c, s);
        }
      }
      const double z = d[k];
      if (l == k) {
        if (z < 0) {
          d[k] = -z;
          cplx* vk = vt.row(std::size_t(k));
          for (std::size_t c2 = 0; c2 < vt.cols(); ++c2) vk[c2] = -vk[c2];
        }
        break;
      }
      if (its == 74) return false;

      // Wilkinson-style shift from the trailing 2x2.
      double x = d[l];
      nm = k - 1;
      double y = d[nm];
      double g = e[nm], h = e[k];
      double f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
      g = pythag(f, 1.0);
      const double sign_g = f >= 0 ? std::abs(g) : -std::abs(g);
      f = ((x - z) * (x + z) + h * (y / (f + sign_g) - h)) / x;
      double c = 1.0, s = 1.0;
      for (int j = l; j <= nm; ++j) {
        const int i = j + 1;
        g = e[i];
        y = d[i];
        h = s * g;
        g = c * g;
        double zz = pythag(f, h);
        e[j] = zz;
        c = f / zz;
        s = h / zz;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        rotate_cols(vt, j, i, c, s);
        zz = pythag(f, h);
        d[j] = zz;
        if (zz != 0.0) {
          const double zi = 1.0 / zz;
          c = f * zi;
          s = h * zi;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        rotate_cols(ut, j, i, c, s);
      }
      e[l] = 0.0;
      e[k] = f;
      d[k] = x;
    }
  }
  return true;
}

// Golub-Kahan SVD for m >= n; returns false on QR non-convergence.
bool svd_golub_kahan(const CMatrix& a_in, SvdResult& out) {
  const std::size_t m = a_in.rows(), n = a_in.cols();
  CMatrix a = a_in;
  std::vector<cplx> hwork;

  // Householder bidiagonalization; vectors stored in-place in a. The k-th
  // right reflector also covers the tail-less k = n-2 case, where it reduces
  // to the phase rotation that makes the last superdiagonal real.
  std::vector<hh::Reflector> left(n), right(n >= 1 ? n - 1 : 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Column k: zero below the diagonal.
    std::vector<cplx> col(m - k - 1);
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = a(k + 1 + i, k);
    left[k] = hh::make_reflector(a(k, k), col.data(), col.size());
    for (std::size_t i = 0; i < col.size(); ++i) a(k + 1 + i, k) = col[i];
    // Apply (I - conj(tau) v v^H) to the trailing columns.
    hh::reflect_left(a.data(), n, n, k, k + 1, col.data(), col.size(),
                     std::conj(left[k].tau), hwork);
    a(k, k) = left[k].beta;

    if (k + 1 < n) {
      // Row k: zero beyond the superdiagonal via the conjugated-row trick.
      std::vector<cplx> row(n - k - 2);
      for (std::size_t j = 0; j < row.size(); ++j)
        row[j] = std::conj(a(k, k + 2 + j));
      cplx alpha = std::conj(a(k, k + 1));
      right[k] = hh::make_reflector(alpha, row.data(), row.size());
      for (std::size_t j = 0; j < row.size(); ++j) a(k, k + 2 + j) = row[j];
      if (right[k].tau != cplx{}) {
        // A <- A (I - tau v v^H) on rows k+1.. (row k handled analytically).
        hh::reflect_right(a.data(), n, m, k + 1, k + 1, row.data(),
                          row.size(), right[k].tau);
      }
      a(k, k + 1) = right[k].beta;
    }
  }

  std::vector<double> d(n), e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i).real();
  for (std::size_t i = 1; i < n; ++i) e[i] = a(i - 1, i).real();

  // Backward-accumulate U = H_1 ... H_n * [e1..en] and V = W_1 ... W_r * I.
  CMatrix u(m, n);
  for (std::size_t i = 0; i < n; ++i) u(i, i) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    std::vector<cplx> v(m - kk - 1);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = a(kk + 1 + i, kk);
    hh::reflect_left(u.data(), n, n, kk, kk, v.data(), v.size(),
                     left[kk].tau, hwork);
  }
  CMatrix vmat = CMatrix::identity(n);
  for (std::size_t kk = right.size(); kk-- > 0;) {
    std::vector<cplx> v(n - kk - 2);
    for (std::size_t j = 0; j < v.size(); ++j) v[j] = a(kk, kk + 2 + j);
    hh::reflect_left(vmat.data(), n, n, kk + 1, kk + 1, v.data(), v.size(),
                     right[kk].tau, hwork);
  }

  // Transposed copies keep the QR rotations on contiguous rows.
  CMatrix ut = u.transposed();
  CMatrix vt = vmat.transposed();
  if (!bidiagonal_qr(d, e, ut, vt)) return false;

  // Sort singular values descending, permuting the factors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return d[x] > d[y]; });
  out.u = CMatrix(m, n);
  out.s.resize(n);
  out.vh = CMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = d[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = ut(src, i);
    for (std::size_t i = 0; i < n; ++i) out.vh(j, i) = std::conj(vt(src, i));
  }
  return true;
}

}  // namespace

SvdResult svd(const CMatrix& a) {
  require(!a.empty(), "svd: empty matrix");
  if (a.rows() < a.cols()) {
    SvdResult t = svd(a.adjoint());
    SvdResult r;
    r.s = std::move(t.s);
    r.u = t.vh.adjoint();
    r.vh = t.u.adjoint();
    return r;
  }
  SvdResult out;
  if (svd_golub_kahan(a, out)) return out;
  // Extremely rare: fall back to the unconditionally-convergent Jacobi path.
  return svd_jacobi(a);
}

}  // namespace q2::la
