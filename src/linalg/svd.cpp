#include "linalg/svd.hpp"

#include <cmath>
#include <numeric>

namespace q2::la {
namespace {

// One sweep of cyclic one-sided Jacobi over column pairs of `a`, accumulating
// the right rotations into `v`. Returns the largest relative off-diagonal
// Gram element seen, which drives convergence.
double jacobi_sweep(CMatrix& a, CMatrix& v) {
  const std::size_t m = a.rows(), n = a.cols();
  double off_max = 0.0;
  for (std::size_t p = 0; p + 1 < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      double app = 0, aqq = 0;
      cplx apq{};
      for (std::size_t i = 0; i < m; ++i) {
        const cplx x = a(i, p), y = a(i, q);
        app += norm2(x);
        aqq += norm2(y);
        apq += std::conj(x) * y;
      }
      const double denom = std::sqrt(app * aqq);
      if (denom <= 0.0) continue;
      const double rel = std::abs(apq) / denom;
      off_max = std::max(off_max, rel);
      if (rel < 1e-15) continue;

      // Diagonalize the Hermitian 2x2 Gram block [[app, apq], [conj, aqq]]:
      // phase it real with D = diag(1, e^{-i phi}), then a plain real
      // rotation R; the combined unitary is J = D R.
      const double absc = std::abs(apq);
      const cplx phase_conj = std::conj(apq) / absc;  // e^{-i phi}
      const double theta = 0.5 * std::atan2(2.0 * absc, app - aqq);
      const double cs = std::cos(theta), sn = std::sin(theta);
      const cplx esn = phase_conj * sn;
      const cplx ecs = phase_conj * cs;
      for (std::size_t i = 0; i < m; ++i) {
        const cplx x = a(i, p), y = a(i, q);
        a(i, p) = cs * x + esn * y;
        a(i, q) = -sn * x + ecs * y;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const cplx x = v(i, p), y = v(i, q);
        v(i, p) = cs * x + esn * y;
        v(i, q) = -sn * x + ecs * y;
      }
    }
  }
  return off_max;
}

// Fill zero-norm columns of `u` with unit vectors orthogonalized against all
// other columns, so U keeps orthonormal columns even for rank-deficient input.
void complete_null_columns(CMatrix& u, const std::vector<bool>& is_null) {
  const std::size_t m = u.rows(), k = u.cols();
  std::size_t probe = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!is_null[j]) continue;
    for (; probe < m; ++probe) {
      std::vector<cplx> cand(m, cplx{});
      cand[probe] = 1.0;
      // Two rounds of modified Gram-Schmidt for robustness.
      for (int round = 0; round < 2; ++round) {
        for (std::size_t c = 0; c < k; ++c) {
          if (c == j) continue;
          cplx proj{};
          for (std::size_t i = 0; i < m; ++i)
            proj += std::conj(u(i, c)) * cand[i];
          for (std::size_t i = 0; i < m; ++i) cand[i] -= proj * u(i, c);
        }
      }
      double nrm = 0;
      for (const auto& z : cand) nrm += norm2(z);
      nrm = std::sqrt(nrm);
      if (nrm > 1e-8) {
        for (std::size_t i = 0; i < m; ++i) u(i, j) = cand[i] / nrm;
        ++probe;
        break;
      }
    }
  }
}

SvdResult svd_tall(const CMatrix& a_in) {
  CMatrix a = a_in;
  const std::size_t m = a.rows(), n = a.cols();
  CMatrix v = CMatrix::identity(n);
  constexpr int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (jacobi_sweep(a, v) < 1e-14) break;
  }

  // Column norms are the singular values; sort them descending.
  std::vector<double> s(n);
  for (std::size_t j = 0; j < n; ++j) {
    double nrm = 0;
    for (std::size_t i = 0; i < m; ++i) nrm += norm2(a(i, j));
    s[j] = std::sqrt(nrm);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });

  const double smax = s.empty() ? 0.0 : s[order[0]];
  const double null_tol = std::max(smax, 1.0) * 1e-14 * double(std::max(m, n));

  SvdResult r;
  r.u = CMatrix(m, n);
  r.s.resize(n);
  r.vh = CMatrix(n, n);
  std::vector<bool> is_null(n, false);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    r.s[jj] = s[j];
    if (s[j] > null_tol) {
      for (std::size_t i = 0; i < m; ++i) r.u(i, jj) = a(i, j) / s[j];
    } else {
      r.s[jj] = 0.0;
      is_null[jj] = true;
    }
    for (std::size_t i = 0; i < n; ++i) r.vh(jj, i) = std::conj(v(i, j));
  }
  complete_null_columns(r.u, is_null);
  return r;
}

}  // namespace

SvdResult svd_jacobi(const CMatrix& a) {
  require(!a.empty(), "svd_jacobi: empty matrix");
  if (a.rows() >= a.cols()) return svd_tall(a);
  // Wide matrix: decompose the adjoint and swap factors,
  // A = (U' S V'^H)^H = V' S U'^H.
  SvdResult t = svd_tall(a.adjoint());
  SvdResult r;
  r.s = std::move(t.s);
  r.u = t.vh.adjoint();
  r.vh = t.u.adjoint();
  return r;
}

namespace {

// LAPACK zlarfg: given alpha and tail x, produce (tau, beta) and overwrite
// x with the reflector tail v (v0 = 1 implicit) such that
// (I - conj(tau) v v^H) [alpha; x] = [beta; 0] with beta real.
struct Reflector {
  cplx tau{0, 0};
  double beta = 0;
};

Reflector make_reflector(cplx alpha, cplx* x, std::size_t tail) {
  double xnorm2 = 0;
  for (std::size_t i = 0; i < tail; ++i) xnorm2 += norm2(x[i]);
  Reflector r;
  if (xnorm2 == 0.0 && alpha.imag() == 0.0) {
    r.beta = alpha.real();
    return r;  // tau = 0: H = I
  }
  const double anorm = std::sqrt(norm2(alpha) + xnorm2);
  r.beta = alpha.real() >= 0 ? -anorm : anorm;
  r.tau = cplx((r.beta - alpha.real()) / r.beta, -alpha.imag() / r.beta);
  const cplx scale = 1.0 / (alpha - r.beta);
  for (std::size_t i = 0; i < tail; ++i) x[i] *= scale;
  return r;
}

// M(rows r0.., cols c0..) <- (I - sigma v v^H) M, with v0 = 1 at row r0 and
// v[1..] supplied.
void reflect_left(CMatrix& m, std::size_t r0, std::size_t c0, const cplx* v,
                  std::size_t tail, cplx sigma) {
  if (sigma == cplx{}) return;
  const std::size_t rows = m.rows(), cols = m.cols();
  for (std::size_t j = c0; j < cols; ++j) {
    cplx w = m(r0, j);
    for (std::size_t i = 0; i < tail; ++i)
      w += std::conj(v[i]) * m(r0 + 1 + i, j);
    const cplx sw = sigma * w;
    m(r0, j) -= sw;
    for (std::size_t i = 0; i < tail; ++i) m(r0 + 1 + i, j) -= sw * v[i];
  }
  (void)rows;
}

// M(rows r0.., cols c0..) <- M (I - sigma v v^H), with v0 = 1 at column c0.
void reflect_right(CMatrix& m, std::size_t r0, std::size_t c0, const cplx* v,
                   std::size_t tail, cplx sigma) {
  if (sigma == cplx{}) return;
  const std::size_t rows = m.rows();
  for (std::size_t i = r0; i < rows; ++i) {
    cplx s = m(i, c0);
    for (std::size_t j = 0; j < tail; ++j) s += m(i, c0 + 1 + j) * v[j];
    const cplx ss = sigma * s;
    m(i, c0) -= ss;
    for (std::size_t j = 0; j < tail; ++j)
      m(i, c0 + 1 + j) -= ss * std::conj(v[j]);
  }
}

inline double pythag(double a, double b) { return std::hypot(a, b); }

// Implicit-shift QR diagonalization of a real bidiagonal matrix
// (diag d[0..n), superdiag e[i] = B(i-1, i), e[0] = 0), accumulating the
// rotations into U and V supplied in TRANSPOSED layout (row j = j-th
// singular vector) so each rotation streams two contiguous rows.
// Classic Golub-Kahan; returns false if an eigenvalue fails to converge.
bool bidiagonal_qr(std::vector<double>& d, std::vector<double>& e, CMatrix& ut,
                   CMatrix& vt) {
  const int n = int(d.size());
  double anorm = 0;
  for (int i = 0; i < n; ++i)
    anorm = std::max(anorm, std::abs(d[i]) + std::abs(e[i]));
  const double eps = 1e-15 * anorm;

  auto rotate_cols = [](CMatrix& m, int p, int q, double c, double s) {
    cplx* rp = m.row(std::size_t(p));
    cplx* rq = m.row(std::size_t(q));
    const std::size_t cols = m.cols();
    for (std::size_t i = 0; i < cols; ++i) {
      const cplx y = rp[i], z = rq[i];
      rp[i] = y * c + z * s;
      rq[i] = z * c - y * s;
    }
  };

  for (int k = n - 1; k >= 0; --k) {
    for (int its = 0; its < 75; ++its) {
      bool flag = true;
      int l = k, nm = k - 1;
      for (; l >= 0; --l) {
        nm = l - 1;
        if (l == 0 || std::abs(e[l]) <= eps) {
          flag = false;
          break;
        }
        if (std::abs(d[nm]) <= eps) break;
      }
      if (flag) {
        // d[l-1] negligible: cancel e[l] with rotations touching U.
        double c = 0.0, s = 1.0;
        for (int i = l; i <= k; ++i) {
          const double f = s * e[i];
          e[i] = c * e[i];
          if (std::abs(f) <= eps) break;
          const double g = d[i];
          const double h = pythag(f, g);
          d[i] = h;
          const double hinv = 1.0 / h;
          c = g * hinv;
          s = -f * hinv;
          rotate_cols(ut, nm, i, c, s);
        }
      }
      const double z = d[k];
      if (l == k) {
        if (z < 0) {
          d[k] = -z;
          cplx* vk = vt.row(std::size_t(k));
          for (std::size_t c2 = 0; c2 < vt.cols(); ++c2) vk[c2] = -vk[c2];
        }
        break;
      }
      if (its == 74) return false;

      // Wilkinson-style shift from the trailing 2x2.
      double x = d[l];
      nm = k - 1;
      double y = d[nm];
      double g = e[nm], h = e[k];
      double f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
      g = pythag(f, 1.0);
      const double sign_g = f >= 0 ? std::abs(g) : -std::abs(g);
      f = ((x - z) * (x + z) + h * (y / (f + sign_g) - h)) / x;
      double c = 1.0, s = 1.0;
      for (int j = l; j <= nm; ++j) {
        const int i = j + 1;
        g = e[i];
        y = d[i];
        h = s * g;
        g = c * g;
        double zz = pythag(f, h);
        e[j] = zz;
        c = f / zz;
        s = h / zz;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        rotate_cols(vt, j, i, c, s);
        zz = pythag(f, h);
        d[j] = zz;
        if (zz != 0.0) {
          const double zi = 1.0 / zz;
          c = f * zi;
          s = h * zi;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        rotate_cols(ut, j, i, c, s);
      }
      e[l] = 0.0;
      e[k] = f;
      d[k] = x;
    }
  }
  return true;
}

// Golub-Kahan SVD for m >= n; returns false on QR non-convergence.
bool svd_golub_kahan(const CMatrix& a_in, SvdResult& out) {
  const std::size_t m = a_in.rows(), n = a_in.cols();
  CMatrix a = a_in;

  // Householder bidiagonalization; vectors stored in-place in a. The k-th
  // right reflector also covers the tail-less k = n-2 case, where it reduces
  // to the phase rotation that makes the last superdiagonal real.
  std::vector<Reflector> left(n), right(n >= 1 ? n - 1 : 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Column k: zero below the diagonal.
    std::vector<cplx> col(m - k - 1);
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = a(k + 1 + i, k);
    left[k] = make_reflector(a(k, k), col.data(), col.size());
    for (std::size_t i = 0; i < col.size(); ++i) a(k + 1 + i, k) = col[i];
    if (left[k].tau != cplx{}) {
      // Apply (I - conj(tau) v v^H) to the trailing columns.
      reflect_left(a, k, k + 1, col.data(), col.size(),
                   std::conj(left[k].tau));
    }
    a(k, k) = left[k].beta;

    if (k + 1 < n) {
      // Row k: zero beyond the superdiagonal via the conjugated-row trick.
      std::vector<cplx> row(n - k - 2);
      for (std::size_t j = 0; j < row.size(); ++j)
        row[j] = std::conj(a(k, k + 2 + j));
      cplx alpha = std::conj(a(k, k + 1));
      right[k] = make_reflector(alpha, row.data(), row.size());
      for (std::size_t j = 0; j < row.size(); ++j) a(k, k + 2 + j) = row[j];
      if (right[k].tau != cplx{}) {
        // A <- A (I - tau v v^H) on rows k+1.. (row k handled analytically).
        reflect_right(a, k + 1, k + 1, row.data(), row.size(), right[k].tau);
      }
      a(k, k + 1) = right[k].beta;
    }
  }

  std::vector<double> d(n), e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i).real();
  for (std::size_t i = 1; i < n; ++i) e[i] = a(i - 1, i).real();

  // Backward-accumulate U = H_1 ... H_n * [e1..en] and V = W_1 ... W_r * I.
  CMatrix u(m, n);
  for (std::size_t i = 0; i < n; ++i) u(i, i) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    std::vector<cplx> v(m - kk - 1);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = a(kk + 1 + i, kk);
    reflect_left(u, kk, kk, v.data(), v.size(), left[kk].tau);
  }
  CMatrix vmat = CMatrix::identity(n);
  for (std::size_t kk = right.size(); kk-- > 0;) {
    std::vector<cplx> v(n - kk - 2);
    for (std::size_t j = 0; j < v.size(); ++j) v[j] = a(kk, kk + 2 + j);
    reflect_left(vmat, kk + 1, kk + 1, v.data(), v.size(), right[kk].tau);
  }

  // Transposed copies keep the QR rotations on contiguous rows.
  CMatrix ut = u.transposed();
  CMatrix vt = vmat.transposed();
  if (!bidiagonal_qr(d, e, ut, vt)) return false;

  // Sort singular values descending, permuting the factors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return d[x] > d[y]; });
  out.u = CMatrix(m, n);
  out.s.resize(n);
  out.vh = CMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = d[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = ut(src, i);
    for (std::size_t i = 0; i < n; ++i) out.vh(j, i) = std::conj(vt(src, i));
  }
  return true;
}

}  // namespace

SvdResult svd(const CMatrix& a) {
  require(!a.empty(), "svd: empty matrix");
  if (a.rows() < a.cols()) {
    SvdResult t = svd(a.adjoint());
    SvdResult r;
    r.s = std::move(t.s);
    r.u = t.vh.adjoint();
    r.vh = t.u.adjoint();
    return r;
  }
  SvdResult out;
  if (svd_golub_kahan(a, out)) return out;
  // Extremely rare: fall back to the unconditionally-convergent Jacobi path.
  return svd_jacobi(a);
}

TruncatedSvd svd_truncated(const CMatrix& a, std::size_t max_rank,
                           double cutoff) {
  SvdResult full = svd(a);
  const std::size_t k = full.s.size();
  double total = 0;
  for (double x : full.s) total += x * x;

  const double smax = full.s.empty() ? 0.0 : full.s[0];
  std::size_t keep = std::min(max_rank, k);
  while (keep > 1 && full.s[keep - 1] <= cutoff * smax) --keep;
  // Never keep exact zeros (they carry no state weight).
  while (keep > 1 && full.s[keep - 1] == 0.0) --keep;

  TruncatedSvd r;
  double kept = 0;
  for (std::size_t j = 0; j < keep; ++j) kept += full.s[j] * full.s[j];
  r.truncation_error = total > 0 ? std::max(0.0, 1.0 - kept / total) : 0.0;
  r.s.assign(full.s.begin(), full.s.begin() + keep);
  r.u = CMatrix(a.rows(), keep);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < keep; ++j) r.u(i, j) = full.u(i, j);
  r.vh = CMatrix(keep, a.cols());
  for (std::size_t j = 0; j < keep; ++j)
    for (std::size_t i = 0; i < a.cols(); ++i) r.vh(j, i) = full.vh(j, i);
  return r;
}

}  // namespace q2::la
