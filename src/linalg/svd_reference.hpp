// The pre-rebuild textbook scalar one-sided Jacobi SVD, kept verbatim as the
// independently-derived oracle for the differential tests (tests/test_svd_diff)
// and the perf baseline for bench_svd — the role gemm_naive plays for the GEMM
// substrate. Production code must not call this; use la::svd / la::svd_jacobi /
// la::svd_truncated, which run the QR-preconditioned tournament engine.
#pragma once

#include "linalg/svd.hpp"

namespace q2::la {

/// Scalar cyclic one-sided Jacobi SVD (full decomposition, k = min(m, n)
/// triplets, zero singular values kept with completed orthonormal U columns).
SvdResult svd_jacobi_reference(const CMatrix& a);

}  // namespace q2::la
