// Complex singular value decomposition — the LAPACK-zgesvd stand-in that the
// MPS two-site update (paper Eq. 9) funnels through.
//
// Two engines share this interface:
//  - svd(): Golub-Kahan (Householder bidiagonalization + implicit-shift QR on
//    the real bidiagonal), the general-purpose full decomposition — the
//    BDC/QR route the paper describes for swBLAS.
//  - svd_jacobi / svd_truncated / svd_truncated_ws: the truncated-SVD
//    substrate. For m >= n the operand is QR-preconditioned (A = QR; Jacobi
//    runs on the small n x n factor, oriented as R^H so its columns pack
//    contiguously out of R's rows) and U is recovered as Q V_X through the
//    blocked GEMM only when a caller asks for it. The Jacobi itself replaces
//    the cyclic (p, q) order with round-robin tournament rounds whose column
//    pairs are disjoint; each round's rotations fan out over
//    par::parallel_for and commute exactly, so results are bit-identical at
//    every thread count — the same determinism contract as the GEMM
//    substrate. svd_truncated_ws is the zero-copy workspace form the MPS
//    two-site update sits on.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/householder.hpp"
#include "linalg/matrix.hpp"
#include "parallel/parallel_options.hpp"

namespace q2::la {

struct SvdResult {
  CMatrix u;               ///< m x k, orthonormal columns (k = min(m, n)).
  std::vector<double> s;   ///< k singular values, descending.
  CMatrix vh;              ///< k x n, orthonormal rows (V adjoint).
};

/// Thin SVD of an arbitrary complex matrix (Golub-Kahan; falls back to
/// Jacobi on the rare non-convergence).
SvdResult svd(const CMatrix& a);

/// Full SVD through the QR-preconditioned tournament-Jacobi engine:
/// unconditionally stable, cross-validates the Golub-Kahan path, and serves
/// as its non-convergence fallback. Zero singular values are reported as
/// exact zeros with completed orthonormal U columns.
SvdResult svd_jacobi(const CMatrix& a,
                     const par::ParallelOptions& parallel = {});

struct TruncatedSvd {
  CMatrix u;
  std::vector<double> s;
  CMatrix vh;
  /// Discarded weight: sum of squared dropped singular values divided by the
  /// total squared norm — the truncation-error monitor the paper describes.
  double truncation_error = 0.0;
  int sweeps = 0;             ///< Jacobi sweeps to convergence.
  bool preconditioned = false;  ///< QR preconditioner engaged.
};

/// SVD truncated to at most `max_rank` singular values, additionally dropping
/// values below `cutoff * s_max`. This is the D-truncation of the MPS bond.
TruncatedSvd svd_truncated(const CMatrix& a, std::size_t max_rank,
                           double cutoff = 0.0,
                           const par::ParallelOptions& parallel = {});

/// Reusable scratch for svd_truncated_ws. Buffers grow to the largest shape
/// seen and are never shrunk, so a long-lived workspace (e.g. the one owned
/// by sim::Mps) makes the truncated SVD allocation-free in steady state.
/// A workspace is not thread-safe; give each concurrent caller its own.
struct SvdWorkspace {
  std::vector<cplx> qa;     ///< packed operand; after QR: R + reflector tails
  std::vector<hh::Reflector> tau;   ///< QR reflector scalars
  std::vector<cplx> colbuf;         ///< Householder column gather
  std::vector<cplx> hwork;          ///< reflect_left row scratch
  std::vector<cplx> q;      ///< explicit thin Q, formed only when needed
  std::vector<cplx> w;      ///< Jacobi operand, row j = column j of B (or X)
  std::vector<cplx> vt;     ///< rotation accumulator in V^T row layout
  std::vector<double> colnorm;      ///< cached squared norms of w's rows
  std::vector<double> rel;          ///< per-pair off-diagonal magnitudes
  std::vector<std::size_t> perm;    ///< de Rijk norm-descending relabeling
  std::vector<double> s_all;        ///< unsorted singular values
  std::vector<std::size_t> order;   ///< stable descending permutation
  std::vector<cplx> ur;     ///< kept columns of V_X (precond recovery)
  std::vector<cplx> ub;     ///< Q * V_X product / row-form U staging
  std::vector<char> vec_null;       ///< null-vector flags for completion
  std::vector<cplx> cand;           ///< completion candidate (hoisted)
  std::vector<double> row_weight;   ///< completion probe weights
  std::vector<cplx> out_u, out_vh;  ///< extraction targets
  std::vector<double> out_s;
  /// Cached tournament schedule, rebuilt only when the pair count changes.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> schedule;
  std::size_t schedule_n = 0;
};

/// Zero-copy truncated SVD of the m x n row-major operand `a` (row stride
/// `lda` >= n). The returned pointers alias workspace buffers and stay valid
/// until the next call on the same workspace. When `row_scale` is non-null,
/// row i of the operand is multiplied by row_scale[i] during the packing
/// pass — this is how the MPS update folds the Eq. (8) Schmidt weighting in
/// without materializing the weighted copy. `want_u = false` skips U
/// recovery entirely (the Hastings update restores B_n from the unweighted M
/// and V^H, so U is never formed on the gate hot path).
struct TruncatedSpectrum {
  const double* s = nullptr;   ///< keep values, descending
  const cplx* u = nullptr;     ///< m x keep row-major; nullptr if !want_u
  const cplx* vh = nullptr;    ///< keep x n row-major
  std::size_t keep = 0;
  double truncation_error = 0.0;
  int sweeps = 0;
  bool preconditioned = false;
};

TruncatedSpectrum svd_truncated_ws(SvdWorkspace& ws, const cplx* a,
                                   std::size_t m, std::size_t n,
                                   std::size_t lda, const double* row_scale,
                                   std::size_t max_rank, double cutoff,
                                   bool want_u,
                                   const par::ParallelOptions& parallel = {});

/// Round-based tournament schedule for n columns (modulus ordering: round k
/// pairs {i, j} with i + j == k mod n). The rounds together cover every
/// unordered pair exactly once, with the pairs inside a round pairwise
/// disjoint. Shared with the sw:: CPE-cluster SVD kernel.
std::vector<std::vector<std::pair<std::size_t, std::size_t>>> tournament_rounds(
    std::size_t n);

}  // namespace q2::la
