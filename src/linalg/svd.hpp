// Complex singular value decomposition — the LAPACK-zgesvd stand-in that the
// MPS two-site update (paper Eq. 9) funnels through. The production path is
// Golub-Kahan (Householder bidiagonalization + implicit-shift QR on the real
// bidiagonal, exactly the BDC/QR route the paper describes for swBLAS); a
// one-sided Jacobi implementation is kept as an independently-derived
// cross-check and fallback.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace q2::la {

struct SvdResult {
  CMatrix u;               ///< m x k, orthonormal columns (k = min(m, n)).
  std::vector<double> s;   ///< k singular values, descending.
  CMatrix vh;              ///< k x n, orthonormal rows (V adjoint).
};

/// Thin SVD of an arbitrary complex matrix (Golub-Kahan; falls back to
/// Jacobi on the rare non-convergence).
SvdResult svd(const CMatrix& a);

/// One-sided Jacobi SVD — slower but unconditionally stable; used to
/// cross-validate the Golub-Kahan path and by the CPE-parallel kernel.
SvdResult svd_jacobi(const CMatrix& a);

struct TruncatedSvd {
  CMatrix u;
  std::vector<double> s;
  CMatrix vh;
  /// Discarded weight: sum of squared dropped singular values divided by the
  /// total squared norm — the truncation-error monitor the paper describes.
  double truncation_error = 0.0;
};

/// SVD truncated to at most `max_rank` singular values, additionally dropping
/// values below `cutoff * s_max`. This is the D-truncation of the MPS bond.
TruncatedSvd svd_truncated(const CMatrix& a, std::size_t max_rank,
                           double cutoff = 0.0);

}  // namespace q2::la
