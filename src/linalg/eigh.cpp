#include "linalg/eigh.hpp"

#include <cmath>
#include <numeric>

namespace q2::la {
namespace {

inline double conj_if(double x) { return x; }
inline cplx conj_if(cplx x) { return std::conj(x); }

// Two-sided Jacobi for a Hermitian matrix: rotate rows and columns with the
// unitary J = D R that diagonalizes each 2x2 pivot block (D phases the pivot
// real, R is the real Jacobi rotation), accumulating eigenvectors.
// esn = conj(phase) * sin(theta), ecs = conj(phase) * cos(theta).
template <typename T>
void rotate(Matrix<T>& a, Matrix<T>& vecs, std::size_t p, std::size_t q,
            double cs, double sn, T esn, T ecs) {
  const std::size_t n = a.rows();
  // Column update: A <- A J.
  for (std::size_t i = 0; i < n; ++i) {
    const T x = a(i, p), y = a(i, q);
    a(i, p) = cs * x + esn * y;
    a(i, q) = -sn * x + ecs * y;
  }
  // Row update: A <- J^H A.
  for (std::size_t j = 0; j < n; ++j) {
    const T x = a(p, j), y = a(q, j);
    a(p, j) = cs * x + conj_if(esn) * y;
    a(q, j) = -sn * x + conj_if(ecs) * y;
  }
  for (std::size_t i = 0; i < vecs.rows(); ++i) {
    const T x = vecs(i, p), y = vecs(i, q);
    vecs(i, p) = cs * x + esn * y;
    vecs(i, q) = -sn * x + ecs * y;
  }
}

template <typename T>
void jacobi_eigh(Matrix<T>& a, Matrix<T>& vecs) {
  const std::size_t n = a.rows();
  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(a(p, q));
    if (std::sqrt(off) < 1e-14 * (1.0 + a.max_abs())) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq_abs = std::abs(a(p, q));
        if (apq_abs < 1e-300) continue;
        const double app = std::real(a(p, p)), aqq = std::real(a(q, q));
        T phase_conj;
        if constexpr (std::is_same_v<T, cplx>)
          phase_conj = std::conj(a(p, q)) / apq_abs;
        else
          phase_conj = a(p, q) > 0 ? 1.0 : -1.0;
        const double theta = 0.5 * std::atan2(2.0 * apq_abs, app - aqq);
        const double cs = std::cos(theta), sn = std::sin(theta);
        rotate(a, vecs, p, q, cs, sn, T(phase_conj * sn), T(phase_conj * cs));
      }
    }
  }
}

template <typename T, typename Result>
Result eigh_impl(const Matrix<T>& a_in) {
  require(a_in.rows() == a_in.cols(), "eigh: matrix must be square");
  Matrix<T> a = a_in;
  Matrix<T> vecs = Matrix<T>::identity(a.rows());
  jacobi_eigh(a, vecs);

  const std::size_t n = a.rows();
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = std::real(a(i, i));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return vals[x] < vals[y]; });

  Result r;
  r.values.resize(n);
  r.vectors = Matrix<T>(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    r.values[j] = vals[order[j]];
    for (std::size_t i = 0; i < n; ++i) r.vectors(i, j) = vecs(i, order[j]);
  }
  return r;
}

}  // namespace

EighResult eigh(const CMatrix& a) { return eigh_impl<cplx, EighResult>(a); }
EighResultReal eigh(const RMatrix& a) {
  return eigh_impl<double, EighResultReal>(a);
}

}  // namespace q2::la
