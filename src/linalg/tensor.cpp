#include "linalg/tensor.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "linalg/gemm.hpp"

namespace q2::la {
namespace {

std::size_t product(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{1},
                         std::multiplies<>());
}

std::vector<std::size_t> row_major_strides(const std::vector<std::size_t>& shape) {
  std::vector<std::size_t> s(shape.size(), 1);
  for (std::size_t i = shape.size(); i-- > 1;) s[i - 1] = s[i] * shape[i];
  return s;
}

bool is_identity(const std::vector<std::size_t>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != i) return false;
  return true;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), cplx{}) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<cplx> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  require(data_.size() == product(shape_), "Tensor: data/shape size mismatch");
}

cplx& Tensor::at(std::initializer_list<std::size_t> idx) {
  return const_cast<cplx&>(std::as_const(*this).at(idx));
}

const cplx& Tensor::at(std::initializer_list<std::size_t> idx) const {
  require(idx.size() == shape_.size(), "Tensor::at: rank mismatch");
  const auto strides = row_major_strides(shape_);
  std::size_t flat = 0, axis = 0;
  for (std::size_t i : idx) flat += i * strides[axis++];
  return data_[flat];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  require(product(new_shape) == data_.size(), "Tensor::reshaped: size mismatch");
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::permuted(const std::vector<std::size_t>& perm) const {
  require(perm.size() == shape_.size(), "Tensor::permuted: rank mismatch");
  if (is_identity(perm)) return *this;

  std::vector<std::size_t> new_shape(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) new_shape[i] = shape_[perm[i]];
  const auto old_strides = row_major_strides(shape_);

  // For output position (i0, i1, ...): input stride of output axis k is
  // old_strides[perm[k]]; walk output linearly, input with mixed strides.
  std::vector<std::size_t> in_stride(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k)
    in_stride[k] = old_strides[perm[k]];

  Tensor out(new_shape);
  const std::size_t rank = perm.size();
  std::vector<std::size_t> idx(rank, 0);
  std::size_t in_off = 0;
  for (std::size_t o = 0; o < out.data_.size(); ++o) {
    out.data_[o] = data_[in_off];
    // Odometer increment over the output index, updating the input offset.
    for (std::size_t ax = rank; ax-- > 0;) {
      if (++idx[ax] < new_shape[ax]) {
        in_off += in_stride[ax];
        break;
      }
      in_off -= in_stride[ax] * (new_shape[ax] - 1);
      idx[ax] = 0;
    }
  }
  return out;
}

CMatrix Tensor::as_matrix(std::size_t split) const {
  require(split <= shape_.size(), "Tensor::as_matrix: bad split");
  std::size_t rows = 1, cols = 1;
  for (std::size_t i = 0; i < split; ++i) rows *= shape_[i];
  for (std::size_t i = split; i < shape_.size(); ++i) cols *= shape_[i];
  CMatrix m(rows, cols);
  std::copy(data_.begin(), data_.end(), m.data());
  return m;
}

Tensor Tensor::from_matrix(const CMatrix& m, std::vector<std::size_t> shape) {
  require(product(shape) == m.size(), "Tensor::from_matrix: size mismatch");
  std::vector<cplx> data(m.data(), m.data() + m.size());
  return Tensor(std::move(shape), std::move(data));
}

double Tensor::frobenius_norm() const {
  double s = 0;
  for (const auto& z : data_) s += norm2(z);
  return std::sqrt(s);
}

namespace {

struct ContractionPlan {
  std::vector<std::size_t> perm_a, perm_b;  // contracted axes moved to edge
  std::vector<std::size_t> free_a, free_b;  // uncontracted axes, in order
  std::vector<std::size_t> out_shape;
  std::size_t m = 1, k = 1, n = 1;
};

ContractionPlan plan_contraction(const Tensor& a,
                                 const std::vector<std::size_t>& axes_a,
                                 const Tensor& b,
                                 const std::vector<std::size_t>& axes_b) {
  require(axes_a.size() == axes_b.size(), "contract: axis count mismatch");
  ContractionPlan p;
  std::vector<bool> used_a(a.rank(), false), used_b(b.rank(), false);
  for (std::size_t i = 0; i < axes_a.size(); ++i) {
    require(axes_a[i] < a.rank() && axes_b[i] < b.rank(),
            "contract: axis out of range");
    require(a.dim(axes_a[i]) == b.dim(axes_b[i]),
            "contract: contracted dimensions differ");
    used_a[axes_a[i]] = true;
    used_b[axes_b[i]] = true;
    p.k *= a.dim(axes_a[i]);
  }
  for (std::size_t i = 0; i < a.rank(); ++i)
    if (!used_a[i]) {
      p.perm_a.push_back(i);
      p.free_a.push_back(i);
      p.out_shape.push_back(a.dim(i));
      p.m *= a.dim(i);
    }
  p.perm_a.insert(p.perm_a.end(), axes_a.begin(), axes_a.end());
  p.perm_b = axes_b;
  for (std::size_t i = 0; i < b.rank(); ++i)
    if (!used_b[i]) {
      p.perm_b.push_back(i);
      p.free_b.push_back(i);
      p.out_shape.push_back(b.dim(i));
      p.n *= b.dim(i);
    }
  return p;
}

// Flat storage offsets of a row-major odometer over the given axes of `t`:
// entry j is the offset contributed by the j-th multi-index over
// (dims(axes[0]), dims(axes[1]), ...). Because a row-major flat offset is
// additive over axes, the offset of any tensor element splits into
// row-table[free index] + col-table[contracted index] — which is exactly the
// (i, p) -> storage map gemm_offsets packs micro-panels through.
std::vector<std::size_t> offset_table(const Tensor& t,
                                      const std::vector<std::size_t>& axes) {
  const auto strides = row_major_strides(t.shape());
  std::vector<std::size_t> dims(axes.size()), strd(axes.size());
  std::size_t total = 1;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    dims[i] = t.dim(axes[i]);
    strd[i] = strides[axes[i]];
    total *= dims[i];
  }
  std::vector<std::size_t> out(total);
  std::vector<std::size_t> idx(axes.size(), 0);
  std::size_t off = 0;
  for (std::size_t o = 0; o < total; ++o) {
    out[o] = off;
    for (std::size_t ax = axes.size(); ax-- > 0;) {
      if (++idx[ax] < dims[ax]) {
        off += strd[ax];
        break;
      }
      off -= strd[ax] * (dims[ax] - 1);
      idx[ax] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor contract(const Tensor& a, const std::vector<std::size_t>& axes_a,
                const Tensor& b, const std::vector<std::size_t>& axes_b,
                const par::ParallelOptions& opts) {
  ContractionPlan p = plan_contraction(a, axes_a, b, axes_b);
  // Fused permutation and multiplication: instead of materializing permuted
  // tensors, build the (free, contracted) offset tables for each operand and
  // let the blocked GEMM pack its micro-panels directly from the original
  // tensor storage in the permuted index order.
  const CMatrix mc = gemm_offsets(
      p.m, p.k, p.n, a.data(), offset_table(a, p.free_a),
      offset_table(a, axes_a), b.data(), offset_table(b, axes_b),
      offset_table(b, p.free_b), opts);
  if (p.out_shape.empty()) p.out_shape = {1};
  return Tensor::from_matrix(mc, p.out_shape);
}

Tensor contract_reference(const Tensor& a, const std::vector<std::size_t>& axes_a,
                          const Tensor& b, const std::vector<std::size_t>& axes_b) {
  ContractionPlan p = plan_contraction(a, axes_a, b, axes_b);
  // Force both copies and the naive kernel: this is the unfused baseline.
  std::vector<std::size_t> bump_a(p.perm_a), bump_b(p.perm_b);
  Tensor ta = a.permuted(bump_a);
  Tensor tb = b.permuted(bump_b);
  CMatrix ma = ta.as_matrix(a.rank() - axes_a.size());
  CMatrix mb = tb.as_matrix(axes_b.size());
  CMatrix mc;
  gemm_naive(ma, mb, mc);
  if (p.out_shape.empty()) p.out_shape = {1};
  return Tensor::from_matrix(mc, p.out_shape);
}

}  // namespace q2::la
