#include "linalg/davidson.hpp"

#include <cmath>

#include "linalg/eigh.hpp"

namespace q2::la {
namespace {

template <typename T>
double dot_real(const std::vector<T>& a, const std::vector<T>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if constexpr (std::is_same_v<T, cplx>)
      s += (std::conj(a[i]) * b[i]).real();
    else
      s += a[i] * b[i];
  }
  return s;
}

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  T s{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    if constexpr (std::is_same_v<T, cplx>)
      s += std::conj(a[i]) * b[i];
    else
      s += a[i] * b[i];
  }
  return s;
}

template <typename T>
double nrm2(const std::vector<T>& a) {
  return std::sqrt(dot_real(a, a));
}

// Orthogonalize v against basis (two MGS passes) and normalize. Returns the
// post-orthogonalization norm; a tiny value means v was linearly dependent.
template <typename T>
double orthonormalize(std::vector<T>& v, const std::vector<std::vector<T>>& basis) {
  for (int round = 0; round < 2; ++round) {
    for (const auto& b : basis) {
      const T proj = dot(b, v);
      for (std::size_t i = 0; i < v.size(); ++i) v[i] -= proj * b[i];
    }
  }
  const double n = nrm2(v);
  if (n > 1e-300)
    for (auto& x : v) x /= n;
  return n;
}

template <typename T, typename Result>
Result davidson_impl(
    const std::function<std::vector<T>(const std::vector<T>&)>& apply,
    const std::vector<double>& diagonal, const std::vector<T>& guess,
    const DavidsonOptions& opts) {
  require(!guess.empty(), "davidson: empty guess");
  require(diagonal.size() == guess.size(), "davidson: diagonal size mismatch");

  Result result;
  std::vector<std::vector<T>> vs, ws;  // subspace and its images under H

  std::vector<T> v = guess;
  const double gn = nrm2(v);
  require(gn > 0, "davidson: zero guess vector");
  for (auto& x : v) x /= gn;
  vs.push_back(v);
  ws.push_back(apply(v));

  double theta = 0;
  std::vector<T> ritz, residual;

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const std::size_t k = vs.size();
    // Rayleigh-Ritz on the subspace.
    CMatrix g(k, k);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j) {
        if constexpr (std::is_same_v<T, cplx>)
          g(i, j) = dot(vs[i], ws[j]);
        else
          g(i, j) = cplx(dot(vs[i], ws[j]), 0.0);
      }
    EighResult eg = eigh(g);
    theta = eg.values[0];

    const std::size_t n = guess.size();
    ritz.assign(n, T{});
    residual.assign(n, T{});
    for (std::size_t j = 0; j < k; ++j) {
      const cplx cj = eg.vectors(j, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if constexpr (std::is_same_v<T, cplx>) {
          ritz[i] += cj * vs[j][i];
          residual[i] += cj * ws[j][i];
        } else {
          ritz[i] += cj.real() * vs[j][i];
          residual[i] += cj.real() * ws[j][i];
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) residual[i] -= T(theta) * ritz[i];

    result.iterations = it + 1;
    if (nrm2(residual) < opts.tolerance) {
      result.converged = true;
      break;
    }

    // Davidson preconditioner: (diag(H) - theta)^-1 r, clamped near zero.
    std::vector<T> t(n);
    for (std::size_t i = 0; i < n; ++i) {
      double d = diagonal[i] - theta;
      if (std::abs(d) < 1e-8) d = (d >= 0 ? 1e-8 : -1e-8);
      t[i] = residual[i] / d;
    }

    if (vs.size() >= opts.max_subspace) {
      // Restart with the current Ritz vector.
      vs.clear();
      ws.clear();
      std::vector<T> r0 = ritz;
      const double rn = nrm2(r0);
      for (auto& x : r0) x /= rn;
      vs.push_back(r0);
      ws.push_back(apply(r0));
    }

    if (orthonormalize(t, vs) < 1e-10) {
      // Expansion vector collapsed onto the subspace: converged numerically.
      result.converged = true;
      break;
    }
    vs.push_back(t);
    ws.push_back(apply(t));
  }

  result.eigenvalue = theta;
  result.eigenvector = std::move(ritz);
  const double rn = nrm2(result.eigenvector);
  if (rn > 0)
    for (auto& x : result.eigenvector) x /= rn;
  return result;
}

}  // namespace

DavidsonResult davidson_lowest(
    const std::function<std::vector<double>(const std::vector<double>&)>& apply,
    const std::vector<double>& diagonal, const std::vector<double>& guess,
    const DavidsonOptions& opts) {
  return davidson_impl<double, DavidsonResult>(apply, diagonal, guess, opts);
}

DavidsonResultC davidson_lowest_hermitian(
    const std::function<std::vector<cplx>(const std::vector<cplx>&)>& apply,
    const std::vector<double>& diagonal, const std::vector<cplx>& guess,
    const DavidsonOptions& opts) {
  return davidson_impl<cplx, DavidsonResultC>(apply, diagonal, guess, opts);
}

}  // namespace q2::la
