#include "linalg/matrix.hpp"

namespace q2::la {

CMatrix to_complex(const RMatrix& a) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
  return c;
}

RMatrix real_part(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).real();
  return r;
}

}  // namespace q2::la
