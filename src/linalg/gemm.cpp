#include "linalg/gemm.hpp"

#include <algorithm>
#include <complex>
#include <type_traits>

#include "obs/trace.hpp"
#include "obs/workload.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::la {
namespace {

// Register tile per element type. The complex kernel halves NR: a 4x4 cplx
// accumulator is 32 doubles, which still fits the vector register file.
template <typename T>
struct Micro {
  static constexpr std::size_t MR = GemmBlocking::kMR;
  static constexpr std::size_t NR = GemmBlocking::kNR;
};
template <>
struct Micro<cplx> {
  static constexpr std::size_t MR = 4;
  static constexpr std::size_t NR = 4;
};

template <typename T>
T maybe_conj(T v, bool conj) {
  if constexpr (std::is_same_v<T, cplx>) {
    if (conj) return std::conj(v);
  }
  (void)conj;
  return v;
}

// Read-only operand views the packing routines pull elements through; the
// per-element branch cost lives in the O(mk)+O(kn) pack, never in the
// O(mnk) kernel. OpView folds transpose/adjoint, OffsetView folds an
// arbitrary axis permutation via precomputed row/column offset tables.
template <typename T>
struct OpView {
  const T* data;
  std::size_t ld;
  bool trans;
  bool conj;
  T at(std::size_t i, std::size_t j) const {
    return maybe_conj(trans ? data[j * ld + i] : data[i * ld + j], conj);
  }
};

template <typename T>
struct OffsetView {
  const T* data;
  const std::size_t* row_off;
  const std::size_t* col_off;
  T at(std::size_t i, std::size_t j) const {
    return data[row_off[i] + col_off[j]];
  }
};

constexpr std::size_t round_up(std::size_t x, std::size_t r) {
  return (x + r - 1) / r * r;
}

// Pack an mc x kc block of op(A) (alpha folded in) into MR-row micro-panels,
// zero-padded to a multiple of MR: buf[(ir/MR)*MR*kc + p*MR + i].
template <typename T, class View>
void pack_a(T* buf, const View& av, T alpha, std::size_t i0, std::size_t p0,
            std::size_t mc, std::size_t kc) {
  constexpr std::size_t MR = Micro<T>::MR;
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      T* dst = buf + p * MR;
      for (std::size_t i = 0; i < mr; ++i)
        dst[i] = alpha * av.at(i0 + ir + i, p0 + p);
      for (std::size_t i = mr; i < MR; ++i) dst[i] = T{};
    }
    buf += MR * kc;
  }
}

// Pack a kc x nc block of op(B) into NR-column micro-panels, zero-padded:
// buf[(jr/NR)*NR*kc + p*NR + j].
template <typename T, class View>
void pack_b(T* buf, const View& bv, std::size_t p0, std::size_t j0,
            std::size_t kc, std::size_t nc) {
  constexpr std::size_t NR = Micro<T>::NR;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      T* dst = buf + p * NR;
      for (std::size_t j = 0; j < nr; ++j)
        dst[j] = bv.at(p0 + p, j0 + jr + j);
      for (std::size_t j = nr; j < NR; ++j) dst[j] = T{};
    }
    buf += NR * kc;
  }
}

// Register-tiled inner kernel: C[0..mr, 0..nr] += Apanel . Bpanel over kc.
// The accumulator spans the full padded MR x NR tile so the hot loop has no
// edge branches; the masked write-back trims the padding. Note there is
// deliberately no zero-skip here: 0 * NaN and 0 * Inf must propagate exactly
// as they do in the reference kernel.
template <typename T>
void micro_kernel(std::size_t kc, const T* ap, const T* bp, T* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  constexpr std::size_t MR = Micro<T>::MR;
  constexpr std::size_t NR = Micro<T>::NR;
  T acc[MR * NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const T* a = ap + p * MR;
    const T* b = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const T ai = a[i];
      T* accrow = acc + i * NR;
      for (std::size_t j = 0; j < NR; ++j) accrow[j] += ai * b[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i * NR + j];
}

// One mc x nc macro-tile of C: every micro-panel of the packed A block
// against every micro-panel of the packed B panel.
template <typename T>
void macro_kernel(std::size_t mc, std::size_t kc, std::size_t nc,
                  const T* abuf, const T* bbuf, T* c, std::size_t ldc) {
  constexpr std::size_t MR = Micro<T>::MR;
  constexpr std::size_t NR = Micro<T>::NR;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const T* bp = bbuf + (jr / NR) * NR * kc;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const T* ap = abuf + (ir / MR) * MR * kc;
      micro_kernel(kc, ap, bp, c + ir * ldc + jr, ldc, mr, nr);
    }
  }
}

// Blocked driver. beta is applied to C in one pass up front (beta == 0
// overwrites, so stale values in an output buffer never leak through), then
// the product accumulates k-blocks in a fixed order. Each (ic, jc) tile of C
// belongs to exactly one parallel_for iteration and the pc loop is a barrier
// between k-blocks, so the accumulation order — and hence the floating-point
// result — is identical for every thread count.
template <typename T, class ViewA, class ViewB>
void gemm_blocked(std::size_t m, std::size_t k, std::size_t n, T alpha,
                  const ViewA& av, const ViewB& bv, T beta, T* c,
                  std::size_t ldc, const par::ParallelOptions& opts) {
  OBS_SPAN("la/gemm");
  if (beta == T{}) {
    for (std::size_t i = 0; i < m; ++i)
      std::fill(c + i * ldc, c + i * ldc + n, T{});
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
  }
  if (m == 0 || n == 0 || k == 0) return;
  // Charged before the dispatch, on the calling thread: totals are
  // bit-identical at every thread count (see obs/workload.hpp).
  obs::WorkCounter::charge(obs::gemm_flops(m, k, n, !std::is_same_v<T, double>),
                           obs::gemm_bytes(m, k, n, sizeof(T)));

  constexpr std::size_t MR = Micro<T>::MR;
  constexpr std::size_t NR = Micro<T>::NR;
  constexpr std::size_t MC = GemmBlocking::kMC;
  constexpr std::size_t KC = GemmBlocking::kKC;
  constexpr std::size_t NC = GemmBlocking::kNC;

  std::vector<T> bbuf;
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      bbuf.resize(round_up(nc, NR) * kc);
      pack_b(bbuf.data(), bv, pc, jc, kc, nc);
      const std::size_t n_tiles = (m + MC - 1) / MC;
      par::ParallelOptions tile_opts = opts;
      tile_opts.grain = 1;
      par::parallel_for(tile_opts, 0, n_tiles, [&](std::size_t t) {
        const std::size_t ic = t * MC;
        const std::size_t mc = std::min(MC, m - ic);
        std::vector<T> abuf(round_up(mc, MR) * kc);
        pack_a(abuf.data(), av, alpha, ic, pc, mc, kc);
        macro_kernel(mc, kc, nc, abuf.data(), bbuf.data(),
                     c + ic * ldc + jc, ldc);
      });
    }
  }
}

template <typename T>
void gemm_impl(T alpha, const Matrix<T>& a, Op op_a, const Matrix<T>& b,
               Op op_b, T beta, Matrix<T>& c,
               const par::ParallelOptions& opts) {
  const bool ta = op_a != Op::kNone, tb = op_b != Op::kNone;
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t ka = ta ? a.rows() : a.cols();
  const std::size_t kb = tb ? b.cols() : b.rows();
  const std::size_t n = tb ? b.rows() : b.cols();
  require(ka == kb, "gemm: inner dimension mismatch");
  if (c.empty() && beta == T{}) c = Matrix<T>(m, n);
  require(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  // In-place products (C aliasing A or B) copy the aliased operand, since
  // the kernel interleaves C tile writes with A/B panel packing.
  Matrix<T> a_copy, b_copy;
  const Matrix<T>* pa = &a;
  const Matrix<T>* pb = &b;
  if (!c.empty() && !a.empty() && c.data() == a.data()) {
    a_copy = a;
    pa = &a_copy;
  }
  if (!c.empty() && !b.empty() && c.data() == b.data()) {
    b_copy = b;
    pb = &b_copy;
  }

  const OpView<T> av{pa->data(), pa->cols(), ta, op_a == Op::kAdjoint};
  const OpView<T> bv{pb->data(), pb->cols(), tb, op_b == Op::kAdjoint};
  gemm_blocked(m, ka, n, alpha, av, bv, beta, c.data(), c.cols(), opts);
}

}  // namespace

void gemm(cplx alpha, const CMatrix& a, Op op_a, const CMatrix& b, Op op_b,
          cplx beta, CMatrix& c, const par::ParallelOptions& opts) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c, opts);
}

void gemm(double alpha, const RMatrix& a, Op op_a, const RMatrix& b, Op op_b,
          double beta, RMatrix& c, const par::ParallelOptions& opts) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c, opts);
}

CMatrix matmul(const CMatrix& a, const CMatrix& b, Op op_a, Op op_b,
               const par::ParallelOptions& opts) {
  CMatrix c;
  gemm(cplx{1}, a, op_a, b, op_b, cplx{0}, c, opts);
  return c;
}

RMatrix matmul(const RMatrix& a, const RMatrix& b, Op op_a, Op op_b,
               const par::ParallelOptions& opts) {
  RMatrix c;
  gemm(1.0, a, op_a, b, op_b, 0.0, c, opts);
  return c;
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, const cplx* a,
              std::size_t lda, Op op_a, const cplx* b, std::size_t ldb,
              Op op_b, cplx* c, std::size_t ldc,
              const par::ParallelOptions& opts) {
  require(a != nullptr && b != nullptr && c != nullptr,
          "gemm_raw: null operand");
  require(ldc >= n, "gemm_raw: ldc < n");
  const OpView<cplx> av{a, lda, op_a != Op::kNone, op_a == Op::kAdjoint};
  const OpView<cplx> bv{b, ldb, op_b != Op::kNone, op_b == Op::kAdjoint};
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{0}, c, ldc, opts);
}

void gemm_offsets_into(std::size_t m, std::size_t k, std::size_t n,
                       const cplx* a_data,
                       const std::vector<std::size_t>& a_row_off,
                       const std::vector<std::size_t>& a_col_off,
                       const cplx* b_data,
                       const std::vector<std::size_t>& b_row_off,
                       const std::vector<std::size_t>& b_col_off, cplx* c,
                       std::size_t ldc, const par::ParallelOptions& opts) {
  require(a_row_off.size() == m && a_col_off.size() == k,
          "gemm_offsets: A offset table size mismatch");
  require(b_row_off.size() == k && b_col_off.size() == n,
          "gemm_offsets: B offset table size mismatch");
  require(ldc >= n, "gemm_offsets: ldc < n");
  const OffsetView<cplx> av{a_data, a_row_off.data(), a_col_off.data()};
  const OffsetView<cplx> bv{b_data, b_row_off.data(), b_col_off.data()};
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{0}, c, ldc, opts);
}

CMatrix gemm_offsets(std::size_t m, std::size_t k, std::size_t n,
                     const cplx* a_data,
                     const std::vector<std::size_t>& a_row_off,
                     const std::vector<std::size_t>& a_col_off,
                     const cplx* b_data,
                     const std::vector<std::size_t>& b_row_off,
                     const std::vector<std::size_t>& b_col_off,
                     const par::ParallelOptions& opts) {
  CMatrix c(m, n);
  gemm_offsets_into(m, k, n, a_data, a_row_off, a_col_off, b_data, b_row_off,
                    b_col_off, c.data(), n, opts);
  return c;
}

void gemm_tile(const cplx* a, std::size_t lda, const cplx* b, std::size_t ldb,
               cplx* c, std::size_t ldc, std::size_t m, std::size_t k,
               std::size_t n) {
  const OpView<cplx> av{a, lda, false, false};
  const OpView<cplx> bv{b, ldb, false, false};
  par::ParallelOptions serial;
  serial.n_threads = 1;
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{1}, c, ldc, serial);
}

std::vector<cplx> matvec(const CMatrix& a, const std::vector<cplx>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<cplx> y(a.rows(), cplx{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const cplx* row = a.row(i);
    cplx s{};
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> matvec(const RMatrix& a, const std::vector<double>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double s = 0;
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

void gemm_naive(const CMatrix& a, const CMatrix& b, CMatrix& c) {
  require(a.cols() == b.rows(), "gemm_naive: inner dimension mismatch");
  c = CMatrix(a.rows(), b.cols());
  // Deliberately j-inner-k order with a strided B access: this is the
  // untuned baseline for the §IV-B kernel comparison.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      cplx s{};
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
}

}  // namespace q2::la
