#include "linalg/gemm.hpp"

namespace q2::la {
namespace {

// i-k-j loop order keeps both B and C rows streaming for row-major storage;
// blocking over k bounds the working set. This is the "optimized" kernel the
// profile bench compares against gemm_naive.
constexpr std::size_t kBlock = 64;

template <typename T>
void gemm_kernel(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
                 Matrix<T>& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (beta == T{}) {
    std::fill(c.data(), c.data() + c.size(), T{});
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= beta;
  }
  for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
    const std::size_t k1 = std::min(k, k0 + kBlock);
    for (std::size_t i = 0; i < m; ++i) {
      const T* arow = a.row(i);
      T* crow = c.row(i);
      for (std::size_t p = k0; p < k1; ++p) {
        const T aip = alpha * arow[p];
        if (aip == T{}) continue;
        const T* brow = b.row(p);
        for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      }
    }
  }
}

template <typename T>
Matrix<T> apply_op(const Matrix<T>& a, Op op) {
  switch (op) {
    case Op::kNone:
      return a;
    case Op::kTrans:
      return a.transposed();
    case Op::kAdjoint:
      return a.adjoint();
  }
  throw Error("gemm: bad Op");
}

template <typename T>
void gemm_impl(T alpha, const Matrix<T>& a, Op op_a, const Matrix<T>& b,
               Op op_b, T beta, Matrix<T>& c) {
  // Materializing the transposed operand costs O(mn) against the O(mnk)
  // product and keeps a single fast kernel; fine at the sizes we run.
  const Matrix<T> at = (op_a == Op::kNone) ? Matrix<T>() : apply_op(a, op_a);
  const Matrix<T> bt = (op_b == Op::kNone) ? Matrix<T>() : apply_op(b, op_b);
  const Matrix<T>& ar = (op_a == Op::kNone) ? a : at;
  const Matrix<T>& br = (op_b == Op::kNone) ? b : bt;
  require(ar.cols() == br.rows(), "gemm: inner dimension mismatch");
  if (c.empty() && beta == T{}) c = Matrix<T>(ar.rows(), br.cols());
  require(c.rows() == ar.rows() && c.cols() == br.cols(),
          "gemm: output shape mismatch");
  gemm_kernel(alpha, ar, br, beta, c);
}

}  // namespace

void gemm(cplx alpha, const CMatrix& a, Op op_a, const CMatrix& b, Op op_b,
          cplx beta, CMatrix& c) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c);
}

void gemm(double alpha, const RMatrix& a, Op op_a, const RMatrix& b, Op op_b,
          double beta, RMatrix& c) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c);
}

CMatrix matmul(const CMatrix& a, const CMatrix& b, Op op_a, Op op_b) {
  CMatrix c;
  gemm(cplx{1}, a, op_a, b, op_b, cplx{0}, c);
  return c;
}

RMatrix matmul(const RMatrix& a, const RMatrix& b, Op op_a, Op op_b) {
  RMatrix c;
  gemm(1.0, a, op_a, b, op_b, 0.0, c);
  return c;
}

std::vector<cplx> matvec(const CMatrix& a, const std::vector<cplx>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<cplx> y(a.rows(), cplx{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const cplx* row = a.row(i);
    cplx s{};
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> matvec(const RMatrix& a, const std::vector<double>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double s = 0;
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

void gemm_naive(const CMatrix& a, const CMatrix& b, CMatrix& c) {
  require(a.cols() == b.rows(), "gemm_naive: inner dimension mismatch");
  c = CMatrix(a.rows(), b.cols());
  // Deliberately j-inner-k order with a strided B access: this is the
  // untuned baseline for the §IV-B kernel comparison.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      cplx s{};
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
}

}  // namespace q2::la
