#include "linalg/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <complex>
#include <type_traits>

#include "linalg/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::la {
namespace {

// Register tile per element type. The complex kernel halves NR: a 4x4 cplx
// accumulator is 32 doubles, which still fits the vector register file.
template <typename T>
struct Micro {
  static constexpr std::size_t MR = GemmBlocking::kMR;
  static constexpr std::size_t NR = GemmBlocking::kNR;
};
template <>
struct Micro<cplx> {
  static constexpr std::size_t MR = 4;
  static constexpr std::size_t NR = 4;
};

template <typename T>
T maybe_conj(T v, bool conj) {
  if constexpr (std::is_same_v<T, cplx>) {
    if (conj) return std::conj(v);
  }
  (void)conj;
  return v;
}

// Read-only operand views the packing routines pull elements through; the
// per-element branch cost lives in the O(mk)+O(kn) pack, never in the
// O(mnk) kernel. OpView folds transpose/adjoint, OffsetView folds an
// arbitrary axis permutation via precomputed row/column offset tables.
template <typename T>
struct OpView {
  const T* data;
  std::size_t ld;
  bool trans;
  bool conj;
  T at(std::size_t i, std::size_t j) const {
    return maybe_conj(trans ? data[j * ld + i] : data[i * ld + j], conj);
  }
};

template <typename T>
struct OffsetView {
  const T* data;
  const std::size_t* row_off;
  const std::size_t* col_off;
  T at(std::size_t i, std::size_t j) const {
    return data[row_off[i] + col_off[j]];
  }
};

constexpr std::size_t round_up(std::size_t x, std::size_t r) {
  return (x + r - 1) / r * r;
}

// Pack an mc x kc block of op(A) (alpha folded in) into MR-row micro-panels,
// zero-padded to a multiple of MR: buf[(ir/MR)*MR*kc + p*MR + i].
template <typename T, class View>
void pack_a(T* buf, const View& av, T alpha, std::size_t i0, std::size_t p0,
            std::size_t mc, std::size_t kc) {
  constexpr std::size_t MR = Micro<T>::MR;
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      T* dst = buf + p * MR;
      for (std::size_t i = 0; i < mr; ++i)
        dst[i] = alpha * av.at(i0 + ir + i, p0 + p);
      for (std::size_t i = mr; i < MR; ++i) dst[i] = T{};
    }
    buf += MR * kc;
  }
}

// Pack a kc x nc block of op(B) into NR-column micro-panels, zero-padded:
// buf[(jr/NR)*NR*kc + p*NR + j].
template <typename T, class View>
void pack_b(T* buf, const View& bv, std::size_t p0, std::size_t j0,
            std::size_t kc, std::size_t nc) {
  constexpr std::size_t NR = Micro<T>::NR;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      T* dst = buf + p * NR;
      for (std::size_t j = 0; j < nr; ++j)
        dst[j] = bv.at(p0 + p, j0 + jr + j);
      for (std::size_t j = nr; j < NR; ++j) dst[j] = T{};
    }
    buf += NR * kc;
  }
}

// How the first k-block writes a tile of C back: beta is folded into the
// write-back instead of a serial whole-matrix pre-pass, so no serial O(mn)
// fraction precedes the parallel region. kOverwrite (beta == 0) assigns, so
// stale values — including NaNs — in an output buffer never leak through.
enum class WriteBack { kAccumulate, kOverwrite, kScaleAdd };

// SIMD-dispatched micro-tile product (see linalg/simd.*): acc, zeroed here,
// receives the full padded MR x NR panel product.
inline void micro_accumulate(std::size_t kc, const double* ap,
                             const double* bp, double* acc) {
  simd::micro_accumulate_d(kc, ap, bp, acc);
}
inline void micro_accumulate(std::size_t kc, const cplx* ap, const cplx* bp,
                             cplx* acc) {
  simd::micro_accumulate_z(kc, ap, bp, acc);
}

// Register-tiled inner kernel: C[0..mr, 0..nr] op= Apanel . Bpanel over kc.
// The accumulator spans the full padded MR x NR tile so the hot loop has no
// edge branches; the masked write-back trims the padding and applies the
// beta mode. Note there is deliberately no zero-skip anywhere: 0 * NaN and
// 0 * Inf must propagate exactly as they do in the reference kernel.
template <typename T>
void micro_kernel(std::size_t kc, const T* ap, const T* bp, T* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  WriteBack wb, T beta) {
  constexpr std::size_t NR = Micro<T>::NR;
  T acc[Micro<T>::MR * NR] = {};
  micro_accumulate(kc, ap, bp, acc);
  switch (wb) {
    case WriteBack::kAccumulate:
      for (std::size_t i = 0; i < mr; ++i)
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i * NR + j];
      break;
    case WriteBack::kOverwrite:
      for (std::size_t i = 0; i < mr; ++i)
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i * NR + j];
      break;
    case WriteBack::kScaleAdd:
      for (std::size_t i = 0; i < mr; ++i)
        for (std::size_t j = 0; j < nr; ++j)
          c[i * ldc + j] = beta * c[i * ldc + j] + acc[i * NR + j];
      break;
  }
}

// One mc x nc macro-tile of C: every micro-panel of the packed A block
// against every micro-panel of the packed B panel slice.
template <typename T>
void macro_kernel(std::size_t mc, std::size_t kc, std::size_t nc,
                  const T* abuf, const T* bbuf, T* c, std::size_t ldc,
                  WriteBack wb, T beta) {
  constexpr std::size_t MR = Micro<T>::MR;
  constexpr std::size_t NR = Micro<T>::NR;
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const T* bp = bbuf + (jr / NR) * NR * kc;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const T* ap = abuf + (ir / MR) * MR * kc;
      micro_kernel(kc, ap, bp, c + ir * ldc + jr, ldc, mr, nr, wb, beta);
    }
  }
}

obs::Counter& packa_reuse_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("gemm.packa_reused");
  return c;
}
obs::Counter& packa_pack_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("gemm.packa_packed");
  return c;
}

/// Distinguishes tile-grid dispatches so a thread's cached packed-A block is
/// never mistaken for another (jc, pc) phase's — or another concurrent
/// GEMM's — block of the same tile-row index.
std::uint64_t next_tile_loop_id() {
  static std::atomic<std::uint64_t> id{0};
  return id.fetch_add(1, std::memory_order_relaxed) + 1;  // never kNoTag/0
}

// Blocked driver, parallel over a 2-D (ic x jr) tile grid. The old
// m/MC-row-only decomposition starved the pool — at m = 256, MC = 96 yields
// 3 tiles for 4 threads — and its serial B-pack plus serial beta pre-pass
// capped scaling on top (Amdahl). Now:
//
//   * The B panel of each (jc, pc) phase is packed cooperatively, one
//     JB-column slab per parallel_for iteration (disjoint writes, and packing
//     is element-copying, so the packed bytes are scheduling-independent).
//   * C tiles form an (m/MC) x (nc/JB) grid; every tile is owned by exactly
//     one iteration, and the pc loop remains a barrier between k-blocks, so
//     each C element sees the same fixed accumulation order — and therefore
//     bit-identical results — at every thread count.
//   * beta is folded into the first k-block's write-back (see WriteBack), so
//     no serial O(mn) pass remains.
//   * The packed-A block lives in a pool-resident per-thread Scratch buffer
//     tagged (loop, tile-row): iterating the grid tile-row-major, a thread
//     claiming consecutive tiles reuses its packed block instead of paying a
//     pack — and never re-mallocs (gemm.packa_{packed,reused} count this).
template <typename T, class ViewA, class ViewB>
void gemm_blocked(std::size_t m, std::size_t k, std::size_t n, T alpha,
                  const ViewA& av, const ViewB& bv, T beta, T* c,
                  std::size_t ldc, const par::ParallelOptions& opts) {
  OBS_SPAN("la/gemm");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Nothing to accumulate: the call reduces to C *= beta.
    if (beta == T{}) {
      for (std::size_t i = 0; i < m; ++i)
        std::fill(c + i * ldc, c + i * ldc + n, T{});
    } else if (beta != T{1}) {
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
    return;
  }
  // Charged before the dispatch, on the calling thread: totals are
  // bit-identical at every thread count (see obs/workload.hpp).
  obs::WorkCounter::charge(obs::gemm_flops(m, k, n, !std::is_same_v<T, double>),
                           obs::gemm_bytes(m, k, n, sizeof(T)));

  constexpr std::size_t MR = Micro<T>::MR;
  constexpr std::size_t NR = Micro<T>::NR;
  constexpr std::size_t MC = GemmBlocking::kMC;
  constexpr std::size_t KC = GemmBlocking::kKC;
  constexpr std::size_t NC = GemmBlocking::kNC;
  constexpr std::size_t JB = GemmBlocking::kJB;
  static_assert(JB % GemmBlocking::kNR == 0 && JB % 4 == 0,
                "JB must be a whole number of micro-panels for every Micro<T>");

  const std::size_t n_ib = (m + MC - 1) / MC;
  std::vector<T> bbuf;
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    const std::size_t n_jb = (nc + JB - 1) / JB;
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const WriteBack wb = pc != 0 ? WriteBack::kAccumulate
                           : beta == T{} ? WriteBack::kOverwrite
                           : beta == T{1} ? WriteBack::kAccumulate
                                          : WriteBack::kScaleAdd;
      bbuf.resize(round_up(nc, NR) * kc);
      par::ParallelOptions slab_opts = opts;
      slab_opts.grain = 1;  // one B slab / one C tile per claimed unit
      par::parallel_for(slab_opts, 0, n_jb, [&](std::size_t jb) {
        const std::size_t jr0 = jb * JB;
        pack_b(bbuf.data() + (jr0 / NR) * NR * kc, bv, pc, jc + jr0, kc,
               std::min(JB, nc - jr0));
      });
      const std::uint64_t loop_id = next_tile_loop_id();
      par::parallel_for(slab_opts, 0, n_ib * n_jb, [&](std::size_t t) {
        const std::size_t ib = t / n_jb, jb = t % n_jb;
        const std::size_t ic = ib * MC;
        const std::size_t mc = std::min(MC, m - ic);
        const std::size_t jr0 = jb * JB;
        const std::size_t ncw = std::min(JB, nc - jr0);
        par::Scratch scratch(round_up(mc, MR) * kc * sizeof(T));
        T* abuf = static_cast<T*>(scratch.data());
        if (scratch.tag(0) != loop_id || scratch.tag(1) != ib) {
          pack_a(abuf, av, alpha, ic, pc, mc, kc);
          scratch.set_tag(0, loop_id);
          scratch.set_tag(1, ib);
          packa_pack_counter().add();
        } else {
          packa_reuse_counter().add();
        }
        macro_kernel(mc, kc, ncw, abuf, bbuf.data() + (jr0 / NR) * NR * kc,
                     c + ic * ldc + jc + jr0, ldc, wb, beta);
      });
    }
  }
}

template <typename T>
void gemm_impl(T alpha, const Matrix<T>& a, Op op_a, const Matrix<T>& b,
               Op op_b, T beta, Matrix<T>& c,
               const par::ParallelOptions& opts) {
  const bool ta = op_a != Op::kNone, tb = op_b != Op::kNone;
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t ka = ta ? a.rows() : a.cols();
  const std::size_t kb = tb ? b.cols() : b.rows();
  const std::size_t n = tb ? b.rows() : b.cols();
  require(ka == kb, "gemm: inner dimension mismatch");
  if (c.empty() && beta == T{}) c = Matrix<T>(m, n);
  require(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  // In-place products (C aliasing A or B) copy the aliased operand, since
  // the kernel interleaves C tile writes with A/B panel packing.
  Matrix<T> a_copy, b_copy;
  const Matrix<T>* pa = &a;
  const Matrix<T>* pb = &b;
  if (!c.empty() && !a.empty() && c.data() == a.data()) {
    a_copy = a;
    pa = &a_copy;
  }
  if (!c.empty() && !b.empty() && c.data() == b.data()) {
    b_copy = b;
    pb = &b_copy;
  }

  const OpView<T> av{pa->data(), pa->cols(), ta, op_a == Op::kAdjoint};
  const OpView<T> bv{pb->data(), pb->cols(), tb, op_b == Op::kAdjoint};
  gemm_blocked(m, ka, n, alpha, av, bv, beta, c.data(), c.cols(), opts);
}

}  // namespace

void gemm(cplx alpha, const CMatrix& a, Op op_a, const CMatrix& b, Op op_b,
          cplx beta, CMatrix& c, const par::ParallelOptions& opts) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c, opts);
}

void gemm(double alpha, const RMatrix& a, Op op_a, const RMatrix& b, Op op_b,
          double beta, RMatrix& c, const par::ParallelOptions& opts) {
  gemm_impl(alpha, a, op_a, b, op_b, beta, c, opts);
}

CMatrix matmul(const CMatrix& a, const CMatrix& b, Op op_a, Op op_b,
               const par::ParallelOptions& opts) {
  CMatrix c;
  gemm(cplx{1}, a, op_a, b, op_b, cplx{0}, c, opts);
  return c;
}

RMatrix matmul(const RMatrix& a, const RMatrix& b, Op op_a, Op op_b,
               const par::ParallelOptions& opts) {
  RMatrix c;
  gemm(1.0, a, op_a, b, op_b, 0.0, c, opts);
  return c;
}

void gemm_raw(std::size_t m, std::size_t k, std::size_t n, const cplx* a,
              std::size_t lda, Op op_a, const cplx* b, std::size_t ldb,
              Op op_b, cplx* c, std::size_t ldc,
              const par::ParallelOptions& opts) {
  require(a != nullptr && b != nullptr && c != nullptr,
          "gemm_raw: null operand");
  require(ldc >= n, "gemm_raw: ldc < n");
  // lda/ldb are the strides of the *stored* operands: op(A) reads an m x k
  // matrix from an m x k (kNone) or k x m (kTrans/kAdjoint) array.
  require(op_a == Op::kNone ? lda >= k : lda >= m,
          op_a == Op::kNone ? "gemm_raw: lda < k" : "gemm_raw: lda < m");
  require(op_b == Op::kNone ? ldb >= n : ldb >= k,
          op_b == Op::kNone ? "gemm_raw: ldb < n" : "gemm_raw: ldb < k");
  const OpView<cplx> av{a, lda, op_a != Op::kNone, op_a == Op::kAdjoint};
  const OpView<cplx> bv{b, ldb, op_b != Op::kNone, op_b == Op::kAdjoint};
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{0}, c, ldc, opts);
}

void gemm_offsets_into(std::size_t m, std::size_t k, std::size_t n,
                       const cplx* a_data,
                       const std::vector<std::size_t>& a_row_off,
                       const std::vector<std::size_t>& a_col_off,
                       const cplx* b_data,
                       const std::vector<std::size_t>& b_row_off,
                       const std::vector<std::size_t>& b_col_off, cplx* c,
                       std::size_t ldc, const par::ParallelOptions& opts) {
  require(a_data != nullptr && b_data != nullptr && c != nullptr,
          "gemm_offsets: null operand");
  require(a_row_off.size() == m && a_col_off.size() == k,
          "gemm_offsets: A offset table size mismatch");
  require(b_row_off.size() == k && b_col_off.size() == n,
          "gemm_offsets: B offset table size mismatch");
  require(ldc >= n, "gemm_offsets: ldc < n");
  const OffsetView<cplx> av{a_data, a_row_off.data(), a_col_off.data()};
  const OffsetView<cplx> bv{b_data, b_row_off.data(), b_col_off.data()};
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{0}, c, ldc, opts);
}

CMatrix gemm_offsets(std::size_t m, std::size_t k, std::size_t n,
                     const cplx* a_data,
                     const std::vector<std::size_t>& a_row_off,
                     const std::vector<std::size_t>& a_col_off,
                     const cplx* b_data,
                     const std::vector<std::size_t>& b_row_off,
                     const std::vector<std::size_t>& b_col_off,
                     const par::ParallelOptions& opts) {
  CMatrix c(m, n);
  gemm_offsets_into(m, k, n, a_data, a_row_off, a_col_off, b_data, b_row_off,
                    b_col_off, c.data(), n, opts);
  return c;
}

void gemm_tile(const cplx* a, std::size_t lda, const cplx* b, std::size_t ldb,
               cplx* c, std::size_t ldc, std::size_t m, std::size_t k,
               std::size_t n) {
  const OpView<cplx> av{a, lda, false, false};
  const OpView<cplx> bv{b, ldb, false, false};
  par::ParallelOptions serial;
  serial.n_threads = 1;
  gemm_blocked(m, k, n, cplx{1}, av, bv, cplx{1}, c, ldc, serial);
}

std::vector<cplx> matvec(const CMatrix& a, const std::vector<cplx>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<cplx> y(a.rows(), cplx{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const cplx* row = a.row(i);
    cplx s{};
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> matvec(const RMatrix& a, const std::vector<double>& x) {
  require(a.cols() == x.size(), "matvec: shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double s = 0;
    for (std::size_t j = 0; j < x.size(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

void gemm_naive(const CMatrix& a, const CMatrix& b, CMatrix& c) {
  require(a.cols() == b.rows(), "gemm_naive: inner dimension mismatch");
  c = CMatrix(a.rows(), b.cols());
  // Deliberately j-inner-k order with a strided B access: this is the
  // untuned baseline for the §IV-B kernel comparison.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      cplx s{};
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
}

}  // namespace q2::la
