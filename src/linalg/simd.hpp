// Runtime-dispatched SIMD inner loops shared by the GEMM micro-kernel and
// the Jacobi SVD (rotations, Gram dots, column norms). One ISA is selected
// per process (AVX2+FMA when the CPU has it, a portable scalar path
// otherwise), so every thread executes the same instruction sequence and the
// bit-identical-across-thread-counts contracts of gemm/svd are untouched.
//
// The portable path reproduces the numerics the pre-SIMD kernels used
// (same accumulator chains, same combine order); the AVX2 path is a
// different — but fixed and thread-count-independent — summation order, so
// the two ISAs agree only to rounding. Differential tests compare them with
// tolerances (see test_gemm_diff PortableIsaAgreesWithDispatch).
//
// Q2_SIMD=portable in the environment forces the fallback (useful to
// reproduce results from hosts without AVX2).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace q2::la::simd {

enum class Isa { kPortable, kAvx2Fma };

/// The ISA every simd:: entry point below dispatches to. Detected once per
/// process (unless overridden): AVX2+FMA when the CPU supports both and
/// Q2_SIMD != "portable", else the portable path.
Isa active_isa();
const char* isa_name(Isa isa);

/// Test hook: force an ISA for subsequent calls (kAvx2Fma is ignored on
/// hosts without the ISA). clear_isa_override() restores detection.
void set_isa_override(Isa isa);
void clear_isa_override();

/// GEMM micro-tile product, double flavor: acc (row-major 4x8, zeroed by the
/// caller) receives sum_p ap[p*4 + i] * bp[p*8 + j] over p in [0, kc). ap/bp
/// are the packed MR-row / NR-column micro-panels of gemm.cpp.
void micro_accumulate_d(std::size_t kc, const double* ap, const double* bp,
                        double* acc);

/// GEMM micro-tile product, complex flavor: acc is row-major 4x4.
void micro_accumulate_z(std::size_t kc, const cplx* ap, const cplx* bp,
                        cplx* acc);

/// <x, y> = sum_i conj(x[i]) * y[i] with a fixed, thread-count-independent
/// combine order (the Jacobi Gram dot).
cplx dot_conj(const cplx* x, const cplx* y, std::size_t len);

/// sum_i |x[i]|^2, fixed combine order (the Jacobi column-norm refresh).
double norm2_sum(const cplx* x, std::size_t len);

/// The Jacobi plane rotation applied to a disjoint row pair:
///   x[i] <- cs * x[i] + esn * y[i]
///   y[i] <- -sn * x[i] + ecs * y[i]
/// (cs/sn real, esn/ecs = phase-conjugated sin/cos; see svd.cpp).
void rotate_pair(cplx* x, cplx* y, std::size_t len, double cs, double sn,
                 cplx esn, cplx ecs);

}  // namespace q2::la::simd
