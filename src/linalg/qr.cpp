#include "linalg/qr.hpp"

#include <cmath>

namespace q2::la {

QrResult qr(const CMatrix& a_in) {
  // Modified Gram-Schmidt with one reorthogonalization pass: simpler than
  // Householder for thin factors and numerically adequate ("twice is enough").
  const std::size_t m = a_in.rows(), n = a_in.cols();
  const std::size_t k = std::min(m, n);
  CMatrix q(m, k), r(k, n);

  for (std::size_t j = 0; j < n; ++j) {
    std::vector<cplx> v(m);
    for (std::size_t i = 0; i < m; ++i) v[i] = a_in(i, j);
    const std::size_t lim = std::min(j, k);
    for (int round = 0; round < 2; ++round) {
      for (std::size_t c = 0; c < lim; ++c) {
        cplx proj{};
        for (std::size_t i = 0; i < m; ++i) proj += std::conj(q(i, c)) * v[i];
        r(c, j) += proj;
        for (std::size_t i = 0; i < m; ++i) v[i] -= proj * q(i, c);
      }
    }
    if (j < k) {
      double nrm = 0;
      for (const auto& z : v) nrm += norm2(z);
      nrm = std::sqrt(nrm);
      r(j, j) = nrm;
      if (nrm > 1e-300) {
        for (std::size_t i = 0; i < m; ++i) q(i, j) = v[i] / nrm;
      } else {
        // Rank-deficient column: inject a canonical vector orthogonal to the
        // span so Q keeps full column rank.
        for (std::size_t probe = 0; probe < m; ++probe) {
          std::vector<cplx> cand(m, cplx{});
          cand[probe] = 1.0;
          for (std::size_t c = 0; c < j; ++c) {
            cplx proj{};
            for (std::size_t i = 0; i < m; ++i)
              proj += std::conj(q(i, c)) * cand[i];
            for (std::size_t i = 0; i < m; ++i) cand[i] -= proj * q(i, c);
          }
          double cn = 0;
          for (const auto& z : cand) cn += norm2(z);
          cn = std::sqrt(cn);
          if (cn > 1e-8) {
            for (std::size_t i = 0; i < m; ++i) q(i, j) = cand[i] / cn;
            break;
          }
        }
      }
    }
  }
  return {std::move(q), std::move(r)};
}

CMatrix random_unitary(std::size_t n, Rng& rng) {
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.complex_normal();
  QrResult f = qr(g);
  // Fix the phase gauge: multiply each column by the phase of R's diagonal so
  // the distribution is exactly Haar.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx d = f.r(j, j);
    const double ad = std::abs(d);
    const cplx phase = ad > 0 ? d / ad : cplx{1};
    for (std::size_t i = 0; i < n; ++i) f.q(i, j) *= phase;
  }
  return f.q;
}

}  // namespace q2::la
