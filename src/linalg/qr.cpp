#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "linalg/householder.hpp"

namespace q2::la {

QrResult qr(const CMatrix& a_in) {
  // Householder QR (zgeqrf/zungqr shape) on the shared reflector machinery
  // from linalg/householder.hpp: unconditionally backward stable, no
  // reorthogonalization passes, and rank-deficient columns need no special
  // casing — Q's columns stay orthonormal because they are products of exact
  // unitaries. The thin Q comes from backward accumulation of the reflectors
  // against the first k identity columns.
  const std::size_t m = a_in.rows(), n = a_in.cols();
  const std::size_t k = std::min(m, n);
  CMatrix work = a_in;
  std::vector<hh::Reflector> refl(k);
  std::vector<cplx> tailbuf(m > 0 ? m - 1 : 0);
  std::vector<cplx> scratch;

  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t tail = m - j - 1;
    for (std::size_t i = 0; i < tail; ++i) tailbuf[i] = work(j + 1 + i, j);
    refl[j] = hh::make_reflector(work(j, j), tailbuf.data(), tail);
    for (std::size_t i = 0; i < tail; ++i) work(j + 1 + i, j) = tailbuf[i];
    hh::reflect_left(work.data(), n, n, j, j + 1, tailbuf.data(), tail,
                     std::conj(refl[j].tau), scratch);
    work(j, j) = refl[j].beta;
  }

  CMatrix r(k, n);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = work(i, j);

  CMatrix q(m, k);
  for (std::size_t i = 0; i < k; ++i) q(i, i) = 1.0;
  for (std::size_t j = k; j-- > 0;) {
    const std::size_t tail = m - j - 1;
    for (std::size_t i = 0; i < tail; ++i) tailbuf[i] = work(j + 1 + i, j);
    hh::reflect_left(q.data(), k, k, j, j, tailbuf.data(), tail, refl[j].tau,
                     scratch);
  }

  // Gauge fix: reflectors leave R(j, j) = beta with arbitrary sign; flip the
  // (Q column, R row) pair so R keeps the nonnegative real diagonal the
  // previous Gram-Schmidt implementation guaranteed (and random_unitary's
  // Haar construction relies on).
  for (std::size_t j = 0; j < k; ++j) {
    if (r(j, j).real() < 0.0) {
      for (std::size_t c = j; c < n; ++c) r(j, c) = -r(j, c);
      for (std::size_t i = 0; i < m; ++i) q(i, j) = -q(i, j);
    }
  }
  return {std::move(q), std::move(r)};
}

CMatrix random_unitary(std::size_t n, Rng& rng) {
  CMatrix g(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.complex_normal();
  QrResult f = qr(g);
  // Fix the phase gauge: multiply each column by the phase of R's diagonal so
  // the distribution is exactly Haar.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx d = f.r(j, j);
    const double ad = std::abs(d);
    const cplx phase = ad > 0 ? d / ad : cplx{1};
    for (std::size_t i = 0; i < n; ++i) f.q(i, j) *= phase;
  }
  return f.q;
}

}  // namespace q2::la
