// Householder QR. Used for orthonormalizing Krylov/Davidson subspaces and for
// building random unitaries in tests and workload generators.
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace q2::la {

struct QrResult {
  CMatrix q;  ///< m x k with orthonormal columns (k = min(m, n))
  CMatrix r;  ///< k x n upper triangular
};

/// Thin QR decomposition of a complex matrix.
QrResult qr(const CMatrix& a);

/// Haar-distributed random unitary of size n (QR of a Ginibre matrix with the
/// phase convention fixed so R has a positive real diagonal).
CMatrix random_unitary(std::size_t n, Rng& rng);

}  // namespace q2::la
