// Blocked GEMM kernels — the swBLAS stand-in. Everything above (tensor
// contraction, SVD, SCF) funnels matrix products through here, so this is the
// single tuning point, exactly as swBLAS was for the paper.
#pragma once

#include "linalg/matrix.hpp"

namespace q2::la {

enum class Op { kNone, kTrans, kAdjoint };

/// C = alpha * op(A) * op(B) + beta * C (shapes validated; C resized only if
/// beta == 0 and C is empty).
void gemm(cplx alpha, const CMatrix& a, Op op_a, const CMatrix& b, Op op_b,
          cplx beta, CMatrix& c);
void gemm(double alpha, const RMatrix& a, Op op_a, const RMatrix& b, Op op_b,
          double beta, RMatrix& c);

/// Convenience: plain product op(A)*op(B).
CMatrix matmul(const CMatrix& a, const CMatrix& b, Op op_a = Op::kNone,
               Op op_b = Op::kNone);
RMatrix matmul(const RMatrix& a, const RMatrix& b, Op op_a = Op::kNone,
               Op op_b = Op::kNone);

/// y = A x.
std::vector<cplx> matvec(const CMatrix& a, const std::vector<cplx>& x);
std::vector<double> matvec(const RMatrix& a, const std::vector<double>& x);

/// Reference triple-loop kernel kept for the swBLAS-vs-LAPACK style
/// comparison in bench_profile (paper §IV-B).
void gemm_naive(const CMatrix& a, const CMatrix& b, CMatrix& c);

}  // namespace q2::la
