// Packed, cache-blocked GEMM micro-kernel substrate — the swBLAS stand-in.
// Everything above (tensor contraction, SVD, SCF, the simulators) funnels
// matrix products through here, so this is the single tuning point, exactly
// as swBLAS was for the paper. The kernel follows the classic GotoBLAS/BLIS
// decomposition: NC/KC/MC macro-blocking, A and B packed into MR- and
// NR-wide micro-panels (transpose/adjoint folded into the packing step), and
// a register-tiled MR x NR inner kernel with runtime-dispatched SIMD paths
// (linalg/simd.hpp: AVX2/FMA when the host has it, portable otherwise).
// C tiles form a 2-D (MC-row x JB-column) grid distributed over the process
// ThreadPool — B panels are packed cooperatively and beta is folded into the
// first k-block's write-back, so no serial phase precedes the parallel
// region. Each tile is owned by exactly one task and accumulated in a fixed
// k-order, so results are bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "parallel/parallel_options.hpp"

namespace q2::la {

enum class Op { kNone, kTrans, kAdjoint };

/// Blocking parameters (exposed so the differential tests can sweep shapes
/// that straddle every boundary). MR/NR are the register tile for double —
/// the complex kernel narrows to a 4x4 tile internally; MC/KC size the
/// packed A block; NC bounds the packed B panel. JB is the column width of
/// one parallel work unit: C tiles form an (m/MC) x (nc/JB) grid, so even a
/// 256-row product exposes enough tiles to feed every thread (the old
/// m/MC-only split gave 3 tiles for 4 threads). JB must be a multiple of
/// both register tile widths (8 real, 4 complex).
struct GemmBlocking {
  static constexpr std::size_t kMR = 4;
  static constexpr std::size_t kNR = 8;
  static constexpr std::size_t kMC = 96;
  static constexpr std::size_t kKC = 256;
  static constexpr std::size_t kNC = 2048;
  static constexpr std::size_t kJB = 64;
};

/// C = alpha * op(A) * op(B) + beta * C (shapes validated; C resized only if
/// beta == 0 and C is empty). If C aliases A or B (same storage), the
/// aliased operand is copied first, so in-place products are well defined.
/// `opts` controls the fan-out over macro-tiles; the default runs on the
/// global pool sizing rules (Q2_THREADS > pool size). Results are
/// bit-identical for every thread count.
void gemm(cplx alpha, const CMatrix& a, Op op_a, const CMatrix& b, Op op_b,
          cplx beta, CMatrix& c, const par::ParallelOptions& opts = {});
void gemm(double alpha, const RMatrix& a, Op op_a, const RMatrix& b, Op op_b,
          double beta, RMatrix& c, const par::ParallelOptions& opts = {});

/// Convenience: plain product op(A)*op(B).
CMatrix matmul(const CMatrix& a, const CMatrix& b, Op op_a = Op::kNone,
               Op op_b = Op::kNone, const par::ParallelOptions& opts = {});
RMatrix matmul(const RMatrix& a, const RMatrix& b, Op op_a = Op::kNone,
               Op op_b = Op::kNone, const par::ParallelOptions& opts = {});

/// Zero-copy sibling of matmul for callers that manage their own buffers:
/// C = op(A) op(B) written (beta = 0 semantics, C overwritten) into the
/// row-major buffer `c` with row stride `ldc` >= n. `lda`/`ldb` are the row
/// strides of the *stored* operands — for Op::kNone A is stored m x k, for
/// kTrans/kAdjoint it is stored k x m. C must not alias A or B. Same blocked
/// kernel and thread-count determinism as gemm().
void gemm_raw(std::size_t m, std::size_t k, std::size_t n, const cplx* a,
              std::size_t lda, Op op_a, const cplx* b, std::size_t ldb,
              Op op_b, cplx* c, std::size_t ldc,
              const par::ParallelOptions& opts = {});

/// Fused-permutation product: the left operand's element (i, p) is
/// a_data[a_row_off[i] + a_col_off[p]] and the right operand's element
/// (p, j) is b_data[b_row_off[p] + b_col_off[j]]. Tensor contraction builds
/// these offset tables from the (free, contracted) axis split of each
/// operand, so micro-panels are packed straight out of the un-permuted
/// tensor storage — the paper's "fused permutation and multiplication",
/// with no intermediate permuted copy. Returns the m x n product.
CMatrix gemm_offsets(std::size_t m, std::size_t k, std::size_t n,
                     const cplx* a_data,
                     const std::vector<std::size_t>& a_row_off,
                     const std::vector<std::size_t>& a_col_off,
                     const cplx* b_data,
                     const std::vector<std::size_t>& b_row_off,
                     const std::vector<std::size_t>& b_col_off,
                     const par::ParallelOptions& opts = {});

/// gemm_offsets writing into a caller-provided row-major buffer (row stride
/// `ldc` >= n, overwritten) — the allocation-free form the MPS scratch
/// workspace packs site tensors through. C must not alias A or B.
void gemm_offsets_into(std::size_t m, std::size_t k, std::size_t n,
                       const cplx* a_data,
                       const std::vector<std::size_t>& a_row_off,
                       const std::vector<std::size_t>& a_col_off,
                       const cplx* b_data,
                       const std::vector<std::size_t>& b_row_off,
                       const std::vector<std::size_t>& b_col_off, cplx* c,
                       std::size_t ldc, const par::ParallelOptions& opts = {});

/// Accumulating tile product on raw row-major buffers: C += A * B with
/// leading dimensions lda/ldb/ldc. Runs the packed micro-kernel serially on
/// the calling thread; this is the in-LDM tile multiply shared with the CPE
/// machine model (sw::gemm_cpe stages tiles, then calls this).
void gemm_tile(const cplx* a, std::size_t lda, const cplx* b, std::size_t ldb,
               cplx* c, std::size_t ldc, std::size_t m, std::size_t k,
               std::size_t n);

/// y = A x.
std::vector<cplx> matvec(const CMatrix& a, const std::vector<cplx>& x);
std::vector<double> matvec(const RMatrix& a, const std::vector<double>& x);

/// Reference triple-loop kernel kept for the swBLAS-vs-LAPACK style
/// comparison in bench_profile/bench_kernels (paper §IV-B) and as the
/// differential-test oracle.
void gemm_naive(const CMatrix& a, const CMatrix& b, CMatrix& c);

}  // namespace q2::la
