// Dense complex tensor of arbitrary rank with permutation and pairwise
// contraction. Contraction lowers to the packed blocked GEMM with the index
// permutation folded into the micro-panel packing via offset tables — the
// "fused permutation and multiplication technique" of the paper; no permuted
// intermediate is ever materialized.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "parallel/parallel_options.hpp"

namespace q2::la {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<cplx> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_[axis]; }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }

  cplx& operator[](std::size_t i) { return data_[i]; }
  const cplx& operator[](std::size_t i) const { return data_[i]; }

  /// Element access by multi-index (row-major strides).
  cplx& at(std::initializer_list<std::size_t> idx);
  const cplx& at(std::initializer_list<std::size_t> idx) const;

  /// Reinterpret with a new shape of the same total size (no copy).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Permute axes: result axis i takes input axis perm[i].
  Tensor permuted(const std::vector<std::size_t>& perm) const;

  /// View the tensor as a matrix splitting axes at `split`: rows = product of
  /// the first `split` dims, cols = the rest.
  CMatrix as_matrix(std::size_t split) const;
  static Tensor from_matrix(const CMatrix& m, std::vector<std::size_t> shape);

  double frobenius_norm() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<cplx> data_;
};

/// Contract `axes_a` of `a` with `axes_b` of `b` (paired in order). The result
/// carries the free axes of `a` followed by the free axes of `b`. The index
/// permutation is fused into the GEMM packing step (no permuted copies);
/// `opts` fans the blocked GEMM out over macro-tiles, with results
/// bit-identical across thread counts.
Tensor contract(const Tensor& a, const std::vector<std::size_t>& axes_a,
                const Tensor& b, const std::vector<std::size_t>& axes_b,
                const par::ParallelOptions& opts = {});

/// Unfused reference contraction (explicit permute copies, naive GEMM), kept
/// as the baseline half of the fused-kernel ablation bench.
Tensor contract_reference(const Tensor& a, const std::vector<std::size_t>& axes_a,
                          const Tensor& b, const std::vector<std::size_t>& axes_b);

}  // namespace q2::la
