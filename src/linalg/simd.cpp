#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define Q2_SIMD_X86 1
#include <immintrin.h>
#else
#define Q2_SIMD_X86 0
#endif

namespace q2::la::simd {
namespace {

// -1 = no override; otherwise the int value of the forced Isa.
std::atomic<int> g_override{-1};

bool cpu_has_avx2_fma() {
#if Q2_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa detect() {
  const char* env = std::getenv("Q2_SIMD");
  if (env && std::strcmp(env, "portable") == 0) return Isa::kPortable;
  return cpu_has_avx2_fma() ? Isa::kAvx2Fma : Isa::kPortable;
}

// ---------------------------------------------------------------------------
// Portable path — byte-for-byte the numerics of the pre-SIMD kernels: the
// same loop structure, accumulator chains, and combine order.
// ---------------------------------------------------------------------------

void micro_accumulate_d_portable(std::size_t kc, const double* ap,
                                 const double* bp, double* acc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const double* a = ap + p * 4;
    const double* b = bp + p * 8;
    for (std::size_t i = 0; i < 4; ++i) {
      const double ai = a[i];
      double* accrow = acc + i * 8;
      for (std::size_t j = 0; j < 8; ++j) accrow[j] += ai * b[j];
    }
  }
}

void micro_accumulate_z_portable(std::size_t kc, const cplx* ap,
                                 const cplx* bp, cplx* acc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const cplx* a = ap + p * 4;
    const cplx* b = bp + p * 4;
    for (std::size_t i = 0; i < 4; ++i) {
      const cplx ai = a[i];
      cplx* accrow = acc + i * 4;
      for (std::size_t j = 0; j < 4; ++j) accrow[j] += ai * b[j];
    }
  }
}

cplx dot_conj_portable(const cplx* x, const cplx* y, std::size_t len) {
  cplx a0{}, a1{}, a2{}, a3{};
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    a0 += std::conj(x[i]) * y[i];
    a1 += std::conj(x[i + 1]) * y[i + 1];
    a2 += std::conj(x[i + 2]) * y[i + 2];
    a3 += std::conj(x[i + 3]) * y[i + 3];
  }
  for (; i < len; ++i) a0 += std::conj(x[i]) * y[i];
  return (a0 + a1) + (a2 + a3);
}

double norm2_sum_portable(const cplx* x, std::size_t len) {
  double a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    a0 += norm2(x[i]);
    a1 += norm2(x[i + 1]);
    a2 += norm2(x[i + 2]);
    a3 += norm2(x[i + 3]);
  }
  for (; i < len; ++i) a0 += norm2(x[i]);
  return (a0 + a1) + (a2 + a3);
}

void rotate_pair_portable(cplx* x, cplx* y, std::size_t len, double cs,
                          double sn, cplx esn, cplx ecs) {
  for (std::size_t i = 0; i < len; ++i) {
    const cplx xi = x[i], yi = y[i];
    x[i] = cs * xi + esn * yi;
    y[i] = -sn * xi + ecs * yi;
  }
}

// ---------------------------------------------------------------------------
// AVX2+FMA path. Compiled with per-function target attributes so the rest of
// the build keeps the portable baseline flags; only ever called after the
// runtime CPU check. Complex products use the plain (ac - bd, ad + bc)
// formula — no Annex-G infinity recovery — which matches IEEE propagation
// for the 0 * NaN / 0 * Inf cases the differential tests pin.
// ---------------------------------------------------------------------------

#if Q2_SIMD_X86

__attribute__((target("avx2,fma"))) void micro_accumulate_d_avx2(
    std::size_t kc, const double* ap, const double* bp, double* acc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bp + p * 8);
    const __m256d b1 = _mm256_loadu_pd(bp + p * 8 + 4);
    const double* a = ap + p * 4;
    __m256d ai = _mm256_broadcast_sd(a + 0);
    c00 = _mm256_fmadd_pd(ai, b0, c00);
    c01 = _mm256_fmadd_pd(ai, b1, c01);
    ai = _mm256_broadcast_sd(a + 1);
    c10 = _mm256_fmadd_pd(ai, b0, c10);
    c11 = _mm256_fmadd_pd(ai, b1, c11);
    ai = _mm256_broadcast_sd(a + 2);
    c20 = _mm256_fmadd_pd(ai, b0, c20);
    c21 = _mm256_fmadd_pd(ai, b1, c21);
    ai = _mm256_broadcast_sd(a + 3);
    c30 = _mm256_fmadd_pd(ai, b0, c30);
    c31 = _mm256_fmadd_pd(ai, b1, c31);
  }
  _mm256_storeu_pd(acc + 0, c00);
  _mm256_storeu_pd(acc + 4, c01);
  _mm256_storeu_pd(acc + 8, c10);
  _mm256_storeu_pd(acc + 12, c11);
  _mm256_storeu_pd(acc + 16, c20);
  _mm256_storeu_pd(acc + 20, c21);
  _mm256_storeu_pd(acc + 24, c30);
  _mm256_storeu_pd(acc + 28, c31);
}

// Complex 4x4 tile: each accumulator row is 4 interleaved cplx (2 YMM).
// One complex multiply-accumulate per lane pair:
//   t    = ai * swap(b)                [ai*bi, ai*br]
//   fmaddsub(ar, b, t)                 even: ar*br - ai*bi, odd: ar*bi + ai*br
__attribute__((target("avx2,fma"))) void micro_accumulate_z_avx2(
    std::size_t kc, const cplx* ap, const cplx* bp, cplx* acc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const double* b = reinterpret_cast<const double*>(bp + p * 4);
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + 4);
    const __m256d bs0 = _mm256_permute_pd(b0, 0x5);
    const __m256d bs1 = _mm256_permute_pd(b1, 0x5);
    const double* a = reinterpret_cast<const double*>(ap + p * 4);
    __m256d ar = _mm256_broadcast_sd(a + 0);
    __m256d ai = _mm256_broadcast_sd(a + 1);
    c00 = _mm256_add_pd(
        c00, _mm256_fmaddsub_pd(ar, b0, _mm256_mul_pd(ai, bs0)));
    c01 = _mm256_add_pd(
        c01, _mm256_fmaddsub_pd(ar, b1, _mm256_mul_pd(ai, bs1)));
    ar = _mm256_broadcast_sd(a + 2);
    ai = _mm256_broadcast_sd(a + 3);
    c10 = _mm256_add_pd(
        c10, _mm256_fmaddsub_pd(ar, b0, _mm256_mul_pd(ai, bs0)));
    c11 = _mm256_add_pd(
        c11, _mm256_fmaddsub_pd(ar, b1, _mm256_mul_pd(ai, bs1)));
    ar = _mm256_broadcast_sd(a + 4);
    ai = _mm256_broadcast_sd(a + 5);
    c20 = _mm256_add_pd(
        c20, _mm256_fmaddsub_pd(ar, b0, _mm256_mul_pd(ai, bs0)));
    c21 = _mm256_add_pd(
        c21, _mm256_fmaddsub_pd(ar, b1, _mm256_mul_pd(ai, bs1)));
    ar = _mm256_broadcast_sd(a + 6);
    ai = _mm256_broadcast_sd(a + 7);
    c30 = _mm256_add_pd(
        c30, _mm256_fmaddsub_pd(ar, b0, _mm256_mul_pd(ai, bs0)));
    c31 = _mm256_add_pd(
        c31, _mm256_fmaddsub_pd(ar, b1, _mm256_mul_pd(ai, bs1)));
  }
  double* out = reinterpret_cast<double*>(acc);
  _mm256_storeu_pd(out + 0, c00);
  _mm256_storeu_pd(out + 4, c01);
  _mm256_storeu_pd(out + 8, c10);
  _mm256_storeu_pd(out + 12, c11);
  _mm256_storeu_pd(out + 16, c20);
  _mm256_storeu_pd(out + 20, c21);
  _mm256_storeu_pd(out + 24, c30);
  _mm256_storeu_pd(out + 28, c31);
}

// conj(x)*y per lane pair: even lanes xr*yr + xi*yi, odd lanes xr*yi - xi*yr
// == fmsubadd(dup_even(x), y, dup_odd(x) * swap(y)). Two accumulator chains,
// combined (acc0 + acc1) then low+high lane — a fixed order.
__attribute__((target("avx2,fma"))) cplx dot_conj_avx2(const cplx* x,
                                                       const cplx* y,
                                                       std::size_t len) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  const double* xd = reinterpret_cast<const double*>(x);
  const double* yd = reinterpret_cast<const double*>(y);
  for (; i + 4 <= len; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(xd + 2 * i);
    const __m256d y0 = _mm256_loadu_pd(yd + 2 * i);
    const __m256d x1 = _mm256_loadu_pd(xd + 2 * i + 4);
    const __m256d y1 = _mm256_loadu_pd(yd + 2 * i + 4);
    const __m256d t0 =
        _mm256_mul_pd(_mm256_permute_pd(x0, 0xF), _mm256_permute_pd(y0, 0x5));
    acc0 = _mm256_add_pd(acc0,
                         _mm256_fmsubadd_pd(_mm256_movedup_pd(x0), y0, t0));
    const __m256d t1 =
        _mm256_mul_pd(_mm256_permute_pd(x1, 0xF), _mm256_permute_pd(y1, 0x5));
    acc1 = _mm256_add_pd(acc1,
                         _mm256_fmsubadd_pd(_mm256_movedup_pd(x1), y1, t1));
  }
  const __m256d sum = _mm256_add_pd(acc0, acc1);
  const __m128d lane =
      _mm_add_pd(_mm256_castpd256_pd128(sum), _mm256_extractf128_pd(sum, 1));
  alignas(16) double parts[2];
  _mm_store_pd(parts, lane);
  cplx s{parts[0], parts[1]};
  for (; i < len; ++i) s += std::conj(x[i]) * y[i];
  return s;
}

__attribute__((target("avx2,fma"))) double norm2_sum_avx2(const cplx* x,
                                                          std::size_t len) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  const double* xd = reinterpret_cast<const double*>(x);
  for (; i + 4 <= len; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(xd + 2 * i);
    const __m256d x1 = _mm256_loadu_pd(xd + 2 * i + 4);
    acc0 = _mm256_fmadd_pd(x0, x0, acc0);
    acc1 = _mm256_fmadd_pd(x1, x1, acc1);
  }
  const __m256d sum = _mm256_add_pd(acc0, acc1);
  const __m128d lane =
      _mm_add_pd(_mm256_castpd256_pd128(sum), _mm256_extractf128_pd(sum, 1));
  alignas(16) double parts[2];
  _mm_store_pd(parts, lane);
  double s = parts[0] + parts[1];
  for (; i < len; ++i) s += norm2(x[i]);
  return s;
}

__attribute__((target("avx2,fma"))) void rotate_pair_avx2(
    cplx* x, cplx* y, std::size_t len, double cs, double sn, cplx esn,
    cplx ecs) {
  const __m256d csv = _mm256_set1_pd(cs);
  const __m256d snv = _mm256_set1_pd(sn);
  const __m256d er = _mm256_set1_pd(esn.real());
  const __m256d ei = _mm256_set1_pd(esn.imag());
  const __m256d cr = _mm256_set1_pd(ecs.real());
  const __m256d ci = _mm256_set1_pd(ecs.imag());
  double* xd = reinterpret_cast<double*>(x);
  double* yd = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
    const __m256d yv = _mm256_loadu_pd(yd + 2 * i);
    const __m256d ys = _mm256_permute_pd(yv, 0x5);
    // esn * y and ecs * y as complex scalar-times-vector products.
    const __m256d p = _mm256_fmaddsub_pd(er, yv, _mm256_mul_pd(ei, ys));
    const __m256d q = _mm256_fmaddsub_pd(cr, yv, _mm256_mul_pd(ci, ys));
    _mm256_storeu_pd(xd + 2 * i, _mm256_fmadd_pd(csv, xv, p));
    _mm256_storeu_pd(yd + 2 * i, _mm256_fnmadd_pd(snv, xv, q));
  }
  for (; i < len; ++i) {
    const cplx xi = x[i], yi = y[i];
    const cplx p{esn.real() * yi.real() - esn.imag() * yi.imag(),
                 esn.real() * yi.imag() + esn.imag() * yi.real()};
    const cplx q{ecs.real() * yi.real() - ecs.imag() * yi.imag(),
                 ecs.real() * yi.imag() + ecs.imag() * yi.real()};
    x[i] = cplx{cs * xi.real() + p.real(), cs * xi.imag() + p.imag()};
    y[i] = cplx{q.real() - sn * xi.real(), q.imag() - sn * xi.imag()};
  }
}

#endif  // Q2_SIMD_X86

}  // namespace

Isa active_isa() {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return static_cast<Isa>(ov);
  static const Isa detected = detect();
  return detected;
}

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2Fma ? "avx2-fma" : "portable";
}

void set_isa_override(Isa isa) {
  if (isa == Isa::kAvx2Fma && !cpu_has_avx2_fma()) isa = Isa::kPortable;
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_isa_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

void micro_accumulate_d(std::size_t kc, const double* ap, const double* bp,
                        double* acc) {
#if Q2_SIMD_X86
  if (active_isa() == Isa::kAvx2Fma)
    return micro_accumulate_d_avx2(kc, ap, bp, acc);
#endif
  micro_accumulate_d_portable(kc, ap, bp, acc);
}

void micro_accumulate_z(std::size_t kc, const cplx* ap, const cplx* bp,
                        cplx* acc) {
#if Q2_SIMD_X86
  if (active_isa() == Isa::kAvx2Fma)
    return micro_accumulate_z_avx2(kc, ap, bp, acc);
#endif
  micro_accumulate_z_portable(kc, ap, bp, acc);
}

cplx dot_conj(const cplx* x, const cplx* y, std::size_t len) {
#if Q2_SIMD_X86
  if (active_isa() == Isa::kAvx2Fma) return dot_conj_avx2(x, y, len);
#endif
  return dot_conj_portable(x, y, len);
}

double norm2_sum(const cplx* x, std::size_t len) {
#if Q2_SIMD_X86
  if (active_isa() == Isa::kAvx2Fma) return norm2_sum_avx2(x, len);
#endif
  return norm2_sum_portable(x, len);
}

void rotate_pair(cplx* x, cplx* y, std::size_t len, double cs, double sn,
                 cplx esn, cplx ecs) {
#if Q2_SIMD_X86
  if (active_isa() == Isa::kAvx2Fma)
    return rotate_pair_avx2(x, y, len, cs, sn, esn, ecs);
#endif
  rotate_pair_portable(x, y, len, cs, sn, esn, ecs);
}

}  // namespace q2::la::simd
