// Shared Householder reflector machinery: zlarfg-style reflector generation
// plus row-major-friendly left/right application on raw buffers. Factored out
// of the SVD's Golub-Kahan bidiagonalization so the QR factorization
// (linalg/qr) and the truncated-SVD substrate's QR preconditioner run on one
// implementation. reflect_left walks the operand row by row (the classic
// zlarf work-array formulation), so every inner loop is contiguous even
// though the reflector acts on a column.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace q2::la::hh {

// LAPACK zlarfg: given alpha and tail x, produce (tau, beta) and overwrite
// x with the reflector tail v (v0 = 1 implicit) such that
// (I - conj(tau) v v^H) [alpha; x] = [beta; 0] with beta real.
struct Reflector {
  cplx tau{0, 0};
  double beta = 0;
};

inline Reflector make_reflector(cplx alpha, cplx* x, std::size_t tail) {
  double xnorm2 = 0;
  for (std::size_t i = 0; i < tail; ++i) xnorm2 += norm2(x[i]);
  Reflector r;
  if (xnorm2 == 0.0 && alpha.imag() == 0.0) {
    r.beta = alpha.real();
    return r;  // tau = 0: H = I
  }
  const double anorm = std::sqrt(norm2(alpha) + xnorm2);
  r.beta = alpha.real() >= 0 ? -anorm : anorm;
  r.tau = cplx((r.beta - alpha.real()) / r.beta, -alpha.imag() / r.beta);
  const cplx scale = 1.0 / (alpha - r.beta);
  for (std::size_t i = 0; i < tail; ++i) x[i] *= scale;
  return r;
}

// A(r0.., c0..cols) <- (I - sigma v v^H) A on a row-major buffer with row
// stride ld; v0 = 1 at row r0, v[0..tail) on rows r0+1... `work` is caller
// scratch (resized to cols - c0) holding w = v^H A so both passes stream
// whole rows.
inline void reflect_left(cplx* a, std::size_t ld, std::size_t cols,
                         std::size_t r0, std::size_t c0, const cplx* v,
                         std::size_t tail, cplx sigma,
                         std::vector<cplx>& work) {
  if (sigma == cplx{} || c0 >= cols) return;
  const std::size_t nc = cols - c0;
  work.resize(nc);
  cplx* head = a + r0 * ld + c0;
  for (std::size_t j = 0; j < nc; ++j) work[j] = head[j];
  for (std::size_t i = 0; i < tail; ++i) {
    const cplx vi = std::conj(v[i]);
    const cplx* row = a + (r0 + 1 + i) * ld + c0;
    for (std::size_t j = 0; j < nc; ++j) work[j] += vi * row[j];
  }
  for (std::size_t j = 0; j < nc; ++j) {
    const cplx sw = sigma * work[j];
    head[j] -= sw;
    work[j] = sw;  // reuse as the scaled update for the tail rows
  }
  for (std::size_t i = 0; i < tail; ++i) {
    const cplx vi = v[i];
    cplx* row = a + (r0 + 1 + i) * ld + c0;
    for (std::size_t j = 0; j < nc; ++j) row[j] -= work[j] * vi;
  }
}

// A(r0..rows, c0..) <- A (I - sigma v v^H), with v0 = 1 at column c0; rows
// already stream contiguously, no scratch needed.
inline void reflect_right(cplx* a, std::size_t ld, std::size_t rows,
                          std::size_t r0, std::size_t c0, const cplx* v,
                          std::size_t tail, cplx sigma) {
  if (sigma == cplx{}) return;
  for (std::size_t i = r0; i < rows; ++i) {
    cplx* row = a + i * ld;
    cplx s = row[c0];
    for (std::size_t j = 0; j < tail; ++j) s += row[c0 + 1 + j] * v[j];
    const cplx ss = sigma * s;
    row[c0] -= ss;
    for (std::size_t j = 0; j < tail; ++j)
      row[c0 + 1 + j] -= ss * std::conj(v[j]);
  }
}

}  // namespace q2::la::hh
