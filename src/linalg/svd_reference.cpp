// Verbatim copy of the scalar cyclic one-sided Jacobi SVD that shipped before
// the truncated-SVD substrate rebuild. Deliberately untuned: column accesses
// are strided, Gram elements are recomputed per pair, there is no QR
// preconditioning and no threading. Any change here weakens the differential
// tests — treat it as frozen.
#include "linalg/svd_reference.hpp"

#include <cmath>
#include <numeric>

namespace q2::la {
namespace {

// One sweep of cyclic one-sided Jacobi over column pairs of `a`, accumulating
// the right rotations into `v`. Returns the largest relative off-diagonal
// Gram element seen, which drives convergence.
double jacobi_sweep(CMatrix& a, CMatrix& v) {
  const std::size_t m = a.rows(), n = a.cols();
  double off_max = 0.0;
  for (std::size_t p = 0; p + 1 < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      double app = 0, aqq = 0;
      cplx apq{};
      for (std::size_t i = 0; i < m; ++i) {
        const cplx x = a(i, p), y = a(i, q);
        app += norm2(x);
        aqq += norm2(y);
        apq += std::conj(x) * y;
      }
      const double denom = std::sqrt(app * aqq);
      if (denom <= 0.0) continue;
      const double rel = std::abs(apq) / denom;
      off_max = std::max(off_max, rel);
      if (rel < 1e-15) continue;

      // Diagonalize the Hermitian 2x2 Gram block [[app, apq], [conj, aqq]]:
      // phase it real with D = diag(1, e^{-i phi}), then a plain real
      // rotation R; the combined unitary is J = D R.
      const double absc = std::abs(apq);
      const cplx phase_conj = std::conj(apq) / absc;  // e^{-i phi}
      const double theta = 0.5 * std::atan2(2.0 * absc, app - aqq);
      const double cs = std::cos(theta), sn = std::sin(theta);
      const cplx esn = phase_conj * sn;
      const cplx ecs = phase_conj * cs;
      for (std::size_t i = 0; i < m; ++i) {
        const cplx x = a(i, p), y = a(i, q);
        a(i, p) = cs * x + esn * y;
        a(i, q) = -sn * x + ecs * y;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const cplx x = v(i, p), y = v(i, q);
        v(i, p) = cs * x + esn * y;
        v(i, q) = -sn * x + ecs * y;
      }
    }
  }
  return off_max;
}

// Fill zero-norm columns of `u` with unit vectors orthogonalized against all
// other columns, so U keeps orthonormal columns even for rank-deficient input.
void complete_null_columns(CMatrix& u, const std::vector<bool>& is_null) {
  const std::size_t m = u.rows(), k = u.cols();
  std::size_t probe = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!is_null[j]) continue;
    for (; probe < m; ++probe) {
      std::vector<cplx> cand(m, cplx{});
      cand[probe] = 1.0;
      // Two rounds of modified Gram-Schmidt for robustness.
      for (int round = 0; round < 2; ++round) {
        for (std::size_t c = 0; c < k; ++c) {
          if (c == j) continue;
          cplx proj{};
          for (std::size_t i = 0; i < m; ++i)
            proj += std::conj(u(i, c)) * cand[i];
          for (std::size_t i = 0; i < m; ++i) cand[i] -= proj * u(i, c);
        }
      }
      double nrm = 0;
      for (const auto& z : cand) nrm += norm2(z);
      nrm = std::sqrt(nrm);
      if (nrm > 1e-8) {
        for (std::size_t i = 0; i < m; ++i) u(i, j) = cand[i] / nrm;
        ++probe;
        break;
      }
    }
  }
}

SvdResult svd_tall(const CMatrix& a_in) {
  CMatrix a = a_in;
  const std::size_t m = a.rows(), n = a.cols();
  CMatrix v = CMatrix::identity(n);
  constexpr int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (jacobi_sweep(a, v) < 1e-14) break;
  }

  // Column norms are the singular values; sort them descending.
  std::vector<double> s(n);
  for (std::size_t j = 0; j < n; ++j) {
    double nrm = 0;
    for (std::size_t i = 0; i < m; ++i) nrm += norm2(a(i, j));
    s[j] = std::sqrt(nrm);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });

  const double smax = s.empty() ? 0.0 : s[order[0]];
  const double null_tol = std::max(smax, 1.0) * 1e-14 * double(std::max(m, n));

  SvdResult r;
  r.u = CMatrix(m, n);
  r.s.resize(n);
  r.vh = CMatrix(n, n);
  std::vector<bool> is_null(n, false);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    r.s[jj] = s[j];
    if (s[j] > null_tol) {
      for (std::size_t i = 0; i < m; ++i) r.u(i, jj) = a(i, j) / s[j];
    } else {
      r.s[jj] = 0.0;
      is_null[jj] = true;
    }
    for (std::size_t i = 0; i < n; ++i) r.vh(jj, i) = std::conj(v(i, j));
  }
  complete_null_columns(r.u, is_null);
  return r;
}

}  // namespace

SvdResult svd_jacobi_reference(const CMatrix& a) {
  require(!a.empty(), "svd_jacobi_reference: empty matrix");
  if (a.rows() >= a.cols()) return svd_tall(a);
  // Wide matrix: decompose the adjoint and swap factors,
  // A = (U' S V'^H)^H = V' S U'^H.
  SvdResult t = svd_tall(a.adjoint());
  SvdResult r;
  r.s = std::move(t.s);
  r.u = t.vh.adjoint();
  r.vh = t.u.adjoint();
  return r;
}

}  // namespace q2::la
