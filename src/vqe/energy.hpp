// The VQE energy evaluator: prepares |psi(theta)> and measures
// E = sum_k c_k <P_k>. Two measurement paths (direct MPS expectation, or one
// Hadamard-test circuit per string — the hardware-faithful mode of Fig. 5)
// and two circuit-storage modes (the Fig. 9 comparison: store all bound
// circuits versus one parametric ansatz replica + on-the-fly tails).
#pragma once

#include <atomic>
#include <vector>

#include "circuit/reorder.hpp"
#include "pauli/grouping.hpp"
#include "pauli/qubit_operator.hpp"
#include "sim/mps.hpp"

namespace q2::vqe {

enum class MeasurementMode {
  kDirect,        ///< fast path: expectation values on one prepared MPS
  kHadamardTest,  ///< paper-faithful: one ancilla circuit per Pauli string
};

enum class CircuitStorage {
  kStoreAll,         ///< bind+store one full circuit per string (baseline)
  kMemoryEfficient,  ///< one parametric ansatz replica (paper's scheme)
};

enum class TermGrouping {
  kNone,       ///< one expectation sweep per Pauli term (baseline)
  kCommuting,  ///< qubit-wise commuting groups share transfer sweeps
};

class EnergyEvaluator {
 public:
  EnergyEvaluator(circ::Circuit ansatz, pauli::QubitOperator hamiltonian,
                  sim::MpsOptions mps_options = {},
                  MeasurementMode mode = MeasurementMode::kDirect,
                  CircuitStorage storage = CircuitStorage::kMemoryEfficient,
                  TermGrouping grouping = TermGrouping::kCommuting);

  std::size_t n_terms() const { return terms_.size(); }
  std::size_t n_parameters() const { return ansatz_.parameter_count(); }
  /// The number of distinct circuits this evaluator represents (one per
  /// non-identity Pauli string, as in Fig. 5).
  std::size_t circuit_count() const { return terms_.size(); }
  /// Bytes held in stored circuits — the Fig. 9 memory axis.
  std::size_t stored_circuit_bytes() const;

  double energy(const std::vector<double>& params) const;
  /// Contribution of a subset of Pauli terms (the unit of level-2 work).
  double partial_energy(const std::vector<double>& params,
                        const std::vector<std::size_t>& term_indices) const;

  /// Exact gradient via the parameter-shift rule: every occurrence of a
  /// parameter is an exp(-i phi/2 P) rotation, so dE/dphi =
  /// (E(phi + pi/2) - E(phi - pi/2)) / 2 per occurrence, chain-ruled through
  /// the occurrence's scale. This is what differentiation costs on hardware
  /// (two circuit evaluations per rotation); classical drivers may prefer
  /// finite differences.
  std::vector<double> parameter_shift_gradient(
      const std::vector<double>& params) const;

  /// Per-term cost estimates (for LPT load balancing across ranks).
  std::vector<double> term_costs() const;

  /// MPS truncation error of the most recent energy evaluation: the prepared
  /// state's accumulated error in direct mode, the worst error across the
  /// swept per-string circuits in Hadamard-test mode (deterministic for any
  /// thread count). Used by run reports to attach a fidelity column to each
  /// VQE iteration.
  double last_truncation_error() const {
    return last_truncation_error_.load(std::memory_order_relaxed);
  }

  const circ::Circuit& ansatz() const { return ansatz_; }
  const std::vector<std::pair<pauli::PauliString, cplx>>& terms() const {
    return terms_;
  }
  double constant_term() const { return constant_; }

  /// Number of qubit-wise commuting measurement groups the direct sweep
  /// uses; equals n_terms() when grouping is disabled (every term is its own
  /// sweep). Also exported as the "vqe.measurement_groups" gauge.
  std::size_t measurement_group_count() const {
    return groups_.empty() ? terms_.size() : groups_.size();
  }
  /// The cached compiled ansatz (empty circuit when the eager baseline path
  /// is active, i.e. kStoreAll or Hadamard-test mode).
  const circ::CompiledCircuit& compiled_ansatz() const { return compiled_; }

 private:
  double measure_direct(const std::vector<double>& params,
                        const std::vector<std::size_t>& idx) const;
  double measure_hadamard(const std::vector<double>& params,
                          const std::vector<std::size_t>& idx) const;
  /// Measures the idx-subset of terms on a prepared state (grouped batches
  /// when grouping is on, one expectation per term otherwise) and reduces
  /// contributions in idx order — bit-identical to the serial ungrouped
  /// sweep for every thread count and grouping mode.
  double reduce_terms(const sim::Mps& state,
                      const std::vector<std::size_t>& idx,
                      bool parallel_sweep) const;

  circ::Circuit ansatz_;
  pauli::QubitOperator hamiltonian_;
  sim::MpsOptions mps_options_;
  MeasurementMode mode_;
  CircuitStorage storage_;
  std::vector<std::pair<pauli::PauliString, cplx>> terms_;
  double constant_ = 0.0;
  /// Compiled-once ansatz for the direct memory-efficient path; parameters
  /// bind at run time, so energy/gradient calls never re-route.
  circ::CompiledCircuit compiled_;
  bool use_compiled_ = false;
  /// QWC measurement plan over terms_ (empty = ungrouped per-term sweeps).
  std::vector<pauli::MeasurementGroup> groups_;
  /// Relaxed atomic: distributed VQE calls partial_energy concurrently from
  /// rank threads; any rank's value is an equally valid report entry.
  mutable std::atomic<double> last_truncation_error_{0.0};
  /// kStoreAll + kHadamardTest: the full per-string circuits, pre-built.
  std::vector<circ::Circuit> stored_circuits_;
};

}  // namespace q2::vqe
