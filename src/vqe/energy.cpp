#include "vqe/energy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/hadamard_test.hpp"

namespace q2::vqe {
namespace {

obs::Counter& evaluation_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("vqe.energy_evaluations");
  return c;
}
obs::Counter& term_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("vqe.pauli_terms_measured");
  return c;
}
obs::Gauge& measurement_groups_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("vqe.measurement_groups");
  return g;
}

// Materialize a parametric circuit at fixed angles — the per-step "circuit
// synchronization" cost the memory-efficient scheme avoids.
circ::Circuit bind_parameters(const circ::Circuit& c,
                              const std::vector<double>& params) {
  circ::Circuit out(c.n_qubits());
  for (circ::Gate g : c.gates()) {
    if (g.is_parametric()) {
      g.theta = g.angle(params);
      g.param_index = -1;
      g.param_scale = 1.0;
    }
    out.append(std::move(g));
  }
  return out;
}

// Runs eval_one(j) for every j in [0, n) — serially below the parallel
// threshold, otherwise as one pool task per LPT bin (level-2 of the paper's
// hierarchy, folded on-node). Results must be written to per-j slots by
// eval_one; the caller reduces them in index order afterwards so the energy
// is bit-identical for every thread count.
void sweep_terms(const par::ParallelOptions& opts, std::size_t n,
                 const std::function<double(std::size_t)>& term_cost,
                 const std::function<void(std::size_t)>& eval_one) {
  const std::size_t n_threads = std::min(par::resolve_threads(opts), n);
  if (n_threads <= 1) {
    for (std::size_t j = 0; j < n; ++j) eval_one(j);
    return;
  }
  std::vector<double> costs(n);
  for (std::size_t j = 0; j < n; ++j) costs[j] = term_cost(j);
  const std::vector<std::size_t> assignment =
      par::lpt_assign(costs, n_threads);
  std::vector<std::vector<std::size_t>> bins(n_threads);
  for (std::size_t j = 0; j < n; ++j) bins[assignment[j]].push_back(j);
  par::ThreadPool::global().parallel_for(
      0, n_threads,
      [&](std::size_t b) {
        for (std::size_t j : bins[b]) eval_one(j);
      },
      /*grain=*/1, /*max_threads=*/n_threads);
}

}  // namespace

EnergyEvaluator::EnergyEvaluator(circ::Circuit ansatz,
                                 pauli::QubitOperator hamiltonian,
                                 sim::MpsOptions mps_options,
                                 MeasurementMode mode, CircuitStorage storage,
                                 TermGrouping grouping)
    : ansatz_(std::move(ansatz)),
      hamiltonian_(std::move(hamiltonian)),
      mps_options_(mps_options),
      mode_(mode),
      storage_(storage) {
  require(std::size_t(ansatz_.n_qubits()) == hamiltonian_.n_qubits(),
          "EnergyEvaluator: qubit count mismatch");
  require(hamiltonian_.is_hermitian(1e-8),
          "EnergyEvaluator: Hamiltonian must be Hermitian");
  for (const auto& [p, c] : hamiltonian_.sorted_terms()) {
    if (p.is_identity())
      constant_ += c.real();
    else
      terms_.emplace_back(p, c);
  }
  if (storage_ == CircuitStorage::kStoreAll &&
      mode_ == MeasurementMode::kHadamardTest) {
    stored_circuits_.reserve(terms_.size());
    for (const auto& [p, c] : terms_)
      stored_circuits_.push_back(sim::hadamard_test_circuit(ansatz_, p));
  }
  // Compile the ansatz once: lazy reordering + fusion + residual output
  // permutation, replayed with fresh parameter vectors every evaluation.
  // kStoreAll keeps the historical bind-and-eager-route path so the Fig. 9
  // storage-scheme comparison still measures what it claims to.
  use_compiled_ = mode_ == MeasurementMode::kDirect &&
                  storage_ == CircuitStorage::kMemoryEfficient;
  if (use_compiled_) compiled_ = circ::compile_for_mps(ansatz_);
  if (mode_ == MeasurementMode::kDirect &&
      grouping == TermGrouping::kCommuting) {
    std::vector<pauli::PauliString> strings;
    strings.reserve(terms_.size());
    for (const auto& [p, c] : terms_) strings.push_back(p);
    groups_ = pauli::group_qubitwise_commuting(strings);
  }
  measurement_groups_gauge().set(double(measurement_group_count()));
}

std::size_t EnergyEvaluator::stored_circuit_bytes() const {
  std::size_t b = ansatz_.memory_bytes();
  for (const auto& c : stored_circuits_) b += c.memory_bytes();
  return b;
}

double EnergyEvaluator::energy(const std::vector<double>& params) const {
  std::vector<std::size_t> all(terms_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return constant_ + partial_energy(params, all);
}

double EnergyEvaluator::partial_energy(
    const std::vector<double>& params,
    const std::vector<std::size_t>& idx) const {
  OBS_SPAN("vqe/energy");
  evaluation_counter().add();
  term_counter().add(idx.size());
  return mode_ == MeasurementMode::kDirect ? measure_direct(params, idx)
                                           : measure_hadamard(params, idx);
}

std::vector<double> EnergyEvaluator::term_costs() const {
  // Cost model: the measurement sweep length. For the direct path the
  // transfer contraction spans the string's support; for Hadamard tests the
  // routed control chains scale the same way. pauli::support_cost is the one
  // model shared with the measurement sweeps, so the LPT balancer and the
  // sweep itself cannot drift apart.
  std::vector<double> costs;
  costs.reserve(terms_.size());
  for (const auto& [p, c] : terms_) costs.push_back(pauli::support_cost(p));
  return costs;
}

std::vector<double> EnergyEvaluator::parameter_shift_gradient(
    const std::vector<double>& params) const {
  std::vector<double> grad(n_parameters(), 0.0);
  std::vector<std::size_t> all(terms_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  // Evaluate the energy with one occurrence's angle overridden. Builds its
  // own circuit and engine, so concurrent calls are independent. On the
  // compiled path the cached gate stream is copied with just the occurrence's
  // gate de-parameterized — no re-routing or re-fusion per evaluation (every
  // compile pass preserves the relative order of parametric gates, so the
  // k-th parametric gate of the compiled stream is the k-th of the ansatz).
  // The inner term sweep stays serial (the 2N shifted circuits already fan
  // out below); reduce_terms keeps the term-order reduction either way.
  auto energy_with_override = [&](std::size_t occurrence, double delta) {
    sim::Mps state(ansatz_.n_qubits(), mps_options_);
    const circ::Circuit& source =
        use_compiled_ ? compiled_.gates : ansatz_;
    circ::Circuit shifted(source.n_qubits());
    std::size_t seen = 0;
    for (circ::Gate g : source.gates()) {
      if (g.is_parametric()) {
        if (seen == occurrence) {
          g.theta = g.angle(params) + delta;
          g.param_index = -1;
          g.param_scale = 1.0;
        }
        ++seen;
      }
      shifted.append(std::move(g));
    }
    if (use_compiled_) {
      circ::CompiledCircuit shifted_compiled;
      shifted_compiled.gates = std::move(shifted);
      shifted_compiled.output_perm = compiled_.output_perm;
      state.run(shifted_compiled, params);
    } else {
      circ::Circuit bound = bind_parameters(shifted, params);
      state.run(bound, {});
    }
    return reduce_terms(state, all, /*parallel_sweep=*/false);
  };

  // Every shifted-circuit evaluation is independent: 2 per parametric-gate
  // occurrence. Fan the 2N evaluations out, then chain-rule serially so each
  // gradient entry is assembled in occurrence order (deterministic).
  std::vector<const circ::Gate*> occurrences;
  for (const circ::Gate& g : ansatz_.gates())
    if (g.is_parametric()) occurrences.push_back(&g);
  std::vector<double> shifted_e(2 * occurrences.size());
  par::ParallelOptions opts = mps_options_.parallel;
  opts.grain = 1;  // each evaluation is a full circuit run
  par::parallel_for(opts, 0, shifted_e.size(), [&](std::size_t j) {
    OBS_SPAN("vqe/shifted_circuit");
    const std::size_t occ = j / 2;
    const double delta = (j % 2 == 0) ? kPi / 2 : -kPi / 2;
    shifted_e[j] = energy_with_override(occ, delta);
  });
  for (std::size_t occ = 0; occ < occurrences.size(); ++occ) {
    const circ::Gate& g = *occurrences[occ];
    grad[std::size_t(g.param_index)] +=
        g.param_scale * 0.5 * (shifted_e[2 * occ] - shifted_e[2 * occ + 1]);
  }
  return grad;
}

double EnergyEvaluator::reduce_terms(const sim::Mps& state,
                                     const std::vector<std::size_t>& idx,
                                     bool parallel_sweep) const {
  // Per-term contributions against the shared read-only state, written to
  // per-idx slots and reduced in index order below — the same addition
  // sequence as a serial ungrouped loop, so the energy is bit-identical for
  // every thread count and grouping mode (expectation_batch guarantees
  // per-term values match the standalone expectation exactly).
  std::vector<double> contrib(idx.size());
  constexpr std::size_t kNoSlot = std::size_t(-1);
  if (!groups_.empty()) {
    std::vector<std::size_t> slot(terms_.size(), kNoSlot);
    for (std::size_t j = 0; j < idx.size(); ++j) slot[idx[j]] = j;
    // Restrict the precomputed plan to the requested subset (partial_energy
    // on a distributed rank sees only its LPT share of the terms).
    struct SubGroup {
      const pauli::MeasurementGroup* group;
      std::vector<std::size_t> members;
    };
    std::vector<SubGroup> subs;
    subs.reserve(groups_.size());
    for (const auto& g : groups_) {
      std::vector<std::size_t> members;
      for (std::size_t k : g.members)
        if (slot[k] != kNoSlot) members.push_back(k);
      if (!members.empty()) subs.push_back({&g, std::move(members)});
    }
    auto eval_group = [&](std::size_t gi) {
      const SubGroup& sub = subs[gi];
      std::vector<pauli::PauliString> strings;
      strings.reserve(sub.members.size());
      for (std::size_t k : sub.members) strings.push_back(terms_[k].first);
      const std::vector<cplx> values = state.expectation_batch(strings);
      for (std::size_t t = 0; t < sub.members.size(); ++t) {
        const std::size_t k = sub.members[t];
        contrib[slot[k]] = (terms_[k].second * values[t]).real();
      }
    };
    auto group_cost = [&](std::size_t gi) {
      return pauli::support_cost(subs[gi].group->lo, subs[gi].group->hi);
    };
    if (parallel_sweep)
      sweep_terms(mps_options_.parallel, subs.size(), group_cost, eval_group);
    else
      for (std::size_t gi = 0; gi < subs.size(); ++gi) eval_group(gi);
  } else {
    auto eval_one = [&](std::size_t j) {
      const std::size_t k = idx[j];
      contrib[j] =
          (terms_[k].second * state.expectation(terms_[k].first)).real();
    };
    auto cost = [&](std::size_t j) {
      return pauli::support_cost(terms_[idx[j]].first);
    };
    if (parallel_sweep)
      sweep_terms(mps_options_.parallel, idx.size(), cost, eval_one);
    else
      for (std::size_t j = 0; j < idx.size(); ++j) eval_one(j);
  }
  double e = 0;
  for (double c : contrib) e += c;
  // The sweep's own arithmetic beyond the per-term expectations: one
  // coefficient multiply per term plus the index-order reduction.
  obs::WorkCounter::charge(2 * std::uint64_t(idx.size()),
                           std::uint64_t(idx.size()) * sizeof(double));
  return e;
}

double EnergyEvaluator::measure_direct(const std::vector<double>& params,
                                       const std::vector<std::size_t>& idx) const {
  sim::Mps state(ansatz_.n_qubits(), mps_options_);
  if (use_compiled_) {
    // Compiled once in the constructor; parameters bind at apply time and
    // measurement maps through the residual permutation.
    state.run(compiled_, params);
  } else if (storage_ == CircuitStorage::kStoreAll) {
    // Baseline behaviour: re-materialize the bound circuit every call.
    const circ::Circuit bound = bind_parameters(ansatz_, params);
    state.run(bound, {});
  } else {
    state.run(ansatz_, params);
  }
  last_truncation_error_.store(state.truncation_error(),
                               std::memory_order_relaxed);
  OBS_SPAN("vqe/measure");
  return reduce_terms(state, idx, /*parallel_sweep=*/true);
}

double EnergyEvaluator::measure_hadamard(
    const std::vector<double>& params,
    const std::vector<std::size_t>& idx) const {
  std::vector<double> contrib(idx.size());
  std::vector<double> trunc(idx.size(), 0.0);
  auto eval_one = [&](std::size_t j) {
    const std::size_t k = idx[j];
    OBS_SPAN("vqe/pauli_circuit");
    double re;
    if (storage_ == CircuitStorage::kStoreAll) {
      // Bind and run the pre-built full circuit (ansatz replica per string).
      const circ::Circuit bound = bind_parameters(stored_circuits_[k], params);
      sim::Mps state(bound.n_qubits(), mps_options_);
      state.run(bound, {});
      pauli::PauliString z(std::size_t(bound.n_qubits()));
      z.set(std::size_t(bound.n_qubits()) - 1, pauli::P::Z);
      re = state.expectation(z).real();
      trunc[j] = state.truncation_error();
    } else {
      re = sim::hadamard_test_mps(ansatz_, params, terms_[k].first,
                                  mps_options_, &trunc[j]);
    }
    contrib[j] = terms_[k].second.real() * re;
  };
  // Every string is a full circuit run; costs still follow the shared
  // support model.
  sweep_terms(
      mps_options_.parallel, idx.size(),
      [&](std::size_t j) { return pauli::support_cost(terms_[idx[j]].first); },
      eval_one);
  // Worst truncation across the swept circuits — deterministic for any
  // thread count, unlike "whichever circuit ran last".
  double worst = 0.0;
  for (double t : trunc) worst = std::max(worst, t);
  last_truncation_error_.store(worst, std::memory_order_relaxed);
  double e = 0;
  for (double c : contrib) e += c;
  return e;
}

}  // namespace q2::vqe
