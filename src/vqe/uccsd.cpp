#include "vqe/uccsd.hpp"

#include <cmath>
#include <cstdlib>

#include "circuit/builder.hpp"

namespace q2::vqe {
namespace {

// Append the Trotter factor exp(theta_k * (T - T+)) for one excitation,
// binding every Pauli rotation to parameter `param`.
void append_excitation(circ::Circuit& c, const Excitation& ex, int param,
                       std::size_t n_qubits, double step_fraction) {
  pauli::FermionOperator gen(n_qubits);
  std::vector<pauli::Ladder> fwd;
  for (std::size_t a : ex.to) fwd.push_back({a, true});
  for (auto it = ex.from.rbegin(); it != ex.from.rend(); ++it)
    fwd.push_back({*it, false});
  gen.add_term(fwd, 1.0);
  pauli::FermionOperator dag = gen.adjoint();
  dag *= -1.0;
  gen += dag;

  const pauli::QubitOperator q = pauli::jordan_wigner(gen);
  // Anti-Hermitian generator: coefficients are purely imaginary, so
  // exp(theta G) = prod_k exp(i (theta Im c_k) P_k), one RZ-ladder each.
  for (const auto& [p, coeff] : q.sorted_terms()) {
    require(std::abs(coeff.real()) < 1e-10,
            "uccsd: generator is not anti-Hermitian");
    // exp(-i theta/2 P) convention; each Trotter step carries theta / steps.
    const double scale = -2.0 * coeff.imag() * step_fraction;
    if (scale == 0.0) continue;
    circ::append_pauli_evolution_param(c, p, param, scale);
  }
}

int spatial_distance(const Excitation& ex) {
  int lo = 1 << 30, hi = -1;
  auto fold = [&](std::size_t so) {
    const int p = int(so / 2);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  };
  for (auto s : ex.from) fold(s);
  for (auto s : ex.to) fold(s);
  return hi - lo;
}

}  // namespace

UccsdAnsatz build_uccsd(std::size_t n_spatial, int n_alpha, int n_beta,
                        const UccsdOptions& options) {
  require(n_alpha == n_beta, "build_uccsd: closed-shell only");
  const int nq = int(2 * n_spatial);
  const int ne = n_alpha + n_beta;

  UccsdAnsatz ansatz;
  ansatz.n_qubits = nq;
  ansatz.n_electrons = ne;
  if (options.local_generalized) {
    // Localized-orbital reference: electron pairs sit on alternating sites
    // (half-filled chain), so the local excitations act non-trivially along
    // the whole chain.
    ansatz.circuit = circ::Circuit(nq);
    for (int k = 0; k < ne / 2; ++k) {
      const int site = std::min(2 * k, int(n_spatial) - 1);
      ansatz.circuit.append(circ::make_x(2 * site));
      ansatz.circuit.append(circ::make_x(2 * site + 1));
    }
  } else {
    ansatz.circuit = circ::hartree_fock_prep(nq, ne);
  }

  // Occupied / virtual spin orbitals under the interleaved convention; the
  // HF preparation fills qubits [0, ne), i.e. spatial orbitals [0, n_occ).
  std::vector<std::size_t> occ, virt;
  for (std::size_t q = 0; q < std::size_t(nq); ++q)
    (q < std::size_t(ne) ? occ : virt).push_back(q);

  std::vector<Excitation> excitations;
  const int window = options.distance_window;
  auto within_window = [&](const Excitation& ex) {
    return window < 0 || spatial_distance(ex) <= window;
  };
  if (options.local_generalized) {
    // Orbital-neighbourhood generalized excitations: O(n * window) terms.
    const std::size_t w = window < 0 ? 1 : std::size_t(std::max(1, window));
    for (std::size_t p = 0; p < n_spatial; ++p) {
      for (std::size_t q = p + 1; q <= std::min(p + w, n_spatial - 1); ++q) {
        for (std::size_t sigma = 0; sigma < 2; ++sigma)
          excitations.push_back({{2 * p + sigma}, {2 * q + sigma}});
        // Pair double: (p alpha, p beta) -> (q alpha, q beta).
        excitations.push_back({{2 * p, 2 * p + 1}, {2 * q, 2 * q + 1}});
      }
    }
  } else {
    if (options.include_singles) {
      for (std::size_t i : occ)
        for (std::size_t a : virt) {
          if ((i ^ a) & 1) continue;  // spin conserving
          const Excitation ex{{i}, {a}};
          if (within_window(ex)) excitations.push_back(ex);
        }
    }
    if (options.include_doubles) {
      for (std::size_t x = 0; x < occ.size(); ++x)
        for (std::size_t y = x + 1; y < occ.size(); ++y)
          for (std::size_t u = 0; u < virt.size(); ++u)
            for (std::size_t v = u + 1; v < virt.size(); ++v) {
              const std::size_t i = occ[x], j = occ[y];
              const std::size_t a = virt[u], b = virt[v];
              if (((i & 1) + (j & 1)) != ((a & 1) + (b & 1))) continue;
              const Excitation ex{{i, j}, {a, b}};
              if (within_window(ex)) excitations.push_back(ex);
            }
    }
  }

  ansatz.n_parameters = excitations.size();
  const double step_fraction = 1.0 / double(options.trotter_steps);
  for (int step = 0; step < options.trotter_steps; ++step) {
    for (std::size_t k = 0; k < excitations.size(); ++k)
      append_excitation(ansatz.circuit, excitations[k], int(k),
                        std::size_t(nq), step_fraction);
  }
  ansatz.excitations = std::move(excitations);
  return ansatz;
}

std::vector<double> initial_parameters(const UccsdAnsatz& ansatz, double scale) {
  std::vector<double> p(ansatz.n_parameters);
  for (std::size_t k = 0; k < p.size(); ++k) {
    // Deterministic, sign-alternating seed: reproducible and off-stationary.
    p[k] = scale * ((k % 2 == 0) ? 1.0 : -1.0) / double(k / 2 + 1);
  }
  return p;
}

}  // namespace q2::vqe
