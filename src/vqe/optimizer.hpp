// Classical optimizers driving the variational loop: Adam, L-BFGS (with
// backtracking line search) and SPSA (the shot-frugal optimizer used on real
// hardware), plus gradient helpers (central differences and the parameter-
// shift rule).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace q2::vqe {

using EnergyFn = std::function<double(const std::vector<double>&)>;
using GradientFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Invoked once per outer optimizer iteration with (iteration, energy,
/// gradient_norm); gradient_norm is negative when the optimizer doesn't
/// evaluate a gradient (SPSA). Used by the telemetry layer to stream
/// per-iteration run-report records without coupling optimizers to it.
using IterationObserver = std::function<void(int, double, double)>;

struct OptimizerOptions {
  int max_iterations = 200;
  double gradient_tolerance = 1e-6;
  double energy_tolerance = 1e-10;
  double learning_rate = 0.1;  ///< Adam step size / SPSA a-parameter
  IterationObserver iteration_observer;
};

struct OptimizerResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;
  std::vector<double> parameters;
  std::vector<double> history;  ///< energy per iteration
};

OptimizerResult minimize_adam(const EnergyFn& f, const GradientFn& grad,
                              std::vector<double> x0,
                              const OptimizerOptions& options = {});

OptimizerResult minimize_lbfgs(const EnergyFn& f, const GradientFn& grad,
                               std::vector<double> x0,
                               const OptimizerOptions& options = {});

OptimizerResult minimize_spsa(const EnergyFn& f, std::vector<double> x0,
                              Rng& rng, const OptimizerOptions& options = {});

/// Central finite-difference gradient.
std::vector<double> finite_difference_gradient(const EnergyFn& f,
                                               const std::vector<double>& x,
                                               double eps = 1e-5);

}  // namespace q2::vqe
