// Classical optimizers driving the variational loop: Adam, L-BFGS (with
// backtracking line search) and SPSA (the shot-frugal optimizer used on real
// hardware), plus gradient helpers (central differences and the parameter-
// shift rule).
//
// Every optimizer carries its loop state in an explicit OptimizerState rather
// than loop locals, so the checkpoint layer (src/ckpt) can persist a run
// mid-optimization and resume it bit-identically: the state holds everything
// iteration k+1 reads — parameters, Adam moments, the L-BFGS curvature-pair
// ring, the current gradient/energy, and the *global* iteration count and
// energy history (a resumed run continues counting, it does not restart at 0).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace q2::vqe {

using EnergyFn = std::function<double(const std::vector<double>&)>;
using GradientFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Invoked once per outer optimizer iteration with (iteration, energy,
/// gradient_norm); gradient_norm is negative when the optimizer doesn't
/// evaluate a gradient (SPSA). Used by the telemetry layer to stream
/// per-iteration run-report records without coupling optimizers to it.
using IterationObserver = std::function<void(int, double, double)>;

/// The complete resumable state of an optimization in flight. One struct
/// covers all three methods (the unused blocks stay empty): serializing it is
/// the checkpoint layer's job, interpreting it is the optimizer's.
struct OptimizerState {
  bool initialized = false;  ///< init evaluation done (energy/history primed)
  bool finished = false;     ///< terminal: converged or iteration budget spent
  bool converged = false;
  int iteration = 0;   ///< completed outer iterations, global across resumes
  double energy = 0.0;  ///< f(parameters) after the last completed iteration
  double e_prev = 0.0;  ///< previous-iteration energy (Adam/L-BFGS stopping)
  std::vector<double> parameters;
  std::vector<double> gradient;  ///< L-BFGS: grad f at `parameters`
  std::vector<double> history;   ///< energy per iteration, global

  // Adam first/second moments.
  std::vector<double> adam_m, adam_v;

  // L-BFGS curvature-pair ring (most recent last, capacity kLbfgsMemory).
  std::vector<std::vector<double>> lbfgs_s, lbfgs_y;
  std::vector<double> lbfgs_rho;
};

/// Invoked after every completed optimizer iteration with the full resumable
/// state (after IterationObserver). The checkpoint layer hooks here to write
/// snapshots; it may throw (e.g. injected crashes), which aborts the loop.
using StateObserver = std::function<void(const OptimizerState&)>;

struct OptimizerOptions {
  int max_iterations = 200;
  double gradient_tolerance = 1e-6;
  double energy_tolerance = 1e-10;
  double learning_rate = 0.1;  ///< Adam step size / SPSA a-parameter
  IterationObserver iteration_observer;
  StateObserver state_observer;
};

struct OptimizerResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;
  std::vector<double> parameters;
  std::vector<double> history;  ///< energy per iteration
};

OptimizerResult minimize_adam(const EnergyFn& f, const GradientFn& grad,
                              std::vector<double> x0,
                              const OptimizerOptions& options = {});

OptimizerResult minimize_lbfgs(const EnergyFn& f, const GradientFn& grad,
                               std::vector<double> x0,
                               const OptimizerOptions& options = {});

OptimizerResult minimize_spsa(const EnergyFn& f, std::vector<double> x0,
                              Rng& rng, const OptimizerOptions& options = {});

/// Resumable entry points. A fresh state needs only `parameters` = x0; a
/// state restored from a snapshot continues exactly where it stopped —
/// the interrupted-then-resumed trajectory is bit-identical to an
/// uninterrupted run (all state is carried as exact binary doubles and the
/// energy/gradient callbacks are deterministic).
OptimizerResult minimize_adam_from(const EnergyFn& f, const GradientFn& grad,
                                   OptimizerState& state,
                                   const OptimizerOptions& options = {});

OptimizerResult minimize_lbfgs_from(const EnergyFn& f, const GradientFn& grad,
                                    OptimizerState& state,
                                    const OptimizerOptions& options = {});

/// SPSA additionally consumes `rng`; checkpointing a run must persist the
/// engine stream (Rng::state_string) alongside the state.
OptimizerResult minimize_spsa_from(const EnergyFn& f, OptimizerState& state,
                                   Rng& rng,
                                   const OptimizerOptions& options = {});

/// Central finite-difference gradient.
std::vector<double> finite_difference_gradient(const EnergyFn& f,
                                               const std::vector<double>& x,
                                               double eps = 1e-5);

}  // namespace q2::vqe
