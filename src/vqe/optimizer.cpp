#include "vqe/optimizer.hpp"

#include <cmath>

#include "common/types.hpp"

namespace q2::vqe {
namespace {

constexpr std::size_t kLbfgsMemory = 10;

double nrm2(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

OptimizerResult result_from(const OptimizerState& state) {
  OptimizerResult r;
  r.converged = state.converged;
  r.iterations = state.iteration;
  r.parameters = state.parameters;
  r.history = state.history;
  r.energy = state.history.empty() ? state.energy : state.history.back();
  return r;
}

// Fires the per-iteration observers in a fixed order: telemetry first, then
// the (possibly throwing) checkpoint hook.
void notify(const OptimizerOptions& options, const OptimizerState& state,
            int it, double e, double gnorm, bool report_iteration) {
  if (report_iteration && options.iteration_observer)
    options.iteration_observer(it, e, gnorm);
  if (options.state_observer) options.state_observer(state);
}

// ---- Adam ------------------------------------------------------------------

void init_adam(const EnergyFn& f, OptimizerState& state) {
  const std::size_t n = state.parameters.size();
  state.adam_m.assign(n, 0.0);
  state.adam_v.assign(n, 0.0);
  state.energy = f(state.parameters);
  state.e_prev = state.energy;
  state.history.assign(1, state.energy);
  state.initialized = true;
}

void step_adam(const EnergyFn& f, const GradientFn& grad,
               OptimizerState& state, const OptimizerOptions& options) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const std::size_t n = state.parameters.size();
  const int it = ++state.iteration;

  const std::vector<double> g = grad(state.parameters);
  const double gnorm = nrm2(g);
  if (gnorm < options.gradient_tolerance) {
    state.converged = state.finished = true;
    notify(options, state, it, state.energy, gnorm, false);
    return;
  }
  // Bias correction uses the *global* iteration count, so a resumed run
  // applies the same effective step sizes as an uninterrupted one.
  for (std::size_t i = 0; i < n; ++i) {
    state.adam_m[i] = kBeta1 * state.adam_m[i] + (1 - kBeta1) * g[i];
    state.adam_v[i] = kBeta2 * state.adam_v[i] + (1 - kBeta2) * g[i] * g[i];
    const double mh = state.adam_m[i] / (1 - std::pow(kBeta1, it));
    const double vh = state.adam_v[i] / (1 - std::pow(kBeta2, it));
    state.parameters[i] -=
        options.learning_rate * mh / (std::sqrt(vh) + kEps);
  }
  const double e = f(state.parameters);
  state.history.push_back(e);
  if (std::abs(e - state.e_prev) < options.energy_tolerance)
    state.converged = state.finished = true;
  state.e_prev = e;
  state.energy = e;
  if (it >= options.max_iterations) state.finished = true;
  notify(options, state, it, e, gnorm, true);
}

// ---- L-BFGS ----------------------------------------------------------------

void init_lbfgs(const EnergyFn& f, const GradientFn& grad,
                OptimizerState& state) {
  state.energy = f(state.parameters);
  state.gradient = grad(state.parameters);
  state.history.assign(1, state.energy);
  state.initialized = true;
}

void step_lbfgs(const EnergyFn& f, const GradientFn& grad,
                OptimizerState& state, const OptimizerOptions& options) {
  const std::size_t n = state.parameters.size();
  const int it = ++state.iteration;

  if (nrm2(state.gradient) < options.gradient_tolerance) {
    state.converged = state.finished = true;
    notify(options, state, it, state.energy, nrm2(state.gradient), false);
    return;
  }

  // Two-loop recursion for the search direction d = -H g.
  const std::vector<double>& g = state.gradient;
  std::vector<double> q = g;
  std::vector<double> alpha(state.lbfgs_s.size());
  for (std::size_t i = state.lbfgs_s.size(); i-- > 0;) {
    alpha[i] = state.lbfgs_rho[i] * dot(state.lbfgs_s[i], q);
    for (std::size_t k = 0; k < n; ++k) q[k] -= alpha[i] * state.lbfgs_y[i][k];
  }
  double gamma = 1.0;
  if (!state.lbfgs_s.empty()) {
    const auto& s = state.lbfgs_s.back();
    const auto& y = state.lbfgs_y.back();
    const double yy = dot(y, y);
    if (yy > 0) gamma = dot(s, y) / yy;
  }
  for (auto& x : q) x *= gamma;
  for (std::size_t i = 0; i < state.lbfgs_s.size(); ++i) {
    const double beta = state.lbfgs_rho[i] * dot(state.lbfgs_y[i], q);
    for (std::size_t k = 0; k < n; ++k)
      q[k] += (alpha[i] - beta) * state.lbfgs_s[i][k];
  }
  std::vector<double> d(n);
  for (std::size_t k = 0; k < n; ++k) d[k] = -q[k];

  // Backtracking Armijo line search.
  double step = 1.0;
  const double slope = dot(g, d);
  if (slope >= 0) {
    // Direction lost descent; reset to steepest descent.
    for (std::size_t k = 0; k < n; ++k) d[k] = -g[k];
    state.lbfgs_s.clear();
    state.lbfgs_y.clear();
    state.lbfgs_rho.clear();
    step = options.learning_rate;
  }
  std::vector<double> x_new(n);
  double e_new = state.energy;
  for (int ls = 0; ls < 40; ++ls) {
    for (std::size_t k = 0; k < n; ++k)
      x_new[k] = state.parameters[k] + step * d[k];
    e_new = f(x_new);
    if (e_new <= state.energy + 1e-4 * step * dot(g, d)) break;
    step *= 0.5;
  }

  const std::vector<double> g_new = grad(x_new);
  std::vector<double> s(n), y(n);
  for (std::size_t k = 0; k < n; ++k) {
    s[k] = x_new[k] - state.parameters[k];
    y[k] = g_new[k] - g[k];
  }
  const double sy = dot(s, y);
  if (sy > 1e-12) {
    state.lbfgs_s.push_back(std::move(s));
    state.lbfgs_y.push_back(std::move(y));
    state.lbfgs_rho.push_back(1.0 / sy);
    if (state.lbfgs_s.size() > kLbfgsMemory) {
      state.lbfgs_s.erase(state.lbfgs_s.begin());
      state.lbfgs_y.erase(state.lbfgs_y.begin());
      state.lbfgs_rho.erase(state.lbfgs_rho.begin());
    }
  }

  const double e_prev = state.energy;
  state.parameters = x_new;
  state.gradient = g_new;
  state.energy = e_new;
  state.e_prev = e_prev;
  state.history.push_back(e_new);
  if (std::abs(e_new - e_prev) < options.energy_tolerance)
    state.converged = state.finished = true;
  if (it >= options.max_iterations) state.finished = true;
  notify(options, state, it, e_new, nrm2(state.gradient), true);
}

// ---- SPSA ------------------------------------------------------------------

void init_spsa(const EnergyFn& f, OptimizerState& state) {
  state.energy = f(state.parameters);
  state.history.assign(1, state.energy);
  state.initialized = true;
}

void step_spsa(const EnergyFn& f, OptimizerState& state, Rng& rng,
               const OptimizerOptions& options) {
  const std::size_t n = state.parameters.size();
  const int it = ++state.iteration;

  // Standard SPSA gain sequences (Spall 1998); both decay on the global
  // iteration count, which is exactly the "schedule position" the snapshot
  // carries across a resume.
  const double a = options.learning_rate, c0 = 0.1;
  constexpr double kAlpha = 0.602, kGamma = 0.101, kStability = 10.0;
  const double ak = a / std::pow(it + kStability, kAlpha);
  const double ck = c0 / std::pow(it, kGamma);
  std::vector<double> delta(n), xp(n), xm(n);
  for (std::size_t k = 0; k < n; ++k) {
    delta[k] = rng.uniform() < 0.5 ? -1.0 : 1.0;
    xp[k] = state.parameters[k] + ck * delta[k];
    xm[k] = state.parameters[k] - ck * delta[k];
  }
  const double diff = (f(xp) - f(xm)) / (2.0 * ck);
  for (std::size_t k = 0; k < n; ++k)
    state.parameters[k] -= ak * diff / delta[k];
  const double e = f(state.parameters);
  state.history.push_back(e);
  state.e_prev = state.energy;
  state.energy = e;
  if (it >= options.max_iterations) {
    state.finished = true;
    state.converged = true;  // SPSA runs a fixed budget by design
  }
  notify(options, state, it, e, -1.0, true);
}

}  // namespace

OptimizerResult minimize_adam_from(const EnergyFn& f, const GradientFn& grad,
                                   OptimizerState& state,
                                   const OptimizerOptions& options) {
  if (!state.initialized) init_adam(f, state);
  while (!state.finished && state.iteration < options.max_iterations)
    step_adam(f, grad, state, options);
  return result_from(state);
}

OptimizerResult minimize_lbfgs_from(const EnergyFn& f, const GradientFn& grad,
                                    OptimizerState& state,
                                    const OptimizerOptions& options) {
  if (!state.initialized) init_lbfgs(f, grad, state);
  while (!state.finished && state.iteration < options.max_iterations)
    step_lbfgs(f, grad, state, options);
  return result_from(state);
}

OptimizerResult minimize_spsa_from(const EnergyFn& f, OptimizerState& state,
                                   Rng& rng, const OptimizerOptions& options) {
  if (!state.initialized) init_spsa(f, state);
  while (!state.finished && state.iteration < options.max_iterations)
    step_spsa(f, state, rng, options);
  if (state.iteration >= options.max_iterations) {
    state.finished = true;
    state.converged = true;
  }
  return result_from(state);
}

OptimizerResult minimize_adam(const EnergyFn& f, const GradientFn& grad,
                              std::vector<double> x0,
                              const OptimizerOptions& options) {
  OptimizerState state;
  state.parameters = std::move(x0);
  return minimize_adam_from(f, grad, state, options);
}

OptimizerResult minimize_lbfgs(const EnergyFn& f, const GradientFn& grad,
                               std::vector<double> x0,
                               const OptimizerOptions& options) {
  OptimizerState state;
  state.parameters = std::move(x0);
  return minimize_lbfgs_from(f, grad, state, options);
}

OptimizerResult minimize_spsa(const EnergyFn& f, std::vector<double> x0,
                              Rng& rng, const OptimizerOptions& options) {
  OptimizerState state;
  state.parameters = std::move(x0);
  return minimize_spsa_from(f, state, rng, options);
}

std::vector<double> finite_difference_gradient(const EnergyFn& f,
                                               const std::vector<double>& x,
                                               double eps) {
  std::vector<double> g(x.size());
  std::vector<double> xp = x;
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double orig = xp[k];
    xp[k] = orig + eps;
    const double ep = f(xp);
    xp[k] = orig - eps;
    const double em = f(xp);
    xp[k] = orig;
    g[k] = (ep - em) / (2 * eps);
  }
  return g;
}

}  // namespace q2::vqe
