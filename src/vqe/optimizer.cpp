#include "vqe/optimizer.hpp"

#include <cmath>
#include <deque>

#include "common/types.hpp"

namespace q2::vqe {
namespace {

double nrm2(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

OptimizerResult minimize_adam(const EnergyFn& f, const GradientFn& grad,
                              std::vector<double> x0,
                              const OptimizerOptions& options) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const std::size_t n = x0.size();
  std::vector<double> m(n, 0.0), v(n, 0.0);

  OptimizerResult r;
  r.parameters = std::move(x0);
  double e_prev = f(r.parameters);
  r.history.push_back(e_prev);

  for (int it = 1; it <= options.max_iterations; ++it) {
    const std::vector<double> g = grad(r.parameters);
    const double gnorm = nrm2(g);
    r.iterations = it;
    if (gnorm < options.gradient_tolerance) {
      r.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = kBeta1 * m[i] + (1 - kBeta1) * g[i];
      v[i] = kBeta2 * v[i] + (1 - kBeta2) * g[i] * g[i];
      const double mh = m[i] / (1 - std::pow(kBeta1, it));
      const double vh = v[i] / (1 - std::pow(kBeta2, it));
      r.parameters[i] -= options.learning_rate * mh / (std::sqrt(vh) + kEps);
    }
    const double e = f(r.parameters);
    r.history.push_back(e);
    if (options.iteration_observer) options.iteration_observer(it, e, gnorm);
    if (std::abs(e - e_prev) < options.energy_tolerance) {
      r.converged = true;
      break;
    }
    e_prev = e;
  }
  r.energy = r.history.back();
  return r;
}

OptimizerResult minimize_lbfgs(const EnergyFn& f, const GradientFn& grad,
                               std::vector<double> x0,
                               const OptimizerOptions& options) {
  const std::size_t n = x0.size();
  constexpr std::size_t kMemory = 10;
  std::deque<std::vector<double>> s_list, y_list;
  std::deque<double> rho_list;

  OptimizerResult r;
  r.parameters = std::move(x0);
  double e = f(r.parameters);
  std::vector<double> g = grad(r.parameters);
  r.history.push_back(e);

  for (int it = 1; it <= options.max_iterations; ++it) {
    r.iterations = it;
    if (nrm2(g) < options.gradient_tolerance) {
      r.converged = true;
      break;
    }

    // Two-loop recursion for the search direction d = -H g.
    std::vector<double> q = g;
    std::vector<double> alpha(s_list.size());
    for (std::size_t i = s_list.size(); i-- > 0;) {
      alpha[i] = rho_list[i] * dot(s_list[i], q);
      for (std::size_t k = 0; k < n; ++k) q[k] -= alpha[i] * y_list[i][k];
    }
    double gamma = 1.0;
    if (!s_list.empty()) {
      const auto& s = s_list.back();
      const auto& y = y_list.back();
      const double yy = dot(y, y);
      if (yy > 0) gamma = dot(s, y) / yy;
    }
    for (auto& x : q) x *= gamma;
    for (std::size_t i = 0; i < s_list.size(); ++i) {
      const double beta = rho_list[i] * dot(y_list[i], q);
      for (std::size_t k = 0; k < n; ++k)
        q[k] += (alpha[i] - beta) * s_list[i][k];
    }
    std::vector<double> d(n);
    for (std::size_t k = 0; k < n; ++k) d[k] = -q[k];

    // Backtracking Armijo line search.
    double step = 1.0;
    const double slope = dot(g, d);
    if (slope >= 0) {
      // Direction lost descent; reset to steepest descent.
      for (std::size_t k = 0; k < n; ++k) d[k] = -g[k];
      s_list.clear();
      y_list.clear();
      rho_list.clear();
      step = options.learning_rate;
    }
    std::vector<double> x_new(n);
    double e_new = e;
    for (int ls = 0; ls < 40; ++ls) {
      for (std::size_t k = 0; k < n; ++k)
        x_new[k] = r.parameters[k] + step * d[k];
      e_new = f(x_new);
      if (e_new <= e + 1e-4 * step * dot(g, d)) break;
      step *= 0.5;
    }

    const std::vector<double> g_new = grad(x_new);
    std::vector<double> s(n), y(n);
    for (std::size_t k = 0; k < n; ++k) {
      s[k] = x_new[k] - r.parameters[k];
      y[k] = g_new[k] - g[k];
    }
    const double sy = dot(s, y);
    if (sy > 1e-12) {
      s_list.push_back(s);
      y_list.push_back(y);
      rho_list.push_back(1.0 / sy);
      if (s_list.size() > kMemory) {
        s_list.pop_front();
        y_list.pop_front();
        rho_list.pop_front();
      }
    }

    const double e_prev = e;
    r.parameters = x_new;
    g = g_new;
    e = e_new;
    r.history.push_back(e);
    if (options.iteration_observer) options.iteration_observer(it, e, nrm2(g));
    if (std::abs(e - e_prev) < options.energy_tolerance) {
      r.converged = true;
      break;
    }
  }
  r.energy = e;
  return r;
}

OptimizerResult minimize_spsa(const EnergyFn& f, std::vector<double> x0,
                              Rng& rng, const OptimizerOptions& options) {
  const std::size_t n = x0.size();
  OptimizerResult r;
  r.parameters = std::move(x0);
  r.history.push_back(f(r.parameters));

  // Standard SPSA gain sequences (Spall 1998).
  const double a = options.learning_rate, c0 = 0.1;
  constexpr double kAlpha = 0.602, kGamma = 0.101, kStability = 10.0;

  for (int it = 1; it <= options.max_iterations; ++it) {
    r.iterations = it;
    const double ak = a / std::pow(it + kStability, kAlpha);
    const double ck = c0 / std::pow(it, kGamma);
    std::vector<double> delta(n), xp(n), xm(n);
    for (std::size_t k = 0; k < n; ++k) {
      delta[k] = rng.uniform() < 0.5 ? -1.0 : 1.0;
      xp[k] = r.parameters[k] + ck * delta[k];
      xm[k] = r.parameters[k] - ck * delta[k];
    }
    const double diff = (f(xp) - f(xm)) / (2.0 * ck);
    for (std::size_t k = 0; k < n; ++k)
      r.parameters[k] -= ak * diff / delta[k];
    const double e = f(r.parameters);
    r.history.push_back(e);
    if (options.iteration_observer) options.iteration_observer(it, e, -1.0);
  }
  r.energy = r.history.back();
  r.converged = true;  // SPSA runs a fixed budget by design
  return r;
}

std::vector<double> finite_difference_gradient(const EnergyFn& f,
                                               const std::vector<double>& x,
                                               double eps) {
  std::vector<double> g(x.size());
  std::vector<double> xp = x;
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double orig = xp[k];
    xp[k] = orig + eps;
    const double ep = f(xp);
    xp[k] = orig - eps;
    const double em = f(xp);
    xp[k] = orig;
    g[k] = (ep - em) / (2 * eps);
  }
  return g;
}

}  // namespace q2::vqe
