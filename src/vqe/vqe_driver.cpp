#include "vqe/vqe_driver.hpp"

#include <memory>

#include "chem/hamiltonian.hpp"
#include "ckpt/serialize.hpp"
#include "common/timer.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/scheduler.hpp"

namespace q2::vqe {
namespace {

constexpr const char* kSnapshotKind = "vqe";

// Snapshot layout for a VQE run: a "meta" section guarding against resuming
// with a different method/ansatz, the full optimizer state, and (SPSA only)
// the exact rng stream.
ckpt::Snapshot encode_vqe_snapshot(const VqeOptions& options,
                                   std::size_t n_parameters,
                                   const OptimizerState& state,
                                   const Rng& spsa_rng) {
  ckpt::Snapshot snap;
  ckpt::ByteWriter meta;
  meta.str(kSnapshotKind);
  meta.i32(int(options.method));
  meta.u64(n_parameters);
  snap.set("meta", meta.take());
  ckpt::ByteWriter opt;
  ckpt::write_optimizer_state(opt, state);
  snap.set("optimizer", opt.take());
  if (options.method == OptimizerKind::kSpsa) {
    ckpt::ByteWriter rng;
    ckpt::write_rng(rng, spsa_rng);
    snap.set("rng", rng.take());
  }
  return snap;
}

void decode_vqe_snapshot(const ckpt::Snapshot& snap, const VqeOptions& options,
                         std::size_t n_parameters, OptimizerState& state,
                         Rng& spsa_rng) {
  ckpt::ByteReader meta(snap.at("meta"));
  require(meta.str() == kSnapshotKind,
          "vqe: snapshot was not written by a VQE run");
  require(meta.i32() == int(options.method),
          "vqe: snapshot was written with a different optimizer");
  require(meta.u64() == n_parameters,
          "vqe: snapshot ansatz parameter count mismatch");
  ckpt::ByteReader opt(snap.at("optimizer"));
  state = ckpt::read_optimizer_state(opt);
  require(state.parameters.size() == n_parameters,
          "vqe: snapshot optimizer state is inconsistent");
  if (const auto* bytes = snap.find("rng")) {
    ckpt::ByteReader rng(*bytes);
    ckpt::read_rng(rng, spsa_rng);
  }
}

// `report` gates run-report emission so only rank 0 of a distributed run
// writes records (every rank executes the same optimizer trajectory).
VqeResult optimize(const EnergyEvaluator& evaluator, const UccsdAnsatz& ansatz,
                   const VqeOptions& options, const EnergyFn& energy_fn,
                   bool report = true) {
  OBS_SPAN("vqe/optimize");
  GradientFn grad_fn = [&](const std::vector<double>& x) {
    return finite_difference_gradient(energy_fn, x, options.gradient_eps);
  };
  const std::vector<double> x0 = initial_parameters(ansatz);

  OptimizerOptions opt_options = options.optimizer;
  obs::RunReport& sink = obs::RunReport::global();
  const bool reporting = report && sink.is_open();
  std::shared_ptr<Timer> iter_timer;
  if (reporting) {
    sink.record("vqe_setup",
                {{"n_qubits", ansatz.circuit.n_qubits()},
                 {"n_parameters", ansatz.n_parameters},
                 {"n_pauli_terms", evaluator.n_terms()},
                 {"measurement_groups", evaluator.measurement_group_count()},
                 {"compiled_gates", evaluator.compiled_ansatz().gates.size()},
                 {"swaps_elided", evaluator.compiled_ansatz().stats.swaps_elided},
                 {"circuit_gates", ansatz.circuit.size()}});
    iter_timer = std::make_shared<Timer>();
    const IterationObserver user_observer = opt_options.iteration_observer;
    opt_options.iteration_observer = [&evaluator, iter_timer, user_observer](
                                         int it, double e, double gnorm) {
      obs::RunReport::global().record(
          "vqe_iteration",
          {{"iteration", it},
           {"energy", e},
           {"gradient_norm", gnorm},
           {"truncation_error", evaluator.last_truncation_error()},
           {"wall_seconds", iter_timer->seconds()}});
      iter_timer->reset();
      if (user_observer) user_observer(it, e, gnorm);
    };
  }

  // Checkpoint/resume: load the newest valid snapshot (every rank of a
  // distributed run reads the same file; only the reporting rank writes),
  // then hook snapshot writes onto the optimizer's state observer. The
  // resumed trajectory is bit-identical to the uninterrupted one because the
  // state carries every input of the next iteration in exact binary form.
  OptimizerState state;
  Rng spsa_rng(7);
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (options.checkpoint.enabled()) {
    manager = std::make_unique<ckpt::CheckpointManager>(options.checkpoint,
                                                        /*writer=*/report);
    if (const auto snap = manager->load_latest_valid())
      decode_vqe_snapshot(*snap, options, ansatz.n_parameters, state,
                          spsa_rng);
    // user_observer dies with this block — the lambda must own its copy.
    const StateObserver user_observer = opt_options.state_observer;
    opt_options.state_observer = [&, user_observer](const OptimizerState& st) {
      if (user_observer) user_observer(st);
      if (!manager->due(st.iteration, st.finished)) return;
      OBS_SPAN("ckpt/save");
      manager->save(st.iteration, encode_vqe_snapshot(
                                      options, ansatz.n_parameters, st,
                                      spsa_rng));
    };
  }
  if (!state.initialized) state.parameters = x0;

  OptimizerResult opt;
  switch (options.method) {
    case OptimizerKind::kLbfgs:
      opt = minimize_lbfgs_from(energy_fn, grad_fn, state, opt_options);
      break;
    case OptimizerKind::kAdam:
      opt = minimize_adam_from(energy_fn, grad_fn, state, opt_options);
      break;
    case OptimizerKind::kSpsa:
      opt = minimize_spsa_from(energy_fn, state, spsa_rng, opt_options);
      break;
  }

  VqeResult r;
  r.converged = opt.converged;
  r.energy = opt.energy;
  r.iterations = opt.iterations;
  r.parameters = std::move(opt.parameters);
  r.history = std::move(opt.history);
  r.n_pauli_terms = evaluator.n_terms();
  r.n_parameters = ansatz.n_parameters;
  r.circuit_gates = ansatz.circuit.size();
  if (reporting)
    sink.record("vqe_result", {{"converged", r.converged},
                               {"energy", r.energy},
                               {"iterations", r.iterations}});
  return r;
}

}  // namespace

VqeResult run_vqe_on(const pauli::QubitOperator& hamiltonian,
                     const UccsdAnsatz& ansatz, const VqeOptions& options) {
  const EnergyEvaluator evaluator(ansatz.circuit, hamiltonian, options.mps,
                                  options.measurement, options.storage);
  EnergyFn f = [&](const std::vector<double>& x) { return evaluator.energy(x); };
  return optimize(evaluator, ansatz, options, f);
}

VqeResult run_vqe(const chem::MoIntegrals& mo, int n_alpha, int n_beta,
                  const VqeOptions& options) {
  require(n_alpha == n_beta, "run_vqe: closed-shell only");
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(mo);
  const UccsdAnsatz ansatz =
      build_uccsd(mo.n_orbitals(), n_alpha, n_beta, options.ansatz);
  return run_vqe_on(h, ansatz, options);
}

VqeResult run_vqe_distributed(const chem::MoIntegrals& mo, int n_alpha,
                              int n_beta, const VqeOptions& options,
                              par::Comm& comm) {
  require(n_alpha == n_beta, "run_vqe_distributed: closed-shell only");
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(mo);
  const UccsdAnsatz ansatz =
      build_uccsd(mo.n_orbitals(), n_alpha, n_beta, options.ansatz);
  const EnergyEvaluator evaluator(ansatz.circuit, h, options.mps,
                                  options.measurement, options.storage);

  // Static LPT partition of the Pauli terms over ranks (level-2 parallelism).
  const par::Schedule schedule =
      par::lpt_schedule(evaluator.term_costs(), std::size_t(comm.size()));
  std::vector<std::size_t> mine;
  for (std::size_t t = 0; t < schedule.assignment.size(); ++t)
    if (schedule.assignment[t] == std::size_t(comm.rank())) mine.push_back(t);

  EnergyFn f = [&](const std::vector<double>& x) {
    // Mirror the paper's per-iteration pattern: parameters flow from the
    // root (MPI_Bcast), partial energies are reduced (MPI_Reduce/Allreduce).
    std::vector<double> params = x;
    comm.bcast(params, 0);
    const double partial = evaluator.partial_energy(params, mine);
    return evaluator.constant_term() + comm.allreduce_sum(partial);
  };
  return optimize(evaluator, ansatz, options, f, /*report=*/comm.rank() == 0);
}

}  // namespace q2::vqe
