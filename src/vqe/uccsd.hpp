// Trotterized unitary coupled-cluster ansatz (Eq. 3-4), compiled to the
// parametric circuit of Fig. 5: a Hartree-Fock preparation followed by
// exp(i theta c_k P_k) factors whose RZ angles bind to the parameter vector.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/jordan_wigner.hpp"

namespace q2::vqe {

struct Excitation {
  std::vector<std::size_t> from;  ///< occupied spin orbitals (annihilated)
  std::vector<std::size_t> to;    ///< virtual spin orbitals (created)
};

struct UccsdAnsatz {
  int n_qubits = 0;
  int n_electrons = 0;
  std::size_t n_parameters = 0;
  circ::Circuit circuit;  ///< HF prep + parametric UCC factors
  std::vector<Excitation> excitations;
};

struct UccsdOptions {
  int trotter_steps = 1;
  /// Distance truncation (Fig. 10 regime): a double excitation is kept only
  /// if max spatial-orbital distance among its indices <= window; -1 = full.
  int distance_window = -1;
  bool include_singles = true;
  bool include_doubles = true;
  /// Local generalized ansatz: orbital-neighbourhood excitations a+_p a_q
  /// and pair doubles for |p - q| <= distance_window, regardless of the
  /// occupied/virtual split. This is the fixed-depth-per-qubit circuit of
  /// the paper's large-chain runs (localized-orbital regime); parameter and
  /// gate counts are O(n) instead of O(n^4).
  bool local_generalized = false;
};

/// Closed-shell UCCSD over `n_spatial` orbitals with n_alpha = n_beta
/// occupied orbitals per spin. Spin-orbital q = 2p + sigma maps to qubit q.
UccsdAnsatz build_uccsd(std::size_t n_spatial, int n_alpha, int n_beta,
                        const UccsdOptions& options = {});

/// Classical MP2-style starting amplitudes are out of scope; this returns a
/// deterministic small perturbation that breaks the HF stationary point.
std::vector<double> initial_parameters(const UccsdAnsatz& ansatz,
                                       double scale = 1e-2);

}  // namespace q2::vqe
