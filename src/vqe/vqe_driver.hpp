// The complete MPS-VQE solver: UCCSD ansatz + energy evaluator + optimizer.
// run_vqe_distributed implements the paper's second parallelization level:
// Pauli-string circuits are LPT-partitioned across the ranks of a (simulated)
// MPI communicator, parameters are broadcast and energies reduced each
// iteration (Fig. 4).
#pragma once

#include "chem/mo.hpp"
#include "ckpt/checkpoint.hpp"
#include "parallel/comm.hpp"
#include "vqe/energy.hpp"
#include "vqe/optimizer.hpp"
#include "vqe/uccsd.hpp"

namespace q2::vqe {

enum class OptimizerKind { kLbfgs, kAdam, kSpsa };

struct VqeOptions {
  sim::MpsOptions mps;
  UccsdOptions ansatz;
  OptimizerOptions optimizer;
  MeasurementMode measurement = MeasurementMode::kDirect;
  CircuitStorage storage = CircuitStorage::kMemoryEfficient;
  OptimizerKind method = OptimizerKind::kLbfgs;
  double gradient_eps = 1e-5;
  /// Durable snapshot/resume of the optimizer loop (src/ckpt). When enabled,
  /// the full resumable optimizer state (plus the SPSA rng stream) is
  /// written every `every_n_iterations`; an interrupted run restarted with
  /// the same options resumes mid-optimization and produces bit-identical
  /// final energy, parameters and iteration history. In a distributed run
  /// only rank 0 writes; every rank loads the same snapshot.
  ckpt::CheckpointOptions checkpoint;
};

struct VqeResult {
  bool converged = false;
  double energy = 0.0;
  int iterations = 0;
  std::vector<double> parameters;
  std::vector<double> history;
  std::size_t n_pauli_terms = 0;
  std::size_t n_parameters = 0;
  std::size_t circuit_gates = 0;
};

/// Serial MPS-VQE on a molecular (or embedding) Hamiltonian.
VqeResult run_vqe(const chem::MoIntegrals& mo, int n_alpha, int n_beta,
                  const VqeOptions& options = {});

/// VQE on a pre-built Hamiltonian/ansatz pair (used by DMET and benches).
VqeResult run_vqe_on(const pauli::QubitOperator& hamiltonian,
                     const UccsdAnsatz& ansatz, const VqeOptions& options);

/// Level-2-parallel VQE: every rank of `comm` executes the same optimizer
/// trajectory; each energy evaluation is split over ranks by Pauli term and
/// summed with Allreduce. Deterministically identical to the serial result.
VqeResult run_vqe_distributed(const chem::MoIntegrals& mo, int n_alpha,
                              int n_beta, const VqeOptions& options,
                              par::Comm& comm);

}  // namespace q2::vqe
