// Schmidt-decomposition bath construction (DMET Fig. 3, step 3): the
// environment block of the idempotent mean-field 1-RDM yields at most
// n_fragment bath orbitals; fragment + bath span the embedding space.
#pragma once

#include <vector>

#include "dmet/fragment.hpp"
#include "linalg/matrix.hpp"

namespace q2::dmet {

struct EmbeddingBasis {
  /// OAO-basis coefficients of the embedding orbitals, N x (n_frag + n_bath).
  /// The first n_fragment columns are the fragment unit vectors.
  la::RMatrix w;
  std::size_t n_fragment = 0;
  std::size_t n_bath = 0;
  /// Bath-orbital entanglement weights (singular values of the env-frag RDM
  /// block), one per bath orbital.
  std::vector<double> bath_occupations;
};

/// Build the embedding basis from the per-spin OAO 1-RDM. Bath orbitals with
/// singular value below `threshold` are discarded (unentangled).
EmbeddingBasis make_bath(const la::RMatrix& p_oao, const Fragment& fragment,
                         double threshold = 1e-8);

}  // namespace q2::dmet
