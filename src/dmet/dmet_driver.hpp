// The DMET driver (Fig. 3): RHF low-level calculation, fragmentation, bath
// construction, high-level fragment solves (FCI or MPS-VQE), and the global
// chemical-potential loop matching the summed fragment electron count to the
// molecule. run_dmet_distributed adds the first parallelization level:
// fragments are dealt to sub-communicators (embarrassingly parallel, one
// scalar reduce at the end — §IV-C).
#pragma once

#include <functional>

#include "chem/molecule.hpp"
#include "ckpt/checkpoint.hpp"
#include "dmet/embedding.hpp"
#include "parallel/comm.hpp"
#include "vqe/vqe_driver.hpp"

namespace q2::dmet {

struct FragmentSolution {
  double energy = 0.0;     ///< fragment energy E_x
  double electrons = 0.0;  ///< fragment-orbital electron count N_x
};

/// Solves one embedding problem (already mu-shifted) and evaluates the
/// fragment energy/electron count.
using FragmentSolver = std::function<FragmentSolution(
    const EmbeddingProblem& problem, const chem::MoIntegrals& solver_mo)>;

/// Exact diagonalization fragment solver (the validation reference).
FragmentSolver make_fci_solver();
/// MPS-VQE fragment solver — the paper's high-level method.
FragmentSolver make_vqe_solver(const vqe::VqeOptions& options);

struct DmetOptions {
  std::string basis = "sto-3g";
  /// Atom groups per fragment; empty = one fragment per atom.
  std::vector<std::vector<int>> fragments;
  double bath_threshold = 1e-8;
  bool fit_chemical_potential = true;
  /// All fragments are symmetry-equivalent (rings, chains of identical
  /// units): solve fragment 0 once and replicate its energy/electron count.
  bool equivalent_fragments = false;
  double electron_tolerance = 1e-5;
  int max_mu_iterations = 30;
  double mu_bracket = 0.5;  ///< initial bisection half-width
  /// Each side of the bracket may double at most this many times before the
  /// fit is declared failed (result.converged = false).
  int max_bracket_expansions = 6;
  /// On-node parallelism across non-equivalent fragment solves (level 1 of
  /// the paper's hierarchy, folded onto the shared-memory pool). Fragment
  /// solves nest VQE term sweeps; the pool is nesting-safe.
  par::ParallelOptions parallel;
  /// Durable snapshot/resume of the chemical-potential loop (src/ckpt). A
  /// snapshot is written every `every_n_iterations` µ-evaluations and holds
  /// the bracket, iteration/cycle counters and the per-fragment solutions of
  /// the last sweep; an interrupted run restarted with the same options
  /// resumes mid-fit with bit-identical final energies. Leave the fragment
  /// solver's own VqeOptions::checkpoint disabled — concurrent fragment
  /// solves would fight over one snapshot family; DMET checkpoints at
  /// µ-loop granularity instead.
  ckpt::CheckpointOptions checkpoint;
};

struct DmetResult {
  bool converged = false;
  double energy = 0.0;     ///< total DMET energy (incl. nuclear repulsion)
  double hf_energy = 0.0;  ///< low-level reference
  double mu = 0.0;
  int mu_iterations = 0;
  double total_electrons = 0.0;  ///< summed fragment electron count at mu
  std::vector<double> fragment_energies;
  std::vector<double> fragment_electrons;
};

DmetResult run_dmet(const chem::Molecule& molecule, const DmetOptions& options,
                    const FragmentSolver& solver);

/// Level-1 parallel DMET: `comm` is split into one sub-communicator per
/// fragment batch; each group solves its fragments, and fragment energies
/// (one scalar each) are reduced at the end.
DmetResult run_dmet_distributed(const chem::Molecule& molecule,
                                const DmetOptions& options,
                                const FragmentSolver& solver, par::Comm& comm,
                                int groups);

}  // namespace q2::dmet
