// Loewdin orthogonalization utilities for DMET: the fragment/environment
// split is defined over symmetrically orthogonalized AOs, which keep their
// atomic labels (unlike canonical MOs).
#pragma once

#include "chem/integrals.hpp"
#include "chem/scf.hpp"

namespace q2::dmet {

struct LowdinBasis {
  la::RMatrix s_half;      ///< S^{1/2}
  la::RMatrix s_inv_half;  ///< S^{-1/2} (AO coefficients of the OAOs)
};

LowdinBasis make_lowdin(const la::RMatrix& overlap);

/// Per-spin mean-field 1-RDM in the OAO basis: P = S^{1/2} (D/2) S^{1/2};
/// idempotent with trace = number of occupied orbitals.
la::RMatrix oao_density(const LowdinBasis& lb, const la::RMatrix& d_ao);

}  // namespace q2::dmet
