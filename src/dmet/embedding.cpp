#include "dmet/embedding.hpp"

#include <cmath>

#include "linalg/eigh.hpp"
#include "linalg/gemm.hpp"

namespace q2::dmet {
namespace {

// Coulomb-exchange field G[D]_pq = sum_rs D_rs [(pq|rs) - (ps|rq)/2] in AO.
la::RMatrix g_field(const chem::EriTable& eri, const la::RMatrix& d) {
  const std::size_t n = d.rows();
  la::RMatrix g(n, n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q <= p; ++q) {
      double sum = 0;
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s)
          sum += d(r, s) * (eri(p, q, r, s) - 0.5 * eri(p, r, q, s));
      g(p, q) = g(q, p) = sum;
    }
  return g;
}

// Four-index AO->embedding ERI transform with a small target dimension m.
void transform_eri(const chem::EriTable& eri, const la::RMatrix& c,
                   chem::MoIntegrals& out) {
  const std::size_t n = c.rows(), m = c.cols();
  // Quarter transforms with intermediate tensors sized n^3 m, n^2 m^2, ...
  std::vector<double> t1(n * n * n * m, 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s) {
          const double v = eri(p, q, r, s);
          if (v == 0.0) continue;
          for (std::size_t l = 0; l < m; ++l)
            t1[((p * n + q) * n + r) * m + l] += v * c(s, l);
        }
  std::vector<double> t2(n * n * m * m, 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t k = 0; k < m; ++k) {
          const double v = t1[((p * n + q) * n + r) * m + k];
          if (v == 0.0) continue;
          for (std::size_t l = 0; l < m; ++l)
            t2[((p * n + q) * m + k) * m + l] += v * c(r, l);
        }
  std::vector<double> t3(n * m * m * m, 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t k = 0; k < m; ++k)
        for (std::size_t l = 0; l < m; ++l) {
          const double v = t2[((p * n + q) * m + k) * m + l];
          if (v == 0.0) continue;
          for (std::size_t o = 0; o < m; ++o)
            t3[((p * m + o) * m + k) * m + l] += v * c(q, o);
        }
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t o = 0; o < m; ++o)
      for (std::size_t k = 0; k < m; ++k)
        for (std::size_t l = 0; l < m; ++l) {
          const double v = t3[((p * m + o) * m + k) * m + l];
          if (v == 0.0) continue;
          for (std::size_t w = 0; w < m; ++w)
            out.eri(w, o, k, l) += v * c(p, w);
        }
}

}  // namespace

EmbeddingProblem make_embedding(const chem::IntegralTables& ints,
                                const LowdinBasis& lb,
                                const la::RMatrix& p_oao,
                                const EmbeddingBasis& emb) {
  const std::size_t m = emb.w.cols();
  EmbeddingProblem prob;
  prob.n_fragment = emb.n_fragment;
  for (std::size_t k = 0; k < emb.n_fragment; ++k)
    prob.fragment_orbitals.push_back(k);

  // Mean-field embedding RDM (factor 2) and the frozen core density.
  la::RMatrix gamma = la::matmul(la::matmul(emb.w, p_oao, la::Op::kTrans), emb.w);
  gamma *= 2.0;
  double ne = 0;
  for (std::size_t k = 0; k < m; ++k) ne += gamma(k, k);
  // With a truncated bath the mean-field trace is not exactly integral;
  // round to the nearest closed-shell count.
  prob.n_alpha = prob.n_beta = int(std::lround(ne / 2.0));
  require(prob.n_alpha >= 0 && std::size_t(prob.n_alpha) <= m,
          "make_embedding: implausible embedding electron count");

  // D_core (OAO) = 2 P - W gamma W^T, then to AO: D_ao = X D_oao X.
  la::RMatrix d_core = p_oao;
  d_core *= 2.0;
  const la::RMatrix wg = la::matmul(emb.w, gamma);
  const la::RMatrix wgw = la::matmul(wg, emb.w, la::Op::kNone, la::Op::kTrans);
  d_core -= wgw;
  const la::RMatrix d_core_ao =
      la::matmul(la::matmul(lb.s_inv_half, d_core), lb.s_inv_half);

  const la::RMatrix g_core = g_field(ints.eri, d_core_ao);
  const la::RMatrix hcore_ao = ints.kinetic + ints.nuclear;

  // Embedding orbital AO coefficients: C = S^{-1/2} W.
  const la::RMatrix c = la::matmul(lb.s_inv_half, emb.w);

  auto project = [&](const la::RMatrix& ao_matrix) {
    return la::matmul(la::matmul(c, ao_matrix, la::Op::kTrans), c);
  };
  const la::RMatrix h_solver = project(hcore_ao + g_core);
  const la::RMatrix h_energy = project(hcore_ao + 0.5 * g_core);

  prob.solver = chem::MoIntegrals(m, 0.0);
  prob.energy = chem::MoIntegrals(m, 0.0);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q) {
      prob.solver.h(p, q) = h_solver(p, q);
      prob.energy.h(p, q) = h_energy(p, q);
    }
  transform_eri(ints.eri, c, prob.solver);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q)
      for (std::size_t r = 0; r < m; ++r)
        for (std::size_t s = 0; s < m; ++s)
          prob.energy.eri(p, q, r, s) = prob.solver.eri(p, q, r, s);
  return prob;
}

chem::MoIntegrals fragment_weighted_integrals(
    const chem::MoIntegrals& mo, const std::vector<std::size_t>& fragment) {
  const std::size_t n = mo.n_orbitals();
  std::vector<double> in_frag(n, 0.0);
  for (std::size_t f : fragment) in_frag[f] = 1.0;

  chem::MoIntegrals out(n, 0.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      out.h(p, q) = mo.h(p, q) * 0.5 * (in_frag[p] + in_frag[q]);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s)
          out.eri(p, q, r, s) =
              mo.eri(p, q, r, s) * 0.25 *
              (in_frag[p] + in_frag[q] + in_frag[r] + in_frag[s]);
  return out;
}

chem::MoIntegrals with_chemical_potential(
    const chem::MoIntegrals& mo, const std::vector<std::size_t>& fragment,
    double mu) {
  chem::MoIntegrals out = mo;
  for (std::size_t f : fragment) out.h(f, f) -= mu;
  return out;
}

la::RMatrix embedding_canonical_orbitals(const chem::MoIntegrals& mo,
                                         int n_occ) {
  const std::size_t m = mo.n_orbitals();
  require(std::size_t(n_occ) <= m, "embedding_canonical_orbitals: bad n_occ");
  la::RMatrix h(m, m);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q) h(p, q) = mo.h(p, q);

  la::RMatrix c = la::eigh(h).vectors;
  for (int iter = 0; iter < 60; ++iter) {
    la::RMatrix d(m, m);
    for (std::size_t p = 0; p < m; ++p)
      for (std::size_t q = 0; q < m; ++q) {
        double s = 0;
        for (int i = 0; i < n_occ; ++i)
          s += c(p, std::size_t(i)) * c(q, std::size_t(i));
        d(p, q) = 2.0 * s;
      }
    la::RMatrix f = h;
    for (std::size_t p = 0; p < m; ++p)
      for (std::size_t q = 0; q < m; ++q) {
        double g = 0;
        for (std::size_t r = 0; r < m; ++r)
          for (std::size_t s = 0; s < m; ++s)
            g += d(r, s) * (mo.eri(p, q, r, s) - 0.5 * mo.eri(p, r, q, s));
        f(p, q) += g;
      }
    const la::RMatrix c_new = la::eigh(f).vectors;
    double diff = 0;
    for (std::size_t k = 0; k < c.size(); ++k)
      diff = std::max(diff, std::abs(std::abs(c.data()[k]) -
                                     std::abs(c_new.data()[k])));
    c = c_new;
    if (diff < 1e-10) break;
  }
  return c;
}

chem::MoIntegrals rotate_orbitals(const chem::MoIntegrals& mo,
                                  const la::RMatrix& u) {
  const std::size_t m = mo.n_orbitals();
  require(u.rows() == m && u.cols() == m, "rotate_orbitals: shape mismatch");
  chem::MoIntegrals out(m, mo.core_energy());

  la::RMatrix h(m, m);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q) h(p, q) = mo.h(p, q);
  const la::RMatrix hr = la::matmul(la::matmul(u, h, la::Op::kTrans), u);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q) out.h(p, q) = hr(p, q);

  // Four quarter transforms over the small embedding dimension.
  std::vector<double> t1(m * m * m * m, 0.0), t2(m * m * m * m, 0.0);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q)
      for (std::size_t r = 0; r < m; ++r)
        for (std::size_t s = 0; s < m; ++s) {
          const double v = mo.eri(p, q, r, s);
          if (v == 0.0) continue;
          for (std::size_t l = 0; l < m; ++l)
            t1[((p * m + q) * m + r) * m + l] += v * u(s, l);
        }
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q)
      for (std::size_t r = 0; r < m; ++r)
        for (std::size_t l = 0; l < m; ++l) {
          const double v = t1[((p * m + q) * m + r) * m + l];
          if (v == 0.0) continue;
          for (std::size_t k = 0; k < m; ++k)
            t2[((p * m + q) * m + k) * m + l] += v * u(r, k);
        }
  std::fill(t1.begin(), t1.end(), 0.0);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = 0; q < m; ++q)
      for (std::size_t k = 0; k < m; ++k)
        for (std::size_t l = 0; l < m; ++l) {
          const double v = t2[((p * m + q) * m + k) * m + l];
          if (v == 0.0) continue;
          for (std::size_t j = 0; j < m; ++j)
            t1[((p * m + j) * m + k) * m + l] += v * u(q, j);
        }
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t k = 0; k < m; ++k)
        for (std::size_t l = 0; l < m; ++l) {
          const double v = t1[((p * m + j) * m + k) * m + l];
          if (v == 0.0) continue;
          for (std::size_t i = 0; i < m; ++i)
            out.eri(i, j, k, l) += v * u(p, i);
        }
  return out;
}

}  // namespace q2::dmet
