// Embedding Hamiltonian construction (DMET Fig. 3, step 3): project the
// molecular Hamiltonian into fragment+bath space with the frozen-environment
// Coulomb field folded into the one-body term. Produces both the solver
// Hamiltonian (fully dressed) and the energy Hamiltonian (half-dressed, the
// democratic-partitioning form whose fragment-weighted expectation is E_x).
#pragma once

#include "chem/mo.hpp"
#include "chem/scf.hpp"
#include "dmet/bath.hpp"
#include "dmet/lowdin.hpp"

namespace q2::dmet {

struct EmbeddingProblem {
  chem::MoIntegrals solver;  ///< h + G[D_core], full embedding ERIs
  chem::MoIntegrals energy;  ///< h + G[D_core]/2 (for fragment energies)
  std::size_t n_fragment = 0;
  int n_alpha = 0, n_beta = 0;  ///< embedding electron counts
  std::vector<std::size_t> fragment_orbitals;  ///< [0, n_fragment)
};

EmbeddingProblem make_embedding(const chem::IntegralTables& ints,
                                const LowdinBasis& lb,
                                const la::RMatrix& p_oao,
                                const EmbeddingBasis& emb);

/// Apply democratic-partitioning weights to the integrals themselves: a
/// term's weight is the fraction of its indices inside the fragment. The
/// resulting Hamiltonian's expectation is the fragment energy E_x.
chem::MoIntegrals fragment_weighted_integrals(
    const chem::MoIntegrals& mo, const std::vector<std::size_t>& fragment);

/// Subtract mu on the fragment-orbital diagonal (global chemical potential).
chem::MoIntegrals with_chemical_potential(
    const chem::MoIntegrals& mo, const std::vector<std::size_t>& fragment,
    double mu);

/// Canonical (mean-field) orbitals of an embedding problem: a small RHF in
/// the orthonormal embedding basis. Columns of the returned matrix are the
/// canonical orbitals, energy-ordered — the reference determinant a UCCSD
/// ansatz needs (occupied = first n_occ columns).
la::RMatrix embedding_canonical_orbitals(const chem::MoIntegrals& mo,
                                         int n_occ);

/// Rotate one- and two-body integrals into a new orthonormal orbital basis
/// (columns of u).
chem::MoIntegrals rotate_orbitals(const chem::MoIntegrals& mo,
                                  const la::RMatrix& u);

}  // namespace q2::dmet
