#include "dmet/dmet_driver.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "ckpt/serialize.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/mps.hpp"

namespace q2::dmet {
namespace {

obs::Counter& fragment_solve_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("dmet.fragment_solves");
  return c;
}

}  // namespace

FragmentSolver make_fci_solver() {
  return [](const EmbeddingProblem& prob, const chem::MoIntegrals& solver_mo) {
    const chem::FciResult gs =
        chem::fci_ground_state(solver_mo, prob.n_alpha, prob.n_beta);
    require(gs.converged, "dmet/fci: fragment solve did not converge");
    const chem::FciSpace space(solver_mo.n_orbitals(), prob.n_alpha,
                               prob.n_beta);

    const chem::MoIntegrals ex =
        fragment_weighted_integrals(prob.energy, prob.fragment_orbitals);
    FragmentSolution sol;
    sol.energy = chem::fci_expectation(space, chem::to_spin_orbitals(ex), gs.ci);
    const la::RMatrix rdm = space.one_rdm(gs.ci);
    for (std::size_t f : prob.fragment_orbitals) sol.electrons += rdm(f, f);
    return sol;
  };
}

FragmentSolver make_vqe_solver(const vqe::VqeOptions& options) {
  return [options](const EmbeddingProblem& prob,
                   const chem::MoIntegrals& solver_mo) {
    // The embedding basis (fragment + bath) is not energy ordered, so the
    // UCCSD reference (occupy the first qubits) would be the wrong
    // determinant. Canonicalize with a small in-embedding mean field and
    // rotate every measured operator into the same basis.
    const la::RMatrix u =
        embedding_canonical_orbitals(solver_mo, prob.n_alpha);
    const chem::MoIntegrals canonical = rotate_orbitals(solver_mo, u);

    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(canonical);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(
        canonical.n_orbitals(), prob.n_alpha, prob.n_beta, options.ansatz);
    const vqe::VqeResult r = vqe::run_vqe_on(h, ansatz, options);

    // Fragment energy and electron count are measured on the optimized state
    // as plain Pauli expectations — exactly what hardware would report.
    sim::Mps state(ansatz.circuit.n_qubits(), options.mps);
    state.run(ansatz.circuit, r.parameters);
    const pauli::QubitOperator hx = chem::molecular_qubit_hamiltonian(
        rotate_orbitals(
            fragment_weighted_integrals(prob.energy, prob.fragment_orbitals),
            u));
    // Fragment projector in the canonical basis: P = U^T diag(1_frag) U.
    const std::size_t m = canonical.n_orbitals();
    la::RMatrix proj(m, m);
    for (std::size_t f : prob.fragment_orbitals)
      for (std::size_t p = 0; p < m; ++p)
        for (std::size_t q = 0; q < m; ++q)
          proj(p, q) += u(f, p) * u(f, q);
    const pauli::QubitOperator nx = chem::one_body_qubit_operator(proj);

    FragmentSolution sol;
    sol.energy = state.expectation(hx).real();
    sol.electrons = state.expectation(nx).real();
    return sol;
  };
}

namespace {

struct Evaluation {
  double energy = 0.0;     ///< sum of fragment energies (electronic)
  double electrons = 0.0;  ///< summed fragment electron count
  std::vector<double> fragment_energies, fragment_electrons;
};

// Everything that's independent of mu, precomputed once.
struct Prepared {
  chem::IntegralTables ints;
  LowdinBasis lb;
  la::RMatrix p_oao;
  std::vector<Fragment> fragments;
  std::vector<EmbeddingProblem> problems;
  double hf_energy = 0.0;
};

Prepared prepare(const chem::Molecule& molecule, const DmetOptions& options) {
  Prepared prep;
  const chem::BasisSet basis = chem::BasisSet::build(molecule, options.basis);
  prep.ints = chem::compute_integrals(molecule, basis);
  const chem::ScfResult scf = chem::rhf(molecule, basis, prep.ints);
  require(scf.converged, "run_dmet: RHF did not converge");
  prep.hf_energy = scf.energy;

  prep.lb = make_lowdin(prep.ints.overlap);
  prep.p_oao = oao_density(prep.lb, scf.density);

  const auto groups = options.fragments.empty()
                          ? uniform_atom_groups(molecule.n_atoms(), 1)
                          : options.fragments;
  prep.fragments = make_fragments(basis, molecule.n_atoms(), groups);
  for (const Fragment& frag : prep.fragments) {
    const EmbeddingBasis emb =
        make_bath(prep.p_oao, frag, options.bath_threshold);
    prep.problems.push_back(
        make_embedding(prep.ints, prep.lb, prep.p_oao, emb));
  }
  return prep;
}

Evaluation evaluate(const Prepared& prep, double mu,
                    const FragmentSolver& solver,
                    const std::function<bool(std::size_t)>& mine,
                    par::Comm* comm, const DmetOptions& options) {
  OBS_SPAN("dmet/evaluate");
  Evaluation ev;
  ev.fragment_energies.assign(prep.problems.size(), 0.0);
  ev.fragment_electrons.assign(prep.problems.size(), 0.0);
  if (options.equivalent_fragments && !prep.problems.empty()) {
    OBS_SPAN("dmet/fragment_solve");
    fragment_solve_counter().add();
    const EmbeddingProblem& prob = prep.problems[0];
    const chem::MoIntegrals solver_mo =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    const FragmentSolution sol = solver(prob, solver_mo);
    for (std::size_t f = 0; f < prep.problems.size(); ++f) {
      ev.fragment_energies[f] = sol.energy;
      ev.fragment_electrons[f] = sol.electrons;
      ev.energy += sol.energy;
      ev.electrons += sol.electrons;
    }
    return ev;
  }
  // Non-equivalent fragments solve independently: fan this rank's share out
  // on the shared-memory pool (fragment solves nest VQE term sweeps — the
  // pool's caller-runs waiting keeps that safe). Each solve writes its own
  // slot; the index-order reduction below is thread-count independent.
  std::vector<std::size_t> todo;
  for (std::size_t f = 0; f < prep.problems.size(); ++f)
    if (mine(f)) todo.push_back(f);
  par::ParallelOptions opts = options.parallel;
  opts.grain = 1;  // one fragment solve is a large unit of work
  par::parallel_for(opts, 0, todo.size(), [&](std::size_t t) {
    const std::size_t f = todo[t];
    OBS_SPAN("dmet/fragment_solve");
    fragment_solve_counter().add();
    const EmbeddingProblem& prob = prep.problems[f];
    const chem::MoIntegrals solver_mo =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    const FragmentSolution sol = solver(prob, solver_mo);
    ev.fragment_energies[f] = sol.energy;
    ev.fragment_electrons[f] = sol.electrons;
  });
  if (comm) {
    // Level-1 reduction: one scalar per fragment (§IV-C).
    comm->allreduce_sum(ev.fragment_energies.data(),
                        ev.fragment_energies.size());
    comm->allreduce_sum(ev.fragment_electrons.data(),
                        ev.fragment_electrons.size());
  }
  for (std::size_t f = 0; f < prep.problems.size(); ++f) {
    ev.energy += ev.fragment_energies[f];
    ev.electrons += ev.fragment_electrons[f];
  }
  return ev;
}

// The chemical-potential loop as an explicit state machine. Each step
// performs at most one µ-evaluation (one full fragment-solve sweep), and
// everything step k+1 reads lives in MuLoopState, so the checkpoint layer can
// persist the fit between any two sweeps and resume it bit-identically. The
// evaluation order is exactly the historic control flow: initial µ=0 sweep,
// bracket endpoints, per-side expansions, then bisection.
struct MuLoopState {
  enum Phase : int {
    kInit = 0,
    kEvalLo,
    kEvalHi,
    kExpandLo,
    kExpandHi,
    kBisect,
    kDone,
  };
  int phase = kInit;
  double mu = 0.0, lo = 0.0, hi = 0.0;
  int mu_iterations = 0;  ///< µ-evaluations performed (global across resumes)
  int cycle = 0;          ///< run-report cycle counter
  int lo_expansions = 0, hi_expansions = 0, bisect_iterations = 0;
  bool bracket_failed = false;
  Evaluation ev, ev_lo, ev_hi;  ///< per-fragment solutions of the last sweeps
};

constexpr const char* kSnapshotKind = "dmet";

void write_evaluation(ckpt::ByteWriter& w, const Evaluation& ev) {
  w.f64(ev.energy);
  w.f64(ev.electrons);
  w.vec(ev.fragment_energies);
  w.vec(ev.fragment_electrons);
}

Evaluation read_evaluation(ckpt::ByteReader& r) {
  Evaluation ev;
  ev.energy = r.f64();
  ev.electrons = r.f64();
  ev.fragment_energies = r.vec_f64();
  ev.fragment_electrons = r.vec_f64();
  return ev;
}

ckpt::Snapshot encode_dmet_snapshot(const MuLoopState& st,
                                    std::size_t n_fragments) {
  ckpt::Snapshot snap;
  ckpt::ByteWriter meta;
  meta.str(kSnapshotKind);
  meta.u64(n_fragments);
  snap.set("meta", meta.take());
  ckpt::ByteWriter w;
  w.i32(st.phase);
  w.f64(st.mu);
  w.f64(st.lo);
  w.f64(st.hi);
  w.i32(st.mu_iterations);
  w.i32(st.cycle);
  w.i32(st.lo_expansions);
  w.i32(st.hi_expansions);
  w.i32(st.bisect_iterations);
  w.b(st.bracket_failed);
  write_evaluation(w, st.ev);
  write_evaluation(w, st.ev_lo);
  write_evaluation(w, st.ev_hi);
  snap.set("mu_loop", w.take());
  return snap;
}

void decode_dmet_snapshot(const ckpt::Snapshot& snap, std::size_t n_fragments,
                          MuLoopState& st) {
  ckpt::ByteReader meta(snap.at("meta"));
  require(meta.str() == kSnapshotKind,
          "dmet: snapshot was not written by a DMET run");
  require(meta.u64() == n_fragments,
          "dmet: snapshot fragment count mismatch");
  ckpt::ByteReader r(snap.at("mu_loop"));
  st.phase = r.i32();
  require(st.phase >= MuLoopState::kInit && st.phase <= MuLoopState::kDone,
          "dmet: snapshot µ-loop phase out of range");
  st.mu = r.f64();
  st.lo = r.f64();
  st.hi = r.f64();
  st.mu_iterations = r.i32();
  st.cycle = r.i32();
  st.lo_expansions = r.i32();
  st.hi_expansions = r.i32();
  st.bisect_iterations = r.i32();
  st.bracket_failed = r.b();
  st.ev = read_evaluation(r);
  st.ev_lo = read_evaluation(r);
  st.ev_hi = read_evaluation(r);
}

// Advances the fit by one transition; returns true when a µ-evaluation was
// performed (the checkpointable unit of work).
template <typename EvalFn>
bool mu_loop_step(MuLoopState& st, const Prepared& prep, double target,
                  const DmetOptions& options, const EvalFn& eval) {
  switch (st.phase) {
    case MuLoopState::kInit:
      st.mu = 0.0;
      st.ev = eval(st.mu);
      if (options.fit_chemical_potential &&
          std::abs(st.ev.electrons - target) > options.electron_tolerance &&
          prep.problems.size() > 1) {
        // N(mu) is monotonically increasing; bracket the root, then bisect.
        // Each side expands on its own budget — a hard lo search must not
        // starve the hi search (or vice versa).
        st.lo = -options.mu_bracket;
        st.hi = options.mu_bracket;
        st.phase = MuLoopState::kEvalLo;
      } else {
        st.phase = MuLoopState::kDone;
      }
      return true;
    case MuLoopState::kEvalLo:
      st.ev_lo = eval(st.lo);
      st.phase = MuLoopState::kEvalHi;
      return true;
    case MuLoopState::kEvalHi:
      st.ev_hi = eval(st.hi);
      st.phase = MuLoopState::kExpandLo;
      return true;
    case MuLoopState::kExpandLo:
      if (st.ev_lo.electrons > target &&
          st.lo_expansions < options.max_bracket_expansions) {
        st.lo *= 2.0;
        st.ev_lo = eval(st.lo);
        ++st.lo_expansions;
        return true;
      }
      st.phase = MuLoopState::kExpandHi;
      return false;
    case MuLoopState::kExpandHi:
      if (st.ev_hi.electrons < target &&
          st.hi_expansions < options.max_bracket_expansions) {
        st.hi *= 2.0;
        st.ev_hi = eval(st.hi);
        ++st.hi_expansions;
        return true;
      }
      st.bracket_failed =
          st.ev_lo.electrons > target || st.ev_hi.electrons < target;
      if (st.bracket_failed) {
        // Bisecting an invalid bracket can only walk toward the wrong
        // endpoint; report the failure instead of burning max_mu_iterations
        // solves.
        log::warn("dmet: chemical-potential bracket failed in [" +
                  std::to_string(st.lo) + ", " + std::to_string(st.hi) +
                  "] (target " + std::to_string(target) + " electrons, N(lo)=" +
                  std::to_string(st.ev_lo.electrons) + ", N(hi)=" +
                  std::to_string(st.ev_hi.electrons) + "); result marked "
                  "unconverged");
        st.phase = MuLoopState::kDone;
      } else {
        st.phase = MuLoopState::kBisect;
      }
      return false;
    case MuLoopState::kBisect:
      if (st.bisect_iterations >= options.max_mu_iterations) {
        st.phase = MuLoopState::kDone;
        return false;
      }
      st.mu = 0.5 * (st.lo + st.hi);
      st.ev = eval(st.mu);
      ++st.bisect_iterations;
      if (std::abs(st.ev.electrons - target) <= options.electron_tolerance)
        st.phase = MuLoopState::kDone;
      else if (st.ev.electrons < target)
        st.lo = st.mu;
      else
        st.hi = st.mu;
      return true;
    case MuLoopState::kDone:
      return false;
  }
  return false;
}

DmetResult drive(const chem::Molecule& molecule, const DmetOptions& options,
                 const FragmentSolver& solver,
                 const std::function<bool(std::size_t)>& mine,
                 par::Comm* comm) {
  OBS_SPAN("dmet/drive");
  const Prepared prep = prepare(molecule, options);
  const double target = double(molecule.n_electrons());

  // Only one rank of a distributed run reports or writes snapshots (all
  // ranks see the same reduced values, so any single rank's records are
  // complete); every rank loads the same snapshot on resume.
  const bool primary = !comm || comm->rank() == 0;
  obs::RunReport& sink = obs::RunReport::global();
  const bool reporting = sink.is_open() && primary;

  MuLoopState st;
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (options.checkpoint.enabled()) {
    manager = std::make_unique<ckpt::CheckpointManager>(options.checkpoint,
                                                        /*writer=*/primary);
    if (const auto snap = manager->load_latest_valid())
      decode_dmet_snapshot(*snap, prep.problems.size(), st);
  }

  auto eval = [&](double mu_value) {
    Evaluation ev = evaluate(prep, mu_value, solver, mine, comm, options);
    if (reporting)
      sink.record("dmet_cycle",
                  {{"cycle", st.cycle},
                   {"mu", mu_value},
                   {"energy", ev.energy},
                   {"electrons", ev.electrons},
                   {"residual", ev.electrons - target},
                   {"fragment_energies", ev.fragment_energies},
                   {"fragment_electrons", ev.fragment_electrons}});
    ++st.cycle;
    ++st.mu_iterations;
    return ev;
  };

  while (st.phase != MuLoopState::kDone) {
    const bool evaluated = mu_loop_step(st, prep, target, options, eval);
    if (manager && evaluated && manager->due(st.mu_iterations, false)) {
      OBS_SPAN("ckpt/save");
      manager->save(st.mu_iterations,
                    encode_dmet_snapshot(st, prep.problems.size()));
    }
  }
  if (manager) {
    // Terminal snapshot: a rerun resumes to the finished state instead of
    // recomputing the fit.
    OBS_SPAN("ckpt/save");
    manager->save(st.mu_iterations,
                  encode_dmet_snapshot(st, prep.problems.size()));
  }

  DmetResult result;
  result.hf_energy = prep.hf_energy;
  result.mu_iterations = st.mu_iterations;
  result.converged =
      !st.bracket_failed &&
      (std::abs(st.ev.electrons - target) <= options.electron_tolerance ||
       !options.fit_chemical_potential || prep.problems.size() == 1);
  result.mu = st.mu;
  result.total_electrons = st.ev.electrons;
  result.fragment_energies = st.ev.fragment_energies;
  result.fragment_electrons = st.ev.fragment_electrons;
  result.energy = st.ev.energy + molecule.nuclear_repulsion();
  if (reporting)
    sink.record("dmet_result", {{"converged", result.converged},
                                {"energy", result.energy},
                                {"hf_energy", result.hf_energy},
                                {"mu", result.mu},
                                {"mu_iterations", result.mu_iterations},
                                {"total_electrons", result.total_electrons}});
  return result;
}

}  // namespace

DmetResult run_dmet(const chem::Molecule& molecule, const DmetOptions& options,
                    const FragmentSolver& solver) {
  return drive(molecule, options, solver, [](std::size_t) { return true; },
               nullptr);
}

DmetResult run_dmet_distributed(const chem::Molecule& molecule,
                                const DmetOptions& options,
                                const FragmentSolver& solver, par::Comm& comm,
                                int groups) {
  require(groups >= 1 && groups <= comm.size(),
          "run_dmet_distributed: bad group count");
  // Split ranks into `groups` sub-communicators; group g owns fragments
  // f with f % groups == g, and only the group's rank 0 contributes values
  // (the other ranks of the group mirror the computation deterministically).
  const int color = comm.rank() % groups;
  par::Comm sub = comm.split(color, comm.rank());
  auto mine = [&](std::size_t f) {
    return int(f % std::size_t(groups)) == color && sub.rank() == 0;
  };
  return drive(molecule, options, solver, mine, &comm);
}

}  // namespace q2::dmet
