#include "dmet/dmet_driver.hpp"

#include <cmath>
#include <string>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/mps.hpp"

namespace q2::dmet {
namespace {

obs::Counter& fragment_solve_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("dmet.fragment_solves");
  return c;
}

}  // namespace

FragmentSolver make_fci_solver() {
  return [](const EmbeddingProblem& prob, const chem::MoIntegrals& solver_mo) {
    const chem::FciResult gs =
        chem::fci_ground_state(solver_mo, prob.n_alpha, prob.n_beta);
    require(gs.converged, "dmet/fci: fragment solve did not converge");
    const chem::FciSpace space(solver_mo.n_orbitals(), prob.n_alpha,
                               prob.n_beta);

    const chem::MoIntegrals ex =
        fragment_weighted_integrals(prob.energy, prob.fragment_orbitals);
    FragmentSolution sol;
    sol.energy = chem::fci_expectation(space, chem::to_spin_orbitals(ex), gs.ci);
    const la::RMatrix rdm = space.one_rdm(gs.ci);
    for (std::size_t f : prob.fragment_orbitals) sol.electrons += rdm(f, f);
    return sol;
  };
}

FragmentSolver make_vqe_solver(const vqe::VqeOptions& options) {
  return [options](const EmbeddingProblem& prob,
                   const chem::MoIntegrals& solver_mo) {
    // The embedding basis (fragment + bath) is not energy ordered, so the
    // UCCSD reference (occupy the first qubits) would be the wrong
    // determinant. Canonicalize with a small in-embedding mean field and
    // rotate every measured operator into the same basis.
    const la::RMatrix u =
        embedding_canonical_orbitals(solver_mo, prob.n_alpha);
    const chem::MoIntegrals canonical = rotate_orbitals(solver_mo, u);

    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(canonical);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(
        canonical.n_orbitals(), prob.n_alpha, prob.n_beta, options.ansatz);
    const vqe::VqeResult r = vqe::run_vqe_on(h, ansatz, options);

    // Fragment energy and electron count are measured on the optimized state
    // as plain Pauli expectations — exactly what hardware would report.
    sim::Mps state(ansatz.circuit.n_qubits(), options.mps);
    state.run(ansatz.circuit, r.parameters);
    const pauli::QubitOperator hx = chem::molecular_qubit_hamiltonian(
        rotate_orbitals(
            fragment_weighted_integrals(prob.energy, prob.fragment_orbitals),
            u));
    // Fragment projector in the canonical basis: P = U^T diag(1_frag) U.
    const std::size_t m = canonical.n_orbitals();
    la::RMatrix proj(m, m);
    for (std::size_t f : prob.fragment_orbitals)
      for (std::size_t p = 0; p < m; ++p)
        for (std::size_t q = 0; q < m; ++q)
          proj(p, q) += u(f, p) * u(f, q);
    const pauli::QubitOperator nx = chem::one_body_qubit_operator(proj);

    FragmentSolution sol;
    sol.energy = state.expectation(hx).real();
    sol.electrons = state.expectation(nx).real();
    return sol;
  };
}

namespace {

struct Evaluation {
  double energy = 0.0;     ///< sum of fragment energies (electronic)
  double electrons = 0.0;  ///< summed fragment electron count
  std::vector<double> fragment_energies, fragment_electrons;
};

// Everything that's independent of mu, precomputed once.
struct Prepared {
  chem::IntegralTables ints;
  LowdinBasis lb;
  la::RMatrix p_oao;
  std::vector<Fragment> fragments;
  std::vector<EmbeddingProblem> problems;
  double hf_energy = 0.0;
};

Prepared prepare(const chem::Molecule& molecule, const DmetOptions& options) {
  Prepared prep;
  const chem::BasisSet basis = chem::BasisSet::build(molecule, options.basis);
  prep.ints = chem::compute_integrals(molecule, basis);
  const chem::ScfResult scf = chem::rhf(molecule, basis, prep.ints);
  require(scf.converged, "run_dmet: RHF did not converge");
  prep.hf_energy = scf.energy;

  prep.lb = make_lowdin(prep.ints.overlap);
  prep.p_oao = oao_density(prep.lb, scf.density);

  const auto groups = options.fragments.empty()
                          ? uniform_atom_groups(molecule.n_atoms(), 1)
                          : options.fragments;
  prep.fragments = make_fragments(basis, molecule.n_atoms(), groups);
  for (const Fragment& frag : prep.fragments) {
    const EmbeddingBasis emb =
        make_bath(prep.p_oao, frag, options.bath_threshold);
    prep.problems.push_back(
        make_embedding(prep.ints, prep.lb, prep.p_oao, emb));
  }
  return prep;
}

Evaluation evaluate(const Prepared& prep, double mu,
                    const FragmentSolver& solver,
                    const std::function<bool(std::size_t)>& mine,
                    par::Comm* comm, const DmetOptions& options) {
  OBS_SPAN("dmet/evaluate");
  Evaluation ev;
  ev.fragment_energies.assign(prep.problems.size(), 0.0);
  ev.fragment_electrons.assign(prep.problems.size(), 0.0);
  if (options.equivalent_fragments && !prep.problems.empty()) {
    OBS_SPAN("dmet/fragment_solve");
    fragment_solve_counter().add();
    const EmbeddingProblem& prob = prep.problems[0];
    const chem::MoIntegrals solver_mo =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    const FragmentSolution sol = solver(prob, solver_mo);
    for (std::size_t f = 0; f < prep.problems.size(); ++f) {
      ev.fragment_energies[f] = sol.energy;
      ev.fragment_electrons[f] = sol.electrons;
      ev.energy += sol.energy;
      ev.electrons += sol.electrons;
    }
    return ev;
  }
  // Non-equivalent fragments solve independently: fan this rank's share out
  // on the shared-memory pool (fragment solves nest VQE term sweeps — the
  // pool's caller-runs waiting keeps that safe). Each solve writes its own
  // slot; the index-order reduction below is thread-count independent.
  std::vector<std::size_t> todo;
  for (std::size_t f = 0; f < prep.problems.size(); ++f)
    if (mine(f)) todo.push_back(f);
  par::ParallelOptions opts = options.parallel;
  opts.grain = 1;  // one fragment solve is a large unit of work
  par::parallel_for(opts, 0, todo.size(), [&](std::size_t t) {
    const std::size_t f = todo[t];
    OBS_SPAN("dmet/fragment_solve");
    fragment_solve_counter().add();
    const EmbeddingProblem& prob = prep.problems[f];
    const chem::MoIntegrals solver_mo =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    const FragmentSolution sol = solver(prob, solver_mo);
    ev.fragment_energies[f] = sol.energy;
    ev.fragment_electrons[f] = sol.electrons;
  });
  if (comm) {
    // Level-1 reduction: one scalar per fragment (§IV-C).
    comm->allreduce_sum(ev.fragment_energies.data(),
                        ev.fragment_energies.size());
    comm->allreduce_sum(ev.fragment_electrons.data(),
                        ev.fragment_electrons.size());
  }
  for (std::size_t f = 0; f < prep.problems.size(); ++f) {
    ev.energy += ev.fragment_energies[f];
    ev.electrons += ev.fragment_electrons[f];
  }
  return ev;
}

DmetResult drive(const chem::Molecule& molecule, const DmetOptions& options,
                 const FragmentSolver& solver,
                 const std::function<bool(std::size_t)>& mine,
                 par::Comm* comm) {
  OBS_SPAN("dmet/drive");
  const Prepared prep = prepare(molecule, options);
  const double target = double(molecule.n_electrons());

  // Only one rank of a distributed run reports (all ranks see the same
  // reduced values, so any single rank's records are complete).
  obs::RunReport& sink = obs::RunReport::global();
  const bool reporting = sink.is_open() && (!comm || comm->rank() == 0);
  int cycle = 0;
  auto eval_at = [&](double mu_value) {
    Evaluation ev = evaluate(prep, mu_value, solver, mine, comm, options);
    if (reporting)
      sink.record("dmet_cycle",
                  {{"cycle", cycle},
                   {"mu", mu_value},
                   {"energy", ev.energy},
                   {"electrons", ev.electrons},
                   {"residual", ev.electrons - target},
                   {"fragment_energies", ev.fragment_energies},
                   {"fragment_electrons", ev.fragment_electrons}});
    ++cycle;
    return ev;
  };

  DmetResult result;
  result.hf_energy = prep.hf_energy;

  double mu = 0.0;
  Evaluation ev = eval_at(mu);
  result.mu_iterations = 1;

  bool bracket_failed = false;
  if (options.fit_chemical_potential &&
      std::abs(ev.electrons - target) > options.electron_tolerance &&
      prep.problems.size() > 1) {
    // N(mu) is monotonically increasing; bracket the root, then bisect. Each
    // side expands on its own budget — a hard lo search must not starve the
    // hi search (or vice versa).
    double lo = -options.mu_bracket, hi = options.mu_bracket;
    Evaluation ev_lo = eval_at(lo);
    Evaluation ev_hi = eval_at(hi);
    result.mu_iterations += 2;
    int lo_expansions = 0;
    while (ev_lo.electrons > target &&
           lo_expansions < options.max_bracket_expansions) {
      lo *= 2.0;
      ev_lo = eval_at(lo);
      ++result.mu_iterations;
      ++lo_expansions;
    }
    int hi_expansions = 0;
    while (ev_hi.electrons < target &&
           hi_expansions < options.max_bracket_expansions) {
      hi *= 2.0;
      ev_hi = eval_at(hi);
      ++result.mu_iterations;
      ++hi_expansions;
    }
    bracket_failed =
        ev_lo.electrons > target || ev_hi.electrons < target;
    if (bracket_failed) {
      // Bisecting an invalid bracket can only walk toward the wrong endpoint;
      // report the failure instead of burning max_mu_iterations solves.
      log::warn("dmet: chemical-potential bracket failed in [" +
                std::to_string(lo) + ", " + std::to_string(hi) +
                "] (target " + std::to_string(target) + " electrons, N(lo)=" +
                std::to_string(ev_lo.electrons) + ", N(hi)=" +
                std::to_string(ev_hi.electrons) + "); result marked "
                "unconverged");
    } else {
      for (int it = 0; it < options.max_mu_iterations; ++it) {
        mu = 0.5 * (lo + hi);
        ev = eval_at(mu);
        ++result.mu_iterations;
        if (std::abs(ev.electrons - target) <= options.electron_tolerance)
          break;
        if (ev.electrons < target)
          lo = mu;
        else
          hi = mu;
      }
    }
  }

  result.converged =
      !bracket_failed &&
      (std::abs(ev.electrons - target) <= options.electron_tolerance ||
       !options.fit_chemical_potential || prep.problems.size() == 1);
  result.mu = mu;
  result.total_electrons = ev.electrons;
  result.fragment_energies = ev.fragment_energies;
  result.fragment_electrons = ev.fragment_electrons;
  result.energy = ev.energy + molecule.nuclear_repulsion();
  if (reporting)
    sink.record("dmet_result", {{"converged", result.converged},
                                {"energy", result.energy},
                                {"hf_energy", result.hf_energy},
                                {"mu", result.mu},
                                {"mu_iterations", result.mu_iterations},
                                {"total_electrons", result.total_electrons}});
  return result;
}

}  // namespace

DmetResult run_dmet(const chem::Molecule& molecule, const DmetOptions& options,
                    const FragmentSolver& solver) {
  return drive(molecule, options, solver, [](std::size_t) { return true; },
               nullptr);
}

DmetResult run_dmet_distributed(const chem::Molecule& molecule,
                                const DmetOptions& options,
                                const FragmentSolver& solver, par::Comm& comm,
                                int groups) {
  require(groups >= 1 && groups <= comm.size(),
          "run_dmet_distributed: bad group count");
  // Split ranks into `groups` sub-communicators; group g owns fragments
  // f with f % groups == g, and only the group's rank 0 contributes values
  // (the other ranks of the group mirror the computation deterministically).
  const int color = comm.rank() % groups;
  par::Comm sub = comm.split(color, comm.rank());
  auto mine = [&](std::size_t f) {
    return int(f % std::size_t(groups)) == color && sub.rank() == 0;
  };
  return drive(molecule, options, solver, mine, &comm);
}

}  // namespace q2::dmet
