// Fragment definitions: groups of atoms, resolved to the OAO indices their
// basis functions occupy (DMET Fig. 3, step 2).
#pragma once

#include <vector>

#include "chem/basis.hpp"

namespace q2::dmet {

struct Fragment {
  std::vector<int> atoms;
  std::vector<std::size_t> orbitals;  ///< OAO indices of the fragment
};

/// Resolve atom groups to fragments. Every atom must appear exactly once.
std::vector<Fragment> make_fragments(const chem::BasisSet& basis,
                                     std::size_t n_atoms,
                                     const std::vector<std::vector<int>>& groups);

/// Convenience: consecutive groups of `atoms_per_fragment` atoms (the
/// paper's 2-atom hydrogen fragments).
std::vector<std::vector<int>> uniform_atom_groups(std::size_t n_atoms,
                                                  std::size_t atoms_per_fragment);

}  // namespace q2::dmet
