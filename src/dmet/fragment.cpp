#include "dmet/fragment.hpp"

#include <vector>

#include "common/types.hpp"

namespace q2::dmet {

std::vector<Fragment> make_fragments(
    const chem::BasisSet& basis, std::size_t n_atoms,
    const std::vector<std::vector<int>>& groups) {
  std::vector<bool> seen(n_atoms, false);
  std::vector<Fragment> fragments;
  for (const auto& group : groups) {
    Fragment f;
    f.atoms = group;
    for (int atom : group) {
      require(atom >= 0 && std::size_t(atom) < n_atoms,
              "make_fragments: atom index out of range");
      require(!seen[std::size_t(atom)], "make_fragments: atom in two fragments");
      seen[std::size_t(atom)] = true;
      for (std::size_t idx : basis.functions_on_atom(atom))
        f.orbitals.push_back(idx);
    }
    fragments.push_back(std::move(f));
  }
  for (bool s : seen) require(s, "make_fragments: atom not covered");
  return fragments;
}

std::vector<std::vector<int>> uniform_atom_groups(
    std::size_t n_atoms, std::size_t atoms_per_fragment) {
  require(atoms_per_fragment >= 1, "uniform_atom_groups: empty fragments");
  std::vector<std::vector<int>> groups;
  for (std::size_t start = 0; start < n_atoms; start += atoms_per_fragment) {
    std::vector<int> g;
    for (std::size_t a = start;
         a < std::min(n_atoms, start + atoms_per_fragment); ++a)
      g.push_back(int(a));
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace q2::dmet
