#include "dmet/bath.hpp"

#include <algorithm>

#include "linalg/svd.hpp"

namespace q2::dmet {

EmbeddingBasis make_bath(const la::RMatrix& p_oao, const Fragment& fragment,
                         double threshold) {
  const std::size_t n = p_oao.rows();
  const std::size_t nf = fragment.orbitals.size();
  require(nf >= 1 && nf <= n, "make_bath: bad fragment");

  std::vector<bool> in_frag(n, false);
  for (std::size_t o : fragment.orbitals) in_frag[o] = true;
  std::vector<std::size_t> env;
  for (std::size_t o = 0; o < n; ++o)
    if (!in_frag[o]) env.push_back(o);

  // Environment-fragment block of the mean-field RDM.
  la::CMatrix b(env.size(), nf);
  for (std::size_t r = 0; r < env.size(); ++r)
    for (std::size_t c = 0; c < nf; ++c)
      b(r, c) = p_oao(env[r], fragment.orbitals[c]);

  EmbeddingBasis emb;
  emb.n_fragment = nf;
  std::vector<std::vector<double>> bath_vecs;  // in env coordinates
  if (!env.empty()) {
    const la::SvdResult f = la::svd(b);
    for (std::size_t k = 0; k < f.s.size(); ++k) {
      if (f.s[k] < threshold) continue;
      std::vector<double> v(env.size());
      for (std::size_t r = 0; r < env.size(); ++r) v[r] = f.u(r, k).real();
      bath_vecs.push_back(std::move(v));
      emb.bath_occupations.push_back(f.s[k]);
    }
  }
  emb.n_bath = bath_vecs.size();

  emb.w = la::RMatrix(n, nf + emb.n_bath);
  for (std::size_t c = 0; c < nf; ++c) emb.w(fragment.orbitals[c], c) = 1.0;
  for (std::size_t k = 0; k < emb.n_bath; ++k)
    for (std::size_t r = 0; r < env.size(); ++r)
      emb.w(env[r], nf + k) = bath_vecs[k][r];
  return emb;
}

}  // namespace q2::dmet
