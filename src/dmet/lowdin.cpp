#include "dmet/lowdin.hpp"

#include <cmath>

#include "linalg/eigh.hpp"
#include "linalg/gemm.hpp"

namespace q2::dmet {

LowdinBasis make_lowdin(const la::RMatrix& overlap) {
  const la::EighResultReal eg = la::eigh(overlap);
  const std::size_t n = overlap.rows();
  LowdinBasis lb;
  lb.s_half = la::RMatrix(n, n);
  lb.s_inv_half = la::RMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    require(eg.values[k] > 1e-10, "make_lowdin: singular overlap");
    const double sq = std::sqrt(eg.values[k]);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        lb.s_half(r, c) += eg.vectors(r, k) * sq * eg.vectors(c, k);
        lb.s_inv_half(r, c) += eg.vectors(r, k) / sq * eg.vectors(c, k);
      }
  }
  return lb;
}

la::RMatrix oao_density(const LowdinBasis& lb, const la::RMatrix& d_ao) {
  la::RMatrix half = la::matmul(lb.s_half, d_ao);
  la::RMatrix p = la::matmul(half, lb.s_half);
  p *= 0.5;  // per-spin
  return p;
}

}  // namespace q2::dmet
