// Circuit construction: reference-state preparation, Pauli-exponential
// compilation (the building block of Trotterized UCC, Fig. 5), Hadamard-test
// measurement circuits, and the synthetic workload circuits used by the
// figure benches.
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_string.hpp"

namespace q2::circ {

/// X gates on the first `n_electrons` qubits: the Hartree-Fock reference
/// |1...10...0> under the Jordan-Wigner convention.
Circuit hartree_fock_prep(int n_qubits, int n_electrons);

/// Appends gates implementing exp(-i theta/2 * P) with a fixed angle.
void append_pauli_evolution(Circuit& c, const pauli::PauliString& p,
                            double theta);
/// Same, but the RZ angle binds to params[param_index] * scale at run time.
void append_pauli_evolution_param(Circuit& c, const pauli::PauliString& p,
                                  int param_index, double scale);

/// The Hadamard-test measurement part for Pauli string `p`: qubit `ancilla`
/// carries H, controlled-P, H. Measuring <Z_ancilla> afterwards yields
/// Re<psi|P|psi> (paper Fig. 5, the per-Pauli-string circuit tail).
Circuit hadamard_test_measurement(const pauli::PauliString& p, int ancilla);

/// Fig. 2(c) workload: layers of random unitaries entangling `block` (default
/// 4) consecutive qubits, staggered so the state's bond dimension saturates
/// at 2^(block/2+1) regardless of n.
Circuit block_entangling_circuit(int n_qubits, int block, int layers, Rng& rng);

/// Random nearest-neighbour brickwork of two-qubit unitaries (the x86
/// comparison workload of §IV-B).
Circuit brickwork_circuit(int n_qubits, int layers, Rng& rng);

}  // namespace q2::circ
