#include "circuit/routing.hpp"

#include <cstdlib>

namespace q2::circ {

Circuit route_to_nearest_neighbour(const Circuit& c) {
  Circuit out(c.n_qubits());
  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit() || std::abs(g.qubits[0] - g.qubits[1]) == 1) {
      out.append(g);
      continue;
    }
    const int a = g.qubits[0], b = g.qubits[1];
    const int lo = std::min(a, b), hi = std::max(a, b);
    // Bubble the lower qubit up to hi-1.
    for (int q = lo; q < hi - 1; ++q) out.append(make_swap(q, q + 1));
    Gate moved = g;
    moved.qubits[0] = (a == lo) ? hi - 1 : hi;
    moved.qubits[1] = (b == lo) ? hi - 1 : hi;
    out.append(std::move(moved));
    for (int q = hi - 1; q-- > lo;) out.append(make_swap(q, q + 1));
  }
  return out;
}

}  // namespace q2::circ
