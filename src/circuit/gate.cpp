#include "circuit/gate.hpp"

#include <cmath>

namespace q2::circ {
namespace {

constexpr cplx kI{0, 1};

}  // namespace

bool Gate::is_two_qubit() const {
  switch (kind) {
    case GateKind::kCnot:
    case GateKind::kCz:
    case GateKind::kSwap:
    case GateKind::kU2:
      return true;
    default:
      return false;
  }
}

double Gate::angle(const std::vector<double>& params) const {
  if (param_index < 0) return theta;
  require(std::size_t(param_index) < params.size(),
          "Gate::angle: parameter index out of range");
  return param_scale * params[std::size_t(param_index)];
}

std::array<cplx, 4> Gate::matrix1(const std::vector<double>& params) const {
  const double t = angle(params);
  const double c = std::cos(t / 2), s = std::sin(t / 2);
  switch (kind) {
    case GateKind::kX: return {0, 1, 1, 0};
    case GateKind::kY: return {0, -kI, kI, 0};
    case GateKind::kZ: return {1, 0, 0, -1};
    case GateKind::kH: {
      const double r = 1.0 / std::sqrt(2.0);
      return {r, r, r, -r};
    }
    case GateKind::kS: return {1, 0, 0, kI};
    case GateKind::kSdg: return {1, 0, 0, -kI};
    case GateKind::kT: return {1, 0, 0, std::exp(kI * (kPi / 4))};
    case GateKind::kRx: return {c, -kI * s, -kI * s, c};
    case GateKind::kRy: return {c, -s, s, c};
    case GateKind::kRz: return {std::exp(-kI * (t / 2)), 0, 0, std::exp(kI * (t / 2))};
    case GateKind::kU1: {
      require(matrix.size() == 4, "Gate::matrix1: missing U1 payload");
      return {matrix[0], matrix[1], matrix[2], matrix[3]};
    }
    default:
      throw Error("Gate::matrix1: not a single-qubit gate");
  }
}

std::array<cplx, 16> Gate::matrix2(const std::vector<double>& params) const {
  (void)params;
  switch (kind) {
    case GateKind::kCnot:
      // qubits[0] = control is the more significant bit.
      return {1, 0, 0, 0,
              0, 1, 0, 0,
              0, 0, 0, 1,
              0, 0, 1, 0};
    case GateKind::kCz:
      return {1, 0, 0, 0,
              0, 1, 0, 0,
              0, 0, 1, 0,
              0, 0, 0, -1};
    case GateKind::kSwap:
      return {1, 0, 0, 0,
              0, 0, 1, 0,
              0, 1, 0, 0,
              0, 0, 0, 1};
    case GateKind::kU2: {
      require(matrix.size() == 16, "Gate::matrix2: missing U2 payload");
      std::array<cplx, 16> m;
      std::copy(matrix.begin(), matrix.end(), m.begin());
      return m;
    }
    default:
      throw Error("Gate::matrix2: not a two-qubit gate");
  }
}

Gate make_x(int q) { return {GateKind::kX, {q, -1}}; }
Gate make_y(int q) { return {GateKind::kY, {q, -1}}; }
Gate make_z(int q) { return {GateKind::kZ, {q, -1}}; }
Gate make_h(int q) { return {GateKind::kH, {q, -1}}; }
Gate make_s(int q) { return {GateKind::kS, {q, -1}}; }
Gate make_sdg(int q) { return {GateKind::kSdg, {q, -1}}; }
Gate make_t(int q) { return {GateKind::kT, {q, -1}}; }

Gate make_rx(int q, double theta) {
  Gate g{GateKind::kRx, {q, -1}};
  g.theta = theta;
  return g;
}
Gate make_ry(int q, double theta) {
  Gate g{GateKind::kRy, {q, -1}};
  g.theta = theta;
  return g;
}
Gate make_rz(int q, double theta) {
  Gate g{GateKind::kRz, {q, -1}};
  g.theta = theta;
  return g;
}
Gate make_rz_param(int q, int param_index, double scale) {
  Gate g{GateKind::kRz, {q, -1}};
  g.param_index = param_index;
  g.param_scale = scale;
  return g;
}

Gate make_cnot(int control, int target) {
  require(control != target, "make_cnot: control == target");
  return {GateKind::kCnot, {control, target}};
}
Gate make_cz(int a, int b) {
  require(a != b, "make_cz: duplicate qubit");
  return {GateKind::kCz, {a, b}};
}
Gate make_swap(int a, int b) {
  require(a != b, "make_swap: duplicate qubit");
  return {GateKind::kSwap, {a, b}};
}

Gate make_u1(int q, const std::array<cplx, 4>& m) {
  Gate g{GateKind::kU1, {q, -1}};
  g.matrix.assign(m.begin(), m.end());
  return g;
}
Gate make_u2(int a, int b, const std::array<cplx, 16>& m) {
  require(a != b, "make_u2: duplicate qubit");
  Gate g{GateKind::kU2, {a, b}};
  g.matrix.assign(m.begin(), m.end());
  return g;
}

}  // namespace q2::circ
