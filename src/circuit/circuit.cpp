#include "circuit/circuit.hpp"

#include <algorithm>
#include <cstdlib>

namespace q2::circ {

void Circuit::append(Gate g) {
  require(g.qubits[0] >= 0 && g.qubits[0] < n_qubits_,
          "Circuit::append: qubit out of range");
  if (g.is_two_qubit())
    require(g.qubits[1] >= 0 && g.qubits[1] < n_qubits_,
            "Circuit::append: qubit out of range");
  gates_.push_back(std::move(g));
}

void Circuit::append(const Circuit& other) {
  require(other.n_qubits_ <= n_qubits_,
          "Circuit::append: subcircuit has more qubits");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

std::size_t Circuit::two_qubit_gate_count() const {
  return std::size_t(std::count_if(gates_.begin(), gates_.end(),
                                   [](const Gate& g) { return g.is_two_qubit(); }));
}

std::size_t Circuit::parameter_count() const {
  int max_index = -1;
  for (const auto& g : gates_) max_index = std::max(max_index, g.param_index);
  return std::size_t(max_index + 1);
}

std::size_t Circuit::memory_bytes() const {
  std::size_t bytes = sizeof(Circuit) + gates_.capacity() * sizeof(Gate);
  for (const auto& g : gates_) bytes += g.matrix.capacity() * sizeof(cplx);
  return bytes;
}

bool Circuit::is_nearest_neighbour() const {
  for (const auto& g : gates_) {
    if (g.is_two_qubit() && std::abs(g.qubits[0] - g.qubits[1]) != 1)
      return false;
  }
  return true;
}

}  // namespace q2::circ
