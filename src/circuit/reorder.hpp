// Lazy qubit reordering: compiles a logical circuit into the
// nearest-neighbour form the MPS engine consumes while tracking a
// logical→physical qubit permutation instead of materializing every SWAP.
//
// The eager router (`route_to_nearest_neighbour`) brackets each long-range
// two-qubit gate with a full bubble chain both ways — 2·(d−1) SWAPs per gate.
// The compile pass here carries the permutation forward instead: logical SWAP
// gates cost nothing (a relabelling), each long-range gate emits only the
// d−1 SWAPs needed to make it adjacent, back-to-back chains from consecutive
// long-range gates cancel through a peephole, and the circuit ends in
// whatever ordering it ends in. The residual output permutation is returned
// so measurement maps logical Pauli strings onto physical sites instead of
// paying an un-routing SWAP tail.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace q2::circ {

/// A logical→physical qubit placement. `site_of(q)` is the chain site
/// currently holding logical qubit q; `logical_at(s)` is its inverse. The
/// identity permutation is the initial placement of every circuit.
class QubitPermutation {
 public:
  QubitPermutation() = default;
  explicit QubitPermutation(int n_qubits);

  int size() const { return int(site_of_.size()); }
  int site_of(int logical) const;
  int logical_at(int site) const;
  bool is_identity() const;

  /// Effect of a physical SWAP gate on sites (s1, s2): the logical qubits
  /// living there trade places.
  void swap_sites(int s1, int s2);
  /// Effect of a *logical* SWAP gate on qubits (a, b) that is never
  /// materialized: the labels trade places, the sites do not move.
  void swap_logical(int a, int b);

  /// site_of as a flat table (index = logical qubit), the form
  /// pauli::PauliString::permuted and the simulators consume.
  const std::vector<int>& site_of_map() const { return site_of_; }

  bool operator==(const QubitPermutation& o) const {
    return site_of_ == o.site_of_;
  }

 private:
  std::vector<int> site_of_;     // logical qubit -> site
  std::vector<int> logical_at_;  // site -> logical qubit
};

/// Exact work accounting of one compile (all counts are deterministic
/// functions of the input circuit; the same quantities are accumulated into
/// the obs counters "circuit.swaps_materialized", "circuit.swaps_elided" and
/// "circuit.gates_fused").
struct CompileStats {
  std::size_t swaps_eager = 0;         ///< SWAPs the eager router would emit
  std::size_t swaps_materialized = 0;  ///< SWAP gates actually emitted
  std::size_t swaps_elided = 0;        ///< swaps_eager - swaps_materialized
  std::size_t gates_fused = 0;         ///< gates removed by the fusion passes
};

/// A circuit lowered to nearest-neighbour form over *physical sites*, plus
/// the residual logical→physical permutation at its end. Running `gates`
/// from |0...0> produces the permuted state; expectation values of logical
/// observables are taken through `output_perm` (see Mps::run overloads).
struct CompiledCircuit {
  Circuit gates;
  QubitPermutation output_perm;
  CompileStats stats;
};

struct CompileOptions {
  /// Run single-qubit fusion then adjacent two-qubit fusion after
  /// reordering, so absorbed SWAPs become part of fused U4s and the SVD only
  /// ever sees merged two-qubit unitaries.
  bool fuse = true;
};

/// Compile `c` for the MPS engine: lazy reordering + (optionally) gate
/// fusion. Parameter bindings survive compilation — the compiled circuit is
/// built once per ansatz structure and replayed with fresh parameter vectors
/// every iteration. Deterministic: equal inputs produce equal outputs.
CompiledCircuit compile_for_mps(const Circuit& c,
                                const CompileOptions& options = {});

/// Undo a residual permutation on a state vector indexed by physical sites
/// (bit s = site s): returns amplitudes indexed by logical qubits (bit q =
/// logical qubit q). Used by the simulators' to_statevector paths and the
/// cross-validation tests.
std::vector<cplx> unpermute_statevector(const std::vector<cplx>& amps,
                                        const QubitPermutation& perm);

}  // namespace q2::circ
