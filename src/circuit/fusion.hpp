// Gate fusion: absorbs runs of non-parametric single-qubit gates into the
// adjacent two-qubit gates (paper §III-A notes single-qubit gates are
// absorbed via gate fusion, so the MPS engine only ever applies two-qubit
// unitaries). Parametric rotations act as fusion barriers on their qubit,
// preserving the parameter binding.
#pragma once

#include "circuit/circuit.hpp"

namespace q2::circ {

/// Returns an equivalent circuit where every non-parametric single-qubit
/// gate has been fused into a neighbouring two-qubit gate where possible.
Circuit fuse_single_qubit_gates(const Circuit& c);

/// Merges consecutive non-parametric two-qubit gates acting on the same
/// qubit pair into a single U4, commuting each candidate backwards past
/// gates whose support is disjoint from the pair. A parametric gate (or any
/// gate sharing exactly one qubit) on the path is a barrier. Together with
/// the lazy reordering pass this absorbs routing SWAPs into their
/// neighbouring gates, so the SVD runs on merged unitaries.
Circuit fuse_adjacent_two_qubit_gates(const Circuit& c);

}  // namespace q2::circ
