#include "circuit/builder.hpp"

#include "linalg/qr.hpp"

namespace q2::circ {
namespace {

using pauli::P;
using pauli::PauliString;

// Emit the basis changes, CNOT ladder and (caller-supplied) RZ implementing
// exp(-i theta/2 P); `emit_rz` lets the fixed-angle and parametric variants
// share the structure.
template <typename EmitRz>
void pauli_evolution_impl(Circuit& c, const PauliString& p, EmitRz emit_rz) {
  const std::vector<std::size_t> sup = p.support();
  if (sup.empty()) return;  // global phase only; irrelevant for expectation

  // Basis changes into the Z eigenbasis.
  for (std::size_t q : sup) {
    switch (p.get(q)) {
      case P::X: c.append(make_h(int(q))); break;
      case P::Y:
        c.append(make_sdg(int(q)));
        c.append(make_h(int(q)));
        break;
      default: break;
    }
  }
  // Parity ladder onto the last support qubit.
  for (std::size_t i = 0; i + 1 < sup.size(); ++i)
    c.append(make_cnot(int(sup[i]), int(sup[i + 1])));
  emit_rz(int(sup.back()));
  for (std::size_t i = sup.size() - 1; i-- > 0;)
    c.append(make_cnot(int(sup[i]), int(sup[i + 1])));
  // Undo basis changes.
  for (std::size_t q : sup) {
    switch (p.get(q)) {
      case P::X: c.append(make_h(int(q))); break;
      case P::Y:
        c.append(make_h(int(q)));
        c.append(make_s(int(q)));
        break;
      default: break;
    }
  }
}

}  // namespace

Circuit hartree_fock_prep(int n_qubits, int n_electrons) {
  require(n_electrons <= n_qubits, "hartree_fock_prep: too many electrons");
  Circuit c(n_qubits);
  for (int q = 0; q < n_electrons; ++q) c.append(make_x(q));
  return c;
}

void append_pauli_evolution(Circuit& c, const PauliString& p, double theta) {
  pauli_evolution_impl(c, p, [&](int q) { c.append(make_rz(q, theta)); });
}

void append_pauli_evolution_param(Circuit& c, const PauliString& p,
                                  int param_index, double scale) {
  pauli_evolution_impl(
      c, p, [&](int q) { c.append(make_rz_param(q, param_index, scale)); });
}

Circuit hadamard_test_measurement(const pauli::PauliString& p, int ancilla) {
  Circuit c(ancilla + 1);
  c.append(make_h(ancilla));
  for (std::size_t q : p.support()) {
    switch (p.get(q)) {
      case P::X:
        c.append(make_cnot(ancilla, int(q)));
        break;
      case P::Y:
        // controlled-Y = (I (x) S) CX (I (x) Sdg)
        c.append(make_sdg(int(q)));
        c.append(make_cnot(ancilla, int(q)));
        c.append(make_s(int(q)));
        break;
      case P::Z:
        c.append(make_cz(ancilla, int(q)));
        break;
      default: break;
    }
  }
  c.append(make_h(ancilla));
  return c;
}

namespace {

std::array<cplx, 16> random_two_qubit_unitary(Rng& rng) {
  const la::CMatrix u = la::random_unitary(4, rng);
  std::array<cplx, 16> m;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) m[i * 4 + j] = u(i, j);
  return m;
}

// Entangle qubits [s, s+block) with a short brickwork of random two-qubit
// unitaries — a dense unitary on the block, compiled to two-qubit gates.
void append_block_unitary(Circuit& c, int s, int block, Rng& rng) {
  for (int round = 0; round < 2; ++round) {
    for (int q = s + (round % 2); q + 1 < s + block; q += 2)
      c.append(make_u2(q, q + 1, random_two_qubit_unitary(rng)));
  }
}

}  // namespace

Circuit block_entangling_circuit(int n_qubits, int block, int layers, Rng& rng) {
  require(block >= 2 && block <= n_qubits, "block_entangling_circuit: bad block");
  Circuit c(n_qubits);
  for (int layer = 0; layer < layers; ++layer) {
    for (int s = 0; s + block <= n_qubits; s += block)
      append_block_unitary(c, s, block, rng);
    // Staggered second sweep couples neighbouring blocks, exactly the
    // "correlations between neighbouring orbitals" structure of Fig. 2(c).
    for (int s = block / 2; s + block <= n_qubits; s += block)
      append_block_unitary(c, s, block, rng);
  }
  return c;
}

Circuit brickwork_circuit(int n_qubits, int layers, Rng& rng) {
  Circuit c(n_qubits);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = layer % 2; q + 1 < n_qubits; q += 2)
      c.append(make_u2(q, q + 1, random_two_qubit_unitary(rng)));
  }
  return c;
}

}  // namespace q2::circ
