#include "circuit/fusion.hpp"

#include <optional>

namespace q2::circ {
namespace {

using Mat2 = std::array<cplx, 4>;
using Mat4 = std::array<cplx, 16>;

Mat2 mul2(const Mat2& a, const Mat2& b) {
  Mat2 c{};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int k = 0; k < 2; ++k) c[i * 2 + j] += a[i * 2 + k] * b[k * 2 + j];
  return c;
}

Mat4 mul4(const Mat4& a, const Mat4& b) {
  Mat4 c{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 4; ++k) c[i * 4 + j] += a[i * 4 + k] * b[k * 4 + j];
  return c;
}

/// kron in the (hi, lo) bit convention used by Gate::matrix2: hi = qubits[0].
Mat4 kron(const Mat2& hi, const Mat2& lo) {
  Mat4 m{};
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c)
        for (int d = 0; d < 2; ++d)
          m[(a * 2 + c) * 4 + (b * 2 + d)] = hi[a * 2 + b] * lo[c * 2 + d];
  return m;
}

constexpr Mat2 kId2{1, 0, 0, 1};

/// Swaps the roles of the two bits in a 4x4 unitary: reindexes rows and
/// columns through (b1 b0) -> (b0 b1), turning a matrix in (hi, lo) order
/// into the same operator in (lo, hi) order.
Mat4 exchange_bits(const Mat4& m) {
  auto sw = [](int i) { return ((i & 1) << 1) | ((i >> 1) & 1); };
  Mat4 r{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) r[i * 4 + j] = m[sw(i) * 4 + sw(j)];
  return r;
}

/// Gate matrix in the (hi = `hi_qubit`) bit convention, regardless of how
/// the gate stores its qubit order.
Mat4 matrix2_as(const Gate& g, int hi_qubit) {
  const Mat4 m = g.matrix2();
  return g.qubits[0] == hi_qubit ? m : exchange_bits(m);
}

}  // namespace

Circuit fuse_single_qubit_gates(const Circuit& c) {
  Circuit out(c.n_qubits());
  // pending[q]: accumulated single-qubit unitary waiting to be absorbed.
  std::vector<std::optional<Mat2>> pending(c.n_qubits());

  auto flush = [&](int q) {
    if (pending[q]) {
      out.append(make_u1(q, *pending[q]));
      pending[q].reset();
    }
  };

  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit()) {
      if (g.is_parametric()) {
        // Parameter bindings can't be folded into a constant matrix.
        flush(g.qubits[0]);
        out.append(g);
      } else {
        const Mat2 m = g.matrix1();
        Mat2& acc = pending[g.qubits[0]] ? *pending[g.qubits[0]]
                                         : pending[g.qubits[0]].emplace(kId2);
        acc = mul2(m, acc);  // later gate multiplies from the left
      }
      continue;
    }
    const int a = g.qubits[0], b = g.qubits[1];
    const Mat2 pa = pending[a].value_or(kId2);
    const Mat2 pb = pending[b].value_or(kId2);
    pending[a].reset();
    pending[b].reset();
    // Pending singles execute before the two-qubit gate: U = G * (pa (x) pb).
    const Mat4 fused = mul4(g.matrix2(), kron(pa, pb));
    out.append(make_u2(a, b, fused));
  }
  for (int q = 0; q < c.n_qubits(); ++q) flush(q);
  return out;
}

Circuit fuse_adjacent_two_qubit_gates(const Circuit& c) {
  std::vector<Gate> gates;
  gates.reserve(c.size());
  for (const Gate& g : c.gates()) {
    if (g.is_two_qubit() && !g.is_parametric()) {
      const int a = g.qubits[0], b = g.qubits[1];
      bool fused = false;
      // Walk backwards past gates that don't touch {a, b}; the first gate
      // that does either fuses (same pair, non-parametric) or is a barrier.
      for (int j = int(gates.size()) - 1; j >= 0; --j) {
        const Gate& prev = gates[std::size_t(j)];
        if (prev.qubits[0] != a && prev.qubits[0] != b &&
            prev.qubits[1] != a && prev.qubits[1] != b)
          continue;
        if (prev.is_two_qubit() && !prev.is_parametric() &&
            std::min(prev.qubits[0], prev.qubits[1]) == std::min(a, b) &&
            std::max(prev.qubits[0], prev.qubits[1]) == std::max(a, b)) {
          const int hi = prev.qubits[0];
          // g executes after prev: U = g * prev, in prev's bit order.
          gates[std::size_t(j)] =
              make_u2(prev.qubits[0], prev.qubits[1],
                      mul4(matrix2_as(g, hi), matrix2_as(prev, hi)));
          fused = true;
        }
        break;
      }
      if (fused) continue;
    }
    gates.push_back(g);
  }
  Circuit out(c.n_qubits());
  for (auto& g : gates) out.append(std::move(g));
  return out;
}

}  // namespace q2::circ
