#include "circuit/fusion.hpp"

#include <optional>

namespace q2::circ {
namespace {

using Mat2 = std::array<cplx, 4>;
using Mat4 = std::array<cplx, 16>;

Mat2 mul2(const Mat2& a, const Mat2& b) {
  Mat2 c{};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int k = 0; k < 2; ++k) c[i * 2 + j] += a[i * 2 + k] * b[k * 2 + j];
  return c;
}

Mat4 mul4(const Mat4& a, const Mat4& b) {
  Mat4 c{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 4; ++k) c[i * 4 + j] += a[i * 4 + k] * b[k * 4 + j];
  return c;
}

/// kron in the (hi, lo) bit convention used by Gate::matrix2: hi = qubits[0].
Mat4 kron(const Mat2& hi, const Mat2& lo) {
  Mat4 m{};
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c)
        for (int d = 0; d < 2; ++d)
          m[(a * 2 + c) * 4 + (b * 2 + d)] = hi[a * 2 + b] * lo[c * 2 + d];
  return m;
}

constexpr Mat2 kId2{1, 0, 0, 1};

}  // namespace

Circuit fuse_single_qubit_gates(const Circuit& c) {
  Circuit out(c.n_qubits());
  // pending[q]: accumulated single-qubit unitary waiting to be absorbed.
  std::vector<std::optional<Mat2>> pending(c.n_qubits());

  auto flush = [&](int q) {
    if (pending[q]) {
      out.append(make_u1(q, *pending[q]));
      pending[q].reset();
    }
  };

  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit()) {
      if (g.is_parametric()) {
        // Parameter bindings can't be folded into a constant matrix.
        flush(g.qubits[0]);
        out.append(g);
      } else {
        const Mat2 m = g.matrix1();
        Mat2& acc = pending[g.qubits[0]] ? *pending[g.qubits[0]]
                                         : pending[g.qubits[0]].emplace(kId2);
        acc = mul2(m, acc);  // later gate multiplies from the left
      }
      continue;
    }
    const int a = g.qubits[0], b = g.qubits[1];
    const Mat2 pa = pending[a].value_or(kId2);
    const Mat2 pb = pending[b].value_or(kId2);
    pending[a].reset();
    pending[b].reset();
    // Pending singles execute before the two-qubit gate: U = G * (pa (x) pb).
    const Mat4 fused = mul4(g.matrix2(), kron(pa, pb));
    out.append(make_u2(a, b, fused));
  }
  for (int q = 0; q < c.n_qubits(); ++q) flush(q);
  return out;
}

}  // namespace q2::circ
