// SWAP routing: rewrites a circuit so every two-qubit gate acts on adjacent
// qubits, which is the form the MPS engine consumes. The UCC parity ladders
// and Hadamard-test controls span arbitrary distances; each long-range gate
// is bracketed by SWAP chains (and the chains are what the paper's MPS
// simulator pays for long-range entangling, too).
#pragma once

#include "circuit/circuit.hpp"

namespace q2::circ {

/// Equivalent nearest-neighbour circuit. Gates already adjacent pass through
/// untouched; a long-range gate on (a, b) becomes swaps moving min(a,b) next
/// to max(a,b), the gate, and the reverse swaps.
Circuit route_to_nearest_neighbour(const Circuit& c);

}  // namespace q2::circ
