// Quantum gate IR. Gates carry either a fixed angle or a binding to an
// ansatz parameter (index + scale), so one circuit object serves every VQE
// iteration — the prerequisite for the paper's memory-efficient scheme.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace q2::circ {

enum class GateKind {
  kX, kY, kZ, kH, kS, kSdg, kT,
  kRx, kRy, kRz,
  kCnot, kCz, kSwap,
  kU1,  ///< arbitrary single-qubit unitary (2x2 matrix payload)
  kU2,  ///< arbitrary two-qubit unitary (4x4 matrix payload)
};

struct Gate {
  GateKind kind;
  /// qubits[0] is the target for single-qubit gates; for two-qubit gates
  /// (control, target) for kCnot, symmetric otherwise.
  std::array<int, 2> qubits{-1, -1};
  double theta = 0.0;     ///< rotation angle for kRx/kRy/kRz with no binding
  int param_index = -1;   ///< >= 0: theta = param_scale * params[param_index]
  double param_scale = 1.0;
  std::vector<cplx> matrix;  ///< payload for kU1 (4 entries) / kU2 (16)

  bool is_two_qubit() const;
  bool is_parametric() const { return param_index >= 0; }

  /// Resolved rotation angle under a parameter vector.
  double angle(const std::vector<double>& params) const;

  /// 2x2 unitary (single-qubit gates only), row-major in basis |0>, |1>.
  std::array<cplx, 4> matrix1(const std::vector<double>& params = {}) const;
  /// 4x4 unitary (two-qubit gates only), row-major in basis |q0 q1> with
  /// qubits[0] the more significant bit.
  std::array<cplx, 16> matrix2(const std::vector<double>& params = {}) const;
};

Gate make_x(int q);
Gate make_y(int q);
Gate make_z(int q);
Gate make_h(int q);
Gate make_s(int q);
Gate make_sdg(int q);
Gate make_t(int q);
Gate make_rx(int q, double theta);
Gate make_ry(int q, double theta);
Gate make_rz(int q, double theta);
/// RZ bound to an ansatz parameter: theta = scale * params[index].
Gate make_rz_param(int q, int param_index, double scale);
Gate make_cnot(int control, int target);
Gate make_cz(int a, int b);
Gate make_swap(int a, int b);
Gate make_u1(int q, const std::array<cplx, 4>& m);
Gate make_u2(int a, int b, const std::array<cplx, 16>& m);

}  // namespace q2::circ
