// A quantum circuit: an ordered gate list over n qubits. Parametric gates
// reference an external parameter vector, so the ansatz circuit is built once
// and reused across optimizer iterations (paper §III-D).
#pragma once

#include <vector>

#include "circuit/gate.hpp"

namespace q2::circ {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int n_qubits) : n_qubits_(n_qubits) {
    require(n_qubits >= 1, "Circuit: need at least one qubit");
  }

  int n_qubits() const { return n_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }

  void append(Gate g);
  void append(const Circuit& other);

  std::size_t two_qubit_gate_count() const;
  std::size_t parameter_count() const;

  /// Approximate memory footprint of the stored gate list in bytes (used by
  /// the Fig. 9 memory-accounting bench).
  std::size_t memory_bytes() const;

  /// True if every two-qubit gate acts on adjacent qubits |a-b| == 1 (the
  /// form the MPS engine consumes).
  bool is_nearest_neighbour() const;

 private:
  int n_qubits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace q2::circ
