#include "circuit/reorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "circuit/fusion.hpp"
#include "obs/metrics.hpp"

namespace q2::circ {
namespace {

obs::Counter& swaps_materialized_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("circuit.swaps_materialized");
  return c;
}
obs::Counter& swaps_elided_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("circuit.swaps_elided");
  return c;
}
obs::Counter& gates_fused_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("circuit.gates_fused");
  return c;
}

bool is_swap_on(const Gate& g, int s) {
  return g.kind == GateKind::kSwap &&
         ((g.qubits[0] == s && g.qubits[1] == s + 1) ||
          (g.qubits[0] == s + 1 && g.qubits[1] == s));
}

// SWAPs the eager router materializes for one gate at logical distance d:
// the bubble chain both ways, plus the adjacent SWAP itself for kSwap (which
// the lazy pass never emits at all).
std::size_t eager_swap_cost(const Gate& g) {
  const std::size_t d = std::size_t(std::abs(g.qubits[0] - g.qubits[1]));
  const std::size_t chains = d > 1 ? 2 * (d - 1) : 0;
  return chains + (g.kind == GateKind::kSwap ? 1 : 0);
}

}  // namespace

QubitPermutation::QubitPermutation(int n_qubits)
    : site_of_(std::size_t(std::max(n_qubits, 0))),
      logical_at_(site_of_.size()) {
  require(n_qubits >= 1, "QubitPermutation: need at least one qubit");
  std::iota(site_of_.begin(), site_of_.end(), 0);
  std::iota(logical_at_.begin(), logical_at_.end(), 0);
}

int QubitPermutation::site_of(int logical) const {
  require(logical >= 0 && logical < size(),
          "QubitPermutation::site_of: qubit out of range");
  return site_of_[std::size_t(logical)];
}

int QubitPermutation::logical_at(int site) const {
  require(site >= 0 && site < size(),
          "QubitPermutation::logical_at: site out of range");
  return logical_at_[std::size_t(site)];
}

bool QubitPermutation::is_identity() const {
  for (int q = 0; q < size(); ++q)
    if (site_of_[std::size_t(q)] != q) return false;
  return true;
}

void QubitPermutation::swap_sites(int s1, int s2) {
  require(s1 >= 0 && s1 < size() && s2 >= 0 && s2 < size(),
          "QubitPermutation::swap_sites: site out of range");
  const int a = logical_at_[std::size_t(s1)], b = logical_at_[std::size_t(s2)];
  std::swap(logical_at_[std::size_t(s1)], logical_at_[std::size_t(s2)]);
  std::swap(site_of_[std::size_t(a)], site_of_[std::size_t(b)]);
}

void QubitPermutation::swap_logical(int a, int b) {
  require(a >= 0 && a < size() && b >= 0 && b < size(),
          "QubitPermutation::swap_logical: qubit out of range");
  std::swap(site_of_[std::size_t(a)], site_of_[std::size_t(b)]);
  logical_at_[std::size_t(site_of_[std::size_t(a)])] = a;
  logical_at_[std::size_t(site_of_[std::size_t(b)])] = b;
}

CompiledCircuit compile_for_mps(const Circuit& c,
                                const CompileOptions& options) {
  CompiledCircuit out;
  out.output_perm = QubitPermutation(c.n_qubits());
  QubitPermutation& perm = out.output_perm;

  std::vector<Gate> gates;
  gates.reserve(c.size());

  // Emit swap(s, s+1), cancelling against an identical tail SWAP: two equal
  // adjacent transpositions with nothing between them are the identity, so
  // back-to-back chains from consecutive long-range gates annihilate
  // pairwise. The permutation update happens either way — popping the old
  // SWAP and applying the new one to the tracker compose to no net move.
  auto emit_swap = [&](int s) {
    if (!gates.empty() && is_swap_on(gates.back(), s))
      gates.pop_back();
    else
      gates.push_back(make_swap(s, s + 1));
    perm.swap_sites(s, s + 1);
  };

  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit()) {
      Gate moved = g;
      moved.qubits[0] = perm.site_of(g.qubits[0]);
      gates.push_back(std::move(moved));
      continue;
    }
    out.stats.swaps_eager += eager_swap_cost(g);
    if (g.kind == GateKind::kSwap) {
      // A logical SWAP is free: relabel, emit nothing.
      perm.swap_logical(g.qubits[0], g.qubits[1]);
      continue;
    }
    int pa = perm.site_of(g.qubits[0]), pb = perm.site_of(g.qubits[1]);
    if (std::abs(pa - pb) != 1) {
      const int lo = std::min(pa, pb), hi = std::max(pa, pb);
      // Both endpoints cost d-1 SWAPs to move; the cheaper one is whichever
      // chain's first SWAP cancels against the tail of the emitted stream
      // (the common case after a previous long-range gate parked a qubit
      // here). Default: bubble the lower endpoint up, like the eager router.
      bool move_lo_up = true;
      if (!gates.empty() && is_swap_on(gates.back(), hi - 1))
        move_lo_up = false;
      if (move_lo_up)
        for (int s = lo; s <= hi - 2; ++s) emit_swap(s);
      else
        for (int s = hi - 1; s >= lo + 1; --s) emit_swap(s);
      pa = perm.site_of(g.qubits[0]);
      pb = perm.site_of(g.qubits[1]);
    }
    require(std::abs(pa - pb) == 1, "compile_for_mps: routing failed");
    Gate moved = g;
    moved.qubits[0] = pa;
    moved.qubits[1] = pb;
    gates.push_back(std::move(moved));
  }

  Circuit reordered(c.n_qubits());
  for (auto& g : gates) {
    if (g.kind == GateKind::kSwap) ++out.stats.swaps_materialized;
    reordered.append(std::move(g));
  }
  // Permutation drift can stretch an individual gate, but never below zero
  // in aggregate bookkeeping: clamp so the counter stays monotone.
  out.stats.swaps_elided =
      out.stats.swaps_eager > out.stats.swaps_materialized
          ? out.stats.swaps_eager - out.stats.swaps_materialized
          : 0;

  if (options.fuse) {
    const std::size_t before = reordered.size();
    Circuit fused = fuse_adjacent_two_qubit_gates(
        fuse_single_qubit_gates(reordered));
    out.stats.gates_fused = before - fused.size();
    out.gates = std::move(fused);
  } else {
    out.gates = std::move(reordered);
  }

  swaps_materialized_counter().add(out.stats.swaps_materialized);
  swaps_elided_counter().add(out.stats.swaps_elided);
  gates_fused_counter().add(out.stats.gates_fused);
  return out;
}

std::vector<cplx> unpermute_statevector(const std::vector<cplx>& amps,
                                        const QubitPermutation& perm) {
  const int n = perm.size();
  require(n >= 1 && n <= 28 && amps.size() == (std::size_t(1) << n),
          "unpermute_statevector: amplitude count mismatch");
  if (perm.is_identity()) return amps;
  std::vector<cplx> out(amps.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t j = 0;
    for (int q = 0; q < n; ++q)
      if ((i >> q) & 1) j |= std::size_t(1) << perm.site_of(q);
    out[i] = amps[j];
  }
  return out;
}

}  // namespace q2::circ
