// Analytic performance model of the DMET-MPS-VQE workload on the new Sunway
// machine. This is the documented substitution for the 20-million-core runs:
// per-circuit costs are *measured* on this host (or synthesized from kernel
// flop counts), converted to Sunway process-seconds via the throughput ratio,
// and composed through the same three-level structure the paper describes —
// level 1: fragments over process groups (embarrassingly parallel),
// level 2: Pauli circuits over the ranks of a group (LPT-balanced, with
//          MPI_Bcast of parameters and MPI_Reduce of energies),
// level 3: tensor kernels on the CPE mesh (roofline: flops vs DMA bytes).
#pragma once

#include <vector>

#include "swsim/spec.hpp"

namespace q2::sw {

/// The circuit-evaluation work of one VQE iteration of one fragment.
struct CircuitWorkload {
  std::vector<double> circuit_costs_s;  ///< per-circuit time on one process
  double params_bytes = 15.6e3;  ///< broadcast volume per iteration (§IV-C)
  double result_bytes = 16;      ///< reduced energy contribution per circuit set
};

/// A whole DMET-MPS-VQE job.
struct DmetWorkload {
  std::size_t n_fragments = 1;
  long procs_per_group = 2048;  ///< the paper maps each sub-group to 2048 procs
  CircuitWorkload fragment;     ///< per-fragment circuit set (homogeneous)
  int vqe_iterations = 1;
};

struct ScalingPoint {
  long processes = 0;
  long cores = 0;
  double time_s = 0;
  double speedup = 1;      ///< versus the first point of the series
  double efficiency = 1;   ///< speedup / ideal-speedup (strong) or t0/t (weak)
};

class MachineModel {
 public:
  explicit MachineModel(SunwayMachine machine = {}) : machine_(machine) {}

  const SunwayMachine& machine() const { return machine_; }

  /// Binomial-tree collective time for `bytes` over `procs` ranks.
  double bcast_time(double bytes, long procs) const;
  double reduce_time(double bytes, long procs) const;

  /// Roofline time of a CPE kernel: max(compute, DMA) + spawn overhead.
  double cpe_kernel_time(double flops, double dma_bytes, int num_cpes,
                         double efficiency) const;

  /// One VQE iteration of one fragment spread over `procs` ranks:
  /// LPT makespan of the circuit costs + parameter broadcast + energy reduce.
  double fragment_iteration_time(const CircuitWorkload& w, long procs) const;

  /// Whole-job time on `procs` total processes. Fragments are dealt to
  /// groups of w.procs_per_group ranks in rounds; a final global reduction
  /// accumulates fragment energies (one scalar each, §IV-C).
  double job_time(const DmetWorkload& w, long procs) const;

  /// Strong scaling: fixed workload, growing process counts.
  std::vector<ScalingPoint> strong_scaling(const DmetWorkload& w,
                                           const std::vector<long>& procs) const;

  /// Weak scaling: workloads[i] runs on procs[i]; efficiency = t0 / t_i.
  std::vector<ScalingPoint> weak_scaling(const std::vector<DmetWorkload>& w,
                                         const std::vector<long>& procs) const;

 private:
  SunwayMachine machine_;
};

/// Builds the per-circuit cost vector for a hydrogen-chain fragment from MPS
/// complexity counts: one circuit per Pauli string, cost proportional to the
/// ansatz gate count times D^3 plus the string's measurement sweep. `seed`
/// jitters costs by the observed spread so load balancing is non-trivial.
CircuitWorkload hydrogen_fragment_workload(int qubits_per_fragment,
                                           std::size_t bond_dimension,
                                           double host_seconds_per_gate,
                                           unsigned seed);

}  // namespace q2::sw
