#include "swsim/kernels.hpp"

#include <atomic>
#include <cmath>
#include <numeric>

#include "linalg/gemm.hpp"
#include "linalg/qr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"

namespace q2::sw {
namespace {

obs::Counter& gemm_tile_counter() {
  static obs::Counter& c = obs::Registry::global().counter("swsim.gemm_tiles");
  return c;
}
obs::Counter& svd_sweep_counter() {
  static obs::Counter& c = obs::Registry::global().counter("swsim.svd_sweeps");
  return c;
}

// Largest square tile such that three cplx tiles fit in the LDM budget.
std::size_t tile_size_for(std::size_t ldm_bytes) {
  const std::size_t elems = ldm_bytes / sizeof(cplx);
  std::size_t t = std::size_t(std::sqrt(double(elems) / 3.0));
  return std::max<std::size_t>(8, t & ~std::size_t(7));  // multiple of 8
}

}  // namespace

la::CMatrix gemm_cpe(CpeCluster& cluster, const la::CMatrix& a,
                     const la::CMatrix& b, const SpawnConfig& config) {
  OBS_SPAN("swsim/gemm_cpe");
  require(a.cols() == b.rows(), "gemm_cpe: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  la::CMatrix c(m, n);

  const std::size_t t = tile_size_for(config.ldm_bytes);
  const std::size_t tiles_m = (m + t - 1) / t;
  const std::size_t tiles_n = (n + t - 1) / t;
  const std::size_t total_tiles = tiles_m * tiles_n;
  gemm_tile_counter().add(total_tiles);
  // Tile arithmetic funnels through la::gemm_tile, which charges its own
  // flops; this level charges only the modeled DMA staging traffic (the
  // counter delta over the spawn, attributed to the calling thread).
  const DmaCounters dma_before = cluster.counters();

  cluster.spawn(config, [&](CpeContext& ctx) {
    // Static round-robin tile ownership over the mesh.
    cplx* la_tile = ctx.ldm_alloc<cplx>(t * t);
    cplx* lb_tile = ctx.ldm_alloc<cplx>(t * t);
    cplx* lc_tile = ctx.ldm_alloc<cplx>(t * t);
    for (std::size_t tile = ctx.cpe_id(); tile < total_tiles;
         tile += std::size_t(config.num_cpes)) {
      const std::size_t ti = tile / tiles_n, tj = tile % tiles_n;
      const std::size_t i0 = ti * t, j0 = tj * t;
      const std::size_t mi = std::min(t, m - i0), nj = std::min(t, n - j0);
      std::fill(lc_tile, lc_tile + mi * nj, cplx{});

      for (std::size_t p0 = 0; p0 < k; p0 += t) {
        const std::size_t kp = std::min(t, k - p0);
        // Stage the A and B panels row-by-row (rows are contiguous).
        for (std::size_t i = 0; i < mi; ++i)
          ctx.dma_get(la_tile + i * kp, a.row(i0 + i) + p0, kp * sizeof(cplx));
        for (std::size_t p = 0; p < kp; ++p)
          ctx.dma_get(lb_tile + p * nj, b.row(p0 + p) + j0, nj * sizeof(cplx));
        // In-LDM tile multiply through the shared packed micro-kernel (no
        // zero-skip: 0 * NaN/Inf propagates exactly as in the host GEMM).
        la::gemm_tile(la_tile, kp, lb_tile, nj, lc_tile, nj, mi, kp, nj);
      }
      for (std::size_t i = 0; i < mi; ++i)
        ctx.dma_put(c.row(i0 + i) + j0, lc_tile + i * nj, nj * sizeof(cplx));
    }
  });
  const DmaCounters dma_after = cluster.counters();
  obs::WorkCounter::charge(0, (dma_after.bytes_in - dma_before.bytes_in) +
                                  (dma_after.bytes_out - dma_before.bytes_out));
  return c;
}

namespace {

// One parallel rotation of column pair (p, q) of `a` and `v`, staged through
// the CPE's LDM. Returns the relative off-diagonal magnitude before rotation.
double rotate_pair_cpe(CpeContext& ctx, la::CMatrix& a, la::CMatrix& v,
                       std::size_t p, std::size_t q) {
  const std::size_t m = a.rows(), n = a.cols();
  cplx* colp = ctx.ldm_alloc<cplx>(m);
  cplx* colq = ctx.ldm_alloc<cplx>(m);
  cplx* vp = ctx.ldm_alloc<cplx>(n);
  cplx* vq = ctx.ldm_alloc<cplx>(n);

  // Columns are strided in row-major storage; stage element-wise via a packed
  // gather (one DMA per column in bulk is modeled as m strided descriptors).
  for (std::size_t i = 0; i < m; ++i) {
    colp[i] = a(i, p);
    colq[i] = a(i, q);
  }
  ctx.dma_get(colp, colp, m * sizeof(cplx));  // account the staging traffic
  ctx.dma_get(colq, colq, m * sizeof(cplx));

  double app = 0, aqq = 0;
  cplx apq{};
  for (std::size_t i = 0; i < m; ++i) {
    app += norm2(colp[i]);
    aqq += norm2(colq[i]);
    apq += std::conj(colp[i]) * colq[i];
  }
  const double denom = std::sqrt(app * aqq);
  double rel = 0.0;
  if (denom > 0.0) rel = std::abs(apq) / denom;
  if (rel >= 1e-15) {
    const double absc = std::abs(apq);
    const cplx phase_conj = std::conj(apq) / absc;
    const double theta = 0.5 * std::atan2(2.0 * absc, app - aqq);
    const double cs = std::cos(theta), sn = std::sin(theta);
    const cplx esn = phase_conj * sn, ecs = phase_conj * cs;
    for (std::size_t i = 0; i < m; ++i) {
      const cplx x = colp[i], y = colq[i];
      colp[i] = cs * x + esn * y;
      colq[i] = -sn * x + ecs * y;
    }
    for (std::size_t i = 0; i < n; ++i) {
      vp[i] = v(i, p);
      vq[i] = v(i, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const cplx x = vp[i], y = vq[i];
      vp[i] = cs * x + esn * y;
      vq[i] = -sn * x + ecs * y;
    }
    ctx.dma_put(colp, colp, m * sizeof(cplx));
    ctx.dma_put(colq, colq, m * sizeof(cplx));
    for (std::size_t i = 0; i < m; ++i) {
      a(i, p) = colp[i];
      a(i, q) = colq[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      v(i, p) = vp[i];
      v(i, q) = vq[i];
    }
  }
  ctx.ldm_reset();
  return rel;
}

}  // namespace

la::SvdResult svd_cpe(CpeCluster& cluster, const la::CMatrix& a_in,
                      const SpawnConfig& config) {
  OBS_SPAN("swsim/svd_cpe");
  require(!a_in.empty(), "svd_cpe: empty matrix");
  if (a_in.rows() < a_in.cols()) {
    la::SvdResult t = svd_cpe(cluster, a_in.adjoint(), config);
    la::SvdResult r;
    r.s = std::move(t.s);
    r.u = t.vh.adjoint();
    r.vh = t.u.adjoint();
    return r;
  }

  // Division of labour mirrors the host engine: the MPE factors B = Q R once
  // (Householder QR), the CPE mesh then iterates Jacobi on the small n x n
  // X = R^H — rotations touch n-vectors instead of m-vectors, and the
  // triangular factor converges in far fewer sweeps than raw tall panels.
  const la::QrResult f = la::qr(a_in);
  const std::size_t n = a_in.cols();
  la::CMatrix x = f.r.adjoint();
  la::CMatrix v = la::CMatrix::identity(n);

  // Shared tournament schedule (modulus ordering): pairs within a round are
  // disjoint, so the mesh rotates a whole round concurrently.
  const auto rounds = la::tournament_rounds(n);
  constexpr int kMaxSweeps = 60;
  std::atomic<bool> any_off{false};
  const DmaCounters dma_before = cluster.counters();
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    svd_sweep_counter().add();
    any_off = false;
    for (const auto& round : rounds) {
      // The rotation set is schedule-determined (rel >= the rotate
      // tolerance), so the rotated count — and the work charge below — is
      // identical however the mesh distributes the round.
      std::atomic<std::uint64_t> rotated{0};
      cluster.spawn(config, [&](CpeContext& ctx) {
        for (std::size_t i = ctx.cpe_id(); i < round.size();
             i += std::size_t(config.num_cpes)) {
          const double rel =
              rotate_pair_cpe(ctx, x, v, round[i].first, round[i].second);
          if (rel >= 1e-15) rotated.fetch_add(1, std::memory_order_relaxed);
          if (rel >= 1e-14) any_off = true;
        }
      });
      obs::WorkCounter::charge(
          obs::jacobi_round_flops(round.size(),
                                  rotated.load(std::memory_order_relaxed), n,
                                  n),
          0);
    }
    if (!any_off) break;
  }
  obs::WorkCounter::charge(
      0, cluster.counters().bytes_in - dma_before.bytes_in +
             cluster.counters().bytes_out - dma_before.bytes_out);

  // Column norms of the rotated X are the singular values.
  std::vector<double> s(n);
  for (std::size_t j = 0; j < n; ++j) {
    double nrm = 0;
    for (std::size_t i = 0; i < n; ++i) nrm += norm2(x(i, j));
    s[j] = std::sqrt(nrm);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t p, std::size_t q) { return s[p] > s[q]; });

  // B = Q X^H = (Q V_X) S U_X^H: the left factor takes one more pass over
  // the mesh (gemm_cpe on Q and the sorted rotation accumulator), the right
  // factor falls out of X's columns. A zero singular value leaves its V^H
  // row zero; U stays orthonormal since Q and V_X are exact unitaries.
  la::CMatrix vperm(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < n; ++i) vperm(i, r) = v(i, order[r]);

  la::SvdResult out;
  out.u = gemm_cpe(cluster, f.q, vperm, config);
  out.s.resize(n);
  out.vh = la::CMatrix(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t j = order[r];
    out.s[r] = s[j];
    if (s[j] > 0)
      for (std::size_t i = 0; i < n; ++i)
        out.vh(r, i) = std::conj(x(i, j)) / s[j];
  }
  return out;
}

}  // namespace q2::sw
