// Architectural parameters of the SW26010Pro processor and the new Sunway
// interconnect, as described in the paper's §II-B plus public figures. These
// numbers parameterize both the CPE-cluster runtime emulation and the
// analytic machine model that regenerates the scaling figures.
#pragma once

#include <cstddef>

namespace q2::sw {

struct Sw26010ProSpec {
  // Topology (paper §II-B, Fig. 1).
  int core_groups = 6;        ///< CGs per processor
  int cpes_per_cg = 64;       ///< 8x8 CPE mesh per CG
  int mpes_per_cg = 1;
  std::size_t ldm_bytes = 256 * 1024;   ///< CPE scratch-pad memory
  std::size_t cg_memory_bytes = std::size_t(16) << 30;  ///< 16 GB per CG

  // Throughput (approximate public SW26010Pro figures; the model only needs
  // ratios, not absolutes).
  double cpe_gflops = 14.0;        ///< DP GFLOP/s per CPE
  double mpe_gflops = 14.0;        ///< DP GFLOP/s per MPE
  double gemm_efficiency = 0.75;   ///< fraction of peak reached by swBLAS GEMM
  double svd_efficiency = 0.25;    ///< SVD is memory/latency bound

  // Memory and network.
  double dma_bandwidth_gbs = 51.2;   ///< LDM<->main memory DMA per CG
  double net_bandwidth_gbs = 25.0;   ///< injection bandwidth per process
  double net_latency_s = 1.5e-6;     ///< point-to-point latency
  double spawn_overhead_s = 5e-6;    ///< CPE kernel launch cost

  int cores_per_process() const { return mpes_per_cg + cpes_per_cg; }  // 65
};

/// The whole machine: processes = core groups available to the job.
struct SunwayMachine {
  Sw26010ProSpec processor;
  /// 327,680 processes (CGs) ~ 21.3M cores, the paper's largest run.
  long max_processes = 327'680;
  long cores(long processes) const {
    return processes * processor.cores_per_process();
  }
};

}  // namespace q2::sw
