// Numerical kernels expressed in the CPE programming model: LDM-tiled complex
// GEMM and a round-robin parallel one-sided Jacobi SVD. These are the
// MPE+CPE "optimized versions" of the paper's two hotspots (Fig. 11); the
// MPE-only baselines are the serial kernels in q2::la.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "swsim/cpe_cluster.hpp"

namespace q2::sw {

/// C = A * B computed tile-by-tile on the CPE cluster. Each CPE stages
/// A/B/C tiles through its LDM with explicit DMA, exactly as the Sunway
/// kernel would; tile size is derived from the configured LDM budget.
la::CMatrix gemm_cpe(CpeCluster& cluster, const la::CMatrix& a,
                     const la::CMatrix& b, const SpawnConfig& config = {});

/// QR-preconditioned one-sided Jacobi SVD in the MPE+CPE split: the MPE
/// factors A = QR once, then each sweep's disjoint column pairs of X = R^H
/// (the shared la::tournament_rounds schedule) are rotated in parallel
/// across the CPE mesh, and U = Q V_X is recovered with one gemm_cpe pass.
la::SvdResult svd_cpe(CpeCluster& cluster, const la::CMatrix& a,
                      const SpawnConfig& config = {});

}  // namespace q2::sw
