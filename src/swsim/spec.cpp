#include "swsim/spec.hpp"

// Parameters are data; this TU anchors the header in the library.
