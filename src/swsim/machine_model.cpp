#include "swsim/machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "parallel/scheduler.hpp"

namespace q2::sw {

double MachineModel::bcast_time(double bytes, long procs) const {
  if (procs <= 1) return 0.0;
  const auto& p = machine_.processor;
  const double hops = std::ceil(std::log2(double(procs)));
  return hops * (p.net_latency_s + bytes / (p.net_bandwidth_gbs * 1e9));
}

double MachineModel::reduce_time(double bytes, long procs) const {
  // Same binomial-tree shape as the broadcast.
  return bcast_time(bytes, procs);
}

double MachineModel::cpe_kernel_time(double flops, double dma_bytes,
                                     int num_cpes, double efficiency) const {
  const auto& p = machine_.processor;
  require(num_cpes >= 1, "cpe_kernel_time: need at least one CPE");
  const double compute =
      flops / (double(num_cpes) * p.cpe_gflops * 1e9 * efficiency);
  const double dma = dma_bytes / (p.dma_bandwidth_gbs * 1e9);
  return std::max(compute, dma) + p.spawn_overhead_s;
}

double MachineModel::fragment_iteration_time(const CircuitWorkload& w,
                                             long procs) const {
  if (w.circuit_costs_s.empty()) return 0.0;
  const par::Schedule s =
      par::lpt_schedule(w.circuit_costs_s, std::size_t(std::max(1l, procs)));
  return s.makespan + bcast_time(w.params_bytes, procs) +
         reduce_time(w.result_bytes, procs);
}

double MachineModel::job_time(const DmetWorkload& w, long procs) const {
  require(procs >= 1, "job_time: need processes");
  const long groups = std::max(1l, procs / w.procs_per_group);
  const long group_procs = std::min<long>(procs, w.procs_per_group);
  const double frag_time =
      fragment_iteration_time(w.fragment, group_procs) * w.vqe_iterations;
  const double rounds =
      std::ceil(double(w.n_fragments) / double(groups));
  // Final DMET accumulation: one scalar per fragment reduced across groups.
  const double final_reduce = reduce_time(8.0 * double(w.n_fragments), procs);
  return rounds * frag_time + final_reduce;
}

std::vector<ScalingPoint> MachineModel::strong_scaling(
    const DmetWorkload& w, const std::vector<long>& procs) const {
  std::vector<ScalingPoint> out;
  double t0 = 0;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    ScalingPoint p;
    p.processes = procs[i];
    p.cores = machine_.cores(procs[i]);
    p.time_s = job_time(w, procs[i]);
    if (i == 0) t0 = p.time_s;
    p.speedup = t0 / p.time_s;
    const double ideal = double(procs[i]) / double(procs[0]);
    p.efficiency = p.speedup / ideal;
    out.push_back(p);
  }
  return out;
}

std::vector<ScalingPoint> MachineModel::weak_scaling(
    const std::vector<DmetWorkload>& w, const std::vector<long>& procs) const {
  require(w.size() == procs.size(), "weak_scaling: series length mismatch");
  std::vector<ScalingPoint> out;
  double t0 = 0;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    ScalingPoint p;
    p.processes = procs[i];
    p.cores = machine_.cores(procs[i]);
    p.time_s = job_time(w[i], procs[i]);
    if (i == 0) t0 = p.time_s;
    p.speedup = double(procs[i]) / double(procs[0]);
    p.efficiency = t0 / p.time_s;
    out.push_back(p);
  }
  return out;
}

CircuitWorkload hydrogen_fragment_workload(int qubits_per_fragment,
                                           std::size_t bond_dimension,
                                           double host_seconds_per_gate,
                                           unsigned seed) {
  require(qubits_per_fragment >= 2, "hydrogen_fragment_workload: need qubits");
  CircuitWorkload w;
  const double nq = qubits_per_fragment;
  // O(Nq^4) Pauli strings (paper §III-D); the constant matches the molecular
  // Hamiltonians we build (H2: 15 strings on 4 qubits).
  const std::size_t n_strings = std::size_t(std::max(1.0, 0.0586 * nq * nq * nq * nq));
  // Ansatz gate count for the distance-truncated UCCSD used at scale: a fixed
  // number of two-qubit gates per qubit per Trotter layer.
  const double gates = 60.0 * nq;
  const double d3 = double(bond_dimension) * double(bond_dimension) *
                    double(bond_dimension);
  const double base = gates * d3 * host_seconds_per_gate;

  Rng rng(seed);
  w.circuit_costs_s.resize(n_strings);
  for (auto& c : w.circuit_costs_s) {
    // Measurement sweeps differ by string support; observed spread ~ +-30%.
    c = base * rng.uniform(0.7, 1.3);
  }
  return w;
}

}  // namespace q2::sw
