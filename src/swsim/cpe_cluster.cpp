#include "swsim/cpe_cluster.hpp"

#include <algorithm>
#include <thread>

namespace q2::sw {

CpeCluster::CpeCluster(const Sw26010ProSpec& spec)
    : spec_(spec),
      pool_(std::min<std::size_t>(
          spec.cpes_per_cg,
          std::max(1u, 2 * std::thread::hardware_concurrency()))),
      ldm_(spec.cpes_per_cg) {
  for (auto& l : ldm_) l.resize(spec.ldm_bytes);
}

void CpeCluster::spawn(const SpawnConfig& config, const CpeKernel& kernel) {
  require(config.num_cpes >= 1 && config.num_cpes <= mesh_size(),
          "CpeCluster::spawn: bad num_cpes");
  require(config.ldm_bytes <= spec_.ldm_bytes,
          "CpeCluster::spawn: LDM request exceeds hardware");
  const int mesh_cols = 8;
  // One logical task per CPE; the pool multiplexes them onto the host's
  // threads. LDM buffers are per-CPE, so semantics match the hardware
  // regardless of the multiplexing.
  pool_.parallel_for(0, std::size_t(config.num_cpes), [&](std::size_t id) {
    // The visible LDM is the configured prefix of this CPE's scratch pad.
    CpeContext ctx(int(id), mesh_cols, ldm_[id].data(), config.ldm_bytes,
                   bytes_in_, bytes_out_, transfers_);
    kernel(ctx);
  });
}

}  // namespace q2::sw
