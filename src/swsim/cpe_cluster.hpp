// Emulation of one core group's 8x8 CPE mesh and its SACA-style spawn
// interface. Kernels see the same programming model as on the real hardware:
// a per-CPE scratch-pad ("LDM") of limited size, explicit dma_get/dma_put
// staging between main memory and LDM (with byte accounting), and a mesh
// (row, col) identity. spawn(config, kernel) mirrors the paper's
// `@saca (config...) function (args...)` call form.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"
#include "swsim/spec.hpp"

namespace q2::sw {

struct SpawnConfig {
  int num_cpes = 64;                     ///< CPEs participating (<= mesh size)
  std::size_t ldm_bytes = 256 * 1024;    ///< LDM budget enforced per CPE
};

struct DmaCounters {
  std::uint64_t bytes_in = 0;   ///< main memory -> LDM
  std::uint64_t bytes_out = 0;  ///< LDM -> main memory
  std::uint64_t transfers = 0;
};

class CpeContext {
 public:
  CpeContext(int cpe_id, int mesh_cols, std::byte* ldm, std::size_t ldm_bytes,
             std::atomic<std::uint64_t>& bytes_in,
             std::atomic<std::uint64_t>& bytes_out,
             std::atomic<std::uint64_t>& transfers)
      : cpe_id_(cpe_id),
        mesh_cols_(mesh_cols),
        ldm_(ldm),
        ldm_bytes_(ldm_bytes),
        bytes_in_(bytes_in),
        bytes_out_(bytes_out),
        transfers_(transfers) {}

  int cpe_id() const { return cpe_id_; }
  int row() const { return cpe_id_ / mesh_cols_; }
  int col() const { return cpe_id_ % mesh_cols_; }

  std::byte* ldm() { return ldm_; }
  std::size_t ldm_size() const { return ldm_bytes_; }

  /// DMA main memory -> LDM. `dst` must lie inside this CPE's LDM. A call
  /// with dst == src only accounts the traffic (used by kernels that gather
  /// strided data element-wise but still owe the DMA cost).
  void dma_get(void* dst, const void* src, std::size_t n) {
    check_ldm_range(dst, n);
    if (dst != src) std::memcpy(dst, src, n);
    bytes_in_ += n;
    ++transfers_;
  }
  /// DMA LDM -> main memory. `src` must lie inside this CPE's LDM.
  /// dst == src accounts the traffic only (see dma_get).
  void dma_put(void* dst, const void* src, std::size_t n) {
    check_ldm_range(const_cast<void*>(src), n);
    if (dst != src) std::memcpy(dst, src, n);
    bytes_out_ += n;
    ++transfers_;
  }

  /// Typed LDM allocator: carves a span out of the scratch pad; throws if the
  /// kernel exceeds the configured LDM budget (real hardware would fail too).
  template <typename T>
  T* ldm_alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = (ldm_used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    require(aligned + bytes <= ldm_bytes_, "CpeContext: LDM budget exceeded");
    T* p = reinterpret_cast<T*>(ldm_ + aligned);
    ldm_used_ = aligned + bytes;
    return p;
  }
  void ldm_reset() { ldm_used_ = 0; }

 private:
  void check_ldm_range(void* p, std::size_t n) const {
    const std::byte* b = static_cast<const std::byte*>(p);
    require(b >= ldm_ && b + n <= ldm_ + ldm_bytes_,
            "CpeContext: DMA endpoint outside LDM");
  }

  int cpe_id_;
  int mesh_cols_;
  std::byte* ldm_;
  std::size_t ldm_bytes_;
  std::size_t ldm_used_ = 0;
  std::atomic<std::uint64_t>& bytes_in_;
  std::atomic<std::uint64_t>& bytes_out_;
  std::atomic<std::uint64_t>& transfers_;
};

using CpeKernel = std::function<void(CpeContext&)>;

class CpeCluster {
 public:
  /// A cluster backed by its own worker threads (one per CPE up to the host's
  /// capacity; CPEs beyond that are multiplexed, preserving semantics).
  explicit CpeCluster(const Sw26010ProSpec& spec = {});

  int mesh_size() const { return spec_.cpes_per_cg; }
  const Sw26010ProSpec& spec() const { return spec_; }

  /// SACA-style spawn: run `kernel` once per participating CPE and wait.
  void spawn(const SpawnConfig& config, const CpeKernel& kernel);

  DmaCounters counters() const {
    return {bytes_in_.load(), bytes_out_.load(), transfers_.load()};
  }
  void reset_counters() {
    bytes_in_ = 0;
    bytes_out_ = 0;
    transfers_ = 0;
  }

 private:
  Sw26010ProSpec spec_;
  par::ThreadPool pool_;
  std::vector<std::vector<std::byte>> ldm_;
  std::atomic<std::uint64_t> bytes_in_{0}, bytes_out_{0}, transfers_{0};
};

}  // namespace q2::sw
