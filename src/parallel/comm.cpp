#include "parallel/comm.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"

namespace q2::par {

void Comm::barrier() {
  auto& st = *state_;
  std::unique_lock<std::mutex> lock(st.mutex);
  const std::uint64_t gen = st.generation;
  if (++st.arrived == st.size) {
    st.arrived = 0;
    ++st.generation;
    st.cv.notify_all();
  } else {
    st.cv.wait(lock, [&] { return st.generation != gen; });
  }
}

void Comm::bcast_bytes(void* data, std::size_t nbytes, int root) {
  detail::comm_bcast_ops().add();
  auto& st = *state_;
  if (rank_ == root) st.bcast_ptr = data;
  barrier();
  if (rank_ != root) {
    std::memcpy(data, st.bcast_ptr, nbytes);
    account(nbytes);
  }
  barrier();  // keep the root's buffer alive until every rank copied
}

void Comm::collect_slots(const void* ptr) {
  state_->slots[rank_] = ptr;
  barrier();
}

Comm Comm::split(int color, int key) {
  auto& st = *state_;
  st.split_keys[rank_] = {color, key};
  barrier();

  // Every rank deterministically computes the same grouping.
  std::vector<int> members;
  for (int r = 0; r < st.size; ++r)
    if (st.split_keys[r].first == color) members.push_back(r);
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return st.split_keys[a].second < st.split_keys[b].second;
  });
  const int new_rank =
      int(std::find(members.begin(), members.end(), rank_) - members.begin());

  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.split_children.count(color)) {
      st.split_children[color] =
          std::make_shared<detail::CommState>(int(members.size()));
    }
  }
  barrier();
  auto child = st.split_children[color];
  barrier();
  // Rank 0 of the parent clears the table so split() can be called again.
  if (rank_ == 0) st.split_children.clear();
  barrier();
  return Comm(child, new_rank);
}

void World::run(const std::function<void(Comm&)>& fn) const {
  auto state = std::make_shared<detail::CommState>(size_);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  std::vector<double> rank_seconds(size_, 0.0);
  threads.reserve(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      obs::set_thread_tag("rank" + std::to_string(r));
      Comm comm(state, r);
      Timer timer;
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
      rank_seconds[r] = timer.seconds();
    });
  }
  for (auto& t : threads) t.join();
  total_bytes_ = 0;
  for (auto b : state->bytes) total_bytes_ += b;

  // Per-rank phase attribution: max/min/mean wall time and the imbalance
  // ratio (slowest over mean; 1.0 = perfectly balanced ranks).
  double max_s = 0.0, min_s = rank_seconds[0], sum_s = 0.0;
  for (const double s : rank_seconds) {
    max_s = std::max(max_s, s);
    min_s = std::min(min_s, s);
    sum_s += s;
  }
  const double mean_s = sum_s / double(size_);
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("comm.rank_time_max_s").set(max_s);
  reg.gauge("comm.rank_time_min_s").set(min_s);
  reg.gauge("comm.rank_time_mean_s").set(mean_s);
  reg.gauge("comm.imbalance_ratio").set(mean_s > 0.0 ? max_s / mean_s : 1.0);
  obs::RunReport::global().record(
      "world_run", {{"ranks", size_},
                    {"rank_seconds", rank_seconds},
                    {"max_s", max_s},
                    {"min_s", min_s},
                    {"mean_s", mean_s},
                    {"imbalance_ratio", mean_s > 0.0 ? max_s / mean_s : 1.0},
                    {"bytes", total_bytes_}});

  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace q2::par
