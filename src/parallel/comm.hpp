// Simulated MPI: a World spawns one thread per rank, each receiving a Comm
// with Bcast / Reduce / Allreduce / Gather / split semantics matching the
// subset of MPI the paper's three-level scheme uses (MPI_Bcast of parameters,
// MPI_Reduce of energies, sub-communicators per DMET fragment). Traffic is
// byte-accounted per rank so benches can report communication volume exactly
// as §IV-C does (~15.6 KB per process per VQE iteration).
#pragma once

#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace q2::par {

class Comm;

namespace detail {

// Process-wide communication metrics, aggregated across every Comm/World.
// References cached once per call site (see obs/metrics.hpp).
inline obs::Counter& comm_bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("comm.bytes");
  return c;
}
inline obs::Counter& comm_bcast_ops() {
  static obs::Counter& c = obs::Registry::global().counter("comm.bcast_ops");
  return c;
}
inline obs::Counter& comm_reduce_ops() {
  static obs::Counter& c = obs::Registry::global().counter("comm.reduce_ops");
  return c;
}
inline obs::Counter& comm_allreduce_ops() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.allreduce_ops");
  return c;
}
inline obs::Counter& comm_allgather_ops() {
  static obs::Counter& c =
      obs::Registry::global().counter("comm.allgather_ops");
  return c;
}

struct CommState {
  explicit CommState(int size)
      : size(size), slots(size, nullptr), split_keys(size), bytes(size, 0) {}

  const int size;
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;

  const void* bcast_ptr = nullptr;
  std::vector<const void*> slots;
  std::vector<std::pair<int, int>> split_keys;  // (color, key) per rank
  std::map<int, std::shared_ptr<CommState>> split_children;
  std::vector<std::uint64_t> bytes;  // per-rank traffic in bytes
};

}  // namespace detail

class Comm {
 public:
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return state_->size; }
  std::uint64_t bytes_transferred() const { return state_->bytes[rank_]; }

  void barrier();

  /// Broadcast `count` elements of trivially copyable T from `root`.
  template <typename T>
  void bcast(T* data, std::size_t count, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(data, count * sizeof(T), root);
  }
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    bcast(data.data(), data.size(), root);
  }

  /// Element-wise sum-reduce to `root`; non-root outputs are unspecified.
  template <typename T>
  void reduce_sum(T* data, std::size_t count, int root) {
    detail::comm_reduce_ops().add();
    collect_slots(data);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) continue;
        const T* src = static_cast<const T*>(state_->slots[r]);
        for (std::size_t i = 0; i < count; ++i) data[i] += src[i];
        account(count * sizeof(T));
      }
    }
    barrier();
  }
  template <typename T>
  T reduce_sum(T value, int root) {
    reduce_sum(&value, 1, root);
    return value;
  }

  /// Element-wise sum-reduce visible on every rank.
  template <typename T>
  void allreduce_sum(T* data, std::size_t count) {
    detail::comm_allreduce_ops().add();
    std::vector<T> local(data, data + count);
    collect_slots(local.data());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const T* src = static_cast<const T*>(state_->slots[r]);
      for (std::size_t i = 0; i < count; ++i) data[i] += src[i];
      account(count * sizeof(T));
    }
    barrier();
  }
  template <typename T>
  T allreduce_sum(T value) {
    allreduce_sum(&value, 1);
    return value;
  }

  /// Gather one value from each rank onto every rank (allgather).
  template <typename T>
  std::vector<T> allgather(const T& value) {
    detail::comm_allgather_ops().add();
    collect_slots(&value);
    std::vector<T> out(size());
    for (int r = 0; r < size(); ++r) {
      out[r] = *static_cast<const T*>(state_->slots[r]);
      if (r != rank_) account(sizeof(T));
    }
    barrier();
    return out;
  }

  /// MPI_Comm_split: ranks with the same color form a sub-communicator,
  /// ordered by key (ties by parent rank).
  Comm split(int color, int key);

 private:
  void bcast_bytes(void* data, std::size_t nbytes, int root);
  /// Publish a per-rank pointer and synchronize so peers may read it.
  void collect_slots(const void* ptr);
  void account(std::size_t nbytes) {
    state_->bytes[rank_] += nbytes;
    detail::comm_bytes_counter().add(nbytes);
  }

  std::shared_ptr<detail::CommState> state_;
  int rank_;
};

/// Spawns `size` rank-threads, runs `fn(comm)` on each, joins them all.
/// Exceptions thrown by any rank are rethrown on the caller thread.
class World {
 public:
  explicit World(int size) : size_(size) {}
  void run(const std::function<void(Comm&)>& fn) const;
  /// Total bytes moved across all ranks in the last run().
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  int size_;
  mutable std::uint64_t total_bytes_ = 0;
};

}  // namespace q2::par
