// Fixed-size worker pool with a shared task queue, plus a parallel_for
// convenience. This is the repo's analogue of OpenMP worksharing: it backs
// the CPE-cluster runtime, the rank-per-thread simulated MPI, and the
// on-node hot loops (Pauli-term sweeps, parameter-shift gradients, DMET
// fragment solves).
//
// parallel_for is nesting-safe: the calling thread claims chunks itself
// (caller-runs) and, once the range is exhausted, helps drain the pool's
// queue while waiting for in-flight chunks — so a worker that starts a
// nested parallel_for makes progress instead of deadlocking, even on a
// one-thread pool. If the body throws, every in-flight chunk finishes
// before the first exception is rethrown on the caller.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "parallel/parallel_options.hpp"

namespace q2::par {

/// RAII checkout of a pool-resident, per-thread scratch buffer. Buffers live
/// in a thread-local freelist: checking one out inside a parallel_for body
/// returns the same grow-only allocation on every iteration the thread
/// claims, so hot loops (GEMM A-panel packing) stop paying a malloc per
/// tile. Checkout order is LIFO, which makes nested checkouts (a body that
/// itself runs a kernel using scratch) safe — each level gets its own block.
///
/// Two caller-owned 64-bit tags ride on the buffer and survive checkouts
/// while the allocation survives; growing the buffer resets them to
/// Scratch::kNoTag. The GEMM uses them as a (loop-id, tile-row) key to skip
/// re-packing an A block the thread already packed.
class Scratch {
 public:
  static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

  explicit Scratch(std::size_t min_bytes);
  ~Scratch();

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  void* data() const;
  std::size_t capacity() const;
  std::uint64_t tag(int slot) const;
  void set_tag(int slot, std::uint64_t value);

  struct Block;  // defined in thread_pool.cpp

 private:
  Block* block_;
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait for completion.
  /// The caller participates; safe to call from inside a pool task. If fn
  /// throws, the first exception is rethrown here after all chunks retire
  /// (remaining unclaimed iterations are abandoned).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1, std::size_t max_threads = 0);

  /// Pop and execute one queued task on the calling thread. Returns false if
  /// the queue was empty. Used internally to help while waiting; exposed for
  /// tests.
  bool try_run_one();

  /// Process-wide pool sized to Q2_THREADS (else the hardware); lazily
  /// constructed.
  static ThreadPool& global();

 private:
  struct LoopState;

  void worker_loop();
  static void run_chunks(LoopState& st);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Options-driven entry point for the on-node hot loops: resolves the thread
/// count (explicit > Q2_THREADS > pool size), runs fn(i) serially on the
/// calling thread when it resolves to 1, and otherwise fans out on the global
/// pool with at most that many concurrent claimants. opts.grain == 0 (the
/// default) auto-sizes chunks to ~8 per claimant, bounding the atomic
/// claim overhead on huge ranges (the 652k-chunk SVD sweeps) while keeping
/// dynamic load balance; chunking never affects results — bodies write
/// per-index slots and reductions combine in index order.
void parallel_for(const ParallelOptions& opts, std::size_t begin,
                  std::size_t end, const std::function<void(std::size_t)>& fn);

}  // namespace q2::par
