// Fixed-size worker pool with a shared task queue, plus a parallel_for
// convenience. This is the repo's analogue of OpenMP worksharing: it backs
// the CPE-cluster runtime and the rank-per-thread simulated MPI.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace q2::par {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait for completion.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Process-wide pool sized to the hardware; lazily constructed.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace q2::par
