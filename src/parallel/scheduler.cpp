#include "parallel/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace q2::par {
namespace {

// Publishes the balance quality of the last computed schedule (gauges) and,
// when a run report is open, the full per-bin load vector — the Fig. 12/13
// efficiency data in machine-readable form.
void publish(const char* algorithm, const Schedule& s) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("scheduler.calls").add();
  reg.gauge("scheduler.bins").set(double(s.loads.size()));
  reg.gauge("scheduler.makespan").set(s.makespan);
  reg.gauge("scheduler.efficiency").set(efficiency(s));
  // Imbalance = makespan / ideal makespan = 1 / efficiency: 1.0 is a
  // perfectly level schedule, 2.0 means the critical bin is twice the mean.
  reg.gauge("scheduler.imbalance").set(1.0 / efficiency(s));
  obs::RunReport::global().record("schedule",
                                  {{"algorithm", algorithm},
                                   {"tasks", s.assignment.size()},
                                   {"bins", s.loads.size()},
                                   {"makespan", s.makespan},
                                   {"efficiency", efficiency(s)},
                                   {"loads", s.loads}});
}

}  // namespace

std::vector<std::size_t> lpt_assign(const std::vector<double>& costs,
                                    std::size_t bins) {
  require(bins > 0, "lpt_assign: bins must be positive");
  std::vector<std::size_t> assignment(costs.size());
  std::vector<double> loads(bins, 0.0);

  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });

  // Min-heap of (load, bin); ties resolve to the lowest bin index, so equal
  // costs always produce the same assignment.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t b = 0; b < bins; ++b) heap.push({0.0, b});

  for (std::size_t i : order) {
    auto [load, bin] = heap.top();
    heap.pop();
    assignment[i] = bin;
    load += costs[i];
    loads[bin] = load;
    heap.push({load, bin});
  }
  return assignment;
}

Schedule lpt_schedule(const std::vector<double>& costs, std::size_t bins) {
  require(bins > 0, "lpt_schedule: bins must be positive");
  Schedule s;
  s.assignment = lpt_assign(costs, bins);
  s.loads.assign(bins, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i)
    s.loads[s.assignment[i]] += costs[i];
  s.makespan = costs.empty()
                   ? 0.0
                   : *std::max_element(s.loads.begin(), s.loads.end());
  publish("lpt", s);
  return s;
}

Schedule round_robin_schedule(const std::vector<double>& costs,
                              std::size_t bins) {
  require(bins > 0, "round_robin_schedule: bins must be positive");
  Schedule s;
  s.assignment.resize(costs.size());
  s.loads.assign(bins, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const std::size_t bin = i % bins;
    s.assignment[i] = bin;
    s.loads[bin] += costs[i];
  }
  s.makespan =
      s.loads.empty() ? 0.0 : *std::max_element(s.loads.begin(), s.loads.end());
  publish("round_robin", s);
  return s;
}

double efficiency(const Schedule& s) {
  const double total = std::accumulate(s.loads.begin(), s.loads.end(), 0.0);
  if (s.makespan <= 0.0) return 1.0;
  return total / (double(s.loads.size()) * s.makespan);
}

}  // namespace q2::par
