// Shared-memory parallelism knobs, plumbed from driver options (MpsOptions /
// VqeOptions / DmetOptions) down to the loops that fan work out onto the
// process-wide ThreadPool. Kept dependency-free so sim/ can embed it without
// pulling in the pool itself.
#pragma once

#include <cstddef>

namespace q2::par {

struct ParallelOptions {
  /// Worker count for parallel loops. 0 = auto: the Q2_THREADS environment
  /// variable if set, otherwise the global pool size. 1 = run serially on the
  /// calling thread (no pool involvement).
  std::size_t n_threads = 0;
  /// Minimum iterations per dynamically-claimed chunk. 0 (the default)
  /// auto-sizes to ~8 chunks per claimant — large ranges stop paying one
  /// atomic claim per iteration; set 1 explicitly when every iteration is a
  /// coarse unit of work (a GEMM macro-tile, a DMET fragment solve).
  /// Chunking never changes results: bodies write per-index slots and
  /// reductions combine in index order.
  std::size_t grain = 0;
  /// Combine per-chunk partial results in index order so the floating-point
  /// reduction is identical for every thread count (parallel == serial
  /// bit-for-bit). Disabling allows first-come combining; nothing in-tree
  /// does that today, but benches can use it to measure the cost.
  bool deterministic_reduction = true;
};

/// Resolves `opts.n_threads`: explicit value > process default (set via
/// set_default_threads or Q2_THREADS) > global pool size. Always >= 1.
std::size_t resolve_threads(const ParallelOptions& opts);

/// Process-wide default used when ParallelOptions::n_threads == 0. Overrides
/// the Q2_THREADS environment variable. 0 restores env/hardware resolution.
void set_default_threads(std::size_t n);

/// Strips a `--threads=N` flag from argv (examples/benches share this the way
/// they share the telemetry flags) and records it via set_default_threads.
void configure_threads_from_args(int& argc, char** argv);

}  // namespace q2::par
