// Static load balancing for the circuit level of parallelism. Pauli-string
// circuits have uneven costs (string support length varies), so the driver
// partitions them with longest-processing-time (LPT) list scheduling — the
// "adapted dynamical load balancing algorithm" of the paper, applied to the
// per-iteration cost estimates.
#pragma once

#include <cstddef>
#include <vector>

namespace q2::par {

struct Schedule {
  /// assignment[i] = bin (rank) executing task i.
  std::vector<std::size_t> assignment;
  /// Summed cost per bin.
  std::vector<double> loads;
  double makespan = 0.0;
};

/// LPT list scheduling of weighted tasks into `bins` bins.
Schedule lpt_schedule(const std::vector<double>& costs, std::size_t bins);

/// Assignment-only LPT without the telemetry publication — for hot loops
/// (the per-evaluation Pauli-term sweep) that re-partition every call and
/// would otherwise flood the run report. Deterministic: ties are broken by
/// task index (stable sort) and lowest bin index.
std::vector<std::size_t> lpt_assign(const std::vector<double>& costs,
                                    std::size_t bins);

/// Round-robin baseline (what a cost-oblivious distribution would do); kept
/// for the load-balancing ablation bench.
Schedule round_robin_schedule(const std::vector<double>& costs,
                              std::size_t bins);

/// Parallel efficiency of a schedule: total_work / (bins * makespan).
double efficiency(const Schedule& s);

}  // namespace q2::par
