#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace q2::par {
namespace {

obs::Counter& submitted_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.tasks_submitted");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.tasks_executed");
  return c;
}
obs::Counter& parallel_for_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.parallel_for_calls");
  return c;
}
obs::Counter& chunk_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.chunks_run");
  return c;
}
/// Threads currently executing parallel_for chunks (workers and helping
/// callers alike) — the pool-occupancy signal run reports sample.
obs::Gauge& occupancy_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("pool.active_chunks");
  return g;
}
/// Per-loop distribution of chunk-slot occupancy: each parallel_for observes
/// (end - begin) / (chunks * grain) once. Below 1.0 the final chunk is
/// ragged — a grain mismatched to the range. A histogram rather than a
/// gauge: concurrent/nested loops used to overwrite each other
/// (last-writer-wins), turning nested-loop profiles into garbage.
obs::Histogram& grain_occupancy_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pool.grain_occupancy", {0.25, 0.5, 0.75, 0.9, 0.99, 1.0});
  return h;
}
obs::Counter& scratch_checkout_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.scratch_checkouts");
  return c;
}
obs::Counter& scratch_grow_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.scratch_grows");
  return c;
}

std::size_t env_threads() {
  const char* s = std::getenv("Q2_THREADS");
  if (!s || !*s) return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0) {
    // Warn once: this resolver runs on every parallel_for dispatch.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      std::fprintf(stderr,
                   "q2: ignoring invalid Q2_THREADS='%s' (want a positive "
                   "integer)\n",
                   s);
    return 0;
  }
  return std::size_t(v);
}

std::atomic<std::size_t> g_default_threads{0};

}  // namespace

std::size_t resolve_threads(const ParallelOptions& opts) {
  if (opts.n_threads > 0) return opts.n_threads;
  const std::size_t def = g_default_threads.load(std::memory_order_relaxed);
  if (def > 0) return def;
  const std::size_t env = env_threads();
  if (env > 0) return env;
  return ThreadPool::global().size();
}

void set_default_threads(std::size_t n) {
  g_default_threads.store(n, std::memory_order_relaxed);
}

void configure_threads_from_args(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const char* val = arg.c_str() + 10;
      char* end = nullptr;
      const long v = std::strtol(val, &end, 10);
      if (end == val || *end != '\0' || v <= 0) {
        // The flag used to vanish silently (removed from argv, no effect) —
        // a typo like --threads=O4 ran the whole sweep single-threaded.
        std::fprintf(stderr,
                     "q2: ignoring invalid --threads='%s' (want a positive "
                     "integer)\n",
                     val);
      } else {
        set_default_threads(std::size_t(v));
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

// ---------------------------------------------------------------------------
// Pool-resident per-thread scratch arena
// ---------------------------------------------------------------------------

struct Scratch::Block {
  std::unique_ptr<unsigned char[]> bytes;
  std::size_t cap = 0;
  std::uint64_t tags[2] = {kNoTag, kNoTag};
  bool in_use = false;
};

namespace {
// Freelist of this thread's scratch blocks. LIFO checkout: the most recently
// returned block is handed out first, so a loop body re-acquiring scratch on
// every iteration keeps hitting the same warm allocation.
thread_local std::vector<std::unique_ptr<Scratch::Block>> t_scratch_blocks;
}  // namespace

Scratch::Scratch(std::size_t min_bytes) : block_(nullptr) {
  scratch_checkout_counter().add();
  for (auto it = t_scratch_blocks.rbegin(); it != t_scratch_blocks.rend();
       ++it) {
    if (!(*it)->in_use) {
      block_ = it->get();
      break;
    }
  }
  if (!block_) {
    t_scratch_blocks.push_back(std::make_unique<Block>());
    block_ = t_scratch_blocks.back().get();
  }
  block_->in_use = true;
  if (block_->cap < min_bytes) {
    scratch_grow_counter().add();
    block_->bytes = std::make_unique<unsigned char[]>(min_bytes);
    block_->cap = min_bytes;
    block_->tags[0] = kNoTag;
    block_->tags[1] = kNoTag;
  }
}

Scratch::~Scratch() { block_->in_use = false; }

void* Scratch::data() const { return block_->bytes.get(); }
std::size_t Scratch::capacity() const { return block_->cap; }
std::uint64_t Scratch::tag(int slot) const { return block_->tags[slot]; }
void Scratch::set_tag(int slot, std::uint64_t value) {
  block_->tags[slot] = value;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] {
      obs::set_thread_tag("worker" + std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  submitted_counter().add();
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  {
    OBS_SPAN_TRACE_ONLY("pool/task");
    task();
  }
  executed_counter().add();
  return true;
}

// Shared state of one parallel_for: a dynamic chunk counter plus completion
// and error tracking. Helpers and the caller all claim through the same
// atomics; the loop is over when the range is exhausted AND no chunk is still
// executing.
struct ThreadPool::LoopState {
  std::atomic<std::size_t> next;
  std::size_t end;
  std::size_t grain;
  const std::function<void(std::size_t)>* fn;
  std::atomic<std::size_t> active{0};  ///< chunks currently executing
  /// Caller's open-span path at dispatch: claimants adopt it so their
  /// pool/chunk spans aggregate under the dispatching node whichever thread
  /// runs them.
  obs::ProfilePath profile_path;
  std::mutex m;
  std::condition_variable done_cv;
  std::exception_ptr error;  ///< first exception thrown by a chunk

  bool complete() const {
    return next.load(std::memory_order_acquire) >= end &&
           active.load(std::memory_order_acquire) == 0;
  }
};

void ThreadPool::run_chunks(LoopState& st) {
  obs::ScopedPathAdoption adopt(st.profile_path);
  for (;;) {
    // Claim-then-mark-active would race completion (claimed but not yet
    // active looks idle), so mark active first and undo on a failed claim.
    st.active.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t lo = st.next.fetch_add(st.grain);
    if (lo >= st.end) {
      if (st.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(st.m);
        st.done_cv.notify_all();
      }
      return;
    }
    const std::size_t hi = std::min(st.end, lo + st.grain);
    occupancy_gauge().add(1.0);
    chunk_counter().add();
    try {
      OBS_SPAN_TRACE_ONLY("pool/chunk");
      for (std::size_t i = lo; i < hi; ++i) (*st.fn)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(st.m);
        if (!st.error) st.error = std::current_exception();
      }
      // Abandon unclaimed iterations so the loop winds down promptly.
      st.next.store(st.end, std::memory_order_release);
    }
    occupancy_gauge().add(-1.0);
    if (st.active.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        st.next.load(std::memory_order_acquire) >= st.end) {
      std::lock_guard<std::mutex> lk(st.m);
      st.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, std::size_t max_threads) {
  if (begin >= end) return;
  parallel_for_counter().add();
  grain = std::max<std::size_t>(grain, 1);

  auto st = std::make_shared<LoopState>();
  st->next.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->grain = grain;
  st->fn = &fn;
  st->profile_path = obs::current_profile_path();

  // One claimant is the caller itself; the rest are pool helpers. Helpers
  // hold st alive via the shared_ptr so an early-returning caller (exception
  // path) can never dangle — but the barrier below means st outlives them
  // anyway.
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  grain_occupancy_histogram().observe(double(end - begin) /
                                      double(chunks * grain));
  std::size_t claimants = std::min(size() + 1, chunks);
  if (max_threads > 0) claimants = std::min(claimants, max_threads);
  for (std::size_t w = 1; w < claimants; ++w)
    submit([st] { run_chunks(*st); });

  run_chunks(*st);

  // Barrier: every claimed chunk must retire before we return (or rethrow) —
  // fn and st stay valid for stragglers. While waiting, help drain the pool
  // queue so nested parallel_for loops (and our own queued helpers) progress
  // even when every worker is blocked in a wait like this one.
  while (!st->complete()) {
    if (try_run_one()) continue;
    std::unique_lock<std::mutex> lk(st->m);
    // Timed wait: a task enqueued between the try_run_one miss and this wait
    // would otherwise be missed until a chunk retires.
    st->done_cv.wait_for(lk, std::chrono::milliseconds(1),
                         [&] { return st->complete(); });
  }
  if (st->error) std::rethrow_exception(st->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const std::size_t env = env_threads();
    if (env > 0) return env;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      OBS_SPAN_TRACE_ONLY("pool/task");
      task();
    }
    executed_counter().add();
  }
}

void parallel_for(const ParallelOptions& opts, std::size_t begin,
                  std::size_t end, const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = resolve_threads(opts);
  if (n <= 1 || end - begin == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::size_t grain = opts.grain;
  if (grain == 0) {
    // Auto-grain: ~8 chunks per claimant. Dynamic claiming still balances
    // ragged bodies, but a 652k-iteration SVD rotation sweep stops paying
    // 652k atomic claims (and chunk-counter bumps) for 1-element chunks.
    grain = std::max<std::size_t>(1, (end - begin) / (n * 8));
  }
  ThreadPool::global().parallel_for(begin, end, fn, grain, n);
}

}  // namespace q2::par
