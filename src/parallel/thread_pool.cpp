#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace q2::par {
namespace {

obs::Counter& submitted_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.tasks_submitted");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.tasks_executed");
  return c;
}
obs::Counter& parallel_for_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.parallel_for_calls");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  submitted_counter().add();
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  parallel_for_counter().add();
  grain = std::max<std::size_t>(grain, 1);
  // Dynamic scheduling via a shared counter: workers grab `grain`-sized
  // chunks, which load-balances uneven iterations (e.g. Pauli circuits).
  auto counter = std::make_shared<std::atomic<std::size_t>>(begin);
  std::vector<std::future<void>> futs;
  const std::size_t nworkers = std::min(size(), (end - begin + grain - 1) / grain);
  futs.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    futs.push_back(submit([counter, end, grain, &fn] {
      for (;;) {
        const std::size_t lo = counter->fetch_add(grain);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    {
      OBS_SPAN("pool/task");
      task();
    }
    executed_counter().add();
  }
}

}  // namespace q2::par
