// Determinant full configuration interaction: the exact-diagonalization
// baseline of Fig. 7(a) and the reference fragment solver for DMET. Works in
// the spin-orbital determinant basis (Slater-Condon rules) with a matrix-free
// Davidson solve.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chem/mo.hpp"
#include "linalg/davidson.hpp"

namespace q2::chem {

/// The (n_alpha, n_beta) determinant space over `n_spatial` orbitals.
/// Spin-orbital P = 2p + sigma occupies bit P of the determinant mask.
class FciSpace {
 public:
  FciSpace(std::size_t n_spatial, int n_alpha, int n_beta);

  std::size_t dim() const { return dets_.size(); }
  std::size_t n_spatial() const { return n_spatial_; }
  const std::vector<std::uint64_t>& determinants() const { return dets_; }
  std::size_t index_of(std::uint64_t mask) const;
  /// The Hartree-Fock determinant's index (lowest orbitals filled).
  std::size_t hf_index() const;

  /// y = H x with H defined by the spin-orbital integrals (core energy is
  /// added as a diagonal shift).
  std::vector<double> sigma(const SpinOrbitalIntegrals& so,
                            const std::vector<double>& x) const;
  /// Diagonal of H (Davidson preconditioner).
  std::vector<double> diagonal(const SpinOrbitalIntegrals& so) const;

  /// Spin-summed one-particle RDM gamma_pq = <a+_p a_q> (spatial indices).
  la::RMatrix one_rdm(const std::vector<double>& ci) const;

 private:
  std::size_t n_spatial_;
  int n_alpha_, n_beta_;
  std::vector<std::uint64_t> dets_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

struct FciResult {
  bool converged = false;
  double energy = 0.0;  ///< total (includes core energy)
  std::size_t dim = 0;
  int iterations = 0;
  std::vector<double> ci;
};

/// Ground state in the given spin sector.
FciResult fci_ground_state(const MoIntegrals& mo, int n_alpha, int n_beta,
                           const la::DavidsonOptions& options = {});

/// <ci| H' |ci> for a (possibly different) Hamiltonian over the same space —
/// used for DMET fragment energies with the FCI solver.
double fci_expectation(const FciSpace& space, const SpinOrbitalIntegrals& so,
                       const std::vector<double>& ci);

}  // namespace q2::chem
