// Periodic-table data for the elements this repo's basis sets cover.
#pragma once

#include <string>

namespace q2::chem {

/// Atomic number for a symbol like "H", "C", "O"; throws on unknown symbols.
int atomic_number(const std::string& symbol);
/// Symbol for an atomic number (1..10 supported).
std::string element_symbol(int z);

}  // namespace q2::chem
