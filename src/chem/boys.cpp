#include "chem/boys.hpp"

#include <cmath>

#include "common/types.hpp"

namespace q2::chem {

std::vector<double> boys(int n_max, double x) {
  require(n_max >= 0 && x >= 0, "boys: bad arguments");
  std::vector<double> f(std::size_t(n_max) + 1);

  if (x < 1e-13) {
    for (int n = 0; n <= n_max; ++n) f[std::size_t(n)] = 1.0 / (2 * n + 1);
    return f;
  }

  if (x < 35.0) {
    // Series for the highest order: F_n(x) = e^{-x} sum_k (2n-1)!! (2x)^k /
    // (2n+2k+1)!! — converges fast for x < ~35 — then stable downward
    // recursion F_{n-1} = (2x F_n + e^{-x}) / (2n - 1).
    const double ex = std::exp(-x);
    double term = 1.0 / (2 * n_max + 1);
    double sum = term;
    for (int k = 1; k < 200; ++k) {
      term *= 2.0 * x / (2 * n_max + 2 * k + 1);
      sum += term;
      if (term < 1e-17 * sum) break;
    }
    f[std::size_t(n_max)] = ex * sum;
    for (int n = n_max; n >= 1; --n)
      f[std::size_t(n - 1)] = (2.0 * x * f[std::size_t(n)] + ex) / (2 * n - 1);
    return f;
  }

  // Large x: F_0 ~ sqrt(pi / x) / 2 (the e^{-x} tail is below machine
  // epsilon), then upward recursion is stable.
  const double ex = std::exp(-x);
  f[0] = 0.5 * std::sqrt(kPi / x);
  for (int n = 0; n < n_max; ++n)
    f[std::size_t(n + 1)] = ((2 * n + 1) * f[std::size_t(n)] - ex) / (2.0 * x);
  return f;
}

}  // namespace q2::chem
