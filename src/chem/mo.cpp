#include "chem/mo.hpp"

#include "linalg/gemm.hpp"

namespace q2::chem {

MoIntegrals::MoIntegrals(std::size_t n_orbitals, double core_energy)
    : n_(n_orbitals),
      e_core_(core_energy),
      h_(n_orbitals, n_orbitals),
      eri_(n_orbitals * n_orbitals * n_orbitals * n_orbitals, 0.0) {}

MoIntegrals transform_to_mo(const IntegralTables& ints, const la::RMatrix& c,
                            double nuclear_repulsion) {
  const std::size_t nao = c.rows(), nmo = c.cols();
  MoIntegrals mo(nmo, nuclear_repulsion);

  // One-body: h_mo = C^T (T + V) C.
  const la::RMatrix hcore = ints.kinetic + ints.nuclear;
  const la::RMatrix hmo = la::matmul(la::matmul(c, hcore, la::Op::kTrans), c);
  for (std::size_t p = 0; p < nmo; ++p)
    for (std::size_t q = 0; q < nmo; ++q) mo.h(p, q) = hmo(p, q);

  // Two-body: four quarter-transforms, O(N^5).
  std::vector<double> t1(nao * nao * nao * nmo, 0.0);
  for (std::size_t p = 0; p < nao; ++p)
    for (std::size_t q = 0; q < nao; ++q)
      for (std::size_t r = 0; r < nao; ++r)
        for (std::size_t s = 0; s < nao; ++s) {
          const double v = ints.eri(p, q, r, s);
          if (v == 0.0) continue;
          for (std::size_t l = 0; l < nmo; ++l)
            t1[((p * nao + q) * nao + r) * nmo + l] += v * c(s, l);
        }
  std::vector<double> t2(nao * nao * nmo * nmo, 0.0);
  for (std::size_t p = 0; p < nao; ++p)
    for (std::size_t q = 0; q < nao; ++q)
      for (std::size_t r = 0; r < nao; ++r)
        for (std::size_t k = 0; k < nmo; ++k) {
          const double v = t1[((p * nao + q) * nao + r) * nmo + k];
          if (v == 0.0) continue;
          for (std::size_t l = 0; l < nmo; ++l)
            t2[((p * nao + q) * nmo + k) * nmo + l] += v * c(r, l);
        }
  std::vector<double> t3(nao * nmo * nmo * nmo, 0.0);
  for (std::size_t p = 0; p < nao; ++p)
    for (std::size_t q = 0; q < nao; ++q)
      for (std::size_t k = 0; k < nmo; ++k)
        for (std::size_t l = 0; l < nmo; ++l) {
          const double v = t2[((p * nao + q) * nmo + k) * nmo + l];
          if (v == 0.0) continue;
          for (std::size_t m = 0; m < nmo; ++m)
            t3[((p * nmo + m) * nmo + k) * nmo + l] += v * c(q, m);
        }
  for (std::size_t p = 0; p < nao; ++p)
    for (std::size_t m = 0; m < nmo; ++m)
      for (std::size_t k = 0; k < nmo; ++k)
        for (std::size_t l = 0; l < nmo; ++l) {
          const double v = t3[((p * nmo + m) * nmo + k) * nmo + l];
          if (v == 0.0) continue;
          for (std::size_t o = 0; o < nmo; ++o)
            mo.eri(o, m, k, l) += v * c(p, o);
        }
  return mo;
}

MoIntegrals make_active_space(const MoIntegrals& mo, std::size_t n_frozen,
                              std::size_t n_active) {
  require(n_frozen + n_active <= mo.n_orbitals(),
          "make_active_space: window exceeds orbital count");
  MoIntegrals act(n_active, mo.core_energy());

  // Frozen-core energy: 2 sum_i h_ii + sum_ij [2(ii|jj) - (ij|ji)].
  double e_frozen = 0;
  for (std::size_t i = 0; i < n_frozen; ++i) {
    e_frozen += 2.0 * mo.h(i, i);
    for (std::size_t j = 0; j < n_frozen; ++j)
      e_frozen += 2.0 * mo.eri(i, i, j, j) - mo.eri(i, j, j, i);
  }
  act.set_core_energy(mo.core_energy() + e_frozen);

  // Effective one-body term in the active window.
  for (std::size_t p = 0; p < n_active; ++p) {
    for (std::size_t q = 0; q < n_active; ++q) {
      double v = mo.h(n_frozen + p, n_frozen + q);
      for (std::size_t i = 0; i < n_frozen; ++i)
        v += 2.0 * mo.eri(n_frozen + p, n_frozen + q, i, i) -
             mo.eri(n_frozen + p, i, i, n_frozen + q);
      act.h(p, q) = v;
    }
  }
  for (std::size_t p = 0; p < n_active; ++p)
    for (std::size_t q = 0; q < n_active; ++q)
      for (std::size_t r = 0; r < n_active; ++r)
        for (std::size_t s = 0; s < n_active; ++s)
          act.eri(p, q, r, s) =
              mo.eri(n_frozen + p, n_frozen + q, n_frozen + r, n_frozen + s);
  return act;
}

SpinOrbitalIntegrals to_spin_orbitals(const MoIntegrals& mo) {
  const std::size_t n = mo.n_orbitals();
  SpinOrbitalIntegrals so;
  so.n_spin = 2 * n;
  so.core_energy = mo.core_energy();
  so.h1.assign(so.n_spin * so.n_spin, 0.0);
  so.anti.assign(so.n_spin * so.n_spin * so.n_spin * so.n_spin, 0.0);

  auto spatial = [](std::size_t so_idx) { return so_idx / 2; };
  auto spin = [](std::size_t so_idx) { return so_idx % 2; };

  for (std::size_t p = 0; p < so.n_spin; ++p)
    for (std::size_t q = 0; q < so.n_spin; ++q)
      if (spin(p) == spin(q))
        so.h1[p * so.n_spin + q] = mo.h(spatial(p), spatial(q));

  // <PQ||RS> = <PQ|RS> - <PQ|SR>, with <PQ|RS> = (pr|qs) delta_spin(p,r)
  // delta_spin(q,s) in chemist->physicist translation.
  for (std::size_t p = 0; p < so.n_spin; ++p)
    for (std::size_t q = 0; q < so.n_spin; ++q)
      for (std::size_t r = 0; r < so.n_spin; ++r)
        for (std::size_t s = 0; s < so.n_spin; ++s) {
          double direct = 0, exchange = 0;
          if (spin(p) == spin(r) && spin(q) == spin(s))
            direct = mo.eri(spatial(p), spatial(r), spatial(q), spatial(s));
          if (spin(p) == spin(s) && spin(q) == spin(r))
            exchange = mo.eri(spatial(p), spatial(s), spatial(q), spatial(r));
          so.anti[((p * so.n_spin + q) * so.n_spin + r) * so.n_spin + s] =
              direct - exchange;
        }
  return so;
}

}  // namespace q2::chem
