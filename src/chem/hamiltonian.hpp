// Second-quantized molecular Hamiltonians (Eq. 1) and their qubit images
// under Jordan-Wigner (Eq. 2). Spin-orbital convention: qubit 2p is the
// alpha spin of spatial orbital p, qubit 2p+1 the beta spin.
#pragma once

#include "chem/mo.hpp"
#include "pauli/jordan_wigner.hpp"
#include "pauli/qubit_operator.hpp"

namespace q2::chem {

/// The electronic Hamiltonian as a fermionic operator:
/// H = sum h_pq a+_p a_q + 1/2 sum (pq|rs) a+_{p s1} a+_{r s2} a_{s s2} a_{q s1}.
pauli::FermionOperator molecular_fermion_operator(const MoIntegrals& mo);

/// Jordan-Wigner qubit Hamiltonian (includes the core energy as an identity
/// term). For H2/STO-3G this yields the 15 Pauli strings of Fig. 5.
pauli::QubitOperator molecular_qubit_hamiltonian(const MoIntegrals& mo);

/// Fragment-weighted Hamiltonian: each one-/two-body term is scaled by the
/// fraction of its creation-side indices inside `fragment_orbitals`
/// (democratic partitioning). Its expectation on the embedding wave function
/// is the DMET fragment energy — measurable as plain Pauli expectations,
/// exactly how a hardware VQE would do it.
pauli::QubitOperator fragment_weighted_hamiltonian(
    const MoIntegrals& mo, const std::vector<std::size_t>& fragment_orbitals);

/// Total electron-number operator restricted to the given spatial orbitals.
pauli::QubitOperator number_operator(std::size_t n_spatial,
                                     const std::vector<std::size_t>& orbitals);

/// General spin-summed one-body operator sum_pq c_pq a+_{p sigma} a_{q sigma}
/// (spatial coefficient matrix). Used to measure projected electron counts
/// after orbital rotations.
pauli::QubitOperator one_body_qubit_operator(const la::RMatrix& coeff);

}  // namespace q2::chem
