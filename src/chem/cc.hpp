// Many-body perturbation and coupled-cluster baselines: MP2 and spin-orbital
// CCSD (Stanton-Gauss-Watts-Bartlett intermediates). CCSD is the classical
// reference curve of Fig. 7(b); for two-electron systems it is exact, which
// the test suite exploits.
#pragma once

#include "chem/mo.hpp"

namespace q2::chem {

/// MP2 correlation energy for a closed-shell reference with `n_occ` doubly
/// occupied spatial orbitals.
double mp2_correlation_energy(const MoIntegrals& mo, int n_occ);

struct CcsdOptions {
  int max_iterations = 200;
  double amplitude_tolerance = 1e-9;
  double damping = 0.0;  ///< 0 = plain iteration; >0 mixes in old amplitudes
};

struct CcsdResult {
  bool converged = false;
  int iterations = 0;
  double correlation_energy = 0.0;
  double mp2_energy = 0.0;  ///< MP2 correlation, from the initial amplitudes
  double energy = 0.0;      ///< HF reference energy + correlation
};

/// Closed-shell CCSD in the spin-orbital formulation. `reference_energy` is
/// the HF total energy the correlation adds onto.
CcsdResult ccsd(const MoIntegrals& mo, int n_occ, double reference_energy,
                const CcsdOptions& options = {});

}  // namespace q2::chem
