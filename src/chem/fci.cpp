#include "chem/fci.hpp"

#include <cmath>

namespace q2::chem {
namespace {

// All n-choose-k bit masks over `n` bits, ascending.
std::vector<std::uint64_t> combinations(std::size_t n, int k) {
  std::vector<std::uint64_t> out;
  if (k == 0) {
    out.push_back(0);
    return out;
  }
  if (std::size_t(k) > n) return out;
  std::uint64_t mask = (std::uint64_t(1) << k) - 1;
  const std::uint64_t limit = std::uint64_t(1) << n;
  while (mask < limit) {
    out.push_back(mask);
    // Gosper's hack: next mask with the same popcount.
    const std::uint64_t c = mask & (~mask + 1);
    const std::uint64_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
  return out;
}

inline int parity_below(std::uint64_t mask, int bit) {
  const std::uint64_t below = (std::uint64_t(1) << bit) - 1;
  return __builtin_popcountll(mask & below) & 1 ? -1 : 1;
}

inline std::vector<int> bits_of(std::uint64_t mask) {
  std::vector<int> v;
  while (mask) {
    v.push_back(__builtin_ctzll(mask));
    mask &= mask - 1;
  }
  return v;
}

}  // namespace

FciSpace::FciSpace(std::size_t n_spatial, int n_alpha, int n_beta)
    : n_spatial_(n_spatial), n_alpha_(n_alpha), n_beta_(n_beta) {
  require(n_spatial <= 28, "FciSpace: too many orbitals");
  const auto alphas = combinations(n_spatial, n_alpha);
  const auto betas = combinations(n_spatial, n_beta);
  dets_.reserve(alphas.size() * betas.size());
  for (const auto a : alphas) {
    // Spread alpha occupation over even bits.
    std::uint64_t am = 0;
    for (int p : bits_of(a)) am |= std::uint64_t(1) << (2 * p);
    for (const auto b : betas) {
      std::uint64_t bm = 0;
      for (int p : bits_of(b)) bm |= std::uint64_t(1) << (2 * p + 1);
      dets_.push_back(am | bm);
    }
  }
  index_.reserve(dets_.size() * 2);
  for (std::size_t i = 0; i < dets_.size(); ++i) index_[dets_[i]] = i;
}

std::size_t FciSpace::index_of(std::uint64_t mask) const {
  const auto it = index_.find(mask);
  require(it != index_.end(), "FciSpace::index_of: determinant not in space");
  return it->second;
}

std::size_t FciSpace::hf_index() const {
  std::uint64_t m = 0;
  for (int p = 0; p < n_alpha_; ++p) m |= std::uint64_t(1) << (2 * p);
  for (int p = 0; p < n_beta_; ++p) m |= std::uint64_t(1) << (2 * p + 1);
  return index_of(m);
}

std::vector<double> FciSpace::diagonal(const SpinOrbitalIntegrals& so) const {
  std::vector<double> d(dets_.size());
  for (std::size_t i = 0; i < dets_.size(); ++i) {
    const auto occ = bits_of(dets_[i]);
    double e = so.core_energy;
    for (int p : occ) e += so.h(std::size_t(p), std::size_t(p));
    for (int p : occ)
      for (int q : occ)
        e += 0.5 * so.v(std::size_t(p), std::size_t(q), std::size_t(p),
                        std::size_t(q));
    d[i] = e;
  }
  return d;
}

std::vector<double> FciSpace::sigma(const SpinOrbitalIntegrals& so,
                                    const std::vector<double>& x) const {
  require(x.size() == dets_.size(), "FciSpace::sigma: vector size mismatch");
  const std::size_t nso = so.n_spin;
  std::vector<double> y(x.size(), 0.0);
  const std::vector<double> diag = diagonal(so);

  for (std::size_t i = 0; i < dets_.size(); ++i) {
    const double xi = x[i];
    y[i] += diag[i] * xi;
    if (xi == 0.0) continue;
    const std::uint64_t det = dets_[i];
    const auto occ = bits_of(det);
    std::vector<int> virt;
    virt.reserve(nso - occ.size());
    for (std::size_t q = 0; q < nso; ++q)
      if (!(det >> q & 1)) virt.push_back(int(q));

    // Single excitations p -> q (same spin).
    for (int p : occ) {
      for (int q : virt) {
        if ((p ^ q) & 1) continue;  // spin flip: zero element
        double elem = so.h(std::size_t(q), std::size_t(p));
        for (int r : occ) {
          if (r == p) continue;
          elem += so.v(std::size_t(q), std::size_t(r), std::size_t(p),
                       std::size_t(r));
        }
        if (elem == 0.0) continue;
        int sign = parity_below(det, p);
        const std::uint64_t m1 = det ^ (std::uint64_t(1) << p);
        sign *= parity_below(m1, q);
        const std::uint64_t m2 = m1 | (std::uint64_t(1) << q);
        y[index_.at(m2)] += sign * elem * xi;
      }
    }

    // Double excitations (p < q) -> (r < s), Sz conserving.
    for (std::size_t a = 0; a < occ.size(); ++a) {
      for (std::size_t b = a + 1; b < occ.size(); ++b) {
        const int p = occ[a], q = occ[b];
        const int spin_pq = (p & 1) + (q & 1);
        for (std::size_t cidx = 0; cidx < virt.size(); ++cidx) {
          for (std::size_t didx = cidx + 1; didx < virt.size(); ++didx) {
            const int r = virt[cidx], s = virt[didx];
            if ((r & 1) + (s & 1) != spin_pq) continue;
            const double v = so.v(std::size_t(r), std::size_t(s),
                                  std::size_t(p), std::size_t(q));
            if (v == 0.0) continue;
            // |D'> = a+_r a+_s a_q a_p |D>, applied right to left.
            int sign = parity_below(det, p);
            std::uint64_t m = det ^ (std::uint64_t(1) << p);
            sign *= parity_below(m, q);
            m ^= std::uint64_t(1) << q;
            sign *= parity_below(m, s);
            m |= std::uint64_t(1) << s;
            sign *= parity_below(m, r);
            m |= std::uint64_t(1) << r;
            y[index_.at(m)] += sign * v * xi;
          }
        }
      }
    }
  }
  return y;
}

la::RMatrix FciSpace::one_rdm(const std::vector<double>& ci) const {
  la::RMatrix rdm(n_spatial_, n_spatial_);
  for (std::size_t i = 0; i < dets_.size(); ++i) {
    const double xi = ci[i];
    if (xi == 0.0) continue;
    const std::uint64_t det = dets_[i];
    // Diagonal: occupation numbers.
    for (int so_idx : bits_of(det))
      rdm(std::size_t(so_idx / 2), std::size_t(so_idx / 2)) += xi * xi;
    // Off-diagonal: <D'|a+_P a_Q|D> with P virtual (same spin).
    for (int qi : bits_of(det)) {
      for (std::size_t pi = 0; pi < 2 * n_spatial_; ++pi) {
        if (det >> pi & 1) continue;
        if ((int(pi) ^ qi) & 1) continue;
        int sign = parity_below(det, qi);
        std::uint64_t m = det ^ (std::uint64_t(1) << qi);
        sign *= parity_below(m, int(pi));
        m |= std::uint64_t(1) << pi;
        const auto it = index_.find(m);
        if (it == index_.end()) continue;
        rdm(pi / 2, std::size_t(qi / 2)) += sign * ci[it->second] * xi;
      }
    }
  }
  return rdm;
}

FciResult fci_ground_state(const MoIntegrals& mo, int n_alpha, int n_beta,
                           const la::DavidsonOptions& options) {
  const FciSpace space(mo.n_orbitals(), n_alpha, n_beta);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);

  std::vector<double> guess(space.dim(), 0.0);
  guess[space.hf_index()] = 1.0;

  auto apply = [&](const std::vector<double>& x) { return space.sigma(so, x); };
  const auto diag = space.diagonal(so);
  const la::DavidsonResult r = la::davidson_lowest(apply, diag, guess, options);

  FciResult out;
  out.converged = r.converged;
  out.energy = r.eigenvalue;
  out.dim = space.dim();
  out.iterations = int(r.iterations);
  out.ci = r.eigenvector;
  return out;
}

double fci_expectation(const FciSpace& space, const SpinOrbitalIntegrals& so,
                       const std::vector<double>& ci) {
  const std::vector<double> hx = space.sigma(so, ci);
  double e = 0, nrm = 0;
  for (std::size_t i = 0; i < ci.size(); ++i) {
    e += ci[i] * hx[i];
    nrm += ci[i] * ci[i];
  }
  return e / nrm;
}

}  // namespace q2::chem
