#include "chem/molecule.hpp"

#include <cmath>

#include "common/types.hpp"

namespace q2::chem {

int Molecule::n_electrons() const {
  int n = 0;
  for (const auto& a : atoms_) n += a.z;
  return n - charge_;
}

double Molecule::nuclear_repulsion() const {
  double e = 0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      double r2 = 0;
      for (int d = 0; d < 3; ++d) {
        const double dx = atoms_[i].xyz[d] - atoms_[j].xyz[d];
        r2 += dx * dx;
      }
      e += double(atoms_[i].z) * double(atoms_[j].z) / std::sqrt(r2);
    }
  }
  return e;
}

Molecule Molecule::hydrogen_chain(int n, double spacing_bohr) {
  require(n >= 1, "hydrogen_chain: need atoms");
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i)
    atoms.push_back({1, {double(i) * spacing_bohr, 0, 0}});
  return Molecule(std::move(atoms));
}

Molecule Molecule::hydrogen_ring(int n, double bond_bohr) {
  require(n >= 3, "hydrogen_ring: need at least 3 atoms");
  // Circumradius such that neighbouring atoms are bond_bohr apart.
  const double radius = bond_bohr / (2.0 * std::sin(kPi / n));
  std::vector<Atom> atoms;
  for (int i = 0; i < n; ++i) {
    const double phi = 2.0 * kPi * i / n;
    atoms.push_back({1, {radius * std::cos(phi), radius * std::sin(phi), 0}});
  }
  return Molecule(std::move(atoms));
}

Molecule Molecule::h2(double r_bohr) {
  return Molecule({{1, {0, 0, 0}}, {1, {r_bohr, 0, 0}}});
}

Molecule Molecule::lih(double r_bohr) {
  return Molecule({{3, {0, 0, 0}}, {1, {r_bohr, 0, 0}}});
}

Molecule Molecule::h2o(double r_oh_angstrom, double angle_deg) {
  const double r = r_oh_angstrom * kAngstromToBohr;
  const double half = 0.5 * angle_deg * kPi / 180.0;
  return Molecule({
      {8, {0, 0, 0}},
      {1, {r * std::sin(half), r * std::cos(half), 0}},
      {1, {-r * std::sin(half), r * std::cos(half), 0}},
  });
}

Molecule Molecule::h2_trimer(double r_bohr, double separation_bohr) {
  // Three H2 units with staggered orientations (0, 50, 105 degrees): a
  // low-symmetry cluster, so few Hamiltonian coefficients vanish — matching
  // the paper's circuit count regime for "(H2)3".
  std::vector<Atom> atoms;
  const double angles[3] = {0.0, 50.0 * kPi / 180.0, 105.0 * kPi / 180.0};
  for (int m = 0; m < 3; ++m) {
    const double y = double(m) * separation_bohr;
    const double dx = 0.5 * r_bohr * std::cos(angles[m]);
    const double dz = 0.5 * r_bohr * std::sin(angles[m]);
    atoms.push_back({1, {-dx, y, -dz}});
    atoms.push_back({1, {dx, y, dz}});
  }
  return Molecule(std::move(atoms));
}

Molecule Molecule::carbon_ring(int n, double r1_bohr, double r2_bohr) {
  require(n >= 4 && n % 2 == 0, "carbon_ring: need an even ring");
  // Place atoms on a circle with alternating arc lengths proportional to the
  // two bond lengths; the circumradius follows from closing the polygon.
  const double total = (r1_bohr + r2_bohr) * (n / 2);
  const double radius = total / (2.0 * kPi);
  std::vector<Atom> atoms;
  double arc = 0;
  for (int i = 0; i < n; ++i) {
    const double phi = arc / radius;
    atoms.push_back({6, {radius * std::cos(phi), radius * std::sin(phi), 0}});
    arc += (i % 2 == 0) ? r1_bohr : r2_bohr;
  }
  return Molecule(std::move(atoms));
}

}  // namespace q2::chem
