// Molecular geometries. Coordinates are in Bohr (atomic units) internally;
// the named constructors that take Angstrom say so explicitly.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace q2::chem {

inline constexpr double kAngstromToBohr = 1.8897259886;

struct Atom {
  int z = 1;
  std::array<double, 3> xyz{0, 0, 0};  ///< Bohr
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::vector<Atom> atoms, int charge = 0)
      : atoms_(std::move(atoms)), charge_(charge) {}

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::size_t n_atoms() const { return atoms_.size(); }
  int charge() const { return charge_; }

  int n_electrons() const;
  double nuclear_repulsion() const;

  /// Linear H_n chain with the given H-H spacing (Bohr) along x.
  static Molecule hydrogen_chain(int n, double spacing_bohr);
  /// Regular H_n ring with the given nearest-neighbour bond length (Bohr).
  static Molecule hydrogen_ring(int n, double bond_bohr);
  /// H2 at bond length r (Bohr).
  static Molecule h2(double r_bohr);
  /// LiH at bond length r (Bohr); default near equilibrium.
  static Molecule lih(double r_bohr = 3.015);
  /// Water at the experimental geometry (r_OH Angstrom, angle degrees).
  static Molecule h2o(double r_oh_angstrom = 0.958,
                      double angle_deg = 104.4776);
  /// Three stacked H2 molecules — the "(H2)3" system of Figs. 8/9.
  static Molecule h2_trimer(double r_bohr = 1.4, double separation_bohr = 2.5);
  /// Planar C_n ring with alternating bond lengths r1/r2 (Bohr) — the
  /// bond-length-alternation scan geometry of Fig. 7(b). n must be even.
  static Molecule carbon_ring(int n, double r1_bohr, double r2_bohr);

 private:
  std::vector<Atom> atoms_;
  int charge_ = 0;
};

}  // namespace q2::chem
