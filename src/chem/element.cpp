#include "chem/element.hpp"

#include <array>

#include "common/types.hpp"

namespace q2::chem {
namespace {

constexpr std::array<const char*, 11> kSymbols = {
    "", "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne"};

}  // namespace

int atomic_number(const std::string& symbol) {
  for (int z = 1; z < int(kSymbols.size()); ++z)
    if (symbol == kSymbols[std::size_t(z)]) return z;
  throw Error("atomic_number: unknown element symbol " + symbol);
}

std::string element_symbol(int z) {
  require(z >= 1 && z < int(kSymbols.size()),
          "element_symbol: atomic number out of range");
  return kSymbols[std::size_t(z)];
}

}  // namespace q2::chem
