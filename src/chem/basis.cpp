#include "chem/basis.hpp"

#include <cmath>

#include "common/types.hpp"

namespace q2::chem {
namespace {

double double_factorial(int n) {
  double r = 1;
  for (int k = n; k > 1; k -= 2) r *= k;
  return r;
}

struct Shell {
  int l;  ///< 0 = s, 1 = p
  std::vector<double> exponents;
  std::vector<double> coefficients;
};

// STO-3G exponents (EMSL). Contraction coefficients are shared across the
// first row: one set for 1s, one for 2s and one for 2p.
const std::vector<double> kSto3gCoeff1s = {0.15432897, 0.53532814, 0.44463454};
const std::vector<double> kSto3gCoeff2s = {-0.09996723, 0.39951283, 0.70011547};
const std::vector<double> kSto3gCoeff2p = {0.15591627, 0.60768372, 0.39195739};

std::vector<Shell> sto3g_shells(int z) {
  auto core = [&](std::vector<double> e) {
    return Shell{0, std::move(e), kSto3gCoeff1s};
  };
  auto valence = [&](std::vector<double> e) {
    return std::vector<Shell>{{0, e, kSto3gCoeff2s}, {1, e, kSto3gCoeff2p}};
  };
  switch (z) {
    case 1:
      return {core({3.42525091, 0.62391373, 0.16885540})};
    case 2:
      return {core({6.36242139, 1.15892300, 0.31364979})};
    case 3: {
      auto v = valence({0.6362897, 0.1478601, 0.0480887});
      std::vector<Shell> s = {core({16.1195750, 2.9362007, 0.7946505})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 4: {
      auto v = valence({1.3148331, 0.3055389, 0.0993707});
      std::vector<Shell> s = {core({30.1678710, 5.4951153, 1.4871927})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 5: {
      auto v = valence({2.2369561, 0.5198205, 0.1690618});
      std::vector<Shell> s = {core({48.7911130, 8.8873622, 2.4052670})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 6: {
      auto v = valence({2.9412494, 0.6834831, 0.2222899});
      std::vector<Shell> s = {core({71.6168370, 13.0450960, 3.5305122})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 7: {
      auto v = valence({3.7804559, 0.8784966, 0.2857144});
      std::vector<Shell> s = {core({99.1061690, 18.0523120, 4.8856602})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 8: {
      auto v = valence({5.0331513, 1.1695961, 0.3803890});
      std::vector<Shell> s = {core({130.7093200, 23.8088610, 6.4436083})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 9: {
      auto v = valence({6.4648032, 1.5022812, 0.4885885});
      std::vector<Shell> s = {core({166.6791300, 30.3608120, 8.2168207})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    case 10: {
      auto v = valence({8.2463151, 1.9162662, 0.6232293});
      std::vector<Shell> s = {core({207.0156100, 37.7081510, 10.2052970})};
      s.insert(s.end(), v.begin(), v.end());
      return s;
    }
    default:
      throw Error("sto-3g: element not tabulated");
  }
}

std::vector<Shell> basis631g_shells(int z) {
  switch (z) {
    case 1:
      return {
          {0,
           {18.7311370, 2.8253937, 0.6401217},
           {0.03349460, 0.23472695, 0.81375733}},
          {0, {0.1612778}, {1.0}},
      };
    default:
      throw Error("6-31g: only hydrogen is tabulated in this build");
  }
}

// Self-overlap of a contraction whose coefficients already include primitive
// norms, used to normalize the contracted function.
double contracted_self_overlap(const BasisFunction& f) {
  double s = 0;
  double lfac = 1;
  for (int d = 0; d < 3; ++d) lfac *= double_factorial(2 * f.lmn[d] - 1);
  const int big_l = f.lmn[0] + f.lmn[1] + f.lmn[2];
  for (std::size_t k = 0; k < f.exponents.size(); ++k) {
    for (std::size_t l = 0; l < f.exponents.size(); ++l) {
      const double p = f.exponents[k] + f.exponents[l];
      s += f.coefficients[k] * f.coefficients[l] * lfac /
           std::pow(2.0 * p, big_l) * std::pow(kPi / p, 1.5);
    }
  }
  return s;
}

}  // namespace

double primitive_norm(double exponent, const std::array<int, 3>& lmn) {
  const int big_l = lmn[0] + lmn[1] + lmn[2];
  double dfac = 1;
  for (int d = 0; d < 3; ++d) dfac *= double_factorial(2 * lmn[d] - 1);
  return std::pow(2.0 * exponent / kPi, 0.75) *
         std::pow(4.0 * exponent, 0.5 * big_l) / std::sqrt(dfac);
}

BasisSet BasisSet::build(const Molecule& molecule, const std::string& name) {
  BasisSet basis;
  for (std::size_t atom = 0; atom < molecule.n_atoms(); ++atom) {
    const Atom& a = molecule.atoms()[atom];
    const std::vector<Shell> shells = (name == "sto-3g") ? sto3g_shells(a.z)
                                      : (name == "6-31g")
                                          ? basis631g_shells(a.z)
                                          : throw Error("unknown basis set");
    for (const Shell& sh : shells) {
      // Cartesian components of the shell: s -> (0,0,0); p -> x, y, z.
      std::vector<std::array<int, 3>> comps;
      if (sh.l == 0) {
        comps = {{0, 0, 0}};
      } else if (sh.l == 1) {
        comps = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
      } else {
        throw Error("BasisSet: angular momentum not supported");
      }
      for (const auto& lmn : comps) {
        BasisFunction f;
        f.lmn = lmn;
        f.center = a.xyz;
        f.exponents = sh.exponents;
        f.atom = int(atom);
        f.coefficients.resize(sh.coefficients.size());
        for (std::size_t k = 0; k < sh.coefficients.size(); ++k)
          f.coefficients[k] =
              sh.coefficients[k] * primitive_norm(sh.exponents[k], lmn);
        const double s = contracted_self_overlap(f);
        for (auto& c : f.coefficients) c /= std::sqrt(s);
        basis.functions_.push_back(std::move(f));
      }
    }
  }
  return basis;
}

std::vector<std::size_t> BasisSet::functions_on_atom(int atom) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < functions_.size(); ++i)
    if (functions_[i].atom == atom) idx.push_back(i);
  return idx;
}

}  // namespace q2::chem
