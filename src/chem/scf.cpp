#include "chem/scf.hpp"

#include <cmath>
#include <deque>

#include "linalg/eigh.hpp"
#include "linalg/gemm.hpp"

namespace q2::chem {

la::RMatrix lowdin_orthogonalizer(const la::RMatrix& overlap) {
  const la::EighResultReal eg = la::eigh(overlap);
  const std::size_t n = overlap.rows();
  la::RMatrix x(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    require(eg.values[i] > 1e-10, "lowdin: overlap matrix is singular");
    const double inv_sqrt = 1.0 / std::sqrt(eg.values[i]);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        x(r, c) += eg.vectors(r, i) * inv_sqrt * eg.vectors(c, i);
  }
  return x;
}

namespace {

la::RMatrix build_g(const EriTable& eri, const la::RMatrix& d) {
  const std::size_t n = d.rows();
  la::RMatrix g(n, n);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q <= p; ++q) {
      double sum = 0;
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s)
          sum += d(r, s) * (eri(p, q, r, s) - 0.5 * eri(p, r, q, s));
      g(p, q) = g(q, p) = sum;
    }
  }
  return g;
}

// Solve the DIIS linear system by Gaussian elimination with partial pivoting.
std::vector<double> solve_diis(std::vector<std::vector<double>> b,
                               std::vector<double> rhs) {
  const std::size_t n = rhs.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(b[r][col]) > std::abs(b[piv][col])) piv = r;
    std::swap(b[col], b[piv]);
    std::swap(rhs[col], rhs[piv]);
    if (std::abs(b[col][col]) < 1e-14) continue;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = b[r][col] / b[col][col];
      for (std::size_t c = col; c < n; ++c) b[r][c] -= f * b[col][c];
      rhs[r] -= f * rhs[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::abs(b[i][i]) > 1e-14 ? rhs[i] / b[i][i] : 0.0;
  return x;
}

}  // namespace

ScfResult rhf(const Molecule& molecule, const BasisSet& basis,
              const IntegralTables& ints, const ScfOptions& options) {
  const std::size_t n = basis.size();
  const int n_electrons = molecule.n_electrons();
  require(n_electrons % 2 == 0, "rhf: open shells are not supported");
  const int nocc = n_electrons / 2;
  require(std::size_t(nocc) <= n, "rhf: basis too small for electron count");

  const la::RMatrix hcore = ints.kinetic + ints.nuclear;
  const la::RMatrix x = lowdin_orthogonalizer(ints.overlap);

  ScfResult result;
  result.nuclear_repulsion = molecule.nuclear_repulsion();
  result.n_occupied = nocc;

  // Core-Hamiltonian guess.
  la::RMatrix c;
  {
    const la::RMatrix hp = la::matmul(la::matmul(x, hcore, la::Op::kTrans), x);
    const la::EighResultReal eg = la::eigh(hp);
    c = la::matmul(x, eg.vectors);
  }
  auto density_of = [&](const la::RMatrix& coeff) {
    la::RMatrix d(n, n);
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = 0; q < n; ++q) {
        double s = 0;
        for (int i = 0; i < nocc; ++i) s += coeff(p, std::size_t(i)) * coeff(q, std::size_t(i));
        d(p, q) = 2.0 * s;
      }
    return d;
  };
  la::RMatrix d = density_of(c);

  std::deque<la::RMatrix> diis_focks, diis_errors;
  double e_old = 0;
  la::RMatrix fock;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    fock = hcore + build_g(ints.eri, d);

    // DIIS error e = X^T (FDS - SDF) X.
    const la::RMatrix fds =
        la::matmul(la::matmul(fock, d), ints.overlap);
    la::RMatrix err = fds - fds.transposed();
    err = la::matmul(la::matmul(x, err, la::Op::kTrans), x);
    diis_focks.push_back(fock);
    diis_errors.push_back(err);
    if (diis_focks.size() > options.diis_size) {
      diis_focks.pop_front();
      diis_errors.pop_front();
    }

    la::RMatrix fock_eff = fock;
    if (diis_focks.size() >= 2) {
      const std::size_t m = diis_focks.size();
      std::vector<std::vector<double>> b(m + 1, std::vector<double>(m + 1, -1.0));
      std::vector<double> rhs(m + 1, 0.0);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j) {
          double dot = 0;
          for (std::size_t k = 0; k < diis_errors[i].size(); ++k)
            dot += diis_errors[i].data()[k] * diis_errors[j].data()[k];
          b[i][j] = dot;
        }
      b[m][m] = 0.0;
      rhs[m] = -1.0;
      const std::vector<double> w = solve_diis(b, rhs);
      fock_eff = la::RMatrix(n, n);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t k = 0; k < fock_eff.size(); ++k)
          fock_eff.data()[k] += w[i] * diis_focks[i].data()[k];
      }
    }

    const la::RMatrix fp = la::matmul(la::matmul(x, fock_eff, la::Op::kTrans), x);
    const la::EighResultReal eg = la::eigh(fp);
    c = la::matmul(x, eg.vectors);
    const la::RMatrix d_new = density_of(c);

    double e_elec = 0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = 0; q < n; ++q)
        e_elec += 0.5 * d_new(p, q) * (hcore(p, q) + fock(p, q));

    double d_diff = 0;
    for (std::size_t k = 0; k < d.size(); ++k)
      d_diff = std::max(d_diff, std::abs(d_new.data()[k] - d.data()[k]));
    d = d_new;

    result.iterations = iter;
    result.orbital_energies = eg.values;
    if (std::abs(e_elec - e_old) < options.energy_tolerance &&
        d_diff < options.density_tolerance) {
      result.converged = true;
      result.electronic_energy = e_elec;
      break;
    }
    e_old = e_elec;
    result.electronic_energy = e_elec;
  }

  result.coefficients = c;
  result.density = d;
  result.fock = hcore + build_g(ints.eri, d);
  result.energy = result.electronic_energy + result.nuclear_repulsion;
  return result;
}

}  // namespace q2::chem
