#include "chem/cc.hpp"

#include <cmath>

namespace q2::chem {
namespace {

// Dense rank-2/4 amplitude containers with occupied/virtual split indices.
struct Amps {
  std::size_t no, nv;
  std::vector<double> t1;  // (i, a)
  std::vector<double> t2;  // (i, j, a, b)

  Amps(std::size_t no, std::size_t nv)
      : no(no), nv(nv), t1(no * nv, 0.0), t2(no * no * nv * nv, 0.0) {}

  double& s(std::size_t i, std::size_t a) { return t1[i * nv + a]; }
  double s(std::size_t i, std::size_t a) const { return t1[i * nv + a]; }
  double& d(std::size_t i, std::size_t j, std::size_t a, std::size_t b) {
    return t2[((i * no + j) * nv + a) * nv + b];
  }
  double d(std::size_t i, std::size_t j, std::size_t a, std::size_t b) const {
    return t2[((i * no + j) * nv + a) * nv + b];
  }
};

// Spin-orbital working set: Fock matrix and <pq||rs> with occ = [0, no),
// virt = [no, no+nv) in the *spin-orbital* index space.
struct Work {
  std::size_t no, nv, n;
  std::vector<double> fock;  // n x n
  const SpinOrbitalIntegrals* so;

  double f(std::size_t p, std::size_t q) const { return fock[p * n + q]; }
  double v(std::size_t p, std::size_t q, std::size_t r, std::size_t s) const {
    return so->v(p, q, r, s);
  }
};

}  // namespace

double mp2_correlation_energy(const MoIntegrals& mo, int n_occ) {
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const std::size_t no = 2 * std::size_t(n_occ);
  const std::size_t n = so.n_spin;

  // Canonical HF assumed: orbital energies from the diagonal Fock elements.
  std::vector<double> eps(n);
  for (std::size_t p = 0; p < n; ++p) {
    double f = so.h(p, p);
    for (std::size_t i = 0; i < no; ++i) f += so.v(p, i, p, i);
    eps[p] = f;
  }

  double e = 0;
  for (std::size_t i = 0; i < no; ++i)
    for (std::size_t j = 0; j < no; ++j)
      for (std::size_t a = no; a < n; ++a)
        for (std::size_t b = no; b < n; ++b) {
          const double num = so.v(i, j, a, b);
          if (num == 0.0) continue;
          e += 0.25 * num * num / (eps[i] + eps[j] - eps[a] - eps[b]);
        }
  return e;
}

CcsdResult ccsd(const MoIntegrals& mo, int n_occ, double reference_energy,
                const CcsdOptions& options) {
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const std::size_t no = 2 * std::size_t(n_occ);
  const std::size_t n = so.n_spin;
  const std::size_t nv = n - no;
  require(nv >= 1, "ccsd: no virtual orbitals");

  Work w{no, nv, n, std::vector<double>(n * n, 0.0), &so};
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      double f = so.h(p, q);
      for (std::size_t i = 0; i < no; ++i) f += so.v(p, i, q, i);
      w.fock[p * n + q] = f;
    }

  // Spin-orbital index helpers: i,j,m,n in [0,no); a,b,e,f map to no+idx.
  auto O = [](std::size_t i) { return i; };
  auto V = [&](std::size_t a) { return no + a; };

  std::vector<double> d1(no * nv), d2(no * no * nv * nv);
  for (std::size_t i = 0; i < no; ++i)
    for (std::size_t a = 0; a < nv; ++a)
      d1[i * nv + a] = w.f(O(i), O(i)) - w.f(V(a), V(a));
  for (std::size_t i = 0; i < no; ++i)
    for (std::size_t j = 0; j < no; ++j)
      for (std::size_t a = 0; a < nv; ++a)
        for (std::size_t b = 0; b < nv; ++b)
          d2[((i * no + j) * nv + a) * nv + b] = w.f(O(i), O(i)) +
                                                w.f(O(j), O(j)) -
                                                w.f(V(a), V(a)) -
                                                w.f(V(b), V(b));

  Amps t(no, nv);
  for (std::size_t i = 0; i < no; ++i)
    for (std::size_t j = 0; j < no; ++j)
      for (std::size_t a = 0; a < nv; ++a)
        for (std::size_t b = 0; b < nv; ++b)
          t.d(i, j, a, b) =
              w.v(O(i), O(j), V(a), V(b)) / d2[((i * no + j) * nv + a) * nv + b];

  auto cc_energy = [&](const Amps& amp) {
    double e = 0;
    for (std::size_t i = 0; i < no; ++i)
      for (std::size_t a = 0; a < nv; ++a) e += w.f(O(i), V(a)) * amp.s(i, a);
    for (std::size_t i = 0; i < no; ++i)
      for (std::size_t j = 0; j < no; ++j)
        for (std::size_t a = 0; a < nv; ++a)
          for (std::size_t b = 0; b < nv; ++b) {
            const double vij = w.v(O(i), O(j), V(a), V(b));
            e += 0.25 * vij * amp.d(i, j, a, b) +
                 0.5 * vij * amp.s(i, a) * amp.s(j, b);
          }
    return e;
  };

  CcsdResult result;
  result.mp2_energy = cc_energy(t);

  auto tau_t = [&](const Amps& amp, std::size_t i, std::size_t j, std::size_t a,
                   std::size_t b) {
    return amp.d(i, j, a, b) + 0.5 * (amp.s(i, a) * amp.s(j, b) -
                                      amp.s(i, b) * amp.s(j, a));
  };
  auto tau = [&](const Amps& amp, std::size_t i, std::size_t j, std::size_t a,
                 std::size_t b) {
    return amp.d(i, j, a, b) + amp.s(i, a) * amp.s(j, b) -
           amp.s(i, b) * amp.s(j, a);
  };

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // --- Stanton et al. intermediates -----------------------------------
    std::vector<double> fae(nv * nv, 0.0), fmi(no * no, 0.0), fme(no * nv, 0.0);
    for (std::size_t a = 0; a < nv; ++a)
      for (std::size_t e = 0; e < nv; ++e) {
        double x = (a == e) ? 0.0 : w.f(V(a), V(e));
        for (std::size_t m = 0; m < no; ++m) {
          x -= 0.5 * w.f(O(m), V(e)) * t.s(m, a);
          for (std::size_t f = 0; f < nv; ++f) {
            x += t.s(m, f) * w.v(O(m), V(a), V(f), V(e));
            for (std::size_t nn = 0; nn < no; ++nn)
              x -= 0.5 * tau_t(t, m, nn, a, f) * w.v(O(m), O(nn), V(e), V(f));
          }
        }
        fae[a * nv + e] = x;
      }
    for (std::size_t m = 0; m < no; ++m)
      for (std::size_t i = 0; i < no; ++i) {
        double x = (m == i) ? 0.0 : w.f(O(m), O(i));
        for (std::size_t e = 0; e < nv; ++e) {
          x += 0.5 * t.s(i, e) * w.f(O(m), V(e));
          for (std::size_t nn = 0; nn < no; ++nn) {
            x += t.s(nn, e) * w.v(O(m), O(nn), O(i), V(e));
            for (std::size_t f = 0; f < nv; ++f)
              x += 0.5 * tau_t(t, i, nn, e, f) * w.v(O(m), O(nn), V(e), V(f));
          }
        }
        fmi[m * no + i] = x;
      }
    for (std::size_t m = 0; m < no; ++m)
      for (std::size_t e = 0; e < nv; ++e) {
        double x = w.f(O(m), V(e));
        for (std::size_t nn = 0; nn < no; ++nn)
          for (std::size_t f = 0; f < nv; ++f)
            x += t.s(nn, f) * w.v(O(m), O(nn), V(e), V(f));
        fme[m * nv + e] = x;
      }

    std::vector<double> wmnij(no * no * no * no, 0.0);
    for (std::size_t m = 0; m < no; ++m)
      for (std::size_t nn = 0; nn < no; ++nn)
        for (std::size_t i = 0; i < no; ++i)
          for (std::size_t j = 0; j < no; ++j) {
            double x = w.v(O(m), O(nn), O(i), O(j));
            for (std::size_t e = 0; e < nv; ++e) {
              x += t.s(j, e) * w.v(O(m), O(nn), O(i), V(e)) -
                   t.s(i, e) * w.v(O(m), O(nn), O(j), V(e));
              for (std::size_t f = 0; f < nv; ++f)
                x += 0.25 * tau(t, i, j, e, f) * w.v(O(m), O(nn), V(e), V(f));
            }
            wmnij[((m * no + nn) * no + i) * no + j] = x;
          }

    std::vector<double> wabef(nv * nv * nv * nv, 0.0);
    for (std::size_t a = 0; a < nv; ++a)
      for (std::size_t b = 0; b < nv; ++b)
        for (std::size_t e = 0; e < nv; ++e)
          for (std::size_t f = 0; f < nv; ++f) {
            double x = w.v(V(a), V(b), V(e), V(f));
            for (std::size_t m = 0; m < no; ++m) {
              x += -t.s(m, b) * w.v(V(a), O(m), V(e), V(f)) +
                   t.s(m, a) * w.v(V(b), O(m), V(e), V(f));
              for (std::size_t nn = 0; nn < no; ++nn)
                x += 0.25 * tau(t, m, nn, a, b) * w.v(O(m), O(nn), V(e), V(f));
            }
            wabef[((a * nv + b) * nv + e) * nv + f] = x;
          }

    std::vector<double> wmbej(no * nv * nv * no, 0.0);
    for (std::size_t m = 0; m < no; ++m)
      for (std::size_t b = 0; b < nv; ++b)
        for (std::size_t e = 0; e < nv; ++e)
          for (std::size_t j = 0; j < no; ++j) {
            double x = w.v(O(m), V(b), V(e), O(j));
            for (std::size_t f = 0; f < nv; ++f)
              x += t.s(j, f) * w.v(O(m), V(b), V(e), V(f));
            for (std::size_t nn = 0; nn < no; ++nn) {
              x -= t.s(nn, b) * w.v(O(m), O(nn), V(e), O(j));
              for (std::size_t f = 0; f < nv; ++f)
                x -= (0.5 * t.d(j, nn, f, b) + t.s(j, f) * t.s(nn, b)) *
                     w.v(O(m), O(nn), V(e), V(f));
            }
            wmbej[((m * nv + b) * nv + e) * no + j] = x;
          }

    // --- T1 equations ----------------------------------------------------
    Amps tn(no, nv);
    for (std::size_t i = 0; i < no; ++i)
      for (std::size_t a = 0; a < nv; ++a) {
        double x = w.f(O(i), V(a));
        for (std::size_t e = 0; e < nv; ++e) x += t.s(i, e) * fae[a * nv + e];
        for (std::size_t m = 0; m < no; ++m) {
          x -= t.s(m, a) * fmi[m * no + i];
          for (std::size_t e = 0; e < nv; ++e) {
            x += t.d(i, m, a, e) * fme[m * nv + e];
            for (std::size_t f = 0; f < nv; ++f)
              x -= 0.5 * t.d(i, m, e, f) * w.v(O(m), V(a), V(e), V(f));
            for (std::size_t nn = 0; nn < no; ++nn)
              x -= 0.5 * t.d(m, nn, a, e) * w.v(O(nn), O(m), V(e), O(i));
          }
        }
        for (std::size_t nn = 0; nn < no; ++nn)
          for (std::size_t f = 0; f < nv; ++f)
            x -= t.s(nn, f) * w.v(O(nn), V(a), O(i), V(f));
        tn.s(i, a) = x / d1[i * nv + a];
      }

    // --- T2 equations ----------------------------------------------------
    for (std::size_t i = 0; i < no; ++i)
      for (std::size_t j = 0; j < no; ++j)
        for (std::size_t a = 0; a < nv; ++a)
          for (std::size_t b = 0; b < nv; ++b) {
            double x = w.v(O(i), O(j), V(a), V(b));
            for (std::size_t e = 0; e < nv; ++e) {
              double fa = fae[b * nv + e], fb = fae[a * nv + e];
              double ca = 0, cb = 0;
              for (std::size_t m = 0; m < no; ++m) {
                ca += 0.5 * t.s(m, b) * fme[m * nv + e];
                cb += 0.5 * t.s(m, a) * fme[m * nv + e];
              }
              x += t.d(i, j, a, e) * (fa - ca) - t.d(i, j, b, e) * (fb - cb);
            }
            for (std::size_t m = 0; m < no; ++m) {
              double fa = fmi[m * no + j], fb = fmi[m * no + i];
              double ca = 0, cb = 0;
              for (std::size_t e = 0; e < nv; ++e) {
                ca += 0.5 * t.s(j, e) * fme[m * nv + e];
                cb += 0.5 * t.s(i, e) * fme[m * nv + e];
              }
              x += -t.d(i, m, a, b) * (fa + ca) + t.d(j, m, a, b) * (fb + cb);
            }
            for (std::size_t m = 0; m < no; ++m)
              for (std::size_t nn = 0; nn < no; ++nn)
                x += 0.5 * tau(t, m, nn, a, b) *
                     wmnij[((m * no + nn) * no + i) * no + j];
            for (std::size_t e = 0; e < nv; ++e)
              for (std::size_t f = 0; f < nv; ++f)
                x += 0.5 * tau(t, i, j, e, f) *
                     wabef[((a * nv + b) * nv + e) * nv + f];
            for (std::size_t m = 0; m < no; ++m)
              for (std::size_t e = 0; e < nv; ++e) {
                x += t.d(i, m, a, e) * wmbej[((m * nv + b) * nv + e) * no + j] -
                     t.s(i, e) * t.s(m, a) * w.v(O(m), V(b), V(e), O(j));
                x -= t.d(j, m, a, e) * wmbej[((m * nv + b) * nv + e) * no + i] -
                     t.s(j, e) * t.s(m, a) * w.v(O(m), V(b), V(e), O(i));
                x -= t.d(i, m, b, e) * wmbej[((m * nv + a) * nv + e) * no + j] -
                     t.s(i, e) * t.s(m, b) * w.v(O(m), V(a), V(e), O(j));
                x += t.d(j, m, b, e) * wmbej[((m * nv + a) * nv + e) * no + i] -
                     t.s(j, e) * t.s(m, b) * w.v(O(m), V(a), V(e), O(i));
              }
            for (std::size_t e = 0; e < nv; ++e) {
              x += t.s(i, e) * w.v(V(a), V(b), V(e), O(j)) -
                   t.s(j, e) * w.v(V(a), V(b), V(e), O(i));
            }
            for (std::size_t m = 0; m < no; ++m) {
              x += -t.s(m, a) * w.v(O(m), V(b), O(i), O(j)) +
                   t.s(m, b) * w.v(O(m), V(a), O(i), O(j));
            }
            tn.d(i, j, a, b) = x / d2[((i * no + j) * nv + a) * nv + b];
          }

    // Convergence on amplitude change; optional damping stabilizes stretched
    // geometries.
    double diff = 0;
    for (std::size_t k = 0; k < tn.t1.size(); ++k)
      diff += (tn.t1[k] - t.t1[k]) * (tn.t1[k] - t.t1[k]);
    for (std::size_t k = 0; k < tn.t2.size(); ++k)
      diff += (tn.t2[k] - t.t2[k]) * (tn.t2[k] - t.t2[k]);
    diff = std::sqrt(diff);

    if (options.damping > 0) {
      const double mix = options.damping;
      for (std::size_t k = 0; k < tn.t1.size(); ++k)
        tn.t1[k] = (1 - mix) * tn.t1[k] + mix * t.t1[k];
      for (std::size_t k = 0; k < tn.t2.size(); ++k)
        tn.t2[k] = (1 - mix) * tn.t2[k] + mix * t.t2[k];
    }
    t = tn;
    result.iterations = iter;
    if (diff < options.amplitude_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.correlation_energy = cc_energy(t);
  result.energy = reference_energy + result.correlation_energy;
  return result;
}

}  // namespace q2::chem
