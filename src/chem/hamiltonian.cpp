#include "chem/hamiltonian.hpp"

#include <unordered_set>

namespace q2::chem {
namespace {

constexpr double kCoeffCut = 1e-12;

pauli::FermionOperator weighted_fermion_operator(
    const MoIntegrals& mo, const std::unordered_set<std::size_t>* fragment) {
  const std::size_t n = mo.n_orbitals();
  pauli::FermionOperator op(2 * n);

  auto weight1 = [&](std::size_t p, std::size_t q) {
    if (!fragment) return 1.0;
    return 0.5 * (double(fragment->count(p)) + double(fragment->count(q)));
  };
  auto weight2 = [&](std::size_t p, std::size_t q, std::size_t r,
                     std::size_t s) {
    if (!fragment) return 1.0;
    return 0.25 * (double(fragment->count(p)) + double(fragment->count(q)) +
                   double(fragment->count(r)) + double(fragment->count(s)));
  };

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      const double w = weight1(p, q);
      const double hpq = mo.h(p, q) * w;
      if (std::abs(hpq) < kCoeffCut) continue;
      for (std::size_t sigma = 0; sigma < 2; ++sigma)
        op.add_term({{2 * p + sigma, true}, {2 * q + sigma, false}}, hpq);
    }
  }
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t s = 0; s < n; ++s) {
          const double w = weight2(p, q, r, s);
          const double g = 0.5 * mo.eri(p, q, r, s) * w;
          if (std::abs(g) < kCoeffCut) continue;
          for (std::size_t sigma = 0; sigma < 2; ++sigma)
            for (std::size_t tau = 0; tau < 2; ++tau) {
              // a+_{p sigma} a+_{r tau} a_{s tau} a_{q sigma}
              op.add_term({{2 * p + sigma, true},
                           {2 * r + tau, true},
                           {2 * s + tau, false},
                           {2 * q + sigma, false}},
                          g);
            }
        }
  return op;
}

}  // namespace

pauli::FermionOperator molecular_fermion_operator(const MoIntegrals& mo) {
  return weighted_fermion_operator(mo, nullptr);
}

pauli::QubitOperator molecular_qubit_hamiltonian(const MoIntegrals& mo) {
  pauli::QubitOperator h = pauli::jordan_wigner(molecular_fermion_operator(mo));
  h += pauli::QubitOperator::identity(2 * mo.n_orbitals(), mo.core_energy());
  h.compress(1e-10);
  return h;
}

pauli::QubitOperator fragment_weighted_hamiltonian(
    const MoIntegrals& mo, const std::vector<std::size_t>& fragment_orbitals) {
  const std::unordered_set<std::size_t> frag(fragment_orbitals.begin(),
                                             fragment_orbitals.end());
  pauli::QubitOperator h =
      pauli::jordan_wigner(weighted_fermion_operator(mo, &frag));
  h.compress(1e-10);
  return h;
}

pauli::QubitOperator one_body_qubit_operator(const la::RMatrix& coeff) {
  require(coeff.rows() == coeff.cols(), "one_body_qubit_operator: not square");
  const std::size_t n = coeff.rows();
  pauli::FermionOperator op(2 * n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (std::abs(coeff(p, q)) < kCoeffCut) continue;
      for (std::size_t sigma = 0; sigma < 2; ++sigma)
        op.add_term({{2 * p + sigma, true}, {2 * q + sigma, false}},
                    coeff(p, q));
    }
  pauli::QubitOperator out = pauli::jordan_wigner(op);
  out.compress(1e-12);
  return out;
}

pauli::QubitOperator number_operator(std::size_t n_spatial,
                                     const std::vector<std::size_t>& orbitals) {
  pauli::QubitOperator n_op(2 * n_spatial);
  for (std::size_t p : orbitals) {
    require(p < n_spatial, "number_operator: orbital out of range");
    n_op += pauli::jw_number(2 * n_spatial, 2 * p);
    n_op += pauli::jw_number(2 * n_spatial, 2 * p + 1);
  }
  return n_op;
}

}  // namespace q2::chem
