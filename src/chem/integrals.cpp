#include "chem/integrals.hpp"

#include <cmath>

#include "chem/boys.hpp"
#include "common/types.hpp"

namespace q2::chem {
namespace {

// Hermite expansion coefficient E_t^{ij} for a 1D Gaussian product
// (McMurchie-Davidson / Helgaker recursion). Qx = A_x - B_x.
double hermite_e(int i, int j, int t, double qx, double a, double b) {
  const double p = a + b;
  const double mu = a * b / p;
  if (t < 0 || t > i + j) return 0.0;
  if (i == 0 && j == 0 && t == 0) return std::exp(-mu * qx * qx);
  if (j == 0) {
    return (1.0 / (2.0 * p)) * hermite_e(i - 1, j, t - 1, qx, a, b) -
           (mu * qx / a) * hermite_e(i - 1, j, t, qx, a, b) +
           (t + 1) * hermite_e(i - 1, j, t + 1, qx, a, b);
  }
  return (1.0 / (2.0 * p)) * hermite_e(i, j - 1, t - 1, qx, a, b) +
         (mu * qx / b) * hermite_e(i, j - 1, t, qx, a, b) +
         (t + 1) * hermite_e(i, j - 1, t + 1, qx, a, b);
}

// Hermite Coulomb tensor R^0_{tuv}(p, PC) built by downward-n recursion.
// Returns R[t][u][v] for t <= tmax etc.
std::vector<double> hermite_coulomb(int tmax, int umax, int vmax, double p,
                                    const std::array<double, 3>& pc) {
  const double r2 = pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
  const int nmax = tmax + umax + vmax;
  const std::vector<double> f = boys(nmax, p * r2);

  const int dt = tmax + 1, du = umax + 1, dv = vmax + 1;
  auto idx = [&](int t, int u, int v) { return (t * du + u) * dv + v; };
  // r[n] holds R^n_{tuv}; build from n = nmax down to 0.
  std::vector<std::vector<double>> r(std::size_t(nmax) + 1,
                                     std::vector<double>(std::size_t(dt * du * dv), 0.0));
  for (int n = nmax; n >= 0; --n) {
    double pw = 1.0;
    for (int k = 0; k < n; ++k) pw *= -2.0 * p;
    r[std::size_t(n)][std::size_t(idx(0, 0, 0))] = pw * f[std::size_t(n)];
    if (n == nmax) continue;
    const auto& up = r[std::size_t(n + 1)];
    auto& cur = r[std::size_t(n)];
    for (int t = 0; t <= tmax; ++t) {
      for (int u = 0; u <= umax; ++u) {
        for (int v = 0; v <= vmax; ++v) {
          if (t + u + v == 0) continue;
          double val = 0;
          if (t > 0) {
            val = pc[0] * up[std::size_t(idx(t - 1, u, v))];
            if (t > 1) val += (t - 1) * up[std::size_t(idx(t - 2, u, v))];
          } else if (u > 0) {
            val = pc[1] * up[std::size_t(idx(t, u - 1, v))];
            if (u > 1) val += (u - 1) * up[std::size_t(idx(t, u - 2, v))];
          } else {
            val = pc[2] * up[std::size_t(idx(t, u, v - 1))];
            if (v > 1) val += (v - 1) * up[std::size_t(idx(t, u, v - 2))];
          }
          cur[std::size_t(idx(t, u, v))] = val;
        }
      }
    }
  }
  return r[0];
}

// Precomputed primitive-pair data for one pair of contracted functions.
struct PrimPair {
  double p;                      ///< combined exponent
  std::array<double, 3> center;  ///< Gaussian product centre P
  double coeff;                  ///< c_a * c_b
  std::array<std::vector<double>, 3> e;  ///< E_t per dimension, t = 0..la+lb
};

std::vector<PrimPair> make_pairs(const BasisFunction& a, const BasisFunction& b) {
  std::vector<PrimPair> pairs;
  pairs.reserve(a.exponents.size() * b.exponents.size());
  for (std::size_t k = 0; k < a.exponents.size(); ++k) {
    for (std::size_t l = 0; l < b.exponents.size(); ++l) {
      PrimPair pp;
      const double ae = a.exponents[k], be = b.exponents[l];
      pp.p = ae + be;
      pp.coeff = a.coefficients[k] * b.coefficients[l];
      for (int d = 0; d < 3; ++d) {
        pp.center[d] = (ae * a.center[d] + be * b.center[d]) / pp.p;
        const int i = a.lmn[d], j = b.lmn[d];
        pp.e[d].resize(std::size_t(i + j) + 1);
        for (int t = 0; t <= i + j; ++t)
          pp.e[d][std::size_t(t)] =
              hermite_e(i, j, t, a.center[d] - b.center[d], ae, be);
      }
      pairs.push_back(std::move(pp));
    }
  }
  return pairs;
}

}  // namespace

EriTable::EriTable(std::size_t n) : n_(n) {
  const std::size_t np = n * (n + 1) / 2;
  data_.assign(np * (np + 1) / 2, 0.0);
}

double overlap_integral(const BasisFunction& a, const BasisFunction& b) {
  double s = 0;
  for (const PrimPair& pp : make_pairs(a, b)) {
    s += pp.coeff * pp.e[0][0] * pp.e[1][0] * pp.e[2][0] *
         std::pow(kPi / pp.p, 1.5);
  }
  return s;
}

double kinetic_integral(const BasisFunction& a, const BasisFunction& b) {
  double t_total = 0;
  for (std::size_t k = 0; k < a.exponents.size(); ++k) {
    for (std::size_t l = 0; l < b.exponents.size(); ++l) {
      const double ae = a.exponents[k], be = b.exponents[l];
      const double p = ae + be;
      const double coeff = a.coefficients[k] * b.coefficients[l];
      double s0[3], kin[3];
      for (int d = 0; d < 3; ++d) {
        const int i = a.lmn[d], j = b.lmn[d];
        const double q = a.center[d] - b.center[d];
        const double sij = hermite_e(i, j, 0, q, ae, be);
        const double sij_p2 = hermite_e(i, j + 2, 0, q, ae, be);
        const double sij_m2 = j >= 2 ? hermite_e(i, j - 2, 0, q, ae, be) : 0.0;
        s0[d] = sij;
        kin[d] = -2.0 * be * be * sij_p2 + be * (2 * j + 1) * sij -
                 0.5 * j * (j - 1) * sij_m2;
      }
      t_total += coeff * std::pow(kPi / p, 1.5) *
                 (kin[0] * s0[1] * s0[2] + s0[0] * kin[1] * s0[2] +
                  s0[0] * s0[1] * kin[2]);
    }
  }
  return t_total;
}

double nuclear_integral(const BasisFunction& a, const BasisFunction& b,
                        const std::array<double, 3>& nucleus, int z) {
  const int tmax = a.lmn[0] + b.lmn[0];
  const int umax = a.lmn[1] + b.lmn[1];
  const int vmax = a.lmn[2] + b.lmn[2];
  double v_total = 0;
  for (const PrimPair& pp : make_pairs(a, b)) {
    std::array<double, 3> pc;
    for (int d = 0; d < 3; ++d) pc[d] = pp.center[d] - nucleus[d];
    const std::vector<double> r = hermite_coulomb(tmax, umax, vmax, pp.p, pc);
    auto idx = [&](int t, int u, int v) {
      return std::size_t((t * (umax + 1) + u) * (vmax + 1) + v);
    };
    double sum = 0;
    for (int t = 0; t <= tmax; ++t)
      for (int u = 0; u <= umax; ++u)
        for (int v = 0; v <= vmax; ++v)
          sum += pp.e[0][std::size_t(t)] * pp.e[1][std::size_t(u)] *
                 pp.e[2][std::size_t(v)] * r[idx(t, u, v)];
    v_total += pp.coeff * (2.0 * kPi / pp.p) * sum;
  }
  return -double(z) * v_total;
}

namespace {

double eri_from_pairs(const std::vector<PrimPair>& bra, int tb, int ub, int vb,
                      const std::vector<PrimPair>& ket, int tk, int uk, int vk) {
  double total = 0;
  for (const PrimPair& b : bra) {
    for (const PrimPair& k : ket) {
      const double alpha = b.p * k.p / (b.p + k.p);
      std::array<double, 3> pq;
      for (int d = 0; d < 3; ++d) pq[d] = b.center[d] - k.center[d];
      const std::vector<double> r =
          hermite_coulomb(tb + tk, ub + uk, vb + vk, alpha, pq);
      const int du = ub + uk + 1, dv = vb + vk + 1;
      auto idx = [&](int t, int u, int v) {
        return std::size_t((t * du + u) * dv + v);
      };
      double sum = 0;
      for (int t = 0; t <= tb; ++t)
        for (int u = 0; u <= ub; ++u)
          for (int v = 0; v <= vb; ++v) {
            const double eb = b.e[0][std::size_t(t)] * b.e[1][std::size_t(u)] *
                              b.e[2][std::size_t(v)];
            if (eb == 0.0) continue;
            for (int tt = 0; tt <= tk; ++tt)
              for (int uu = 0; uu <= uk; ++uu)
                for (int vv = 0; vv <= vk; ++vv) {
                  const double ek = k.e[0][std::size_t(tt)] *
                                    k.e[1][std::size_t(uu)] *
                                    k.e[2][std::size_t(vv)];
                  if (ek == 0.0) continue;
                  const double sign = ((tt + uu + vv) % 2) ? -1.0 : 1.0;
                  sum += eb * ek * sign * r[idx(t + tt, u + uu, v + vv)];
                }
          }
      total += b.coeff * k.coeff * sum * 2.0 * std::pow(kPi, 2.5) /
               (b.p * k.p * std::sqrt(b.p + k.p));
    }
  }
  return total;
}

}  // namespace

double eri_integral(const BasisFunction& a, const BasisFunction& b,
                    const BasisFunction& c, const BasisFunction& d) {
  const auto bra = make_pairs(a, b);
  const auto ket = make_pairs(c, d);
  return eri_from_pairs(bra, a.lmn[0] + b.lmn[0], a.lmn[1] + b.lmn[1],
                        a.lmn[2] + b.lmn[2], ket, c.lmn[0] + d.lmn[0],
                        c.lmn[1] + d.lmn[1], c.lmn[2] + d.lmn[2]);
}

IntegralTables compute_integrals(const Molecule& molecule, const BasisSet& basis) {
  const std::size_t n = basis.size();
  IntegralTables out;
  out.overlap = la::RMatrix(n, n);
  out.kinetic = la::RMatrix(n, n);
  out.nuclear = la::RMatrix(n, n);
  out.eri = EriTable(n);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q <= p; ++q) {
      const double s = overlap_integral(basis[p], basis[q]);
      const double t = kinetic_integral(basis[p], basis[q]);
      double v = 0;
      for (const Atom& atom : molecule.atoms())
        v += nuclear_integral(basis[p], basis[q], atom.xyz, atom.z);
      out.overlap(p, q) = out.overlap(q, p) = s;
      out.kinetic(p, q) = out.kinetic(q, p) = t;
      out.nuclear(p, q) = out.nuclear(q, p) = v;
    }
  }

  // Pair cache + Schwarz screening for the O(n^4) ERI pass.
  std::vector<std::vector<PrimPair>> pair_cache;
  std::vector<std::array<int, 3>> pair_l;
  std::vector<std::pair<std::size_t, std::size_t>> pair_fn;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q <= p; ++q) {
      pair_cache.push_back(make_pairs(basis[p], basis[q]));
      pair_l.push_back({basis[p].lmn[0] + basis[q].lmn[0],
                        basis[p].lmn[1] + basis[q].lmn[1],
                        basis[p].lmn[2] + basis[q].lmn[2]});
      pair_fn.emplace_back(p, q);
    }
  }
  const std::size_t npairs = pair_cache.size();
  std::vector<double> schwarz(npairs);
  for (std::size_t i = 0; i < npairs; ++i) {
    const auto& l = pair_l[i];
    schwarz[i] = std::sqrt(std::abs(eri_from_pairs(
        pair_cache[i], l[0], l[1], l[2], pair_cache[i], l[0], l[1], l[2])));
  }

  constexpr double kScreen = 1e-12;
  for (std::size_t i = 0; i < npairs; ++i) {
    if (schwarz[i] == 0) continue;
    for (std::size_t j = 0; j <= i; ++j) {
      if (schwarz[i] * schwarz[j] < kScreen) continue;
      const auto& li = pair_l[i];
      const auto& lj = pair_l[j];
      const double value =
          eri_from_pairs(pair_cache[i], li[0], li[1], li[2], pair_cache[j],
                         lj[0], lj[1], lj[2]);
      out.eri.set(pair_fn[i].first, pair_fn[i].second, pair_fn[j].first,
                  pair_fn[j].second, value);
    }
  }
  return out;
}

}  // namespace q2::chem
