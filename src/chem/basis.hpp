// Gaussian basis sets. Cartesian contracted Gaussians; STO-3G for H..Ne and
// 6-31G for H are embedded (the repo is fully offline). Each basis function
// records which atom it sits on, which is what the DMET fragmenter keys on.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "chem/molecule.hpp"

namespace q2::chem {

/// One contracted Cartesian Gaussian: sum_k c_k N_k x^l y^m z^n e^{-a_k r^2}.
struct BasisFunction {
  std::array<int, 3> lmn{0, 0, 0};
  std::array<double, 3> center{0, 0, 0};
  std::vector<double> exponents;
  std::vector<double> coefficients;  ///< includes primitive + contraction norms
  int atom = 0;                      ///< owning atom index in the molecule
};

class BasisSet {
 public:
  /// Builds the basis for a molecule. `name` is "sto-3g" or "6-31g"
  /// (6-31G supports hydrogen only).
  static BasisSet build(const Molecule& molecule, const std::string& name);

  std::size_t size() const { return functions_.size(); }
  const std::vector<BasisFunction>& functions() const { return functions_; }
  const BasisFunction& operator[](std::size_t i) const { return functions_[i]; }

  /// Indices of the basis functions centred on `atom`.
  std::vector<std::size_t> functions_on_atom(int atom) const;

 private:
  std::vector<BasisFunction> functions_;
};

/// Normalization constant of a primitive Cartesian Gaussian.
double primitive_norm(double exponent, const std::array<int, 3>& lmn);

}  // namespace q2::chem
