// Restricted Hartree-Fock with DIIS convergence acceleration — the low-level
// whole-system calculation at the top of the DMET flowchart (Fig. 3, step 1).
#pragma once

#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace q2::chem {

struct ScfOptions {
  int max_iterations = 200;
  double energy_tolerance = 1e-10;
  double density_tolerance = 1e-8;
  std::size_t diis_size = 8;
};

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;              ///< total energy incl. nuclear repulsion
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  la::RMatrix coefficients;         ///< MO coefficients, AO x MO
  std::vector<double> orbital_energies;
  la::RMatrix density;              ///< AO density, D = 2 C_occ C_occ^T
  la::RMatrix fock;                 ///< converged AO Fock matrix
  int n_occupied = 0;               ///< doubly occupied orbital count
};

ScfResult rhf(const Molecule& molecule, const BasisSet& basis,
              const IntegralTables& ints, const ScfOptions& options = {});

/// S^{-1/2} Loewdin orthogonalizer (also used by the DMET fragmenter).
la::RMatrix lowdin_orthogonalizer(const la::RMatrix& overlap);

}  // namespace q2::chem
