// One- and two-electron integrals over contracted Cartesian Gaussians via
// the McMurchie-Davidson scheme (Hermite expansion coefficients E_t plus
// Hermite Coulomb tensors R_tuv built on the Boys function). This is the
// PySCF role in the paper's pipeline, built from scratch.
#pragma once

#include <vector>

#include "chem/basis.hpp"
#include "linalg/matrix.hpp"

namespace q2::chem {

/// Two-electron repulsion integrals in chemist notation (pq|rs), stored with
/// the full 8-fold permutational symmetry.
class EriTable {
 public:
  EriTable() = default;
  explicit EriTable(std::size_t n);

  std::size_t n() const { return n_; }
  double operator()(std::size_t p, std::size_t q, std::size_t r,
                    std::size_t s) const {
    return data_[index(p, q, r, s)];
  }
  void set(std::size_t p, std::size_t q, std::size_t r, std::size_t s,
           double value) {
    data_[index(p, q, r, s)] = value;
  }
  std::size_t unique_count() const { return data_.size(); }

 private:
  static std::size_t pair_index(std::size_t a, std::size_t b) {
    return a >= b ? a * (a + 1) / 2 + b : b * (b + 1) / 2 + a;
  }
  std::size_t index(std::size_t p, std::size_t q, std::size_t r,
                    std::size_t s) const {
    return pair_index(pair_index(p, q), pair_index(r, s));
  }
  std::size_t n_ = 0;
  std::vector<double> data_;
};

struct IntegralTables {
  la::RMatrix overlap;   ///< S_pq
  la::RMatrix kinetic;   ///< T_pq
  la::RMatrix nuclear;   ///< V_pq (attraction to all nuclei)
  EriTable eri;          ///< (pq|rs)
};

/// Individual integral primitives (exposed for testing).
double overlap_integral(const BasisFunction& a, const BasisFunction& b);
double kinetic_integral(const BasisFunction& a, const BasisFunction& b);
double nuclear_integral(const BasisFunction& a, const BasisFunction& b,
                        const std::array<double, 3>& nucleus, int z);
double eri_integral(const BasisFunction& a, const BasisFunction& b,
                    const BasisFunction& c, const BasisFunction& d);

/// All tables for a molecule/basis pair.
IntegralTables compute_integrals(const Molecule& molecule, const BasisSet& basis);

}  // namespace q2::chem
