// Molecular-orbital integrals: AO -> MO transformation, frozen-core active
// spaces, and the spin-orbital expansion consumed by FCI / CC / the qubit
// mapping. Spatial integrals use chemist notation (pq|rs).
#pragma once

#include <vector>

#include "chem/integrals.hpp"
#include "chem/scf.hpp"

namespace q2::chem {

class MoIntegrals {
 public:
  MoIntegrals() = default;
  MoIntegrals(std::size_t n_orbitals, double core_energy);

  std::size_t n_orbitals() const { return n_; }
  double core_energy() const { return e_core_; }
  void set_core_energy(double e) { e_core_ = e; }

  double h(std::size_t p, std::size_t q) const { return h_(p, q); }
  double& h(std::size_t p, std::size_t q) { return h_(p, q); }
  /// Chemist-notation (pq|rs).
  double eri(std::size_t p, std::size_t q, std::size_t r, std::size_t s) const {
    return eri_[((p * n_ + q) * n_ + r) * n_ + s];
  }
  double& eri(std::size_t p, std::size_t q, std::size_t r, std::size_t s) {
    return eri_[((p * n_ + q) * n_ + r) * n_ + s];
  }

  const la::RMatrix& h_matrix() const { return h_; }

 private:
  std::size_t n_ = 0;
  double e_core_ = 0.0;
  la::RMatrix h_;
  std::vector<double> eri_;
};

/// Full AO -> MO transform (O(N^5) quarter transforms).
MoIntegrals transform_to_mo(const IntegralTables& ints, const la::RMatrix& c,
                            double nuclear_repulsion);

/// Freeze the first `n_frozen` (doubly occupied) orbitals and keep the next
/// `n_active`; their mean field folds into the core energy / one-body term.
MoIntegrals make_active_space(const MoIntegrals& mo, std::size_t n_frozen,
                              std::size_t n_active);

/// Spin-orbital integrals: index 2p = (p, alpha), 2p+1 = (p, beta).
/// h1(P, Q) and antisymmetrized two-body <PQ||RS> (physicist notation).
struct SpinOrbitalIntegrals {
  std::size_t n_spin = 0;
  double core_energy = 0.0;
  std::vector<double> h1;    ///< n^2
  std::vector<double> anti;  ///< n^4, <PQ||RS>

  double h(std::size_t p, std::size_t q) const { return h1[p * n_spin + q]; }
  double v(std::size_t p, std::size_t q, std::size_t r, std::size_t s) const {
    return anti[((p * n_spin + q) * n_spin + r) * n_spin + s];
  }
};

SpinOrbitalIntegrals to_spin_orbitals(const MoIntegrals& mo);

}  // namespace q2::chem
