// Boys function F_n(x) = \int_0^1 t^{2n} e^{-x t^2} dt, the special function
// at the heart of every Gaussian Coulomb integral.
#pragma once

#include <vector>

namespace q2::chem {

/// F_0 .. F_{n_max} evaluated at x (x >= 0), numerically stable across the
/// small-x (series + downward recursion) and large-x (asymptotic + upward
/// recursion) regimes.
std::vector<double> boys(int n_max, double x);

}  // namespace q2::chem
