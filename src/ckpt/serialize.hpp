// Byte-exact binary serialization for the checkpoint layer. ByteWriter /
// ByteReader move fixed-width little-endian integers and raw IEEE-754 bit
// patterns (no decimal round trips), so every serialized double restores
// bit-for-bit — the foundation of the resume determinism contract. On top sit
// serializers for the live run-state types: la::Matrix / la::Tensor, the MPS
// simulator state, the optimizer state, and the mt19937_64 stream.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "linalg/tensor.hpp"
#include "sim/mps.hpp"
#include "vqe/optimizer.hpp"

namespace q2::ckpt {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(std::uint32_t(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void c128(cplx z) {
    f64(z.real());
    f64(z.imag());
  }
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void vec(const std::vector<cplx>& v) {
    u64(v.size());
    for (cplx z : v) c128(z);
  }
  void vec(const std::vector<std::size_t>& v) {
    u64(v.size());
    for (std::size_t x : v) u64(x);
  }
  void vec(const std::vector<std::vector<double>>& v) {
    u64(v.size());
    for (const auto& inner : v) vec(inner);
  }
  void vec(const std::vector<std::vector<cplx>>& v) {
    u64(v.size());
    for (const auto& inner : v) vec(inner);
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Throws q2::Error on any overrun, so a truncated section surfaces as a
/// hard deserialization failure instead of garbage state.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : p_(buf.data()), n_(buf.size()) {}
  ByteReader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  std::uint8_t u8() {
    need(1);
    return p_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return std::int32_t(u32()); }
  bool b() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  cplx c128() {
    const double re = f64();
    const double im = f64();
    return {re, im};
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<double> vec_f64() {
    const std::uint64_t n = checked_count(8);
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  std::vector<cplx> vec_c128() {
    const std::uint64_t n = checked_count(16);
    std::vector<cplx> v(n);
    for (auto& z : v) z = c128();
    return v;
  }
  std::vector<std::size_t> vec_u64() {
    const std::uint64_t n = checked_count(8);
    std::vector<std::size_t> v(n);
    for (auto& x : v) x = std::size_t(u64());
    return v;
  }
  std::vector<std::vector<double>> vec_vec_f64() {
    const std::uint64_t n = u64();
    std::vector<std::vector<double>> v(n);
    for (auto& inner : v) inner = vec_f64();
    return v;
  }
  std::vector<std::vector<cplx>> vec_vec_c128() {
    const std::uint64_t n = u64();
    std::vector<std::vector<cplx>> v(n);
    for (auto& inner : v) inner = vec_c128();
    return v;
  }

  std::size_t remaining() const { return n_ - pos_; }
  bool at_end() const { return pos_ == n_; }

 private:
  void need(std::uint64_t n) const {
    require(n <= n_ - pos_, "ckpt: truncated record");
  }
  // Reads an element count and bounds-checks it against the remaining bytes
  // before any allocation, so a corrupt length can't trigger a huge alloc.
  std::uint64_t checked_count(std::size_t elem_bytes) {
    const std::uint64_t n = u64();
    require(n <= (n_ - pos_) / elem_bytes, "ckpt: truncated record");
    return n;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

// ---- Domain serializers ----------------------------------------------------
// Each pair round-trips its type exactly; readers validate internal
// consistency and throw q2::Error on malformed input.

void write_matrix(ByteWriter& w, const la::RMatrix& m);
la::RMatrix read_rmatrix(ByteReader& r);
void write_matrix(ByteWriter& w, const la::CMatrix& m);
la::CMatrix read_cmatrix(ByteReader& r);

void write_tensor(ByteWriter& w, const la::Tensor& t);
la::Tensor read_tensor(ByteReader& r);

void write_rng(ByteWriter& w, const Rng& rng);
void read_rng(ByteReader& r, Rng& rng);

void write_mps(ByteWriter& w, const sim::MpsState& s);
sim::MpsState read_mps(ByteReader& r);

void write_optimizer_state(ByteWriter& w, const vqe::OptimizerState& s);
vqe::OptimizerState read_optimizer_state(ByteReader& r);

}  // namespace q2::ckpt
