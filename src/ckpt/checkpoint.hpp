// Checkpoint policy and rotation. A CheckpointManager owns one family of
// snapshot files `<path>.NNNNNN` (monotone sequence numbers): save() writes
// the next sequence number atomically and prunes down to the newest `keep`
// files; load_latest_valid() walks the family newest-first and returns the
// first snapshot that passes full validation, so a torn or bit-rotted newest
// file silently falls back to the previous good one. Snapshot count, bytes
// and durations are instrumented through src/obs, and examples share the
// --checkpoint=/--checkpoint-every=/--resume flag plumbing (env:
// Q2_CHECKPOINT / Q2_CHECKPOINT_EVERY / Q2_RESUME) via options_from_args.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/fault.hpp"
#include "ckpt/snapshot.hpp"

namespace q2::ckpt {

struct CheckpointOptions {
  /// Base path for the snapshot family; empty disables checkpointing.
  std::string path;
  /// Snapshot cadence in optimizer iterations / DMET µ-evaluations.
  int every_n_iterations = 1;
  /// Rotation depth: how many snapshots survive on disk.
  int keep = 3;
  /// Load the newest valid snapshot on startup and continue from it. When
  /// false the manager starts fresh (a writer deletes any existing family).
  bool resume = true;
  /// Test-only fault injection, applied by save().
  FaultPlan fault;

  bool enabled() const { return !path.empty(); }
};

class CheckpointManager {
 public:
  /// `writer` is false on ranks that mirror a trajectory but must not touch
  /// the snapshot family (only rank 0 of a distributed run writes; every
  /// rank loads). A non-resuming writer deletes the existing family so a
  /// fresh run can't accidentally continue from stale state.
  CheckpointManager(CheckpointOptions options, bool writer = true);

  const CheckpointOptions& options() const { return options_; }

  /// Cadence check: snapshot at this iteration? (Always true on `finished`
  /// so a completed run leaves a terminal snapshot behind.)
  bool due(int iteration, bool finished) const;

  /// Writes the snapshot under the next sequence number, applies the fault
  /// plan, rotates old files, then (if the plan says so) throws
  /// InjectedCrash. No-op on non-writer managers except the crash check.
  void save(int iteration, const Snapshot& snapshot);

  /// Newest snapshot that passes validation, or nullopt (also when
  /// options().resume is false). Invalid newer files are counted in
  /// metrics ("ckpt.invalid_rejected") and skipped.
  std::optional<Snapshot> load_latest_valid() const;

  /// Existing sequence numbers, ascending (test/diagnostic hook).
  std::vector<std::uint64_t> existing_sequence_numbers() const;

 private:
  std::string file_for(std::uint64_t seq) const;

  CheckpointOptions options_;
  bool writer_;
  std::uint64_t next_seq_ = 1;
};

/// Strips --checkpoint=PATH, --checkpoint-every=N, and --resume from argv
/// (same contract as obs::configure_from_args), falling back to the
/// Q2_CHECKPOINT / Q2_CHECKPOINT_EVERY / Q2_RESUME environment variables.
/// resume defaults to false here: an explicit --resume (or Q2_RESUME=1) opts
/// in, so plain re-runs start fresh.
CheckpointOptions options_from_args(int& argc, char** argv);

}  // namespace q2::ckpt
