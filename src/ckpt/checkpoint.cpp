#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace q2::ckpt {
namespace fs = std::filesystem;
namespace {

obs::Counter& written_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.snapshots_written");
  return c;
}
obs::Counter& bytes_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.bytes_written");
  return c;
}
obs::Counter& loaded_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.snapshots_loaded");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ckpt.invalid_rejected");
  return c;
}
obs::Histogram& write_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("ckpt.write_seconds");
  return h;
}
obs::Histogram& read_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("ckpt.read_seconds");
  return h;
}

// Splits a base path into (directory, filename prefix "name.").
void split_base(const std::string& base, fs::path& dir, std::string& prefix) {
  const fs::path p(base);
  dir = p.parent_path().empty() ? fs::path(".") : p.parent_path();
  prefix = p.filename().string() + ".";
}

// Sequence number of `name` under `prefix` ("<prefix>NNNNNN", digits only),
// or nullopt for unrelated files (including the .tmp scratch file).
std::optional<std::uint64_t> parse_seq(const std::string& name,
                                       const std::string& prefix) {
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0)
    return std::nullopt;
  const std::string tail = name.substr(prefix.size());
  if (tail.empty() ||
      tail.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::strtoull(tail.c_str(), nullptr, 10);
}

void apply_corruption(const std::string& path, const FaultPlan& plan) {
  switch (plan.corruption) {
    case FaultPlan::Corruption::kNone:
      break;
    case FaultPlan::Corruption::kTruncate: {
      std::error_code ec;
      const auto size = fs::file_size(path, ec);
      if (!ec)
        fs::resize_file(path, std::min<std::uintmax_t>(size,
                                                       plan.truncate_to_bytes),
                        ec);
      require(!ec, "ckpt: fault injection failed to truncate snapshot");
      break;
    }
    case FaultPlan::Corruption::kFlipByte: {
      std::FILE* f = std::fopen(path.c_str(), "r+b");
      require(f != nullptr, "ckpt: fault injection cannot open snapshot");
      unsigned char b = 0;
      const long off = long(plan.flip_byte_offset);
      const bool ok = std::fseek(f, off, SEEK_SET) == 0 &&
                      std::fread(&b, 1, 1, f) == 1 &&
                      std::fseek(f, off, SEEK_SET) == 0 &&
                      (b ^= 0xFF, std::fwrite(&b, 1, 1, f) == 1);
      std::fclose(f);
      require(ok, "ckpt: fault injection failed to flip snapshot byte");
      break;
    }
  }
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions options, bool writer)
    : options_(std::move(options)), writer_(writer) {
  require(options_.enabled(), "CheckpointManager: empty snapshot path");
  require(options_.every_n_iterations >= 1 && options_.keep >= 1,
          "CheckpointManager: cadence and rotation depth must be positive");
  fs::path dir;
  std::string prefix;
  split_base(options_.path, dir, prefix);
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; write_file reports failure

  if (writer_ && !options_.resume) {
    // Fresh run: a stale family must not shadow the new one.
    for (std::uint64_t seq : existing_sequence_numbers())
      fs::remove(file_for(seq), ec);
  }
  const std::vector<std::uint64_t> existing = existing_sequence_numbers();
  next_seq_ = existing.empty() ? 1 : existing.back() + 1;
}

std::string CheckpointManager::file_for(std::uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%06llu", (unsigned long long)seq);
  return options_.path + buf;
}

std::vector<std::uint64_t> CheckpointManager::existing_sequence_numbers()
    const {
  fs::path dir;
  std::string prefix;
  split_base(options_.path, dir, prefix);
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto seq = parse_seq(entry.path().filename().string(), prefix))
      seqs.push_back(*seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool CheckpointManager::due(int iteration, bool finished) const {
  if (finished) return true;
  return iteration > 0 && iteration % options_.every_n_iterations == 0;
}

void CheckpointManager::save(int iteration, const Snapshot& snapshot) {
  if (writer_) {
    Timer timer;
    const std::uint64_t seq = next_seq_++;
    const std::string path = file_for(seq);
    snapshot.write_file(path);
    if (iteration == options_.fault.corrupt_at_iteration)
      apply_corruption(path, options_.fault);

    // Rotate: keep the newest `keep` snapshots.
    std::vector<std::uint64_t> seqs = existing_sequence_numbers();
    std::error_code ec;
    while (seqs.size() > std::size_t(options_.keep)) {
      fs::remove(file_for(seqs.front()), ec);
      seqs.erase(seqs.begin());
    }

    const double seconds = timer.seconds();
    const std::size_t bytes = snapshot.encoded_bytes();
    written_counter().add();
    bytes_counter().add(bytes);
    write_hist().observe(seconds);
    obs::RunReport::global().record("checkpoint",
                                    {{"iteration", iteration},
                                     {"sequence", seq},
                                     {"bytes", bytes},
                                     {"wall_seconds", seconds}});
  }
  // The crash fires on every rank (a dying node takes all its mirrored
  // trajectories with it), writer or not.
  if (iteration == options_.fault.crash_at_iteration)
    throw InjectedCrash(iteration);
}

std::optional<Snapshot> CheckpointManager::load_latest_valid() const {
  if (!options_.resume) return std::nullopt;
  std::vector<std::uint64_t> seqs = existing_sequence_numbers();
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    Timer timer;
    std::optional<Snapshot> snap = Snapshot::read_file(file_for(*it));
    if (snap) {
      loaded_counter().add();
      read_hist().observe(timer.seconds());
      return snap;
    }
    rejected_counter().add();
  }
  return std::nullopt;
}

CheckpointOptions options_from_args(int& argc, char** argv) {
  CheckpointOptions options;
  options.resume = false;
  if (const char* env = std::getenv("Q2_CHECKPOINT")) options.path = env;
  if (const char* env = std::getenv("Q2_CHECKPOINT_EVERY"))
    options.every_n_iterations = std::max(1, std::atoi(env));
  if (const char* env = std::getenv("Q2_RESUME"))
    options.resume = std::atoi(env) != 0;

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      options.path = arg + 13;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      options.every_n_iterations = std::max(1, std::atoi(arg + 19));
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return options;
}

}  // namespace q2::ckpt
