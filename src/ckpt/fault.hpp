// Fault injection for the checkpoint layer. A FaultPlan rides inside
// CheckpointOptions and is applied by CheckpointManager::save() — after the
// snapshot is durable, mimicking a node that dies (or tears its last write)
// right at the worst moment. Tests use it to prove the crash–resume
// equivalence contract: kill a run at iteration N, resume from disk, and the
// final energies must match the uninterrupted run bit for bit.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace q2::ckpt {

/// Thrown by CheckpointManager::save() when the plan says the process dies
/// here. Deliberately NOT derived from q2::Error so domain catch blocks don't
/// swallow an injected crash by accident.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(int iteration)
      : std::runtime_error("ckpt: injected crash at iteration " +
                           std::to_string(iteration)),
        iteration_(iteration) {}
  int iteration() const { return iteration_; }

 private:
  int iteration_;
};

struct FaultPlan {
  enum class Corruption {
    kNone,
    kTruncate,  ///< cut the snapshot file to `truncate_to_bytes` (torn write)
    kFlipByte,  ///< XOR the byte at `flip_byte_offset` with 0xFF (bit rot)
  };

  /// Throw InjectedCrash after the snapshot written at this iteration is
  /// durable (and corrupted, if corruption is armed). -1 = never.
  int crash_at_iteration = -1;
  /// Corrupt the snapshot written at this iteration. -1 = never.
  int corrupt_at_iteration = -1;
  Corruption corruption = Corruption::kNone;
  std::size_t truncate_to_bytes = 32;
  std::size_t flip_byte_offset = 24;

  bool armed() const {
    return crash_at_iteration >= 0 || corrupt_at_iteration >= 0;
  }
};

}  // namespace q2::ckpt
