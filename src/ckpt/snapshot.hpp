// Versioned binary snapshot container: named sections, each protected by its
// own CRC32, behind an 8-byte magic and a format version. Durability comes
// from the classic atomic pattern — serialize to memory, write `<path>.tmp`,
// fsync, rename over the final name — so a crash mid-write can never destroy
// an existing good snapshot. Readers validate magic, version, bounds, and
// every section CRC; any failure makes the whole file invalid (the rotation
// layer then falls back to the previous snapshot).
//
// File layout (all integers little-endian):
//   magic   8 bytes  "Q2CKPT\r\n"
//   u32     format version (kFormatVersion)
//   u32     section count
//   per section:
//     u32   name length, then name bytes
//     u64   payload length
//     u32   CRC32 over the name bytes followed by the payload bytes
//     payload bytes
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace q2::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
std::uint32_t crc32(const void* data, std::size_t n);

class Snapshot {
 public:
  /// Adds or replaces a named section.
  void set(const std::string& name, std::vector<std::uint8_t> payload);
  bool has(const std::string& name) const;
  /// nullptr when absent.
  const std::vector<std::uint8_t>* find(const std::string& name) const;
  /// Throws q2::Error when absent.
  const std::vector<std::uint8_t>& at(const std::string& name) const;

  std::size_t section_count() const { return sections_.size(); }
  /// Total encoded size in bytes (header + all sections).
  std::size_t encoded_bytes() const;

  std::vector<std::uint8_t> encode() const;
  /// nullopt on any validation failure (bad magic/version/bounds/CRC).
  static std::optional<Snapshot> decode(const std::uint8_t* data,
                                        std::size_t n);

  /// Atomic durable write: tmp file + fsync + rename. Throws q2::Error on
  /// I/O failure (a failed checkpoint must not silently pass).
  void write_file(const std::string& path) const;
  /// nullopt when the file is missing, unreadable, or fails validation.
  static std::optional<Snapshot> read_file(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

}  // namespace q2::ckpt
