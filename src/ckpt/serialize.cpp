#include "ckpt/serialize.hpp"

namespace q2::ckpt {
namespace {

// Per-type tags guard against sections being decoded as the wrong type after
// a format mix-up; bumping a tag is the cheap way to version one serializer.
constexpr std::uint8_t kTagRMatrix = 0x11;
constexpr std::uint8_t kTagCMatrix = 0x12;
constexpr std::uint8_t kTagTensor = 0x13;
constexpr std::uint8_t kTagRng = 0x14;
constexpr std::uint8_t kTagMps = 0x15;
constexpr std::uint8_t kTagOptimizer = 0x16;

void expect_tag(ByteReader& r, std::uint8_t tag) {
  require(r.u8() == tag, "ckpt: section type tag mismatch");
}

}  // namespace

void write_matrix(ByteWriter& w, const la::RMatrix& m) {
  w.u8(kTagRMatrix);
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) w.f64(m.data()[i]);
}

la::RMatrix read_rmatrix(ByteReader& r) {
  expect_tag(r, kTagRMatrix);
  const std::size_t rows = std::size_t(r.u64());
  const std::size_t cols = std::size_t(r.u64());
  require(cols == 0 || rows <= r.remaining() / (8 * cols),
          "ckpt: matrix larger than record");
  la::RMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = r.f64();
  return m;
}

void write_matrix(ByteWriter& w, const la::CMatrix& m) {
  w.u8(kTagCMatrix);
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) w.c128(m.data()[i]);
}

la::CMatrix read_cmatrix(ByteReader& r) {
  expect_tag(r, kTagCMatrix);
  const std::size_t rows = std::size_t(r.u64());
  const std::size_t cols = std::size_t(r.u64());
  require(cols == 0 || rows <= r.remaining() / (16 * cols),
          "ckpt: matrix larger than record");
  la::CMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = r.c128();
  return m;
}

void write_tensor(ByteWriter& w, const la::Tensor& t) {
  w.u8(kTagTensor);
  w.vec(t.shape());
  w.u64(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) w.c128(t.data()[i]);
}

la::Tensor read_tensor(ByteReader& r) {
  expect_tag(r, kTagTensor);
  const std::vector<std::size_t> shape = r.vec_u64();
  const std::size_t n = std::size_t(r.u64());
  std::size_t expected = 1;
  for (std::size_t d : shape) expected *= d;
  require(n == expected, "ckpt: tensor size does not match shape");
  require(n <= r.remaining() / 16, "ckpt: tensor larger than record");
  std::vector<cplx> data(n);
  for (auto& z : data) z = r.c128();
  return la::Tensor(shape, std::move(data));
}

void write_rng(ByteWriter& w, const Rng& rng) {
  w.u8(kTagRng);
  w.str(rng.state_string());
}

void read_rng(ByteReader& r, Rng& rng) {
  expect_tag(r, kTagRng);
  rng.set_state_string(r.str());
}

void write_mps(ByteWriter& w, const sim::MpsState& s) {
  w.u8(kTagMps);
  w.i32(s.n_qubits);
  w.u64(s.max_bond);
  w.f64(s.svd_cutoff);
  // Canonical-form tag: 0 = right-canonical, center at site 0 (the only form
  // the engine produces today; future mixed-canonical engines extend this).
  w.u8(0);
  w.vec(s.dl);
  w.vec(s.dr);
  w.vec(s.tensors);
  w.vec(s.lambda);
  w.f64(s.truncation_error);
}

sim::MpsState read_mps(ByteReader& r) {
  expect_tag(r, kTagMps);
  sim::MpsState s;
  s.n_qubits = r.i32();
  s.max_bond = std::size_t(r.u64());
  s.svd_cutoff = r.f64();
  require(r.u8() == 0, "ckpt: unknown MPS canonical form");
  s.dl = r.vec_u64();
  s.dr = r.vec_u64();
  s.tensors = r.vec_vec_c128();
  s.lambda = r.vec_vec_f64();
  s.truncation_error = r.f64();
  return s;
}

void write_optimizer_state(ByteWriter& w, const vqe::OptimizerState& s) {
  w.u8(kTagOptimizer);
  w.b(s.initialized);
  w.b(s.finished);
  w.b(s.converged);
  w.i32(s.iteration);
  w.f64(s.energy);
  w.f64(s.e_prev);
  w.vec(s.parameters);
  w.vec(s.gradient);
  w.vec(s.history);
  w.vec(s.adam_m);
  w.vec(s.adam_v);
  w.vec(s.lbfgs_s);
  w.vec(s.lbfgs_y);
  w.vec(s.lbfgs_rho);
}

vqe::OptimizerState read_optimizer_state(ByteReader& r) {
  expect_tag(r, kTagOptimizer);
  vqe::OptimizerState s;
  s.initialized = r.b();
  s.finished = r.b();
  s.converged = r.b();
  s.iteration = r.i32();
  s.energy = r.f64();
  s.e_prev = r.f64();
  s.parameters = r.vec_f64();
  s.gradient = r.vec_f64();
  s.history = r.vec_f64();
  s.adam_m = r.vec_f64();
  s.adam_v = r.vec_f64();
  s.lbfgs_s = r.vec_vec_f64();
  s.lbfgs_y = r.vec_vec_f64();
  s.lbfgs_rho = r.vec_f64();
  require(s.lbfgs_s.size() == s.lbfgs_y.size() &&
              s.lbfgs_s.size() == s.lbfgs_rho.size(),
          "ckpt: inconsistent L-BFGS curvature history");
  return s;
}

}  // namespace q2::ckpt
