#include "ckpt/snapshot.hpp"

#include <array>
#include <cstdio>
#include <fstream>

#include "common/types.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace q2::ckpt {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'Q', '2',  'C',  'K',
                                                'P', 'T', '\r', '\n'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

// Bounds-checked header reads; returns false instead of throwing because a
// malformed file is an expected condition (fall back, don't abort).
struct Cursor {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;

  bool get_u32(std::uint32_t& v) {
    if (n - pos < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[pos++]) << (8 * i);
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (n - pos < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[pos++]) << (8 * i);
    return true;
  }
};

}  // namespace

namespace {

std::uint32_t crc32_update(std::uint32_t c, const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c;
}

// The per-section checksum covers the name bytes and the payload, so a
// corrupted name (which would make a valid-looking snapshot unusable at
// lookup time) is caught the same way as corrupted data.
std::uint32_t section_crc(const std::string& name,
                          const std::vector<std::uint8_t>& data) {
  std::uint32_t c = 0xFFFFFFFFu;
  c = crc32_update(c, name.data(), name.size());
  c = crc32_update(c, data.data(), data.size());
  return c ^ 0xFFFFFFFFu;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  return crc32_update(0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

void Snapshot::set(const std::string& name,
                   std::vector<std::uint8_t> payload) {
  for (auto& [n, data] : sections_)
    if (n == name) {
      data = std::move(payload);
      return;
    }
  sections_.emplace_back(name, std::move(payload));
}

bool Snapshot::has(const std::string& name) const {
  return find(name) != nullptr;
}

const std::vector<std::uint8_t>* Snapshot::find(
    const std::string& name) const {
  for (const auto& [n, data] : sections_)
    if (n == name) return &data;
  return nullptr;
}

const std::vector<std::uint8_t>& Snapshot::at(const std::string& name) const {
  const auto* data = find(name);
  require(data != nullptr, "ckpt: snapshot missing a required section");
  return *data;
}

std::size_t Snapshot::encoded_bytes() const {
  std::size_t n = kMagic.size() + 8;  // magic + version + section count
  for (const auto& [name, data] : sections_)
    n += 4 + name.size() + 8 + 4 + data.size();
  return n;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_bytes());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kFormatVersion);
  put_u32(out, std::uint32_t(sections_.size()));
  for (const auto& [name, data] : sections_) {
    put_u32(out, std::uint32_t(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    put_u64(out, data.size());
    put_u32(out, section_crc(name, data));
    out.insert(out.end(), data.begin(), data.end());
  }
  return out;
}

std::optional<Snapshot> Snapshot::decode(const std::uint8_t* data,
                                         std::size_t n) {
  Cursor c{data, n};
  if (n < kMagic.size()) return std::nullopt;
  for (std::uint8_t b : kMagic)
    if (data[c.pos++] != b) return std::nullopt;
  std::uint32_t version = 0, count = 0;
  if (!c.get_u32(version) || version != kFormatVersion) return std::nullopt;
  if (!c.get_u32(count)) return std::nullopt;

  Snapshot snap;
  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint32_t name_len = 0, crc = 0;
    std::uint64_t payload_len = 0;
    if (!c.get_u32(name_len) || c.n - c.pos < name_len) return std::nullopt;
    std::string name(reinterpret_cast<const char*>(c.p + c.pos), name_len);
    c.pos += name_len;
    if (!c.get_u64(payload_len) || !c.get_u32(crc)) return std::nullopt;
    if (c.n - c.pos < payload_len) return std::nullopt;  // truncated
    std::vector<std::uint8_t> payload(c.p + c.pos, c.p + c.pos + payload_len);
    if (section_crc(name, payload) != crc) return std::nullopt;
    snap.sections_.emplace_back(std::move(name), std::move(payload));
    c.pos += payload_len;
  }
  if (c.pos != c.n) return std::nullopt;  // trailing garbage
  return snap;
}

void Snapshot::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  require(f != nullptr, "ckpt: cannot open snapshot tmp file for writing");
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#else
  const bool synced = wrote;
#endif
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && synced && closed)) {
    std::remove(tmp.c_str());
    throw Error("ckpt: snapshot write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("ckpt: snapshot rename failed");
  }
}

std::optional<Snapshot> Snapshot::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof()) return std::nullopt;
  return decode(bytes.data(), bytes.size());
}

}  // namespace q2::ckpt
