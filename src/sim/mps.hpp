// Matrix Product State simulator — the paper's core innovation (§III-A).
// The state is kept in right-canonical form: site tensors B[k] of shape
// (D_{k-1}, 2, D_k) satisfying sum_{i,b} B*[a',i,b] B[a,i,b] = delta, plus
// the Schmidt vectors lambda[k] on each bond. Two-qubit gates follow the
// Hastings update of Eqs. (7)-(10): contract, lambda-reweight, SVD, truncate
// to the bond dimension D, restore the left tensor from the unweighted M.
// Truncation error is accumulated and exposed, as the paper prescribes.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/reorder.hpp"
#include "linalg/svd.hpp"
#include "parallel/parallel_options.hpp"
#include "pauli/qubit_operator.hpp"

namespace q2::sim {

struct MpsOptions {
  std::size_t max_bond = 64;   ///< D, the bond-dimension cap
  double svd_cutoff = 1e-12;   ///< drop singular values below cutoff * s_max
  /// On-node parallelism, consumed at two levels: the drivers sitting on
  /// these options (the Pauli-term sweep and parameter-shift gradient in
  /// vqe::EnergyEvaluator) and the blocked GEMM inside the two-site update,
  /// which fans out over C macro-tiles. Both are bit-identical across
  /// thread counts, so parallel == serial exactly.
  par::ParallelOptions parallel;
};

/// Wall-clock split of the MPS hotspots, accumulated per engine instance
/// (paper §IV-B reports contraction ~15% / SVD ~82%). The same quantities
/// also flow into the global obs::Registry ("mps.gates",
/// "mps.contract_seconds", "mps.svd_seconds"), which aggregates across every
/// engine in the process; this struct is the per-engine view.
struct MpsProfile {
  double contraction_seconds = 0.0;
  double svd_seconds = 0.0;
  std::size_t gates_applied = 0;
  /// Jacobi sweeps accumulated over all two-site updates (also exported as
  /// the "mps.svd_sweeps" counter) — convergence behaviour, not just time.
  std::size_t svd_sweeps = 0;
};

/// Complete serializable simulator state, produced/consumed by the checkpoint
/// layer (src/ckpt). The engine is kept right-canonical throughout, so the
/// canonical center is implicitly site 0; the checkpoint record still carries
/// a canonical-form tag so future mixed-canonical engines can evolve the
/// format without breaking old snapshots.
struct MpsState {
  int n_qubits = 0;
  std::size_t max_bond = 0;
  double svd_cutoff = 0.0;
  std::vector<std::vector<cplx>> tensors;   ///< site tensors, (dl, 2, dr) each
  std::vector<std::size_t> dl, dr;          ///< per-site bond dimensions
  std::vector<std::vector<double>> lambda;  ///< Schmidt vectors per bond
  double truncation_error = 0.0;            ///< accumulated truncation error
};

class Mps {
 public:
  /// |0...0> on n qubits (product state, all bonds trivial).
  explicit Mps(int n_qubits, MpsOptions options = {});

  /// Exact MPS decomposition of a state vector (Fig. 2a: FCI tensor -> MPS),
  /// truncated to the configured bond dimension.
  static Mps from_statevector(int n_qubits, const std::vector<cplx>& amps,
                              MpsOptions options = {});

  int n_qubits() const { return n_; }
  const MpsOptions& options() const { return options_; }

  /// Bond dimension between sites k and k+1.
  std::size_t bond_dimension(int k) const;
  std::size_t max_bond_dimension() const;
  /// Total tensor storage in bytes — the Fig. 2(c) memory axis.
  std::size_t memory_bytes() const;

  /// Accumulated relative truncation error over all gate applications.
  double truncation_error() const { return truncation_error_; }

  /// Hotspot timing accumulated across all gate applications.
  const MpsProfile& profile() const { return profile_; }

  void apply(const circ::Gate& g, const std::vector<double>& params = {});
  /// Runs a circuit; long-range two-qubit gates are routed internally
  /// (eagerly — prefer the compiled overload for repeated runs).
  void run(const circ::Circuit& c, const std::vector<double>& params = {});
  /// Runs a pre-compiled circuit (see circ::compile_for_mps) and adopts its
  /// residual output permutation: subsequent expectation values map logical
  /// Pauli strings through the permutation, so the un-routing SWAP tail of
  /// the eager router never runs. Requires an unpermuted engine (a fresh
  /// state or one whose previous compiled run ended at the identity).
  void run(const circ::CompiledCircuit& c,
           const std::vector<double>& params = {});

  /// Residual logical→site placement left by compiled runs (identity on a
  /// fresh engine and after plain runs).
  const circ::QubitPermutation& output_permutation() const { return perm_; }

  double norm() const;

  cplx expectation(const pauli::PauliString& p) const;
  cplx expectation(const pauli::QubitOperator& op) const;
  /// Expectation of many strings in one streaming pass: terms sharing a
  /// support prefix (same start site, same Pauli letters) reuse transfer
  /// environments, so a qubit-wise commuting group costs roughly one
  /// support-range sweep instead of one per term. Each per-term value is
  /// computed by exactly the same transfer sequence as the standalone
  /// `expectation(p)` call — results are bit-identical, only shared.
  std::vector<cplx> expectation_batch(
      const std::vector<pauli::PauliString>& terms) const;

  /// Contract everything (n <= ~24) — the test oracle path.
  std::vector<cplx> to_statevector() const;

  /// Snapshot of the full simulator state (tensors, bonds, Schmidt vectors,
  /// truncation accounting) for the checkpoint layer.
  MpsState export_state() const;
  /// Rebuilds an engine from an exported state; `parallel` is runtime
  /// configuration and intentionally not part of the persisted state.
  static Mps import_state(const MpsState& state,
                          const par::ParallelOptions& parallel = {});

 private:
  void apply_single(int site, const std::array<cplx, 4>& m);
  void apply_two_adjacent(int left_site, const std::array<cplx, 16>& m_hi_lo,
                          bool left_is_hi);

  // Per-instance scratch for the two-site update: the contracted tensor M,
  // the Eq. (8) row weights, and the SVD workspace. Reused across gates so
  // the hot path stops allocating (five heap matrices per gate before this);
  // buffers grow to the largest bond shape seen and stay there. Safe because
  // an engine instance is single-threaded by contract (see below).
  struct TwoSiteScratch {
    std::vector<cplx> m;            // M[(a i), (j b)], (dl*2) x (2*dr)
    std::vector<double> row_scale;  // lambda[a] replicated over i
    la::SvdWorkspace svd;
  };

  // B tensor storage: tensors_[k] has shape (dl_[k], 2, dr_[k]), row-major
  // flattening index = (a * 2 + i) * dr + b.
  int n_;
  MpsOptions options_;
  std::vector<std::vector<cplx>> tensors_;
  std::vector<std::size_t> dl_, dr_;
  std::vector<std::vector<double>> lambda_;  // lambda_[k]: bond between k,k+1
  // Residual logical→site permutation from compiled runs. Site tensors are
  // always indexed by *site*; this map is consulted only at the measurement
  // boundary (expectation, to_statevector). Checkpoints require identity.
  circ::QubitPermutation perm_;
  double truncation_error_ = 0.0;
  TwoSiteScratch scratch_;
  // Mutated only by the (non-const) apply paths. An engine instance is
  // single-threaded by contract: gate application, truncation accounting and
  // this profile are all unsynchronized. Concurrent drivers (distributed VQE,
  // the thread pool) each own a private Mps.
  MpsProfile profile_;
};

}  // namespace q2::sim
