// Deliberately unoptimized MPS simulator: no canonical-form bookkeeping, no
// Schmidt-vector reuse, naive (unblocked) kernels, local SVD truncation
// without the lambda-weighted gauge, and whole-chain transfer contractions
// (with explicit normalization) for every expectation value. This is the
// documented stand-in for the generic tensor-network comparators of Fig. 8
// (quimb / qiskit-MPS): exact when the bond dimension suffices, but slower
// per gate and with uncontrolled truncation error when it does not — the
// two costs the paper's canonical-form scheme removes.
#pragma once

#include "circuit/circuit.hpp"
#include "pauli/qubit_operator.hpp"
#include "sim/mps.hpp"

namespace q2::sim {

class ReferenceMps {
 public:
  explicit ReferenceMps(int n_qubits, MpsOptions options = {});

  int n_qubits() const { return n_; }

  void apply(const circ::Gate& g, const std::vector<double>& params = {});
  void run(const circ::Circuit& c, const std::vector<double>& params = {});
  /// Runs a compiled circuit and adopts its residual permutation; like the
  /// optimized engine, expectation and to_statevector then map logical
  /// observables through the permutation.
  void run(const circ::CompiledCircuit& c,
           const std::vector<double>& params = {});

  double norm() const;
  cplx expectation(const pauli::PauliString& p) const;
  cplx expectation(const pauli::QubitOperator& op) const;
  std::vector<cplx> to_statevector() const;

  std::size_t max_bond_dimension() const;

 private:
  void apply_two_adjacent(int left_site, const std::array<cplx, 16>& m,
                          bool left_is_hi);

  int n_;
  MpsOptions options_;
  std::vector<std::vector<cplx>> tensors_;
  std::vector<std::size_t> dl_, dr_;
  circ::QubitPermutation perm_;
};

}  // namespace q2::sim
