// Energy-measurement utilities shared by the VQE drivers: direct (fast-path)
// Hamiltonian expectation on a prepared state, and qubit-wise commuting
// grouping of Pauli strings (an optional measurement-reduction extension).
#pragma once

#include <vector>

#include "pauli/qubit_operator.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {

/// Real Hamiltonian expectation on an MPS; requires a Hermitian operator.
double measure_energy(const Mps& state, const pauli::QubitOperator& h);
double measure_energy(const StateVector& state, const pauli::QubitOperator& h);

/// Partition the operator's strings into groups that are qubit-wise
/// commuting (each pair agrees or is identity on every qubit), so each group
/// is measurable in a single basis setting. Greedy first-fit colouring.
std::vector<std::vector<pauli::PauliString>> qubitwise_commuting_groups(
    const pauli::QubitOperator& op);

}  // namespace q2::sim
