// Density-matrix simulator (the DM baseline of Fig. 2c). Stores the full
// 2^n x 2^n mixed-state matrix; gates act as rho -> U rho U^dagger. The
// 4^n memory wall this hits is exactly the point the figure makes.
#pragma once

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"
#include "pauli/qubit_operator.hpp"

namespace q2::sim {

class DensityMatrix {
 public:
  /// |0...0><0...0| on n qubits.
  explicit DensityMatrix(int n_qubits);

  int n_qubits() const { return n_; }
  std::size_t dim() const { return rho_.rows(); }
  const la::CMatrix& rho() const { return rho_; }

  void apply(const circ::Gate& g, const std::vector<double>& params = {});
  void run(const circ::Circuit& c, const std::vector<double>& params = {});

  /// Single-qubit depolarizing channel with error probability p — the noise
  /// model a density-matrix simulator exists to study.
  void apply_depolarizing(int qubit, double p);

  double trace_real() const;
  double purity() const;  ///< tr(rho^2); 1 for pure states

  cplx expectation(const pauli::PauliString& p) const;
  cplx expectation(const pauli::QubitOperator& op) const;

 private:
  int n_;
  la::CMatrix rho_;
};

}  // namespace q2::sim
