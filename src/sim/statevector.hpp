// Exact state-vector simulator (the SV baseline of Fig. 2c and the oracle
// against which the MPS engine is cross-validated). Bit convention: qubit q
// of basis index i is (i >> q) & 1 throughout the repo.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/reorder.hpp"
#include "pauli/qubit_operator.hpp"

namespace q2::sim {

class StateVector {
 public:
  /// |0...0> on n qubits.
  explicit StateVector(int n_qubits);
  StateVector(int n_qubits, std::vector<cplx> amplitudes);

  int n_qubits() const { return n_; }
  std::size_t dim() const { return amps_.size(); }
  const std::vector<cplx>& amplitudes() const { return amps_; }
  std::vector<cplx>& amplitudes() { return amps_; }

  void apply(const circ::Gate& g, const std::vector<double>& params = {});
  void run(const circ::Circuit& c, const std::vector<double>& params = {});
  /// Runs a compiled circuit and immediately undoes its residual output
  /// permutation, so the amplitudes stay in the logical-qubit convention
  /// (cheap here — one index remap — unlike the MPS engine's SWAP tail).
  void run(const circ::CompiledCircuit& c,
           const std::vector<double>& params = {});

  double norm() const;
  /// Probability of qubit q measuring `bit`.
  double probability(int q, int bit) const;

  cplx expectation(const pauli::PauliString& p) const;
  cplx expectation(const pauli::QubitOperator& op) const;

 private:
  int n_;
  std::vector<cplx> amps_;
};

/// y += coeff * P x for a Pauli string (building block of sparse
/// qubit-Hamiltonian matvecs used by the Davidson cross-check).
void accumulate_pauli_apply(const pauli::PauliString& p, cplx coeff,
                            const std::vector<cplx>& x, std::vector<cplx>& y);

/// y = H x for a qubit operator acting on state vectors.
std::vector<cplx> apply_qubit_operator(const pauli::QubitOperator& op,
                                       const std::vector<cplx>& x);

/// Diagonal of the qubit operator in the computational basis (Davidson
/// preconditioner).
std::vector<double> qubit_operator_diagonal(const pauli::QubitOperator& op);

/// Lowest eigenvalue of a qubit Hamiltonian via Davidson on the state-vector
/// representation — the qubit-side ground-state oracle.
double qubit_ground_energy(const pauli::QubitOperator& op,
                           const std::vector<cplx>& guess);

}  // namespace q2::sim
