#include "sim/statevector.hpp"

#include <cmath>

#include "linalg/davidson.hpp"

namespace q2::sim {
namespace {

cplx i_power(int k) {
  switch (((k % 4) + 4) % 4) {
    case 0: return {1, 0};
    case 1: return {0, 1};
    case 2: return {-1, 0};
    default: return {0, -1};
  }
}

// Phase and flip masks of a Pauli string in the bit convention of this file:
// P|i> = i^{nY} * (-1)^{popcount(i & z)} |i ^ x>.
struct PauliMasks {
  std::uint64_t x = 0, z = 0;
  int n_y = 0;
};

PauliMasks masks_of(const pauli::PauliString& p) {
  require(p.n_qubits() <= 64, "statevector: > 64 qubits unsupported");
  PauliMasks m;
  for (std::size_t q = 0; q < p.n_qubits(); ++q) {
    switch (p.get(q)) {
      case pauli::P::X: m.x |= 1ull << q; break;
      case pauli::P::Z: m.z |= 1ull << q; break;
      case pauli::P::Y:
        m.x |= 1ull << q;
        m.z |= 1ull << q;
        ++m.n_y;
        break;
      case pauli::P::I: break;
    }
  }
  return m;
}

}  // namespace

StateVector::StateVector(int n_qubits) : n_(n_qubits) {
  require(n_qubits >= 1 && n_qubits <= 28, "StateVector: unsupported size");
  amps_.assign(std::size_t(1) << n_qubits, cplx{});
  amps_[0] = 1.0;
}

StateVector::StateVector(int n_qubits, std::vector<cplx> amplitudes)
    : n_(n_qubits), amps_(std::move(amplitudes)) {
  require(amps_.size() == (std::size_t(1) << n_qubits),
          "StateVector: amplitude count mismatch");
}

void StateVector::apply(const circ::Gate& g, const std::vector<double>& params) {
  if (!g.is_two_qubit()) {
    const auto m = g.matrix1(params);
    const std::size_t bit = std::size_t(1) << g.qubits[0];
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      if (i & bit) continue;
      const cplx a0 = amps_[i], a1 = amps_[i | bit];
      amps_[i] = m[0] * a0 + m[1] * a1;
      amps_[i | bit] = m[2] * a0 + m[3] * a1;
    }
    return;
  }
  const auto m = g.matrix2(params);
  const std::size_t hi = std::size_t(1) << g.qubits[0];
  const std::size_t lo = std::size_t(1) << g.qubits[1];
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & (hi | lo)) continue;
    // Basis order within the block: index = 2*bit(qubits[0]) + bit(qubits[1]).
    const std::size_t i00 = i, i01 = i | lo, i10 = i | hi, i11 = i | hi | lo;
    const cplx a00 = amps_[i00], a01 = amps_[i01], a10 = amps_[i10],
               a11 = amps_[i11];
    amps_[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps_[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps_[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps_[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void StateVector::run(const circ::Circuit& c, const std::vector<double>& params) {
  require(c.n_qubits() == n_, "StateVector::run: qubit count mismatch");
  for (const auto& g : c.gates()) apply(g, params);
}

void StateVector::run(const circ::CompiledCircuit& c,
                      const std::vector<double>& params) {
  run(c.gates, params);
  if (!c.output_perm.is_identity())
    amps_ = circ::unpermute_statevector(amps_, c.output_perm);
}

double StateVector::norm() const {
  double s = 0;
  for (const auto& a : amps_) s += norm2(a);
  return std::sqrt(s);
}

double StateVector::probability(int q, int bit) const {
  const std::size_t mask = std::size_t(1) << q;
  double p = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i)
    if (int((i & mask) != 0) == bit) p += norm2(amps_[i]);
  return p;
}

cplx StateVector::expectation(const pauli::PauliString& p) const {
  require(int(p.n_qubits()) == n_, "expectation: qubit count mismatch");
  const PauliMasks m = masks_of(p);
  const cplx yphase = i_power(m.n_y);
  cplx e{};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const int sign = __builtin_popcountll(i & m.z) & 1 ? -1 : 1;
    e += std::conj(amps_[i ^ m.x]) * (double(sign) * yphase) * amps_[i];
  }
  return e;
}

cplx StateVector::expectation(const pauli::QubitOperator& op) const {
  cplx e{};
  for (const auto& [p, c] : op.terms()) e += c * expectation(p);
  return e;
}

void accumulate_pauli_apply(const pauli::PauliString& p, cplx coeff,
                            const std::vector<cplx>& x, std::vector<cplx>& y) {
  const PauliMasks m = masks_of(p);
  const cplx yphase = i_power(m.n_y) * coeff;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int sign = __builtin_popcountll(i & m.z) & 1 ? -1 : 1;
    y[i ^ m.x] += double(sign) * yphase * x[i];
  }
}

std::vector<cplx> apply_qubit_operator(const pauli::QubitOperator& op,
                                       const std::vector<cplx>& x) {
  std::vector<cplx> y(x.size(), cplx{});
  for (const auto& [p, c] : op.terms()) accumulate_pauli_apply(p, c, x, y);
  return y;
}

std::vector<double> qubit_operator_diagonal(const pauli::QubitOperator& op) {
  const std::size_t dim = std::size_t(1) << op.n_qubits();
  std::vector<double> d(dim, 0.0);
  for (const auto& [p, c] : op.terms()) {
    const PauliMasks m = masks_of(p);
    if (m.x != 0) continue;  // off-diagonal term
    for (std::size_t i = 0; i < dim; ++i) {
      const int sign = __builtin_popcountll(i & m.z) & 1 ? -1 : 1;
      d[i] += (double(sign) * c).real();
    }
  }
  return d;
}

double qubit_ground_energy(const pauli::QubitOperator& op,
                           const std::vector<cplx>& guess) {
  auto apply = [&op](const std::vector<cplx>& x) {
    return apply_qubit_operator(op, x);
  };
  const auto diag = qubit_operator_diagonal(op);
  la::DavidsonOptions opts;
  opts.tolerance = 1e-9;
  const auto r = la::davidson_lowest_hermitian(apply, diag, guess, opts);
  require(r.converged, "qubit_ground_energy: Davidson did not converge");
  return r.eigenvalue;
}

}  // namespace q2::sim
