#include "sim/hadamard_test.hpp"

#include "circuit/builder.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {

circ::Circuit hadamard_test_circuit(const circ::Circuit& prep,
                                    const pauli::PauliString& p) {
  require(std::size_t(prep.n_qubits()) == p.n_qubits(),
          "hadamard_test_circuit: qubit count mismatch");
  const int n = prep.n_qubits();
  circ::Circuit c(n + 1);
  c.append(prep);
  c.append(circ::hadamard_test_measurement(p, n));
  return c;
}

namespace {

pauli::PauliString z_ancilla(std::size_t n_total) {
  pauli::PauliString z(n_total);
  z.set(n_total - 1, pauli::P::Z);
  return z;
}

}  // namespace

double hadamard_test_mps(const circ::Circuit& prep,
                         const std::vector<double>& params,
                         const pauli::PauliString& p,
                         const MpsOptions& options, double* truncation_error) {
  const circ::Circuit c = hadamard_test_circuit(prep, p);
  Mps mps(c.n_qubits(), options);
  mps.run(c, params);
  if (truncation_error) *truncation_error = mps.truncation_error();
  return mps.expectation(z_ancilla(std::size_t(c.n_qubits()))).real();
}

double hadamard_test_statevector(const circ::Circuit& prep,
                                 const std::vector<double>& params,
                                 const pauli::PauliString& p) {
  const circ::Circuit c = hadamard_test_circuit(prep, p);
  StateVector sv(c.n_qubits());
  sv.run(c, params);
  return sv.expectation(z_ancilla(std::size_t(c.n_qubits()))).real();
}

}  // namespace q2::sim
