#include "sim/reference_mps.hpp"

#include <cmath>

#include "circuit/routing.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd_reference.hpp"

namespace q2::sim {
namespace {

la::CMatrix slice(const std::vector<cplx>& t, std::size_t dl, std::size_t dr,
                  int i) {
  la::CMatrix m(dl, dr);
  for (std::size_t a = 0; a < dl; ++a)
    for (std::size_t b = 0; b < dr; ++b)
      m(a, b) = t[(a * 2 + std::size_t(i)) * dr + b];
  return m;
}

}  // namespace

ReferenceMps::ReferenceMps(int n_qubits, MpsOptions options)
    : n_(n_qubits), options_(options), perm_(std::max(n_qubits, 1)) {
  require(n_qubits >= 2, "ReferenceMps: need at least two qubits");
  tensors_.resize(n_);
  dl_.assign(n_, 1);
  dr_.assign(n_, 1);
  for (int k = 0; k < n_; ++k) {
    tensors_[k].assign(2, cplx{});
    tensors_[k][0] = 1.0;
  }
}

void ReferenceMps::apply(const circ::Gate& g, const std::vector<double>& params) {
  if (!g.is_two_qubit()) {
    const auto m = g.matrix1(params);
    const std::size_t dl = dl_[g.qubits[0]], dr = dr_[g.qubits[0]];
    std::vector<cplx>& t = tensors_[g.qubits[0]];
    for (std::size_t a = 0; a < dl; ++a)
      for (std::size_t b = 0; b < dr; ++b) {
        const cplx t0 = t[(a * 2 + 0) * dr + b];
        const cplx t1 = t[(a * 2 + 1) * dr + b];
        t[(a * 2 + 0) * dr + b] = m[0] * t0 + m[1] * t1;
        t[(a * 2 + 1) * dr + b] = m[2] * t0 + m[3] * t1;
      }
    return;
  }
  const int a = g.qubits[0], b = g.qubits[1];
  require(std::abs(a - b) == 1, "ReferenceMps::apply: gate not adjacent");
  const int left = std::min(a, b);
  apply_two_adjacent(left, g.matrix2(params), a == left);
}

void ReferenceMps::run(const circ::Circuit& c, const std::vector<double>& params) {
  require(c.n_qubits() == n_, "ReferenceMps::run: qubit count mismatch");
  const circ::Circuit routed = c.is_nearest_neighbour()
                                   ? c
                                   : circ::route_to_nearest_neighbour(c);
  for (const auto& g : routed.gates()) apply(g, params);
}

void ReferenceMps::run(const circ::CompiledCircuit& c,
                       const std::vector<double>& params) {
  require(c.gates.n_qubits() == n_, "ReferenceMps::run: qubit count mismatch");
  require(perm_.is_identity(),
          "ReferenceMps::run: compiled circuits assume the identity input "
          "placement");
  for (const auto& g : c.gates.gates()) apply(g, params);
  perm_ = c.output_perm;
}

void ReferenceMps::apply_two_adjacent(int n, const std::array<cplx, 16>& m_in,
                                      bool left_is_hi) {
  std::array<cplx, 16> o;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int ip = 0; ip < 2; ++ip)
        for (int jp = 0; jp < 2; ++jp) {
          const int row = left_is_hi ? i * 2 + j : j * 2 + i;
          const int col = left_is_hi ? ip * 2 + jp : jp * 2 + ip;
          o[(i * 2 + j) * 4 + (ip * 2 + jp)] = m_in[row * 4 + col];
        }

  const std::size_t dl = dl_[n], dm = dr_[n], dr = dr_[n + 1];
  la::CMatrix bn(dl * 2, dm);
  std::copy(tensors_[n].begin(), tensors_[n].end(), bn.data());
  la::CMatrix bn1(dm, 2 * dr);
  std::copy(tensors_[n + 1].begin(), tensors_[n + 1].end(), bn1.data());
  // Naive kernel on purpose — this engine has no tuned BLAS underneath.
  la::CMatrix t;
  la::gemm_naive(bn, bn1, t);

  la::CMatrix mm(dl * 2, 2 * dr);
  for (std::size_t a = 0; a < dl; ++a)
    for (std::size_t b = 0; b < dr; ++b) {
      cplx in[4], out[4] = {};
      for (int ip = 0; ip < 2; ++ip)
        for (int jp = 0; jp < 2; ++jp)
          in[ip * 2 + jp] = t(a * 2 + ip, jp * dr + b);
      for (int r = 0; r < 4; ++r)
        for (int k = 0; k < 4; ++k) out[r] += o[r * 4 + k] * in[k];
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) mm(a * 2 + i, j * dr + b) = out[i * 2 + j];
    }

  // Local truncated SVD without the canonical-gauge weighting: the local
  // singular values are not the state's Schmidt values, so this truncation
  // is uncontrolled — the straightforward-implementation behaviour the
  // optimized engine's Eq. (8) reweighting fixes. The decomposition itself
  // goes through the frozen scalar Jacobi oracle, the reference-LAPACK
  // analogue of the paper's swBLAS-vs-LAPACK-3.2 comparison — kept
  // independent of the optimized engine so the differential tests compare
  // two genuinely distinct implementations.
  const la::SvdResult full = la::svd_jacobi_reference(mm);
  double total = 0;
  for (double s : full.s) total += s * s;
  std::size_t k = std::min(options_.max_bond, full.s.size());
  while (k > 1 && full.s[k - 1] <= options_.svd_cutoff * full.s[0]) --k;
  double kept = 0;
  for (std::size_t i = 0; i < k; ++i) kept += full.s[i] * full.s[i];
  const double scale = total > 0 ? std::sqrt(total / std::max(kept, 1e-300))
                                 : 1.0;
  tensors_[n].assign(dl * 2 * k, cplx{});
  for (std::size_t r = 0; r < dl * 2; ++r)
    for (std::size_t c = 0; c < k; ++c)
      tensors_[n][r * k + c] = full.u(r, c) * full.s[c] * scale;
  dr_[n] = k;
  tensors_[n + 1].assign(k * 2 * dr, cplx{});
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < 2 * dr; ++c)
      tensors_[n + 1][r * (2 * dr) + c] = full.vh(r, c);
  dl_[n + 1] = k;
}

namespace {

la::CMatrix ref_transfer(const la::CMatrix& e, const std::vector<cplx>& t,
                         std::size_t dl, std::size_t dr, const cplx p[4]) {
  la::CMatrix out(dr, dr);
  for (int i = 0; i < 2; ++i) {
    la::CMatrix bi = slice(t, dl, dr, i);
    la::CMatrix ebi;
    la::gemm_naive(e, bi, ebi);
    for (int ip = 0; ip < 2; ++ip) {
      const cplx coeff = p[ip * 2 + i];
      if (coeff == cplx{}) continue;
      la::CMatrix contrib;
      la::gemm_naive(slice(t, dl, dr, ip).adjoint(), ebi, contrib);
      for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
          out(r, c) += coeff * contrib(r, c);
    }
  }
  return out;
}

constexpr cplx kIdent[4] = {1, 0, 0, 1};

}  // namespace

double ReferenceMps::norm() const {
  la::CMatrix e(1, 1);
  e(0, 0) = 1.0;
  for (int s = 0; s < n_; ++s)
    e = ref_transfer(e, tensors_[s], dl_[s], dr_[s], kIdent);
  return std::sqrt(std::abs(e(0, 0).real()));
}

cplx ReferenceMps::expectation(const pauli::PauliString& p) const {
  require(int(p.n_qubits()) == n_, "ReferenceMps: qubit count mismatch");
  const pauli::PauliString ps =
      perm_.is_identity() ? p : p.permuted(perm_.site_of_map());
  // Whole-chain contraction of <psi|P|psi> over <psi|psi> — no canonical-form
  // shortcuts, by design.
  la::CMatrix e(1, 1);
  e(0, 0) = 1.0;
  la::CMatrix nrm(1, 1);
  nrm(0, 0) = 1.0;
  for (int s = 0; s < n_; ++s) {
    cplx pm[4];
    pauli::PauliString::single_qubit_matrix(ps.get(std::size_t(s)), pm);
    e = ref_transfer(e, tensors_[s], dl_[s], dr_[s], pm);
    nrm = ref_transfer(nrm, tensors_[s], dl_[s], dr_[s], kIdent);
  }
  return e(0, 0) / nrm(0, 0);
}

cplx ReferenceMps::expectation(const pauli::QubitOperator& op) const {
  cplx e{};
  for (const auto& [p, c] : op.terms()) e += c * expectation(p);
  return e;
}

std::vector<cplx> ReferenceMps::to_statevector() const {
  require(n_ <= 24, "ReferenceMps::to_statevector: too many qubits");
  std::size_t rows = 1;
  la::CMatrix acc(1, dl_[0]);
  acc(0, 0) = 1.0;
  for (int s = 0; s < n_; ++s) {
    const std::size_t dl = dl_[s], dr = dr_[s];
    la::CMatrix site(dl, 2 * dr);
    for (std::size_t a = 0; a < dl; ++a)
      for (int i = 0; i < 2; ++i)
        for (std::size_t b = 0; b < dr; ++b)
          site(a, std::size_t(i) * dr + b) =
              tensors_[s][(a * 2 + std::size_t(i)) * dr + b];
    la::CMatrix next = la::matmul(acc, site);
    rows *= 2;
    la::CMatrix re(rows, dr);
    std::copy(next.data(), next.data() + next.size(), re.data());
    acc = std::move(re);
  }
  std::vector<cplx> out(std::size_t(1) << n_);
  for (std::size_t j = 0; j < out.size(); ++j) {
    std::size_t sv = 0;
    for (int q = 0; q < n_; ++q)
      if ((j >> (n_ - 1 - q)) & 1) sv |= std::size_t(1) << q;
    out[sv] = acc(j, 0);
  }
  if (!perm_.is_identity()) return circ::unpermute_statevector(out, perm_);
  return out;
}

std::size_t ReferenceMps::max_bond_dimension() const {
  std::size_t d = 1;
  for (int k = 0; k + 1 < n_; ++k) d = std::max(d, dr_[k]);
  return d;
}

}  // namespace q2::sim
