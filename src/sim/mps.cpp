#include "sim/mps.hpp"

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>

#include "circuit/routing.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"

namespace q2::sim {
namespace {

// Registry lookups are mutex-guarded; resolve once and cache the reference
// (instruments are never deallocated, see obs/metrics.hpp).
obs::Counter& gate_counter() {
  static obs::Counter& c = obs::Registry::global().counter("mps.gates");
  return c;
}
obs::Histogram& contract_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("mps.contract_seconds");
  return h;
}
obs::Histogram& svd_hist() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("mps.svd_seconds");
  return h;
}
obs::Counter& svd_sweep_counter() {
  static obs::Counter& c = obs::Registry::global().counter("mps.svd_sweeps");
  return c;
}
obs::Histogram& bond_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "mps.bond_dim", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  return h;
}
// One "sweep" = one streaming pass over a support range: a standalone
// expectation is one sweep, an expectation_batch is one sweep regardless of
// how many terms it serves. transfer_site_ops counts the individual
// per-site transfer contractions, which is where batching saves work.
obs::Counter& transfer_sweep_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("mps.transfer_sweeps");
  return c;
}
obs::Counter& transfer_op_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("mps.transfer_site_ops");
  return c;
}

// View of one site tensor slice B_i (physical index fixed): a Dl x Dr matrix.
la::CMatrix slice(const std::vector<cplx>& t, std::size_t dl, std::size_t dr,
                  int i) {
  la::CMatrix m(dl, dr);
  for (std::size_t a = 0; a < dl; ++a)
    for (std::size_t b = 0; b < dr; ++b)
      m(a, b) = t[(a * 2 + std::size_t(i)) * dr + b];
  return m;
}

}  // namespace

Mps::Mps(int n_qubits, MpsOptions options)
    : n_(n_qubits), options_(options), perm_(std::max(n_qubits, 1)) {
  require(n_qubits >= 2, "Mps: need at least two qubits");
  require(options_.max_bond >= 1, "Mps: max_bond must be positive");
  tensors_.resize(n_);
  dl_.assign(n_, 1);
  dr_.assign(n_, 1);
  lambda_.assign(n_ - 1, {1.0});
  for (int k = 0; k < n_; ++k) {
    tensors_[k].assign(2, cplx{});
    tensors_[k][0] = 1.0;  // |0> at each site
  }
}

Mps Mps::from_statevector(int n_qubits, const std::vector<cplx>& amps,
                          MpsOptions options) {
  require(amps.size() == (std::size_t(1) << n_qubits),
          "Mps::from_statevector: amplitude count mismatch");
  Mps mps(n_qubits, options);

  // Rearrange amplitudes into row-major site order (site 0 slowest index);
  // the state-vector convention keeps qubit q at bit q.
  const std::size_t dim = amps.size();
  std::vector<cplx> c(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    std::size_t sv = 0;
    for (int q = 0; q < n_qubits; ++q)
      if ((j >> (n_qubits - 1 - q)) & 1) sv |= std::size_t(1) << q;
    c[j] = amps[sv];
  }

  // Split off sites from the right: c = (rest) x (2 * D_right), SVD, the V
  // factor becomes the right-canonical site tensor.
  std::size_t d_right = 1;
  for (int site = n_qubits - 1; site >= 1; --site) {
    const std::size_t cols = 2 * d_right;
    const std::size_t rows = c.size() / cols;
    la::CMatrix m(rows, cols);
    std::copy(c.begin(), c.end(), m.data());
    la::TruncatedSvd f = la::svd_truncated(m, options.max_bond,
                                           options.svd_cutoff,
                                           options.parallel);
    const std::size_t k = f.s.size();
    mps.truncation_error_ += f.truncation_error;
    mps.tensors_[site].assign(k * cols, cplx{});
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t col = 0; col < cols; ++col)
        mps.tensors_[site][r * cols + col] = f.vh(r, col);
    mps.dl_[site] = k;
    mps.dr_[site] = d_right;
    double sn = 0;
    for (double x : f.s) sn += x * x;
    sn = std::sqrt(sn);
    mps.lambda_[site - 1].resize(k);
    for (std::size_t r = 0; r < k; ++r)
      mps.lambda_[site - 1][r] = sn > 0 ? f.s[r] / sn : 0.0;
    // carry U * S to the left
    c.assign(rows * k, cplx{});
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t col = 0; col < k; ++col)
        c[r * k + col] = f.u(r, col) * f.s[col];
    d_right = k;
  }
  mps.tensors_[0] = c;  // shape (1, 2, d_right)
  mps.dl_[0] = 1;
  mps.dr_[0] = d_right;
  // Normalize the first tensor so the state has unit norm.
  double nrm = 0;
  for (const auto& z : mps.tensors_[0]) nrm += norm2(z);
  nrm = std::sqrt(nrm);
  if (nrm > 0)
    for (auto& z : mps.tensors_[0]) z /= nrm;
  return mps;
}

std::size_t Mps::bond_dimension(int k) const {
  require(k >= 0 && k + 1 < n_, "Mps::bond_dimension: bad bond");
  return dr_[k];
}

std::size_t Mps::max_bond_dimension() const {
  std::size_t d = 1;
  for (int k = 0; k + 1 < n_; ++k) d = std::max(d, dr_[k]);
  return d;
}

std::size_t Mps::memory_bytes() const {
  std::size_t b = 0;
  for (const auto& t : tensors_) b += t.size() * sizeof(cplx);
  for (const auto& l : lambda_) b += l.size() * sizeof(double);
  return b;
}

void Mps::apply_single(int site, const std::array<cplx, 4>& m) {
  const std::size_t dl = dl_[site], dr = dr_[site];
  std::vector<cplx>& t = tensors_[site];
  for (std::size_t a = 0; a < dl; ++a) {
    for (std::size_t b = 0; b < dr; ++b) {
      const cplx t0 = t[(a * 2 + 0) * dr + b];
      const cplx t1 = t[(a * 2 + 1) * dr + b];
      t[(a * 2 + 0) * dr + b] = m[0] * t0 + m[1] * t1;
      t[(a * 2 + 1) * dr + b] = m[2] * t0 + m[3] * t1;
    }
  }
}

void Mps::apply_two_adjacent(int n, const std::array<cplx, 16>& m_in,
                             bool left_is_hi) {
  OBS_SPAN("mps/two_site");
  // O[(i j), (i' j')] with i = left site's physical index. The gate matrix is
  // given in (hi, lo) order; when the left site is the lo qubit, permute.
  std::array<cplx, 16> o;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int ip = 0; ip < 2; ++ip)
        for (int jp = 0; jp < 2; ++jp) {
          const int row = left_is_hi ? i * 2 + j : j * 2 + i;
          const int col = left_is_hi ? ip * 2 + jp : jp * 2 + ip;
          o[(i * 2 + j) * 4 + (ip * 2 + jp)] = m_in[row * 4 + col];
        }

  const std::size_t dl = dl_[n], dm = dr_[n], dr = dr_[n + 1];
  require(dm == dl_[n + 1], "Mps: inconsistent bond dimensions");
  ++profile_.gates_applied;
  gate_counter().add();
  Timer hotspot_timer;

  const std::size_t rows = dl * 2, cols = 2 * dr;
  std::vector<cplx>& mm = scratch_.m;
  {
    OBS_SPAN("mps/contract");

    // Eq. (7) part 1: T[(a i'), (j' b)] = sum_m Bn[a,i',m] Bn1[m,j',b]. Both
    // site tensors are already exact row-major matrices under this
    // (free, contracted) split — (dl*2) x dm and dm x (2*dr) — so the packed
    // GEMM reads them in place; no bn/bn1 staging copies.
    mm.resize(rows * cols);
    la::gemm_raw(rows, dm, cols, tensors_[n].data(), dm, la::Op::kNone,
                 tensors_[n + 1].data(), cols, la::Op::kNone, mm.data(), cols,
                 options_.parallel);

    // Eq. (7) part 2: M[(a i), (j b)] = sum_{i' j'} O[(i j), (i' j')] T,
    // applied in place (each (a, b) fiber is read fully before writeback).
    for (std::size_t a = 0; a < dl; ++a) {
      for (std::size_t b = 0; b < dr; ++b) {
        cplx in[4], out[4] = {};
        for (int ip = 0; ip < 2; ++ip)
          for (int jp = 0; jp < 2; ++jp)
            in[ip * 2 + jp] = mm[(a * 2 + ip) * cols + jp * dr + b];
        for (int r = 0; r < 4; ++r)
          for (int k = 0; k < 4; ++k) out[r] += o[r * 4 + k] * in[k];
        for (int i = 0; i < 2; ++i)
          for (int j = 0; j < 2; ++j)
            mm[(a * 2 + i) * cols + j * dr + b] = out[i * 2 + j];
      }
    }
    // Fused 4x4 gate application: per (a, b) fiber one complex 4-vector
    // matvec (16 multiply-adds = 128 flops) over 4 read + 4 written elements
    // (128 bytes). The surrounding GEMMs charge themselves.
    obs::WorkCounter::charge(std::uint64_t(dl) * dr * 128,
                             std::uint64_t(dl) * dr * 128);

    // Eq. (8): the Schmidt row weights fold into the SVD's packing pass —
    // the full weighted copy mw = mm is gone.
    if (n > 0) {
      const std::vector<double>& lam = lambda_[n - 1];
      scratch_.row_scale.resize(rows);
      for (std::size_t a = 0; a < dl; ++a) {
        scratch_.row_scale[a * 2 + 0] = lam[a];
        scratch_.row_scale[a * 2 + 1] = lam[a];
      }
    }
  }

  double contract_seconds = hotspot_timer.seconds();
  profile_.contraction_seconds += contract_seconds;
  hotspot_timer.reset();

  // Eq. (9): truncated SVD of the weighted tensor. U is never formed — the
  // Eq. (10) recovery below needs only the unweighted M and V^H.
  la::TruncatedSpectrum f;
  {
    OBS_SPAN("mps/svd");
    f = la::svd_truncated_ws(scratch_.svd, mm.data(), rows, cols, cols,
                             n > 0 ? scratch_.row_scale.data() : nullptr,
                             options_.max_bond, options_.svd_cutoff,
                             /*want_u=*/false, options_.parallel);
  }
  const double svd_seconds = hotspot_timer.seconds();
  profile_.svd_seconds += svd_seconds;
  svd_hist().observe(svd_seconds);
  profile_.svd_sweeps += std::size_t(f.sweeps);
  svd_sweep_counter().add(std::uint64_t(f.sweeps));
  hotspot_timer.reset();
  const std::size_t k = f.keep;
  bond_hist().observe(double(k));
  truncation_error_ += f.truncation_error;

  // Compensate the weight dropped by this truncation (relative, so it is
  // exact even when the canonical gauge has drifted and ||M'|| != 1).
  const double norm_scale = 1.0 / std::sqrt(std::max(1e-300, 1.0 - f.truncation_error));

  // New Schmidt vector on bond n (normalized).
  double kept = 0;
  for (std::size_t r = 0; r < k; ++r) kept += f.s[r] * f.s[r];
  lambda_[n].resize(k);
  {
    const double total = std::sqrt(kept);
    for (std::size_t r = 0; r < k; ++r)
      lambda_[n][r] = total > 0 ? f.s[r] / total : 0.0;
  }

  // B_{n+1} <- V (right-canonical by construction): V^H is contiguous
  // k x (2*dr), exactly the site-tensor layout.
  tensors_[n + 1].assign(f.vh, f.vh + k * cols);
  dl_[n + 1] = k;

  // Eq. (10): B_n <- M V^dagger (on the unweighted M), written straight into
  // the site storage and renormalized in place to keep the state at unit
  // norm after truncation.
  {
    OBS_SPAN("mps/contract");
    tensors_[n].assign(rows * k, cplx{});
    la::gemm_raw(rows, cols, k, mm.data(), cols, la::Op::kNone, f.vh, cols,
                 la::Op::kAdjoint, tensors_[n].data(), k, options_.parallel);
    for (auto& z : tensors_[n]) z *= norm_scale;
    dr_[n] = k;
  }
  const double restore_seconds = hotspot_timer.seconds();
  profile_.contraction_seconds += restore_seconds;
  contract_seconds += restore_seconds;
  contract_hist().observe(contract_seconds);
}

void Mps::apply(const circ::Gate& g, const std::vector<double>& params) {
  if (!g.is_two_qubit()) {
    apply_single(g.qubits[0], g.matrix1(params));
    return;
  }
  const int a = g.qubits[0], b = g.qubits[1];
  require(std::abs(a - b) == 1,
          "Mps::apply: two-qubit gates must be nearest-neighbour (route first)");
  const int left = std::min(a, b);
  apply_two_adjacent(left, g.matrix2(params), /*left_is_hi=*/a == left);
}

void Mps::run(const circ::Circuit& c, const std::vector<double>& params) {
  OBS_SPAN("mps/run");
  require(c.n_qubits() == n_, "Mps::run: qubit count mismatch");
  require(perm_.is_identity(),
          "Mps::run: engine carries a residual permutation; logical circuits "
          "can only run on an unpermuted state");
  if (c.is_nearest_neighbour()) {
    for (const auto& g : c.gates()) apply(g, params);
  } else {
    const circ::Circuit routed = circ::route_to_nearest_neighbour(c);
    for (const auto& g : routed.gates()) apply(g, params);
  }
}

void Mps::run(const circ::CompiledCircuit& c,
              const std::vector<double>& params) {
  OBS_SPAN("mps/run");
  require(c.gates.n_qubits() == n_, "Mps::run: qubit count mismatch");
  require(perm_.is_identity(),
          "Mps::run: compiled circuits assume the identity input placement");
  for (const auto& g : c.gates.gates()) apply(g, params);
  perm_ = c.output_perm;
}

namespace {

// Transfer E across one site: E' = sum_{i',i} P[i',i] B_{i'}^dagger (E B_i).
// The fixed-physical-index slice B_i of the (a, i, b) site tensor is fed to
// the packed kernel through an offset table — row a of B_i sits at flat
// offset (a*2 + i)*dr — instead of being copied out. Only the adjoint
// operand B_{i'} is still materialized: offset tables cannot fold the
// conjugation.
la::CMatrix transfer(const la::CMatrix& e, const std::vector<cplx>& t,
                     std::size_t dl, std::size_t dr, const cplx p[4]) {
  la::CMatrix out(dr, dr);
  std::vector<std::size_t> e_row(e.rows()), e_col(dl), b_row(dl), b_col(dr);
  for (std::size_t r = 0; r < e.rows(); ++r) e_row[r] = r * e.cols();
  std::iota(e_col.begin(), e_col.end(), std::size_t{0});
  std::iota(b_col.begin(), b_col.end(), std::size_t{0});
  for (int i = 0; i < 2; ++i) {
    for (std::size_t a = 0; a < dl; ++a)
      b_row[a] = (a * 2 + std::size_t(i)) * dr;
    la::CMatrix ebi = la::gemm_offsets(e.rows(), dl, dr, e.data(), e_row,
                                       e_col, t.data(), b_row, b_col);
    for (int ip = 0; ip < 2; ++ip) {
      const cplx coeff = p[ip * 2 + i];
      if (coeff == cplx{}) continue;
      la::CMatrix bip = slice(t, dl, dr, ip);
      la::gemm(coeff, bip, la::Op::kAdjoint, ebi, la::Op::kNone, cplx{1}, out);
    }
  }
  return out;
}

constexpr cplx kIdent[4] = {1, 0, 0, 1};

}  // namespace

double Mps::norm() const {
  la::CMatrix e(1, 1);
  e(0, 0) = 1.0;
  for (int s = 0; s < n_; ++s)
    e = transfer(e, tensors_[s], dl_[s], dr_[s], kIdent);
  return std::sqrt(std::abs(e(0, 0).real()));
}

cplx Mps::expectation(const pauli::PauliString& p) const {
  OBS_SPAN("mps/expectation");
  require(int(p.n_qubits()) == n_, "Mps::expectation: qubit count mismatch");
  if (p.is_identity()) {
    const double nn = norm();
    return nn * nn;
  }
  // <psi|P|psi> on a permuted state equals the expectation of the
  // site-relabelled string on the raw tensors.
  pauli::PauliString permuted_storage;
  const pauli::PauliString& ps =
      perm_.is_identity()
          ? p
          : (permuted_storage = p.permuted(perm_.site_of_map()));
  const auto [lo, hi] = ps.support_range();
  transfer_sweep_counter().add();
  transfer_op_counter().add(std::uint64_t(hi - lo + 1));

  // Left environment at bond lo-1 is diag(lambda^2) in the canonical gauge.
  la::CMatrix e(dl_[lo], dl_[lo]);
  if (lo == 0) {
    e(0, 0) = 1.0;
  } else {
    const std::vector<double>& lam = lambda_[lo - 1];
    for (std::size_t a = 0; a < dl_[lo]; ++a) e(a, a) = lam[a] * lam[a];
  }
  std::uint64_t streamed = 0;
  for (std::size_t s = lo; s <= hi; ++s) {
    cplx pm[4];
    pauli::PauliString::single_qubit_matrix(ps.get(s), pm);
    e = transfer(e, tensors_[s], dl_[s], dr_[s], pm);
    streamed += std::uint64_t(tensors_[s].size()) * sizeof(cplx);
  }
  // Right of the support everything contracts to the identity: take trace.
  cplx tr{};
  for (std::size_t a = 0; a < e.rows(); ++a) tr += e(a, a);
  // The sweep's own cost beyond the nested GEMMs: the state stream over the
  // support plus the closing trace (one complex add per diagonal element).
  obs::WorkCounter::charge(2 * std::uint64_t(e.rows()), streamed);
  return tr;
}

cplx Mps::expectation(const pauli::QubitOperator& op) const {
  cplx e{};
  for (const auto& [p, c] : op.terms()) e += c * expectation(p);
  return e;
}

std::vector<cplx> Mps::expectation_batch(
    const std::vector<pauli::PauliString>& terms) const {
  OBS_SPAN("mps/expectation_batch");
  std::vector<cplx> out(terms.size());
  if (terms.empty()) return out;

  // Site-relabelled views with their support ranges; identity terms are
  // answered immediately (norm^2) and excluded from the shared sweep.
  struct Item {
    std::size_t idx;
    pauli::PauliString p;
    std::size_t lo, hi;
  };
  std::vector<Item> items;
  items.reserve(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    require(int(terms[i].n_qubits()) == n_,
            "Mps::expectation_batch: qubit count mismatch");
    if (terms[i].is_identity()) {
      const double nn = norm();
      out[i] = nn * nn;
      continue;
    }
    pauli::PauliString ps = perm_.is_identity()
                                ? terms[i]
                                : terms[i].permuted(perm_.site_of_map());
    const auto [lo, hi] = ps.support_range();
    items.push_back({i, std::move(ps), lo, hi});
  }
  if (items.empty()) return out;
  transfer_sweep_counter().add();

  std::uint64_t site_ops = 0, streamed = 0, trace_adds = 0;

  // Prefix-sharing sweep. Every item in `bucket` starts at the same site and
  // agrees on all Pauli letters over [start, site); one transfer per distinct
  // letter advances the shared environment. Because each term's environment
  // chain consists of exactly the transfer calls the standalone expectation
  // would make (identical inputs, identical order), per-term values are
  // bit-identical to expectation(p) — sharing removes repeats, not FP steps.
  std::function<void(const std::vector<const Item*>&, std::size_t,
                     const la::CMatrix&)>
      descend = [&](const std::vector<const Item*>& bucket, std::size_t site,
                    const la::CMatrix& e) {
        std::array<std::vector<const Item*>, 4> by_letter;
        for (const Item* it : bucket)
          by_letter[std::size_t(it->p.get(site))].push_back(it);
        for (int letter = 0; letter < 4; ++letter) {
          const auto& sub = by_letter[std::size_t(letter)];
          if (sub.empty()) continue;
          cplx pm[4];
          pauli::PauliString::single_qubit_matrix(pauli::P(letter), pm);
          const la::CMatrix next =
              transfer(e, tensors_[site], dl_[site], dr_[site], pm);
          ++site_ops;
          streamed += std::uint64_t(tensors_[site].size()) * sizeof(cplx);
          std::vector<const Item*> cont;
          for (const Item* it : sub) {
            if (it->hi == site) {
              cplx tr{};
              for (std::size_t a = 0; a < next.rows(); ++a) tr += next(a, a);
              trace_adds += next.rows();
              out[it->idx] = tr;
            } else {
              cont.push_back(it);
            }
          }
          if (!cont.empty()) descend(cont, site + 1, next);
        }
      };

  // Terms sharing an environment must share the exact same starting
  // environment, so buckets are keyed on the start site (ascending for
  // determinism).
  std::map<std::size_t, std::vector<const Item*>> by_lo;
  for (const Item& it : items) by_lo[it.lo].push_back(&it);
  for (const auto& [lo, bucket] : by_lo) {
    la::CMatrix e(dl_[lo], dl_[lo]);
    if (lo == 0) {
      e(0, 0) = 1.0;
    } else {
      const std::vector<double>& lam = lambda_[lo - 1];
      for (std::size_t a = 0; a < dl_[lo]; ++a) e(a, a) = lam[a] * lam[a];
    }
    descend(bucket, lo, e);
  }
  transfer_op_counter().add(site_ops);
  obs::WorkCounter::charge(2 * trace_adds, streamed);
  return out;
}

std::vector<cplx> Mps::to_statevector() const {
  require(n_ <= 24, "Mps::to_statevector: too many qubits");
  // Accumulate left-to-right: rows enumerate (i_0 ... i_s) with i_0 slowest.
  // The (a, i, b) -> (a, (i b)) regrouping is the identity on the flat
  // row-major storage, so each site tensor feeds the packed kernel in place
  // as a dl x (2*dr) matrix, and the (rows, 2*dr) -> (2*rows, dr) reshape is
  // a reinterpretation of the contiguous product — no staging copies.
  std::size_t rows = 1;
  std::vector<cplx> acc(dl_[0], cplx{});
  acc[0] = 1.0;
  std::vector<cplx> next;
  for (int s = 0; s < n_; ++s) {
    const std::size_t dl = dl_[s], dr = dr_[s];
    next.resize(rows * 2 * dr);
    la::gemm_raw(rows, dl, 2 * dr, acc.data(), dl, la::Op::kNone,
                 tensors_[s].data(), 2 * dr, la::Op::kNone, next.data(),
                 2 * dr);
    rows *= 2;
    acc.swap(next);
  }
  // acc is (2^n, 1) with site 0 as the most significant index; remap to the
  // state-vector convention (qubit q at bit q), then undo any residual
  // compiled-run permutation so amplitudes are indexed by logical qubits.
  std::vector<cplx> out(std::size_t(1) << n_);
  for (std::size_t j = 0; j < out.size(); ++j) {
    std::size_t sv = 0;
    for (int q = 0; q < n_; ++q)
      if ((j >> (n_ - 1 - q)) & 1) sv |= std::size_t(1) << q;
    out[sv] = acc[j];
  }
  if (!perm_.is_identity()) return circ::unpermute_statevector(out, perm_);
  return out;
}

MpsState Mps::export_state() const {
  require(perm_.is_identity(),
          "Mps::export_state: the checkpoint format stores site tensors "
          "only; run logical (unpermuted) circuits before checkpointing");
  MpsState s;
  s.n_qubits = n_;
  s.max_bond = options_.max_bond;
  s.svd_cutoff = options_.svd_cutoff;
  s.tensors = tensors_;
  s.dl = dl_;
  s.dr = dr_;
  s.lambda = lambda_;
  s.truncation_error = truncation_error_;
  return s;
}

Mps Mps::import_state(const MpsState& state,
                      const par::ParallelOptions& parallel) {
  require(state.n_qubits >= 2, "Mps::import_state: need at least two qubits");
  const std::size_t n = std::size_t(state.n_qubits);
  require(state.tensors.size() == n && state.dl.size() == n &&
              state.dr.size() == n && state.lambda.size() == n - 1,
          "Mps::import_state: inconsistent per-site array sizes");
  for (std::size_t k = 0; k < n; ++k) {
    require(state.tensors[k].size() == state.dl[k] * 2 * state.dr[k],
            "Mps::import_state: site tensor size mismatch");
    if (k + 1 < n)
      require(state.dr[k] == state.dl[k + 1] &&
                  state.lambda[k].size() == state.dr[k],
              "Mps::import_state: bond dimension mismatch");
  }
  MpsOptions options;
  options.max_bond = state.max_bond;
  options.svd_cutoff = state.svd_cutoff;
  options.parallel = parallel;
  Mps mps(state.n_qubits, options);
  mps.tensors_ = state.tensors;
  mps.dl_ = state.dl;
  mps.dr_ = state.dr;
  mps.lambda_ = state.lambda;
  mps.truncation_error_ = state.truncation_error;
  return mps;
}

}  // namespace q2::sim
