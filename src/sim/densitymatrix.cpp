#include "sim/densitymatrix.hpp"

namespace q2::sim {
namespace {

// Apply the 2x2 unitary to the row index (left multiplication by U on the
// target qubit), or conjugated to the column index when `right` is true.
void apply1(la::CMatrix& rho, int q, const std::array<cplx, 4>& m, bool right) {
  const std::size_t dim = rho.rows();
  const std::size_t bit = std::size_t(1) << q;
  if (!right) {
    for (std::size_t c = 0; c < dim; ++c) {
      for (std::size_t r = 0; r < dim; ++r) {
        if (r & bit) continue;
        const cplx a0 = rho(r, c), a1 = rho(r | bit, c);
        rho(r, c) = m[0] * a0 + m[1] * a1;
        rho(r | bit, c) = m[2] * a0 + m[3] * a1;
      }
    }
  } else {
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        if (c & bit) continue;
        const cplx a0 = rho(r, c), a1 = rho(r, c | bit);
        rho(r, c) = std::conj(m[0]) * a0 + std::conj(m[1]) * a1;
        rho(r, c | bit) = std::conj(m[2]) * a0 + std::conj(m[3]) * a1;
      }
    }
  }
}

void apply2(la::CMatrix& rho, int qhi, int qlo, const std::array<cplx, 16>& m,
            bool right) {
  const std::size_t dim = rho.rows();
  const std::size_t hi = std::size_t(1) << qhi, lo = std::size_t(1) << qlo;
  for (std::size_t other = 0; other < dim; ++other) {
    for (std::size_t idx = 0; idx < dim; ++idx) {
      if (idx & (hi | lo)) continue;
      const std::size_t b[4] = {idx, idx | lo, idx | hi, idx | hi | lo};
      cplx in[4], out[4] = {};
      for (int k = 0; k < 4; ++k)
        in[k] = right ? rho(other, b[k]) : rho(b[k], other);
      for (int r = 0; r < 4; ++r)
        for (int k = 0; k < 4; ++k) {
          const cplx u = right ? std::conj(m[r * 4 + k]) : m[r * 4 + k];
          out[r] += u * in[k];
        }
      for (int k = 0; k < 4; ++k) {
        if (right)
          rho(other, b[k]) = out[k];
        else
          rho(b[k], other) = out[k];
      }
    }
  }
}

}  // namespace

DensityMatrix::DensityMatrix(int n_qubits) : n_(n_qubits) {
  require(n_qubits >= 1 && n_qubits <= 14, "DensityMatrix: unsupported size");
  const std::size_t dim = std::size_t(1) << n_qubits;
  rho_ = la::CMatrix(dim, dim);
  rho_(0, 0) = 1.0;
}

void DensityMatrix::apply(const circ::Gate& g, const std::vector<double>& params) {
  if (!g.is_two_qubit()) {
    const auto m = g.matrix1(params);
    apply1(rho_, g.qubits[0], m, /*right=*/false);
    apply1(rho_, g.qubits[0], m, /*right=*/true);
  } else {
    const auto m = g.matrix2(params);
    apply2(rho_, g.qubits[0], g.qubits[1], m, false);
    apply2(rho_, g.qubits[0], g.qubits[1], m, true);
  }
}

void DensityMatrix::run(const circ::Circuit& c, const std::vector<double>& params) {
  require(c.n_qubits() == n_, "DensityMatrix::run: qubit count mismatch");
  for (const auto& g : c.gates()) apply(g, params);
}

void DensityMatrix::apply_depolarizing(int qubit, double p) {
  require(p >= 0 && p <= 1, "apply_depolarizing: bad probability");
  // rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z)
  la::CMatrix mixed(rho_.rows(), rho_.cols());
  const circ::GateKind kinds[3] = {circ::GateKind::kX, circ::GateKind::kY,
                                   circ::GateKind::kZ};
  for (const auto kind : kinds) {
    la::CMatrix branch = rho_;
    circ::Gate g{kind, {qubit, -1}};
    const auto m = g.matrix1();
    apply1(branch, qubit, m, false);
    apply1(branch, qubit, m, true);
    mixed += branch;
  }
  rho_ *= (1.0 - p);
  rho_ += mixed * cplx(p / 3.0, 0.0);
}

double DensityMatrix::trace_real() const {
  cplx t{};
  for (std::size_t i = 0; i < rho_.rows(); ++i) t += rho_(i, i);
  return t.real();
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 for Hermitian rho.
  double s = 0;
  for (std::size_t i = 0; i < rho_.rows(); ++i)
    for (std::size_t j = 0; j < rho_.cols(); ++j) s += norm2(rho_(i, j));
  return s;
}

cplx DensityMatrix::expectation(const pauli::PauliString& p) const {
  require(int(p.n_qubits()) == n_, "expectation: qubit count mismatch");
  // tr(P rho): row i of P has its entry at column j = i ^ x with the phase of
  // the string, so tr(P rho) = sum_i phase(i) rho(i ^ x ... ) — equivalently
  // walk the nonzeros of P.
  std::uint64_t x = 0, z = 0;
  int n_y = 0;
  for (std::size_t q = 0; q < p.n_qubits(); ++q) {
    switch (p.get(q)) {
      case pauli::P::X: x |= 1ull << q; break;
      case pauli::P::Z: z |= 1ull << q; break;
      case pauli::P::Y:
        x |= 1ull << q;
        z |= 1ull << q;
        ++n_y;
        break;
      default: break;
    }
  }
  cplx yphase{1, 0};
  for (int k = 0; k < (((n_y % 4) + 4) % 4); ++k) yphase *= cplx{0, 1};
  cplx t{};
  for (std::size_t i = 0; i < rho_.rows(); ++i) {
    const int sign = __builtin_popcountll(i & z) & 1 ? -1 : 1;
    // <i|P = phase(i) <i^x|, so tr(P rho) = sum_i phase(i) rho(i^x, i)?
    // P|i> = phase(i)|i^x>  =>  (P rho)(i^x, j) += phase(i) rho(i, j)
    // tr(P rho) = sum_j (P rho)(j, j) = sum_i phase(i) rho(i ^ x ... )
    t += double(sign) * yphase * rho_(i, i ^ x);
  }
  return t;
}

cplx DensityMatrix::expectation(const pauli::QubitOperator& op) const {
  cplx e{};
  for (const auto& [p, c] : op.terms()) e += c * expectation(p);
  return e;
}

}  // namespace q2::sim
