#include "sim/expectation.hpp"

#include <cmath>

#include "pauli/grouping.hpp"

namespace q2::sim {

double measure_energy(const Mps& state, const pauli::QubitOperator& h) {
  require(h.is_hermitian(1e-8), "measure_energy: operator is not Hermitian");
  return state.expectation(h).real();
}

double measure_energy(const StateVector& state, const pauli::QubitOperator& h) {
  require(h.is_hermitian(1e-8), "measure_energy: operator is not Hermitian");
  return state.expectation(h).real();
}

std::vector<std::vector<pauli::PauliString>> qubitwise_commuting_groups(
    const pauli::QubitOperator& op) {
  // Thin wrapper over the pauli::grouping planner (compatibility with the
  // union basis is equivalent to pairwise compatibility with every member,
  // so the first-fit result is identical to the old per-member scan).
  std::vector<pauli::PauliString> terms;
  terms.reserve(op.size());
  for (const auto& [p, c] : op.sorted_terms()) terms.push_back(p);
  std::vector<std::vector<pauli::PauliString>> out;
  for (const auto& g : pauli::group_qubitwise_commuting(terms)) {
    std::vector<pauli::PauliString> members;
    members.reserve(g.members.size());
    for (auto i : g.members) members.push_back(terms[i]);
    out.push_back(std::move(members));
  }
  return out;
}

}  // namespace q2::sim
