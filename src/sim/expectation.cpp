#include "sim/expectation.hpp"

#include <cmath>

namespace q2::sim {
namespace {

bool qubitwise_compatible(const pauli::PauliString& a,
                          const pauli::PauliString& b) {
  for (std::size_t q = 0; q < a.n_qubits(); ++q) {
    const pauli::P pa = a.get(q), pb = b.get(q);
    if (pa != pauli::P::I && pb != pauli::P::I && pa != pb) return false;
  }
  return true;
}

}  // namespace

double measure_energy(const Mps& state, const pauli::QubitOperator& h) {
  require(h.is_hermitian(1e-8), "measure_energy: operator is not Hermitian");
  return state.expectation(h).real();
}

double measure_energy(const StateVector& state, const pauli::QubitOperator& h) {
  require(h.is_hermitian(1e-8), "measure_energy: operator is not Hermitian");
  return state.expectation(h).real();
}

std::vector<std::vector<pauli::PauliString>> qubitwise_commuting_groups(
    const pauli::QubitOperator& op) {
  std::vector<std::vector<pauli::PauliString>> groups;
  for (const auto& [p, c] : op.sorted_terms()) {
    if (p.is_identity()) continue;
    bool placed = false;
    for (auto& g : groups) {
      bool ok = true;
      for (const auto& member : g) {
        if (!qubitwise_compatible(p, member)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        g.push_back(p);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({p});
  }
  return groups;
}

}  // namespace q2::sim
