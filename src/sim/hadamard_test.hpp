// The paper-faithful measurement path: every Pauli expectation value is
// obtained by running a separate circuit with an ancilla qubit (Fig. 5) and
// reading out <Z_ancilla> = Re<psi|P|psi>. This is what a hardware VQE would
// do, and the unit the second parallelization level distributes.
#pragma once

#include "circuit/circuit.hpp"
#include "pauli/pauli_string.hpp"
#include "sim/mps.hpp"

namespace q2::sim {

/// Builds the full Hadamard-test circuit on n+1 qubits: `prep` (state
/// preparation + ansatz on qubits [0, n)) followed by the ancilla-controlled
/// measurement part for `p`.
circ::Circuit hadamard_test_circuit(const circ::Circuit& prep,
                                    const pauli::PauliString& p);

/// Runs the Hadamard test on the MPS engine; returns Re<psi|P|psi>. When
/// `truncation_error` is non-null it receives the MPS truncation error
/// accumulated by this circuit run (the fidelity column of run reports).
double hadamard_test_mps(const circ::Circuit& prep,
                         const std::vector<double>& params,
                         const pauli::PauliString& p,
                         const MpsOptions& options = {},
                         double* truncation_error = nullptr);

/// Same on the state-vector engine (the small-system oracle).
double hadamard_test_statevector(const circ::Circuit& prep,
                                 const std::vector<double>& params,
                                 const pauli::PauliString& p);

}  // namespace q2::sim
