// Core scalar types and small utilities shared by every q2chem module.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace q2 {

using cplx = std::complex<double>;

inline constexpr double kPi = 3.14159265358979323846;

/// Thrown on violated preconditions in public API entry points.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition check that survives in release builds: the cost is negligible
/// next to the numerical kernels it guards.
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

/// |z|^2 without the sqrt of std::abs.
inline double norm2(cplx z) { return z.real() * z.real() + z.imag() * z.imag(); }

}  // namespace q2
