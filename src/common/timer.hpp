// Wall-clock timer used by the profilers and the machine-model calibration.
#pragma once

#include <chrono>

namespace q2 {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace q2
