#include "common/log.hpp"

#include <cstdio>

namespace q2::log {
namespace {
Level g_level = Level::kSilent;
}

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }

void info(const std::string& msg) {
  if (g_level >= Level::kInfo) std::fprintf(stderr, "[q2] %s\n", msg.c_str());
}

void debug(const std::string& msg) {
  if (g_level >= Level::kDebug) std::fprintf(stderr, "[q2:dbg] %s\n", msg.c_str());
}

}  // namespace q2::log
