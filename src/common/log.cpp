#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace q2::log {
namespace {

std::atomic<Level> g_level{Level::kSilent};
std::atomic<bool> g_timestamps{false};

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

void emit(Level severity, const char* tag, const std::string& msg) {
  if (g_level.load(std::memory_order_relaxed) < severity) return;
  char stamp[32] = "";
  if (g_timestamps.load(std::memory_order_relaxed)) {
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - process_start())
                         .count();
    std::snprintf(stamp, sizeof(stamp), " +%.3fs", t);
  }
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fprintf(stderr, "[q2%s%s] %s\n", tag, stamp, msg.c_str());
}

}  // namespace

void set_level(Level level) {
  process_start();  // pin the timestamp origin early
  g_level.store(level, std::memory_order_relaxed);
}

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_timestamps(bool enabled) {
  process_start();
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void error(const std::string& msg) { emit(Level::kError, ":error", msg); }
void warn(const std::string& msg) { emit(Level::kWarn, ":warn", msg); }
void info(const std::string& msg) { emit(Level::kInfo, "", msg); }
void debug(const std::string& msg) { emit(Level::kDebug, ":dbg", msg); }

}  // namespace q2::log
