// Deterministic random sources for tests and benchmarks. Every stochastic
// routine in the library takes an explicit Rng so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace q2 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 12345) : engine_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  cplx complex_normal() { return {normal(), normal()}; }
  /// Uniform integer in [0, n); returns 0 when n == 0. (The naive
  /// uniform_int_distribution(0, n - 1) underflows to the full size_t range
  /// on an empty domain — a real UB bug fixed with a regression test.)
  std::size_t index(std::size_t n) {
    if (n == 0) return 0;
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  std::vector<cplx> complex_vector(std::size_t n) {
    std::vector<cplx> v(n);
    for (auto& z : v) z = complex_normal();
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

  /// Exact engine-state round trip for the checkpoint layer: the standard
  /// guarantees operator<</>> on mt19937_64 restore the stream bit-for-bit,
  /// so a resumed run draws the identical sequence.
  std::string state_string() const;
  void set_state_string(const std::string& s);

 private:
  std::mt19937_64 engine_;
};

}  // namespace q2
