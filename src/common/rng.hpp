// Deterministic random sources for tests and benchmarks. Every stochastic
// routine in the library takes an explicit Rng so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/types.hpp"

namespace q2 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 12345) : engine_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  cplx complex_normal() { return {normal(), normal()}; }
  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  std::vector<cplx> complex_vector(std::size_t n) {
    std::vector<cplx> v(n);
    for (auto& z : v) z = complex_normal();
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace q2
