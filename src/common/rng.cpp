#include "common/rng.hpp"

// Header-only today; the TU anchors the module in the build so future
// out-of-line additions (e.g. counter-based streams) have a home.
