#include "common/rng.hpp"

#include <sstream>

namespace q2 {

std::string Rng::state_string() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::set_state_string(const std::string& s) {
  std::istringstream is(s);
  is >> engine_;
  require(!is.fail(), "Rng::set_state_string: malformed engine state");
}

}  // namespace q2
