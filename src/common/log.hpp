// Minimal leveled logger. Quiet by default so tests and benches stay readable;
// drivers raise the level when the user asks for progress output.
#pragma once

#include <string>

namespace q2::log {

enum class Level { kSilent = 0, kInfo = 1, kDebug = 2 };

void set_level(Level level);
Level level();

void info(const std::string& msg);
void debug(const std::string& msg);

}  // namespace q2::log
