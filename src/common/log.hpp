// Minimal leveled logger. Quiet by default so tests and benches stay readable;
// drivers raise the level when the user asks for progress output. Emission is
// line-atomic (one mutex-guarded write per message), so interleaved output
// from thread-pool workers or simulated MPI ranks never shears mid-line.
#pragma once

#include <string>

namespace q2::log {

/// Severity grows downward: raising the level shows everything above it.
enum class Level { kSilent = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

void set_level(Level level);
Level level();

/// When enabled, every line is prefixed with seconds since process start
/// ("[q2 +12.345s] ..."). Off by default.
void set_timestamps(bool enabled);

void error(const std::string& msg);
void warn(const std::string& msg);
void info(const std::string& msg);
void debug(const std::string& msg);

}  // namespace q2::log
