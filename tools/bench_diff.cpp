// Cross-run bench regression gate: compares a freshly produced BENCH_*.json
// against a committed baseline snapshot (bench/baselines/) with per-metric
// tolerance bands, and exits nonzero when a gated metric degraded beyond
// tolerance. Wired into ctest under the `perf` label, so the BENCH floors are
// an enforced trajectory rather than write-only artifacts.
//
//   bench_diff CANDIDATE.json BASELINE.json [--tol=0.5] [--strict]
//
// Metric direction is inferred from the key:
//   * "perf_floor_ok"                    — hard gate: must stay >= 1 when the
//                                          baseline held it.
//   * speedup / gflops / throughput /    — higher-better ratios, gated by
//     scaling / per_s / efficiency         default: machine-speed cancels out
//                                          of a ratio, so these travel well
//                                          between the snapshot host and CI.
//   * "*_sweeps"                         — deterministic iteration counts,
//                                          lower-better, gated by default.
//   * "*_swaps" / "*_updates"            — exact deterministic circuit-work
//                                          counts (compile pass output):
//                                          lower-better with ZERO tolerance —
//                                          any increase over the baseline is a
//                                          hard failure.
//   * "*_s" / "*_seconds" / "*_error"    — absolute timings and accuracy,
//                                          lower-better but machine-dependent;
//                                          informational unless --strict.
// Everything else (and keys present on only one side) is informational.
//
// When both reports record `hardware_threads` and they differ, a warning is
// printed (scaling/speedup floors are only meaningful between hosts with the
// same thread budget); under --strict the mismatch is fatal (exit 2).
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage/IO/parse/
// host-mismatch error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace {

using q2::obs::Json;

constexpr double kDefaultTol = 0.5;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool contains_any(const std::string& s,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles)
    if (s.find(n) != std::string::npos) return true;
  return false;
}

enum class Direction {
  kFloor,
  kHigherBetter,
  kLowerBetterGated,
  kLowerBetterExact,
  kInfo,
};

Direction classify(const std::string& key, bool strict) {
  if (key == "perf_floor_ok") return Direction::kFloor;
  // Ratio-like metrics first: "*_per_s" would otherwise match the "_s"
  // timing suffix below.
  if (contains_any(key, {"speedup", "gflops", "throughput", "scaling",
                         "per_s", "efficiency"}))
    return Direction::kHigherBetter;
  if (ends_with(key, "_sweeps")) return Direction::kLowerBetterGated;
  // Exact counts out of the deterministic compile pass: equal inputs must
  // produce equal (or better) outputs, so there is no tolerance band.
  if (ends_with(key, "_swaps") || ends_with(key, "_updates"))
    return Direction::kLowerBetterExact;
  if (ends_with(key, "_s") || ends_with(key, "_seconds") ||
      ends_with(key, "_error"))
    return strict ? Direction::kLowerBetterGated : Direction::kInfo;
  return Direction::kInfo;
}

std::map<std::string, double> numeric_fields(const Json& root) {
  std::map<std::string, double> out;
  for (const auto& [key, value] : root.object) {
    if (value.type == Json::kNumber) out[key] = value.number;
    if (value.type == Json::kBool) out[key] = value.boolean ? 1.0 : 0.0;
  }
  return out;
}

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

int run(int argc, char** argv) {
  double tol = kDefaultTol;
  bool strict = false;
  std::string candidate_path, baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tol=", 0) == 0) {
      tol = std::stod(arg.substr(6));
    } else if (arg == "--strict") {
      strict = true;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_diff CANDIDATE.json BASELINE.json [--tol=X] [--strict]\n");
    return 2;
  }

  const std::map<std::string, double> cand =
      numeric_fields(load(candidate_path));
  const std::map<std::string, double> base =
      numeric_fields(load(baseline_path));

  // Scaling/speedup ratios only travel between hosts with comparable thread
  // budgets: a baseline captured on a 1-core runner holds floors a 16-core
  // candidate trivially beats (and vice versa, a many-core baseline fails a
  // small host spuriously). Surface the mismatch; make it fatal under
  // --strict so CI pins baseline and candidate to the same host class.
  {
    const auto cb = cand.find("hardware_threads");
    const auto bb = base.find("hardware_threads");
    if (cb != cand.end() && bb != base.end() && cb->second != bb->second) {
      std::fprintf(stderr,
                   "bench_diff: WARNING hardware_threads differ (baseline %g, "
                   "candidate %g); scaling/speedup comparisons are not "
                   "host-comparable%s\n",
                   bb->second, cb->second,
                   strict ? "" : " (pass --strict to make this fatal)");
      if (strict) return 2;
    }
  }

  std::printf("%-44s %14s %14s %8s  %s\n", "metric", "baseline", "candidate",
              "ratio", "status");
  int regressions = 0;
  std::size_t compared = 0;
  for (const auto& [key, base_v] : base) {
    const auto it = cand.find(key);
    if (it == cand.end()) {
      std::printf("%-44s %14.6g %14s %8s  %s\n", key.c_str(), base_v, "-", "-",
                  "missing (info)");
      continue;
    }
    const double cand_v = it->second;
    ++compared;
    const double ratio = base_v != 0.0 ? cand_v / base_v : 0.0;
    const char* status = "info";
    switch (classify(key, strict)) {
      case Direction::kFloor:
        status = (base_v >= 1.0 && cand_v < 1.0) ? "REGRESSED" : "ok";
        break;
      case Direction::kHigherBetter:
        status = cand_v < base_v * (1.0 - tol) ? "REGRESSED" : "ok";
        break;
      case Direction::kLowerBetterGated:
        status = cand_v > base_v * (1.0 + tol) ? "REGRESSED" : "ok";
        break;
      case Direction::kLowerBetterExact:
        status = cand_v > base_v ? "REGRESSED" : "ok";
        break;
      case Direction::kInfo:
        break;
    }
    if (std::strcmp(status, "REGRESSED") == 0) ++regressions;
    std::printf("%-44s %14.6g %14.6g %8.3f  %s\n", key.c_str(), base_v, cand_v,
                ratio, status);
  }
  for (const auto& [key, cand_v] : cand)
    if (!base.count(key))
      std::printf("%-44s %14s %14.6g %8s  %s\n", key.c_str(), "-", cand_v, "-",
                  "new (info)");

  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: no shared numeric metrics between %s and %s\n",
                 candidate_path.c_str(), baseline_path.c_str());
    return 2;
  }
  if (regressions > 0) {
    std::printf("bench_diff: %d metric(s) regressed beyond tolerance %.2f\n",
                regressions, tol);
    return 1;
  }
  std::printf("bench_diff: %zu metric(s) within tolerance %.2f\n", compared,
              tol);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
