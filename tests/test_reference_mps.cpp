// The naive reference MPS (Fig. 8 comparator) must produce the same physics
// as the optimized engine — it is the same math paid for the expensive way.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "sim/mps.hpp"
#include "sim/reference_mps.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {
namespace {

using pauli::PauliString;

double fidelity(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  cplx ov{};
  for (std::size_t i = 0; i < a.size(); ++i) ov += std::conj(a[i]) * b[i];
  return std::abs(ov);
}

class RefMpsSizes : public ::testing::TestWithParam<int> {};

TEST_P(RefMpsSizes, AgreesWithStateVector) {
  const int n = GetParam();
  Rng rng(300 + n);
  const circ::Circuit c = circ::brickwork_circuit(n, 3, rng);
  MpsOptions o;
  o.max_bond = std::size_t(1) << (n / 2 + 1);
  ReferenceMps ref(n, o);
  ref.run(c);
  StateVector sv(n);
  sv.run(c);
  EXPECT_GT(fidelity(ref.to_statevector(), sv.amplitudes()), 1.0 - 1e-9);
  EXPECT_NEAR(ref.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RefMpsSizes, ::testing::Values(2, 4, 6, 8));

TEST(ReferenceMps, ExpectationsMatchOptimizedEngine) {
  Rng rng(42);
  const int n = 6;
  const circ::Circuit c = circ::brickwork_circuit(n, 3, rng);
  MpsOptions o;
  o.max_bond = 64;
  ReferenceMps ref(n, o);
  Mps fast(n, o);
  ref.run(c);
  fast.run(c);
  for (int trial = 0; trial < 10; ++trial) {
    PauliString p{std::size_t(n)};
    for (int q = 0; q < n; ++q) p.set(std::size_t(q), pauli::P(rng.index(4)));
    EXPECT_LT(std::abs(ref.expectation(p) - fast.expectation(p)), 1e-8)
        << p.str();
  }
}

TEST(ReferenceMps, LongRangeRouting) {
  circ::Circuit c(5);
  c.append(circ::make_h(0));
  c.append(circ::make_cnot(0, 4));
  MpsOptions o;
  o.max_bond = 16;
  ReferenceMps ref(5, o);
  ref.run(c);
  EXPECT_NEAR(ref.expectation(PauliString::parse(5, "Z0 Z4")).real(), 1.0,
              1e-9);
}

TEST(ReferenceMps, CanonicalTruncationBeatsLocalTruncation) {
  // The ablation behind the paper's Eq. (8): at an aggressive bond cap, the
  // canonical (lambda-weighted) truncation of the optimized engine keeps
  // more fidelity than the reference engine's gauge-less local truncation.
  Rng rng(43);
  const int n = 8;
  const circ::Circuit c = circ::brickwork_circuit(n, 5, rng);
  StateVector sv(n);
  sv.run(c);
  MpsOptions o;
  o.max_bond = 4;
  ReferenceMps ref(n, o);
  ref.run(c);
  Mps fast(n, o);
  fast.run(c);
  auto normalized_fidelity = [&](const std::vector<cplx>& x) {
    double nrm = 0;
    for (const auto& z : x) nrm += norm2(z);
    return fidelity(x, sv.amplitudes()) / std::sqrt(nrm);
  };
  const double f_ref = normalized_fidelity(ref.to_statevector());
  const double f_fast = normalized_fidelity(fast.to_statevector());
  EXPECT_GE(f_fast, f_ref - 0.02);
  EXPECT_LE(ref.max_bond_dimension(), 4u);
}

}  // namespace
}  // namespace q2::sim
