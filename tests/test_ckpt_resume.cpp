// Crash–resume equivalence: a run killed mid-flight by an injected fault and
// restarted from its snapshot family must reproduce the uninterrupted run
// bit for bit — final energy, parameters, iteration history, µ bracket, the
// lot. Covers all three VQE optimizers (SPSA additionally round-trips the
// mt19937_64 stream), the DMET chemical-potential loop, fallback past a
// corrupted newest snapshot, and resume-after-completion.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "chem/mo.hpp"
#include "chem/scf.hpp"
#include "ckpt/checkpoint.hpp"
#include "dmet/dmet_driver.hpp"
#include "vqe/vqe_driver.hpp"

namespace q2 {
namespace {

namespace fs = std::filesystem;

std::string scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("q2_resume_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return (dir / "run.ckpt").string();
}

void expect_bits(double a, double b) {
  EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(double)));
}

void expect_bits(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty())
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

void expect_same(const vqe::VqeResult& a, const vqe::VqeResult& b) {
  expect_bits(a.energy, b.energy);
  expect_bits(a.parameters, b.parameters);
  expect_bits(a.history, b.history);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

chem::MoIntegrals mo_for(const chem::Molecule& mol) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  return chem::transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
}

const chem::MoIntegrals& h4_mo() {
  static const chem::MoIntegrals mo =
      mo_for(chem::Molecule::hydrogen_chain(4, 1.8));
  return mo;
}

vqe::VqeOptions vqe_opts(vqe::OptimizerKind method, int max_iterations) {
  vqe::VqeOptions o;
  o.method = method;
  o.optimizer.max_iterations = max_iterations;
  o.mps.max_bond = 16;
  return o;
}

// Runs once with a crash injected at `crash_at`, verifies the crash actually
// fired, then restarts from the snapshot family and returns the resumed
// result.
vqe::VqeResult crash_then_resume(const chem::MoIntegrals& mo,
                                 vqe::VqeOptions options,
                                 const std::string& path, int crash_at,
                                 ckpt::FaultPlan::Corruption corruption =
                                     ckpt::FaultPlan::Corruption::kNone) {
  options.checkpoint.path = path;
  options.checkpoint.resume = false;  // first leg starts fresh
  options.checkpoint.fault.crash_at_iteration = crash_at;
  if (corruption != ckpt::FaultPlan::Corruption::kNone) {
    // Corrupt the snapshot written at the crash iteration itself: a torn
    // write followed by the node dying. Resume must fall back one snapshot
    // and recompute the lost iteration.
    options.checkpoint.fault.corrupt_at_iteration = crash_at;
    options.checkpoint.fault.corruption = corruption;
  }
  bool crashed = false;
  try {
    vqe::run_vqe(mo, 2, 2, options);
  } catch (const ckpt::InjectedCrash& crash) {
    crashed = true;
    EXPECT_EQ(crash_at, crash.iteration());
  }
  EXPECT_TRUE(crashed) << "fault plan never fired";

  options.checkpoint.fault = {};
  options.checkpoint.resume = true;
  return vqe::run_vqe(mo, 2, 2, options);
}

// The goldens are shared across several tests; compute each once.
const vqe::VqeResult& golden_spsa() {
  static const vqe::VqeResult r =
      vqe::run_vqe(h4_mo(), 2, 2, vqe_opts(vqe::OptimizerKind::kSpsa, 10));
  return r;
}

TEST(VqeResume, LbfgsCrashResumeBitIdentical) {
  const vqe::VqeOptions options = vqe_opts(vqe::OptimizerKind::kLbfgs, 5);
  const vqe::VqeResult golden = vqe::run_vqe(h4_mo(), 2, 2, options);
  const vqe::VqeResult resumed = crash_then_resume(
      h4_mo(), options, scratch("lbfgs"), /*crash_at=*/2);
  expect_same(golden, resumed);
}

TEST(VqeResume, AdamCrashResumeBitIdentical) {
  // H2 keeps the two gradient-driven goldens affordable; L-BFGS already
  // covers H4. The tiny problem converges in a couple of Adam steps at the
  // default tolerances, so tighten them to keep the run alive past the
  // injected crash.
  const chem::MoIntegrals mo = mo_for(chem::Molecule::hydrogen_chain(2, 1.8));
  vqe::VqeOptions options = vqe_opts(vqe::OptimizerKind::kAdam, 6);
  options.optimizer.gradient_tolerance = 0.0;
  options.optimizer.energy_tolerance = 0.0;
  const vqe::VqeResult golden = vqe::run_vqe(mo, 2, 2, options);
  const vqe::VqeResult resumed =
      crash_then_resume(mo, options, scratch("adam"), /*crash_at=*/3);
  expect_same(golden, resumed);
}

TEST(VqeResume, SpsaCrashResumeBitIdentical) {
  // SPSA draws its perturbations from the snapshotted mt19937_64 stream, so
  // this is the end-to-end rng round-trip check.
  const vqe::VqeResult resumed =
      crash_then_resume(h4_mo(), vqe_opts(vqe::OptimizerKind::kSpsa, 10),
                        scratch("spsa"), /*crash_at=*/4);
  expect_same(golden_spsa(), resumed);
}

TEST(VqeResume, CheckpointingItselfDoesNotPerturbTheRun) {
  vqe::VqeOptions options = vqe_opts(vqe::OptimizerKind::kSpsa, 10);
  options.checkpoint.path = scratch("undisturbed");
  options.checkpoint.resume = false;
  const vqe::VqeResult r = vqe::run_vqe(h4_mo(), 2, 2, options);
  expect_same(golden_spsa(), r);
}

TEST(VqeResume, FallsBackPastCorruptedNewestSnapshot) {
  const vqe::VqeResult resumed = crash_then_resume(
      h4_mo(), vqe_opts(vqe::OptimizerKind::kSpsa, 10), scratch("corrupt"),
      /*crash_at=*/4, ckpt::FaultPlan::Corruption::kFlipByte);
  expect_same(golden_spsa(), resumed);
}

TEST(VqeResume, TruncatedNewestSnapshotAlsoFallsBack) {
  const vqe::VqeResult resumed = crash_then_resume(
      h4_mo(), vqe_opts(vqe::OptimizerKind::kSpsa, 10), scratch("truncated"),
      /*crash_at=*/4, ckpt::FaultPlan::Corruption::kTruncate);
  expect_same(golden_spsa(), resumed);
}

TEST(VqeResume, ResumeAfterCompletionReturnsIdenticalResult) {
  vqe::VqeOptions options = vqe_opts(vqe::OptimizerKind::kSpsa, 10);
  options.checkpoint.path = scratch("completed");
  options.checkpoint.resume = false;
  const vqe::VqeResult first = vqe::run_vqe(h4_mo(), 2, 2, options);
  expect_same(golden_spsa(), first);

  // The terminal snapshot carries finished = true: the resumed run loads it,
  // skips the optimizer loop entirely and reports the same result.
  options.checkpoint.resume = true;
  const vqe::VqeResult again = vqe::run_vqe(h4_mo(), 2, 2, options);
  expect_same(first, again);
}

// ---- DMET µ-loop ----------------------------------------------------------

void expect_same(const dmet::DmetResult& a, const dmet::DmetResult& b) {
  expect_bits(a.energy, b.energy);
  expect_bits(a.hf_energy, b.hf_energy);
  expect_bits(a.mu, b.mu);
  expect_bits(a.total_electrons, b.total_electrons);
  expect_bits(a.fragment_energies, b.fragment_energies);
  expect_bits(a.fragment_electrons, b.fragment_electrons);
  EXPECT_EQ(a.mu_iterations, b.mu_iterations);
  EXPECT_EQ(a.converged, b.converged);
}

// A stretched H6 ring: the correlated electron count at µ = 0 misses the
// target, so the fit genuinely brackets and bisects (~20 µ-evaluations) —
// enough trajectory to kill and resume mid-bisection.
dmet::DmetOptions ring_opts() {
  dmet::DmetOptions opts;
  opts.fragments = dmet::uniform_atom_groups(6, 2);
  return opts;
}

const chem::Molecule& ring_mol() {
  static const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 2.2);
  return mol;
}

const dmet::DmetResult& golden_dmet() {
  static const dmet::DmetResult r =
      dmet::run_dmet(ring_mol(), ring_opts(), dmet::make_fci_solver());
  return r;
}

TEST(DmetResume, CrashMidBisectionResumesBitIdentical) {
  ASSERT_GE(golden_dmet().mu_iterations, 10) << "workload too easy to crash";
  dmet::DmetOptions options = ring_opts();
  options.checkpoint.path = scratch("dmet");
  options.checkpoint.resume = false;
  options.checkpoint.fault.crash_at_iteration = 8;
  bool crashed = false;
  try {
    dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver());
  } catch (const ckpt::InjectedCrash& crash) {
    crashed = true;
    EXPECT_EQ(8, crash.iteration());
  }
  EXPECT_TRUE(crashed) << "fault plan never fired";

  options.checkpoint.fault = {};
  options.checkpoint.resume = true;
  const dmet::DmetResult resumed =
      dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver());
  expect_same(golden_dmet(), resumed);
}

TEST(DmetResume, CorruptedNewestSnapshotFallsBackAndStillMatches) {
  dmet::DmetOptions options = ring_opts();
  options.checkpoint.path = scratch("dmet_corrupt");
  options.checkpoint.resume = false;
  options.checkpoint.fault.crash_at_iteration = 8;
  options.checkpoint.fault.corrupt_at_iteration = 8;
  options.checkpoint.fault.corruption = ckpt::FaultPlan::Corruption::kFlipByte;
  EXPECT_THROW(dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver()),
               ckpt::InjectedCrash);

  options.checkpoint.fault = {};
  options.checkpoint.resume = true;
  const dmet::DmetResult resumed =
      dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver());
  expect_same(golden_dmet(), resumed);
}

TEST(DmetResume, CheckpointingItselfDoesNotPerturbTheFit) {
  dmet::DmetOptions options = ring_opts();
  options.checkpoint.path = scratch("dmet_undisturbed");
  options.checkpoint.resume = false;
  const dmet::DmetResult r =
      dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver());
  expect_same(golden_dmet(), r);

  // Resume after completion: the terminal snapshot reports the finished fit.
  options.checkpoint.resume = true;
  const dmet::DmetResult again =
      dmet::run_dmet(ring_mol(), options, dmet::make_fci_solver());
  expect_same(r, again);
}

}  // namespace
}  // namespace q2
