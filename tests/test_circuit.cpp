// Circuit IR, builder, fusion and routing tests — each transformation must
// preserve the simulated state exactly (state-vector oracle).
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/fusion.hpp"
#include "circuit/routing.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace q2::circ {
namespace {

using pauli::PauliString;
using sim::StateVector;

double state_distance(const StateVector& a, const StateVector& b) {
  // Global-phase-insensitive distance: 1 - |<a|b>|.
  cplx ov{};
  for (std::size_t i = 0; i < a.dim(); ++i)
    ov += std::conj(a.amplitudes()[i]) * b.amplitudes()[i];
  return 1.0 - std::abs(ov);
}

TEST(Circuit, AppendValidation) {
  Circuit c(2);
  EXPECT_THROW(c.append(make_x(2)), Error);
  EXPECT_THROW(c.append(make_cnot(0, 5)), Error);
  EXPECT_THROW(make_cnot(1, 1), Error);
}

TEST(Circuit, GateCounts) {
  Circuit c(3);
  c.append(make_h(0));
  c.append(make_cnot(0, 1));
  c.append(make_cnot(1, 2));
  c.append(make_rz_param(2, 0, 1.0));
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.two_qubit_gate_count(), 2u);
  EXPECT_EQ(c.parameter_count(), 1u);
  EXPECT_TRUE(c.is_nearest_neighbour());
  c.append(make_cnot(0, 2));
  EXPECT_FALSE(c.is_nearest_neighbour());
}

TEST(Builder, HartreeFockPrep) {
  const Circuit c = hartree_fock_prep(4, 2);
  StateVector sv(4);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b0011]), 1.0, 1e-14);
}

TEST(Builder, PauliEvolutionIdentityAngle) {
  Circuit c(3);
  append_pauli_evolution(c, PauliString::parse(3, "X0 Y1 Z2"), 0.0);
  StateVector sv(3);
  sv.apply(make_h(0));
  const auto before = sv.amplitudes();
  sv.run(c);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_LT(std::abs(before[i] - sv.amplitudes()[i]), 1e-13);
}

TEST(Builder, PauliEvolutionMatchesMatrixExponential) {
  // exp(-i t/2 P) |psi>: for P with P^2 = I, equals cos(t/2) - i sin(t/2) P.
  Rng rng(3);
  const PauliString p = PauliString::parse(3, "Y0 X2");
  const double t = 0.83;
  Circuit prep = brickwork_circuit(3, 2, rng);
  StateVector sv(3);
  sv.run(prep);
  std::vector<cplx> expect(sv.dim());
  {
    std::vector<cplx> px(sv.dim(), cplx{});
    sim::accumulate_pauli_apply(p, 1.0, sv.amplitudes(), px);
    for (std::size_t i = 0; i < expect.size(); ++i)
      expect[i] = std::cos(t / 2) * sv.amplitudes()[i] -
                  cplx(0, 1) * std::sin(t / 2) * px[i];
  }
  Circuit c(3);
  append_pauli_evolution(c, p, t);
  sv.run(c);
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_LT(std::abs(expect[i] - sv.amplitudes()[i]), 1e-12);
}

TEST(Builder, ParametricEvolutionMatchesFixed) {
  const PauliString p = PauliString::parse(4, "Z0 X1 Y3");
  Circuit fixed(4), param(4);
  append_pauli_evolution(fixed, p, 1.3 * 0.5);
  append_pauli_evolution_param(param, p, 0, 0.5);
  StateVector a(4), b(4);
  a.apply(make_h(0));
  b.apply(make_h(0));
  a.run(fixed);
  b.run(param, {1.3});
  EXPECT_LT(state_distance(a, b), 1e-12);
}

TEST(Builder, HadamardTestMeasuresRealPart) {
  // Prepare |+> on qubit 0; Hadamard test of X0 must give Re<X> = 1.
  Circuit prep(1);
  prep.append(make_h(0));
  const PauliString x = PauliString::parse(1, "X0");
  const Circuit full(2);
  Circuit c(2);
  c.append(prep);
  c.append(hadamard_test_measurement(x, 1));
  StateVector sv(2);
  sv.run(c);
  EXPECT_NEAR(sv.expectation(PauliString::parse(2, "Z1")).real(), 1.0, 1e-12);
}

TEST(Builder, HadamardTestArbitraryString) {
  Rng rng(4);
  const Circuit prep = brickwork_circuit(4, 3, rng);
  const PauliString p = PauliString::parse(4, "X0 Y1 Z3");
  StateVector direct(4);
  direct.run(prep);
  const double expected = direct.expectation(p).real();

  Circuit c(5);
  c.append(prep);
  c.append(hadamard_test_measurement(p, 4));
  StateVector sv(5);
  sv.run(c);
  EXPECT_NEAR(sv.expectation(PauliString::parse(5, "Z4")).real(), expected,
              1e-10);
}

TEST(Fusion, PreservesStateOnRandomCircuit) {
  Rng rng(5);
  Circuit c(4);
  c.append(make_h(0));
  c.append(make_t(1));
  c.append(make_cnot(0, 1));
  c.append(make_s(2));
  c.append(make_h(2));
  c.append(make_cnot(2, 3));
  c.append(make_sdg(3));
  c.append(make_cnot(1, 2));
  c.append(make_h(3));
  const Circuit fused = fuse_single_qubit_gates(c);
  StateVector a(4), b(4);
  a.run(c);
  b.run(fused);
  EXPECT_LT(state_distance(a, b), 1e-12);
}

TEST(Fusion, ReducesGateCount) {
  Circuit c(2);
  c.append(make_h(0));
  c.append(make_s(0));
  c.append(make_h(1));
  c.append(make_cnot(0, 1));
  const Circuit fused = fuse_single_qubit_gates(c);
  EXPECT_EQ(fused.size(), 1u);  // everything folded into one U2
  EXPECT_EQ(fused.two_qubit_gate_count(), 1u);
}

TEST(Fusion, ParametricGatesSurvive) {
  Circuit c(2);
  c.append(make_h(0));
  c.append(make_rz_param(0, 0, 1.0));
  c.append(make_h(0));
  c.append(make_cnot(0, 1));
  const Circuit fused = fuse_single_qubit_gates(c);
  EXPECT_EQ(fused.parameter_count(), 1u);
  StateVector a(2), b(2);
  a.run(c, {0.77});
  b.run(fused, {0.77});
  EXPECT_LT(state_distance(a, b), 1e-12);
}

TEST(Routing, LongRangeCnotPreserved) {
  Circuit c(5);
  c.append(make_h(0));
  c.append(make_cnot(0, 4));
  const Circuit routed = route_to_nearest_neighbour(c);
  EXPECT_TRUE(routed.is_nearest_neighbour());
  StateVector a(5), b(5);
  a.run(c);
  b.run(routed);
  EXPECT_LT(state_distance(a, b), 1e-12);
}

TEST(Routing, ReversedControlTarget) {
  Circuit c(4);
  c.append(make_h(3));
  c.append(make_cnot(3, 0));  // control above target
  const Circuit routed = route_to_nearest_neighbour(c);
  EXPECT_TRUE(routed.is_nearest_neighbour());
  StateVector a(4), b(4);
  a.run(c);
  b.run(routed);
  EXPECT_LT(state_distance(a, b), 1e-12);
}

TEST(Routing, RandomLongRangeCircuit) {
  Rng rng(6);
  Circuit c(6);
  for (int k = 0; k < 20; ++k) {
    const int a = int(rng.index(6));
    int b = int(rng.index(6));
    while (b == a) b = int(rng.index(6));
    c.append(make_h(a));
    c.append(make_cnot(a, b));
  }
  const Circuit routed = route_to_nearest_neighbour(c);
  EXPECT_TRUE(routed.is_nearest_neighbour());
  StateVector x(6), y(6);
  x.run(c);
  y.run(routed);
  EXPECT_LT(state_distance(x, y), 1e-11);
}

TEST(Gate, UnitarityOfNamedGates) {
  const Gate gates[] = {make_x(0),  make_y(0),   make_z(0),
                        make_h(0),  make_s(0),   make_sdg(0),
                        make_t(0),  make_rx(0, 0.3), make_ry(0, 0.4),
                        make_rz(0, 0.5)};
  for (const auto& g : gates) {
    const auto m = g.matrix1();
    // U U^dagger = I
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j) {
        cplx s{};
        for (int k = 0; k < 2; ++k) s += m[i * 2 + k] * std::conj(m[j * 2 + k]);
        EXPECT_LT(std::abs(s - (i == j ? cplx{1} : cplx{})), 1e-12);
      }
  }
}

}  // namespace
}  // namespace q2::circ
