// MP2 / CCSD tests. CCSD is exact for two-electron systems, which gives a
// sharp equality against FCI; for larger systems it must sit between MP2 and
// FCI quality.
#include <gtest/gtest.h>

#include "chem/cc.hpp"
#include "chem/fci.hpp"
#include "chem/scf.hpp"

namespace q2::chem {
namespace {

struct Solved {
  ScfResult scf;
  MoIntegrals mo;
};

Solved solve(const Molecule& mol) {
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  Solved s;
  s.scf = rhf(mol, basis, ints);
  EXPECT_TRUE(s.scf.converged);
  s.mo = transform_to_mo(ints, s.scf.coefficients, s.scf.nuclear_repulsion);
  return s;
}

TEST(Mp2, CorrelationIsNegative) {
  const Solved s = solve(Molecule::h2(1.4));
  const double e = mp2_correlation_energy(s.mo, s.scf.n_occupied);
  EXPECT_LT(e, 0.0);
  EXPECT_GT(e, -0.1);
}

TEST(Mp2, H2KnownValue) {
  // MP2/STO-3G for H2 at 1.4 a0 recovers roughly -0.013 Ha of correlation.
  const Solved s = solve(Molecule::h2(1.4));
  const double e = mp2_correlation_energy(s.mo, s.scf.n_occupied);
  EXPECT_NEAR(e, -0.0131, 2e-3);
}

TEST(Ccsd, ExactForTwoElectrons) {
  const Solved s = solve(Molecule::h2(1.4));
  const CcsdResult cc = ccsd(s.mo, s.scf.n_occupied, s.scf.energy);
  ASSERT_TRUE(cc.converged);
  const FciResult fci = fci_ground_state(s.mo, 1, 1);
  EXPECT_NEAR(cc.energy, fci.energy, 1e-7);
}

TEST(Ccsd, ExactForStretchedTwoElectrons) {
  const Solved s = solve(Molecule::h2(2.8));
  CcsdOptions opts;
  opts.damping = 0.3;  // stretched geometries need stabilization
  opts.max_iterations = 400;
  const CcsdResult cc = ccsd(s.mo, s.scf.n_occupied, s.scf.energy, opts);
  ASSERT_TRUE(cc.converged);
  const FciResult fci = fci_ground_state(s.mo, 1, 1);
  EXPECT_NEAR(cc.energy, fci.energy, 1e-6);
}

TEST(Ccsd, Mp2FromFirstIteration) {
  const Solved s = solve(Molecule::h2(1.4));
  const CcsdResult cc = ccsd(s.mo, s.scf.n_occupied, s.scf.energy);
  EXPECT_NEAR(cc.mp2_energy, mp2_correlation_energy(s.mo, s.scf.n_occupied),
              1e-9);
}

TEST(Ccsd, H4ChainNearFci) {
  const Solved s = solve(Molecule::hydrogen_chain(4, 1.8));
  const CcsdResult cc = ccsd(s.mo, s.scf.n_occupied, s.scf.energy);
  ASSERT_TRUE(cc.converged);
  const FciResult fci = fci_ground_state(s.mo, 2, 2);
  // CCSD recovers nearly all correlation for 4 electrons but is not exact.
  EXPECT_LT(std::abs(cc.energy - fci.energy), 5e-3);
  EXPECT_LT(cc.energy, s.scf.energy);
  // Correlation ordering: |MP2| < |CCSD| here.
  EXPECT_LT(cc.correlation_energy, 0.0);
  EXPECT_LT(cc.correlation_energy,
            mp2_correlation_energy(s.mo, s.scf.n_occupied) + 1e-6);
}

TEST(Ccsd, LihNearFci) {
  const Solved s = solve(Molecule::lih());
  const CcsdResult cc = ccsd(s.mo, s.scf.n_occupied, s.scf.energy);
  ASSERT_TRUE(cc.converged);
  const FciResult fci = fci_ground_state(s.mo, 2, 2);
  EXPECT_LT(std::abs(cc.energy - fci.energy), 2e-3);
}

}  // namespace
}  // namespace q2::chem
