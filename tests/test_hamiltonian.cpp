// Qubit-Hamiltonian tests: the H2/STO-3G Hamiltonian has the 15 Pauli terms
// of Fig. 5, its expectation on the HF state reproduces the SCF energy, and
// the fragment-weighted operators tile back to the full Hamiltonian.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "circuit/builder.hpp"
#include "sim/statevector.hpp"

namespace q2::chem {
namespace {

struct Solved {
  ScfResult scf;
  MoIntegrals mo;
};

Solved solve(const Molecule& mol) {
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  Solved s;
  s.scf = rhf(mol, basis, ints);
  EXPECT_TRUE(s.scf.converged);
  s.mo = transform_to_mo(ints, s.scf.coefficients, s.scf.nuclear_repulsion);
  return s;
}

TEST(Hamiltonian, H2HasFifteenPauliTerms) {
  const Solved s = solve(Molecule::h2(1.4));
  const pauli::QubitOperator h = molecular_qubit_hamiltonian(s.mo);
  EXPECT_EQ(h.n_qubits(), 4u);
  EXPECT_EQ(h.size(), 15u);  // Fig. 5: 15 Pauli strings incl. identity
  EXPECT_TRUE(h.is_hermitian());
}

TEST(Hamiltonian, HartreeFockExpectationMatchesScf) {
  for (const auto& mol : {Molecule::h2(1.4), Molecule::hydrogen_chain(4, 1.8)}) {
    const Solved s = solve(mol);
    const pauli::QubitOperator h = molecular_qubit_hamiltonian(s.mo);
    sim::StateVector sv(int(h.n_qubits()));
    sv.run(circ::hartree_fock_prep(int(h.n_qubits()), mol.n_electrons()));
    EXPECT_NEAR(sv.expectation(h).real(), s.scf.energy, 1e-8)
        << "atoms=" << mol.n_atoms();
  }
}

TEST(Hamiltonian, ParticleNumberSymmetry) {
  // [H, N] = 0: the Hamiltonian commutes with the total number operator.
  const Solved s = solve(Molecule::h2(1.4));
  const pauli::QubitOperator h = molecular_qubit_hamiltonian(s.mo);
  std::vector<std::size_t> all;
  for (std::size_t p = 0; p < s.mo.n_orbitals(); ++p) all.push_back(p);
  const pauli::QubitOperator n_op = number_operator(s.mo.n_orbitals(), all);
  pauli::QubitOperator comm = h * n_op - n_op * h;
  comm.compress(1e-9);
  EXPECT_EQ(comm.size(), 0u);
}

TEST(Hamiltonian, TermCountScalesAsN4) {
  // Paper §III-D: O(Nq^4) Pauli strings. Check growth between H2 and H4.
  const Solved h2 = solve(Molecule::h2(1.4));
  const Solved h4 = solve(Molecule::hydrogen_chain(4, 1.8));
  const auto n2 = molecular_qubit_hamiltonian(h2.mo).size();
  const auto n4 = molecular_qubit_hamiltonian(h4.mo).size();
  EXPECT_GT(n4, 6 * n2);   // 2^4 = 16x nominal growth, with symmetry savings
  EXPECT_LT(n4, 30 * n2);
}

TEST(Hamiltonian, FragmentWeightsTileToFullOperator) {
  const Solved s = solve(Molecule::hydrogen_chain(4, 1.8));
  const std::size_t n = s.mo.n_orbitals();
  // Two fragments covering all orbitals: weighted Hamiltonians must sum to
  // the full electronic Hamiltonian (without core energy).
  std::vector<std::size_t> frag_a, frag_b;
  for (std::size_t p = 0; p < n; ++p) (p < n / 2 ? frag_a : frag_b).push_back(p);
  pauli::QubitOperator sum = fragment_weighted_hamiltonian(s.mo, frag_a);
  sum += fragment_weighted_hamiltonian(s.mo, frag_b);
  pauli::QubitOperator full = molecular_qubit_hamiltonian(s.mo);
  full -= pauli::QubitOperator::identity(2 * n, s.mo.core_energy());
  sum -= full;
  sum.compress(1e-8);
  EXPECT_EQ(sum.size(), 0u);
}

TEST(Hamiltonian, NumberOperatorCountsElectrons) {
  const Solved s = solve(Molecule::h2(1.4));
  std::vector<std::size_t> all{0, 1};
  const pauli::QubitOperator n_op = number_operator(2, all);
  sim::StateVector sv(4);
  sv.run(circ::hartree_fock_prep(4, 2));
  EXPECT_NEAR(sv.expectation(n_op).real(), 2.0, 1e-10);
}

TEST(Hamiltonian, GroundEnergyBelowHf) {
  const Solved s = solve(Molecule::h2(1.4));
  const pauli::QubitOperator h = molecular_qubit_hamiltonian(s.mo);
  std::vector<cplx> guess(16, cplx{});
  guess[0b0011] = 1.0;
  const double e0 = sim::qubit_ground_energy(h, guess);
  EXPECT_LT(e0, s.scf.energy);
}

}  // namespace
}  // namespace q2::chem
