// Pauli algebra and Jordan-Wigner tests: multiplication phase table,
// commutation symplectic form, operator algebra, and the canonical
// anticommutation relations of the JW images.
#include <gtest/gtest.h>

#include "pauli/jordan_wigner.hpp"
#include "pauli/pauli_string.hpp"
#include "pauli/qubit_operator.hpp"

namespace q2::pauli {
namespace {

cplx i_pow(int k) {
  switch (((k % 4) + 4) % 4) {
    case 0: return {1, 0};
    case 1: return {0, 1};
    case 2: return {-1, 0};
    default: return {0, -1};
  }
}

TEST(PauliString, ParseAndPrint) {
  const PauliString p = PauliString::parse(5, "X0 Y2 Z4");
  EXPECT_EQ(p.get(0), P::X);
  EXPECT_EQ(p.get(1), P::I);
  EXPECT_EQ(p.get(2), P::Y);
  EXPECT_EQ(p.get(4), P::Z);
  EXPECT_EQ(p.str(), "X0 Y2 Z4");
  EXPECT_EQ(p.weight(), 3u);
}

TEST(PauliString, SupportRange) {
  const PauliString p = PauliString::parse(8, "Z2 X5");
  const auto [lo, hi] = p.support_range();
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 5u);
  EXPECT_EQ(p.support(), (std::vector<std::size_t>{2, 5}));
}

TEST(PauliString, SingleQubitProductTable) {
  // X*Y = iZ, Y*Z = iX, Z*X = iY and the reverse orders with -i.
  struct Case {
    const char *a, *b, *c;
    int phase;
  };
  const Case cases[] = {
      {"X0", "Y0", "Z0", 1}, {"Y0", "X0", "Z0", 3}, {"Y0", "Z0", "X0", 1},
      {"Z0", "Y0", "X0", 3}, {"Z0", "X0", "Y0", 1}, {"X0", "Z0", "Y0", 3},
      {"X0", "X0", "I", 0},  {"Y0", "Y0", "I", 0},  {"Z0", "Z0", "I", 0},
  };
  for (const auto& c : cases) {
    const auto [r, k] = multiply(PauliString::parse(1, c.a),
                                 PauliString::parse(1, c.b));
    EXPECT_EQ(r.str(), std::string(c.c)) << c.a << "*" << c.b;
    EXPECT_EQ(k % 4, c.phase) << c.a << "*" << c.b;
  }
}

TEST(PauliString, MultiQubitProductPhaseComposes) {
  const PauliString a = PauliString::parse(3, "X0 Y1");
  const PauliString b = PauliString::parse(3, "Y0 Y1 Z2");
  const auto [r, k] = multiply(a, b);
  // X*Y = iZ on 0; Y*Y = I on 1; I*Z = Z on 2 -> total phase i.
  EXPECT_EQ(r.str(), "Z0 Z2");
  EXPECT_EQ(i_pow(k), cplx(0, 1));
}

TEST(PauliString, CommutationSymplecticForm) {
  const PauliString x = PauliString::parse(2, "X0");
  const PauliString z = PauliString::parse(2, "Z0");
  const PauliString zz = PauliString::parse(2, "Z0 Z1");
  const PauliString xx = PauliString::parse(2, "X0 X1");
  EXPECT_FALSE(x.commutes_with(z));
  EXPECT_TRUE(zz.commutes_with(xx));  // two anticommuting sites -> commute
  EXPECT_TRUE(x.commutes_with(PauliString::parse(2, "Z1")));
}

TEST(PauliString, HashEqualityConsistency) {
  const PauliString a = PauliString::parse(70, "X0 Z65");
  const PauliString b = PauliString::parse(70, "X0 Z65");
  EXPECT_EQ(a, b);
  EXPECT_EQ(PauliString::Hash{}(a), PauliString::Hash{}(b));
}

TEST(QubitOperator, AdditionMergesTerms) {
  QubitOperator a = QubitOperator::term(2, "X0", 0.5);
  a += QubitOperator::term(2, "X0", 0.25);
  a += QubitOperator::term(2, "Z1", 1.0);
  EXPECT_EQ(a.size(), 2u);
  a.compress();
  const auto terms = a.sorted_terms();
  EXPECT_EQ(terms.size(), 2u);
}

TEST(QubitOperator, ProductUsesPhases) {
  const QubitOperator x = QubitOperator::term(1, "X0");
  const QubitOperator y = QubitOperator::term(1, "Y0");
  const QubitOperator xy = x * y;
  ASSERT_EQ(xy.size(), 1u);
  const auto& [p, c] = *xy.terms().begin();
  EXPECT_EQ(p.str(), "Z0");
  EXPECT_LT(std::abs(c - cplx(0, 1)), 1e-14);
}

TEST(QubitOperator, SquareOfPauliIsIdentity) {
  const QubitOperator op = QubitOperator::term(3, "X0 Y1 Z2", 2.0);
  const QubitOperator sq = op * op;
  ASSERT_EQ(sq.size(), 1u);
  EXPECT_LT(std::abs(sq.constant() - cplx(4, 0)), 1e-14);
}

TEST(QubitOperator, HermiticityCheck) {
  QubitOperator h = QubitOperator::term(2, "X0 X1", 0.5);
  EXPECT_TRUE(h.is_hermitian());
  h += QubitOperator::term(2, "Z0", cplx(0, 0.1));
  EXPECT_FALSE(h.is_hermitian());
}

TEST(QubitOperator, CompressRemovesZeros) {
  QubitOperator a = QubitOperator::term(1, "X0", 1.0);
  a += QubitOperator::term(1, "X0", -1.0);
  a += QubitOperator::term(1, "Z0", 0.5);
  a.compress();
  EXPECT_EQ(a.size(), 1u);
}

TEST(JordanWigner, NumberOperatorForm) {
  const QubitOperator n = jw_number(3, 1);
  // (I - Z1)/2
  EXPECT_LT(std::abs(n.constant() - cplx(0.5, 0)), 1e-14);
  const auto terms = n.sorted_terms();
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[1].first.str(), "Z1");
  EXPECT_LT(std::abs(terms[1].second - cplx(-0.5, 0)), 1e-14);
}

TEST(JordanWigner, CanonicalAnticommutation) {
  // {a_p, a_q^dagger} = delta_pq, {a_p, a_q} = 0, checked as operators.
  const std::size_t n = 4;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      const QubitOperator ap = jw_annihilation(n, p);
      const QubitOperator aqd = jw_creation(n, q);
      QubitOperator anti = ap * aqd + aqd * ap;
      anti.compress(1e-12);
      if (p == q) {
        ASSERT_EQ(anti.size(), 1u);
        EXPECT_LT(std::abs(anti.constant() - cplx(1, 0)), 1e-12);
      } else {
        EXPECT_EQ(anti.size(), 0u);
      }
      const QubitOperator aq = jw_annihilation(n, q);
      QubitOperator anti2 = ap * aq + aq * ap;
      anti2.compress(1e-12);
      EXPECT_EQ(anti2.size(), 0u);
    }
  }
}

TEST(JordanWigner, NumberEqualsCreationTimesAnnihilation) {
  const std::size_t n = 3;
  for (std::size_t p = 0; p < n; ++p) {
    QubitOperator lhs = jw_creation(n, p) * jw_annihilation(n, p);
    lhs -= jw_number(n, p);
    lhs.compress(1e-12);
    EXPECT_EQ(lhs.size(), 0u);
  }
}

TEST(JordanWigner, FermionOperatorAdjoint) {
  FermionOperator f(3);
  f.add_term({{2, true}, {0, false}}, cplx(0.5, 0.25));
  const FermionOperator fd = f.adjoint();
  ASSERT_EQ(fd.terms().size(), 1u);
  const auto& [ops, c] = fd.terms()[0];
  EXPECT_EQ(ops[0].orbital, 0u);
  EXPECT_TRUE(ops[0].dagger);
  EXPECT_EQ(ops[1].orbital, 2u);
  EXPECT_FALSE(ops[1].dagger);
  EXPECT_LT(std::abs(c - cplx(0.5, -0.25)), 1e-14);
}

TEST(JordanWigner, TransformMatchesOperatorAlgebra) {
  // jw(a+_1 a_0) must equal jw_creation(1) * jw_annihilation(0).
  FermionOperator f(3);
  f.add_term({{1, true}, {0, false}}, 1.0);
  QubitOperator lhs = jordan_wigner(f);
  QubitOperator rhs = jw_creation(3, 1) * jw_annihilation(3, 0);
  rhs.compress(1e-12);
  lhs -= rhs;
  lhs.compress(1e-12);
  EXPECT_EQ(lhs.size(), 0u);
}

TEST(JordanWigner, HermitianGeneratorMapsToAntiHermitianImage) {
  // T - T^dagger maps to purely imaginary coefficients (used by UCCSD).
  FermionOperator t(4);
  t.add_term({{2, true}, {3, true}, {1, false}, {0, false}}, 1.0);
  FermionOperator td = t.adjoint();
  td *= -1.0;
  t += td;
  const QubitOperator g = jordan_wigner(t);
  EXPECT_GT(g.size(), 0u);
  for (const auto& [p, c] : g.terms()) EXPECT_LT(std::abs(c.real()), 1e-12);
}

}  // namespace
}  // namespace q2::pauli
