// End-to-end VQE tests: H2 to chemical accuracy against FCI, agreement of
// the measurement paths (direct vs Hadamard test) and storage modes, the
// optimizers on analytic functions, and distributed == serial determinism.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "parallel/comm.hpp"
#include "vqe/vqe_driver.hpp"

namespace q2::vqe {
namespace {

struct Solved {
  chem::ScfResult scf;
  chem::MoIntegrals mo;
};

Solved solve(const chem::Molecule& mol) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  Solved s;
  s.scf = chem::rhf(mol, basis, ints);
  EXPECT_TRUE(s.scf.converged);
  s.mo = chem::transform_to_mo(ints, s.scf.coefficients,
                               s.scf.nuclear_repulsion);
  return s;
}

TEST(Optimizer, AdamQuadraticBowl) {
  EnergyFn f = [](const std::vector<double>& x) {
    return (x[0] - 1) * (x[0] - 1) + 2 * (x[1] + 0.5) * (x[1] + 0.5);
  };
  GradientFn g = [&](const std::vector<double>& x) {
    return finite_difference_gradient(f, x);
  };
  OptimizerOptions opts;
  opts.max_iterations = 500;
  const OptimizerResult r = minimize_adam(f, g, {0, 0}, opts);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-2);
  EXPECT_NEAR(r.parameters[1], -0.5, 1e-2);
}

TEST(Optimizer, LbfgsRosenbrockish) {
  EnergyFn f = [](const std::vector<double>& x) {
    const double a = 1 - x[0], b = x[1] - x[0] * x[0];
    return a * a + 10 * b * b;
  };
  GradientFn g = [&](const std::vector<double>& x) {
    return finite_difference_gradient(f, x);
  };
  OptimizerOptions opts;
  opts.max_iterations = 200;
  opts.gradient_tolerance = 1e-8;
  const OptimizerResult r = minimize_lbfgs(f, g, {-1.0, 1.0}, opts);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-4);
  EXPECT_NEAR(r.parameters[1], 1.0, 1e-4);
}

TEST(Optimizer, LbfgsConvergesFasterThanAdamOnQuadratic) {
  EnergyFn f = [](const std::vector<double>& x) {
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
      s += (i + 1) * x[i] * x[i];
    return s;
  };
  GradientFn g = [&](const std::vector<double>& x) {
    return finite_difference_gradient(f, x);
  };
  OptimizerOptions opts;
  opts.max_iterations = 100;
  const OptimizerResult lb = minimize_lbfgs(f, g, {1, 1, 1, 1}, opts);
  EXPECT_LT(lb.energy, 1e-8);
  EXPECT_LT(lb.iterations, 30);
}

TEST(Optimizer, SpsaReducesEnergy) {
  EnergyFn f = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  Rng rng(5);
  OptimizerOptions opts;
  opts.max_iterations = 150;
  opts.learning_rate = 0.3;
  const OptimizerResult r = minimize_spsa(f, {1.0, -1.0}, rng, opts);
  EXPECT_LT(r.energy, 0.3);
}

TEST(EnergyEvaluator, HfEnergyAtZeroParameters) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const EnergyEvaluator eval(ansatz.circuit, h);
  const std::vector<double> zeros(ansatz.n_parameters, 0.0);
  EXPECT_NEAR(eval.energy(zeros), s.scf.energy, 1e-8);
}

TEST(EnergyEvaluator, MeasurementModesAgree) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(ansatz, 0.1);

  const EnergyEvaluator direct(ansatz.circuit, h, {},
                               MeasurementMode::kDirect);
  const EnergyEvaluator hadamard(ansatz.circuit, h, {},
                                 MeasurementMode::kHadamardTest);
  EXPECT_NEAR(direct.energy(params), hadamard.energy(params), 1e-7);
}

TEST(EnergyEvaluator, StorageModesAgreeAndDifferInMemory) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(ansatz, 0.1);

  const EnergyEvaluator efficient(ansatz.circuit, h, {},
                                  MeasurementMode::kHadamardTest,
                                  CircuitStorage::kMemoryEfficient);
  const EnergyEvaluator store_all(ansatz.circuit, h, {},
                                  MeasurementMode::kHadamardTest,
                                  CircuitStorage::kStoreAll);
  EXPECT_NEAR(efficient.energy(params), store_all.energy(params), 1e-9);
  // Fig. 9's memory axis: one replica vs one full circuit per Pauli string.
  EXPECT_GT(store_all.stored_circuit_bytes(),
            10 * efficient.stored_circuit_bytes());
  EXPECT_EQ(store_all.circuit_count(), 14u);  // 15 terms minus identity
}

TEST(EnergyEvaluator, PartialEnergiesSumToTotal) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const EnergyEvaluator eval(ansatz.circuit, h);
  const std::vector<double> params = initial_parameters(ansatz, 0.1);
  std::vector<std::size_t> evens, odds;
  for (std::size_t i = 0; i < eval.n_terms(); ++i)
    (i % 2 ? odds : evens).push_back(i);
  const double total = eval.partial_energy(params, evens) +
                       eval.partial_energy(params, odds) +
                       eval.constant_term();
  EXPECT_NEAR(total, eval.energy(params), 1e-10);
}

TEST(EnergyEvaluator, ParameterShiftMatchesFiniteDifferences) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const EnergyEvaluator eval(ansatz.circuit, h);
  const std::vector<double> params = initial_parameters(ansatz, 0.15);

  const std::vector<double> exact = eval.parameter_shift_gradient(params);
  EnergyFn f = [&](const std::vector<double>& x) { return eval.energy(x); };
  const std::vector<double> fd = finite_difference_gradient(f, params, 1e-6);
  ASSERT_EQ(exact.size(), fd.size());
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(exact[k], fd[k], 1e-6) << "param " << k;
}

TEST(Vqe, H2ReachesChemicalAccuracy) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const chem::FciResult fci = chem::fci_ground_state(s.mo, 1, 1);
  VqeOptions opts;
  opts.optimizer.max_iterations = 60;
  const VqeResult r = run_vqe(s.mo, 1, 1, opts);
  // Chemical accuracy: 1.6 mHa.
  EXPECT_NEAR(r.energy, fci.energy, 1.6e-3);
  EXPECT_LT(r.energy, s.scf.energy);
  EXPECT_EQ(r.n_pauli_terms, 14u);
}

TEST(Vqe, StretchedH2CapturesStaticCorrelation) {
  const Solved s = solve(chem::Molecule::h2(2.8));
  const chem::FciResult fci = chem::fci_ground_state(s.mo, 1, 1);
  VqeOptions opts;
  opts.optimizer.max_iterations = 80;
  const VqeResult r = run_vqe(s.mo, 1, 1, opts);
  EXPECT_NEAR(r.energy, fci.energy, 1.6e-3);
  // RHF misses a lot here; VQE must recover it.
  EXPECT_LT(r.energy, s.scf.energy - 0.02);
}

TEST(Vqe, EnergyHistoryIsMonotoneWithLbfgs) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  VqeOptions opts;
  opts.optimizer.max_iterations = 40;
  const VqeResult r = run_vqe(s.mo, 1, 1, opts);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-9);
}

TEST(EnergyEvaluator, ParallelEnergyBitIdenticalToSerial_H4) {
  // The parallel Pauli-term sweep reduces per-term contributions in index
  // order, so the energy must match the serial sweep bit-for-bit — not just
  // to tolerance — at any thread count.
  const Solved s = solve(chem::Molecule::hydrogen_chain(4, 1.8));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(4, 2, 2);
  const std::vector<double> params = initial_parameters(ansatz, 0.1);

  sim::MpsOptions serial_mps;
  serial_mps.parallel.n_threads = 1;
  sim::MpsOptions parallel_mps;
  parallel_mps.parallel.n_threads = 4;
  const EnergyEvaluator serial(ansatz.circuit, h, serial_mps);
  const EnergyEvaluator parallel(ansatz.circuit, h, parallel_mps);

  const double e_serial = serial.energy(params);
  const double e_parallel = parallel.energy(params);
  EXPECT_EQ(e_serial, e_parallel);  // byte-identical, not EXPECT_NEAR
}

TEST(EnergyEvaluator, ParallelHadamardEnergyBitIdenticalToSerial) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(ansatz, 0.1);

  sim::MpsOptions serial_mps;
  serial_mps.parallel.n_threads = 1;
  sim::MpsOptions parallel_mps;
  parallel_mps.parallel.n_threads = 4;
  const EnergyEvaluator serial(ansatz.circuit, h, serial_mps,
                               MeasurementMode::kHadamardTest);
  const EnergyEvaluator parallel(ansatz.circuit, h, parallel_mps,
                                 MeasurementMode::kHadamardTest);
  EXPECT_EQ(serial.energy(params), parallel.energy(params));
}

TEST(EnergyEvaluator, ParallelGradientBitIdenticalToSerial) {
  // Each of the 2N shifted-circuit evaluations is independent; entries are
  // chain-ruled in occurrence order regardless of which thread ran them.
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(ansatz, 0.15);

  sim::MpsOptions serial_mps;
  serial_mps.parallel.n_threads = 1;
  sim::MpsOptions parallel_mps;
  parallel_mps.parallel.n_threads = 4;
  const EnergyEvaluator serial(ansatz.circuit, h, serial_mps);
  const EnergyEvaluator parallel(ansatz.circuit, h, parallel_mps);

  const std::vector<double> g1 = serial.parameter_shift_gradient(params);
  const std::vector<double> g4 = parallel.parameter_shift_gradient(params);
  ASSERT_EQ(g1.size(), g4.size());
  for (std::size_t k = 0; k < g1.size(); ++k)
    EXPECT_EQ(g1[k], g4[k]) << "param " << k;
}

TEST(EnergyEvaluator, HadamardMemoryEfficientReportsTruncationError) {
  // Regression: the memory-efficient Hadamard path never updated
  // last_truncation_error_, so JSONL reports carried a stale value. With a
  // bond cap of 1 the test circuits must truncate, and the evaluator must
  // say so.
  const Solved s = solve(chem::Molecule::h2(1.4));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const UccsdAnsatz ansatz = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(ansatz, 0.15);

  sim::MpsOptions tight;
  tight.max_bond = 1;
  const EnergyEvaluator eval(ansatz.circuit, h, tight,
                             MeasurementMode::kHadamardTest,
                             CircuitStorage::kMemoryEfficient);
  EXPECT_EQ(eval.last_truncation_error(), 0.0);
  eval.energy(params);
  EXPECT_GT(eval.last_truncation_error(), 0.0);
}

TEST(Vqe, DistributedMatchesSerial) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  VqeOptions opts;
  opts.optimizer.max_iterations = 25;
  const VqeResult serial = run_vqe(s.mo, 1, 1, opts);

  double distributed_energy = 0;
  std::uint64_t bytes = 0;
  par::World world(4);
  world.run([&](par::Comm& comm) {
    const VqeResult r = run_vqe_distributed(s.mo, 1, 1, opts, comm);
    if (comm.rank() == 0) {
      distributed_energy = r.energy;
      bytes = comm.bytes_transferred();
    }
  });
  EXPECT_NEAR(distributed_energy, serial.energy, 1e-9);
  (void)bytes;
}

}  // namespace
}  // namespace q2::vqe
