// Failure injection and precondition coverage: every public entry point
// must reject malformed input with a q2::Error instead of corrupting state.
#include <gtest/gtest.h>

#include "chem/element.hpp"
#include "chem/fci.hpp"
#include "chem/scf.hpp"
#include "circuit/builder.hpp"
#include "dmet/dmet_driver.hpp"
#include "pauli/jordan_wigner.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

namespace q2 {
namespace {

TEST(Robustness, UnknownBasisRejected) {
  EXPECT_THROW(chem::BasisSet::build(chem::Molecule::h2(1.4), "cc-pvqz"),
               Error);
}

TEST(Robustness, SixThirtyOneGOnlyHydrogen) {
  EXPECT_THROW(chem::BasisSet::build(chem::Molecule::h2o(), "6-31g"), Error);
}

TEST(Robustness, OpenShellRhfRejected) {
  const chem::Molecule mol({{1, {0, 0, 0}}, {1, {1.4, 0, 0}}, {1, {2.8, 0, 0}}});
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  EXPECT_THROW(chem::rhf(mol, basis, ints), Error);
}

TEST(Robustness, PauliStringOutOfRange) {
  pauli::PauliString p(3);
  EXPECT_THROW(p.set(3, pauli::P::X), Error);
  EXPECT_THROW(pauli::PauliString::parse(2, "X5"), Error);
  EXPECT_THROW(pauli::PauliString::parse(2, "Q0"), Error);
}

TEST(Robustness, QubitCountMismatchesRejected) {
  pauli::QubitOperator a(2), b(3);
  a.add(pauli::PauliString(2), 1.0);
  b.add(pauli::PauliString(3), 1.0);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a * b, Error);
  sim::StateVector sv(2);
  EXPECT_THROW(sv.expectation(pauli::PauliString(3)), Error);
}

TEST(Robustness, FermionOperatorValidation) {
  pauli::FermionOperator f(2);
  EXPECT_THROW(f.add_term({{5, true}}, 1.0), Error);
  EXPECT_THROW(pauli::jw_creation(3, 3), Error);
}

TEST(Robustness, MpsGuards) {
  EXPECT_THROW(sim::Mps(1), Error);  // needs two qubits
  sim::Mps mps(4);
  EXPECT_THROW(mps.apply(circ::make_cnot(0, 2)), Error);  // not adjacent
  circ::Circuit wrong(5);
  wrong.append(circ::make_h(0));
  EXPECT_THROW(mps.run(wrong), Error);  // qubit count mismatch
}

TEST(Robustness, StateVectorSizeWall) {
  EXPECT_THROW(sim::StateVector(40), Error);
}

TEST(Robustness, FciSpaceGuards) {
  EXPECT_THROW(chem::FciSpace(30, 2, 2), Error);  // orbital wall
  const chem::FciSpace space(3, 1, 1);
  EXPECT_THROW(space.index_of(0xFFFF), Error);  // determinant not in space
}

TEST(Robustness, ActiveSpaceWindowValidation) {
  chem::MoIntegrals mo(4, 0.0);
  EXPECT_THROW(chem::make_active_space(mo, 3, 3), Error);
}

TEST(Robustness, EnergyEvaluatorValidation) {
  // Non-Hermitian Hamiltonian rejected at construction.
  const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(2, 1, 1);
  pauli::QubitOperator bad(4);
  bad.add(pauli::PauliString::parse(4, "X0"), cplx(0, 1));
  EXPECT_THROW(vqe::EnergyEvaluator(ansatz.circuit, bad), Error);
  // Qubit mismatch rejected.
  pauli::QubitOperator wrong(6);
  wrong.add(pauli::PauliString(6), 1.0);
  EXPECT_THROW(vqe::EnergyEvaluator(ansatz.circuit, wrong), Error);
}

TEST(Robustness, DmetFragmentValidation) {
  dmet::DmetOptions opts;
  opts.fragments = {{0}, {0, 1}};  // atom 0 twice
  EXPECT_THROW(
      dmet::run_dmet(chem::Molecule::h2(1.4), opts, dmet::make_fci_solver()),
      Error);
}

TEST(Robustness, EquivalentFragmentShortcutMatchesFullSolve) {
  const chem::Molecule ring = chem::Molecule::hydrogen_ring(6, 1.8);
  dmet::DmetOptions full;
  full.fragments = dmet::uniform_atom_groups(6, 2);
  full.fit_chemical_potential = false;
  dmet::DmetOptions shortcut = full;
  shortcut.equivalent_fragments = true;
  const dmet::DmetResult a = dmet::run_dmet(ring, full, dmet::make_fci_solver());
  const dmet::DmetResult b =
      dmet::run_dmet(ring, shortcut, dmet::make_fci_solver());
  EXPECT_NEAR(a.energy, b.energy, 1e-8);
  EXPECT_NEAR(a.total_electrons, b.total_electrons, 1e-8);
}

TEST(Robustness, MoleculeFactoriesValidate) {
  EXPECT_THROW(chem::Molecule::hydrogen_ring(2, 1.5), Error);
  EXPECT_THROW(chem::Molecule::carbon_ring(5, 2.4, 2.4), Error);
  EXPECT_THROW(chem::atomic_number("Xx"), Error);
}

TEST(Robustness, CircuitBuilderBounds) {
  EXPECT_THROW(circ::hartree_fock_prep(2, 3), Error);
  circ::Circuit c(2);
  EXPECT_THROW(c.append(circ::make_rz(5, 0.1)), Error);
}

}  // namespace
}  // namespace q2
