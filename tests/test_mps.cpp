// MPS engine tests — the heart of the reproduction. The state-vector
// simulator is the oracle: every circuit-level behaviour must agree exactly
// when the bond dimension is unconstrained, and truncation must behave as
// the paper describes (monitored, monotone in D).
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/routing.hpp"
#include "common/rng.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {
namespace {

using circ::Circuit;
using pauli::PauliString;
using pauli::QubitOperator;

double fidelity(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  cplx ov{};
  for (std::size_t i = 0; i < a.size(); ++i) ov += std::conj(a[i]) * b[i];
  return std::abs(ov);
}

MpsOptions exact_opts(int n) {
  MpsOptions o;
  o.max_bond = std::size_t(1) << (n / 2 + 1);
  return o;
}

TEST(Mps, InitialStateIsVacuum) {
  Mps mps(4);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-13);
  const auto sv = mps.to_statevector();
  EXPECT_NEAR(std::abs(sv[0]), 1.0, 1e-13);
  EXPECT_EQ(mps.max_bond_dimension(), 1u);
}

TEST(Mps, SingleQubitGates) {
  Mps mps(3);
  mps.apply(circ::make_h(1));
  const auto sv = mps.to_statevector();
  EXPECT_NEAR(std::abs(sv[0]), 1 / std::sqrt(2.0), 1e-13);
  EXPECT_NEAR(std::abs(sv[2]), 1 / std::sqrt(2.0), 1e-13);
}

TEST(Mps, BellStateExpectations) {
  Mps mps(2);
  mps.apply(circ::make_h(0));
  mps.apply(circ::make_cnot(0, 1));
  EXPECT_NEAR(mps.expectation(PauliString::parse(2, "Z0 Z1")).real(), 1.0,
              1e-12);
  EXPECT_NEAR(mps.expectation(PauliString::parse(2, "X0 X1")).real(), 1.0,
              1e-12);
  EXPECT_NEAR(mps.expectation(PauliString::parse(2, "Z0")).real(), 0.0, 1e-12);
  EXPECT_EQ(mps.bond_dimension(0), 2u);
}

class MpsVsStateVector : public ::testing::TestWithParam<int> {};

TEST_P(MpsVsStateVector, RandomBrickworkCircuit) {
  const int n = GetParam();
  Rng rng(1000 + n);
  const Circuit c = circ::brickwork_circuit(n, 4, rng);
  Mps mps(n, exact_opts(n));
  mps.run(c);
  StateVector sv(n);
  sv.run(c);
  EXPECT_GT(fidelity(mps.to_statevector(), sv.amplitudes()), 1.0 - 1e-10);
  EXPECT_LT(mps.truncation_error(), 1e-12);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-10);
}

TEST_P(MpsVsStateVector, ExpectationValuesAgree) {
  const int n = GetParam();
  Rng rng(2000 + n);
  const Circuit c = circ::brickwork_circuit(n, 3, rng);
  Mps mps(n, exact_opts(n));
  mps.run(c);
  StateVector sv(n);
  sv.run(c);
  // A batch of random Pauli strings, including long Z-chains (JW-like).
  for (int trial = 0; trial < 12; ++trial) {
    PauliString p{std::size_t(n)};
    for (int q = 0; q < n; ++q)
      p.set(std::size_t(q), pauli::P(rng.index(4)));
    const cplx em = mps.expectation(p);
    const cplx es = sv.expectation(p);
    EXPECT_LT(std::abs(em - es), 1e-9) << p.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpsVsStateVector,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10));

TEST(Mps, LongRangeGatesViaRouting) {
  Rng rng(7);
  Circuit c(6);
  c.append(circ::make_h(0));
  c.append(circ::make_cnot(0, 5));
  c.append(circ::make_cnot(5, 2));
  c.append(circ::make_cnot(2, 4));
  Mps mps(6, exact_opts(6));
  mps.run(c);  // routes internally
  StateVector sv(6);
  sv.run(c);
  EXPECT_GT(fidelity(mps.to_statevector(), sv.amplitudes()), 1.0 - 1e-10);
}

TEST(Mps, FromStatevectorRoundTrip) {
  Rng rng(8);
  const int n = 6;
  const Circuit c = circ::brickwork_circuit(n, 3, rng);
  StateVector sv(n);
  sv.run(c);
  const Mps mps = Mps::from_statevector(n, sv.amplitudes(), exact_opts(n));
  EXPECT_GT(fidelity(mps.to_statevector(), sv.amplitudes()), 1.0 - 1e-10);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-10);
}

TEST(Mps, FromStatevectorExpectationMatches) {
  Rng rng(9);
  const int n = 5;
  const Circuit c = circ::brickwork_circuit(n, 2, rng);
  StateVector sv(n);
  sv.run(c);
  const Mps mps = Mps::from_statevector(n, sv.amplitudes(), exact_opts(n));
  const PauliString p = PauliString::parse(n, "X0 Z2 Y4");
  EXPECT_LT(std::abs(mps.expectation(p) - sv.expectation(p)), 1e-9);
}

TEST(Mps, GhzStateHasBondDimensionTwo) {
  const int n = 10;
  Mps mps(n);
  mps.apply(circ::make_h(0));
  for (int q = 0; q + 1 < n; ++q) mps.apply(circ::make_cnot(q, q + 1));
  EXPECT_EQ(mps.max_bond_dimension(), 2u);
  EXPECT_NEAR(mps.expectation(PauliString::parse(n, "Z0 Z9")).real(), 1.0,
              1e-10);
  PauliString all_x(n);
  for (int q = 0; q < n; ++q) all_x.set(std::size_t(q), pauli::P::X);
  EXPECT_NEAR(mps.expectation(all_x).real(), 1.0, 1e-10);
}

TEST(Mps, TruncationErrorIsMonitoredAndMonotone) {
  Rng rng(10);
  const int n = 8;
  const Circuit c = circ::brickwork_circuit(n, 6, rng);
  double prev_err = 1e9;
  double prev_fid = 0.0;
  StateVector sv(n);
  sv.run(c);
  for (std::size_t d : {2u, 4u, 8u, 16u}) {
    MpsOptions o;
    o.max_bond = d;
    Mps mps(n, o);
    mps.run(c);
    const double fid = fidelity(mps.to_statevector(), sv.amplitudes());
    EXPECT_LE(mps.truncation_error(), prev_err + 1e-12);
    EXPECT_GE(fid, prev_fid - 1e-9);
    prev_err = mps.truncation_error();
    prev_fid = fid;
    // Truncation makes the canonical gauge (and hence the norm) approximate;
    // the drift is bounded by the monitored truncation error.
    EXPECT_NEAR(mps.norm(), 1.0,
                std::max(1e-8, 5.0 * mps.truncation_error()));
  }
  EXPECT_GT(prev_fid, 1.0 - 1e-9);  // D = 16 is exact for 8 qubits
}

TEST(Mps, BlockEntanglingCircuitHasBoundedBond) {
  // The Fig. 2(c) workload: bond dimension saturates independent of n.
  Rng rng(11);
  std::size_t bond_small = 0, bond_large = 0;
  for (int n : {8, 16}) {
    const Circuit c = circ::block_entangling_circuit(n, 4, 1, rng);
    MpsOptions o;
    o.max_bond = 64;
    Mps mps(n, o);
    mps.run(c);
    EXPECT_LT(mps.truncation_error(), 1e-10);
    (n == 8 ? bond_small : bond_large) = mps.max_bond_dimension();
  }
  EXPECT_LE(bond_large, 8u);
  EXPECT_LE(bond_small, 8u);
}

TEST(Mps, QubitOperatorExpectation) {
  QubitOperator h = QubitOperator::identity(3, 0.5);
  h += QubitOperator::term(3, "Z0", 1.0);
  h += QubitOperator::term(3, "X1 X2", 2.0);
  Mps mps(3);
  mps.apply(circ::make_x(0));
  mps.apply(circ::make_h(1));
  mps.apply(circ::make_cnot(1, 2));
  StateVector sv(3);
  sv.apply(circ::make_x(0));
  sv.apply(circ::make_h(1));
  sv.apply(circ::make_cnot(1, 2));
  EXPECT_LT(std::abs(mps.expectation(h) - sv.expectation(h)), 1e-10);
}

TEST(Mps, MemoryScalesWithBondDimension) {
  Rng rng(12);
  const Circuit c = circ::brickwork_circuit(12, 6, rng);
  MpsOptions small, large;
  small.max_bond = 4;
  large.max_bond = 32;
  Mps a(12, small), b(12, large);
  a.run(c);
  b.run(c);
  EXPECT_LT(a.memory_bytes(), b.memory_bytes());
}

TEST(Mps, ApplyRejectsNonAdjacentGate) {
  Mps mps(4);
  EXPECT_THROW(mps.apply(circ::make_cnot(0, 3)), Error);
}

TEST(Mps, ParametricCircuitBinding) {
  Circuit c(3);
  circ::append_pauli_evolution_param(c, PauliString::parse(3, "Y0 X1"), 0, 1.0);
  Mps a(3, exact_opts(3));
  a.run(c, {0.9});
  StateVector sv(3);
  sv.run(c, {0.9});
  EXPECT_GT(fidelity(a.to_statevector(), sv.amplitudes()), 1.0 - 1e-10);
}

}  // namespace
}  // namespace q2::sim
