// Circuit-compilation tests: permutation bookkeeping, lazy-reordering SWAP
// elision and peephole cancellation, two-qubit fusion, the compiled-run
// differential sweep (compiled MPS == statevector == eager-routed reference),
// commuting-group measurement planning, and the bit-identity contract of the
// grouped energy sweep on the H2/H4 goldens at several thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "circuit/builder.hpp"
#include "circuit/fusion.hpp"
#include "circuit/reorder.hpp"
#include "circuit/routing.hpp"
#include "common/rng.hpp"
#include "pauli/grouping.hpp"
#include "sim/mps.hpp"
#include "sim/reference_mps.hpp"
#include "sim/statevector.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

namespace q2 {
namespace {

using circ::Circuit;
using circ::CompiledCircuit;
using circ::QubitPermutation;
using pauli::PauliString;

// -------------------------------------------------------------------------
// QubitPermutation

TEST(QubitPermutation, IdentityAndInverseRoundTrip) {
  QubitPermutation perm(6);
  EXPECT_TRUE(perm.is_identity());
  Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    const int s = int(rng.index(5));
    if (rng.uniform() < 0.5)
      perm.swap_sites(s, s + 1);
    else
      perm.swap_logical(s, s + 1);
    for (int q = 0; q < 6; ++q) {
      EXPECT_EQ(perm.logical_at(perm.site_of(q)), q);
      EXPECT_EQ(perm.site_of(perm.logical_at(q)), q);
    }
  }
}

TEST(QubitPermutation, SwapSitesMovesLogicalLabels) {
  QubitPermutation perm(4);
  perm.swap_sites(0, 1);  // logical 0 now at site 1
  EXPECT_EQ(perm.site_of(0), 1);
  EXPECT_EQ(perm.site_of(1), 0);
  perm.swap_logical(0, 2);  // labels 0 and 2 trade sites
  EXPECT_EQ(perm.site_of(0), 2);
  EXPECT_EQ(perm.site_of(2), 1);
  perm.swap_sites(0, 1);
  perm.swap_logical(0, 2);
  perm.swap_sites(0, 1);  // net: swap_sites(0,1) thrice = once
  EXPECT_FALSE(perm.is_identity());
}

// -------------------------------------------------------------------------
// Lazy reordering: SWAP accounting

TEST(Compile, NearestNeighbourCircuitIsUntouched) {
  Circuit c(4);
  c.append(circ::make_h(0));
  c.append(circ::make_cnot(0, 1));
  c.append(circ::make_cnot(1, 2));
  circ::CompileOptions opts;
  opts.fuse = false;
  const CompiledCircuit cc = circ::compile_for_mps(c, opts);
  EXPECT_TRUE(cc.output_perm.is_identity());
  EXPECT_EQ(cc.stats.swaps_materialized, 0u);
  EXPECT_EQ(cc.stats.swaps_elided, 0u);
  EXPECT_EQ(cc.gates.size(), c.size());
}

TEST(Compile, LogicalSwapIsElidedEntirely) {
  Circuit c(4);
  c.append(circ::make_h(0));
  c.append(circ::make_swap(0, 3));
  const CompiledCircuit cc = circ::compile_for_mps(c);
  EXPECT_EQ(cc.stats.swaps_materialized, 0u);
  EXPECT_GT(cc.stats.swaps_elided, 0u);
  EXPECT_FALSE(cc.output_perm.is_identity());
  EXPECT_EQ(cc.output_perm.site_of(0), 3);
  EXPECT_EQ(cc.output_perm.site_of(3), 0);
}

TEST(Compile, BackToBackLongRangeGatesCancelTheirChains) {
  // Eager routing brackets each CNOT(0,3) with 2*(3-1) = 4 SWAPs; lazily the
  // first gate emits one forward chain (2 SWAPs) and the second finds its
  // qubits already adjacent.
  Circuit c(4);
  c.append(circ::make_cnot(0, 3));
  c.append(circ::make_cnot(0, 3));
  circ::CompileOptions opts;
  opts.fuse = false;
  const CompiledCircuit cc = circ::compile_for_mps(c, opts);
  EXPECT_EQ(cc.stats.swaps_eager, 8u);
  EXPECT_EQ(cc.stats.swaps_materialized, 2u);
  EXPECT_EQ(cc.stats.swaps_elided, 6u);
  // Peephole: an immediately-reversed chain (gate, chain, chain back, gate)
  // cancels pairwise rather than materializing.
  Circuit d(5);
  d.append(circ::make_cnot(0, 4));
  d.append(circ::make_cnot(3, 4));  // endpoints parked adjacent by the chain
  const CompiledCircuit dd = circ::compile_for_mps(d, opts);
  EXPECT_LT(dd.stats.swaps_materialized, dd.stats.swaps_eager);
}

TEST(Compile, ReductionOnUccsdAnsatzIsAtLeastThirtyPercent) {
  // The acceptance floor of the PR, asserted where it is cheap: the H4
  // UCCSD ansatz must compile with >= 30% fewer materialized SWAPs than the
  // eager router emits.
  const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(4, 2, 2);
  const CompiledCircuit cc = circ::compile_for_mps(ansatz.circuit);
  ASSERT_GT(cc.stats.swaps_eager, 0u);
  EXPECT_LE(double(cc.stats.swaps_materialized),
            0.7 * double(cc.stats.swaps_eager));
}

// -------------------------------------------------------------------------
// Differential sweep: compiled MPS == statevector == eager reference

Circuit random_long_range_circuit(int n, int n_gates, Rng& rng) {
  Circuit c(n);
  for (int g = 0; g < n_gates; ++g) {
    const double pick = rng.uniform();
    if (pick < 0.35) {
      const int q = int(rng.index(std::size_t(n)));
      switch (rng.index(4)) {
        case 0: c.append(circ::make_h(q)); break;
        case 1: c.append(circ::make_t(q)); break;
        case 2: c.append(circ::make_rx(q, rng.uniform(-2.0, 2.0))); break;
        default: c.append(circ::make_rz(q, rng.uniform(-2.0, 2.0))); break;
      }
      continue;
    }
    int a = int(rng.index(std::size_t(n)));
    int b = int(rng.index(std::size_t(n)));
    while (b == a) b = int(rng.index(std::size_t(n)));
    if (pick < 0.65)
      c.append(circ::make_cnot(a, b));
    else if (pick < 0.8)
      c.append(circ::make_cz(a, b));
    else if (pick < 0.9)
      c.append(circ::make_swap(a, b));
    else
      c.append(circ::make_rz(a, rng.uniform(-2.0, 2.0)));
  }
  return c;
}

TEST(Compile, DifferentialSweepCompiledMpsVsStatevectorVsEagerReference) {
  Rng rng(20260808);
  int nontrivial_perms = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 6 + int(rng.index(5));  // 6..10 qubits
    const int n_gates = 12 + int(rng.index(14));
    const Circuit c = random_long_range_circuit(n, n_gates, rng);
    const CompiledCircuit cc = circ::compile_for_mps(c);
    if (!cc.output_perm.is_identity()) ++nontrivial_perms;

    // Oracle 1: plain statevector run of the logical circuit.
    sim::StateVector sv(n);
    sv.run(c);
    // Oracle 2: statevector run of the compiled circuit (exercises
    // unpermute_statevector).
    sim::StateVector svc(n);
    svc.run(cc);
    // Oracle 3: eager-routed naive reference MPS (exact bond dimension).
    sim::MpsOptions exact;
    exact.max_bond = std::size_t(1) << (n / 2 + 1);
    sim::ReferenceMps ref(n, exact);
    ref.run(c);
    // Engine under test: compiled run on the optimized MPS.
    sim::Mps mps(n, exact);
    mps.run(cc);

    const std::vector<cplx> a = sv.amplitudes();
    const std::vector<cplx> b = svc.amplitudes();
    const std::vector<cplx> r = ref.to_statevector();
    const std::vector<cplx> m = mps.to_statevector();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_LT(std::abs(a[i] - b[i]), 1e-10) << "trial " << trial;
      ASSERT_LT(std::abs(a[i] - r[i]), 1e-8) << "trial " << trial;
      ASSERT_LT(std::abs(a[i] - m[i]), 1e-8) << "trial " << trial;
    }

    // Expectation through the residual permutation matches the statevector.
    PauliString p{std::size_t(n)};
    const int q1 = int(rng.index(std::size_t(n)));
    int q2 = int(rng.index(std::size_t(n)));
    while (q2 == q1) q2 = int(rng.index(std::size_t(n)));
    p.set(std::size_t(q1), pauli::P::Z);
    p.set(std::size_t(q2), pauli::P::X);
    ASSERT_LT(std::abs(mps.expectation(p) - sv.expectation(p)), 1e-8)
        << "trial " << trial;
  }
  // The sweep must actually exercise residual permutations, not just happen
  // to compile everything back to identity.
  EXPECT_GT(nontrivial_perms, 20);
}

TEST(Fusion, AdjacentTwoQubitGatesMergePreservingState) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + int(rng.index(3));
    Circuit c(n);
    // Nearest-neighbour gate soup with repeated pairs so fusion triggers.
    for (int g = 0; g < 20; ++g) {
      const int a = int(rng.index(std::size_t(n - 1)));
      if (rng.uniform() < 0.3) c.append(circ::make_h(int(rng.index(std::size_t(n)))));
      if (rng.uniform() < 0.5)
        c.append(circ::make_cnot(a, a + 1));
      else
        c.append(circ::make_cz(a + 1, a));
    }
    const Circuit fused = circ::fuse_adjacent_two_qubit_gates(c);
    EXPECT_LE(fused.size(), c.size());
    sim::StateVector sv(n), svf(n);
    sv.run(c);
    svf.run(fused);
    for (std::size_t i = 0; i < sv.dim(); ++i)
      ASSERT_LT(std::abs(sv.amplitudes()[i] - svf.amplitudes()[i]), 1e-10);
  }
  // Deterministic shrink check: two CNOTs on the same pair become one U4.
  Circuit two(3);
  two.append(circ::make_cnot(0, 1));
  two.append(circ::make_cnot(0, 1));
  EXPECT_EQ(circ::fuse_adjacent_two_qubit_gates(two).size(), 1u);
}

TEST(Compile, ExpectationBatchIsBitIdenticalToStandalone) {
  Rng rng(4242);
  const int n = 8;
  const Circuit c = random_long_range_circuit(n, 24, rng);
  sim::MpsOptions exact;
  exact.max_bond = 64;
  sim::Mps mps(n, exact);
  mps.run(circ::compile_for_mps(c));

  std::vector<PauliString> terms;
  for (int t = 0; t < 40; ++t) {
    PauliString p{std::size_t(n)};
    const int weight = 1 + int(rng.index(4));
    for (int w = 0; w < weight; ++w)
      p.set(rng.index(std::size_t(n)), pauli::P(1 + int(rng.index(3))));
    terms.push_back(p);
  }
  terms.push_back(PauliString(std::size_t(n)));  // identity rides along

  const std::vector<cplx> batch = mps.expectation_batch(terms);
  ASSERT_EQ(batch.size(), terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const cplx solo = mps.expectation(terms[i]);
    EXPECT_EQ(batch[i].real(), solo.real()) << terms[i].str();
    EXPECT_EQ(batch[i].imag(), solo.imag()) << terms[i].str();
  }
}

// -------------------------------------------------------------------------
// Commuting-group planning

TEST(Grouping, QubitwiseCompatibilityMatchesDefinition) {
  const auto compat = [](const char* a, const char* b) {
    return pauli::qubitwise_compatible(PauliString::parse(4, a),
                                       PauliString::parse(4, b));
  };
  EXPECT_TRUE(compat("X0 Z2", "X0 Y3"));
  EXPECT_TRUE(compat("X0", "Z1"));
  EXPECT_TRUE(compat("", "Z1"));
  EXPECT_FALSE(compat("X0", "Z0"));
  EXPECT_FALSE(compat("X0 Z2", "X0 Y2"));
  EXPECT_TRUE(compat("Y1 Y2", "Y1"));
}

TEST(Grouping, PartitionCoversEveryTermOnceAndIsCompatible) {
  Rng rng(17);
  std::vector<PauliString> terms;
  for (int t = 0; t < 60; ++t) {
    PauliString p(10);
    const int weight = 1 + int(rng.index(4));
    for (int w = 0; w < weight; ++w)
      p.set(rng.index(10), pauli::P(1 + int(rng.index(3))));
    terms.push_back(p);
  }
  const auto groups = pauli::group_qubitwise_commuting(terms);
  EXPECT_LT(groups.size(), terms.size());  // grouping must actually group
  std::vector<int> seen(terms.size(), 0);
  for (const auto& g : groups) {
    for (std::size_t k : g.members) {
      ++seen[k];
      EXPECT_TRUE(pauli::qubitwise_compatible(terms[k], g.basis));
      const auto [lo, hi] = terms[k].support_range();
      EXPECT_GE(lo, g.lo);
      EXPECT_LE(hi, g.hi);
      for (std::size_t other : g.members)
        EXPECT_TRUE(pauli::qubitwise_compatible(terms[k], terms[other]));
    }
  }
  for (std::size_t k = 0; k < terms.size(); ++k) EXPECT_EQ(seen[k], 1);
  // Determinism: same input, same plan.
  const auto again = pauli::group_qubitwise_commuting(terms);
  ASSERT_EQ(again.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    EXPECT_EQ(again[g].members, groups[g].members);
}

TEST(Grouping, SharedSupportCostModel) {
  EXPECT_EQ(pauli::support_cost(PauliString(4)), 0.0);
  EXPECT_EQ(pauli::support_cost(PauliString::parse(8, "Z3")), 2.0);
  EXPECT_EQ(pauli::support_cost(PauliString::parse(8, "X1 Z6")), 7.0);
  EXPECT_EQ(pauli::support_cost(1, 6), 7.0);
}

// -------------------------------------------------------------------------
// Grouped energies: bit-identical to the ungrouped serial sweep

struct MolecularCase {
  vqe::UccsdAnsatz ansatz;
  pauli::QubitOperator hamiltonian;
};

MolecularCase h_chain_case(int n_h, double r, int n_alpha) {
  const chem::Molecule mol = n_h == 2 ? chem::Molecule::h2(r)
                                      : chem::Molecule::hydrogen_chain(n_h, r);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const chem::MoIntegrals mo = chem::transform_to_mo(
      ints, scf.coefficients, scf.nuclear_repulsion);
  MolecularCase c{vqe::build_uccsd(mo.n_orbitals(), n_alpha, n_alpha, {}),
                  chem::molecular_qubit_hamiltonian(mo)};
  return c;
}

void expect_grouped_bit_identical(const MolecularCase& mc) {
  std::vector<double> params(mc.ansatz.n_parameters, 0.0);
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] = 0.02 * double(i + 1);

  // Serial ungrouped sweep: one expectation per term, reduced in term order.
  sim::MpsOptions serial;
  serial.parallel.n_threads = 1;
  const vqe::EnergyEvaluator reference(mc.ansatz.circuit, mc.hamiltonian,
                                       serial, vqe::MeasurementMode::kDirect,
                                       vqe::CircuitStorage::kMemoryEfficient,
                                       vqe::TermGrouping::kNone);
  const double e_reference = reference.energy(params);

  for (std::size_t threads : {std::size_t(1), std::size_t(2), std::size_t(4)}) {
    sim::MpsOptions opts;
    opts.parallel.n_threads = threads;
    const vqe::EnergyEvaluator grouped(mc.ansatz.circuit, mc.hamiltonian,
                                       opts, vqe::MeasurementMode::kDirect,
                                       vqe::CircuitStorage::kMemoryEfficient,
                                       vqe::TermGrouping::kCommuting);
    EXPECT_LT(grouped.measurement_group_count(), grouped.n_terms());
    const double e_grouped = grouped.energy(params);
    // Exact double equality: grouping and threading change the schedule,
    // never the arithmetic.
    EXPECT_EQ(e_grouped, e_reference) << "threads=" << threads;
  }
}

TEST(GroupedEnergy, H2BitIdenticalAcrossGroupingAndThreads) {
  expect_grouped_bit_identical(h_chain_case(2, 1.4, 1));
}

TEST(GroupedEnergy, H4BitIdenticalAcrossGroupingAndThreads) {
  expect_grouped_bit_identical(h_chain_case(4, 1.8, 2));
}

}  // namespace
}  // namespace q2
