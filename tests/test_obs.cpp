// Telemetry layer: counter/gauge/histogram semantics, scoped-span tracing
// (including cross-thread recording and the Chrome trace_event export, which
// is parsed back with a minimal JSON parser), JSONL run reports, and the
// --trace=/--report=/--metrics= flag plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace q2 {
namespace {

// Telemetry output is parsed back with the shared obs::Json parser (this
// file's original hand-rolled parser was promoted into src/obs/json.hpp,
// where tools/bench_diff uses it too).
using Jv = obs::Json;

Jv parse_json(const std::string& text) { return Jv::parse(text); }

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Instruments.

TEST(ObsMetrics, CounterSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSemantics) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-7.0);  // last write wins
  EXPECT_EQ(g.value(), -7.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (edges are inclusive upper bounds)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 1056.5, 1e-12);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, DefaultTimeBoundsAscend) {
  const std::vector<double> b = obs::default_time_bounds();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(b.front(), 1e-5);  // catches microsecond-scale gates
  EXPECT_GE(b.back(), 1.0);    // and second-scale solves
}

TEST(ObsMetrics, RegistryLookupIsStableAcrossReset) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("test_obs.stable");
  EXPECT_EQ(&c, &reg.counter("test_obs.stable"));
  c.add(3);
  obs::Gauge& g = reg.gauge("test_obs.gauge");
  g.set(1.25);
  obs::Histogram& h = reg.histogram("test_obs.hist", {1.0, 2.0});
  h.observe(1.5);

  obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test_obs.stable"), 3u);
  EXPECT_EQ(snap.gauges.at("test_obs.gauge"), 1.25);
  EXPECT_EQ(snap.histograms.at("test_obs.hist").count, 1u);

  reg.reset();
  // The same references remain usable after reset(); values are zeroed.
  EXPECT_EQ(c.value(), 0u);
  c.add();
  EXPECT_EQ(reg.snapshot().counters.at("test_obs.stable"), 1u);
}

TEST(ObsMetrics, JsonDumpParses) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("test_obs.json_counter").add(7);
  reg.histogram("test_obs.json_hist").observe(0.5);
  const Jv root = parse_json(reg.json());
  EXPECT_EQ(root.at("counters").at("test_obs.json_counter").number, 7.0);
  const Jv& hist = root.at("histograms").at("test_obs.json_hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("bounds").array.size() + 1, hist.at("counts").array.size());
  // The text dump should at least mention every instrument.
  EXPECT_NE(reg.text().find("test_obs.json_counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing.

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::set_tracing(false);
  obs::clear_trace();
  {
    OBS_SPAN("test/should_not_appear");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTrace, NestedSpansAcrossThreadsExportValidChromeJson) {
#ifdef Q2_OBS_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out (Q2_OBS_DISABLE_TRACING)";
#endif
  obs::set_tracing(true);
  obs::clear_trace();
  {
    OBS_SPAN("test/outer");
    { OBS_SPAN("test/inner"); }
    std::thread a([] { OBS_SPAN("test/worker_a"); });
    std::thread b([] { OBS_SPAN("test/worker_b"); });
    a.join();
    b.join();
  }
  obs::set_tracing(false);
  EXPECT_EQ(obs::trace_event_count(), 4u);

  const Jv root = parse_json(obs::trace_json());
  const std::vector<Jv>& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 4u);
  const Jv* outer = nullptr;
  const Jv* inner = nullptr;
  std::map<std::string, double> tids;
  for (const Jv& e : events) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_TRUE(e.has("pid"));
    tids[e.at("name").string] = e.at("tid").number;
    if (e.at("name").string == "test/outer") outer = &e;
    if (e.at("name").string == "test/inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Nesting: the inner span lies within the outer span, on the same lane.
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_LE(outer->at("ts").number, inner->at("ts").number);
  EXPECT_GE(outer->at("ts").number + outer->at("dur").number,
            inner->at("ts").number + inner->at("dur").number);
  // The worker threads get their own lanes.
  EXPECT_NE(tids.at("test/worker_a"), tids.at("test/outer"));
  EXPECT_NE(tids.at("test/worker_a"), tids.at("test/worker_b"));

  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTrace, WriteTraceFileRoundTrips) {
#ifdef Q2_OBS_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out (Q2_OBS_DISABLE_TRACING)";
#endif
  obs::set_tracing(true);
  obs::clear_trace();
  { OBS_SPAN("test/file_span"); }
  obs::set_tracing(false);
  const std::string path = temp_path("q2_test.trace.json");
  ASSERT_TRUE(obs::write_trace_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const Jv root = parse_json(ss.str());
  ASSERT_EQ(root.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").array[0].at("name").string,
            "test/file_span");
  obs::clear_trace();
  std::remove(path.c_str());
}

TEST(ObsTrace, TraceLimitDropsSpansAndCountsThem) {
#ifdef Q2_OBS_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out (Q2_OBS_DISABLE_TRACING)";
#endif
  obs::set_trace_limit(10);
  obs::set_tracing(true);
  obs::clear_trace();
  for (int i = 0; i < 20; ++i) {
    OBS_SPAN("test/limited");
  }
  obs::set_tracing(false);
  EXPECT_EQ(obs::trace_event_count(), 10u);
  EXPECT_EQ(obs::trace_dropped_count(), 10u);
  // The drop count also surfaces in the metrics dump, so a truncated trace
  // is visible even when only the metrics file is collected.
  EXPECT_GE(obs::Registry::global().snapshot().counters.at(
                "trace.dropped_spans"),
            10u);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);
  obs::set_trace_limit(0);  // back to the default cap
}

// ---------------------------------------------------------------------------
// Run reports.

TEST(ObsReport, JsonlRoundTrip) {
  obs::RunReport& report = obs::RunReport::global();
  EXPECT_FALSE(report.is_open());
  report.record("ignored", {{"x", 1}});  // no-op while closed

  const std::string path = temp_path("q2_test_report.jsonl");
  ASSERT_TRUE(report.open(path));
  EXPECT_TRUE(report.is_open());
  report.record("vqe_iteration",
                {{"iteration", 0},
                 {"energy", -1.125},
                 {"note", "quoted \"text\"\n"}});
  report.record("schedule", {{"loads", std::vector<double>{1.0, 2.5}}});
  report.close();
  EXPECT_FALSE(report.is_open());

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const Jv first = parse_json(lines[0]);
  EXPECT_EQ(first.at("kind").string, "vqe_iteration");
  EXPECT_EQ(first.at("iteration").number, 0.0);
  EXPECT_EQ(first.at("energy").number, -1.125);
  EXPECT_EQ(first.at("note").string, "quoted \"text\"\n");
  const Jv second = parse_json(lines[1]);
  ASSERT_EQ(second.at("loads").array.size(), 2u);
  EXPECT_EQ(second.at("loads").array[1].number, 2.5);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// JSON emission corner cases.

TEST(ObsJson, EscapesAndNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(parse_json(obs::json_number(0.1)).number, 0.1);
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  const std::string obj = obs::json_object(
      {{"s", "v"}, {"b", true}, {"n", nullptr}, {"i", std::size_t(3)}});
  const Jv root = parse_json(obj);
  EXPECT_EQ(root.at("s").string, "v");
  EXPECT_TRUE(root.at("b").boolean);
  EXPECT_EQ(root.at("n").type, Jv::kNull);
  EXPECT_EQ(root.at("i").number, 3.0);
}

// ---------------------------------------------------------------------------
// Flag plumbing. Runs last in this file: configure_from_args() enables the
// sinks process-wide, and we flush them via shutdown() within the test.

TEST(ObsConfig, ConfigureFromArgsStripsFlagsAndWritesSinks) {
  const std::string trace = temp_path("q2_cfg.trace.json");
  const std::string report = temp_path("q2_cfg.jsonl");
  const std::string metrics = temp_path("q2_cfg_metrics.json");
  const std::string trace_arg = "--trace=" + trace;
  const std::string report_arg = "--report=" + report;
  const std::string metrics_arg = "--metrics=" + metrics;
  std::vector<char*> argv = {
      const_cast<char*>("prog"),      const_cast<char*>(trace_arg.c_str()),
      const_cast<char*>("1.4"),       const_cast<char*>(report_arg.c_str()),
      const_cast<char*>(metrics_arg.c_str()),
      const_cast<char*>("--other-flag")};
  int argc = int(argv.size());
  obs::configure_from_args(argc, argv.data());
  // Recognized flags are consumed; positionals and foreign flags survive.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "1.4");
  EXPECT_STREQ(argv[2], "--other-flag");
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_TRUE(obs::RunReport::global().is_open());

  { OBS_SPAN("test/configured"); }
  obs::RunReport::global().record("marker", {{"ok", true}});
  obs::Registry::global().counter("test_obs.configured").add();
  obs::shutdown();
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_FALSE(obs::RunReport::global().is_open());

  std::ifstream tin(trace);
  ASSERT_TRUE(tin.good());
  std::stringstream tss;
  tss << tin.rdbuf();
  const Jv troot = parse_json(tss.str());
#ifndef Q2_OBS_DISABLE_TRACING
  bool found = false;
  for (const Jv& e : troot.at("traceEvents").array)
    if (e.at("name").string == "test/configured") found = true;
  EXPECT_TRUE(found);
#endif

  std::ifstream rin(report);
  std::string line;
  ASSERT_TRUE(std::getline(rin, line));
  EXPECT_EQ(parse_json(line).at("kind").string, "marker");

  std::ifstream min(metrics);
  ASSERT_TRUE(min.good());
  std::stringstream mss;
  mss << min.rdbuf();
  EXPECT_GE(parse_json(mss.str())
                .at("counters")
                .at("test_obs.configured")
                .number,
            1.0);

  obs::clear_trace();
  std::remove(trace.c_str());
  std::remove(report.c_str());
  std::remove(metrics.c_str());
}

// A failing sink must not take the others down with it: an unwritable trace
// path degrades to a warning, and the metrics dump and run report still
// flush (regression test for the all-or-nothing shutdown).
TEST(ObsConfig, ShutdownFlushesRemainingSinksWhenTraceWriteFails) {
  const std::string trace = "/nonexistent_q2_dir/q2_hard.trace.json";
  const std::string report = temp_path("q2_hard.jsonl");
  const std::string metrics = temp_path("q2_hard_metrics.json");
  const std::string trace_arg = "--trace=" + trace;
  const std::string report_arg = "--report=" + report;
  const std::string metrics_arg = "--metrics=" + metrics;
  std::vector<char*> argv = {const_cast<char*>("prog"),
                             const_cast<char*>(trace_arg.c_str()),
                             const_cast<char*>(report_arg.c_str()),
                             const_cast<char*>(metrics_arg.c_str())};
  int argc = int(argv.size());
  obs::configure_from_args(argc, argv.data());

  { OBS_SPAN("test/hardened"); }
  obs::RunReport::global().record("marker", {{"ok", true}});
  obs::Registry::global().counter("test_obs.hardened").add();
  obs::shutdown();

  EXPECT_FALSE(std::ifstream(trace).good());
  std::ifstream rin(report);
  std::string line;
  ASSERT_TRUE(std::getline(rin, line));
  EXPECT_EQ(parse_json(line).at("kind").string, "marker");
  std::ifstream min(metrics);
  ASSERT_TRUE(min.good());
  std::stringstream mss;
  mss << min.rdbuf();
  EXPECT_GE(
      parse_json(mss.str()).at("counters").at("test_obs.hardened").number,
      1.0);

  obs::clear_trace();
  std::remove(report.c_str());
  std::remove(metrics.c_str());
}

}  // namespace
}  // namespace q2
