// RHF tests: literature anchor energies, variational bounds, idempotency of
// the converged density, and the MO transform consistency checks.
#include <gtest/gtest.h>

#include "chem/mo.hpp"
#include "chem/scf.hpp"
#include "linalg/gemm.hpp"

namespace q2::chem {
namespace {

ScfResult solve(const Molecule& mol, const std::string& basis_name = "sto-3g") {
  const BasisSet basis = BasisSet::build(mol, basis_name);
  const IntegralTables ints = compute_integrals(mol, basis);
  return rhf(mol, basis, ints);
}

TEST(Rhf, H2AtEquilibrium) {
  // Szabo-Ostlund: E(RHF/STO-3G, R = 1.4) = -1.1167 Ha.
  const ScfResult r = solve(Molecule::h2(1.4));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -1.1167, 2e-3);
  EXPECT_EQ(r.n_occupied, 1);
  EXPECT_NEAR(r.nuclear_repulsion, 1.0 / 1.4, 1e-12);
}

TEST(Rhf, H2OrbitalEnergies) {
  const ScfResult r = solve(Molecule::h2(1.4));
  // Bonding orbital around -0.578, antibonding around +0.67 (S&O).
  EXPECT_NEAR(r.orbital_energies[0], -0.578, 5e-3);
  EXPECT_GT(r.orbital_energies[1], 0.5);
}

TEST(Rhf, WaterAnchorEnergy) {
  const ScfResult r = solve(Molecule::h2o());
  ASSERT_TRUE(r.converged);
  // Literature RHF/STO-3G water energy is about -74.96 Ha.
  EXPECT_NEAR(r.energy, -74.96, 5e-2);
  EXPECT_EQ(r.n_occupied, 5);
}

TEST(Rhf, LithiumHydride) {
  const ScfResult r = solve(Molecule::lih());
  ASSERT_TRUE(r.converged);
  // Literature RHF/STO-3G LiH equilibrium energy is about -7.86 Ha.
  EXPECT_NEAR(r.energy, -7.86, 3e-2);
}

TEST(Rhf, DensityIdempotentAndTraced) {
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult r = rhf(mol, basis, ints);
  ASSERT_TRUE(r.converged);
  // tr(D S) = n_electrons; (D S D)/2 = D (idempotency with factor 2).
  const la::RMatrix ds = la::matmul(r.density, ints.overlap);
  double tr = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) tr += ds(i, i);
  EXPECT_NEAR(tr, 10.0, 1e-8);
  const la::RMatrix dsd = la::matmul(ds, r.density);
  for (std::size_t i = 0; i < dsd.size(); ++i)
    EXPECT_NEAR(dsd.data()[i] / 2.0, r.density.data()[i], 1e-6);
}

TEST(Rhf, DissociationRaisesEnergyAboveEquilibrium) {
  const double e_eq = solve(Molecule::h2(1.4)).energy;
  const double e_str = solve(Molecule::h2(3.5)).energy;
  EXPECT_LT(e_eq, e_str);
}

TEST(Rhf, SixThirtyOneGLowersH2Energy) {
  const double e_sto = solve(Molecule::h2(1.4), "sto-3g").energy;
  const double e_631 = solve(Molecule::h2(1.4), "6-31g").energy;
  EXPECT_LT(e_631, e_sto);  // bigger basis is variationally lower
}

TEST(Rhf, HydrogenChainScfConverges) {
  const ScfResult r = solve(Molecule::hydrogen_chain(6, 1.8));
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.energy, 0.0);
  EXPECT_EQ(r.n_occupied, 3);
}

TEST(MoIntegrals, HfEnergyFromMoQuantities) {
  // E_HF = E_core + 2 sum_i h_ii + sum_ij (2 (ii|jj) - (ij|ji)).
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult r = rhf(mol, basis, ints);
  const MoIntegrals mo =
      transform_to_mo(ints, r.coefficients, r.nuclear_repulsion);
  double e = mo.core_energy();
  for (int i = 0; i < r.n_occupied; ++i) {
    e += 2.0 * mo.h(std::size_t(i), std::size_t(i));
    for (int j = 0; j < r.n_occupied; ++j)
      e += 2.0 * mo.eri(std::size_t(i), std::size_t(i), std::size_t(j),
                        std::size_t(j)) -
           mo.eri(std::size_t(i), std::size_t(j), std::size_t(j),
                  std::size_t(i));
  }
  EXPECT_NEAR(e, r.energy, 1e-8);
}

TEST(MoIntegrals, ActiveSpacePreservesHfEnergy) {
  // Freezing orbitals and recomputing the HF energy in the active window
  // must reproduce the full HF energy when all occupied orbitals that are
  // excluded are frozen.
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult r = rhf(mol, basis, ints);
  const MoIntegrals mo =
      transform_to_mo(ints, r.coefficients, r.nuclear_repulsion);
  const MoIntegrals act = make_active_space(mo, 2, mo.n_orbitals() - 2);
  double e = act.core_energy();
  for (int i = 0; i < r.n_occupied - 2; ++i) {
    e += 2.0 * act.h(std::size_t(i), std::size_t(i));
    for (int j = 0; j < r.n_occupied - 2; ++j)
      e += 2.0 * act.eri(std::size_t(i), std::size_t(i), std::size_t(j),
                         std::size_t(j)) -
           act.eri(std::size_t(i), std::size_t(j), std::size_t(j),
                   std::size_t(i));
  }
  EXPECT_NEAR(e, r.energy, 1e-8);
}

TEST(SpinOrbitals, AntisymmetryProperties) {
  const Molecule mol = Molecule::h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult r = rhf(mol, basis, ints);
  const MoIntegrals mo =
      transform_to_mo(ints, r.coefficients, r.nuclear_repulsion);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  for (std::size_t p = 0; p < so.n_spin; ++p)
    for (std::size_t q = 0; q < so.n_spin; ++q)
      for (std::size_t rr = 0; rr < so.n_spin; ++rr)
        for (std::size_t s = 0; s < so.n_spin; ++s) {
          EXPECT_NEAR(so.v(p, q, rr, s), -so.v(q, p, rr, s), 1e-12);
          EXPECT_NEAR(so.v(p, q, rr, s), -so.v(p, q, s, rr), 1e-12);
        }
}

TEST(Lowdin, OrthogonalizerProperty) {
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const la::RMatrix x = lowdin_orthogonalizer(ints.overlap);
  const la::RMatrix xsx = la::matmul(la::matmul(x, ints.overlap, la::Op::kTrans), x);
  for (std::size_t i = 0; i < xsx.rows(); ++i)
    for (std::size_t j = 0; j < xsx.cols(); ++j)
      EXPECT_NEAR(xsx(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

}  // namespace
}  // namespace q2::chem
