// Golden-value regression tests for the chemistry stack sitting on the GEMM
// substrate: H2 and H4 RHF + UCCSD-VQE energies pinned to values captured
// from this code base (tolerances recorded alongside), plus the determinism
// contract that energies are bit-identical across thread counts.
//
// Tolerance notes: RHF and the LBFGS-driven VQE are fully deterministic, so
// the pins are tight (1e-8 Ha for RHF, 1e-6 Ha for VQE, which additionally
// leaves headroom for optimizer-iteration-count drift). Physical sanity is
// asserted independently against FCI at 2e-3 Ha (chemical accuracy ~1.6e-3).
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "vqe/vqe_driver.hpp"

namespace q2 {
namespace {

struct Solved {
  chem::ScfResult scf;
  chem::MoIntegrals mo;
};

Solved solve(const chem::Molecule& mol) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  Solved s;
  s.scf = chem::rhf(mol, basis, ints);
  EXPECT_TRUE(s.scf.converged);
  s.mo = chem::transform_to_mo(ints, s.scf.coefficients,
                               s.scf.nuclear_repulsion);
  return s;
}

// Captured goldens (Hartree), STO-3G. H2 at r = 1.4 bohr; H4 is the
// equally-spaced chain at 1.8 bohr.
constexpr double kH2RhfGolden = -1.1167143250625702;
constexpr double kH2VqeGolden = -1.1372759436170532;
constexpr double kH4RhfGolden = -2.1134288654645204;
constexpr double kH4VqeGolden = -2.1753567523990416;
constexpr double kRhfTol = 1e-8;
constexpr double kVqeTol = 1e-6;

TEST(GoldenEnergies, H2RhfAndUccsdVqe) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  EXPECT_NEAR(s.scf.energy, kH2RhfGolden, kRhfTol);

  vqe::VqeOptions opts;
  opts.optimizer.max_iterations = 60;
  const vqe::VqeResult v = vqe::run_vqe(s.mo, 1, 1, opts);
  EXPECT_TRUE(v.converged);
  EXPECT_NEAR(v.energy, kH2VqeGolden, kVqeTol);

  const chem::FciResult fci = chem::fci_ground_state(s.mo, 1, 1);
  EXPECT_NEAR(v.energy, fci.energy, 2e-3);
  EXPECT_GE(v.energy, fci.energy - 1e-9);  // variational bound
}

TEST(GoldenEnergies, H4ChainRhfAndUccsdVqe) {
  const Solved s = solve(chem::Molecule::hydrogen_chain(4, 1.8));
  EXPECT_NEAR(s.scf.energy, kH4RhfGolden, kRhfTol);

  vqe::VqeOptions opts;
  opts.optimizer.max_iterations = 80;
  const vqe::VqeResult v = vqe::run_vqe(s.mo, 2, 2, opts);
  EXPECT_NEAR(v.energy, kH4VqeGolden, kVqeTol);

  const chem::FciResult fci = chem::fci_ground_state(s.mo, 2, 2);
  EXPECT_NEAR(v.energy, fci.energy, 2e-3);
  EXPECT_GE(v.energy, fci.energy - 1e-9);
}

// Acceptance contract for the parallel GEMM + parallel energy sweeps: the
// VQE energy is bit-identical (exact double equality) at 1, 2, and 8
// threads. Runs under `ctest -L concurrency` for the sanitizer sweeps.
TEST(GoldenEnergies, H2VqeEnergyBitIdenticalAcrossThreadCounts) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  auto energy_at = [&](std::size_t threads) {
    vqe::VqeOptions opts;
    opts.optimizer.max_iterations = 30;
    opts.mps.parallel.n_threads = threads;
    return vqe::run_vqe(s.mo, 1, 1, opts).energy;
  };
  const double e1 = energy_at(1);
  EXPECT_EQ(e1, energy_at(2));
  EXPECT_EQ(e1, energy_at(8));
}

}  // namespace
}  // namespace q2
