// Density-matrix simulator tests: pure-state agreement with the state-vector
// oracle, trace/purity invariants, and the depolarizing channel.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "sim/densitymatrix.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {
namespace {

using pauli::PauliString;

TEST(DensityMatrix, InitialState) {
  DensityMatrix dm(2);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-14);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-14);
}

TEST(DensityMatrix, MatchesStateVectorOnPureCircuit) {
  Rng rng(3);
  for (int n : {2, 3, 5}) {
    const circ::Circuit c = circ::brickwork_circuit(n, 3, rng);
    DensityMatrix dm(n);
    dm.run(c);
    StateVector sv(n);
    sv.run(c);
    EXPECT_NEAR(dm.trace_real(), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
    for (int trial = 0; trial < 8; ++trial) {
      PauliString p{std::size_t(n)};
      for (int q = 0; q < n; ++q) p.set(std::size_t(q), pauli::P(rng.index(4)));
      EXPECT_LT(std::abs(dm.expectation(p) - sv.expectation(p)), 1e-10)
          << p.str();
    }
  }
}

TEST(DensityMatrix, CnotAndSingleGates) {
  DensityMatrix dm(2);
  dm.apply(circ::make_h(0));
  dm.apply(circ::make_cnot(0, 1));
  EXPECT_NEAR(dm.expectation(PauliString::parse(2, "Z0 Z1")).real(), 1.0, 1e-12);
  EXPECT_NEAR(dm.expectation(PauliString::parse(2, "X0 X1")).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, DepolarizingReducesPurity) {
  DensityMatrix dm(1);
  dm.apply(circ::make_h(0));
  EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
  dm.apply_depolarizing(0, 0.2);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-12);
  EXPECT_LT(dm.purity(), 1.0 - 1e-3);
  // <X> shrinks by the depolarizing factor 1 - 4p/3.
  EXPECT_NEAR(dm.expectation(PauliString::parse(1, "X0")).real(),
              1.0 - 4.0 * 0.2 / 3.0, 1e-10);
}

TEST(DensityMatrix, FullDepolarizationIsMaximallyMixed) {
  DensityMatrix dm(1);
  dm.apply(circ::make_h(0));
  dm.apply_depolarizing(0, 0.75);  // p = 3/4 erases the Bloch vector
  EXPECT_NEAR(dm.expectation(PauliString::parse(1, "X0")).real(), 0.0, 1e-10);
  EXPECT_NEAR(dm.expectation(PauliString::parse(1, "Z0")).real(), 0.0, 1e-10);
  EXPECT_NEAR(dm.purity(), 0.5, 1e-10);
}

TEST(DensityMatrix, NoiseOnEntangledPairDecaysCorrelations) {
  DensityMatrix dm(2);
  dm.apply(circ::make_h(0));
  dm.apply(circ::make_cnot(0, 1));
  dm.apply_depolarizing(0, 0.1);
  const double zz = dm.expectation(PauliString::parse(2, "Z0 Z1")).real();
  EXPECT_LT(zz, 1.0);
  EXPECT_GT(zz, 0.5);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-12);
}

TEST(DensityMatrix, MemoryWallEnforced) {
  EXPECT_THROW(DensityMatrix dm(15), Error);
}

}  // namespace
}  // namespace q2::sim
