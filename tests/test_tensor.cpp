// Tensor permutation/contraction tests, including agreement between the
// fused path and the unfused reference implementation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "linalg/tensor.hpp"

namespace q2::la {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.complex_normal();
  return t;
}

TEST(Tensor, AtMultiIndex) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = {5, 0};
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], cplx(5, 0));
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  const Tensor t = random_tensor({4, 6}, rng);
  const Tensor r = t.reshaped({2, 2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], r[i]);
  EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, PermuteRoundTrip) {
  Rng rng(2);
  const Tensor t = random_tensor({3, 4, 5}, rng);
  const Tensor p = t.permuted({2, 0, 1});
  EXPECT_EQ(p.shape(), (std::vector<std::size_t>{5, 3, 4}));
  const Tensor back = p.permuted({1, 2, 0});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], back[i]);
}

TEST(Tensor, PermuteElementwiseCheck) {
  Rng rng(3);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const Tensor p = t.permuted({1, 2, 0});  // p[j,k,i] = t[i,j,k]
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(p.at({j, k, i}), t.at({i, j, k}));
}

TEST(Tensor, ContractMatrixProduct) {
  Rng rng(4);
  const Tensor a = random_tensor({5, 7}, rng);
  const Tensor b = random_tensor({7, 3}, rng);
  const Tensor c = contract(a, {1}, b, {0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{5, 3}));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      cplx s{};
      for (std::size_t k = 0; k < 7; ++k) s += a.at({i, k}) * b.at({k, j});
      EXPECT_LT(std::abs(c.at({i, j}) - s), 1e-12);
    }
}

TEST(Tensor, ContractMultipleAxes) {
  Rng rng(5);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 3, 5}, rng);
  // contract axes (1,2) of a with (1,0) of b -> shape (2, 5)
  const Tensor c = contract(a, {1, 2}, b, {1, 0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{2, 5}));
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      cplx s{};
      for (std::size_t x = 0; x < 3; ++x)
        for (std::size_t y = 0; y < 4; ++y)
          s += a.at({i, x, y}) * b.at({y, x, j});
      EXPECT_LT(std::abs(c.at({i, j}) - s), 1e-12);
    }
}

TEST(Tensor, FusedMatchesReference) {
  Rng rng(6);
  const Tensor a = random_tensor({4, 5, 6}, rng);
  const Tensor b = random_tensor({6, 5, 3}, rng);
  const Tensor fast = contract(a, {1, 2}, b, {1, 0});
  const Tensor slow = contract_reference(a, {1, 2}, b, {1, 0});
  ASSERT_EQ(fast.shape(), slow.shape());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_LT(std::abs(fast[i] - slow[i]), 1e-10);
}

TEST(Tensor, FullContractionToScalar) {
  Rng rng(7);
  const Tensor a = random_tensor({3, 4}, rng);
  const Tensor c = contract(a, {0, 1}, a, {0, 1});
  ASSERT_EQ(c.size(), 1u);
  cplx s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
  EXPECT_LT(std::abs(c[0] - s), 1e-10);
}

TEST(Tensor, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 5});
  EXPECT_THROW(contract(a, {1}, b, {0}), Error);
  EXPECT_THROW(contract(a, {0, 1}, b, {0}), Error);
  EXPECT_THROW(contract(a, {7}, b, {0}), Error);
}

// One random contraction instance: ranks 2-4, dims 1-5, a random number of
// contracted axis pairs in a random axis order.
struct RandomContraction {
  Tensor a, b;
  std::vector<std::size_t> axes_a, axes_b;
};

RandomContraction make_random_contraction(Rng& rng) {
  RandomContraction rc;
  const std::size_t rank_a = 2 + rng.index(3), rank_b = 2 + rng.index(3);
  const std::size_t n_contracted = 1 + rng.index(std::min(rank_a, rank_b) - 1);

  std::vector<std::size_t> shape_a(rank_a), shape_b(rank_b);
  for (auto& d : shape_a) d = 1 + rng.index(5);
  for (auto& d : shape_b) d = 1 + rng.index(5);

  // Pick distinct axes on each side, in shuffled order, and force the paired
  // dimensions to agree.
  std::vector<std::size_t> all_a(rank_a), all_b(rank_b);
  for (std::size_t i = 0; i < rank_a; ++i) all_a[i] = i;
  for (std::size_t i = 0; i < rank_b; ++i) all_b[i] = i;
  std::shuffle(all_a.begin(), all_a.end(), rng.engine());
  std::shuffle(all_b.begin(), all_b.end(), rng.engine());
  rc.axes_a.assign(all_a.begin(), all_a.begin() + n_contracted);
  rc.axes_b.assign(all_b.begin(), all_b.begin() + n_contracted);
  for (std::size_t i = 0; i < n_contracted; ++i)
    shape_b[rc.axes_b[i]] = shape_a[rc.axes_a[i]];

  rc.a = random_tensor(shape_a, rng);
  rc.b = random_tensor(shape_b, rng);
  return rc;
}

// Property test behind the fused-packing rewrite: 200 seeded random
// shape/permutation instances, fused contract == unfused contract_reference.
TEST(Tensor, ContractMatchesReferenceRandomSweep) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const RandomContraction rc = make_random_contraction(rng);
    const Tensor fast = contract(rc.a, rc.axes_a, rc.b, rc.axes_b);
    const Tensor slow = contract_reference(rc.a, rc.axes_a, rc.b, rc.axes_b);
    ASSERT_EQ(fast.shape(), slow.shape()) << "trial " << trial;
    for (std::size_t i = 0; i < fast.size(); ++i)
      ASSERT_LT(std::abs(fast[i] - slow[i]), 1e-10) << "trial " << trial;
  }
}

// The fused path fans out over the thread pool; results must be
// bit-identical at 1, 2, and 8 threads (run under `ctest -L concurrency`).
TEST(Tensor, ContractBitIdenticalAcrossThreadCounts) {
  Rng rng(43);
  const Tensor a = random_tensor({6, 5, 4, 3}, rng);
  const Tensor b = random_tensor({4, 6, 7}, rng);
  par::ParallelOptions serial;
  serial.n_threads = 1;
  const Tensor base = contract(a, {2, 0}, b, {0, 1}, serial);
  for (const std::size_t t : {2u, 8u}) {
    par::ParallelOptions opts;
    opts.n_threads = t;
    const Tensor c = contract(a, {2, 0}, b, {0, 1}, opts);
    ASSERT_EQ(c.shape(), base.shape());
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], base[i]) << "threads=" << t;
  }
}

TEST(Tensor, ContractSizeOneAndDegenerateDims) {
  Rng rng(44);
  const Tensor a = random_tensor({1, 3, 1}, rng);
  const Tensor b = random_tensor({3, 1, 2}, rng);
  const Tensor c = contract(a, {1}, b, {0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  const Tensor ref = contract_reference(a, {1}, b, {0});
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_LT(std::abs(c[i] - ref[i]), 1e-12);
}

}  // namespace
}  // namespace q2::la
