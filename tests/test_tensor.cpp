// Tensor permutation/contraction tests, including agreement between the
// fused path and the unfused reference implementation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/tensor.hpp"

namespace q2::la {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.complex_normal();
  return t;
}

TEST(Tensor, AtMultiIndex) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = {5, 0};
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], cplx(5, 0));
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  const Tensor t = random_tensor({4, 6}, rng);
  const Tensor r = t.reshaped({2, 2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], r[i]);
  EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, PermuteRoundTrip) {
  Rng rng(2);
  const Tensor t = random_tensor({3, 4, 5}, rng);
  const Tensor p = t.permuted({2, 0, 1});
  EXPECT_EQ(p.shape(), (std::vector<std::size_t>{5, 3, 4}));
  const Tensor back = p.permuted({1, 2, 0});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], back[i]);
}

TEST(Tensor, PermuteElementwiseCheck) {
  Rng rng(3);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const Tensor p = t.permuted({1, 2, 0});  // p[j,k,i] = t[i,j,k]
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(p.at({j, k, i}), t.at({i, j, k}));
}

TEST(Tensor, ContractMatrixProduct) {
  Rng rng(4);
  const Tensor a = random_tensor({5, 7}, rng);
  const Tensor b = random_tensor({7, 3}, rng);
  const Tensor c = contract(a, {1}, b, {0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{5, 3}));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      cplx s{};
      for (std::size_t k = 0; k < 7; ++k) s += a.at({i, k}) * b.at({k, j});
      EXPECT_LT(std::abs(c.at({i, j}) - s), 1e-12);
    }
}

TEST(Tensor, ContractMultipleAxes) {
  Rng rng(5);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 3, 5}, rng);
  // contract axes (1,2) of a with (1,0) of b -> shape (2, 5)
  const Tensor c = contract(a, {1, 2}, b, {1, 0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{2, 5}));
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      cplx s{};
      for (std::size_t x = 0; x < 3; ++x)
        for (std::size_t y = 0; y < 4; ++y)
          s += a.at({i, x, y}) * b.at({y, x, j});
      EXPECT_LT(std::abs(c.at({i, j}) - s), 1e-12);
    }
}

TEST(Tensor, FusedMatchesReference) {
  Rng rng(6);
  const Tensor a = random_tensor({4, 5, 6}, rng);
  const Tensor b = random_tensor({6, 5, 3}, rng);
  const Tensor fast = contract(a, {1, 2}, b, {1, 0});
  const Tensor slow = contract_reference(a, {1, 2}, b, {1, 0});
  ASSERT_EQ(fast.shape(), slow.shape());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_LT(std::abs(fast[i] - slow[i]), 1e-10);
}

TEST(Tensor, FullContractionToScalar) {
  Rng rng(7);
  const Tensor a = random_tensor({3, 4}, rng);
  const Tensor c = contract(a, {0, 1}, a, {0, 1});
  ASSERT_EQ(c.size(), 1u);
  cplx s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
  EXPECT_LT(std::abs(c[0] - s), 1e-10);
}

TEST(Tensor, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 5});
  EXPECT_THROW(contract(a, {1}, b, {0}), Error);
  EXPECT_THROW(contract(a, {0, 1}, b, {0}), Error);
  EXPECT_THROW(contract(a, {7}, b, {0}), Error);
}

}  // namespace
}  // namespace q2::la
