// Thread-scaling regression floor for the packed GEMM (the flat-scaling bug
// fixed by the 2-D tile decomposition): a 384^3 complex product must get at
// least 1.8x faster going 1 -> 2 threads on hosts with >= 4 hardware
// threads. Wall-clock floors are meaningless on starved runners (CI
// containers pinned to one core), so the test skips with a note there —
// bench_kernels' recorded scaling metrics plus tools/bench_diff carry the
// trend on such hosts instead.
//
// The bit-identity check runs everywhere: whatever the speedup, thread
// counts must never change a single bit of the product.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <thread>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"

namespace q2::la {
namespace {

CMatrix random_cmatrix(std::size_t r, std::size_t c, Rng& rng) {
  CMatrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return m;
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

TEST(KernelScaling, GemmTwoThreadSpeedupFloor) {
  constexpr std::size_t kN = 384;
  Rng rng(42);
  const CMatrix a = random_cmatrix(kN, kN, rng);
  const CMatrix b = random_cmatrix(kN, kN, rng);

  auto run_at = [&](std::size_t threads, CMatrix& out) {
    par::ParallelOptions opts;
    opts.n_threads = threads;
    return best_of(3, [&] {
      out = matmul(a, b, Op::kNone, Op::kNone, opts);
    });
  };

  CMatrix c1, c2, c4;
  const double t1 = run_at(1, c1);
  const double t2 = run_at(2, c2);
  run_at(4, c4);

  // Determinism is unconditional — asserted before any skip.
  ASSERT_EQ(c1.size(), c2.size());
  EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(cplx)), 0)
      << "1 vs 2 threads not bit-identical";
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(cplx)), 0)
      << "1 vs 4 threads not bit-identical";

  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "host reports " << cores
                 << " hardware thread(s); the 1.8x two-thread scaling floor "
                    "needs >= 4 to be meaningful";
  }
  const double scaling = t1 / t2;
  EXPECT_GE(scaling, 1.8)
      << "384^3 complex GEMM 1->2 thread scaling " << scaling
      << "x below the 1.8x floor (t1=" << t1 << "s, t2=" << t2 << "s)";
}

}  // namespace
}  // namespace q2::la
