// Span-aggregation profile: call-tree construction from nested and threaded
// spans, self-vs-total invariants, exactness and thread-count invariance of
// the GEMM/SVD FLOP accounting, cross-thread path adoption through the pool,
// and the JSON export round-tripped through the shared obs::Json parser.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/mps.hpp"
#include "circuit/builder.hpp"

namespace q2 {
namespace {

// Profiling shares the OBS_SPAN hook with tracing, so compiling spans out
// removes the profile's data source too.
#ifdef Q2_OBS_DISABLE_TRACING
constexpr bool kSpansCompiledOut = true;
#else
constexpr bool kSpansCompiledOut = false;
#endif

class ProfileTest : public testing::Test {
 protected:
  void SetUp() override {
    if (kSpansCompiledOut)
      GTEST_SKIP() << "spans compiled out (Q2_OBS_DISABLE_TRACING)";
    obs::set_profiling(true);
    obs::clear_profile();
  }
  void TearDown() override {
    obs::set_profiling(false);
    obs::clear_profile();
  }
};

const obs::ProfileNode* find_node(const std::vector<obs::ProfileNode>& nodes,
                                  const std::string& name) {
  for (const auto& n : nodes)
    if (n.name == name) return &n;
  return nullptr;
}

la::CMatrix random_matrix(std::size_t m, std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  return a;
}

TEST_F(ProfileTest, NestedSpansBuildACallTree) {
  {
    OBS_SPAN("test/outer");
    { OBS_SPAN("test/inner"); }
    { OBS_SPAN("test/inner"); }
  }
  {
    OBS_SPAN("test/outer");
  }
  const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
  const obs::ProfileNode* outer = find_node(nodes, "test/outer");
  const obs::ProfileNode* inner = find_node(nodes, "test/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->path, "test/outer");
  EXPECT_EQ(inner->path, "test/outer;test/inner");
  // Pre-order: the parent precedes its children in the snapshot.
  EXPECT_LT(outer - nodes.data(), inner - nodes.data());
  // Single-thread nesting: the children fit inside the parent, so self time
  // is non-negative and bounded by total.
  EXPECT_GE(outer->total_us, inner->total_us);
  EXPECT_GE(outer->self_us, 0.0);
  EXPECT_LE(outer->self_us, outer->total_us);
  EXPECT_GE(inner->min_us, 0.0);
  EXPECT_GE(inner->max_us, inner->min_us);
}

TEST_F(ProfileTest, ThreadTagsAppearInTheByThreadBreakdown) {
  {
    OBS_SPAN("test/tagged");
  }
  std::thread t([] {
    obs::set_thread_tag("sidecar");
    OBS_SPAN("test/tagged");
  });
  t.join();
  const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
  const obs::ProfileNode* tagged = find_node(nodes, "test/tagged");
  ASSERT_NE(tagged, nullptr);
  EXPECT_EQ(tagged->count, 2u);
  ASSERT_EQ(tagged->by_thread.size(), 2u);
  bool has_sidecar = false;
  for (const auto& [tag, us] : tagged->by_thread) {
    if (tag == "sidecar") has_sidecar = true;
    EXPECT_GE(us, 0.0);
  }
  EXPECT_TRUE(has_sidecar);
}

TEST_F(ProfileTest, GemmFlopCountIsExactAndThreadCountInvariant) {
  // 32x17 * 17x9 complex: 8*m*k*n flops, (mk + kn + 2mn) * 16 bytes — the
  // analytic model from obs/workload.hpp, charged before the dispatch.
  const std::size_t m = 32, k = 17, n = 9;
  const la::CMatrix a = random_matrix(m, k, 1), b = random_matrix(k, n, 2);
  const std::uint64_t want_flops = 8ull * m * k * n;
  const std::uint64_t want_bytes = (m * k + k * n + 2 * m * n) * 16ull;

  std::vector<std::uint64_t> flops_by_threads, bytes_by_threads;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    obs::clear_profile();
    par::ParallelOptions opts;
    opts.n_threads = threads;
    (void)la::matmul(a, b, la::Op::kNone, la::Op::kNone, opts);
    const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
    const obs::ProfileNode* gemm = find_node(nodes, "la/gemm");
    ASSERT_NE(gemm, nullptr) << "threads=" << threads;
    EXPECT_EQ(gemm->count, 1u);
    flops_by_threads.push_back(gemm->self_flops);
    bytes_by_threads.push_back(gemm->self_bytes);
  }
  for (std::size_t i = 0; i < flops_by_threads.size(); ++i) {
    EXPECT_EQ(flops_by_threads[i], want_flops) << "i=" << i;
    EXPECT_EQ(bytes_by_threads[i], want_bytes) << "i=" << i;
  }
}

TEST_F(ProfileTest, SvdWorkAccountingIsThreadCountInvariant) {
  const std::size_t n = 64;
  const la::CMatrix a = random_matrix(n, n, 7);
  std::vector<std::uint64_t> flops_by_threads, bytes_by_threads;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    obs::clear_profile();
    par::ParallelOptions opts;
    opts.n_threads = threads;
    la::SvdWorkspace ws;
    (void)la::svd_truncated_ws(ws, a.data(), n, n, n, nullptr,
                               /*max_bond=*/16, 0.0, /*want_u=*/true, opts);
    const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
    const obs::ProfileNode* svd = find_node(nodes, "la/svd");
    ASSERT_NE(svd, nullptr) << "threads=" << threads;
    EXPECT_GT(svd->flops, 0u);
    EXPECT_GT(svd->bytes, 0u);
    flops_by_threads.push_back(svd->flops);
    bytes_by_threads.push_back(svd->bytes);
  }
  // The rotation count comes from the deterministic tournament schedule, so
  // the charge is bit-identical for every thread count.
  EXPECT_EQ(flops_by_threads[0], flops_by_threads[1]);
  EXPECT_EQ(flops_by_threads[0], flops_by_threads[2]);
  EXPECT_EQ(bytes_by_threads[0], bytes_by_threads[1]);
  EXPECT_EQ(bytes_by_threads[0], bytes_by_threads[2]);
}

TEST_F(ProfileTest, MpsTwoSiteNodeAccumulatesSubtreeWork) {
  Rng rng(11);
  sim::MpsOptions opts;
  opts.max_bond = 8;
  sim::Mps mps(8, opts);
  mps.run(circ::brickwork_circuit(8, 2, rng));
  const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
  const obs::ProfileNode* two_site = find_node(nodes, "mps/two_site");
  ASSERT_NE(two_site, nullptr);
  EXPECT_GT(two_site->count, 0u);
  // flops/bytes are cumulative over the subtree: the two-site update charges
  // the O-application itself and inherits its contraction/SVD children, so a
  // roofline line at the phase level is meaningful.
  EXPECT_GT(two_site->flops, two_site->self_flops);
  EXPECT_GT(two_site->bytes, 0u);
  ASSERT_NE(find_node(nodes, "mps/contract"), nullptr);
  ASSERT_NE(find_node(nodes, "mps/svd"), nullptr);
}

TEST_F(ProfileTest, PoolWorkersAdoptTheDispatchingSpanPath) {
  par::ParallelOptions opts;
  opts.n_threads = 4;
  opts.grain = 1;
  {
    OBS_SPAN("test/fanout");
    par::parallel_for(opts, 0, 8, [](std::size_t) {
      OBS_SPAN("test/unit");
    });
  }
  const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
  const obs::ProfileNode* unit = find_node(nodes, "test/unit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->count, 8u);
  // Worker-recorded spans merge under the dispatching span's path, not under
  // per-worker roots: node identity is independent of which thread ran what.
  EXPECT_EQ(unit->path.rfind("test/fanout;", 0), 0u) << unit->path;
}

TEST_F(ProfileTest, JsonExportRoundTripsThroughTheSharedParser) {
  {
    OBS_SPAN("test/json_outer");
    { OBS_SPAN("test/json_inner"); }
  }
  const la::CMatrix a = random_matrix(16, 16, 3), b = random_matrix(16, 16, 4);
  (void)la::matmul(a, b);

  const std::vector<obs::ProfileNode> snapshot = obs::profile_snapshot();
  const obs::Json root = obs::Json::parse(obs::profile_json());
  const std::vector<obs::Json>& nodes = root.at("profile").array;
  ASSERT_EQ(nodes.size(), snapshot.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].at("name").string, snapshot[i].name);
    EXPECT_EQ(nodes[i].at("path").string, snapshot[i].path);
    EXPECT_EQ(nodes[i].at("count").number, double(snapshot[i].count));
    EXPECT_EQ(nodes[i].at("flops").number, double(snapshot[i].flops));
    EXPECT_TRUE(nodes[i].has("gflops"));
    EXPECT_TRUE(nodes[i].has("intensity"));
    EXPECT_EQ(nodes[i].at("by_thread").type, obs::Json::kObject);
  }
  const obs::Json* gemm = nullptr;
  for (const obs::Json& n : nodes)
    if (n.at("name").string == "la/gemm") gemm = &n;
  ASSERT_NE(gemm, nullptr);
  EXPECT_GT(gemm->at("flops").number, 0.0);
  EXPECT_GT(gemm->at("intensity").number, 0.0);
  // The parallel-attribution block travels with the tree.
  EXPECT_EQ(root.at("parallel").type, obs::Json::kObject);
  EXPECT_TRUE(root.has("dropped_spans"));
  // And the text table mentions every exported span.
  const std::string table = obs::profile_text();
  EXPECT_NE(table.find("la/gemm"), std::string::npos);
  EXPECT_NE(table.find("test/json_inner"), std::string::npos);
}

}  // namespace
}  // namespace q2
