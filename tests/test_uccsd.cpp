// UCCSD ansatz tests: particle-number conservation, parameter binding,
// excitation bookkeeping, distance truncation, and Trotter-step scaling.
#include <gtest/gtest.h>

#include "pauli/jordan_wigner.hpp"
#include "sim/statevector.hpp"
#include "vqe/uccsd.hpp"

namespace q2::vqe {
namespace {

TEST(Uccsd, ExcitationCountsForH2) {
  // 2 spatial orbitals, 2 electrons: 2 spin-conserving singles + 1 double
  // (both electrons 0a0b -> 1a1b); aa/bb doubles are impossible.
  const UccsdAnsatz a = build_uccsd(2, 1, 1);
  EXPECT_EQ(a.n_qubits, 4);
  EXPECT_EQ(a.n_parameters, 3u);
}

TEST(Uccsd, SinglesOnlyAndDoublesOnly) {
  UccsdOptions singles;
  singles.include_doubles = false;
  UccsdOptions doubles;
  doubles.include_singles = false;
  const UccsdAnsatz s = build_uccsd(3, 1, 1, singles);
  const UccsdAnsatz d = build_uccsd(3, 1, 1, doubles);
  const UccsdAnsatz both = build_uccsd(3, 1, 1);
  EXPECT_EQ(s.n_parameters + d.n_parameters, both.n_parameters);
  EXPECT_GT(s.n_parameters, 0u);
  EXPECT_GT(d.n_parameters, 0u);
}

TEST(Uccsd, StatePreservesParticleNumber) {
  const UccsdAnsatz a = build_uccsd(3, 1, 1);
  const std::vector<double> params = initial_parameters(a, 0.3);
  sim::StateVector sv(a.n_qubits);
  sv.run(a.circuit, params);
  pauli::QubitOperator n_op(std::size_t(a.n_qubits));
  for (std::size_t q = 0; q < std::size_t(a.n_qubits); ++q)
    n_op += pauli::jw_number(std::size_t(a.n_qubits), q);
  EXPECT_NEAR(sv.expectation(n_op).real(), 2.0, 1e-10);
  // Variance of N is zero: the state stays in the 2-electron sector.
  const pauli::QubitOperator n2 = n_op * n_op;
  EXPECT_NEAR(sv.expectation(n2).real(), 4.0, 1e-9);
}

TEST(Uccsd, ZeroParametersGiveHartreeFock) {
  const UccsdAnsatz a = build_uccsd(3, 1, 1);
  const std::vector<double> zeros(a.n_parameters, 0.0);
  sim::StateVector sv(a.n_qubits);
  sv.run(a.circuit, zeros);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b000011]), 1.0, 1e-10);
}

TEST(Uccsd, CircuitIsUnitaryNormPreserving) {
  const UccsdAnsatz a = build_uccsd(2, 1, 1);
  const std::vector<double> params = initial_parameters(a, 0.7);
  sim::StateVector sv(a.n_qubits);
  sv.run(a.circuit, params);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-11);
}

TEST(Uccsd, DistanceWindowTruncatesDoubles) {
  const UccsdAnsatz full = build_uccsd(6, 3, 3);
  UccsdOptions opts;
  opts.distance_window = 2;
  const UccsdAnsatz local = build_uccsd(6, 3, 3, opts);
  EXPECT_LT(local.n_parameters, full.n_parameters);
  EXPECT_GT(local.n_parameters, 0u);
  for (const auto& ex : local.excitations) {
    int lo = 1 << 30, hi = -1;
    for (auto s : ex.from) {
      lo = std::min(lo, int(s / 2));
      hi = std::max(hi, int(s / 2));
    }
    for (auto s : ex.to) {
      lo = std::min(lo, int(s / 2));
      hi = std::max(hi, int(s / 2));
    }
    EXPECT_LE(hi - lo, 2);
  }
}

TEST(Uccsd, TrotterStepsPreserveSmallAngleState) {
  // For small parameters, 1-step and 2-step Trotterizations agree to O(t^2).
  const UccsdAnsatz one = build_uccsd(2, 1, 1);
  UccsdOptions two_opts;
  two_opts.trotter_steps = 2;
  const UccsdAnsatz two = build_uccsd(2, 1, 1, two_opts);
  const std::vector<double> params(one.n_parameters, 0.02);
  sim::StateVector a(one.n_qubits), b(two.n_qubits);
  a.run(one.circuit, params);
  b.run(two.circuit, params);
  cplx ov{};
  for (std::size_t i = 0; i < a.dim(); ++i)
    ov += std::conj(a.amplitudes()[i]) * b.amplitudes()[i];
  EXPECT_GT(std::abs(ov), 1.0 - 1e-6);
}

TEST(Uccsd, GateCountGrowsWithSystem) {
  const UccsdAnsatz small = build_uccsd(2, 1, 1);
  const UccsdAnsatz large = build_uccsd(4, 2, 2);
  EXPECT_GT(large.circuit.size(), small.circuit.size());
  EXPECT_GT(large.circuit.two_qubit_gate_count(), 0u);
}

TEST(Uccsd, OpenShellRejected) {
  EXPECT_THROW(build_uccsd(3, 2, 1), Error);
}

}  // namespace
}  // namespace q2::vqe
