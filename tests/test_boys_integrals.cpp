// Integral-engine tests: Boys function identities, analytic s-Gaussian
// results, Szabo-Ostlund H2/STO-3G anchor values, and permutational
// symmetries of the ERI tensor.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/boys.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"

namespace q2::chem {
namespace {

TEST(Boys, ZeroArgument) {
  const auto f = boys(4, 0.0);
  for (int n = 0; n <= 4; ++n)
    EXPECT_NEAR(f[std::size_t(n)], 1.0 / (2 * n + 1), 1e-14);
}

TEST(Boys, ClosedFormF0) {
  // F_0(x) = sqrt(pi/x)/2 * erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0, 40.0}) {
    const auto f = boys(0, x);
    const double expect = 0.5 * std::sqrt(kPi / x) * std::erf(std::sqrt(x));
    EXPECT_NEAR(f[0], expect, 1e-12) << "x=" << x;
  }
}

TEST(Boys, DownwardRecursionIdentity) {
  // F_{n-1}(x) = (2x F_n(x) + e^{-x}) / (2n - 1) everywhere.
  for (double x : {0.2, 1.7, 8.0, 25.0, 50.0}) {
    const auto f = boys(6, x);
    for (int n = 6; n >= 1; --n) {
      EXPECT_NEAR(f[std::size_t(n - 1)],
                  (2 * x * f[std::size_t(n)] + std::exp(-x)) / (2 * n - 1),
                  1e-11)
          << "x=" << x << " n=" << n;
    }
  }
}

TEST(Boys, MonotoneInOrderAndArgument) {
  const auto f1 = boys(5, 1.0);
  for (int n = 1; n <= 5; ++n)
    EXPECT_LT(f1[std::size_t(n)], f1[std::size_t(n - 1)]);
  const auto f2 = boys(5, 2.0);
  for (int n = 0; n <= 5; ++n) EXPECT_LT(f2[std::size_t(n)], f1[std::size_t(n)]);
}

TEST(BasisSet, FunctionsAreNormalized) {
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  EXPECT_EQ(basis.size(), 7u);  // O: 1s 2s 2p(x3); H x2
  for (std::size_t i = 0; i < basis.size(); ++i)
    EXPECT_NEAR(overlap_integral(basis[i], basis[i]), 1.0, 1e-10) << i;
}

TEST(BasisSet, AtomAssignment) {
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  EXPECT_EQ(basis.functions_on_atom(0).size(), 5u);  // oxygen
  EXPECT_EQ(basis.functions_on_atom(1).size(), 1u);
  EXPECT_EQ(basis.functions_on_atom(2).size(), 1u);
}

TEST(BasisSet, SixThirtyOneGHydrogen) {
  const Molecule mol = Molecule::h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "6-31g");
  EXPECT_EQ(basis.size(), 4u);  // two s shells per H
  for (std::size_t i = 0; i < basis.size(); ++i)
    EXPECT_NEAR(overlap_integral(basis[i], basis[i]), 1.0, 1e-10);
}

TEST(Integrals, SingleGaussianAnalyticKinetic) {
  // For a normalized 1s Gaussian with exponent a: <T> = 3a/2.
  BasisFunction g;
  g.lmn = {0, 0, 0};
  g.center = {0, 0, 0};
  g.exponents = {0.8};
  g.coefficients = {primitive_norm(0.8, g.lmn)};
  EXPECT_NEAR(kinetic_integral(g, g), 3.0 * 0.8 / 2.0, 1e-12);
}

TEST(Integrals, NuclearAttractionOnCenter) {
  // <1s|1/r|1s> = 2 sqrt(a / pi) * ... for normalized s Gaussian:
  // V = -Z * 2 * sqrt(2a/pi) ... use the closed form 2*sqrt(a/(pi/2))/...
  // <1/r> for N(a) e^{-a r^2} is 2 sqrt(a/pi) * sqrt(2)? Known result:
  // <1/r> = 2 sqrt(2a/pi). Validate numerically against that.
  const double a = 1.3;
  BasisFunction g;
  g.lmn = {0, 0, 0};
  g.center = {0, 0, 0};
  g.exponents = {a};
  g.coefficients = {primitive_norm(a, g.lmn)};
  const double v = nuclear_integral(g, g, {0, 0, 0}, 1);
  EXPECT_NEAR(v, -2.0 * std::sqrt(2.0 * a / kPi), 1e-10);
}

TEST(Integrals, SzaboOstlundH2Anchors) {
  // Szabo & Ostlund Table 3.5 (STO-3G, R = 1.4 a0) values.
  const Molecule mol = Molecule::h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  EXPECT_NEAR(overlap_integral(basis[0], basis[1]), 0.6593, 2e-4);
  EXPECT_NEAR(kinetic_integral(basis[0], basis[0]), 0.7600, 2e-4);
  EXPECT_NEAR(kinetic_integral(basis[0], basis[1]), 0.2365, 2e-4);
  EXPECT_NEAR(eri_integral(basis[0], basis[0], basis[0], basis[0]), 0.7746,
              2e-4);
  EXPECT_NEAR(eri_integral(basis[0], basis[0], basis[1], basis[1]), 0.5697,
              2e-4);
  EXPECT_NEAR(eri_integral(basis[1], basis[0], basis[0], basis[0]), 0.4441,
              2e-4);
  EXPECT_NEAR(eri_integral(basis[1], basis[0], basis[1], basis[0]), 0.2970,
              2e-4);
}

TEST(Integrals, EriEightFoldSymmetry) {
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  // Spot-check (pq|rs) = (qp|rs) = (rs|pq) = ... on p-function quartets.
  const std::size_t p = 2, q = 4, r = 5, s = 1;  // includes p orbitals
  const double base = eri_integral(basis[p], basis[q], basis[r], basis[s]);
  EXPECT_NEAR(eri_integral(basis[q], basis[p], basis[r], basis[s]), base, 1e-11);
  EXPECT_NEAR(eri_integral(basis[p], basis[q], basis[s], basis[r]), base, 1e-11);
  EXPECT_NEAR(eri_integral(basis[r], basis[s], basis[p], basis[q]), base, 1e-11);
}

TEST(Integrals, TablesMatchDirectEvaluation) {
  const Molecule mol = Molecule::h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables t = compute_integrals(mol, basis);
  EXPECT_NEAR(t.overlap(0, 1), overlap_integral(basis[0], basis[1]), 1e-12);
  EXPECT_NEAR(t.kinetic(1, 1), kinetic_integral(basis[1], basis[1]), 1e-12);
  EXPECT_NEAR(t.eri(0, 1, 1, 0),
              eri_integral(basis[0], basis[1], basis[1], basis[0]), 1e-12);
  // Nuclear table sums attraction to both nuclei.
  double v = 0;
  for (const Atom& a : mol.atoms())
    v += nuclear_integral(basis[0], basis[0], a.xyz, a.z);
  EXPECT_NEAR(t.nuclear(0, 0), v, 1e-12);
}

TEST(Integrals, PFunctionOverlapOrthogonality) {
  // px and py on the same centre are orthogonal; px-px normalized.
  const Molecule mol = Molecule::h2o();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  // O p-functions are indices 2,3,4.
  EXPECT_NEAR(overlap_integral(basis[2], basis[3]), 0.0, 1e-12);
  EXPECT_NEAR(overlap_integral(basis[2], basis[4]), 0.0, 1e-12);
  EXPECT_NEAR(overlap_integral(basis[3], basis[3]), 1.0, 1e-10);
}

TEST(Molecule, GeometryFactories) {
  const Molecule ring = Molecule::hydrogen_ring(10, 1.8);
  EXPECT_EQ(ring.n_atoms(), 10u);
  // Nearest-neighbour distance equals the requested bond length.
  double r2 = 0;
  for (int d = 0; d < 3; ++d) {
    const double dx = ring.atoms()[0].xyz[d] - ring.atoms()[1].xyz[d];
    r2 += dx * dx;
  }
  EXPECT_NEAR(std::sqrt(r2), 1.8, 1e-10);
  EXPECT_EQ(ring.n_electrons(), 10);

  const Molecule chain = Molecule::hydrogen_chain(4, 1.4);
  EXPECT_NEAR(chain.nuclear_repulsion(),
              1 / 1.4 + 1 / 1.4 + 1 / 1.4 + 1 / 2.8 + 1 / 2.8 + 1 / 4.2, 1e-12);

  const Molecule c6 = Molecule::carbon_ring(6, 2.6, 2.4);
  EXPECT_EQ(c6.n_atoms(), 6u);
  EXPECT_EQ(c6.n_electrons(), 36);
}

}  // namespace
}  // namespace q2::chem
