// Linear-algebra substrate tests: GEMM against hand values and naive
// reference, SVD/QR/eigh property tests over parameterized shapes, Davidson
// against dense diagonalization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/davidson.hpp"
#include "linalg/eigh.hpp"
#include "linalg/gemm.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace q2::la {
namespace {

CMatrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  CMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.complex_normal();
  return a;
}

double reconstruction_error(const CMatrix& a, const SvdResult& f) {
  CMatrix us = f.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= f.s[j];
  const CMatrix rec = matmul(us, f.vh);
  return (rec - a).frobenius_norm();
}

double orthonormality_error(const CMatrix& q) {
  const CMatrix g = matmul(q, q, Op::kAdjoint, Op::kNone);
  CMatrix eye = CMatrix::identity(q.cols());
  return (g - eye).frobenius_norm();
}

TEST(Matrix, InitializerAndArithmetic) {
  RMatrix a{{1, 2}, {3, 4}};
  RMatrix b{{5, 6}, {7, 8}};
  RMatrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 6);
  EXPECT_DOUBLE_EQ(c(1, 1), 12);
  c -= a;
  EXPECT_DOUBLE_EQ(c(0, 1), 6);
  RMatrix d = 2.0 * a;
  EXPECT_DOUBLE_EQ(d(1, 0), 6);
}

TEST(Matrix, AdjointConjugates) {
  CMatrix a(1, 2);
  a(0, 0) = {1, 2};
  a(0, 1) = {3, -4};
  const CMatrix ah = a.adjoint();
  EXPECT_EQ(ah.rows(), 2u);
  EXPECT_EQ(ah(0, 0), cplx(1, -2));
  EXPECT_EQ(ah(1, 0), cplx(3, 4));
}

TEST(Matrix, ShapeMismatchThrows) {
  RMatrix a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(Gemm, HandComputedProduct) {
  RMatrix a{{1, 2}, {3, 4}};
  RMatrix b{{5, 6}, {7, 8}};
  const RMatrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Gemm, MatchesNaiveKernel) {
  Rng rng(11);
  const CMatrix a = random_matrix(17, 23, rng);
  const CMatrix b = random_matrix(23, 9, rng);
  const CMatrix fast = matmul(a, b);
  CMatrix slow;
  gemm_naive(a, b, slow);
  EXPECT_LT((fast - slow).frobenius_norm(), 1e-10);
}

TEST(Gemm, TransposeAndAdjointOps) {
  Rng rng(12);
  const CMatrix a = random_matrix(6, 4, rng);
  const CMatrix b = random_matrix(6, 5, rng);
  const CMatrix c1 = matmul(a, b, Op::kAdjoint, Op::kNone);  // A^H B
  const CMatrix c2 = matmul(a.adjoint(), b);
  EXPECT_LT((c1 - c2).frobenius_norm(), 1e-12);
  const CMatrix d1 = matmul(a, b, Op::kTrans, Op::kNone);
  const CMatrix d2 = matmul(a.transposed(), b);
  EXPECT_LT((d1 - d2).frobenius_norm(), 1e-12);
}

TEST(Gemm, AccumulatesWithBeta) {
  Rng rng(13);
  const CMatrix a = random_matrix(4, 4, rng);
  const CMatrix b = random_matrix(4, 4, rng);
  CMatrix c = random_matrix(4, 4, rng);
  const CMatrix c0 = c;
  gemm(cplx{2, 0}, a, Op::kNone, b, Op::kNone, cplx{1, 0}, c);
  const CMatrix expect = c0 + 2.0 * matmul(a, b);
  EXPECT_LT((c - expect).frobenius_norm(), 1e-10);
}

TEST(Gemm, MatvecAgainstMatmul) {
  Rng rng(14);
  const CMatrix a = random_matrix(7, 5, rng);
  const std::vector<cplx> x = rng.complex_vector(5);
  const auto y = matvec(a, x);
  for (std::size_t i = 0; i < 7; ++i) {
    cplx s{};
    for (std::size_t j = 0; j < 5; ++j) s += a(i, j) * x[j];
    EXPECT_LT(std::abs(y[i] - s), 1e-12);
  }
}

struct SvdShape {
  std::size_t m, n;
};

class SvdShapes : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdShapes, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(100 + m * 31 + n);
  const CMatrix a = random_matrix(m, n, rng);
  const SvdResult f = svd(a);
  const std::size_t k = std::min(m, n);
  ASSERT_EQ(f.s.size(), k);
  for (std::size_t i = 1; i < k; ++i) EXPECT_LE(f.s[i], f.s[i - 1] + 1e-12);
  EXPECT_LT(reconstruction_error(a, f), 1e-9 * (1 + a.frobenius_norm()));
  EXPECT_LT(orthonormality_error(f.u), 1e-9);
  EXPECT_LT(orthonormality_error(f.vh.adjoint()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(SvdShape{1, 1}, SvdShape{3, 3},
                                           SvdShape{8, 3}, SvdShape{3, 8},
                                           SvdShape{16, 16}, SvdShape{32, 7},
                                           SvdShape{7, 32}, SvdShape{64, 64}));

TEST(Svd, GolubKahanMatchesJacobi) {
  // Two independently-derived SVD algorithms must agree on the spectrum.
  Rng rng(77);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{9, 9},
                      {20, 12},
                      {12, 20},
                      {33, 33}}) {
    const CMatrix a = random_matrix(m, n, rng);
    const SvdResult gk = svd(a);
    const SvdResult jac = svd_jacobi(a);
    ASSERT_EQ(gk.s.size(), jac.s.size());
    for (std::size_t i = 0; i < gk.s.size(); ++i)
      EXPECT_NEAR(gk.s[i], jac.s[i], 1e-10 * (1 + jac.s[0])) << m << "x" << n;
  }
}

TEST(Svd, JacobiPropertyCheck) {
  Rng rng(78);
  const CMatrix a = random_matrix(14, 9, rng);
  const SvdResult f = svd_jacobi(a);
  EXPECT_LT(reconstruction_error(a, f), 1e-9 * (1 + a.frobenius_norm()));
  EXPECT_LT(orthonormality_error(f.u), 1e-9);
}

TEST(Svd, RankDeficientMatrixKeepsOrthonormalU) {
  Rng rng(21);
  // Rank-2 matrix in a 6x4 shape.
  const CMatrix u = random_matrix(6, 2, rng);
  const CMatrix v = random_matrix(2, 4, rng);
  const CMatrix a = matmul(u, v);
  const SvdResult f = svd(a);
  EXPECT_LT(orthonormality_error(f.u), 1e-8);
  EXPECT_NEAR(f.s[2], 0.0, 1e-8);
  EXPECT_NEAR(f.s[3], 0.0, 1e-8);
  EXPECT_LT(reconstruction_error(a, f), 1e-8);
}

TEST(Svd, JacobiZeroColumnsCompleteNullSpace) {
  // Regression for the rebuilt null-vector completion: several dead columns
  // force multiple completions against the same partial basis, the case the
  // old per-probe full-MGS implementation handled quadratically.
  Rng rng(23);
  CMatrix a = random_matrix(10, 6, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    a(i, 1) = 0.0;
    a(i, 4) = 0.0;
  }
  const SvdResult f = svd_jacobi(a);
  ASSERT_EQ(f.s.size(), 6u);
  EXPECT_EQ(f.s[4], 0.0);
  EXPECT_EQ(f.s[5], 0.0);
  EXPECT_LT(orthonormality_error(f.u), 1e-9);
  EXPECT_LT(orthonormality_error(f.vh.adjoint()), 1e-9);
  EXPECT_LT(reconstruction_error(a, f), 1e-9 * (1 + a.frobenius_norm()));
}

TEST(Svd, DiagonalMatrixSingularValues) {
  CMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = {0, -5.0};  // |.| = 5
  a(2, 2) = 1.0;
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 5.0, 1e-12);
  EXPECT_NEAR(f.s[1], 3.0, 1e-12);
  EXPECT_NEAR(f.s[2], 1.0, 1e-12);
}

TEST(SvdTruncated, TruncationErrorMatchesDroppedWeight) {
  Rng rng(22);
  const CMatrix a = random_matrix(12, 12, rng);
  const SvdResult full = svd(a);
  const TruncatedSvd t = svd_truncated(a, 5);
  ASSERT_EQ(t.s.size(), 5u);
  double dropped = 0, total = 0;
  for (std::size_t i = 0; i < full.s.size(); ++i) {
    total += full.s[i] * full.s[i];
    if (i >= 5) dropped += full.s[i] * full.s[i];
  }
  EXPECT_NEAR(t.truncation_error, dropped / total, 1e-10);
}

TEST(SvdTruncated, CutoffDropsSmallValues) {
  CMatrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 0.5;
  a(2, 2) = 1e-9;
  a(3, 3) = 1e-12;
  const TruncatedSvd t = svd_truncated(a, 4, 1e-6);
  EXPECT_EQ(t.s.size(), 2u);
}

TEST(SvdTruncated, DegenerateTieAtMaxRankKeepsStableOrder) {
  // Three singular values are exactly equal; max_rank splits the tie. The
  // stable descending sort must keep the tied columns in their original
  // order, so the kept set — and therefore the retained subspace — is
  // deterministic: column 1 stays, columns 2 and 3 go.
  CMatrix a(5, 5);
  a(0, 0) = 1.0;
  a(1, 1) = 0.5;
  a(2, 2) = 0.5;
  a(3, 3) = 0.5;
  a(4, 4) = 0.2;
  const TruncatedSvd t = svd_truncated(a, 2);
  ASSERT_EQ(t.s.size(), 2u);
  EXPECT_DOUBLE_EQ(t.s[0], 1.0);
  EXPECT_DOUBLE_EQ(t.s[1], 0.5);
  // The second kept right-singular vector is e_1, the first of the tied trio.
  EXPECT_NEAR(std::abs(t.vh(1, 1)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(t.vh(1, 2)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(t.vh(1, 3)), 0.0, 1e-12);
  // Dropped weight accounted exactly once: the two discarded 0.5s plus 0.2.
  const double total = 1.0 + 3 * 0.25 + 0.04;
  EXPECT_NEAR(t.truncation_error, (2 * 0.25 + 0.04) / total, 1e-12);
}

TEST(SvdTruncated, DegenerateValuesExactlyAtCutoffDropTogether) {
  // Values sitting exactly on the cutoff boundary are dropped (<=), and a
  // degenerate pair at the boundary drops as a unit — no half-kept ties.
  CMatrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 0.5;
  a(2, 2) = 0.5;
  a(3, 3) = 1e-9;
  const TruncatedSvd t = svd_truncated(a, 4, 0.5);
  ASSERT_EQ(t.s.size(), 1u);
  EXPECT_DOUBLE_EQ(t.s[0], 1.0);
  const double total = 1.0 + 0.5 + 1e-18;
  EXPECT_NEAR(t.truncation_error, (2 * 0.25 + 1e-18) / total, 1e-12);
}

TEST(Eigh, HermitianRandomMatrix) {
  Rng rng(31);
  CMatrix a = random_matrix(10, 10, rng);
  a = a + a.adjoint();  // Hermitian
  const EighResult eg = eigh(a);
  // A V = V diag(w)
  const CMatrix av = matmul(a, eg.vectors);
  CMatrix vw = eg.vectors;
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j) vw(i, j) *= eg.values[j];
  EXPECT_LT((av - vw).frobenius_norm(), 1e-8);
  EXPECT_LT(orthonormality_error(eg.vectors), 1e-9);
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_GE(eg.values[i], eg.values[i - 1] - 1e-12);
}

TEST(Eigh, RealSymmetricKnownValues) {
  RMatrix a{{2, 1}, {1, 2}};
  const EighResultReal eg = eigh(a);
  EXPECT_NEAR(eg.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eg.values[1], 3.0, 1e-12);
}

TEST(Eigh, TraceAndDeterminantInvariants) {
  Rng rng(32);
  CMatrix a = random_matrix(8, 8, rng);
  a = a + a.adjoint();
  double trace = 0;
  for (std::size_t i = 0; i < 8; ++i) trace += a(i, i).real();
  const EighResult eg = eigh(a);
  double wsum = 0;
  for (double w : eg.values) wsum += w;
  EXPECT_NEAR(trace, wsum, 1e-9);
}

TEST(Qr, ThinFactorization) {
  Rng rng(41);
  const CMatrix a = random_matrix(9, 5, rng);
  const QrResult f = qr(a);
  EXPECT_LT(orthonormality_error(f.q), 1e-10);
  EXPECT_LT((matmul(f.q, f.r) - a).frobenius_norm(), 1e-10);
  // R upper triangular
  for (std::size_t i = 0; i < f.r.rows(); ++i)
    for (std::size_t j = 0; j < i && j < f.r.cols(); ++j)
      EXPECT_LT(std::abs(f.r(i, j)), 1e-10);
}

TEST(Qr, RankDeficientPanelStaysOrthonormal) {
  // An exactly dependent column zeroes a diagonal entry of R; the Householder
  // factorization must still return a fully orthonormal Q (the degenerate
  // reflector is the identity) and reproduce A.
  Rng rng(43);
  CMatrix a = random_matrix(7, 4, rng);
  for (std::size_t i = 0; i < 7; ++i) a(i, 2) = 2.0 * a(i, 0);
  const QrResult f = qr(a);
  EXPECT_LT(orthonormality_error(f.q), 1e-10);
  EXPECT_LT((matmul(f.q, f.r) - a).frobenius_norm(), 1e-10);
  EXPECT_LT(std::abs(f.r(2, 2)), 1e-12 * a.frobenius_norm());
}

TEST(Qr, RandomUnitaryIsUnitary) {
  Rng rng(42);
  const CMatrix u = random_unitary(6, rng);
  EXPECT_LT(orthonormality_error(u), 1e-10);
  const CMatrix uu = matmul(u, u, Op::kNone, Op::kAdjoint);
  EXPECT_LT((uu - CMatrix::identity(6)).frobenius_norm(), 1e-10);
}

TEST(Davidson, LowestEigenpairOfDenseSymmetric) {
  Rng rng(51);
  const std::size_t n = 60;
  RMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = double(i) - 5.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double x = 0.1 * rng.normal();
      a(i, j) = a(j, i) = x;
    }
  }
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  auto apply = [&](const std::vector<double>& x) { return matvec(a, x); };
  std::vector<double> guess(n, 0.0);
  guess[0] = 1.0;
  const DavidsonResult r = davidson_lowest(apply, diag, guess);
  ASSERT_TRUE(r.converged);

  // Oracle: dense eigensolver.
  const EighResultReal eg = eigh(a);
  EXPECT_NEAR(r.eigenvalue, eg.values[0], 1e-7);
}

TEST(Davidson, HermitianComplexOperator) {
  Rng rng(52);
  const std::size_t n = 40;
  CMatrix a = random_matrix(n, n, rng);
  a = a + a.adjoint();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += double(i);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  auto apply = [&](const std::vector<cplx>& x) { return matvec(a, x); };
  std::vector<cplx> guess(n, cplx{});
  guess[0] = 1.0;
  const DavidsonResultC r = davidson_lowest_hermitian(apply, diag, guess);
  ASSERT_TRUE(r.converged);
  const EighResult eg = eigh(a);
  EXPECT_NEAR(r.eigenvalue, eg.values[0], 1e-7);
}

TEST(Davidson, RejectsBadInput) {
  auto apply = [](const std::vector<double>& x) { return x; };
  EXPECT_THROW(davidson_lowest(apply, {1.0}, {}), Error);
  EXPECT_THROW(davidson_lowest(apply, {1.0, 2.0}, {1.0}), Error);
}

}  // namespace
}  // namespace q2::la
