// FCI tests, including the repo's strongest cross-validation: the
// determinant-CI ground energy must equal the ground energy of the
// Jordan-Wigner qubit Hamiltonian diagonalized on the state-vector
// simulator — two completely independent code paths.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "common/rng.hpp"
#include "chem/scf.hpp"
#include "sim/statevector.hpp"

namespace q2::chem {
namespace {

MoIntegrals mo_for(const Molecule& mol) {
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult r = rhf(mol, basis, ints);
  EXPECT_TRUE(r.converged);
  return transform_to_mo(ints, r.coefficients, r.nuclear_repulsion);
}

TEST(FciSpace, DimensionCounting) {
  const FciSpace space(4, 2, 2);
  EXPECT_EQ(space.dim(), 36u);  // C(4,2)^2
  const FciSpace tiny(2, 1, 1);
  EXPECT_EQ(tiny.dim(), 4u);
}

TEST(FciSpace, HfDeterminantIsLowestDiagonal) {
  const MoIntegrals mo = mo_for(Molecule::h2(1.4));
  const FciSpace space(mo.n_orbitals(), 1, 1);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const auto diag = space.diagonal(so);
  const std::size_t hf = space.hf_index();
  for (std::size_t i = 0; i < diag.size(); ++i)
    EXPECT_GE(diag[i], diag[hf] - 1e-10);
}

TEST(Fci, H2GroundStateEnergy) {
  const MoIntegrals mo = mo_for(Molecule::h2(1.4));
  const FciResult r = fci_ground_state(mo, 1, 1);
  ASSERT_TRUE(r.converged);
  // Literature FCI/STO-3G H2 at R = 1.4 is about -1.1373 Ha.
  EXPECT_NEAR(r.energy, -1.1373, 1.5e-3);
}

TEST(Fci, MatchesQubitHamiltonianGroundState) {
  for (const auto& mol :
       {Molecule::h2(1.4), Molecule::h2(2.4), Molecule::hydrogen_chain(4, 1.8)}) {
    const MoIntegrals mo = mo_for(mol);
    const int ne = mol.n_electrons();
    const FciResult fci = fci_ground_state(mo, ne / 2, ne / 2);
    ASSERT_TRUE(fci.converged);

    const pauli::QubitOperator h = molecular_qubit_hamiltonian(mo);
    // Guess: the HF computational basis state (JW-occupied low qubits).
    std::vector<cplx> guess(std::size_t(1) << h.n_qubits(), cplx{});
    guess[(std::size_t(1) << ne) - 1] = 1.0;
    const double e_qubit = sim::qubit_ground_energy(h, guess);
    EXPECT_NEAR(fci.energy, e_qubit, 1e-6) << "atoms=" << mol.n_atoms();
  }
}

TEST(Fci, VariationalBelowHartreeFock) {
  const Molecule mol = Molecule::hydrogen_chain(4, 1.8);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult scf = rhf(mol, basis, ints);
  const MoIntegrals mo =
      transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
  const FciResult r = fci_ground_state(mo, 2, 2);
  EXPECT_LT(r.energy, scf.energy - 1e-4);
}

TEST(Fci, OneRdmTraceAndSymmetry) {
  const MoIntegrals mo = mo_for(Molecule::hydrogen_chain(4, 1.8));
  const FciResult r = fci_ground_state(mo, 2, 2);
  const FciSpace space(mo.n_orbitals(), 2, 2);
  const la::RMatrix rdm = space.one_rdm(r.ci);
  double tr = 0;
  for (std::size_t i = 0; i < rdm.rows(); ++i) tr += rdm(i, i);
  EXPECT_NEAR(tr, 4.0, 1e-8);  // total electrons
  for (std::size_t i = 0; i < rdm.rows(); ++i)
    for (std::size_t j = 0; j < rdm.cols(); ++j)
      EXPECT_NEAR(rdm(i, j), rdm(j, i), 1e-8);
  // Occupations bounded by 2.
  for (std::size_t i = 0; i < rdm.rows(); ++i) {
    EXPECT_GE(rdm(i, i), -1e-10);
    EXPECT_LE(rdm(i, i), 2.0 + 1e-10);
  }
}

TEST(Fci, ExpectationOfHamiltonianEqualsEnergy) {
  const MoIntegrals mo = mo_for(Molecule::h2(1.4));
  const FciResult r = fci_ground_state(mo, 1, 1);
  const FciSpace space(mo.n_orbitals(), 1, 1);
  EXPECT_NEAR(fci_expectation(space, to_spin_orbitals(mo), r.ci), r.energy,
              1e-9);
}

TEST(Fci, StretchedH2StaticCorrelation) {
  // At dissociation, FCI is well below RHF by roughly the correlation of two
  // separated H atoms (RHF fails badly there).
  const Molecule mol = Molecule::h2(5.0);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const IntegralTables ints = compute_integrals(mol, basis);
  const ScfResult scf = rhf(mol, basis, ints);
  const MoIntegrals mo =
      transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
  const FciResult r = fci_ground_state(mo, 1, 1);
  EXPECT_LT(r.energy, scf.energy - 0.1);
  // Two isolated STO-3G H atoms: E = 2 * (-0.4666) approximately.
  EXPECT_NEAR(r.energy, -0.9333, 2e-2);
}

TEST(Fci, SigmaIsSymmetric) {
  // <x|H y> == <y|H x> for random vectors (catches sign-rule bugs).
  const MoIntegrals mo = mo_for(Molecule::hydrogen_chain(4, 1.8));
  const FciSpace space(mo.n_orbitals(), 2, 2);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  Rng rng(17);
  std::vector<double> x(space.dim()), y(space.dim());
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto hx = space.sigma(so, x);
  const auto hy = space.sigma(so, y);
  double xhy = 0, yhx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    xhy += x[i] * hy[i];
    yhx += y[i] * hx[i];
  }
  EXPECT_NEAR(xhy, yhx, 1e-8 * (1 + std::abs(xhy)));
}

}  // namespace
}  // namespace q2::chem
