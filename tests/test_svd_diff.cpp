// Differential harness for the truncated-SVD substrate: the QR-preconditioned
// tournament-Jacobi engine is checked against the frozen scalar cyclic-Jacobi
// oracle (svd_jacobi_reference) over seeded shape/rank sweeps, plus the
// contracts the MPS update leans on — row-scale folding, want_u elision,
// workspace reuse, and bit-identical results at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "linalg/svd_reference.hpp"

namespace q2::la {
namespace {

CMatrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  CMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.complex_normal();
  return a;
}

CMatrix low_rank_matrix(std::size_t m, std::size_t n, std::size_t rank,
                        Rng& rng) {
  const CMatrix u = random_matrix(m, rank, rng);
  const CMatrix v = random_matrix(rank, n, rng);
  return matmul(u, v);
}

double reconstruction_error(const CMatrix& a, const SvdResult& f) {
  CMatrix us = f.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= f.s[j];
  return (matmul(us, f.vh) - a).frobenius_norm();
}

double orthonormality_error(const CMatrix& q) {
  const CMatrix g = matmul(q, q, Op::kAdjoint, Op::kNone);
  return (g - CMatrix::identity(q.cols())).frobenius_norm();
}

struct DiffCase {
  std::size_t m, n, rank;  // rank == 0 means full rank
};

class SvdDiff : public ::testing::TestWithParam<DiffCase> {};

TEST_P(SvdDiff, MatchesScalarReferenceSpectrum) {
  const auto [m, n, rank] = GetParam();
  Rng rng(500 + m * 131 + n * 17 + rank);
  const CMatrix a = rank == 0 ? random_matrix(m, n, rng)
                              : low_rank_matrix(m, n, rank, rng);
  const SvdResult ref = svd_jacobi_reference(a);
  const SvdResult fast = svd_jacobi(a);
  ASSERT_EQ(fast.s.size(), ref.s.size());
  const double s0 = ref.s.empty() ? 0.0 : ref.s[0];
  for (std::size_t i = 0; i < ref.s.size(); ++i)
    EXPECT_NEAR(fast.s[i], ref.s[i], 1e-12 * (1 + s0))
        << m << "x" << n << " rank " << rank << " i=" << i;
  EXPECT_LT(reconstruction_error(a, fast), 1e-10 * (1 + a.frobenius_norm()));
  EXPECT_LT(orthonormality_error(fast.u), 1e-10);
  EXPECT_LT(orthonormality_error(fast.vh.adjoint()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRanks, SvdDiff,
    ::testing::Values(DiffCase{1, 1, 0}, DiffCase{2, 2, 0}, DiffCase{5, 5, 0},
                      DiffCase{16, 16, 0}, DiffCase{48, 48, 0},
                      DiffCase{64, 64, 0}, DiffCase{40, 12, 0},
                      DiffCase{12, 40, 0}, DiffCase{33, 7, 0},
                      DiffCase{7, 33, 0}, DiffCase{1, 9, 0}, DiffCase{9, 1, 0},
                      DiffCase{24, 24, 6}, DiffCase{40, 16, 4},
                      DiffCase{16, 40, 4}, DiffCase{64, 64, 10}));

TEST(SvdDiff, TruncatedMatchesReferenceTruncation) {
  Rng rng(601);
  for (auto [m, n, max_rank] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{32, 32, 8},
        {48, 20, 5},
        {20, 48, 5},
        {64, 64, 16}}) {
    const CMatrix a = random_matrix(m, n, rng);
    const SvdResult ref = svd_jacobi_reference(a);
    const TruncatedSvd t = svd_truncated(a, max_rank);
    ASSERT_EQ(t.s.size(), max_rank);
    for (std::size_t i = 0; i < max_rank; ++i)
      EXPECT_NEAR(t.s[i], ref.s[i], 1e-12 * (1 + ref.s[0]));
    double total = 0, dropped = 0;
    for (std::size_t i = 0; i < ref.s.size(); ++i) {
      total += ref.s[i] * ref.s[i];
      if (i >= max_rank) dropped += ref.s[i] * ref.s[i];
    }
    EXPECT_NEAR(t.truncation_error, dropped / total, 1e-11);
    // The kept factors must reconstruct the best rank-k approximation: the
    // residual equals the dropped weight exactly.
    CMatrix us = t.u;
    for (std::size_t i = 0; i < us.rows(); ++i)
      for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= t.s[j];
    const double resid = (matmul(us, t.vh) - a).frobenius_norm();
    EXPECT_NEAR(resid, std::sqrt(dropped), 1e-9 * (1 + std::sqrt(total)));
  }
}

TEST(SvdDiff, RowScaleFoldingMatchesPrescaledOperand) {
  Rng rng(602);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{24, 10},
                      {10, 24},
                      {20, 20}}) {
    const CMatrix a = random_matrix(m, n, rng);
    std::vector<double> scale(m);
    for (std::size_t i = 0; i < m; ++i) scale[i] = 0.1 + 0.9 * rng.uniform();
    CMatrix scaled = a;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) scaled(i, j) *= scale[i];

    SvdWorkspace ws_fold, ws_pre;
    const TruncatedSpectrum folded =
        svd_truncated_ws(ws_fold, a.data(), m, n, n, scale.data(), 8, 0.0,
                         /*want_u=*/true);
    const TruncatedSpectrum pre =
        svd_truncated_ws(ws_pre, scaled.data(), m, n, n, nullptr, 8, 0.0,
                         /*want_u=*/true);
    ASSERT_EQ(folded.keep, pre.keep);
    // The packed operands are identical element-by-element, so the entire
    // computation is — compare bit-for-bit, not to a tolerance.
    EXPECT_EQ(0, std::memcmp(folded.s, pre.s, folded.keep * sizeof(double)));
    EXPECT_EQ(0, std::memcmp(folded.vh, pre.vh,
                             folded.keep * n * sizeof(cplx)));
    EXPECT_EQ(0, std::memcmp(folded.u, pre.u, m * folded.keep * sizeof(cplx)));
  }
}

TEST(SvdDiff, BitIdenticalAcrossThreadCounts) {
  Rng rng(603);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{64, 64},
                      {80, 24},
                      {24, 80}}) {
    const CMatrix a = random_matrix(m, n, rng);
    const std::size_t max_rank = 12;
    std::vector<std::vector<double>> s_runs;
    std::vector<std::vector<cplx>> u_runs, vh_runs;
    for (int threads : {1, 2, 8}) {
      par::ParallelOptions p;
      p.n_threads = threads;
      SvdWorkspace ws;
      const TruncatedSpectrum f = svd_truncated_ws(
          ws, a.data(), m, n, n, nullptr, max_rank, 0.0, /*want_u=*/true, p);
      s_runs.emplace_back(f.s, f.s + f.keep);
      u_runs.emplace_back(f.u, f.u + m * f.keep);
      vh_runs.emplace_back(f.vh, f.vh + f.keep * n);
    }
    for (std::size_t r = 1; r < s_runs.size(); ++r) {
      EXPECT_EQ(0, std::memcmp(s_runs[0].data(), s_runs[r].data(),
                               s_runs[0].size() * sizeof(double)));
      EXPECT_EQ(0, std::memcmp(u_runs[0].data(), u_runs[r].data(),
                               u_runs[0].size() * sizeof(cplx)));
      EXPECT_EQ(0, std::memcmp(vh_runs[0].data(), vh_runs[r].data(),
                               vh_runs[0].size() * sizeof(cplx)));
    }
  }
}

TEST(SvdDiff, WantUFalseLeavesSpectrumAndVhUnchanged) {
  Rng rng(604);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{30, 12},
                      {12, 30},
                      {26, 26}}) {
    const CMatrix a = random_matrix(m, n, rng);
    SvdWorkspace ws_full, ws_lean;
    const TruncatedSpectrum full = svd_truncated_ws(
        ws_full, a.data(), m, n, n, nullptr, 6, 0.0, /*want_u=*/true);
    const TruncatedSpectrum lean = svd_truncated_ws(
        ws_lean, a.data(), m, n, n, nullptr, 6, 0.0, /*want_u=*/false);
    ASSERT_EQ(full.keep, lean.keep);
    EXPECT_EQ(lean.u, nullptr);
    EXPECT_EQ(0, std::memcmp(full.s, lean.s, full.keep * sizeof(double)));
    EXPECT_EQ(0,
              std::memcmp(full.vh, lean.vh, full.keep * n * sizeof(cplx)));
    EXPECT_DOUBLE_EQ(full.truncation_error, lean.truncation_error);
  }
}

TEST(SvdDiff, WorkspaceReuseMatchesFreshWorkspace) {
  Rng rng(605);
  // Run a large decomposition first so every buffer is oversized, then a
  // small one: stale bytes beyond the active extents must not leak in.
  const CMatrix big = random_matrix(72, 64, rng);
  const CMatrix small = random_matrix(12, 7, rng);
  SvdWorkspace reused;
  (void)svd_truncated_ws(reused, big.data(), 72, 64, 64, nullptr, 32, 0.0,
                         true);
  const TruncatedSpectrum warm = svd_truncated_ws(
      reused, small.data(), 12, 7, 7, nullptr, 5, 0.0, /*want_u=*/true);
  SvdWorkspace fresh;
  const TruncatedSpectrum cold = svd_truncated_ws(
      fresh, small.data(), 12, 7, 7, nullptr, 5, 0.0, /*want_u=*/true);
  ASSERT_EQ(warm.keep, cold.keep);
  EXPECT_EQ(0, std::memcmp(warm.s, cold.s, warm.keep * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(warm.u, cold.u, 12 * warm.keep * sizeof(cplx)));
  EXPECT_EQ(0, std::memcmp(warm.vh, cold.vh, warm.keep * 7 * sizeof(cplx)));
  EXPECT_DOUBLE_EQ(warm.truncation_error, cold.truncation_error);
}

TEST(SvdDiff, DegenerateColumnsAndZeros) {
  Rng rng(606);
  // Duplicate and zero columns exercise the rotation-skip and null-vector
  // paths against the oracle.
  CMatrix a = random_matrix(18, 8, rng);
  for (std::size_t i = 0; i < 18; ++i) {
    a(i, 3) = a(i, 1);  // duplicate pair -> degenerate spectrum
    a(i, 6) = 0.0;      // dead column -> exact zero singular value
  }
  const SvdResult ref = svd_jacobi_reference(a);
  const SvdResult fast = svd_jacobi(a);
  ASSERT_EQ(fast.s.size(), ref.s.size());
  for (std::size_t i = 0; i < ref.s.size(); ++i)
    EXPECT_NEAR(fast.s[i], ref.s[i], 1e-12 * (1 + ref.s[0]));
  EXPECT_LT(reconstruction_error(a, fast), 1e-10 * (1 + a.frobenius_norm()));
  EXPECT_LT(orthonormality_error(fast.u), 1e-10);
  EXPECT_LT(orthonormality_error(fast.vh.adjoint()), 1e-10);
}

TEST(SvdDiff, AllZeroMatrix) {
  const CMatrix a(9, 4);
  const SvdResult f = svd_jacobi(a);
  ASSERT_EQ(f.s.size(), 4u);
  for (double s : f.s) EXPECT_EQ(s, 0.0);
  // Factors are still completed to orthonormal bases.
  EXPECT_LT(orthonormality_error(f.u), 1e-12);
  EXPECT_LT(orthonormality_error(f.vh.adjoint()), 1e-12);
}

// Regression: a rank-4 8x8 two-site operand captured from the routed H4
// UCCSD circuit (gate 106). The input has no zero column, but Jacobi
// rotations annihilate four columns mid-run; the incremental cached-norm
// update could then round a norm below zero, the sqrt(app*aqq) NaN slipped
// past the old `denom <= 0` guard, and the 0/0 off-diagonal phase poisoned
// the whole factorization. Hex-float literals keep the operand bit-exact.
TEST(SvdDiff, RankDeficientTwoSiteOperandStaysFinite) {
  // rows=8 cols=8, interleaved re/im, row-major.
  static const double kGate106[128] = {
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1.1690bd0f9db8cp-51, 0x1.ff5c31b28925ap-1, 0x1.47726359e8d1p-107, -0x1.ec23511660696p-54,
      0x1.ca5a0e0f76ff2p-57, 0x1.996dea2ff643ap-5, 0x1.e7214b6c60e7ap-60, 0x1.89250d259e32p-59,
      -0x1.8p-52, -0x1.2aac03a565b48p-52, 0x0p+0, -0x1p-108,
      0x0p+0, 0x1.55b4d00c84748p-57, -0x1p-109, 0x1p-110,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, -0x1.2a3edd98498acp-52, -0x1.c6e6fb37d06adp-111, 0x1.47db47c41633ap-107,
      0x1.eb46d633d4884p-57, -0x1.332cdbf4c65c9p-56, 0x1.b7fd0c1ce70efp-111, -0x1.b44e4d17f2874p-110,
      -0x1.5710186a16f72p-53, -0x1.ff5c31b289259p-1, 0x1.07ad0f31e163fp-56, -0x1.0fd4a54d133f2p-54,
      -0x1.a8111d1890abp-60, 0x1.996dea2ff6433p-5, -0x1.13d6df2ee644fp-58, 0x1.35cde5b10e99cp-58,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1.9a1a96ceeb4afp-57, -0x1.13bb1e74665f3p-57, 0x1.52a0e11c9e20dp-58, -0x1.0364c32149cf9p-59,
      -0x1.0019edb5af1f7p-52, 0x1.58605bb2dcdfcp-53, -0x1.df1588b954cf1p-68, -0x1.3a6c1861f7c8dp-61,
      -0x1.2746744f9773cp-57, 0x1.c769b093284f2p-55, 0x1.2e1fa9008f1dfp-1, -0x1.9c90d2f511936p-1,
      0x1.5aa7a0b01a74p-52, -0x1.37c7e4dc1795bp-53, 0x1.ffbee45787a5cp-7, 0x1.84ed7677cb625p-5,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x1.e6328618f47bap-58, -0x1.08e050dbd85adp-52, 0x1.2e1fa9008f1dep-1, -0x1.9c90d2f511937p-1,
      0x1.68p-52, 0x1.78p-53, -0x1.ffbee45787a82p-7, -0x1.84ed7677cb639p-5,
      0x1.117256f8d384p-57, 0x1.e596f91b6017fp-58, 0x1.57e3ae6b95b23p-59, 0x1.bea863bc3070dp-58,
      0x1.5585fe4ffabd7p-53, 0x1.2f3d9a21de70dp-53, -0x1.b6d10dea78dd4p-62, -0x1.b615cab945e35p-61,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
      0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0,
  };
  static const double kRowScale[8] = {
      0x1.666e2a92e3c48p-1, 0x1.666e2a92e3c48p-1,
      0x1.666e2a92e3c47p-1, 0x1.666e2a92e3c47p-1,
      0x1.97e5c34738fb5p-4, 0x1.97e5c34738fb5p-4,
      0x1.97e5c34738fadp-4, 0x1.97e5c34738fadp-4,
  };
  const std::size_t rows = 8, cols = 8;
  std::vector<cplx> mm(rows * cols);
  for (std::size_t i = 0; i < rows * cols; ++i)
    mm[i] = cplx{kGate106[2 * i], kGate106[2 * i + 1]};

  SvdWorkspace ws;
  const TruncatedSpectrum f =
      svd_truncated_ws(ws, mm.data(), rows, cols, cols, kRowScale,
                       /*max_rank=*/64, /*cutoff=*/1e-12, /*want_u=*/false,
                       par::ParallelOptions{});
  ASSERT_EQ(f.keep, 4u);
  for (std::size_t r = 0; r < f.keep; ++r) {
    EXPECT_TRUE(std::isfinite(f.s[r])) << "s[" << r << "] = " << f.s[r];
    EXPECT_GT(f.s[r], 0.0);
  }
  for (std::size_t i = 0; i < f.keep * cols; ++i)
    ASSERT_TRUE(std::isfinite(f.vh[i].real()) && std::isfinite(f.vh[i].imag()))
        << "vh flat index " << i;

  // Spectrum matches the frozen oracle on the pre-weighted operand.
  CMatrix mw(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      mw(r, c) = mm[r * cols + c] * kRowScale[r];
  const SvdResult ref = svd_jacobi_reference(mw);
  for (std::size_t r = 0; r < f.keep; ++r)
    EXPECT_NEAR(f.s[r], ref.s[r], 1e-12 * (1.0 + ref.s[0]));
}

TEST(SvdDiff, TournamentScheduleCoversEveryPairOnce) {
  for (std::size_t n : {2u, 3u, 7u, 8u, 16u, 33u}) {
    const auto rounds = tournament_rounds(n);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const auto& round : rounds) {
      std::set<std::size_t> cols;  // disjointness within the round
      for (const auto& [p, q] : round) {
        EXPECT_LT(p, q);
        EXPECT_LT(q, n);
        EXPECT_TRUE(cols.insert(p).second);
        EXPECT_TRUE(cols.insert(q).second);
        EXPECT_TRUE(seen.insert({p, q}).second) << "pair repeated";
      }
    }
    EXPECT_EQ(seen.size(), n * (n - 1) / 2) << "n=" << n;
  }
}

TEST(SvdDiff, PreconditionerEngagesWhereDesigned) {
  Rng rng(607);
  const CMatrix tall = random_matrix(40, 10, rng);
  EXPECT_TRUE(svd_truncated(tall, 10).preconditioned);
  const CMatrix wide = random_matrix(10, 40, rng);
  EXPECT_TRUE(svd_truncated(wide, 10).preconditioned);
  const CMatrix small_sq = random_matrix(12, 12, rng);
  EXPECT_FALSE(svd_truncated(small_sq, 12).preconditioned);
  const CMatrix big_sq = random_matrix(64, 64, rng);
  const TruncatedSvd big = svd_truncated(big_sq, 64);
  EXPECT_TRUE(big.preconditioned);
  EXPECT_GT(big.sweeps, 0);
}

}  // namespace
}  // namespace q2::la
