// Checkpoint subsystem unit tests: the byte codec (exact double round trips),
// the versioned CRC-protected snapshot container (corruption/truncation
// rejection), the rotation manager with fallback-to-newest-valid, fault
// injection, the domain serializers (Matrix/Tensor/Mps/Rng/OptimizerState),
// and the Rng::index(0) underflow regression.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ckpt/checkpoint.hpp"
#include "ckpt/serialize.hpp"
#include "ckpt/snapshot.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "sim/mps.hpp"

namespace q2::ckpt {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test case (removed up front, not behind, so a
// failing test leaves its files around for inspection).
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("q2_ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void expect_bits(double a, double b) {
  EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(double)));
}

TEST(Crc32, KnownAnswer) {
  // The classic CRC-32 check value.
  EXPECT_EQ(0xCBF43926u, crc32("123456789", 9));
  EXPECT_EQ(0x00000000u, crc32("", 0));
}

TEST(ByteCodec, RoundTripsPrimitives) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.b(true);
  w.f64(-0.0);
  w.f64(std::nan(""));
  w.f64(5e-324);  // smallest denormal
  w.c128({1.5, -2.5});
  w.str("hello");
  w.vec(std::vector<double>{1.0, 2.0, 3.0});
  w.vec(std::vector<std::size_t>{7, 8});
  w.vec(std::vector<std::vector<double>>{{1.0}, {}, {2.0, 3.0}});

  ByteReader r(w.buffer());
  EXPECT_EQ(0xAB, r.u8());
  EXPECT_EQ(0xDEADBEEFu, r.u32());
  EXPECT_EQ(0x0123456789ABCDEFull, r.u64());
  EXPECT_EQ(-42, r.i32());
  EXPECT_TRUE(r.b());
  expect_bits(-0.0, r.f64());
  EXPECT_TRUE(std::isnan(r.f64()));
  expect_bits(5e-324, r.f64());
  EXPECT_EQ(cplx(1.5, -2.5), r.c128());
  EXPECT_EQ("hello", r.str());
  EXPECT_EQ((std::vector<double>{1.0, 2.0, 3.0}), r.vec_f64());
  EXPECT_EQ((std::vector<std::size_t>{7, 8}), r.vec_u64());
  EXPECT_EQ((std::vector<std::vector<double>>{{1.0}, {}, {2.0, 3.0}}),
            r.vec_vec_f64());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteCodec, ThrowsOnTruncation) {
  ByteWriter w;
  w.vec(std::vector<double>{1.0, 2.0, 3.0});
  std::vector<std::uint8_t> bytes = w.take();
  bytes.resize(bytes.size() - 1);
  ByteReader r(bytes);
  EXPECT_THROW(r.vec_f64(), Error);
}

TEST(ByteCodec, RejectsHugeCorruptCountWithoutAllocating) {
  ByteWriter w;
  w.u64(~0ull);  // element count far beyond the record
  ByteReader r(w.buffer());
  EXPECT_THROW(r.vec_f64(), Error);
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  Snapshot s;
  s.set("alpha", {1, 2, 3});
  s.set("beta", {});
  s.set("alpha", {9, 8});  // replaces
  const std::vector<std::uint8_t> bytes = s.encode();
  EXPECT_EQ(bytes.size(), s.encoded_bytes());

  const auto back = Snapshot::decode(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(2u, back->section_count());
  EXPECT_EQ((std::vector<std::uint8_t>{9, 8}), back->at("alpha"));
  EXPECT_TRUE(back->at("beta").empty());
  EXPECT_EQ(nullptr, back->find("gamma"));
  EXPECT_THROW(back->at("gamma"), Error);
}

TEST(Snapshot, RejectsCorruption) {
  Snapshot s;
  s.set("data", std::vector<std::uint8_t>(64, 0x5A));
  const std::vector<std::uint8_t> good = s.encode();

  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(Snapshot::decode(bad.data(), bad.size()).has_value());

  // Unknown format version.
  bad = good;
  bad[8] ^= 0xFF;
  EXPECT_FALSE(Snapshot::decode(bad.data(), bad.size()).has_value());

  // Flipped payload byte -> CRC mismatch.
  bad = good;
  bad[bad.size() - 1] ^= 0xFF;
  EXPECT_FALSE(Snapshot::decode(bad.data(), bad.size()).has_value());

  // Truncation at every prefix length must be rejected, never crash.
  for (std::size_t n = 0; n < good.size(); ++n)
    EXPECT_FALSE(Snapshot::decode(good.data(), n).has_value()) << n;

  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(Snapshot::decode(bad.data(), bad.size()).has_value());

  // The untouched original still decodes.
  EXPECT_TRUE(Snapshot::decode(good.data(), good.size()).has_value());
}

TEST(Snapshot, FileRoundTripAndMissingFile) {
  const fs::path dir = scratch("file_round_trip");
  const std::string path = (dir / "snap.q2").string();
  Snapshot s;
  s.set("payload", {0xDE, 0xAD});
  s.write_file(path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp renamed away

  const auto back = Snapshot::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((std::vector<std::uint8_t>{0xDE, 0xAD}), back->at("payload"));
  EXPECT_FALSE(Snapshot::read_file((dir / "missing").string()).has_value());
}

TEST(Serializers, MatrixRoundTrip) {
  la::RMatrix rm(2, 3);
  for (std::size_t i = 0; i < rm.size(); ++i) rm.data()[i] = 0.1 * double(i);
  la::CMatrix cm(3, 2);
  for (std::size_t i = 0; i < cm.size(); ++i)
    cm.data()[i] = {0.5 * double(i), -1.0 * double(i)};

  ByteWriter w;
  write_matrix(w, rm);
  write_matrix(w, cm);
  ByteReader r(w.buffer());
  const la::RMatrix rm2 = read_rmatrix(r);
  const la::CMatrix cm2 = read_cmatrix(r);
  ASSERT_TRUE(rm.same_shape(rm2));
  ASSERT_TRUE(cm.same_shape(cm2));
  EXPECT_EQ(0, std::memcmp(rm.data(), rm2.data(), rm.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(cm.data(), cm2.data(), cm.size() * sizeof(cplx)));

  // A reader pointed at the wrong type refuses instead of misparsing.
  ByteReader wrong(w.buffer());
  EXPECT_THROW(read_cmatrix(wrong), Error);
}

TEST(Serializers, TensorRoundTripAndShapeValidation) {
  Rng rng(11);
  la::Tensor t({2, 3, 4});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.complex_normal();

  ByteWriter w;
  write_tensor(w, t);
  ByteReader r(w.buffer());
  const la::Tensor t2 = read_tensor(r);
  ASSERT_EQ(t.shape(), t2.shape());
  EXPECT_EQ(0, std::memcmp(t.data(), t2.data(), t.size() * sizeof(cplx)));

  // Corrupt the element count so it disagrees with the shape.
  ByteWriter bad;
  write_tensor(bad, la::Tensor({2, 2}));
  std::vector<std::uint8_t> bb = bad.take();
  bb[1 + 8 + 2 * 8] ^= 0x01;  // tag + rank + two dims -> low byte of size
  ByteReader br(bb);
  EXPECT_THROW(read_tensor(br), Error);
}

TEST(Serializers, RngStreamRoundTripsExactly) {
  Rng a(2024);
  for (int i = 0; i < 1000; ++i) a.uniform();  // advance mid-stream
  ByteWriter w;
  write_rng(w, a);
  Rng b(1);  // different seed, state will be overwritten
  ByteReader r(w.buffer());
  read_rng(r, b);
  for (int i = 0; i < 1000; ++i) {
    expect_bits(a.uniform(), b.uniform());
    expect_bits(a.normal(), b.normal());
    EXPECT_EQ(a.index(17), b.index(17));
  }
}

TEST(Serializers, MpsStateRoundTripsBitIdentically) {
  // Entangle a 6-qubit register so every bond is non-trivial.
  Rng rng(5);
  const circ::Circuit circuit = circ::block_entangling_circuit(6, 4, 3, rng);
  sim::MpsOptions options;
  options.max_bond = 4;  // force truncation so the error accumulator is live
  sim::Mps mps(6, options);
  mps.run(circuit);

  ByteWriter w;
  write_mps(w, mps.export_state());
  ByteReader r(w.buffer());
  const sim::Mps back = sim::Mps::import_state(read_mps(r));

  expect_bits(mps.truncation_error(), back.truncation_error());
  EXPECT_EQ(mps.max_bond_dimension(), back.max_bond_dimension());
  const std::vector<cplx> sv_a = mps.to_statevector();
  const std::vector<cplx> sv_b = back.to_statevector();
  ASSERT_EQ(sv_a.size(), sv_b.size());
  EXPECT_EQ(0, std::memcmp(sv_a.data(), sv_b.data(),
                           sv_a.size() * sizeof(cplx)));
}

TEST(Serializers, OptimizerStateRoundTrip) {
  vqe::OptimizerState s;
  s.initialized = true;
  s.iteration = 12;
  s.converged = false;
  s.finished = false;
  s.energy = -1.5;
  s.e_prev = -1.4;
  s.parameters = {0.1, 0.2};
  s.gradient = {1e-3, -2e-3};
  s.history = {-1.0, -1.2, -1.4, -1.5};
  s.adam_m = {0.01, 0.02};
  s.adam_v = {0.001, 0.002};
  s.lbfgs_s = {{0.1, 0.1}, {0.05, -0.05}};
  s.lbfgs_y = {{0.2, 0.2}, {0.1, -0.1}};
  s.lbfgs_rho = {1.0, 2.0};

  ByteWriter w;
  write_optimizer_state(w, s);
  ByteReader r(w.buffer());
  const vqe::OptimizerState b = read_optimizer_state(r);
  EXPECT_EQ(s.iteration, b.iteration);
  EXPECT_EQ(s.parameters, b.parameters);
  EXPECT_EQ(s.gradient, b.gradient);
  EXPECT_EQ(s.history, b.history);
  EXPECT_EQ(s.adam_m, b.adam_m);
  EXPECT_EQ(s.lbfgs_s, b.lbfgs_s);
  EXPECT_EQ(s.lbfgs_y, b.lbfgs_y);
  EXPECT_EQ(s.lbfgs_rho, b.lbfgs_rho);
}

TEST(Rng, IndexOfZeroIsSafe) {
  // Regression: uniform_int_distribution(0, n - 1) underflowed on n == 0.
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(0u, rng.index(0));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(0u, rng.index(1));
  bool saw_nonzero = false;
  for (int i = 0; i < 100; ++i) {
    const std::size_t v = rng.index(3);
    EXPECT_LT(v, 3u);
    saw_nonzero |= v != 0;
  }
  EXPECT_TRUE(saw_nonzero);
}

Snapshot tiny_snapshot(int payload) {
  Snapshot s;
  ByteWriter w;
  w.i32(payload);
  s.set("data", w.take());
  return s;
}

TEST(Manager, RotationKeepsNewestK) {
  const fs::path dir = scratch("rotation");
  CheckpointOptions options;
  options.path = (dir / "run.ckpt").string();
  options.keep = 3;
  CheckpointManager mgr(options);
  for (int it = 1; it <= 7; ++it) mgr.save(it, tiny_snapshot(it));
  EXPECT_EQ((std::vector<std::uint64_t>{5, 6, 7}),
            mgr.existing_sequence_numbers());

  const auto snap = mgr.load_latest_valid();
  ASSERT_TRUE(snap.has_value());
  ByteReader r(snap->at("data"));
  EXPECT_EQ(7, r.i32());
}

TEST(Manager, FallsBackToNewestValidSnapshot) {
  const fs::path dir = scratch("fallback");
  CheckpointOptions options;
  options.path = (dir / "run.ckpt").string();
  CheckpointManager mgr(options);
  for (int it = 1; it <= 3; ++it) mgr.save(it, tiny_snapshot(it));

  // Bit-rot the newest file and tear the middle one.
  {
    std::fstream f((dir / "run.ckpt.000003").string(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put(char(0xFF));
  }
  fs::resize_file(dir / "run.ckpt.000002", 10);

  const auto snap = mgr.load_latest_valid();
  ASSERT_TRUE(snap.has_value());
  ByteReader r(snap->at("data"));
  EXPECT_EQ(1, r.i32());
}

TEST(Manager, NonResumingWriterStartsFresh) {
  const fs::path dir = scratch("fresh");
  CheckpointOptions options;
  options.path = (dir / "run.ckpt").string();
  {
    CheckpointManager mgr(options);
    mgr.save(1, tiny_snapshot(1));
    mgr.save(2, tiny_snapshot(2));
  }
  options.resume = false;
  CheckpointManager fresh(options);
  EXPECT_TRUE(fresh.existing_sequence_numbers().empty());
  EXPECT_FALSE(fresh.load_latest_valid().has_value());
  fresh.save(5, tiny_snapshot(5));
  EXPECT_EQ((std::vector<std::uint64_t>{1}),
            fresh.existing_sequence_numbers());

  // A non-writer (mirroring rank) must leave the family untouched.
  options.resume = true;
  CheckpointManager reader(options, /*writer=*/false);
  ASSERT_TRUE(reader.load_latest_valid().has_value());
  reader.save(6, tiny_snapshot(6));  // no-op
  EXPECT_EQ(1u, reader.existing_sequence_numbers().size());
}

TEST(Manager, CadenceHonoursEveryN) {
  CheckpointOptions options;
  options.path = "unused";
  options.every_n_iterations = 3;
  CheckpointManager mgr(options, /*writer=*/false);
  EXPECT_FALSE(mgr.due(1, false));
  EXPECT_FALSE(mgr.due(2, false));
  EXPECT_TRUE(mgr.due(3, false));
  EXPECT_FALSE(mgr.due(4, false));
  EXPECT_TRUE(mgr.due(6, false));
  EXPECT_TRUE(mgr.due(1, true));  // terminal snapshots always fire
  EXPECT_FALSE(mgr.due(0, false));
}

TEST(Fault, CrashAndCorruptionInjection) {
  const fs::path dir = scratch("fault");
  CheckpointOptions options;
  options.path = (dir / "run.ckpt").string();
  options.fault.crash_at_iteration = 3;
  options.fault.corrupt_at_iteration = 3;
  options.fault.corruption = FaultPlan::Corruption::kFlipByte;
  options.fault.flip_byte_offset = 30;
  CheckpointManager mgr(options);
  mgr.save(1, tiny_snapshot(1));
  mgr.save(2, tiny_snapshot(2));
  try {
    mgr.save(3, tiny_snapshot(3));
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(3, crash.iteration());
  }
  // Snapshot 3 exists but is corrupt; recovery lands on snapshot 2.
  EXPECT_EQ(3u, mgr.existing_sequence_numbers().size());
  const auto snap = mgr.load_latest_valid();
  ASSERT_TRUE(snap.has_value());
  ByteReader r(snap->at("data"));
  EXPECT_EQ(2, r.i32());
}

TEST(Fault, TruncationInjection) {
  const fs::path dir = scratch("truncate");
  CheckpointOptions options;
  options.path = (dir / "run.ckpt").string();
  options.fault.corrupt_at_iteration = 2;
  options.fault.corruption = FaultPlan::Corruption::kTruncate;
  options.fault.truncate_to_bytes = 16;
  CheckpointManager mgr(options);
  mgr.save(1, tiny_snapshot(1));
  mgr.save(2, tiny_snapshot(2));
  EXPECT_EQ(16u, fs::file_size(dir / "run.ckpt.000002"));
  const auto snap = mgr.load_latest_valid();
  ASSERT_TRUE(snap.has_value());
  ByteReader r(snap->at("data"));
  EXPECT_EQ(1, r.i32());
}

TEST(Flags, OptionsFromArgs) {
  const char* raw[] = {"prog",          "--checkpoint=/tmp/x/run.ckpt",
                       "positional",    "--checkpoint-every=4",
                       "--resume",      "tail"};
  int argc = 6;
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  const CheckpointOptions options = options_from_args(argc, argv.data());
  EXPECT_EQ("/tmp/x/run.ckpt", options.path);
  EXPECT_EQ(4, options.every_n_iterations);
  EXPECT_TRUE(options.resume);
  ASSERT_EQ(3, argc);  // flags stripped, positionals kept in order
  EXPECT_STREQ("prog", argv[0]);
  EXPECT_STREQ("positional", argv[1]);
  EXPECT_STREQ("tail", argv[2]);
}

}  // namespace
}  // namespace q2::ckpt
