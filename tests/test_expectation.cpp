// Measurement utilities: direct energy measurement guards, Hadamard-test
// equivalence on MPS and state-vector backends, and qubit-wise commuting
// grouping invariants.
#include <gtest/gtest.h>

#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "sim/expectation.hpp"
#include "sim/hadamard_test.hpp"

namespace q2::sim {
namespace {

pauli::QubitOperator h2_hamiltonian() {
  const chem::Molecule mol = chem::Molecule::h2(1.4);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const chem::MoIntegrals mo =
      chem::transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
  return chem::molecular_qubit_hamiltonian(mo);
}

TEST(Expectation, MeasureEnergyRejectsNonHermitian) {
  pauli::QubitOperator bad = pauli::QubitOperator::term(2, "X0", cplx(0, 1));
  Mps mps(2);
  EXPECT_THROW(measure_energy(mps, bad), Error);
}

TEST(Expectation, MpsAndStateVectorEnergiesMatch) {
  const pauli::QubitOperator h = h2_hamiltonian();
  const circ::Circuit prep = circ::hartree_fock_prep(4, 2);
  Mps mps(4);
  mps.run(prep);
  StateVector sv(4);
  sv.run(prep);
  EXPECT_NEAR(measure_energy(mps, h), measure_energy(sv, h), 1e-10);
}

TEST(HadamardTest, MatchesDirectExpectationOnMps) {
  Rng rng(12);
  const circ::Circuit prep = circ::brickwork_circuit(4, 2, rng);
  Mps direct(4, {64, 1e-12});
  direct.run(prep);
  for (const char* label : {"Z0", "X1 X2", "Y0 Z3", "X0 Y1 Z2"}) {
    const pauli::PauliString p = pauli::PauliString::parse(4, label);
    const double ht = hadamard_test_mps(prep, {}, p, {64, 1e-12});
    EXPECT_NEAR(ht, direct.expectation(p).real(), 1e-8) << label;
  }
}

TEST(HadamardTest, StateVectorBackendAgrees) {
  Rng rng(13);
  const circ::Circuit prep = circ::brickwork_circuit(3, 2, rng);
  const pauli::PauliString p = pauli::PauliString::parse(3, "Y0 X2");
  const double mps_val = hadamard_test_mps(prep, {}, p, {64, 1e-12});
  const double sv_val = hadamard_test_statevector(prep, {}, p);
  EXPECT_NEAR(mps_val, sv_val, 1e-9);
}

TEST(Grouping, GroupsAreQubitwiseCompatible) {
  const pauli::QubitOperator h = h2_hamiltonian();
  const auto groups = qubitwise_commuting_groups(h);
  std::size_t total = 0;
  for (const auto& g : groups) {
    total += g.size();
    for (std::size_t i = 0; i < g.size(); ++i)
      for (std::size_t j = i + 1; j < g.size(); ++j)
        for (std::size_t q = 0; q < g[i].n_qubits(); ++q) {
          const pauli::P a = g[i].get(q), b = g[j].get(q);
          EXPECT_TRUE(a == pauli::P::I || b == pauli::P::I || a == b);
        }
  }
  EXPECT_EQ(total, h.size() - 1);  // identity excluded
  // Grouping must compress the measurement count (the point of the scheme).
  EXPECT_LT(groups.size(), h.size() - 1);
}

TEST(Grouping, SingleStringsFormSingletons) {
  pauli::QubitOperator op(2);
  op += pauli::QubitOperator::term(2, "X0", 1.0);
  op += pauli::QubitOperator::term(2, "Z0", 1.0);  // incompatible with X0
  const auto groups = qubitwise_commuting_groups(op);
  EXPECT_EQ(groups.size(), 2u);
}

}  // namespace
}  // namespace q2::sim
