// Cross-module integration invariants: variational bounds along a
// dissociation curve, exact Pauli-evolution sweeps, agreement of measurement
// pipelines, and the full DMET-VQE-distributed stack in one shot.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "dmet/dmet_driver.hpp"
#include "sim/statevector.hpp"
#include "vqe/vqe_driver.hpp"

namespace q2 {
namespace {

struct Solved {
  chem::ScfResult scf;
  chem::MoIntegrals mo;
};

Solved solve(const chem::Molecule& mol) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  Solved s;
  s.scf = chem::rhf(mol, basis, ints);
  EXPECT_TRUE(s.scf.converged);
  s.mo = chem::transform_to_mo(ints, s.scf.coefficients,
                               s.scf.nuclear_repulsion);
  return s;
}

class H2Dissociation : public ::testing::TestWithParam<double> {};

TEST_P(H2Dissociation, VariationalOrderingHolds) {
  const double r = GetParam();
  const Solved s = solve(chem::Molecule::h2(r));
  const chem::FciResult fci = chem::fci_ground_state(s.mo, 1, 1);
  vqe::VqeOptions opts;
  opts.optimizer.max_iterations = 60;
  const vqe::VqeResult v = vqe::run_vqe(s.mo, 1, 1, opts);
  // FCI <= VQE <= HF (the ansatz is variational within the qubit space).
  EXPECT_GE(v.energy, fci.energy - 1e-9) << "r=" << r;
  EXPECT_LE(v.energy, s.scf.energy + 1e-9) << "r=" << r;
  EXPECT_NEAR(v.energy, fci.energy, 2e-3) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(BondLengths, H2Dissociation,
                         ::testing::Values(1.0, 1.4, 2.0, 2.8, 4.0));

class EvolutionAngles : public ::testing::TestWithParam<double> {};

TEST_P(EvolutionAngles, PauliEvolutionMatchesClosedForm) {
  const double theta = GetParam();
  Rng rng(31);
  const pauli::PauliString p = pauli::PauliString::parse(4, "X0 Z1 Y3");
  const circ::Circuit prep = circ::brickwork_circuit(4, 2, rng);
  sim::StateVector sv(4);
  sv.run(prep);
  // exp(-i theta/2 P)|psi> = cos(theta/2)|psi> - i sin(theta/2) P|psi>.
  std::vector<cplx> expected(sv.dim());
  std::vector<cplx> px(sv.dim(), cplx{});
  sim::accumulate_pauli_apply(p, 1.0, sv.amplitudes(), px);
  for (std::size_t i = 0; i < expected.size(); ++i)
    expected[i] = std::cos(theta / 2) * sv.amplitudes()[i] -
                  cplx(0, 1) * std::sin(theta / 2) * px[i];
  circ::Circuit evo(4);
  circ::append_pauli_evolution(evo, p, theta);
  sv.run(evo);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_LT(std::abs(expected[i] - sv.amplitudes()[i]), 1e-12)
        << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, EvolutionAngles,
                         ::testing::Values(-3.0, -1.2, -0.3, 0.0, 0.3, 0.9,
                                           1.7, 3.1));

TEST(Integration, HadamardModeReachesSameOptimum) {
  const Solved s = solve(chem::Molecule::h2(1.4));
  vqe::VqeOptions direct;
  direct.optimizer.max_iterations = 40;
  vqe::VqeOptions faithful = direct;
  faithful.measurement = vqe::MeasurementMode::kHadamardTest;
  const vqe::VqeResult a = vqe::run_vqe(s.mo, 1, 1, direct);
  const vqe::VqeResult b = vqe::run_vqe(s.mo, 1, 1, faithful);
  EXPECT_NEAR(a.energy, b.energy, 1e-6);
}

TEST(Integration, DmetVqeDistributedFullStack) {
  // Fragments over sub-communicators with a VQE fragment solver: the whole
  // three-level architecture in one assertion.
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  dmet::DmetOptions opts;
  opts.fragments = dmet::uniform_atom_groups(4, 2);
  opts.fit_chemical_potential = false;
  vqe::VqeOptions vopts;
  vopts.optimizer.max_iterations = 12;
  vopts.mps.max_bond = 16;

  const dmet::DmetResult serial =
      dmet::run_dmet(mol, opts, dmet::make_vqe_solver(vopts));
  double dist = 0;
  par::World world(2);
  world.run([&](par::Comm& comm) {
    const dmet::DmetResult r = dmet::run_dmet_distributed(
        mol, opts, dmet::make_vqe_solver(vopts), comm, 2);
    if (comm.rank() == 0) dist = r.energy;
  });
  EXPECT_NEAR(dist, serial.energy, 1e-9);
}

TEST(Integration, LocalGeneralizedAnsatzConservesParticles) {
  vqe::UccsdOptions opts;
  opts.local_generalized = true;
  opts.distance_window = 2;
  const vqe::UccsdAnsatz a = vqe::build_uccsd(4, 2, 2, opts);
  std::vector<double> params(a.n_parameters, 0.4);
  sim::StateVector sv(a.n_qubits);
  sv.run(a.circuit, params);
  pauli::QubitOperator n_op(std::size_t(a.n_qubits));
  for (std::size_t q = 0; q < std::size_t(a.n_qubits); ++q)
    n_op += pauli::jw_number(std::size_t(a.n_qubits), q);
  EXPECT_NEAR(sv.expectation(n_op).real(), 4.0, 1e-9);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Integration, FrozenCoreVqeMatchesActiveSpaceFci) {
  const Solved s = solve(chem::Molecule::lih());
  const chem::MoIntegrals act = chem::make_active_space(s.mo, 1, 4);
  const chem::FciResult fci = chem::fci_ground_state(act, 1, 1);
  vqe::VqeOptions opts;
  opts.optimizer.max_iterations = 50;
  const vqe::VqeResult v = vqe::run_vqe(act, 1, 1, opts);
  EXPECT_NEAR(v.energy, fci.energy, 2e-3);
}

}  // namespace
}  // namespace q2
