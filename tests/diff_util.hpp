// Shared helpers for the differential/property suites (test_gemm_diff,
// test_tensor, test_sim_diff): seeded random operands, an op-aware naive
// reference GEMM that defines the semantics the packed kernel must match
// (including 0 * NaN propagation), and exact/approximate comparators.
#pragma once

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/tensor.hpp"

namespace q2::diff {

inline la::CMatrix random_cmatrix(std::size_t m, std::size_t n, Rng& rng) {
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  return a;
}

inline la::RMatrix random_rmatrix(std::size_t m, std::size_t n, Rng& rng) {
  la::RMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  return a;
}

inline la::Tensor random_tensor(const std::vector<std::size_t>& shape,
                                Rng& rng) {
  la::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.complex_normal();
  return t;
}

/// Element (i, j) of op(a).
template <typename T>
T op_at(const la::Matrix<T>& a, la::Op op, std::size_t i, std::size_t j) {
  switch (op) {
    case la::Op::kNone:
      return a(i, j);
    case la::Op::kTrans:
      return a(j, i);
    case la::Op::kAdjoint:
      if constexpr (std::is_same_v<T, cplx>)
        return std::conj(a(j, i));
      else
        return a(j, i);
  }
  throw Error("op_at: bad Op");
}

template <typename T>
std::size_t op_rows(const la::Matrix<T>& a, la::Op op) {
  return op == la::Op::kNone ? a.rows() : a.cols();
}

template <typename T>
std::size_t op_cols(const la::Matrix<T>& a, la::Op op) {
  return op == la::Op::kNone ? a.cols() : a.rows();
}

/// The semantics oracle: c(i,j) = alpha * sum_p op(a)(i,p) op(b)(p,j)
/// + beta * c_in(i,j), with the sum always fully evaluated (no zero-skips),
/// so NaN and Inf propagate per IEEE rules. beta == 0 overwrites c.
template <typename T>
void gemm_reference(T alpha, const la::Matrix<T>& a, la::Op op_a,
                    const la::Matrix<T>& b, la::Op op_b, T beta,
                    la::Matrix<T>& c) {
  const std::size_t m = op_rows(a, op_a), k = op_cols(a, op_a);
  const std::size_t n = op_cols(b, op_b);
  require(k == op_rows(b, op_b), "gemm_reference: inner dimension mismatch");
  if (c.empty() && beta == T{}) c = la::Matrix<T>(m, n);
  require(c.rows() == m && c.cols() == n, "gemm_reference: shape mismatch");
  la::Matrix<T> out(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      T s{};
      for (std::size_t p = 0; p < k; ++p)
        s += op_at(a, op_a, i, p) * op_at(b, op_b, p, j);
      out(i, j) = (beta == T{}) ? alpha * s : alpha * s + beta * c(i, j);
    }
  c = std::move(out);
}

template <typename T>
double max_abs_diff(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  if (!a.same_shape(b)) return 1e300;
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

inline double max_abs_diff(const la::Tensor& a, const la::Tensor& b) {
  if (a.shape() != b.shape()) return 1e300;
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Bitwise equality — the determinism contract across thread counts is
/// bit-identical output, not merely close.
template <typename T>
bool bit_identical(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  return a.same_shape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

inline bool bit_identical(const la::Tensor& a, const la::Tensor& b) {
  return a.shape() == b.shape() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0);
}

/// Scoped override of the process-default thread count (restores on exit).
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { par::set_default_threads(n); }
  ~ScopedThreads() { par::set_default_threads(0); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;
};

}  // namespace q2::diff
