// Runtime tests: thread pool, simulated MPI collectives (with byte
// accounting and sub-communicators), and the LPT scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/comm.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::par {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PropagatesNothingOnDestruction) {
  // Destroying a pool with completed work must join cleanly (no deadlock).
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(2);
    pool.submit([] {}).get();
  }
  SUCCEED();
}

TEST(Comm, BarrierAndRanks) {
  World world(5);
  std::atomic<int> max_rank{-1};
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    comm.barrier();
    int expect = max_rank.load();
    while (comm.rank() > expect &&
           !max_rank.compare_exchange_weak(expect, comm.rank())) {
    }
  });
  EXPECT_EQ(max_rank.load(), 4);
}

TEST(Comm, BroadcastFromRoot) {
  World world(4);
  world.run([&](Comm& comm) {
    std::vector<double> data(8, comm.rank() == 1 ? 3.25 : 0.0);
    comm.bcast(data, 1);
    for (double x : data) EXPECT_DOUBLE_EQ(x, 3.25);
  });
}

TEST(Comm, ReduceSumToRoot) {
  World world(6);
  std::atomic<double> result{0};
  world.run([&](Comm& comm) {
    const double value = comm.rank() + 1.0;  // 1..6 -> 21
    const double sum = comm.reduce_sum(value, 0);
    if (comm.rank() == 0) result.store(sum);
  });
  EXPECT_DOUBLE_EQ(result.load(), 21.0);
}

TEST(Comm, AllreduceVisibleEverywhere) {
  World world(4);
  std::atomic<int> correct{0};
  world.run([&](Comm& comm) {
    double v = 1.5;
    v = comm.allreduce_sum(v);
    if (v == 6.0) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), 4);
}

TEST(Comm, AllgatherOrdering) {
  World world(3);
  world.run([&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 10);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[1], 10);
    EXPECT_EQ(all[2], 20);
  });
}

TEST(Comm, RepeatedCollectivesStaySynchronized) {
  World world(4);
  world.run([&](Comm& comm) {
    double acc = 0;
    for (int it = 0; it < 50; ++it) {
      std::vector<double> params(3, comm.rank() == 0 ? double(it) : -1.0);
      comm.bcast(params, 0);
      EXPECT_DOUBLE_EQ(params[2], double(it));
      acc = comm.allreduce_sum(params[0]);
    }
    EXPECT_DOUBLE_EQ(acc, 4.0 * 49);
  });
}

TEST(Comm, ByteAccountingMatchesTraffic) {
  World world(2);
  world.run([&](Comm& comm) {
    std::vector<double> data(100, 1.0);
    comm.bcast(data, 0);
    if (comm.rank() == 1)
      EXPECT_EQ(comm.bytes_transferred(), 100 * sizeof(double));
    if (comm.rank() == 0) EXPECT_EQ(comm.bytes_transferred(), 0u);
  });
  EXPECT_EQ(world.total_bytes(), 100 * sizeof(double));
}

TEST(Comm, SplitFormsSubCommunicators) {
  World world(6);
  world.run([&](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Ranks ordered by key (= parent rank).
    const double sum = sub.allreduce_sum(double(comm.rank()));
    if (color == 0) EXPECT_DOUBLE_EQ(sum, 0 + 2 + 4);
    if (color == 1) EXPECT_DOUBLE_EQ(sum, 1 + 3 + 5);
  });
}

TEST(Comm, ExceptionOnRankPropagates) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    // Both ranks throw before any collective (no deadlock risk).
    throw Error("rank failure");
  }),
               Error);
}

TEST(Scheduler, LptBalancesUnevenTasks) {
  std::vector<double> costs = {10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const Schedule s = lpt_schedule(costs, 2);
  EXPECT_DOUBLE_EQ(s.makespan, 10.0);
  EXPECT_NEAR(efficiency(s), 1.0, 1e-9);
}

TEST(Scheduler, LptBeatsRoundRobinOnSkewedCosts) {
  std::vector<double> costs;
  for (int i = 0; i < 64; ++i) costs.push_back(i % 8 == 0 ? 8.0 : 1.0);
  const Schedule lpt = lpt_schedule(costs, 8);
  const Schedule rr = round_robin_schedule(costs, 8);
  EXPECT_LE(lpt.makespan, rr.makespan);
  EXPECT_GE(efficiency(lpt), efficiency(rr) - 1e-12);
}

TEST(Scheduler, AssignmentIsCompleteAndConsistent) {
  std::vector<double> costs(37, 1.0);
  const Schedule s = lpt_schedule(costs, 5);
  std::vector<double> loads(5, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    ASSERT_LT(s.assignment[i], 5u);
    loads[s.assignment[i]] += costs[i];
  }
  for (std::size_t b = 0; b < 5; ++b)
    EXPECT_DOUBLE_EQ(loads[b], s.loads[b]);
  EXPECT_DOUBLE_EQ(std::accumulate(loads.begin(), loads.end(), 0.0), 37.0);
}

TEST(Scheduler, SingleBinMakespanIsTotal) {
  std::vector<double> costs = {1, 2, 3};
  const Schedule s = lpt_schedule(costs, 1);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
}

}  // namespace
}  // namespace q2::par
