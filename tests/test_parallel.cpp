// Runtime tests: thread pool, simulated MPI collectives (with byte
// accounting and sub-communicators), and the LPT scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "obs/metrics.hpp"
#include "parallel/comm.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::par {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PropagatesNothingOnDestruction) {
  // Destroying a pool with completed work must join cleanly (no deadlock).
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(2);
    pool.submit([] {}).get();
  }
  SUCCEED();
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  // Regression: a throwing body used to rethrow from the first future while
  // other workers still referenced the by-ref fn (dangling reference / UB).
  // The exception must now surface only after every in-flight chunk retires.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 13) throw Error("boom at 13");
                        }),
      Error);
  // The pool must stay fully usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForFirstExceptionWinsAndWorkStops) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(0, 100000, [&](std::size_t) {
      executed.fetch_add(1);
      throw Error("every iteration throws");
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "every iteration throws");
  }
  // Unclaimed iterations are abandoned once an exception is recorded.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ThreadPool, NestedParallelForCompletesOnOneThreadPool) {
  // A worker (or caller) that hits a nested parallel_for must help run the
  // inner chunks instead of blocking on an empty queue — the old pool
  // deadlocked here.
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 16,
                      [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, NestedParallelForFromSubmittedTask) {
  // The fragment-solve shape: a submitted task starts its own parallel_for
  // on the same pool while the submitter waits on the future.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> futs;
  for (int t = 0; t < 4; ++t)
    futs.push_back(pool.submit([&] {
      pool.parallel_for(0, 32, [&](std::size_t) { total.fetch_add(1); });
    }));
  // Help drain while waiting: the submitting thread is outside the pool, so
  // it must not starve workers that are themselves inside parallel_for.
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::milliseconds(0)) !=
           std::future_status::ready)
      pool.try_run_one();
    f.get();
  }
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 4, [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ThreadPool, ExceptionInsideNestedParallelForPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t) {
                                   pool.parallel_for(
                                       0, 4, [&](std::size_t j) {
                                         if (j == 2) throw Error("inner");
                                       });
                                 }),
               Error);
}

TEST(ThreadPool, MaxThreadsCapsClaimants) {
  // max_threads=1 means the caller runs every chunk itself; concurrent
  // executions of the body must never exceed the cap.
  ThreadPool pool(4);
  std::atomic<int> concurrent{0}, peak{0};
  pool.parallel_for(
      0, 64,
      [&](std::size_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        concurrent.fetch_sub(1);
      },
      1, /*max_threads=*/1);
  EXPECT_EQ(peak.load(), 1);
}

TEST(ParallelForOptions, SerialAndParallelCoverTheSameRange) {
  ParallelOptions serial;
  serial.n_threads = 1;
  ParallelOptions wide;
  wide.n_threads = 4;
  std::vector<std::atomic<int>> hits(257);
  parallel_for(serial, 0, 257, [&](std::size_t i) { hits[i].fetch_add(1); });
  parallel_for(wide, 0, 257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ParallelForOptions, DefaultThreadsOverrideApplies) {
  // n_threads=0 resolves through the process default (the --threads= flag).
  set_default_threads(1);
  ParallelOptions opts;
  EXPECT_EQ(resolve_threads(opts), 1u);
  set_default_threads(3);
  EXPECT_EQ(resolve_threads(opts), 3u);
  set_default_threads(0);
  EXPECT_GE(resolve_threads(opts), 1u);
}

TEST(ParallelForOptions, ConfigureThreadsRejectsInvalidValues) {
  // Invalid --threads values must be stripped (shared flag parsing) but NOT
  // silently applied — the default stays, and a warning lands on stderr.
  set_default_threads(2);
  for (const char* bad : {"--threads=0", "--threads=-1", "--threads=abc",
                          "--threads=O4", "--threads="}) {
    char prog[] = "prog", flag[64], tail[] = "tail";
    std::strncpy(flag, bad, sizeof(flag) - 1);
    flag[sizeof(flag) - 1] = '\0';
    char* argv[] = {prog, flag, tail};
    int argc = 3;
    testing::internal::CaptureStderr();
    configure_threads_from_args(argc, argv);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("ignoring invalid --threads"), std::string::npos)
        << bad;
    EXPECT_EQ(argc, 2) << bad;  // flag stripped either way
    EXPECT_STREQ(argv[1], "tail");
    ParallelOptions opts;
    EXPECT_EQ(resolve_threads(opts), 2u) << bad;
  }
  // A valid value still applies without a warning.
  {
    char prog[] = "prog", flag[] = "--threads=3";
    char* argv[] = {prog, flag};
    int argc = 2;
    testing::internal::CaptureStderr();
    configure_threads_from_args(argc, argv);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    ParallelOptions opts;
    EXPECT_EQ(resolve_threads(opts), 3u);
  }
  set_default_threads(0);
}

TEST(ParallelForOptions, InvalidEnvThreadsWarnsOnceAndFallsThrough) {
  set_default_threads(0);
  ASSERT_EQ(setenv("Q2_THREADS", "not-a-number", 1), 0);
  ParallelOptions opts;
  testing::internal::CaptureStderr();
  const std::size_t resolved = resolve_threads(opts);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("ignoring invalid Q2_THREADS"), std::string::npos);
  EXPECT_EQ(resolved, ThreadPool::global().size());  // env value ignored
  // Warn-once: the resolver runs on every dispatch, so repeats stay silent.
  testing::internal::CaptureStderr();
  resolve_threads(opts);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  unsetenv("Q2_THREADS");
}

TEST(ThreadPool, ScratchReusesThreadLocalBlocks) {
  using q2::obs::Registry;
  const auto counters = [] {
    const auto snap = Registry::global().snapshot();
    std::uint64_t checkouts = 0, grows = 0;
    for (const auto& [name, v] : snap.counters) {
      if (name == "pool.scratch_checkouts") checkouts = v;
      if (name == "pool.scratch_grows") grows = v;
    }
    return std::make_pair(checkouts, grows);
  };

  const auto [c0, g0] = counters();
  void* first = nullptr;
  {
    Scratch s(256);
    first = s.data();
    ASSERT_NE(first, nullptr);
    EXPECT_GE(s.capacity(), 256u);
    // Fresh (or grown) blocks carry no tags.
    EXPECT_EQ(s.tag(0), Scratch::kNoTag);
    s.set_tag(0, 42);
    s.set_tag(1, 7);
  }
  {
    // Same thread, same size: the freed block comes back, allocation and
    // tags intact.
    Scratch s(256);
    EXPECT_EQ(s.data(), first);
    EXPECT_EQ(s.tag(0), 42u);
    EXPECT_EQ(s.tag(1), 7u);
    {
      // Nested checkout must get a distinct block (LIFO, not the in-use one).
      Scratch inner(64);
      EXPECT_NE(inner.data(), s.data());
    }
    // Growing resets the tags: stale (loop, tile) keys must not survive a
    // reallocation.
    Scratch grown(4 * 1024 * 1024);
    EXPECT_EQ(grown.tag(0), Scratch::kNoTag);
  }
  const auto [c1, g1] = counters();
  EXPECT_EQ(c1 - c0, 4u);
  EXPECT_GE(g1 - g0, 2u);  // first block + nested + growth; reuse adds none
}

TEST(ThreadPool, GrainOccupancyHistogramRecordsPerLoop) {
  // Two loops with different raggedness must both land in the histogram —
  // the old gauge was last-writer-wins, so concurrent/nested loops erased
  // each other's values.
  using q2::obs::Registry;
  auto& h = Registry::global().histogram("pool.grain_occupancy",
                                         {0.25, 0.5, 0.75, 0.9, 0.99, 1.0});
  const std::uint64_t before = h.count();
  ThreadPool pool(2);
  // range 8, grain 4 -> 2 full chunks, occupancy 1.0.
  pool.parallel_for(0, 8, [](std::size_t) {}, 4);
  // range 7, grain 4 -> 2 chunks cover 8 slots, occupancy 7/8.
  pool.parallel_for(0, 7, [](std::size_t) {}, 4);
  EXPECT_EQ(h.count() - before, 2u);
  // 7/8 lands in the (0.75, 0.9] bucket; 1.0 in the (0.99, 1.0] bucket.
  const auto counts = h.bucket_counts();
  EXPECT_GE(counts[3], 1u);
  EXPECT_GE(counts[5], 1u);
}

TEST(Comm, BarrierAndRanks) {
  World world(5);
  std::atomic<int> max_rank{-1};
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    comm.barrier();
    int expect = max_rank.load();
    while (comm.rank() > expect &&
           !max_rank.compare_exchange_weak(expect, comm.rank())) {
    }
  });
  EXPECT_EQ(max_rank.load(), 4);
}

TEST(Comm, BroadcastFromRoot) {
  World world(4);
  world.run([&](Comm& comm) {
    std::vector<double> data(8, comm.rank() == 1 ? 3.25 : 0.0);
    comm.bcast(data, 1);
    for (double x : data) EXPECT_DOUBLE_EQ(x, 3.25);
  });
}

TEST(Comm, ReduceSumToRoot) {
  World world(6);
  std::atomic<double> result{0};
  world.run([&](Comm& comm) {
    const double value = comm.rank() + 1.0;  // 1..6 -> 21
    const double sum = comm.reduce_sum(value, 0);
    if (comm.rank() == 0) result.store(sum);
  });
  EXPECT_DOUBLE_EQ(result.load(), 21.0);
}

TEST(Comm, AllreduceVisibleEverywhere) {
  World world(4);
  std::atomic<int> correct{0};
  world.run([&](Comm& comm) {
    double v = 1.5;
    v = comm.allreduce_sum(v);
    if (v == 6.0) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), 4);
}

TEST(Comm, AllgatherOrdering) {
  World world(3);
  world.run([&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 10);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[1], 10);
    EXPECT_EQ(all[2], 20);
  });
}

TEST(Comm, RepeatedCollectivesStaySynchronized) {
  World world(4);
  world.run([&](Comm& comm) {
    double acc = 0;
    for (int it = 0; it < 50; ++it) {
      std::vector<double> params(3, comm.rank() == 0 ? double(it) : -1.0);
      comm.bcast(params, 0);
      EXPECT_DOUBLE_EQ(params[2], double(it));
      acc = comm.allreduce_sum(params[0]);
    }
    EXPECT_DOUBLE_EQ(acc, 4.0 * 49);
  });
}

TEST(Comm, ByteAccountingMatchesTraffic) {
  World world(2);
  world.run([&](Comm& comm) {
    std::vector<double> data(100, 1.0);
    comm.bcast(data, 0);
    if (comm.rank() == 1)
      EXPECT_EQ(comm.bytes_transferred(), 100 * sizeof(double));
    if (comm.rank() == 0) EXPECT_EQ(comm.bytes_transferred(), 0u);
  });
  EXPECT_EQ(world.total_bytes(), 100 * sizeof(double));
}

TEST(Comm, SplitFormsSubCommunicators) {
  World world(6);
  world.run([&](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Ranks ordered by key (= parent rank).
    const double sum = sub.allreduce_sum(double(comm.rank()));
    if (color == 0) EXPECT_DOUBLE_EQ(sum, 0 + 2 + 4);
    if (color == 1) EXPECT_DOUBLE_EQ(sum, 1 + 3 + 5);
  });
}

TEST(Comm, ExceptionOnRankPropagates) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    // Both ranks throw before any collective (no deadlock risk).
    throw Error("rank failure");
  }),
               Error);
}

TEST(Scheduler, LptBalancesUnevenTasks) {
  std::vector<double> costs = {10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const Schedule s = lpt_schedule(costs, 2);
  EXPECT_DOUBLE_EQ(s.makespan, 10.0);
  EXPECT_NEAR(efficiency(s), 1.0, 1e-9);
}

TEST(Scheduler, LptBeatsRoundRobinOnSkewedCosts) {
  std::vector<double> costs;
  for (int i = 0; i < 64; ++i) costs.push_back(i % 8 == 0 ? 8.0 : 1.0);
  const Schedule lpt = lpt_schedule(costs, 8);
  const Schedule rr = round_robin_schedule(costs, 8);
  EXPECT_LE(lpt.makespan, rr.makespan);
  EXPECT_GE(efficiency(lpt), efficiency(rr) - 1e-12);
}

TEST(Scheduler, AssignmentIsCompleteAndConsistent) {
  std::vector<double> costs(37, 1.0);
  const Schedule s = lpt_schedule(costs, 5);
  std::vector<double> loads(5, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    ASSERT_LT(s.assignment[i], 5u);
    loads[s.assignment[i]] += costs[i];
  }
  for (std::size_t b = 0; b < 5; ++b)
    EXPECT_DOUBLE_EQ(loads[b], s.loads[b]);
  EXPECT_DOUBLE_EQ(std::accumulate(loads.begin(), loads.end(), 0.0), 37.0);
}

TEST(Scheduler, SingleBinMakespanIsTotal) {
  std::vector<double> costs = {1, 2, 3};
  const Schedule s = lpt_schedule(costs, 1);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
}

TEST(Scheduler, EqualCostsScheduleDeterministically) {
  // Ties must break by task index (stable sort) and lowest bin index, so two
  // calls — and therefore every rank of a distributed run — agree exactly.
  std::vector<double> costs(23, 2.5);
  const Schedule a = lpt_schedule(costs, 4);
  const Schedule b = lpt_schedule(costs, 4);
  EXPECT_EQ(a.assignment, b.assignment);
  // With identical costs, LPT in index order deals tasks round-robin.
  for (std::size_t i = 0; i < costs.size(); ++i)
    EXPECT_EQ(a.assignment[i], i % 4) << "task " << i;
  EXPECT_EQ(lpt_assign(costs, 4), a.assignment);
}

}  // namespace
}  // namespace q2::par
