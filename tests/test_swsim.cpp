// Sunway substrate tests: CPE-cluster kernels against their serial oracles,
// LDM budget enforcement, DMA accounting, and machine-model properties
// (collective costs, roofline, strong/weak-scaling shapes).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "swsim/kernels.hpp"
#include "swsim/machine_model.hpp"

namespace q2::sw {
namespace {

la::CMatrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.complex_normal();
  return a;
}

TEST(CpeCluster, SpawnRunsEveryCpe) {
  CpeCluster cluster;
  std::vector<std::atomic<int>> hits(64);
  SpawnConfig cfg;
  cluster.spawn(cfg, [&](CpeContext& ctx) {
    hits[std::size_t(ctx.cpe_id())].fetch_add(1);
    EXPECT_EQ(ctx.row(), ctx.cpe_id() / 8);
    EXPECT_EQ(ctx.col(), ctx.cpe_id() % 8);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CpeCluster, LdmBudgetEnforced) {
  CpeCluster cluster;
  SpawnConfig cfg;
  cfg.num_cpes = 1;
  cfg.ldm_bytes = 1024;
  EXPECT_THROW(cluster.spawn(cfg,
                             [&](CpeContext& ctx) {
                               ctx.ldm_alloc<cplx>(1000);  // 16 KB > 1 KB
                             }),
               Error);
}

TEST(CpeCluster, DmaOutsideLdmRejected) {
  CpeCluster cluster;
  SpawnConfig cfg;
  cfg.num_cpes = 1;
  std::vector<cplx> main_mem(10);
  EXPECT_THROW(cluster.spawn(cfg,
                             [&](CpeContext& ctx) {
                               // dst is main memory, not LDM: invalid get.
                               ctx.dma_get(main_mem.data(), main_mem.data(),
                                           10 * sizeof(cplx));
                             }),
               Error);
}

TEST(CpeCluster, DmaCountersAccumulate) {
  CpeCluster cluster;
  cluster.reset_counters();
  SpawnConfig cfg;
  cfg.num_cpes = 4;
  std::vector<cplx> src(8, cplx{1, 0});
  cluster.spawn(cfg, [&](CpeContext& ctx) {
    cplx* buf = ctx.ldm_alloc<cplx>(8);
    ctx.dma_get(buf, src.data(), 8 * sizeof(cplx));
  });
  const DmaCounters c = cluster.counters();
  EXPECT_EQ(c.bytes_in, 4u * 8 * sizeof(cplx));
  EXPECT_EQ(c.transfers, 4u);
}

TEST(Kernels, GemmCpeMatchesSerial) {
  CpeCluster cluster;
  Rng rng(7);
  for (auto [m, k, n] : {std::array<std::size_t, 3>{16, 16, 16},
                         std::array<std::size_t, 3>{33, 17, 25},
                         std::array<std::size_t, 3>{70, 40, 55}}) {
    const la::CMatrix a = random_matrix(m, k, rng);
    const la::CMatrix b = random_matrix(k, n, rng);
    const la::CMatrix expect = la::matmul(a, b);
    const la::CMatrix got = gemm_cpe(cluster, a, b);
    EXPECT_LT((got - expect).frobenius_norm(), 1e-9)
        << m << "x" << k << "x" << n;
  }
}

TEST(Kernels, GemmCpeGeneratesDmaTraffic) {
  CpeCluster cluster;
  cluster.reset_counters();
  Rng rng(8);
  const la::CMatrix a = random_matrix(32, 32, rng);
  const la::CMatrix b = random_matrix(32, 32, rng);
  gemm_cpe(cluster, a, b);
  const DmaCounters c = cluster.counters();
  EXPECT_GT(c.bytes_in, 2 * 32 * 32 * sizeof(cplx) - 1);   // A and B staged
  EXPECT_GE(c.bytes_out, 32 * 32 * sizeof(cplx));          // C written back
}

TEST(Kernels, SvdCpeMatchesSerialSingularValues) {
  CpeCluster cluster;
  Rng rng(9);
  for (auto [m, n] : {std::array<std::size_t, 2>{12, 12},
                      std::array<std::size_t, 2>{24, 9},
                      std::array<std::size_t, 2>{9, 24}}) {
    const la::CMatrix a = random_matrix(m, n, rng);
    const la::SvdResult serial = la::svd(a);
    const la::SvdResult par = svd_cpe(cluster, a);
    ASSERT_EQ(serial.s.size(), par.s.size());
    for (std::size_t i = 0; i < serial.s.size(); ++i)
      EXPECT_NEAR(par.s[i], serial.s[i], 1e-8 * (1 + serial.s[0]));
    // Reconstruction check for the parallel factors.
    la::CMatrix us = par.u;
    for (std::size_t i = 0; i < us.rows(); ++i)
      for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= par.s[j];
    EXPECT_LT((la::matmul(us, par.vh) - a).frobenius_norm(), 1e-8);
  }
}

TEST(MachineModel, CollectiveCostsGrowLogarithmically) {
  const MachineModel model;
  const double t1k = model.bcast_time(15.6e3, 1024);
  const double t1m = model.bcast_time(15.6e3, 1 << 20);
  EXPECT_GT(t1m, t1k);
  EXPECT_LT(t1m, 3 * t1k);  // log growth, not linear
  EXPECT_DOUBLE_EQ(model.bcast_time(1e6, 1), 0.0);
}

TEST(MachineModel, RooflineKernelTime) {
  const MachineModel model;
  // Compute-bound: lots of flops, few bytes.
  const double tc = model.cpe_kernel_time(1e12, 1e3, 64, 0.75);
  // Bandwidth-bound: few flops, many bytes.
  const double tb = model.cpe_kernel_time(1e3, 1e12, 64, 0.75);
  EXPECT_GT(tc, 1.0);
  EXPECT_GT(tb, 1.0);
  // More CPEs help compute-bound kernels only.
  EXPECT_LT(model.cpe_kernel_time(1e12, 1e3, 64, 0.75),
            model.cpe_kernel_time(1e12, 1e3, 8, 0.75));
  EXPECT_NEAR(model.cpe_kernel_time(1e3, 1e12, 64, 0.75),
              model.cpe_kernel_time(1e3, 1e12, 8, 0.75), 1e-9);
}

TEST(MachineModel, FragmentIterationUsesLpt) {
  const MachineModel model;
  CircuitWorkload w;
  w.circuit_costs_s = {8, 1, 1, 1, 1, 1, 1, 1, 1};
  // With 2 ranks LPT puts the 8 alone: makespan 8 + comm.
  const double t = model.fragment_iteration_time(w, 2);
  EXPECT_GE(t, 8.0);
  EXPECT_LT(t, 8.1);
}

TEST(MachineModel, StrongScalingShape) {
  // Paper Fig. 12 regime: 640 fragments, groups of 2048 processes,
  // 10240 -> 327680 processes, efficiency must stay above 90 %.
  const MachineModel model;
  DmetWorkload w;
  w.n_fragments = 640;
  w.procs_per_group = 2048;
  w.fragment = hydrogen_fragment_workload(4, 64, 1e-9, 1);
  const std::vector<long> procs = {10240, 20480, 40960, 81920, 163840, 327680};
  const auto pts = model.strong_scaling(w, procs);
  ASSERT_EQ(pts.size(), procs.size());
  EXPECT_NEAR(pts[0].speedup, 1.0, 1e-12);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].speedup, pts[i - 1].speedup);
    EXPECT_GT(pts[i].efficiency, 0.9);
    EXPECT_LE(pts[i].efficiency, 1.0 + 1e-9);
  }
  EXPECT_GT(pts.back().speedup, 25.0);  // paper reports 30x of ideal 32x
  EXPECT_EQ(pts.back().cores, 327680l * 65);
}

TEST(MachineModel, WeakScalingShape) {
  const MachineModel model;
  std::vector<DmetWorkload> ws;
  std::vector<long> procs;
  for (long p : {10240l, 20480l, 81920l, 327680l}) {
    DmetWorkload w;
    w.procs_per_group = 2048;
    w.n_fragments = std::size_t(p / 2048) * 4;  // work grows with machine
    w.fragment = hydrogen_fragment_workload(4, 64, 1e-9, 2);
    ws.push_back(w);
    procs.push_back(p);
  }
  const auto pts = model.weak_scaling(ws, procs);
  for (const auto& p : pts) {
    EXPECT_GT(p.efficiency, 0.85);
    EXPECT_LE(p.efficiency, 1.0 + 1e-9);
  }
}

TEST(MachineModel, WorkloadGeneratorScalesWithQubits) {
  const CircuitWorkload small = hydrogen_fragment_workload(4, 16, 1e-9, 3);
  const CircuitWorkload large = hydrogen_fragment_workload(8, 16, 1e-9, 3);
  EXPECT_GT(large.circuit_costs_s.size(), small.circuit_costs_s.size());
}

}  // namespace
}  // namespace q2::sw
