// DMET tests: bath dimensions, the single-fragment == FCI identity, the H4
// ring against FCI (the Fig. 7a acceptance criterion, < 0.5 % relative
// error), chemical-potential behaviour, and distributed == serial.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/scf.hpp"
#include "dmet/dmet_driver.hpp"
#include "linalg/gemm.hpp"

namespace q2::dmet {
namespace {

chem::MoIntegrals mo_for(const chem::Molecule& mol, double* hf = nullptr,
                         double* e_fci = nullptr) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  EXPECT_TRUE(scf.converged);
  if (hf) *hf = scf.energy;
  chem::MoIntegrals mo =
      chem::transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
  if (e_fci) {
    const int ne = mol.n_electrons();
    *e_fci = chem::fci_ground_state(mo, ne / 2, ne / 2).energy;
  }
  return mo;
}

TEST(Bath, DimensionsBoundedByFragment) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);

  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(6, 2));
  for (const Fragment& f : frags) {
    const EmbeddingBasis emb = make_bath(p, f);
    EXPECT_EQ(emb.n_fragment, 2u);
    EXPECT_LE(emb.n_bath, emb.n_fragment);
    // Embedding orbitals orthonormal.
    const la::RMatrix g = la::matmul(emb.w, emb.w, la::Op::kTrans, la::Op::kNone);
    for (std::size_t i = 0; i < g.rows(); ++i)
      for (std::size_t j = 0; j < g.cols(); ++j)
        EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-9);
  }
}

TEST(Fragmenter, UniformGroupsAndValidation) {
  const auto groups = uniform_atom_groups(7, 2);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[3].size(), 1u);
  const chem::Molecule mol = chem::Molecule::hydrogen_chain(4, 1.6);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  EXPECT_THROW(make_fragments(basis, 4, {{0, 1}, {1, 2, 3}}), Error);
  EXPECT_THROW(make_fragments(basis, 4, {{0, 1}}), Error);
}

TEST(Dmet, SingleFragmentReproducesFci) {
  // One fragment covering everything: no bath, no environment, and the DMET
  // energy must equal FCI exactly.
  const chem::Molecule mol = chem::Molecule::h2(1.4);
  double e_fci = 0;
  mo_for(mol, nullptr, &e_fci);

  DmetOptions opts;
  opts.fragments = {{0, 1}};
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, e_fci, 1e-7);
  EXPECT_NEAR(r.total_electrons, 2.0, 1e-7);
}

TEST(Dmet, H4RingWithinHalfPercentOfFci) {
  // The Fig. 7(a) acceptance criterion on a small ring: relative error of
  // the DMET(FCI-solver) energy below 0.5 %.
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  double e_hf = 0, e_fci = 0;
  mo_for(mol, &e_hf, &e_fci);

  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_LT(std::abs((r.energy - e_fci) / e_fci), 5e-3);
  // DMET should improve on the mean-field reference.
  EXPECT_LT(std::abs(r.energy - e_fci), std::abs(e_hf - e_fci));
  EXPECT_NEAR(r.total_electrons, 4.0, opts.electron_tolerance * 10);
}

TEST(Dmet, H6RingElectronCountMatches) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(6, 2);
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.total_electrons, 6.0, 1e-3);
  ASSERT_EQ(r.fragment_energies.size(), 3u);
  // Ring symmetry: all fragments equivalent.
  EXPECT_NEAR(r.fragment_energies[0], r.fragment_energies[1], 1e-5);
  EXPECT_NEAR(r.fragment_electrons[0], 2.0, 1e-3);
}

// Scripted solver for exercising the chemical-potential loop: recovers mu
// from the diagonal shift with_chemical_potential applied and reports a
// prescribed electron count N(mu) per fragment. N must be increasing in mu.
FragmentSolver make_scripted_solver(
    const std::function<double(double)>& electrons_of_mu) {
  return [electrons_of_mu](const EmbeddingProblem& prob,
                           const chem::MoIntegrals& solver_mo) {
    const std::size_t f0 = prob.fragment_orbitals.at(0);
    const double mu = prob.solver.h(f0, f0) - solver_mo.h(f0, f0);
    FragmentSolution sol;
    sol.energy = -1.0;
    sol.electrons = electrons_of_mu(mu);
    return sol;
  };
}

TEST(Dmet, MuBracketFailureIsReportedNotSilent) {
  // Regression: the lo/hi bracket-expansion loops shared one `expansions`
  // budget, so the hi side could borrow up to 12 doublings when lo used none
  // — and a bracket that genuinely failed went silently into bisection. The
  // root here sits at mu = 100: beyond each side's own 6-doubling budget
  // (0.5 * 2^6 = 32) but within the old borrowed 12 (0.5 * 2^12 = 2048).
  // Pre-PR code "converged" onto it; now the fit must be reported failed.
  const chem::Molecule mol = chem::Molecule::h2(1.4);
  DmetOptions opts;
  opts.fragments = {{0}, {1}};  // two fragments so the mu fit engages
  // Per fragment: N(mu) = 1 + (mu - 100)/2000, increasing, crosses 1 at 100.
  const DmetResult r = run_dmet(mol, opts, make_scripted_solver([](double mu) {
                                  return 1.0 + (mu - 100.0) / 2000.0;
                                }));
  EXPECT_FALSE(r.converged);
  // 1 initial eval + 2 bracket endpoints + at most 6 hi expansions, and no
  // bisection sweep on the invalid bracket.
  EXPECT_LE(r.mu_iterations, 9);
}

TEST(Dmet, MuBracketWithinBudgetStillConverges) {
  // Root at mu = 5 needs 4 hi doublings (0.5 * 2^4 = 8 >= 5) — inside the
  // per-side budget, so the fit must succeed as before.
  const chem::Molecule mol = chem::Molecule::h2(1.4);
  DmetOptions opts;
  opts.fragments = {{0}, {1}};
  const DmetResult r = run_dmet(mol, opts, make_scripted_solver([](double mu) {
                                  return 1.0 + (mu - 5.0) / 100.0;
                                }));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.mu, 5.0, 0.01);
  EXPECT_NEAR(r.total_electrons, 2.0, opts.electron_tolerance * 2);
}

TEST(Dmet, ParallelFragmentSolvesBitIdenticalToSerial) {
  // Fragment solves fan out on the pool; per-fragment results land in their
  // own slots and reduce in index order, so the total energy is exactly the
  // serial one.
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  DmetOptions serial_opts;
  serial_opts.fragments = uniform_atom_groups(4, 2);
  serial_opts.parallel.n_threads = 1;
  DmetOptions parallel_opts = serial_opts;
  parallel_opts.parallel.n_threads = 4;

  const DmetResult a = run_dmet(mol, serial_opts, make_fci_solver());
  const DmetResult b = run_dmet(mol, parallel_opts, make_fci_solver());
  EXPECT_EQ(a.energy, b.energy);  // byte-identical
  EXPECT_EQ(a.mu, b.mu);
  ASSERT_EQ(a.fragment_energies.size(), b.fragment_energies.size());
  for (std::size_t f = 0; f < a.fragment_energies.size(); ++f)
    EXPECT_EQ(a.fragment_energies[f], b.fragment_energies[f]);
}

TEST(Dmet, ParallelFragmentsWithVqeSolverNestsSafely) {
  // The nesting acceptance case: fragment solves (outer parallel_for) invoke
  // VQE whose term sweep is an inner parallel_for on the same pool. Must
  // complete and match the serial nested result exactly.
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  vqe::VqeOptions vqe_opts;
  vqe_opts.optimizer.max_iterations = 2;

  DmetOptions serial_opts;
  serial_opts.fragments = uniform_atom_groups(4, 2);
  serial_opts.fit_chemical_potential = false;  // one evaluate() is enough
  serial_opts.parallel.n_threads = 1;
  DmetOptions parallel_opts = serial_opts;
  parallel_opts.parallel.n_threads = 4;

  vqe_opts.mps.parallel.n_threads = 1;
  const DmetResult a = run_dmet(mol, serial_opts, make_vqe_solver(vqe_opts));
  vqe_opts.mps.parallel.n_threads = 2;
  const DmetResult b = run_dmet(mol, parallel_opts, make_vqe_solver(vqe_opts));
  EXPECT_EQ(a.energy, b.energy);
}

TEST(Dmet, VqeSolverMatchesFciSolverOnH2Fragments) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  // The ring is homogeneous, so mu = 0 already balances the electron count;
  // skipping the fit keeps the VQE-solver test within budget.
  opts.fit_chemical_potential = false;
  const DmetResult fci_r = run_dmet(mol, opts, make_fci_solver());

  vqe::VqeOptions vopts;
  vopts.optimizer.max_iterations = 20;
  vopts.mps.max_bond = 16;
  const DmetResult vqe_r = run_dmet(mol, opts, make_vqe_solver(vopts));
  EXPECT_NEAR(vqe_r.energy, fci_r.energy, 5e-3);
  EXPECT_NEAR(vqe_r.total_electrons, 4.0, 5e-2);
}

TEST(Dmet, ChemicalPotentialShiftsElectrons) {
  // Raising mu on a fragment pulls electrons into it (monotonicity the
  // bisection relies on).
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);
  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(4, 2));
  const EmbeddingBasis emb = make_bath(p, frags[0]);
  const EmbeddingProblem prob = make_embedding(ints, lb, p, emb);
  const FragmentSolver solver = make_fci_solver();

  auto electrons_at = [&](double mu) {
    const chem::MoIntegrals shifted =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    return solver(prob, shifted).electrons;
  };
  EXPECT_LT(electrons_at(-0.3), electrons_at(0.3));
}

TEST(Dmet, EmbeddingProblemShapes) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);
  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(6, 2));
  const EmbeddingBasis emb = make_bath(p, frags[1]);
  const EmbeddingProblem prob = make_embedding(ints, lb, p, emb);
  EXPECT_EQ(prob.solver.n_orbitals(), emb.n_fragment + emb.n_bath);
  EXPECT_EQ(prob.n_alpha + prob.n_beta, 2 * int(emb.n_fragment));
  // The solver and energy Hamiltonians share ERIs but differ in h.
  EXPECT_NEAR(prob.solver.eri(0, 0, 1, 1), prob.energy.eri(0, 0, 1, 1), 1e-12);
}

TEST(Dmet, DistributedMatchesSerial) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  const DmetResult serial = run_dmet(mol, opts, make_fci_solver());

  double dist_energy = 0, dist_ne = 0;
  par::World world(4);
  world.run([&](par::Comm& comm) {
    const DmetResult r =
        run_dmet_distributed(mol, opts, make_fci_solver(), comm, 2);
    if (comm.rank() == 0) {
      dist_energy = r.energy;
      dist_ne = r.total_electrons;
    }
  });
  EXPECT_NEAR(dist_energy, serial.energy, 1e-9);
  EXPECT_NEAR(dist_ne, serial.total_electrons, 1e-9);
}

}  // namespace
}  // namespace q2::dmet
