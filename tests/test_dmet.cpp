// DMET tests: bath dimensions, the single-fragment == FCI identity, the H4
// ring against FCI (the Fig. 7a acceptance criterion, < 0.5 % relative
// error), chemical-potential behaviour, and distributed == serial.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/scf.hpp"
#include "dmet/dmet_driver.hpp"
#include "linalg/gemm.hpp"

namespace q2::dmet {
namespace {

chem::MoIntegrals mo_for(const chem::Molecule& mol, double* hf = nullptr,
                         double* e_fci = nullptr) {
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  EXPECT_TRUE(scf.converged);
  if (hf) *hf = scf.energy;
  chem::MoIntegrals mo =
      chem::transform_to_mo(ints, scf.coefficients, scf.nuclear_repulsion);
  if (e_fci) {
    const int ne = mol.n_electrons();
    *e_fci = chem::fci_ground_state(mo, ne / 2, ne / 2).energy;
  }
  return mo;
}

TEST(Bath, DimensionsBoundedByFragment) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);

  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(6, 2));
  for (const Fragment& f : frags) {
    const EmbeddingBasis emb = make_bath(p, f);
    EXPECT_EQ(emb.n_fragment, 2u);
    EXPECT_LE(emb.n_bath, emb.n_fragment);
    // Embedding orbitals orthonormal.
    const la::RMatrix g = la::matmul(emb.w, emb.w, la::Op::kTrans, la::Op::kNone);
    for (std::size_t i = 0; i < g.rows(); ++i)
      for (std::size_t j = 0; j < g.cols(); ++j)
        EXPECT_NEAR(g(i, j), i == j ? 1.0 : 0.0, 1e-9);
  }
}

TEST(Fragmenter, UniformGroupsAndValidation) {
  const auto groups = uniform_atom_groups(7, 2);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[3].size(), 1u);
  const chem::Molecule mol = chem::Molecule::hydrogen_chain(4, 1.6);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  EXPECT_THROW(make_fragments(basis, 4, {{0, 1}, {1, 2, 3}}), Error);
  EXPECT_THROW(make_fragments(basis, 4, {{0, 1}}), Error);
}

TEST(Dmet, SingleFragmentReproducesFci) {
  // One fragment covering everything: no bath, no environment, and the DMET
  // energy must equal FCI exactly.
  const chem::Molecule mol = chem::Molecule::h2(1.4);
  double e_fci = 0;
  mo_for(mol, nullptr, &e_fci);

  DmetOptions opts;
  opts.fragments = {{0, 1}};
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, e_fci, 1e-7);
  EXPECT_NEAR(r.total_electrons, 2.0, 1e-7);
}

TEST(Dmet, H4RingWithinHalfPercentOfFci) {
  // The Fig. 7(a) acceptance criterion on a small ring: relative error of
  // the DMET(FCI-solver) energy below 0.5 %.
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  double e_hf = 0, e_fci = 0;
  mo_for(mol, &e_hf, &e_fci);

  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_LT(std::abs((r.energy - e_fci) / e_fci), 5e-3);
  // DMET should improve on the mean-field reference.
  EXPECT_LT(std::abs(r.energy - e_fci), std::abs(e_hf - e_fci));
  EXPECT_NEAR(r.total_electrons, 4.0, opts.electron_tolerance * 10);
}

TEST(Dmet, H6RingElectronCountMatches) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(6, 2);
  const DmetResult r = run_dmet(mol, opts, make_fci_solver());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.total_electrons, 6.0, 1e-3);
  ASSERT_EQ(r.fragment_energies.size(), 3u);
  // Ring symmetry: all fragments equivalent.
  EXPECT_NEAR(r.fragment_energies[0], r.fragment_energies[1], 1e-5);
  EXPECT_NEAR(r.fragment_electrons[0], 2.0, 1e-3);
}

TEST(Dmet, VqeSolverMatchesFciSolverOnH2Fragments) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  // The ring is homogeneous, so mu = 0 already balances the electron count;
  // skipping the fit keeps the VQE-solver test within budget.
  opts.fit_chemical_potential = false;
  const DmetResult fci_r = run_dmet(mol, opts, make_fci_solver());

  vqe::VqeOptions vopts;
  vopts.optimizer.max_iterations = 20;
  vopts.mps.max_bond = 16;
  const DmetResult vqe_r = run_dmet(mol, opts, make_vqe_solver(vopts));
  EXPECT_NEAR(vqe_r.energy, fci_r.energy, 5e-3);
  EXPECT_NEAR(vqe_r.total_electrons, 4.0, 5e-2);
}

TEST(Dmet, ChemicalPotentialShiftsElectrons) {
  // Raising mu on a fragment pulls electrons into it (monotonicity the
  // bisection relies on).
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);
  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(4, 2));
  const EmbeddingBasis emb = make_bath(p, frags[0]);
  const EmbeddingProblem prob = make_embedding(ints, lb, p, emb);
  const FragmentSolver solver = make_fci_solver();

  auto electrons_at = [&](double mu) {
    const chem::MoIntegrals shifted =
        with_chemical_potential(prob.solver, prob.fragment_orbitals, mu);
    return solver(prob, shifted).electrons;
  };
  EXPECT_LT(electrons_at(-0.3), electrons_at(0.3));
}

TEST(Dmet, EmbeddingProblemShapes) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(6, 1.8);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  const chem::ScfResult scf = chem::rhf(mol, basis, ints);
  const LowdinBasis lb = make_lowdin(ints.overlap);
  const la::RMatrix p = oao_density(lb, scf.density);
  const auto frags =
      make_fragments(basis, mol.n_atoms(), uniform_atom_groups(6, 2));
  const EmbeddingBasis emb = make_bath(p, frags[1]);
  const EmbeddingProblem prob = make_embedding(ints, lb, p, emb);
  EXPECT_EQ(prob.solver.n_orbitals(), emb.n_fragment + emb.n_bath);
  EXPECT_EQ(prob.n_alpha + prob.n_beta, 2 * int(emb.n_fragment));
  // The solver and energy Hamiltonians share ERIs but differ in h.
  EXPECT_NEAR(prob.solver.eri(0, 0, 1, 1), prob.energy.eri(0, 0, 1, 1), 1e-12);
}

TEST(Dmet, DistributedMatchesSerial) {
  const chem::Molecule mol = chem::Molecule::hydrogen_ring(4, 1.8);
  DmetOptions opts;
  opts.fragments = uniform_atom_groups(4, 2);
  const DmetResult serial = run_dmet(mol, opts, make_fci_solver());

  double dist_energy = 0, dist_ne = 0;
  par::World world(4);
  world.run([&](par::Comm& comm) {
    const DmetResult r =
        run_dmet_distributed(mol, opts, make_fci_solver(), comm, 2);
    if (comm.rank() == 0) {
      dist_energy = r.energy;
      dist_ne = r.total_electrons;
    }
  });
  EXPECT_NEAR(dist_energy, serial.energy, 1e-9);
  EXPECT_NEAR(dist_ne, serial.total_electrons, 1e-9);
}

}  // namespace
}  // namespace q2::dmet
