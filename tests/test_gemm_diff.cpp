// Differential/property harness for the packed blocked GEMM: seeded shape
// sweeps (0, 1, primes, block-boundary straddlers) x Op combinations x
// alpha/beta edge cases against the naive reference kernel, NaN/Inf
// propagation (the zero-skip regression), aliasing, the offset-table and
// raw-tile entry points, and the bit-identical-across-thread-counts
// determinism contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "diff_util.hpp"
#include "linalg/simd.hpp"
#include "parallel/thread_pool.hpp"

namespace q2::la {
namespace {

using diff::bit_identical;
using diff::gemm_reference;
using diff::max_abs_diff;
using diff::random_cmatrix;
using diff::random_rmatrix;

constexpr Op kOps[] = {Op::kNone, Op::kTrans, Op::kAdjoint};

// Dimensions chosen to straddle every kernel boundary: empty, single,
// sub-register-tile primes, the MR/NR edges, the MC block edge, and sizes
// with non-trivial remainders against MC=96 / KC=256.
constexpr std::size_t kDims[] = {0, 1, 2, 3, 5, 7, 8, 9, 17, 31, 33, 64, 97};

double tolerance(std::size_t k, double scale) {
  return 1e-13 * double(k + 1) * std::max(1.0, scale);
}

TEST(GemmDiff, ComplexShapeOpSweepMatchesReference) {
  Rng rng(101);
  const cplx alphas[] = {cplx{1}, cplx{0}, cplx{-1}, cplx{0.3, -0.7}};
  const cplx betas[] = {cplx{0}, cplx{1}, cplx{-0.5, 0.25}};
  int cases = 0;
  while (cases < 200) {
    const std::size_t m = kDims[rng.index(std::size(kDims))];
    const std::size_t k = kDims[rng.index(std::size(kDims))];
    const std::size_t n = kDims[rng.index(std::size(kDims))];
    const Op op_a = kOps[rng.index(3)], op_b = kOps[rng.index(3)];
    const cplx alpha = alphas[rng.index(std::size(alphas))];
    const cplx beta = betas[rng.index(std::size(betas))];

    const CMatrix a = op_a == Op::kNone ? random_cmatrix(m, k, rng)
                                        : random_cmatrix(k, m, rng);
    const CMatrix b = op_b == Op::kNone ? random_cmatrix(k, n, rng)
                                        : random_cmatrix(n, k, rng);
    CMatrix c = random_cmatrix(m, n, rng);
    CMatrix expected = c;
    gemm_reference(alpha, a, op_a, b, op_b, beta, expected);
    gemm(alpha, a, op_a, b, op_b, beta, c);
    EXPECT_LE(max_abs_diff(c, expected), tolerance(k, expected.max_abs()))
        << "m=" << m << " k=" << k << " n=" << n << " op_a=" << int(op_a)
        << " op_b=" << int(op_b);
    ++cases;
  }
}

TEST(GemmDiff, RealShapeOpSweepMatchesReference) {
  Rng rng(202);
  const double alphas[] = {1.0, 0.0, -1.0, 0.37};
  const double betas[] = {0.0, 1.0, -2.5};
  for (int cases = 0; cases < 100; ++cases) {
    const std::size_t m = kDims[rng.index(std::size(kDims))];
    const std::size_t k = kDims[rng.index(std::size(kDims))];
    const std::size_t n = kDims[rng.index(std::size(kDims))];
    const Op op_a = kOps[rng.index(3)], op_b = kOps[rng.index(3)];
    const double alpha = alphas[rng.index(std::size(alphas))];
    const double beta = betas[rng.index(std::size(betas))];

    const RMatrix a = op_a == Op::kNone ? random_rmatrix(m, k, rng)
                                        : random_rmatrix(k, m, rng);
    const RMatrix b = op_b == Op::kNone ? random_rmatrix(k, n, rng)
                                        : random_rmatrix(n, k, rng);
    RMatrix c = random_rmatrix(m, n, rng);
    RMatrix expected = c;
    gemm_reference(alpha, a, op_a, b, op_b, beta, expected);
    gemm(alpha, a, op_a, b, op_b, beta, c);
    EXPECT_LE(max_abs_diff(c, expected), tolerance(k, expected.max_abs()));
  }
}

TEST(GemmDiff, LargerThanEveryBlockMatchesReference) {
  Rng rng(303);
  // 130 > MC=96, 270 > KC=256: exercises multi-block loops with remainders.
  const CMatrix a = random_cmatrix(130, 270, rng);
  const CMatrix b = random_cmatrix(270, 101, rng);
  CMatrix c, expected;
  gemm(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0}, c);
  gemm_reference(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0}, expected);
  EXPECT_LE(max_abs_diff(c, expected), tolerance(270, expected.max_abs()));
}

TEST(GemmDiff, ZeroInnerDimensionScalesCOnly) {
  Rng rng(7);
  CMatrix c = random_cmatrix(3, 4, rng);
  const CMatrix c0 = c;
  const CMatrix a(3, 0), b(0, 4);
  gemm(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{2}, c);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_EQ(c.data()[i], cplx{2} * c0.data()[i]);
}

TEST(GemmDiff, BetaZeroOverwritesStaleNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  CMatrix c(2, 2, cplx{nan, nan});
  const CMatrix a = CMatrix::identity(2), b = CMatrix::identity(2);
  gemm(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0}, c);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_FALSE(std::isnan(c.data()[i].real()));
  EXPECT_EQ(c(0, 0), cplx{1});
}

// Regression for the old kernel's `aip == 0` row-skip: a zero row in A
// against NaN/Inf in B silently produced 0 where IEEE (and the reference
// kernel) give NaN. This test fails on the pre-packed kernel.
TEST(GemmDiff, ZeroTimesNanPropagates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Column 0 of A is all zero, so the old kernel's `aip == 0` skip never
  // touches row 0 of B — where the NaN/Inf live. IEEE says every C entry is
  // 0 * NaN (or 0 * Inf) + finite = NaN; the old kernel returned finite.
  CMatrix a{{cplx{0}, cplx{1}}, {cplx{0}, cplx{2}}};
  CMatrix b{{cplx{nan, 0}, cplx{inf, 0}}, {cplx{1}, cplx{1}}};
  CMatrix c, expected;
  gemm(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0}, c);
  diff::gemm_reference(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0}, expected);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isnan(expected(i, j).real())) << i << "," << j;
      EXPECT_TRUE(std::isnan(c(i, j).real())) << i << "," << j;
    }
}

TEST(GemmDiff, AliasedOutputMatchesReference) {
  Rng rng(404);
  for (const std::size_t n : {4u, 33u, 97u}) {
    const CMatrix a = random_cmatrix(n, n, rng);
    const CMatrix b = random_cmatrix(n, n, rng);

    CMatrix c1 = a;  // C aliases A
    CMatrix e1 = a;
    gemm_reference(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{0.5, 0}, e1);
    gemm(cplx{1}, c1, Op::kNone, b, Op::kNone, cplx{0.5, 0}, c1);
    EXPECT_LE(max_abs_diff(c1, e1), tolerance(n, e1.max_abs()));

    CMatrix c2 = b;  // C aliases B
    CMatrix e2 = b;
    gemm_reference(cplx{1}, a, Op::kTrans, b, Op::kNone, cplx{1}, e2);
    gemm(cplx{1}, a, Op::kTrans, c2, Op::kNone, cplx{1}, c2);
    EXPECT_LE(max_abs_diff(c2, e2), tolerance(n, e2.max_abs()));
  }
}

TEST(GemmDiff, GemmTileAccumulates) {
  Rng rng(505);
  const std::size_t m = 13, k = 21, n = 9;
  const CMatrix a = random_cmatrix(m, k, rng);
  const CMatrix b = random_cmatrix(k, n, rng);
  CMatrix c = random_cmatrix(m, n, rng);
  CMatrix expected = c;
  gemm_reference(cplx{1}, a, Op::kNone, b, Op::kNone, cplx{1}, expected);
  gemm_tile(a.data(), k, b.data(), n, c.data(), n, m, k, n);
  EXPECT_LE(max_abs_diff(c, expected), tolerance(k, expected.max_abs()));
}

// gemm_raw validates the stride of every operand against its *stored* shape:
// op == kNone reads A as m x k (lda >= k), transposed/adjoint ops read the
// k x m storage (lda >= m); likewise ldb against n / k. An undersized stride
// used to read out of bounds silently.
TEST(GemmDiff, GemmRawRejectsUndersizedStrides) {
  const std::size_t m = 6, k = 5, n = 4;
  std::vector<cplx> a(64), b(64), c(64);

  // All-valid baseline (generous strides) must not throw.
  EXPECT_NO_THROW(
      gemm_raw(m, k, n, a.data(), 8, Op::kNone, b.data(), 8, Op::kNone,
               c.data(), 8));
  EXPECT_NO_THROW(
      gemm_raw(m, k, n, a.data(), 8, Op::kTrans, b.data(), 8, Op::kAdjoint,
               c.data(), 8));

  // lda: kNone needs >= k, kTrans/kAdjoint need >= m.
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), k - 1, Op::kNone, b.data(), 8,
                        Op::kNone, c.data(), 8),
               q2::Error);
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), m - 1, Op::kTrans, b.data(), 8,
                        Op::kNone, c.data(), 8),
               q2::Error);
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), m - 1, Op::kAdjoint, b.data(), 8,
                        Op::kNone, c.data(), 8),
               q2::Error);
  // A stride legal for the op's storage but smaller than the other
  // dimension must be accepted: stored k x m only needs lda >= m.
  EXPECT_NO_THROW(
      gemm_raw(n, k, m, a.data(), n, Op::kTrans, b.data(), 8, Op::kNone,
               c.data(), 8));

  // ldb: kNone needs >= n, kTrans/kAdjoint need >= k.
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), 8, Op::kNone, b.data(), n - 1,
                        Op::kNone, c.data(), 8),
               q2::Error);
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), 8, Op::kNone, b.data(), k - 1,
                        Op::kTrans, c.data(), 8),
               q2::Error);
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), 8, Op::kNone, b.data(), k - 1,
                        Op::kAdjoint, c.data(), 8),
               q2::Error);

  // ldc < n (pre-existing check, kept).
  EXPECT_THROW(gemm_raw(m, k, n, a.data(), 8, Op::kNone, b.data(), 8,
                        Op::kNone, c.data(), n - 1),
               q2::Error);
}

TEST(GemmDiff, GemmOffsetsIntoRejectsNullOperands) {
  const std::size_t m = 2, k = 2, n = 2;
  std::vector<cplx> data(16), out(16);
  const std::vector<std::size_t> roff{0, 4}, coff{0, 1};
  EXPECT_THROW(gemm_offsets_into(m, k, n, nullptr, roff, coff, data.data(),
                                 roff, coff, out.data(), n),
               q2::Error);
  EXPECT_THROW(gemm_offsets_into(m, k, n, data.data(), roff, coff, nullptr,
                                 roff, coff, out.data(), n),
               q2::Error);
  EXPECT_THROW(gemm_offsets_into(m, k, n, data.data(), roff, coff, data.data(),
                                 roff, coff, nullptr, n),
               q2::Error);
}

// The portable scalar path and whatever ISA dispatch picked must agree to
// rounding (they sum in different orders), and each must uphold the
// thread-count determinism contract on its own.
TEST(GemmDiff, PortableIsaAgreesWithDispatch) {
  Rng rng(909);
  const std::size_t m = 70, k = 129, n = 53;
  const CMatrix a = random_cmatrix(m, k, rng);
  const CMatrix b = random_cmatrix(k, n, rng);

  simd::set_isa_override(simd::Isa::kPortable);
  const CMatrix c_portable = matmul(a, b);
  CMatrix c_portable_mt;
  {
    par::ParallelOptions opts;
    opts.n_threads = 4;
    c_portable_mt = matmul(a, b, Op::kNone, Op::kNone, opts);
  }
  simd::clear_isa_override();

  const CMatrix c_active = matmul(a, b);
  EXPECT_TRUE(bit_identical(c_portable_mt, c_portable));
  EXPECT_LE(max_abs_diff(c_active, c_portable),
            tolerance(k, c_portable.max_abs()));
}

TEST(GemmDiff, OffsetTablesReproducePlainProduct) {
  Rng rng(606);
  const std::size_t m = 37, k = 65, n = 18;
  const CMatrix a = random_cmatrix(m, k, rng);
  const CMatrix b = random_cmatrix(k, n, rng);
  std::vector<std::size_t> a_roff(m), a_coff(k), b_roff(k), b_coff(n);
  for (std::size_t i = 0; i < m; ++i) a_roff[i] = i * k;
  for (std::size_t p = 0; p < k; ++p) a_coff[p] = p;
  for (std::size_t p = 0; p < k; ++p) b_roff[p] = p * n;
  for (std::size_t j = 0; j < n; ++j) b_coff[j] = j;
  const CMatrix c =
      gemm_offsets(m, k, n, a.data(), a_roff, a_coff, b.data(), b_roff, b_coff);
  EXPECT_TRUE(bit_identical(c, matmul(a, b)));
}

// The determinism contract: for a fixed input, the result is bit-identical
// at every thread count (1, 2, 8), including oversubscription of a small
// pool. Run under `ctest -L concurrency` with Q2_SANITIZE=thread.
TEST(GemmDiff, BitIdenticalAcrossThreadCounts) {
  Rng rng(707);
  const std::size_t sizes[][3] = {{7, 5, 3}, {97, 130, 64}, {200, 257, 33}};
  for (const auto& s : sizes) {
    const CMatrix a = random_cmatrix(s[0], s[1], rng);
    const CMatrix b = random_cmatrix(s[1], s[2], rng);
    CMatrix base;
    {
      par::ParallelOptions opts;
      opts.n_threads = 1;
      base = matmul(a, b, Op::kNone, Op::kNone, opts);
    }
    for (const std::size_t t : {2u, 8u}) {
      par::ParallelOptions opts;
      opts.n_threads = t;
      const CMatrix c = matmul(a, b, Op::kNone, Op::kNone, opts);
      EXPECT_TRUE(bit_identical(c, base)) << "threads=" << t;
    }
  }
}

TEST(GemmDiff, DefaultThreadResolutionBitIdentical) {
  Rng rng(808);
  const CMatrix a = random_cmatrix(150, 90, rng);
  const CMatrix b = random_cmatrix(90, 110, rng);
  CMatrix base;
  {
    diff::ScopedThreads one(1);
    base = matmul(a, b);
  }
  for (const std::size_t t : {2u, 8u}) {
    diff::ScopedThreads scoped(t);
    EXPECT_TRUE(bit_identical(matmul(a, b), base)) << "threads=" << t;
  }
}

}  // namespace
}  // namespace q2::la
