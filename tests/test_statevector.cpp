// State-vector simulator tests: gate-by-gate analytic checks, expectation
// values, and the qubit-Hamiltonian ground-state oracle.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "linalg/eigh.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {
namespace {

using circ::Circuit;
using pauli::PauliString;
using pauli::QubitOperator;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitudes()[0], cplx(1, 0));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-14);
}

TEST(StateVector, XGateFlipsQubit) {
  StateVector sv(2);
  sv.apply(circ::make_x(1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 1.0, 1e-14);  // |q1 q0> = |10>
  EXPECT_NEAR(sv.probability(1, 1), 1.0, 1e-14);
  EXPECT_NEAR(sv.probability(0, 1), 0.0, 1e-14);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector sv(1);
  sv.apply(circ::make_h(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 1 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(sv.expectation(PauliString::parse(1, "X0")).real(), 1.0, 1e-12);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.apply(circ::make_h(0));
  sv.apply(circ::make_cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(sv.expectation(PauliString::parse(2, "Z0 Z1")).real(), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(PauliString::parse(2, "X0 X1")).real(), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(PauliString::parse(2, "Z0")).real(), 0.0, 1e-12);
}

TEST(StateVector, RotationGateAngles) {
  StateVector sv(1);
  sv.apply(circ::make_ry(0, kPi / 3));
  // <Z> = cos(theta), <X> = sin(theta) for Ry on |0>.
  EXPECT_NEAR(sv.expectation(PauliString::parse(1, "Z0")).real(),
              std::cos(kPi / 3), 1e-12);
  EXPECT_NEAR(sv.expectation(PauliString::parse(1, "X0")).real(),
              std::sin(kPi / 3), 1e-12);
}

TEST(StateVector, RzIsDiagonalPhase) {
  StateVector sv(1);
  sv.apply(circ::make_h(0));
  sv.apply(circ::make_rz(0, kPi / 2));
  // <X> = cos(theta) under Rz after H.
  EXPECT_NEAR(sv.expectation(PauliString::parse(1, "X0")).real(),
              std::cos(kPi / 2), 1e-12);
  EXPECT_NEAR(sv.expectation(PauliString::parse(1, "Y0")).real(),
              std::sin(kPi / 2), 1e-12);
}

TEST(StateVector, ParametricGateBinding) {
  Circuit c(1);
  c.append(circ::make_rz_param(0, 0, 2.0));
  StateVector a(1), b(1);
  a.apply(circ::make_h(0));
  b.apply(circ::make_h(0));
  a.run(c, {0.3});
  b.apply(circ::make_rz(0, 0.6));
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_LT(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 1e-14);
}

TEST(StateVector, PauliEvolutionMatchesExpectation) {
  // exp(-i theta/2 Z0 Z1) on |++> leaves <X0 X1> = cos(theta)^... check via
  // direct comparison with known single-qubit case instead: exp(-i t/2 X)
  // equals Rx(t).
  Circuit c(2);
  circ::append_pauli_evolution(c, PauliString::parse(2, "X0"), 0.7);
  StateVector a(2);
  a.run(c);
  StateVector b(2);
  b.apply(circ::make_rx(0, 0.7));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_LT(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 1e-12);
}

TEST(StateVector, TwoQubitPauliEvolutionUnitary) {
  Circuit c(3);
  circ::append_pauli_evolution(c, PauliString::parse(3, "Y0 Z2"), 1.1);
  StateVector sv(3);
  sv.apply(circ::make_h(0));
  sv.apply(circ::make_h(1));
  sv.apply(circ::make_h(2));
  sv.run(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
  // Y0 Z2 commutes with itself: evolution preserves <Y0 Z2>.
  StateVector ref(3);
  ref.apply(circ::make_h(0));
  ref.apply(circ::make_h(1));
  ref.apply(circ::make_h(2));
  EXPECT_NEAR(sv.expectation(PauliString::parse(3, "Y0 Z2")).real(),
              ref.expectation(PauliString::parse(3, "Y0 Z2")).real(), 1e-12);
}

TEST(StateVector, ExpectationOfQubitOperator) {
  QubitOperator h = QubitOperator::identity(2, 2.0);
  h += QubitOperator::term(2, "Z0", -0.5);
  h += QubitOperator::term(2, "Z1", -0.5);
  StateVector sv(2);
  sv.apply(circ::make_x(0));
  // <Z0> = -1, <Z1> = +1 -> E = 2 + 0.5 - 0.5 = 2.
  EXPECT_NEAR(sv.expectation(h).real(), 2.0, 1e-12);
}

TEST(StateVector, ApplyQubitOperatorMatchesExpectation) {
  Rng rng(5);
  QubitOperator h = QubitOperator::term(3, "X0 Z1", 0.7);
  h += QubitOperator::term(3, "Y1 Y2", -0.3);
  h += QubitOperator::identity(3, 0.2);
  StateVector sv(3);
  const circ::Circuit c = circ::brickwork_circuit(3, 3, rng);
  sv.run(c);
  const auto hx = apply_qubit_operator(h, sv.amplitudes());
  cplx dot{};
  for (std::size_t i = 0; i < hx.size(); ++i)
    dot += std::conj(sv.amplitudes()[i]) * hx[i];
  EXPECT_LT(std::abs(dot - sv.expectation(h)), 1e-10);
}

TEST(StateVector, QubitOperatorDiagonal) {
  QubitOperator h = QubitOperator::term(2, "Z0", 1.0);
  h += QubitOperator::term(2, "Z0 Z1", 0.5);
  h += QubitOperator::term(2, "X0", 3.0);  // off-diagonal, ignored
  const auto d = qubit_operator_diagonal(h);
  // |00>: Z0=1, Z0Z1=1 -> 1.5 ; |01>(q0=1): -1 -0.5 = -1.5
  EXPECT_NEAR(d[0], 1.5, 1e-14);
  EXPECT_NEAR(d[1], -1.5, 1e-14);
  EXPECT_NEAR(d[2], 0.5, 1e-14);
  EXPECT_NEAR(d[3], -0.5, 1e-14);
}

TEST(StateVector, GroundEnergyOfTransverseFieldIsing) {
  // H = -Z0 Z1 - 0.5 (X0 + X1): ground energy = -sqrt(1 + g^2) - ... for two
  // qubits diagonalize exactly: eigenvalues of the 4x4. Use known result via
  // small dense diagonalization through Davidson and compare to analytic
  // value E0 = -sqrt(1 + 1) for g = 1? Use g = 0.5 and the closed form for
  // the 2-site TFIM: E0 = -sqrt(4 g^2 + ...). Simpler: compare Davidson to a
  // brute-force minimum over the dense matrix built from the operator.
  QubitOperator h(2);
  h += QubitOperator::term(2, "Z0 Z1", -1.0);
  h += QubitOperator::term(2, "X0", -0.5);
  h += QubitOperator::term(2, "X1", -0.5);

  // Dense 4x4 via operator application on basis vectors.
  la::CMatrix dense(4, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    std::vector<cplx> e(4, cplx{});
    e[j] = 1.0;
    const auto col = apply_qubit_operator(h, e);
    for (std::size_t i = 0; i < 4; ++i) dense(i, j) = col[i];
  }
  const la::EighResult eg = la::eigh(dense);

  std::vector<cplx> guess(4, cplx{0.25, 0});
  const double e0 = qubit_ground_energy(h, guess);
  EXPECT_NEAR(e0, eg.values[0], 1e-8);
}

}  // namespace
}  // namespace q2::sim
