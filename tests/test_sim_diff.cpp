// Cross-simulator differential suite: the three engines (MPS, state vector,
// density matrix) are independent implementations sitting on the same GEMM
// substrate, so random circuits run through all three pin amplitude-level
// equivalence — exactly where silent kernel corruption would surface.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builder.hpp"
#include "diff_util.hpp"
#include "sim/densitymatrix.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"

namespace q2::sim {
namespace {

MpsOptions exact_opts(int n) {
  MpsOptions o;
  o.max_bond = std::size_t(1) << (n / 2 + 1);  // no truncation possible
  o.svd_cutoff = 0.0;
  return o;
}

double fidelity(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  cplx overlap{};
  for (std::size_t i = 0; i < a.size(); ++i)
    overlap += std::conj(a[i]) * b[i];
  return std::abs(overlap) * std::abs(overlap);
}

class SimDiff : public ::testing::TestWithParam<int> {};

TEST_P(SimDiff, RandomCircuitAmplitudesAgreeAcrossEngines) {
  const int n = GetParam();
  Rng rng(9000 + n);
  const circ::Circuit c = circ::brickwork_circuit(n, 3, rng);

  StateVector sv(n);
  sv.run(c);
  Mps mps(n, exact_opts(n));
  mps.run(c);
  DensityMatrix dm(n);
  dm.run(c);

  // MPS vs SV: same pure state to numerical precision.
  EXPECT_GT(fidelity(mps.to_statevector(), sv.amplitudes()), 1.0 - 1e-10);
  EXPECT_LT(mps.truncation_error(), 1e-12);

  // DM vs SV: rho must equal |psi><psi| elementwise.
  const auto& amps = sv.amplitudes();
  EXPECT_NEAR(dm.purity(), 1.0, 1e-9);
  double max_diff = 0;
  for (std::size_t i = 0; i < amps.size(); ++i)
    for (std::size_t j = 0; j < amps.size(); ++j)
      max_diff = std::max(
          max_diff, std::abs(dm.rho()(i, j) - amps[i] * std::conj(amps[j])));
  EXPECT_LT(max_diff, 1e-10);
}

TEST_P(SimDiff, RandomPauliExpectationsAgreeAcrossEngines) {
  const int n = GetParam();
  Rng rng(9100 + n);
  const circ::Circuit c = circ::brickwork_circuit(n, 3, rng);

  StateVector sv(n);
  sv.run(c);
  Mps mps(n, exact_opts(n));
  mps.run(c);
  DensityMatrix dm(n);
  dm.run(c);

  for (int trial = 0; trial < 10; ++trial) {
    pauli::PauliString p{std::size_t(n)};
    for (int q = 0; q < n; ++q)
      p.set(std::size_t(q), pauli::P(rng.index(4)));
    const cplx e_sv = sv.expectation(p);
    const cplx e_mps = mps.expectation(p);
    const cplx e_dm = dm.expectation(p);
    EXPECT_NEAR(std::abs(e_sv - e_mps), 0.0, 1e-9) << p.str();
    EXPECT_NEAR(std::abs(e_sv - e_dm), 0.0, 1e-9) << p.str();
    EXPECT_NEAR(e_sv.imag(), 0.0, 1e-9);  // Pauli expectations are real
  }
}

TEST_P(SimDiff, MarginalProbabilitiesAgree) {
  const int n = GetParam();
  Rng rng(9200 + n);
  const circ::Circuit c = circ::brickwork_circuit(n, 2, rng);

  StateVector sv(n);
  sv.run(c);
  Mps mps(n, exact_opts(n));
  mps.run(c);

  // P(q = 1) from the SV marginal vs <(1 - Z_q)/2> on the MPS.
  for (int q = 0; q < n; ++q) {
    pauli::PauliString z{std::size_t(n)};
    z.set(std::size_t(q), pauli::P::Z);
    const double p_mps = 0.5 * (1.0 - mps.expectation(z).real());
    EXPECT_NEAR(sv.probability(q, 1), p_mps, 1e-9) << "qubit " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(SixToEightQubits, SimDiff,
                         ::testing::Values(6, 7, 8));

}  // namespace
}  // namespace q2::sim
