// Ablation defending DESIGN.md substitution 6 (used by Fig. 10): how much
// ground-state accuracy does the distance-truncated UCCSD give up relative
// to the full ansatz? For hydrogen chains the lost correlation is small and
// decays with the window, while the parameter/gate count drops sharply —
// the regime in which the paper's 200-qubit one-circuit timings live.
#include "bench_util.hpp"
#include "vqe/vqe_driver.hpp"

int main() {
  using namespace q2;
  bench::header("Ablation: distance-truncated UCCSD vs full UCCSD (H4 chain)");
  bench::row({"window", "params", "gates", "E(VQE)", "dE vs full"});

  const chem::Molecule mol = chem::Molecule::hydrogen_chain(4, 1.8);
  const bench::SolvedMolecule s = bench::solve(mol);

  vqe::VqeOptions opts;
  opts.optimizer.max_iterations = 40;
  opts.mps.max_bond = 32;

  double e_full = 0;
  std::vector<std::pair<int, vqe::VqeResult>> rows;
  for (int window : {-1, 3, 2, 1}) {
    opts.ansatz.distance_window = window;
    const vqe::VqeResult r = vqe::run_vqe(s.mo, 2, 2, opts);
    if (window < 0) e_full = r.energy;
    rows.emplace_back(window, r);
  }
  for (const auto& [window, r] : rows) {
    bench::row({window < 0 ? "full" : std::to_string(window),
                std::to_string(r.n_parameters), std::to_string(r.circuit_gates),
                bench::fmt(r.energy, 6), bench::fmte(r.energy - e_full)});
  }
  std::printf(
      "\nThe window trades a small, systematically improvable energy error"
      " for an O(n)\ngate count — the property Fig. 10's linear scaling"
      " rests on.\n");
  return 0;
}
