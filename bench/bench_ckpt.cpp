// Checkpoint I/O throughput: snapshot encode + durable write (tmp/fsync/
// rename) and read + validate (CRC per section) for MPS run states of
// increasing bond dimension. The snapshot payload is the exported state of a
// 12-qubit engine loaded from a random dense state vector, so the bytes grow
// roughly with D^2 per site until the entanglement saturates the cap.
//
//   ./bench_ckpt [--json=BENCH_ckpt.json] [--trace=...] [--report=...]
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "ckpt/serialize.hpp"
#include "ckpt/snapshot.hpp"
#include "common/rng.hpp"
#include "sim/mps.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  bench::init(argc, argv);
  // Accept --json=BENCH_<name>.json (same contract as bench_kernels); the
  // report lands in BENCH_ckpt.json either way unless the flag renames it.
  std::string report_name = "ckpt";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      const std::string path = arg.substr(7);
      const std::size_t from = path.rfind("BENCH_");
      const std::size_t to = path.rfind(".json");
      if (from != std::string::npos && to != std::string::npos && from + 6 < to)
        report_name = path.substr(from + 6, to - from - 6);
    }
  }
  bench::BenchReport report(report_name);

  constexpr int kQubits = 12;
  constexpr int kReps = 20;
  const std::string path = "bench_ckpt_snapshot.tmp";

  // One random dense state, shared across bond dimensions so only the MPS
  // truncation (and therefore the snapshot size) varies.
  Rng rng(2022);
  std::vector<cplx> amps = rng.complex_vector(std::size_t(1) << kQubits);
  double nrm = 0;
  for (const cplx& z : amps) nrm += std::norm(z);
  nrm = std::sqrt(nrm);
  for (cplx& z : amps) z /= nrm;

  bench::header("Checkpoint snapshot throughput vs MPS bond dimension");
  bench::row({"D", "bytes", "write (s)", "read (s)", "write MB/s",
              "read MB/s"});

  for (std::size_t bond : {8, 16, 32, 64}) {
    sim::MpsOptions options;
    options.max_bond = bond;
    const sim::Mps mps = sim::Mps::from_statevector(kQubits, amps, options);

    ckpt::ByteWriter w;
    ckpt::write_mps(w, mps.export_state());
    ckpt::Snapshot snap;
    snap.set("mps", w.take());
    const double bytes = double(snap.encoded_bytes());

    Timer write_timer;
    for (int r = 0; r < kReps; ++r) snap.write_file(path);
    const double write_s = write_timer.seconds() / kReps;

    Timer read_timer;
    for (int r = 0; r < kReps; ++r) {
      const auto back = ckpt::Snapshot::read_file(path);
      if (!back) throw Error("bench_ckpt: snapshot failed validation");
    }
    const double read_s = read_timer.seconds() / kReps;

    // Round trip sanity: the decoded state must rebuild the same engine.
    {
      const auto back = ckpt::Snapshot::read_file(path);
      ckpt::ByteReader r(back->at("mps"));
      const sim::Mps rebuilt = sim::Mps::import_state(ckpt::read_mps(r));
      const double te_a = mps.truncation_error();
      const double te_b = rebuilt.truncation_error();
      if (rebuilt.max_bond_dimension() != mps.max_bond_dimension() ||
          std::memcmp(&te_a, &te_b, sizeof(double)) != 0)
        throw Error("bench_ckpt: round trip mismatch");
    }

    const double mb = bytes / (1024.0 * 1024.0);
    bench::row({std::to_string(bond), std::to_string(std::size_t(bytes)),
                bench::fmte(write_s), bench::fmte(read_s),
                bench::fmt(mb / write_s, 1), bench::fmt(mb / read_s, 1)});
    const std::string d = std::to_string(bond);
    report.set("bytes_D" + d, bytes);
    report.set("write_mb_s_D" + d, mb / write_s);
    report.set("read_mb_s_D" + d, mb / read_s);
  }
  std::remove(path.c_str());
  return 0;
}
