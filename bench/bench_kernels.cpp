// Google-benchmark microbenchmarks of the numerical kernels every figure
// rests on: complex GEMM, one-sided Jacobi SVD, the MPS two-site update and
// Pauli-string expectation sweeps.
#include <benchmark/benchmark.h>

#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "sim/mps.hpp"

namespace {

using namespace q2;

la::CMatrix random_matrix(std::size_t m, std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  return a;
}

void BM_GemmComplex(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(8 * n * n * n));
}
BENCHMARK(BM_GemmComplex)->Arg(32)->Arg(64)->Arg(128);

void BM_SvdGolubKahan(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(2 * n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd(a));
  }
}
BENCHMARK(BM_SvdGolubKahan)->Arg(16)->Arg(32)->Arg(64);

void BM_SvdJacobi(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(2 * n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd_jacobi(a));
  }
}
BENCHMARK(BM_SvdJacobi)->Arg(16)->Arg(32)->Arg(64);

void BM_MpsTwoQubitGate(benchmark::State& state) {
  const std::size_t d = std::size_t(state.range(0));
  const int n = 12;
  Rng rng(4);
  sim::MpsOptions opts;
  opts.max_bond = d;
  sim::Mps mps(n, opts);
  // Warm the bonds up to D with a few brickwork layers.
  mps.run(circ::brickwork_circuit(n, 6, rng));
  const circ::Circuit layer = circ::brickwork_circuit(n, 1, rng);
  for (auto _ : state) {
    mps.run(layer);
  }
  state.SetItemsProcessed(state.iterations() * int64_t(layer.size()));
}
BENCHMARK(BM_MpsTwoQubitGate)->Arg(8)->Arg(16)->Arg(32);

void BM_MpsPauliExpectation(benchmark::State& state) {
  const int n = int(state.range(0));
  Rng rng(5);
  sim::MpsOptions opts;
  opts.max_bond = 16;
  sim::Mps mps(n, opts);
  mps.run(circ::brickwork_circuit(n, 4, rng));
  pauli::PauliString p{std::size_t(n)};
  for (int q = 0; q < n; ++q) p.set(std::size_t(q), pauli::P::Z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mps.expectation(p));
  }
}
BENCHMARK(BM_MpsPauliExpectation)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
