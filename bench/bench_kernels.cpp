// Google-benchmark microbenchmarks of the numerical kernels every figure
// rests on: complex GEMM, one-sided Jacobi SVD, the MPS two-site update and
// Pauli-string expectation sweeps.
//
// `bench_kernels --json=BENCH_gemm.json` instead runs the GEMM sweep: packed
// blocked kernel vs the naive reference across sizes and thread counts,
// asserting the perf floor (blocked >= 3x naive single-threaded at
// 512^3 complex; >= 2.5x scaling from 1 to 4 threads when the host has >= 4
// cores) and writing the result trajectory via bench_util's BenchReport.
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/simd.hpp"
#include "linalg/svd.hpp"
#include "linalg/svd_reference.hpp"
#include "linalg/tensor.hpp"
#include "sim/mps.hpp"

namespace {

using namespace q2;

la::CMatrix random_matrix(std::size_t m, std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  return a;
}

void BM_GemmComplex(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(8 * n * n * n));
}
BENCHMARK(BM_GemmComplex)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmComplexThreaded(benchmark::State& state) {
  const std::size_t n = 256;
  const la::CMatrix a = random_matrix(n, n, 1), b = random_matrix(n, n, 2);
  par::ParallelOptions opts;
  opts.n_threads = std::size_t(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::matmul(a, b, la::Op::kNone, la::Op::kNone, opts));
  }
  state.SetItemsProcessed(state.iterations() * int64_t(8 * n * n * n));
}
BENCHMARK(BM_GemmComplexThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_TensorContractFused(benchmark::State& state) {
  const std::size_t d = std::size_t(state.range(0));
  Rng rng(6);
  la::Tensor a({2 * d, 2, d});
  la::Tensor b({d, 2, 2 * d});
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.complex_normal();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.complex_normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::contract(a, {2}, b, {0}));
  }
}
BENCHMARK(BM_TensorContractFused)->Arg(16)->Arg(32)->Arg(64);

void BM_SvdGolubKahan(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(2 * n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd(a));
  }
}
BENCHMARK(BM_SvdGolubKahan)->Arg(16)->Arg(32)->Arg(64);

void BM_SvdJacobi(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(2 * n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd_jacobi(a));
  }
}
BENCHMARK(BM_SvdJacobi)->Arg(16)->Arg(32)->Arg(64);

// The frozen scalar cyclic-Jacobi oracle, timed alongside the tournament
// engine so the microbenchmark shows the same gap the bench_svd sweep
// asserts.
void BM_SvdJacobiReference(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  const la::CMatrix a = random_matrix(2 * n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd_jacobi_reference(a));
  }
}
BENCHMARK(BM_SvdJacobiReference)->Arg(16)->Arg(32)->Arg(64);

void BM_MpsTwoQubitGate(benchmark::State& state) {
  const std::size_t d = std::size_t(state.range(0));
  const int n = 12;
  Rng rng(4);
  sim::MpsOptions opts;
  opts.max_bond = d;
  sim::Mps mps(n, opts);
  // Warm the bonds up to D with a few brickwork layers.
  mps.run(circ::brickwork_circuit(n, 6, rng));
  const circ::Circuit layer = circ::brickwork_circuit(n, 1, rng);
  for (auto _ : state) {
    mps.run(layer);
  }
  state.SetItemsProcessed(state.iterations() * int64_t(layer.size()));
}
BENCHMARK(BM_MpsTwoQubitGate)->Arg(8)->Arg(16)->Arg(32);

void BM_MpsPauliExpectation(benchmark::State& state) {
  const int n = int(state.range(0));
  Rng rng(5);
  sim::MpsOptions opts;
  opts.max_bond = 16;
  sim::Mps mps(n, opts);
  mps.run(circ::brickwork_circuit(n, 4, rng));
  pauli::PauliString p{std::size_t(n)};
  for (int q = 0; q < n; ++q) p.set(std::size_t(q), pauli::P::Z);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mps.expectation(p));
  }
}
BENCHMARK(BM_MpsPauliExpectation)->Arg(8)->Arg(16)->Arg(32);

// --- GEMM sweep (--json=BENCH_gemm.json) -----------------------------------

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

// `quick` trims the sweep to <= 256 and relaxes the speedup floor — the shape
// the ctest `perf` label runs through tools/bench_diff, where wall time and
// noise tolerance matter more than the full 512 trajectory point.
int run_gemm_sweep(const std::string& report_name, bool quick) {
  bench::BenchReport report(report_name);
  const unsigned cores = std::thread::hardware_concurrency();
  report.set("hardware_threads", double(cores));
  report.set("simd_isa", std::string(la::simd::isa_name(la::simd::active_isa())));
  bool ok = true;

  bench::header("GEMM sweep: packed blocked kernel vs naive reference");
  bench::row({"size", "naive (s)", "blocked 1T (s)", "speedup", "2T (s)",
              "4T (s)"});
  // The quick floor is deliberately loose: at 256 the blocked kernel's edge
  // over naive is smaller and noisier than at 512, and the cross-run trend is
  // bench_diff's job. The in-binary floor only catches catastrophic breakage.
  const std::size_t floor_n = quick ? 256 : 512;
  const double speedup_floor = quick ? 1.3 : 3.0;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{128, 256}
            : std::vector<std::size_t>{128, 256, 512};
  double speedup_at_floor = 0, scaling_1_to_4 = 0;
  for (const std::size_t n : sizes) {
    const la::CMatrix a = random_matrix(n, n, 11), b = random_matrix(n, n, 12);
    const int reps = n <= 256 ? 3 : 1;

    la::CMatrix c_naive;
    const double t_naive =
        time_best_of(reps, [&] { la::gemm_naive(a, b, c_naive); });

    auto blocked_at = [&](std::size_t threads) {
      par::ParallelOptions opts;
      opts.n_threads = threads;
      la::CMatrix c;
      const double t = time_best_of(reps + 1, [&] {
        c = la::matmul(a, b, la::Op::kNone, la::Op::kNone, opts);
      });
      return std::make_pair(t, std::move(c));
    };
    auto [t1, c1] = blocked_at(1);
    auto [t2, c2] = blocked_at(2);
    auto [t4, c4] = blocked_at(4);

    // Self-validate: blocked agrees with naive, thread counts bit-identical.
    double max_diff = 0;
    for (std::size_t i = 0; i < c1.size(); ++i)
      max_diff =
          std::max(max_diff, std::abs(c1.data()[i] - c_naive.data()[i]));
    if (max_diff > 1e-10 * double(n)) {
      std::printf("FAIL: blocked/naive divergence %.3e at n=%zu\n", max_diff,
                  n);
      ok = false;
    }
    if (std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(cplx)) != 0 ||
        std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(cplx)) != 0) {
      std::printf("FAIL: thread counts not bit-identical at n=%zu\n", n);
      ok = false;
    }

    bench::row({std::to_string(n), bench::fmte(t_naive), bench::fmte(t1),
                bench::fmt(t_naive / t1, 2) + "x", bench::fmte(t2),
                bench::fmte(t4)});
    report.set("gemm_" + std::to_string(n) + "_naive_s", t_naive);
    report.set("gemm_" + std::to_string(n) + "_blocked_1t_s", t1);
    report.set("gemm_" + std::to_string(n) + "_blocked_2t_s", t2);
    report.set("gemm_" + std::to_string(n) + "_blocked_4t_s", t4);
    report.set("gemm_" + std::to_string(n) + "_gflops_1t",
               8.0 * double(n) * double(n) * double(n) / t1 / 1e9);
    if (n == floor_n) {
      speedup_at_floor = t_naive / t1;
      scaling_1_to_4 = t1 / t4;
    }
  }
  report.set("speedup_vs_naive_" + std::to_string(floor_n), speedup_at_floor);
  report.set("scaling_1_to_4_threads_" + std::to_string(floor_n),
             scaling_1_to_4);

  // Perf floor assertions (the ISSUE acceptance bar).
  std::printf(
      "\n%zu^3 complex: blocked vs naive %.2fx (floor %.1fx), "
      "1->4 thread scaling %.2fx\n",
      floor_n, speedup_at_floor, speedup_floor, scaling_1_to_4);
  if (speedup_at_floor < speedup_floor) {
    std::printf("FAIL: single-thread speedup below the %.1fx floor\n",
                speedup_floor);
    ok = false;
  }
  // Scaling at <= 256 is too noise-prone for a CI gate: quick mode records
  // it and lets bench_diff's ratio tolerance judge the trend instead.
  if (!quick && cores >= 4) {
    if (scaling_1_to_4 < 2.5) {
      std::printf("FAIL: 1->4 thread scaling below the 2.5x floor\n");
      ok = false;
    }
  } else if (!quick) {
    std::printf(
        "note: host has %u hardware thread(s); the 2.5x scaling floor is "
        "only asserted on >= 4 cores\n",
        cores);
  }
  report.set("perf_floor_ok", ok ? 1.0 : 0.0);
  report.write();
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  q2::bench::init(argc, argv);
  // A `--json=BENCH_<name>.json` flag switches to the asserting GEMM sweep,
  // which records a perf-trajectory point via BenchReport; `--quick` trims
  // it to the ctest-perf-label shape.
  bool quick = false;
  std::string json_name;
  bool has_json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg.rfind("--json=", 0) == 0) {
      has_json = true;
      std::string name = arg.substr(7);
      // BenchReport writes BENCH_<name>.json; accept either spelling.
      if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
      const std::size_t dot = name.rfind(".json");
      if (dot != std::string::npos) name = name.substr(0, dot);
      json_name = name;
    }
  }
  if (has_json)
    return run_gemm_sweep(json_name.empty() ? "gemm" : json_name, quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
