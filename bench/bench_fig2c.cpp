// Fig. 2(c): simulation time (and memory) of the state-vector, density-matrix
// and MPS simulators as a function of qubit count, on the circuit that
// entangles every 4 consecutive qubits (the state stays at MPS bond
// dimension <= 8 regardless of n). Expected shape: SV and DM walls are
// exponential; MPS is polynomial/linear and keeps going.
#include "bench_util.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "sim/densitymatrix.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  bench::init(argc, argv);
  bench::BenchReport report("fig2c");
  bench::header("Fig. 2(c): SV vs DM vs MPS scaling with qubit count");
  bench::row({"qubits", "SV time (s)", "DM time (s)", "MPS time (s)",
              "SV mem (B)", "DM mem (B)", "MPS mem (B)", "MPS bond"});

  for (int n : {4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 32, 48, 64}) {
    Rng rng{unsigned(n)};
    const circ::Circuit c = circ::block_entangling_circuit(n, 4, 1, rng);

    std::string sv_t = "-", sv_m = "-";
    if (n <= 20) {
      Timer t;
      sim::StateVector sv(n);
      sv.run(c);
      sv_t = bench::fmte(t.seconds());
      sv_m = std::to_string((std::size_t(1) << n) * sizeof(cplx));
    }
    std::string dm_t = "-", dm_m = "-";
    if (n <= 10) {
      Timer t;
      sim::DensityMatrix dm(n);
      dm.run(c);
      dm_t = bench::fmte(t.seconds());
      dm_m = std::to_string((std::size_t(1) << (2 * n)) * sizeof(cplx));
    }
    Timer t;
    sim::MpsOptions opts;
    opts.max_bond = 16;
    sim::Mps mps(n, opts);
    mps.run(c);
    const double mps_seconds = t.seconds();
    const std::string mps_t = bench::fmte(mps_seconds);

    bench::row({std::to_string(n), sv_t, dm_t, mps_t, sv_m, dm_m,
                std::to_string(mps.memory_bytes()),
                std::to_string(mps.max_bond_dimension())});
    // The largest system is the headline figure: MPS keeps going where the
    // dense simulators walled out.
    if (n == 64) {
      report.set("mps_qubits", n);
      report.set("mps_seconds", mps_seconds);
      report.set("mps_memory_bytes", mps.memory_bytes());
      report.set("mps_max_bond", mps.max_bond_dimension());
    }
  }
  std::printf(
      "\nPaper shape check: SV/DM cost is exponential in qubits (walls at"
      " ~20 / ~10 qubits here); the MPS cost stays polynomial because the\n"
      "block-entangling circuit keeps the bond dimension at <= 8.\n");
  return 0;
}
