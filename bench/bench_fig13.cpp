// Fig. 13: weak scaling of the DMET-MPS-VQE workload for hydrogen chains of
// 40 / 80 / 320 / 1280 atoms on 10,240 .. 327,680 processes (machine model,
// calibrated like bench_fig12). Paper: ~92 % weak-scaling efficiency at
// 21,299,200 cores.
#include "bench_util.hpp"
#include "swsim/machine_model.hpp"

int main() {
  using namespace q2;
  sw::MachineModel model;

  const std::vector<long> procs = {10240, 20480, 81920, 327680};
  const std::vector<int> atoms = {40, 80, 320, 1280};

  std::vector<sw::DmetWorkload> ws;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    sw::DmetWorkload w;
    w.n_fragments = std::size_t(atoms[i]) / 2;  // 2-atom fragments
    w.procs_per_group = 2048;
    // Distinct seeds: each system size draws its own circuit-cost spread,
    // so the LPT makespans differ slightly as they would in practice.
    w.fragment = sw::hydrogen_fragment_workload(4, 64, 5e-10, 7 + unsigned(i));
    ws.push_back(w);
  }

  bench::header("Fig. 13: weak scaling, H chains 40 -> 1280 atoms");
  bench::row({"atoms", "processes", "cores", "time (s)", "efficiency"});
  const auto pts = model.weak_scaling(ws, procs);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bench::row({std::to_string(atoms[i]), std::to_string(pts[i].processes),
                std::to_string(pts[i].cores), bench::fmte(pts[i].time_s),
                bench::fmt(pts[i].efficiency * 100, 1) + "%"});
  }
  std::printf(
      "\nPaper shape check: the simulation time stays nearly flat as the"
      " system and the\nmachine grow together; the paper reports ~92%%"
      " efficiency at 327,680 processes\n(21.3M cores). The analytic model"
      " sits a few points higher because it omits the\nOS noise and network"
      " contention a real 21M-core run pays.\n");
  return 0;
}
