// Ablations of the design choices DESIGN.md calls out:
//  (1) LPT load balancing vs cost-oblivious round-robin for the Pauli-circuit
//      distribution (the "adapted dynamical load balancing" claim);
//  (2) gate fusion on/off for the MPS engine;
//  (3) Hadamard-test measurement vs direct expectation (the faithful-vs-fast
//      measurement paths must agree while costing very differently);
//  (4) eager SWAP routing vs the lazy-reorder compile pass (how much of the
//      two-site work per ansatz replay the permutation tracking removes).
#include "bench_util.hpp"
#include "circuit/fusion.hpp"
#include "circuit/reorder.hpp"
#include "circuit/routing.hpp"
#include "parallel/scheduler.hpp"
#include "sim/mps.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

int main() {
  using namespace q2;

  bench::header("Ablation 1: LPT vs round-robin circuit distribution");
  bench::row({"system", "ranks", "LPT makespan", "RR makespan", "LPT eff",
              "RR eff"});
  for (const auto& [name, mol] :
       {std::pair<const char*, chem::Molecule>{"LiH", chem::Molecule::lih()},
        {"H2O", chem::Molecule::h2o()}}) {
    const bench::SolvedMolecule s = bench::solve(mol);
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(
        s.mo.n_orbitals(), mol.n_electrons() / 2, mol.n_electrons() / 2);
    const vqe::EnergyEvaluator eval(ansatz.circuit, h);
    const auto costs = eval.term_costs();
    for (std::size_t ranks : {16u, 64u}) {
      const par::Schedule lpt = par::lpt_schedule(costs, ranks);
      const par::Schedule rr = par::round_robin_schedule(costs, ranks);
      bench::row({name, std::to_string(ranks), bench::fmt(lpt.makespan, 1),
                  bench::fmt(rr.makespan, 1),
                  bench::fmt(100 * par::efficiency(lpt), 1) + "%",
                  bench::fmt(100 * par::efficiency(rr), 1) + "%"});
    }
  }

  bench::header("Ablation 2: gate fusion in the MPS engine");
  bench::row({"system", "gates raw", "gates fused", "raw t(s)", "fused t(s)",
              "speedup"});
  {
    const chem::Molecule mol = chem::Molecule::lih();
    const bench::SolvedMolecule s = bench::solve(mol);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(s.mo.n_orbitals(), 2, 2);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);
    // Fusion must run on the routed (nearest-neighbour) stream, and the
    // parametric RZ gates act as barriers — realistic conditions.
    const circ::Circuit routed =
        circ::route_to_nearest_neighbour(ansatz.circuit);
    const circ::Circuit fused = circ::fuse_single_qubit_gates(routed);
    sim::MpsOptions mo;
    mo.max_bond = 32;
    Timer t1;
    sim::Mps a(routed.n_qubits(), mo);
    a.run(routed, params);
    const double raw_s = t1.seconds();
    Timer t2;
    sim::Mps b(fused.n_qubits(), mo);
    b.run(fused, params);
    const double fused_s = t2.seconds();
    bench::row({"LiH UCCSD", std::to_string(routed.size()),
                std::to_string(fused.size()), bench::fmte(raw_s),
                bench::fmte(fused_s), bench::fmt(raw_s / fused_s, 2) + "x"});
  }

  bench::header("Ablation 3: direct vs Hadamard-test measurement");
  bench::row({"system", "terms", "direct t(s)", "hadamard t(s)", "|dE|"});
  {
    const chem::Molecule mol = chem::Molecule::h2(1.4);
    const bench::SolvedMolecule s = bench::solve(mol);
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(2, 1, 1);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.1);
    const vqe::EnergyEvaluator direct(ansatz.circuit, h, {},
                                      vqe::MeasurementMode::kDirect);
    const vqe::EnergyEvaluator faithful(ansatz.circuit, h, {},
                                        vqe::MeasurementMode::kHadamardTest);
    Timer t1;
    const double e1 = direct.energy(params);
    const double direct_s = t1.seconds();
    Timer t2;
    const double e2 = faithful.energy(params);
    const double hadamard_s = t2.seconds();
    bench::row({"H2", std::to_string(direct.n_terms()), bench::fmte(direct_s),
                bench::fmte(hadamard_s), bench::fmte(std::abs(e1 - e2))});
  }

  bench::header("Ablation 4: eager SWAP routing vs lazy reorder compile");
  bench::row({"system", "gates eager", "gates compiled", "swaps kept",
              "eager t(s)", "compiled t(s)", "speedup"});
  {
    const chem::Molecule mol = chem::Molecule::lih();
    const bench::SolvedMolecule s = bench::solve(mol);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(s.mo.n_orbitals(), 2, 2);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);
    const circ::Circuit eager = circ::fuse_single_qubit_gates(
        circ::route_to_nearest_neighbour(ansatz.circuit));
    const circ::CompiledCircuit compiled =
        circ::compile_for_mps(ansatz.circuit);
    sim::MpsOptions mo;
    mo.max_bond = 32;
    Timer t1;
    sim::Mps a(eager.n_qubits(), mo);
    a.run(eager, params);
    const double eager_s = t1.seconds();
    Timer t2;
    sim::Mps b(compiled.gates.n_qubits(), mo);
    b.run(compiled, params);
    const double compiled_s = t2.seconds();
    bench::row({"LiH UCCSD", std::to_string(eager.size()),
                std::to_string(compiled.gates.size()),
                std::to_string(compiled.stats.swaps_materialized) + "/" +
                    std::to_string(compiled.stats.swaps_eager),
                bench::fmte(eager_s), bench::fmte(compiled_s),
                bench::fmt(eager_s / compiled_s, 2) + "x"});
  }
  return 0;
}
