// Fig. 7(a): accuracy of DMET-MPS-VQE on a hydrogen ring against FCI (the
// potential-energy curve must track FCI within 0.5 % relative error), plus
// the MPS-VQE vs FCI accuracy table for small molecules (H2 / LiH / H2O),
// where the paper quotes ~0.01 % relative errors.
//
// Scale note: the paper's ring has 10 atoms; this host defaults to 6 so the
// bench finishes in minutes. Pass an atom count as argv[1] to run the full
// 10-atom ring.
#include <cstdlib>

#include "bench_util.hpp"
#include "dmet/dmet_driver.hpp"
#include "vqe/vqe_driver.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  const int n_atoms = argc > 1 ? std::atoi(argv[1]) : 6;

  bench::header("Fig. 7(a) part 1: H-ring potential curve, DMET vs FCI");
  bench::row({"R (bohr)", "E(FCI)", "E(DMET-FCI)", "E(DMET-VQE)", "rel.err",
              "rel.err(VQE)"});

  vqe::VqeOptions vqe_opts;
  vqe_opts.optimizer.max_iterations = 25;
  vqe_opts.mps.max_bond = 16;

  for (double r : {1.5, 1.8, 2.4}) {
    const chem::Molecule ring = chem::Molecule::hydrogen_ring(n_atoms, r);
    const bench::SolvedMolecule s = bench::solve(ring);
    const chem::FciResult fci =
        chem::fci_ground_state(s.mo, n_atoms / 2, n_atoms / 2);

    dmet::DmetOptions opts;
    opts.fragments = dmet::uniform_atom_groups(std::size_t(n_atoms), 2);
    // Homogeneous ring: mu = 0 balances electrons by symmetry and all
    // fragments are equivalent; skipping the bisection and replicating the
    // single fragment solve keeps the VQE sweep tractable on one core.
    opts.fit_chemical_potential = false;
    opts.equivalent_fragments = true;
    const dmet::DmetResult dm_fci =
        dmet::run_dmet(ring, opts, dmet::make_fci_solver());
    const dmet::DmetResult dm_vqe =
        dmet::run_dmet(ring, opts, dmet::make_vqe_solver(vqe_opts));

    bench::row({bench::fmt(r, 2), bench::fmt(fci.energy, 6),
                bench::fmt(dm_fci.energy, 6), bench::fmt(dm_vqe.energy, 6),
                bench::fmte(std::abs((dm_fci.energy - fci.energy) / fci.energy)),
                bench::fmte(std::abs((dm_vqe.energy - fci.energy) / fci.energy))});
  }
  std::printf("Acceptance (paper): relative errors below 0.5%% = 5.0e-03.\n");

  bench::header("Fig. 7(a) part 2: MPS-VQE vs FCI for small molecules");
  bench::row({"system", "E(FCI)", "E(MPS-VQE)", "rel.err"});
  struct Case {
    const char* name;
    chem::Molecule mol;
    std::size_t n_frozen;
  };
  const Case cases[] = {
      {"H2", chem::Molecule::h2(1.4), 0},
      {"LiH (2e,4o)", chem::Molecule::lih(), 1},
      {"H2O (4e,4o)", chem::Molecule::h2o(), 3},
  };
  for (const Case& c : cases) {
    const bench::SolvedMolecule s = bench::solve(c.mol);
    const std::size_t n_active = std::min<std::size_t>(
        s.mo.n_orbitals() - c.n_frozen, c.n_frozen > 0 ? 4 : s.mo.n_orbitals());
    const chem::MoIntegrals act =
        chem::make_active_space(s.mo, c.n_frozen, n_active);
    const int ne_act = c.mol.n_electrons() - 2 * int(c.n_frozen);
    const chem::FciResult fci =
        chem::fci_ground_state(act, ne_act / 2, ne_act / 2);

    vqe::VqeOptions opts;
    opts.optimizer.max_iterations = 60;
    opts.mps.max_bond = 64;
    const vqe::VqeResult r = vqe::run_vqe(act, ne_act / 2, ne_act / 2, opts);
    bench::row({c.name, bench::fmt(fci.energy, 6), bench::fmt(r.energy, 6),
                bench::fmte(std::abs((r.energy - fci.energy) / fci.energy))});
  }
  std::printf("Acceptance (paper): relative errors at the ~1e-04 level.\n");
  return 0;
}
