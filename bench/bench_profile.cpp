// §IV-B text numbers: (1) the MPS-VQE hotspot split — the paper reports
// ~15 % of time in tensor contraction and ~82 % in SVD; (2) the tuned GEMM
// vs naive-kernel comparison (the swBLAS vs reference-LAPACK analogue);
// (3) fused vs unfused tensor contraction (the "fused permutation and
// multiplication" ablation).
#include "bench_util.hpp"
#include "circuit/builder.hpp"
#include "circuit/routing.hpp"
#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/tensor.hpp"
#include "sim/mps.hpp"
#include "vqe/uccsd.hpp"

namespace {

// Total wall time (seconds) of every profile node with this span name, summed
// across call paths. With the run pinned to one thread the sums are disjoint
// slices of the wall clock, so share-of-total is well defined.
double span_seconds(const std::vector<q2::obs::ProfileNode>& nodes,
                    const char* name) {
  double us = 0;
  for (const auto& node : nodes)
    if (node.name == name) us += node.total_us;
  return us * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace q2;
  bench::init(argc, argv);
  bench::BenchReport report("profile");
  Rng rng(3);

  // The hotspot split now comes from the span-aggregation profile (the same
  // tree `--profile=` exports) instead of the ad-hoc MpsProfile stopwatches.
  obs::set_profiling(true);

  bench::header("IV-B: MPS hotspot split (contraction vs SVD)");
  bench::row({"qubits", "D", "contraction %", "SVD %", "other %"});
  for (int atoms : {16, 32, 64}) {
    vqe::UccsdOptions opts;
    opts.distance_window = 2;
    const vqe::UccsdAnsatz ansatz =
        vqe::build_uccsd(std::size_t(atoms), atoms / 2, atoms / 2, opts);
    // Large angles so the state actually entangles up to the bond cap, as a
    // mid-optimization VQE state would.
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.5);
    const circ::Circuit routed =
        circ::route_to_nearest_neighbour(ansatz.circuit);
    sim::MpsOptions mo;
    mo.max_bond = 32;
    mo.parallel.n_threads = 1;  // keep span totals disjoint wall-clock slices
    obs::clear_profile();
    Timer t;
    sim::Mps mps(routed.n_qubits(), mo);
    mps.run(routed, params);
    const double total = t.seconds();
    const std::vector<obs::ProfileNode> nodes = obs::profile_snapshot();
    const double contraction_s = span_seconds(nodes, "mps/contract");
    const double svd_s = span_seconds(nodes, "mps/svd");
    bench::row({std::to_string(routed.n_qubits()),
                std::to_string(mps.max_bond_dimension()),
                bench::fmt(100 * contraction_s / total, 1),
                bench::fmt(100 * svd_s / total, 1),
                bench::fmt(100 * (total - contraction_s - svd_s) / total, 1)});
    if (atoms == 64) {
      report.set("hotspot_qubits", routed.n_qubits());
      report.set("contraction_share", contraction_s / total);
      report.set("svd_share", svd_s / total);
    }
  }
  std::printf(
      "Paper: ~15%% contraction / ~82%% SVD for 33..129 qubits. The SVD share"
      " grows with\nsystem size and with D (the paper runs D >= 256, where"
      " the SVD's larger constant\ndominates completely).\n");

  bench::header("IV-B: blocked GEMM vs naive kernel (swBLAS analogue)");
  bench::row({"size", "blocked (s)", "naive (s)", "speedup"});
  for (std::size_t n : {64u, 128u, 256u, 512u}) {
    la::CMatrix a(n, n), b(n, n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = rng.complex_normal();
      b.data()[i] = rng.complex_normal();
    }
    Timer t1;
    const la::CMatrix c1 = la::matmul(a, b);
    const double fast = t1.seconds();
    Timer t2;
    la::CMatrix c2;
    la::gemm_naive(a, b, c2);
    const double slow = t2.seconds();
    bench::row({std::to_string(n), bench::fmte(fast), bench::fmte(slow),
                bench::fmt(slow / fast, 2) + "x"});
    if (n == 256u) report.set("gemm_speedup_256", slow / fast);
    if (n == 512u) report.set("gemm_speedup_512", slow / fast);
    (void)c1;
  }

  bench::header("IV-B: fused vs unfused tensor contraction");
  bench::row({"D", "fused (s)", "reference (s)", "speedup"});
  for (std::size_t d : {16u, 32u, 64u}) {
    la::Tensor a({2 * d, 2, d});
    la::Tensor b({d, 2, 2 * d});
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.complex_normal();
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.complex_normal();
    constexpr int kReps = 30;
    (void)la::contract(a, {2}, b, {0});  // warm-up
    Timer t1;
    for (int r = 0; r < kReps; ++r)
      (void)la::contract(a, {2}, b, {0});
    const double fast = t1.seconds() / kReps;
    Timer t2;
    for (int r = 0; r < kReps; ++r)
      (void)la::contract_reference(a, {2}, b, {0});
    const double slow = t2.seconds() / kReps;
    bench::row({std::to_string(d), bench::fmte(fast), bench::fmte(slow),
                bench::fmt(slow / fast, 2) + "x"});
  }
  return 0;
}
