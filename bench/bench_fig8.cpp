// Fig. 8: time to simulate one UCCSD ansatz circuit for (H2)3, LiH and H2O
// with different engines. The paper compares qiskit (state vector), qiskit
// (MPS), quimb (MPS) and Q2Chemistry; offline we substitute our own
// state-vector engine and the deliberately unoptimized ReferenceMps for the
// external packages (see DESIGN.md). Expected shape: optimized MPS beats the
// generic MPS by ~an order of magnitude and beats SV on these sizes.
#include "bench_util.hpp"
#include "circuit/routing.hpp"
#include "sim/mps.hpp"
#include "sim/reference_mps.hpp"
#include "sim/statevector.hpp"
#include "vqe/uccsd.hpp"

int main() {
  using namespace q2;
  bench::header("Fig. 8: one-circuit simulation time by engine");
  bench::row({"system", "qubits", "gates", "SV (s)", "refMPS (s)",
              "Q2-MPS (s)", "speedup vs refMPS"});

  struct Case {
    const char* name;
    chem::Molecule mol;
    int window;  ///< UCCSD distance truncation; -1 = full
  };
  const Case cases[] = {
      {"(H2)3", chem::Molecule::h2_trimer(), -1},
      {"LiH", chem::Molecule::lih(), -1},
      {"H2O", chem::Molecule::h2o(), -1},
      // A 20-qubit chain shows the MPS-vs-SV crossover this engine exists
      // for; the local UCCSD keeps the circuit comparable per qubit.
      {"H10 chain", chem::Molecule::hydrogen_chain(10, 1.8), 2},
  };

  for (const Case& c : cases) {
    const bench::SolvedMolecule s = bench::solve(c.mol);
    const int ne = c.mol.n_electrons();
    vqe::UccsdOptions uopts;
    uopts.distance_window = c.window;
    const vqe::UccsdAnsatz ansatz =
        vqe::build_uccsd(s.mo.n_orbitals(), ne / 2, ne / 2, uopts);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);
    // Route once so every engine runs the identical nearest-neighbour gate
    // stream (what the paper's engines execute).
    const circ::Circuit routed =
        circ::route_to_nearest_neighbour(ansatz.circuit);

    Timer t_sv;
    sim::StateVector sv(routed.n_qubits());
    sv.run(routed, params);
    const double sv_s = t_sv.seconds();

    sim::MpsOptions opts;
    opts.max_bond = 32;  // the truncated regime the paper's VQE runs use

    // The naive engine is slow enough that very long circuits are timed on
    // a representative prefix (bond dimensions saturate early) and scaled.
    const std::size_t ref_budget = 12000;
    circ::Circuit ref_circuit(routed.n_qubits());
    for (const auto& g : routed.gates()) {
      if (ref_circuit.size() >= ref_budget) break;
      ref_circuit.append(g);
    }
    const double ref_fraction =
        double(ref_circuit.size()) / double(routed.size());
    Timer t_ref;
    sim::ReferenceMps ref(routed.n_qubits(), opts);
    ref.run(ref_circuit, params);
    const double ref_s = t_ref.seconds() / ref_fraction;

    Timer t_mps;
    sim::Mps mps(routed.n_qubits(), opts);
    mps.run(routed, params);
    const double mps_s = t_mps.seconds();

    bench::row({c.name, std::to_string(routed.n_qubits()),
                std::to_string(routed.size()), bench::fmte(sv_s),
                bench::fmte(ref_s), bench::fmte(mps_s),
                bench::fmt(ref_s / mps_s, 1) + "x"});
  }
  std::printf(
      "\nPaper shape check: Q2Chemistry's MPS is ~7x faster than the generic"
      " MPS baseline\n(quimb analogue) everywhere, and overtakes the state"
      " vector as qubits grow (our\nnative-C++ SV pushes that crossover to"
      " ~20 qubits; the paper's Python-driven SV\nbaselines cross earlier).\n");
  return 0;
}
