// Measurement-reduction extension bench: qubit-wise commuting grouping of
// the Hamiltonian's Pauli strings (§III-D future-work territory — fewer
// basis settings means fewer circuits on hardware). Reports the raw circuit
// count vs the grouped count for molecules of growing size, validates that
// groups are simultaneously measurable, then executes the grouped direct
// measurement on H4 and shows the transfer-sweep counter drop plus the
// bit-identity of the grouped energy.
#include "bench_util.hpp"
#include "sim/expectation.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  bench::init(argc, argv);
  bench::header("Extension: qubit-wise commuting measurement grouping");
  bench::row({"system", "qubits", "Pauli strings", "groups", "reduction"});

  struct Case {
    const char* name;
    chem::Molecule mol;
  };
  const Case cases[] = {
      {"H2", chem::Molecule::h2(1.4)},
      {"H4", chem::Molecule::hydrogen_chain(4, 1.8)},
      {"(H2)3", chem::Molecule::h2_trimer()},
      {"LiH", chem::Molecule::lih()},
      {"H2O", chem::Molecule::h2o()},
  };
  for (const Case& c : cases) {
    const bench::SolvedMolecule s = bench::solve(c.mol);
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const auto groups = sim::qubitwise_commuting_groups(h);
    const std::size_t strings = h.size() - 1;  // identity needs no circuit
    bench::row({c.name, std::to_string(h.n_qubits()), std::to_string(strings),
                std::to_string(groups.size()),
                bench::fmt(double(strings) / double(groups.size()), 1) + "x"});
  }
  std::printf(
      "\nEach group is measurable in one basis setting, so the grouped count"
      " is the number\nof distinct measurement circuits a hardware VQE (or"
      " the level-2 distribution)\nactually needs.\n");

  // The grouping is also live in the MPS direct-measurement path: one
  // environment sweep per group instead of one per term, with contributions
  // reduced in fixed term order so the energy stays bit-identical.
  bench::header("Grouped direct measurement on the MPS (H4/STO-3G UCCSD)");
  {
    const bench::SolvedMolecule s =
        bench::solve(chem::Molecule::hydrogen_chain(4, 1.8));
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(s.mo.n_orbitals(), 2, 2);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);

    sim::MpsOptions opts;
    opts.max_bond = 32;
    const vqe::EnergyEvaluator flat(
        ansatz.circuit, h, opts, vqe::MeasurementMode::kDirect,
        vqe::CircuitStorage::kMemoryEfficient, vqe::TermGrouping::kNone);
    const vqe::EnergyEvaluator grouped(
        ansatz.circuit, h, opts, vqe::MeasurementMode::kDirect,
        vqe::CircuitStorage::kMemoryEfficient, vqe::TermGrouping::kCommuting);

    obs::Counter& sweeps =
        obs::Registry::global().counter("mps.transfer_sweeps");
    const std::uint64_t s0 = sweeps.value();
    Timer t_flat;
    const double e_flat = flat.energy(params);
    const double flat_s = t_flat.seconds();
    const std::uint64_t flat_sweeps = sweeps.value() - s0;

    const std::uint64_t s1 = sweeps.value();
    Timer t_grouped;
    const double e_grouped = grouped.energy(params);
    const double grouped_s = t_grouped.seconds();
    const std::uint64_t grouped_sweeps = sweeps.value() - s1;

    bench::row({"mode", "sweeps", "measure s", "energy"});
    bench::row({"per-term", std::to_string(flat_sweeps), bench::fmte(flat_s),
                bench::fmt(e_flat, 12)});
    bench::row({"grouped", std::to_string(grouped_sweeps),
                bench::fmte(grouped_s), bench::fmt(e_grouped, 12)});
    const bool identical = e_flat == e_grouped;
    std::printf("\ngrouped energy is %s (%.17g vs %.17g), %llu -> %llu"
                " transfer sweeps\n",
                identical ? "bit-identical" : "NOT BIT-IDENTICAL", e_grouped,
                e_flat, (unsigned long long)flat_sweeps,
                (unsigned long long)grouped_sweeps);
    if (!identical || grouped_sweeps >= flat_sweeps) {
      std::printf("FAIL\n");
      return 1;
    }
  }
  return 0;
}
