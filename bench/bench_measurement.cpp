// Measurement-reduction extension bench: qubit-wise commuting grouping of
// the Hamiltonian's Pauli strings (§III-D future-work territory — fewer
// basis settings means fewer circuits on hardware). Reports the raw circuit
// count vs the grouped count for molecules of growing size, and validates
// that groups are simultaneously measurable.
#include "bench_util.hpp"
#include "sim/expectation.hpp"

int main() {
  using namespace q2;
  bench::header("Extension: qubit-wise commuting measurement grouping");
  bench::row({"system", "qubits", "Pauli strings", "groups", "reduction"});

  struct Case {
    const char* name;
    chem::Molecule mol;
  };
  const Case cases[] = {
      {"H2", chem::Molecule::h2(1.4)},
      {"H4", chem::Molecule::hydrogen_chain(4, 1.8)},
      {"(H2)3", chem::Molecule::h2_trimer()},
      {"LiH", chem::Molecule::lih()},
      {"H2O", chem::Molecule::h2o()},
  };
  for (const Case& c : cases) {
    const bench::SolvedMolecule s = bench::solve(c.mol);
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const auto groups = sim::qubitwise_commuting_groups(h);
    const std::size_t strings = h.size() - 1;  // identity needs no circuit
    bench::row({c.name, std::to_string(h.n_qubits()), std::to_string(strings),
                std::to_string(groups.size()),
                bench::fmt(double(strings) / double(groups.size()), 1) + "x"});
  }
  std::printf(
      "\nEach group is measurable in one basis setting, so the grouped count"
      " is the number\nof distinct measurement circuits a hardware VQE (or"
      " the level-2 distribution)\nactually needs.\n");
  return 0;
}
