// Shared helpers for the figure-regeneration benches: chemistry pipeline
// shortcuts and aligned table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "common/timer.hpp"

namespace q2::bench {

struct SolvedMolecule {
  chem::Molecule molecule;
  chem::ScfResult scf;
  chem::MoIntegrals mo;
};

inline SolvedMolecule solve(const chem::Molecule& mol,
                            const std::string& basis_name = "sto-3g") {
  SolvedMolecule s{mol, {}, {}};
  const chem::BasisSet basis = chem::BasisSet::build(mol, basis_name);
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  s.scf = chem::rhf(mol, basis, ints);
  if (!s.scf.converged) throw Error("bench: RHF failed to converge");
  s.mo = chem::transform_to_mo(ints, s.scf.coefficients,
                               s.scf.nuclear_repulsion);
  return s;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmte(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

}  // namespace q2::bench
