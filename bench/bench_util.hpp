// Shared helpers for the figure-regeneration benches: chemistry pipeline
// shortcuts, aligned table printing, telemetry flag plumbing, and the
// BENCH_<name>.json result writer that feeds the perf-trajectory file set.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "chem/fci.hpp"
#include "chem/hamiltonian.hpp"
#include "chem/scf.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_options.hpp"

namespace q2::bench {

/// Call first thing in main(): consumes the shared telemetry flags
/// (--trace= / --report= / --metrics=, or the Q2_* environment variables) so
/// every bench can emit a Chrome trace, a JSONL run report, and a metrics
/// dump without per-binary plumbing, plus --threads=N (or Q2_THREADS) for
/// the on-node parallel loops.
inline void init(int& argc, char** argv) {
  obs::configure_from_args(argc, argv);
  par::configure_threads_from_args(argc, argv);
}

/// Collects one benchmark's headline results and writes them to
/// BENCH_<name>.json in the working directory: benchmark name, total wall
/// time, caller-set key figures, and the key telemetry counters at the time
/// of write(). The destructor writes if the caller didn't.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() {
    if (!written_) write();
  }

  void set(const std::string& key, obs::JsonValue value) {
    fields_.emplace_back(key, std::move(value));
  }

  bool write() {
    written_ = true;
    std::vector<obs::JsonField> counters;
    for (const auto& [cname, v] : obs::Registry::global().snapshot().counters)
      counters.emplace_back(cname, v);
    std::vector<obs::JsonField> all;
    all.emplace_back("name", name_);
    all.emplace_back("wall_seconds", timer_.seconds());
    all.insert(all.end(), fields_.begin(), fields_.end());
    all.emplace_back("counters",
                     obs::JsonValue::raw(obs::json_object(counters)));
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::string json = obs::json_object(all);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    return std::fclose(f) == 0;
  }

 private:
  std::string name_;
  Timer timer_;
  std::vector<obs::JsonField> fields_;
  bool written_ = false;
};

struct SolvedMolecule {
  chem::Molecule molecule;
  chem::ScfResult scf;
  chem::MoIntegrals mo;
};

inline SolvedMolecule solve(const chem::Molecule& mol,
                            const std::string& basis_name = "sto-3g") {
  SolvedMolecule s{mol, {}, {}};
  const chem::BasisSet basis = chem::BasisSet::build(mol, basis_name);
  const chem::IntegralTables ints = chem::compute_integrals(mol, basis);
  s.scf = chem::rhf(mol, basis, ints);
  if (!s.scf.converged) throw Error("bench: RHF failed to converge");
  s.mo = chem::transform_to_mo(ints, s.scf.coefficients,
                               s.scf.nuclear_repulsion);
  return s;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmte(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

}  // namespace q2::bench
