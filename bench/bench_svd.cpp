// Truncated-SVD substrate sweep (`bench_svd --json=BENCH_svd.json`): the
// QR-preconditioned tournament-Jacobi engine vs the frozen scalar
// cyclic-Jacobi reference across operand shapes and bond-fraction
// truncations, asserting the perf floor (new engine >= 3x the scalar
// reference single-threaded on 512x512 complex at max_bond = 64) and
// recording the trajectory point next to BENCH_gemm.json. A second section
// measures MPS two-qubit gate throughput, whose hot loop is exactly this
// truncated SVD.
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuit/builder.hpp"
#include "common/rng.hpp"
#include "linalg/svd.hpp"
#include "linalg/svd_reference.hpp"
#include "sim/mps.hpp"

namespace {

using namespace q2;

la::CMatrix random_matrix(std::size_t m, std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::CMatrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  return a;
}

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::string shape_key(std::size_t m, std::size_t n, std::size_t d) {
  return std::to_string(m) + "x" + std::to_string(n) + "_d" +
         std::to_string(d);
}

// `quick` trims the sweep to <= 256x256 shapes and relaxes the speedup
// floor — the shape the ctest `perf` label runs through tools/bench_diff.
int run(const std::string& report_name, bool quick) {
  bench::BenchReport report(report_name);
  const unsigned cores = std::thread::hardware_concurrency();
  report.set("hardware_threads", double(cores));
  bool ok = true;

  bench::header(
      "Truncated SVD sweep: tournament Jacobi vs scalar cyclic reference");
  bench::row({"shape", "max_bond", "reference (s)", "new 1T (s)", "speedup",
              "sweeps", "precond"});

  struct Shape {
    std::size_t m, n;
  };
  // The quick floor is deliberately loose: the engine's edge over the scalar
  // reference is smaller at 256 than at 512, and the cross-run trend is
  // bench_diff's job. The in-binary floor only catches catastrophic breakage.
  const std::size_t floor_mn = quick ? 256 : 512;
  const double speedup_floor = quick ? 1.8 : 3.0;
  const std::vector<Shape> shapes =
      quick ? std::vector<Shape>{{128, 128}, {256, 256}}
            : std::vector<Shape>{{128, 128},
                                 {256, 256},
                                 {512, 128},
                                 {128, 512},
                                 {512, 512}};
  const std::vector<unsigned> fracs =
      quick ? std::vector<unsigned>{4u, 2u} : std::vector<unsigned>{8u, 4u, 2u};
  double floor_speedup = 0;  // floor_mn^2 @ max_bond 64
  for (const Shape shape : shapes) {
    const std::size_t m = shape.m, n = shape.n;
    const std::size_t k = std::min(m, n);
    const la::CMatrix a = random_matrix(m, n, 21);

    // The full scalar reference is timed once per shape (it is the slow
    // baseline, gemm_naive's role in the GEMM sweep) and reused as the
    // correctness oracle for every truncation of the same operand.
    la::SvdResult ref;
    const double t_ref = time_best_of(1, [&] {
      ref = la::svd_jacobi_reference(a);
    });
    report.set("ref_" + std::to_string(m) + "x" + std::to_string(n) + "_s",
               t_ref);

    for (const std::size_t frac : fracs) {
      const std::size_t max_bond = std::max<std::size_t>(1, k / frac);
      const int reps = k <= 256 ? 3 : 2;

      par::ParallelOptions one;
      one.n_threads = 1;
      la::SvdWorkspace ws;
      la::TruncatedSpectrum f;
      const double t_new = time_best_of(reps, [&] {
        f = la::svd_truncated_ws(ws, a.data(), m, n, n, nullptr, max_bond,
                                 0.0, /*want_u=*/true, one);
      });

      // Correctness: kept spectrum must match the reference oracle.
      for (std::size_t i = 0; i < f.keep; ++i) {
        if (std::abs(f.s[i] - ref.s[i]) > 1e-10 * (1 + ref.s[0])) {
          std::printf("FAIL: spectrum divergence at %zux%zu d=%zu i=%zu\n", m,
                      n, max_bond, i);
          ok = false;
          break;
        }
      }

      // Determinism: a second thread count must reproduce every output bit.
      par::ParallelOptions two;
      two.n_threads = 2;
      la::SvdWorkspace ws2;
      const la::TruncatedSpectrum f2 = la::svd_truncated_ws(
          ws2, a.data(), m, n, n, nullptr, max_bond, 0.0, true, two);
      if (f2.keep != f.keep ||
          std::memcmp(f.s, f2.s, f.keep * sizeof(double)) != 0 ||
          std::memcmp(f.vh, f2.vh, f.keep * n * sizeof(cplx)) != 0 ||
          std::memcmp(f.u, f2.u, m * f.keep * sizeof(cplx)) != 0) {
        std::printf("FAIL: thread counts not bit-identical at %zux%zu d=%zu\n",
                    m, n, max_bond);
        ok = false;
      }

      const double speedup = t_ref / t_new;
      bench::row({std::to_string(m) + "x" + std::to_string(n),
                  std::to_string(max_bond), bench::fmte(t_ref),
                  bench::fmte(t_new), bench::fmt(speedup, 2) + "x",
                  std::to_string(f.sweeps), f.preconditioned ? "yes" : "no"});
      const std::string key = shape_key(m, n, max_bond);
      report.set("svd_" + key + "_new_1t_s", t_new);
      report.set("svd_" + key + "_speedup_vs_ref", speedup);
      report.set("svd_" + key + "_sweeps", double(f.sweeps));
      if (m == floor_mn && n == floor_mn && max_bond == 64)
        floor_speedup = speedup;
    }
  }

  report.set("speedup_vs_reference_" + std::to_string(floor_mn) + "_d64",
             floor_speedup);
  std::printf(
      "\n%zux%zu complex @ max_bond 64: new engine vs scalar reference "
      "%.2fx (floor %.1fx)\n",
      floor_mn, floor_mn, floor_speedup, speedup_floor);
  if (floor_speedup < speedup_floor) {
    std::printf("FAIL: single-thread speedup below the %.1fx floor\n",
                speedup_floor);
    ok = false;
  }

  // --- MPS gate throughput (the consumer of the truncated SVD) -------------
  bench::header("MPS two-qubit gate throughput (brickwork)");
  {
    const int n_qubits = quick ? 10 : 16;
    Rng rng(31);
    sim::MpsOptions opts;
    opts.max_bond = quick ? 32 : 64;
    sim::Mps mps(n_qubits, opts);
    mps.run(circ::brickwork_circuit(n_qubits, quick ? 4 : 8, rng));
    const circ::Circuit layer = circ::brickwork_circuit(n_qubits, 2, rng);
    const double t_layers = time_best_of(3, [&] { mps.run(layer); });
    const double gates_per_s = double(layer.size()) / t_layers;
    bench::row({"gates/s", bench::fmt(gates_per_s, 1)});
    bench::row({"truncation_error", bench::fmte(mps.truncation_error())});
    bench::row({"svd_sweeps/gate",
                bench::fmt(double(mps.profile().svd_sweeps) /
                               double(mps.profile().gates_applied),
                           2)});
    report.set("mps_gate_throughput_per_s", gates_per_s);
    report.set("mps_truncation_error", mps.truncation_error());
    report.set("mps_svd_seconds_frac",
               mps.profile().svd_seconds /
                   (mps.profile().svd_seconds +
                    mps.profile().contraction_seconds));
  }

  report.set("perf_floor_ok", ok ? 1.0 : 0.0);
  report.write();
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  q2::bench::init(argc, argv);
  std::string name = "svd";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg.rfind("--json=", 0) == 0) {
      name = arg.substr(7);
      if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
      const std::size_t dot = name.rfind(".json");
      if (dot != std::string::npos) name = name.substr(0, dot);
      if (name.empty()) name = "svd";
    }
  }
  return run(name, quick);
}
