// Fig. 12: strong scaling of the DMET-MPS-VQE workload for the 1280-atom
// hydrogen chain, 10,240 -> 327,680 Sunway processes (665,600 -> 21,299,200
// cores). The machine model is calibrated with a *measured* per-gate MPS
// cost from this host (converted by the throughput ratio), then composes the
// paper's three-level structure. Paper: >= 92 % efficiency, ~30x speedup.
#include "bench_util.hpp"
#include "circuit/routing.hpp"
#include "sim/mps.hpp"
#include "swsim/machine_model.hpp"
#include "vqe/uccsd.hpp"

namespace {

// Measure the per-gate, per-D^3 cost of the MPS engine on this host.
double calibrate_host_seconds_per_gate(std::size_t bond) {
  using namespace q2;
  vqe::UccsdOptions opts;
  opts.distance_window = 1;
  const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(8, 4, 4, opts);
  const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);
  const circ::Circuit routed = circ::route_to_nearest_neighbour(ansatz.circuit);
  sim::MpsOptions mo;
  mo.max_bond = bond;
  Timer t;
  sim::Mps mps(routed.n_qubits(), mo);
  mps.run(routed, params);
  const double d3 = double(bond) * double(bond) * double(bond);
  return t.seconds() / double(routed.size()) / d3;
}

}  // namespace

int main() {
  using namespace q2;
  const std::size_t bond = 64;
  const double host_cost = calibrate_host_seconds_per_gate(bond);
  // Convert host-core seconds to Sunway-process seconds via peak ratio
  // (one CG with CPE offload vs this host core; order-of-magnitude is all
  // the efficiency curve needs since it is a ratio of identical units).
  const double sunway_cost = host_cost * 0.5;

  sw::MachineModel model;
  sw::DmetWorkload w;
  w.n_fragments = 640;  // 1280 atoms, 2-atom fragments
  w.procs_per_group = 2048;
  w.vqe_iterations = 1;
  w.fragment = sw::hydrogen_fragment_workload(4, bond, sunway_cost, 12);

  bench::header("Fig. 12: strong scaling, H1280 chain (machine model)");
  bench::row({"processes", "cores", "time (s)", "speedup", "ideal",
              "efficiency"});
  const std::vector<long> procs = {10240, 20480, 40960, 81920, 163840, 327680};
  const auto pts = model.strong_scaling(w, procs);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bench::row({std::to_string(pts[i].processes), std::to_string(pts[i].cores),
                bench::fmte(pts[i].time_s), bench::fmt(pts[i].speedup, 2),
                bench::fmt(double(procs[i]) / double(procs[0]), 1),
                bench::fmt(pts[i].efficiency * 100, 1) + "%"});
  }
  std::printf(
      "\nPaper shape check: parallel efficiency exceeds 92%% and the largest"
      " run reaches\n~30x speedup over the 10,240-process baseline"
      " (ideal 32x).\n");
  std::printf("Calibration: host %.3e s/gate/D^3 at D=%zu.\n", host_cost, bond);
  return 0;
}
