// On-node parallel energy evaluation: the level-2 Pauli-measurement sweep
// and the parameter-shift gradient of a full H4/STO-3G UCCSD energy
// evaluation, serial (1 thread) versus the shared-memory pool (§IV-C folded
// on-node). Reports wall-time speedups and verifies the parallel energies
// are byte-identical to serial — the index-order reduction guarantee.
//
//   ./bench_parallel_energy [--threads=N] [reps]
//
// N defaults to 4 (the acceptance configuration); speedups are only
// meaningful with >= N hardware cores.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "parallel/thread_pool.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

namespace {

using namespace q2;

double time_energy(const vqe::EnergyEvaluator& eval,
                   const std::vector<double>& params, int reps, double* e) {
  Timer t;
  for (int r = 0; r < reps; ++r) *e = eval.energy(params);
  return t.seconds() / reps;
}

double time_gradient(const vqe::EnergyEvaluator& eval,
                     const std::vector<double>& params, int reps,
                     std::vector<double>* g) {
  Timer t;
  for (int r = 0; r < reps; ++r) *g = eval.parameter_shift_gradient(params);
  return t.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;

  const std::size_t n_threads = [] {
    par::ParallelOptions probe;
    const std::size_t resolved = par::resolve_threads(probe);
    // Unconfigured resolution falls back to the pool; the acceptance
    // configuration is 4 threads.
    return resolved > 1 ? resolved : std::size_t(4);
  }();

  const bench::SolvedMolecule s =
      bench::solve(chem::Molecule::hydrogen_chain(4, 1.8));
  const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
  const vqe::UccsdAnsatz ansatz = vqe::build_uccsd(4, 2, 2);
  const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);

  sim::MpsOptions serial_mps;
  serial_mps.parallel.n_threads = 1;
  sim::MpsOptions parallel_mps;
  parallel_mps.parallel.n_threads = n_threads;

  bench::BenchReport report("parallel_energy");
  report.set("n_threads", double(n_threads));
  report.set("hardware_threads", double(par::ThreadPool::global().size()));
  bench::header("On-node parallel energy: H4/STO-3G UCCSD, " +
                std::to_string(n_threads) + " threads vs 1 (reps=" +
                std::to_string(reps) + ")");
  bench::row({"workload", "serial s", "parallel s", "speedup", "identical"});

  double e1 = 0, eN = 0;
  struct Case {
    const char* name;
    vqe::MeasurementMode mode;
    int reps;
  };
  const Case cases[] = {
      {"direct_sweep", vqe::MeasurementMode::kDirect, reps},
      {"hadamard_sweep", vqe::MeasurementMode::kHadamardTest, 1},
  };
  obs::Counter& sweeps = obs::Registry::global().counter("mps.transfer_sweeps");
  for (const Case& c : cases) {
    const vqe::EnergyEvaluator serial(ansatz.circuit, h, serial_mps, c.mode);
    const vqe::EnergyEvaluator parallel(ansatz.circuit, h, parallel_mps,
                                        c.mode);
    const std::uint64_t s0 = sweeps.value();
    const double t1 = time_energy(serial, params, c.reps, &e1);
    const std::uint64_t serial_sweeps = (sweeps.value() - s0) / c.reps;
    const std::uint64_t sN = sweeps.value();
    const double tN = time_energy(parallel, params, c.reps, &eN);
    const std::uint64_t parallel_sweeps = (sweeps.value() - sN) / c.reps;
    const bool identical = std::memcmp(&e1, &eN, sizeof(double)) == 0 &&
                           serial_sweeps == parallel_sweeps;
    bench::row({c.name, bench::fmte(t1), bench::fmte(tN),
                bench::fmt(t1 / tN, 2), identical ? "yes" : "NO"});
    report.set(std::string(c.name) + "_serial_seconds", t1);
    report.set(std::string(c.name) + "_parallel_seconds", tN);
    report.set(std::string(c.name) + "_speedup", t1 / tN);
    report.set(std::string(c.name) + "_identical", identical);
    report.set(std::string(c.name) + "_energy", eN);
    // The sweep count is part of the determinism contract: the commuting
    // grouping decides how many environment sweeps one evaluation takes,
    // and the thread count must not change it.
    report.set(std::string(c.name) + "_transfer_sweeps",
               double(serial_sweeps));
  }

  {
    const vqe::EnergyEvaluator serial(ansatz.circuit, h, serial_mps);
    const vqe::EnergyEvaluator parallel(ansatz.circuit, h, parallel_mps);
    std::vector<double> g1, gN;
    const double t1 = time_gradient(serial, params, 1, &g1);
    const double tN = time_gradient(parallel, params, 1, &gN);
    bool identical = g1.size() == gN.size();
    for (std::size_t k = 0; identical && k < g1.size(); ++k)
      identical = std::memcmp(&g1[k], &gN[k], sizeof(double)) == 0;
    bench::row({"parameter_shift", bench::fmte(t1), bench::fmte(tN),
                bench::fmt(t1 / tN, 2), identical ? "yes" : "NO"});
    report.set("parameter_shift_serial_seconds", t1);
    report.set("parameter_shift_parallel_seconds", tN);
    report.set("parameter_shift_speedup", t1 / tN);
    report.set("parameter_shift_identical", identical);
  }

  std::printf("\nenergy(serial) = %.17g\nenergy(parallel) = %.17g\n", e1, eN);
  return report.write() ? 0 : 1;
}
