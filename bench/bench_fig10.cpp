// Fig. 10: the time to simulate one VQE circuit for hydrogen chains of 6 to
// 100 atoms (12 to 200 qubits) scales linearly with the qubit count at fixed
// bond dimension. As in the paper's large-scale runs, the ansatz is the
// distance-truncated UCCSD (fixed depth per qubit; see DESIGN.md
// substitution 6) so the gate count is O(n).
#include <cmath>

#include "bench_util.hpp"
#include "circuit/routing.hpp"
#include "sim/mps.hpp"
#include "vqe/uccsd.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  const int max_atoms = argc > 1 ? std::atoi(argv[1]) : 100;

  bench::header("Fig. 10: one-circuit MPS time vs qubit count (H chains)");
  bench::row({"atoms", "qubits", "gates", "time (s)", "s/qubit", "max bond"});

  std::vector<double> xs, ys;
  for (int atoms : {6, 10, 20, 30, 40, 60, 80, 100}) {
    if (atoms > max_atoms) break;
    const std::size_t n_orb = std::size_t(atoms);
    vqe::UccsdOptions opts;
    opts.distance_window = 2;      // fixed-depth-per-qubit regime
    opts.local_generalized = true; // localized-orbital chain ansatz
    opts.trotter_steps = 2;
    const vqe::UccsdAnsatz ansatz =
        vqe::build_uccsd(n_orb, atoms / 2, atoms / 2, opts);
    // Mid-optimization-sized angles of constant magnitude along the whole
    // chain keep every bond at the cap, so the timing probes the uniform-D
    // regime the figure is about.
    std::vector<double> params(ansatz.n_parameters);
    for (std::size_t k = 0; k < params.size(); ++k)
      params[k] = (k % 2 ? -0.7 : 0.7) * (0.8 + 0.2 * double((k * 37) % 11) / 11.0);
    const circ::Circuit routed =
        circ::route_to_nearest_neighbour(ansatz.circuit);

    sim::MpsOptions mps_opts;
    mps_opts.max_bond = 16;
    mps_opts.svd_cutoff = 0.0;  // keep D pinned: uniform per-gate cost
    Timer t;
    sim::Mps mps(routed.n_qubits(), mps_opts);
    mps.run(routed, params);
    const double secs = t.seconds();
    xs.push_back(double(routed.n_qubits()));
    ys.push_back(secs);
    bench::row({std::to_string(atoms), std::to_string(routed.n_qubits()),
                std::to_string(routed.size()), bench::fmte(secs),
                bench::fmte(secs / routed.n_qubits()),
                std::to_string(mps.max_bond_dimension())});
  }

  // Linear-fit quality: R^2 of time vs qubits.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = double(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double r_num = n * sxy - sx * sy;
  const double r_den =
      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  const double r2 = r_den > 0 ? (r_num / r_den) * (r_num / r_den) : 0.0;
  std::printf("\nLinear fit R^2 of time-vs-qubits: %.4f (paper: visually"
              " linear up to 200 qubits).\n", r2);
  return 0;
}
