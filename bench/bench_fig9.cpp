// Fig. 9: the memory-efficient circuit-storage scheme. The baseline stores
// one full Hadamard-test circuit per Pauli string and re-binds all of them
// at every parameter update (what "synchronizing the circuits after each
// optimization step" costs); the paper's scheme keeps a single parametric
// ansatz replica and constant measurement tails. The paper reports ~15x
// speedup and ~20x memory reduction for (H2)3 / LiH / H2O (919 / 630 / 1085
// circuits). We report (a) stored bytes, (b) the per-iteration circuit-
// management time (bind/synchronize vs reuse), and (c) end-to-end evaluation
// time on a subset of circuits.
#include "bench_util.hpp"
#include "sim/hadamard_test.hpp"
#include "vqe/energy.hpp"
#include "vqe/uccsd.hpp"

int main(int argc, char** argv) {
  using namespace q2;
  bench::init(argc, argv);
  bench::BenchReport report("fig9");
  bench::header("Fig. 9: store-all vs memory-efficient circuit storage");
  bench::row({"system", "circuits", "mem ratio", "manage ratio",
              "exec speedup"});

  struct Case {
    const char* name;
    chem::Molecule mol;
  };
  const Case cases[] = {
      {"(H2)3", chem::Molecule::h2_trimer()},
      {"LiH", chem::Molecule::lih()},
      {"H2O", chem::Molecule::h2o()},
  };

  for (const Case& c : cases) {
    const bench::SolvedMolecule s = bench::solve(c.mol);
    const int ne = c.mol.n_electrons();
    const pauli::QubitOperator h = chem::molecular_qubit_hamiltonian(s.mo);
    const vqe::UccsdAnsatz ansatz =
        vqe::build_uccsd(s.mo.n_orbitals(), ne / 2, ne / 2);
    const std::vector<double> params = vqe::initial_parameters(ansatz, 0.05);

    sim::MpsOptions mps_opts;
    mps_opts.max_bond = 16;
    const vqe::EnergyEvaluator store_all(ansatz.circuit, h, mps_opts,
                                         vqe::MeasurementMode::kHadamardTest,
                                         vqe::CircuitStorage::kStoreAll);
    const vqe::EnergyEvaluator efficient(
        ansatz.circuit, h, mps_opts, vqe::MeasurementMode::kHadamardTest,
        vqe::CircuitStorage::kMemoryEfficient);

    // (a) Memory held in circuit storage.
    const double mem_ratio = double(store_all.stored_circuit_bytes()) /
                             double(efficient.stored_circuit_bytes());

    // (b) Per-iteration circuit management: the store-all baseline copies
    // and re-binds every circuit when the parameters change; the efficient
    // scheme touches one replica. Modeled by binding each representation.
    const auto bind_all = [&params](const std::vector<circ::Circuit>& cs) {
      std::size_t gates = 0;
      for (const auto& circ_k : cs) {
        circ::Circuit bound(circ_k.n_qubits());
        for (circ::Gate g : circ_k.gates()) {
          if (g.is_parametric()) {
            g.theta = g.angle(params);
            g.param_index = -1;
          }
          bound.append(std::move(g));
        }
        gates += bound.size();
      }
      return gates;
    };
    // Rebuild the full circuit set once to measure the bind cost.
    std::vector<circ::Circuit> full_set;
    full_set.reserve(store_all.n_terms());
    for (const auto& [p, coeff] : store_all.terms())
      full_set.push_back(sim::hadamard_test_circuit(ansatz.circuit, p));
    Timer t_manage_all;
    const std::size_t g1 = bind_all(full_set);
    const double manage_all = t_manage_all.seconds();
    std::vector<circ::Circuit> one_replica = {ansatz.circuit};
    Timer t_manage_eff;
    const std::size_t g2 = bind_all(one_replica);
    const double manage_eff = t_manage_eff.seconds();

    // (c) End-to-end evaluation on a small circuit subset.
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < 4; ++i)
      subset.push_back(i * store_all.n_terms() / 4);
    Timer t_all;
    store_all.partial_energy(params, subset);
    const double all_s = t_all.seconds() + manage_all;
    Timer t_eff;
    efficient.partial_energy(params, subset);
    const double eff_s = t_eff.seconds() + manage_eff;

    bench::row({c.name, std::to_string(store_all.circuit_count()),
                bench::fmt(mem_ratio, 0) + "x",
                bench::fmt(manage_all / std::max(manage_eff, 1e-9), 0) + "x",
                bench::fmt(all_s / eff_s, 2) + "x"});
    report.set(std::string(c.name) + "_mem_ratio", mem_ratio);
    report.set(std::string(c.name) + "_exec_speedup", all_s / eff_s);
    (void)g1;
    (void)g2;
  }
  std::printf(
      "\nPaper shape check: the paper reports ~20x memory reduction and ~15x"
      " speedup\n(including cross-process synchronization). Our gate-level"
      " store widens the memory\ngap beyond 20x; the manage column isolates"
      " the per-iteration rebinding cost the\nscheme eliminates.\n");
  return 0;
}
